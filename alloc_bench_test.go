// Allocation benchmarks for the hot paths the zero-alloc work targets:
// steady-state dense solving on a recycled execution context, serving
// solves from a cached plan, building the plan, and repairing it across
// an insertion batch. Each reports allocs/op (run with -benchmem), and
// TestAllocBudgets pins a ceiling on every one so CI fails when a hot
// path starts allocating again — the benchmark half of the bench gate,
// complementing the node-count trajectory in BENCH_*.json.
package repro

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/mbb"
)

// benchDenseSteady returns a warmed (exec, matrix) pair: the incumbent
// already holds the optimum, so every further solve is the steady-state
// re-verification the serving layer performs — and must not allocate.
func benchDenseSteady() (*core.Exec, *dense.Matrix) {
	ex := core.NewExec(nil, core.Limits{})
	m := dense.FromBigraph(workload.Dense(40, 40, 0.85, 7))
	dense.Solve(ex, m, dense.Options{})
	return ex, m
}

func BenchmarkAllocSolveDenseSteady(b *testing.B) {
	ex, m := benchDenseSteady()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Solve(ex, m, dense.Options{})
	}
}

// benchPlanGraph is the cached-plan workload: a sparse stand-in small
// enough that plan solves are quick but real.
func benchPlanGraph() *mbb.Graph {
	d, _ := workload.ByName("github")
	return d.Generate(8000, 1)
}

func BenchmarkAllocPlanBuild(b *testing.B) {
	g := benchPlanGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mbb.PlanContext(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocPlanSolve(b *testing.B) {
	p, err := mbb.PlanContext(context.Background(), benchPlanGraph())
	if err != nil {
		b.Fatal(err)
	}
	opt := &mbb.Options{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveContext(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRepairSetup builds a plan and an insertion batch that the bounded
// local repair absorbs (rather than rejecting into a rebuild).
func benchRepairSetup(b *testing.B) (*mbb.Plan, *mbb.Graph, mbb.Delta) {
	b.Helper()
	g := benchPlanGraph()
	p, err := mbb.PlanContext(context.Background(), g)
	if err != nil {
		b.Fatal(err)
	}
	// A non-edge insertion: scan for the first absent pair.
	var d mbb.Delta
	for l := 0; l < g.NL() && d.Empty(); l++ {
		for r := 0; r < g.NR(); r++ {
			if !g.HasEdge(l, g.NL()+r) {
				d = mbb.Delta{Add: [][2]int{{l, r}}}
				break
			}
		}
	}
	g2, eff, err := g.Apply(d)
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := p.ApplyDelta(g2, eff, 1); !ok {
		b.Skip("repair refused on this instance; benchmark needs the repair path")
	}
	return p, g2, eff
}

// nopResponseWriter is a reusable ResponseWriter so the middleware
// benchmark measures the instrumentation, not the recorder.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// BenchmarkAllocPlanSolveK1 is BenchmarkAllocPlanSolve with TopK set to
// 1 explicitly: the query refactor's k = 1 degeneration must be the same
// scalar fast path — no list, no heap, no extra allocations — so it
// shares plan-solve's budget in TestAllocBudgets.
func BenchmarkAllocPlanSolveK1(b *testing.B) {
	p, err := mbb.PlanContext(context.Background(), benchPlanGraph())
	if err != nil {
		b.Fatal(err)
	}
	opt := &mbb.Options{TopK: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.SolveContext(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Bicliques != nil {
			b.Fatal("k=1 solve allocated a list")
		}
	}
}

// BenchmarkAllocServeMiddleware pins the serving-path instrumentation —
// metrics + ring access log + panic recovery — at zero allocations per
// request, covering the solve submit path the issue gates. (RequestID
// and Timeout sit outside this budget: context.WithValue/WithTimeout
// allocate by design.)
func BenchmarkAllocServeMiddleware(b *testing.B) {
	m := server.NewMetrics()
	rl := server.NewRingLogger(nil, 1024)
	defer rl.Close()
	h := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}), server.Instrument(m, rl), server.Recover(m))
	w := &nopResponseWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodPost, "/graphs/bench/jobs", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

func BenchmarkAllocPlanRepair(b *testing.B) {
	p, g2, eff := benchRepairSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.ApplyDelta(g2, eff, 1); !ok {
			b.Fatal("repair refused mid-benchmark")
		}
	}
}

// TestAllocBudgets is the CI allocation gate: each hot path must stay
// under its pinned allocs/op ceiling. Ceilings are generous (≈2x the
// observed steady state) so scheduler noise does not flake the gate,
// but tight enough that an accidental per-node or per-vertex allocation
// — which multiplies counts by orders of magnitude — always trips it.
func TestAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate is not meaningful with -short's trimmed iteration counts")
	}
	for _, tc := range []struct {
		name    string
		ceiling int64
		bench   func(b *testing.B)
	}{
		// The dense steady state and the serving middleware are the
		// zero-alloc acceptances themselves; their ceiling of 0 is the
		// point, not headroom.
		// Observed on the reference setup: build 425, solve 287, repair 10.
		{"dense-steady", 0, BenchmarkAllocSolveDenseSteady},
		{"serve-middleware", 0, BenchmarkAllocServeMiddleware},
		{"plan-build", 1500, BenchmarkAllocPlanBuild},
		{"plan-solve", 1000, BenchmarkAllocPlanSolve},
		{"plan-solve-k1", 1000, BenchmarkAllocPlanSolveK1},
		{"plan-repair", 100, BenchmarkAllocPlanRepair},
	} {
		r := testing.Benchmark(tc.bench)
		if got := r.AllocsPerOp(); got > tc.ceiling {
			t.Errorf("%s: %d allocs/op exceeds the pinned ceiling %d", tc.name, got, tc.ceiling)
		} else {
			t.Logf("%s: %d allocs/op (ceiling %d), %d bytes/op", tc.name, got, tc.ceiling, r.AllocedBytesPerOp())
		}
	}
}
