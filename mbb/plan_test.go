package mbb_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/mbb"
)

// A cached plan must reproduce exactly what a planner-enabled solve
// computes, and carry the same planner statistics.
func TestPlanMatchesSolve(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := mbb.GeneratePowerLaw(50, 50, 260, seed)
		direct, err := mbb.Solve(g, &mbb.Options{Reduce: mbb.ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := mbb.PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.SolveContext(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || !res.Reduced {
			t.Fatalf("seed %d: cached-plan solve exact=%v reduced=%v", seed, res.Exact, res.Reduced)
		}
		if res.Biclique.Size() != direct.Biclique.Size() {
			t.Fatalf("seed %d: cached-plan size %d, direct size %d", seed, res.Biclique.Size(), direct.Biclique.Size())
		}
		if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
			t.Fatalf("seed %d: invalid biclique from cached plan", seed)
		}
		if res.Stats.SeedTau != plan.SeedTau() || res.Stats.Peeled != int64(plan.Peeled()) || res.Stats.Components != plan.Components() {
			t.Fatalf("seed %d: result stats (tau=%d peeled=%d comps=%d) disagree with plan (%d/%d/%d)",
				seed, res.Stats.SeedTau, res.Stats.Peeled, res.Stats.Components,
				plan.SeedTau(), plan.Peeled(), plan.Components())
		}
	}
}

// One plan, many overlapping queries: the plan is read-only, so
// concurrent SolveContext calls (each with its own budget and solver
// choice) must all return the same optimum. Run under -race this also
// checks the plan is genuinely shareable.
func TestPlanConcurrentSolves(t *testing.T) {
	g := mbb.GeneratePowerLaw(60, 60, 320, 11)
	plan, err := mbb.PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.SolveContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := &mbb.Options{Workers: i % 3}
			res, err := plan.SolveContext(context.Background(), opt)
			if err != nil {
				errs <- err
				return
			}
			if !res.Exact || res.Biclique.Size() != want.Biclique.Size() {
				errs <- errors.New("concurrent plan solve disagreed with the sequential one")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A cancelled query on a cached plan must return promptly and report
// Exact == false — the service's cancellation contract.
func TestPlanSolveCancelled(t *testing.T) {
	g := mbb.GenerateDense(48, 48, 0.9, 3)
	plan, err := mbb.PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := plan.SolveContext(ctx, &mbb.Options{Solver: "basicBB", Reduce: mbb.ReduceOn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("cancelled solve claimed exactness")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled solve took %v", elapsed)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := mbb.PlanContext(context.Background(), nil); !errors.Is(err, mbb.ErrNilGraph) {
		t.Errorf("nil graph: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mbb.PlanContext(ctx, mbb.GeneratePowerLaw(20, 20, 60, 1)); err == nil {
		t.Error("PlanContext under a cancelled context returned a cacheable plan")
	}
	plan, err := mbb.PlanContext(context.Background(), mbb.GeneratePowerLaw(20, 20, 60, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.SolveContext(context.Background(), &mbb.Options{Solver: "heur"}); !errors.Is(err, mbb.ErrBadOptions) {
		t.Errorf("heuristic solver on a cached plan: %v", err)
	}
	if _, err := plan.SolveContext(context.Background(), &mbb.Options{Solver: "nope"}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestPlanActive(t *testing.T) {
	cases := []struct {
		opt  mbb.Options
		want bool
	}{
		{mbb.Options{}, true},                                            // auto solver, auto reduce
		{mbb.Options{Solver: "hbvMBB"}, false},                           // named solver, auto reduce
		{mbb.Options{Solver: "hbvMBB", Reduce: mbb.ReduceOn}, true},      // forced on
		{mbb.Options{Reduce: mbb.ReduceOff}, false},                      // forced off
		{mbb.Options{Solver: "heur", Reduce: mbb.ReduceOn}, false},       // heuristic never plans
		{mbb.Options{Solver: "denseMBB", Reduce: mbb.ReduceAuto}, false}, // named, auto
	}
	for _, tc := range cases {
		got, err := tc.opt.PlanActive()
		if err != nil {
			t.Fatalf("%+v: %v", tc.opt, err)
		}
		if got != tc.want {
			t.Errorf("PlanActive(%+v) = %v, want %v", tc.opt, got, tc.want)
		}
	}
	if _, err := (&mbb.Options{Solver: "nope"}).PlanActive(); err == nil {
		t.Error("PlanActive accepted an unknown solver")
	}
}
