package mbb_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/mbb"
)

// disjointUnion places a and b on disjoint vertex ranges of one graph.
func disjointUnion(a, b *mbb.Graph) *mbb.Graph {
	bld := mbb.NewBuilder(a.NL()+b.NL(), a.NR()+b.NR())
	for _, e := range a.Edges() {
		bld.AddEdge(e[0], e[1])
	}
	for _, e := range b.Edges() {
		bld.AddEdge(a.NL()+e[0], a.NR()+e[1])
	}
	return bld.Build()
}

// hardComponentGraph builds a deliberately disconnected graph whose
// components each hide an optimum the greedy seed underestimates (the
// dataset stand-ins plant a quasi-dense decoy block for exactly that), so
// the planner's component stage has real search work to distribute.
func hardComponentGraph(seedA, seedB int64) *mbb.Graph {
	a, _ := mbb.GenerateDataset("github", 800, seedA)
	b, _ := mbb.GenerateDataset("youtube-groupmemberships", 800, seedB)
	return disjointUnion(a, b)
}

// TestPlannerMatchesUnreducedOnPlanted re-solves planted power-law
// instances with the planner on and off: the reduction and component
// split must preserve the optimum for every exact solver path.
func TestPlannerMatchesUnreducedOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 6; it++ {
		nl, nr := 40+rng.Intn(40), 40+rng.Intn(40)
		k := 4 + rng.Intn(3)
		g := mbb.PlantBiclique(mbb.GeneratePowerLaw(nl, nr, 3*(nl+nr), rng.Int63()), k, rng.Int63())
		for _, solver := range []string{"auto", "hbvMBB", "extBBCL"} {
			off, err := mbb.Solve(g, &mbb.Options{Solver: solver, Reduce: mbb.ReduceOff})
			if err != nil {
				t.Fatal(err)
			}
			on, err := mbb.Solve(g, &mbb.Options{Solver: solver, Reduce: mbb.ReduceOn})
			if err != nil {
				t.Fatal(err)
			}
			if !on.Exact || !off.Exact {
				t.Fatalf("%s: inexact without a budget (on=%v off=%v)", solver, on.Exact, off.Exact)
			}
			if on.Biclique.Size() != off.Biclique.Size() {
				t.Fatalf("%s: planner changed the optimum: %d (on) vs %d (off)",
					solver, on.Biclique.Size(), off.Biclique.Size())
			}
			if on.Biclique.Size() < k {
				t.Fatalf("%s: missed the planted %d×%d biclique (got %d)", solver, k, k, on.Biclique.Size())
			}
			if !on.Biclique.IsBicliqueOf(g) {
				t.Fatalf("%s: planner returned an invalid witness", solver)
			}
		}
	}
}

// TestPlannerComponentParallelParity solves a many-component graph with
// the planner sequential and with several component workers: the optimum
// and the Exact flag must be identical (the schedule may differ). Run
// under -race this also locks down the planner's shared-state handling.
func TestPlannerComponentParallelParity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := hardComponentGraph(seed, seed+10)
		seq, err := mbb.Solve(g, &mbb.Options{Reduce: mbb.ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		par, err := mbb.Solve(g, &mbb.Options{Reduce: mbb.ReduceOn, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Biclique.Size() != par.Biclique.Size() || seq.Exact != par.Exact {
			t.Fatalf("seed %d: parallel planner diverged: size %d/%v (seq) vs %d/%v (par)",
				seed, seq.Biclique.Size(), seq.Exact, par.Biclique.Size(), par.Exact)
		}
		if !par.Biclique.IsBicliqueOf(g) || !par.Biclique.IsBalanced() {
			t.Fatalf("seed %d: parallel planner returned a bad witness", seed)
		}
	}
}

// TestPlannerCancellation: a pre-cancelled context must come back
// immediately and inexact; a mid-solve cancellation must still return a
// valid balanced biclique. Both with parallel component workers, so
// cancellation paths are exercised under -race too.
func TestPlannerCancellation(t *testing.T) {
	g := hardComponentGraph(7, 17)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mbb.SolveContext(ctx, g, &mbb.Options{Reduce: mbb.ReduceOn, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("pre-cancelled planner solve claims exactness")
	}
	if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
		t.Fatal("pre-cancelled planner solve returned a bad witness")
	}

	// Mid-solve: cancel shortly after the search starts. Whatever the
	// schedule, the result must be a valid balanced biclique, and if the
	// run claims exactness it must match the uncancelled optimum.
	want, err := mbb.Solve(g, &mbb.Options{Reduce: mbb.ReduceOn})
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		res, err := mbb.SolveContext(ctx, g, &mbb.Options{Reduce: mbb.ReduceOn, Workers: 3})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
			t.Fatalf("delay %v: cancelled planner solve returned a bad witness", delay)
		}
		if res.Exact && res.Biclique.Size() != want.Biclique.Size() {
			t.Fatalf("delay %v: cancelled solve claims exact size %d, want %d",
				delay, res.Biclique.Size(), want.Biclique.Size())
		}
	}
}

// TestReduceSolvesFewerNodes is the planner's acceptance benchmark: on a
// sparse power-law stand-in from the workload registry, "auto" with the
// planner must reach the identical optimum while spending strictly fewer
// search nodes than without it.
func TestReduceSolvesFewerNodes(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		g, ok := mbb.GenerateDataset("edit-frwiktionary", 1500, seed)
		if !ok {
			t.Fatal("dataset missing from the workload registry")
		}
		on, err := mbb.Solve(g, &mbb.Options{Solver: "auto", Reduce: mbb.ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		off, err := mbb.Solve(g, &mbb.Options{Solver: "auto", Reduce: mbb.ReduceOff})
		if err != nil {
			t.Fatal(err)
		}
		if !on.Exact || !off.Exact {
			t.Fatalf("seed %d: inexact without a budget", seed)
		}
		if on.Biclique.Size() != off.Biclique.Size() {
			t.Fatalf("seed %d: optimum differs: %d (reduce on) vs %d (off)",
				seed, on.Biclique.Size(), off.Biclique.Size())
		}
		if on.Stats.Nodes >= off.Stats.Nodes {
			t.Fatalf("seed %d: reduce on spent %d nodes, off spent %d — want strictly fewer",
				seed, on.Stats.Nodes, off.Stats.Nodes)
		}
	}
}

// TestPlannerStats: the planner reports its reduction statistics, and a
// planner-free run reports none.
func TestPlannerStats(t *testing.T) {
	g := hardComponentGraph(5, 15)
	on, err := mbb.Solve(g, &mbb.Options{Reduce: mbb.ReduceOn})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.SeedTau <= 0 {
		t.Fatalf("planner ran but SeedTau = %d", on.Stats.SeedTau)
	}
	if on.Stats.Components <= 1 {
		t.Fatalf("multi-block graph solved as %d components", on.Stats.Components)
	}
	off, err := mbb.Solve(g, &mbb.Options{Solver: "hbvMBB", Reduce: mbb.ReduceOff})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.SeedTau != 0 || off.Stats.Peeled != 0 || off.Stats.Components != 0 {
		t.Fatalf("planner-free run reports planner stats: %+v", off.Stats)
	}
}
