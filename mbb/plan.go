package mbb

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Plan is the cacheable artifact of the reduce-and-conquer planner's
// preprocessing phase: the heuristic seed witness and its lower bound τ,
// the optimum-preserving reduction of the graph (the (τ+1)-core
// intersected with the 2τ+1 bicore threshold, iterated to a fixed
// point), and the surviving connected components sorted largest first.
//
// The preprocessing depends only on the graph — not on budgets, worker
// counts or the solver choice — so one Plan can back any number of
// subsequent solves: build it once with PlanContext, then call
// Plan.SolveContext per query with fresh per-query budgets. This is what
// lets a long-running service amortize parsing and reduction across
// requests instead of redoing them per solve. A Plan is immutable after
// construction and safe for concurrent use by any number of goroutines.
type Plan struct {
	g       *Graph
	seed    Biclique // heuristic witness, original unified ids
	tau     int
	red     reduction
	jobs    []planJob
	partial bool
	epoch   uint64 // snapshot version the plan was built (or maintained) for

	// costs[i] is the observed solve profile of jobs[i], updated by every
	// solve on this plan and read by the work-stealing dispatcher to order
	// the next solve's component pulls (see compCost). It is the one
	// mutable, concurrency-safe field of an otherwise immutable Plan; it
	// never affects results, only schedule. Maintenance shares it across
	// the plan chain while the job list is preserved (deletion-only
	// deltas) and resets it when the jobs are recomputed (insertion
	// repair), since job indices then no longer line up.
	costs []compCost

	// repairs counts how many times this plan chain was locally
	// repaired by ApplyDelta's insertion path instead of rebuilt.
	repairs int
	// pendingDel logs the unified endpoint ids of every edge deleted by
	// deletion-only maintenance since the last certificate fixed point
	// (the initial build or the latest repair). Deletions are absorbed
	// without re-peeling, so the survivor set may no longer be a fixed
	// point; a later insertion repair seeds its frontier with these
	// endpoints too — a re-admission support chain that runs through a
	// since-deleted edge necessarily lands on one of them. A successful
	// repair re-establishes the fixed point and clears the log.
	pendingDel []int
	// loose marks a plan whose pendingDel log overflowed; insertion
	// repair then has no bounded seed set and forces a rebuild.
	loose bool
}

// PlanContext runs the planner's preprocessing phase — heuristic seed,
// reduction to a fixed point, component decomposition — on g and returns
// the reusable Plan. The phase is near-linear (no branch-and-bound runs),
// so it takes no budget options; ctx cancellation still applies, and a
// cancelled build returns ctx's error rather than a partial plan (a
// partial plan would be unsafe to cache: its empty component list no
// longer proves the seed optimal).
func PlanContext(ctx context.Context, g *Graph) (*Plan, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	ex := core.NewExec(ctx, core.Limits{})
	p := computePlan(ex, g, 0)
	if p.partial {
		if err := ex.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	return p, nil
}

// PlanContextEpoch is PlanContext for callers that version their graphs:
// the returned plan carries the given snapshot epoch (see Plan.Epoch and
// Plan.ApplyDelta). PlanContext itself builds at epoch 0.
func PlanContextEpoch(ctx context.Context, g *Graph, epoch uint64) (*Plan, error) {
	p, err := PlanContext(ctx, g)
	if err == nil {
		p.epoch = epoch
	}
	return p, err
}

// Graph returns the original graph the plan was built for.
func (p *Plan) Graph() *Graph { return p.g }

// Epoch returns the snapshot version this plan answers for: the epoch
// given at build time (PlanContextEpoch; 0 for PlanContext) or at the
// last successful ApplyDelta.
func (p *Plan) Epoch() uint64 { return p.epoch }

// SeedTau returns the heuristic lower bound τ that seeded the reduction.
func (p *Plan) SeedTau() int { return p.tau }

// Repairs returns how many times this plan chain was carried across an
// insertion batch by bounded local repair (ApplyDelta) instead of being
// rebuilt from scratch. It only ever grows along a maintenance chain, so
// callers can detect a repair by comparing the counter across an
// ApplyDelta call.
func (p *Plan) Repairs() int { return p.repairs }

// Peeled returns how many vertices the reduction removed.
func (p *Plan) Peeled() int { return p.red.peeled }

// Components returns how many components survived the reduction (those
// large enough on both sides to beat τ). Zero means the plan already
// proves the heuristic seed optimal.
func (p *Plan) Components() int { return len(p.jobs) }

// Seed returns the heuristic witness biclique, in original unified ids.
// The caller must not modify it.
func (p *Plan) Seed() Biclique { return p.seed }

// SolveContext answers a query from the cached plan under ctx: the
// surviving components are solved by the named exact solver on a fresh
// execution context carrying opt's Timeout/MaxNodes budgets, sharing one
// incumbent seeded with the cached τ. The result is identical to what
// SolveContext(ctx, plan.Graph(), opt) with the planner enabled would
// produce, minus the preprocessing cost. The full query surface applies:
// Options.TopK and Options.MinSize select the top-k and size-constrained
// classes on the shared plan (the plan itself is query-independent — it
// was peeled at the heuristic τ, which any floor only tightens further
// via the incumbent seed), and inexact answers carry Result.Gap.
// Heuristic solvers are rejected: the plan's component pruning assumes
// exact sub-solves. Safe for concurrent use — overlapping queries each
// get their own execution context and only read the shared plan.
func (p *Plan) SolveContext(ctx context.Context, opt *Options) (Result, error) {
	if opt == nil {
		opt = &Options{}
	}
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	spec, isAuto, err := resolveSpec(opt)
	if err != nil {
		return Result{}, err
	}
	if spec.Heuristic {
		return Result{}, fmt.Errorf("%w: heuristic solver %q cannot run from a cached plan", ErrBadOptions, spec.Name)
	}
	q := queryOf(opt)
	if isAuto {
		spec, _ = Lookup(autoSolverName(p.g))
	}
	if q.infeasible(p.g) {
		return q.refuse(p.g, spec.Name), nil
	}
	ex := core.NewExec(ctx, core.Limits{Timeout: opt.Timeout, MaxNodes: opt.MaxNodes})
	if f := q.floor(); f > 0 {
		ex.OfferBest(f)
	}
	res, err := p.solveOn(ex, spec, isAuto, opt)
	if err != nil {
		return Result{}, err
	}
	exact := !res.Stats.TimedOut
	var list []Biclique
	if q.k > 1 {
		list = topKTail(ex, p.g, q, &res)
		exact = exact && !res.Stats.TimedOut
	}
	return finishResult(p.g, q, spec.Name, true, res, exact, list), nil
}

// PlanActive reports whether SolveContext with these options would run
// the reduce-and-conquer planner — equivalently, whether a cached Plan
// built by PlanContext can stand in for the preprocessing phase of a
// solve with these options. It errors on an unknown solver name.
func (o *Options) PlanActive() (bool, error) {
	if o == nil {
		o = &Options{}
	}
	spec, isAuto, err := resolveSpec(o)
	if err != nil {
		return false, err
	}
	return planActive(o, isAuto, spec.Heuristic), nil
}
