package mbb_test

import (
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/mbb"
)

// The plan-maintenance differential harness: a byte-encoded base graph
// plus a two-round mutation chain is planned cold and carried across via
// Plan.ApplyDelta. Whenever maintenance accepts — deletion-only reuse or
// the bounded local repair of an insertion batch — the maintained plan's
// solve must agree with both a from-scratch PlanContext on the mutated
// graph and the brute-force oracle; the second round specifically
// exercises repairs seeded from the deletion-endpoint log a first-round
// deletion leaves behind. Sides are capped at 7 so the oracle enumerates
// ≤ 2^7 subsets. Bytes decode in pairs as (l, r) indices mod the side
// sizes, so any mutated input is a valid case; the seeded corpus
// includes insertion batches and both DESIGN §7 counterexamples (batch
// resurrection among peeled vertices; a certificate restored through a
// surviving neighbour). CI runs a bounded smoke; the nightly workflow
// fuzzes for minutes.

// checkMaintained verifies one maintained plan against the cold planner
// and the brute-force oracle.
func checkMaintained(t *testing.T, p *mbb.Plan, g *mbb.Graph) {
	t.Helper()
	got, err := p.SolveContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := mbb.PlanContextEpoch(context.Background(), g, p.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.SolveContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := baseline.BruteForceSize(g)
	if !got.Exact || !want.Exact {
		t.Fatalf("inexact results without a budget: %v %v", got.Exact, want.Exact)
	}
	if got.Biclique.Size() != oracle || want.Biclique.Size() != oracle {
		t.Fatalf("maintained %d, rebuilt %d, oracle %d (graph %dx%d/%d)",
			got.Biclique.Size(), want.Biclique.Size(), oracle, g.NL(), g.NR(), g.NumEdges())
	}
	if !got.Biclique.IsBicliqueOf(g) {
		t.Fatal("maintained plan returned a non-biclique of the mutated graph")
	}
}

// maintainCase runs one decoded two-round case, reporting how many
// rounds the maintenance path absorbed.
func maintainCase(t *testing.T, nl, nr int, base [][2]int, rounds []mbb.Delta) int {
	t.Helper()
	g := mbb.FromEdges(nl, nr, base)
	p, err := mbb.PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	maintained := 0
	for i, d := range rounds {
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatalf("in-range delta rejected: %v", err)
		}
		p2, ok := p.ApplyDelta(g2, eff, uint64(i+1))
		if !ok {
			break // rebuild required (witness hit or budget): chain ends
		}
		if len(eff.Add) > 0 && p2.Repairs() != p.Repairs()+1 {
			t.Fatalf("insertion batch accepted without a repair: %d -> %d", p.Repairs(), p2.Repairs())
		}
		checkMaintained(t, p2, g2)
		maintained++
		g, p = g2, p2
	}
	return maintained
}

// maintainPairs decodes a byte stream into side-local pairs.
func maintainPairs(nl, nr int, data []byte) [][2]int {
	if nl == 0 || nr == 0 {
		return nil
	}
	var out [][2]int
	for i := 0; i+1 < len(data); i += 2 {
		out = append(out, [2]int{int(data[i]) % nl, int(data[i+1]) % nr})
	}
	return out
}

// maintainSeed is one corpus entry: a base graph and two mutation
// rounds.
type maintainSeed struct {
	nl, nr                     uint8
	base, add, del, add2, del2 []byte
}

// maintainSeeds is the seeded corpus, shared by the plain-test sweep and
// the fuzz target.
func maintainSeeds() []maintainSeed {
	return []maintainSeed{
		// §7 batch resurrection: K3,3 minus (2,2), re-add it.
		{3, 3, []byte{0, 0, 0, 1, 0, 2, 1, 0, 1, 1, 1, 2, 2, 0, 2, 1}, []byte{2, 2}, nil, nil, nil},
		// §7 certificate through a surviving neighbour: K2,2 + pendant,
		// insertion gives the pendant a second surviving neighbour.
		{3, 2, []byte{0, 0, 0, 1, 1, 0, 1, 1, 2, 0}, []byte{2, 1}, nil, nil, nil},
		// Delete-then-insert chain: round 1 deletes a survivor–survivor
		// edge of a K4,4 (logged endpoints), round 2 re-inserts it plus a
		// fringe edge — the repair must be seeded from the log.
		{5, 5, []byte{0, 0, 0, 1, 0, 2, 0, 3, 1, 0, 1, 1, 1, 2, 1, 3, 2, 0, 2, 1, 2, 2, 2, 3, 3, 0, 3, 1, 3, 2, 3, 3, 4, 0}, nil, []byte{2, 3}, []byte{2, 3, 4, 1}, nil},
		// Mixed batch in one round.
		{5, 5, []byte{0, 0, 0, 1, 0, 2, 1, 0, 1, 1, 1, 2, 2, 0, 2, 1, 2, 2, 4, 0}, []byte{4, 1, 4, 2}, []byte{0, 2}, nil, nil},
		// Deletion-only reuse, then another deletion round.
		{4, 4, []byte{0, 0, 0, 1, 1, 0, 1, 1, 2, 2, 2, 3, 3, 2, 3, 3}, nil, []byte{2, 3}, nil, []byte{3, 2}},
		// Insertions merging two components of the reduced graph.
		{6, 6, []byte{0, 0, 0, 1, 0, 2, 1, 0, 1, 1, 1, 2, 2, 0, 2, 1, 2, 2, 3, 3, 3, 4, 3, 5, 4, 3, 4, 4, 4, 5, 5, 3, 5, 4, 5, 5}, []byte{0, 3, 3, 0}, nil, nil, nil},
		// Empty base, insertions assemble everything from nothing.
		{3, 3, nil, []byte{0, 0, 0, 1, 1, 0, 1, 1, 2, 2}, nil, []byte{2, 0}, nil},
		// Degenerate shapes.
		{1, 1, []byte{0, 0}, []byte{0, 0}, []byte{0, 0}, nil, nil},
		{0, 4, nil, nil, nil, nil, nil},
		{7, 7, []byte{1, 2, 3, 4, 5, 6}, []byte{6, 6, 6, 5, 5, 6}, []byte{1, 2}, []byte{0, 0}, nil},
	}
}

// runMaintainSeed decodes and runs one seed, returning the number of
// maintained rounds.
func runMaintainSeed(t *testing.T, nlb, nrb uint8, base, add, del, add2, del2 []byte) int {
	nl, nr := int(nlb%8), int(nrb%8)
	rounds := []mbb.Delta{
		{Add: maintainPairs(nl, nr, add), Del: maintainPairs(nl, nr, del)},
		{Add: maintainPairs(nl, nr, add2), Del: maintainPairs(nl, nr, del2)},
	}
	return maintainCase(t, nl, nr, maintainPairs(nl, nr, base), rounds)
}

// TestPlanMaintainCorpus runs the differential check over the seeded
// corpus in every plain `go test` run.
func TestPlanMaintainCorpus(t *testing.T) {
	maintained := 0
	for i, c := range maintainSeeds() {
		n := runMaintainSeed(t, c.nl, c.nr, c.base, c.add, c.del, c.add2, c.del2)
		if n == 0 {
			t.Logf("seed %d forced a rebuild on round 1", i)
		}
		maintained += n
	}
	if maintained == 0 {
		t.Fatal("no corpus seed exercised the maintenance path")
	}
}

// FuzzPlanMaintain is the open-ended differential fuzz target:
//
//	go test ./mbb -run=FuzzPlanMaintain -fuzz=FuzzPlanMaintain -fuzztime=20s
func FuzzPlanMaintain(f *testing.F) {
	for _, c := range maintainSeeds() {
		f.Add(c.nl, c.nr, c.base, c.add, c.del, c.add2, c.del2)
	}
	f.Fuzz(func(t *testing.T, nlb, nrb uint8, base, add, del, add2, del2 []byte) {
		runMaintainSeed(t, nlb, nrb, base, add, del, add2, del2)
	})
}
