package mbb

import (
	"context"
	"math/rand"
	"testing"
)

// TestApplyDeltaDeletionDifferential is the differential test of
// incremental plan maintenance: whenever ApplyDelta accepts a
// deletion-only delta, solving through the maintained plan must produce
// the same optimum as a cold planner run on the mutated graph.
func TestApplyDeltaDeletionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reused, refused := 0, 0
	for trial := 0; trial < 25; trial++ {
		g := GeneratePowerLaw(40+rng.Intn(40), 40+rng.Intn(40), 300+rng.Intn(200), int64(trial))
		p, err := PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()
		var d Delta
		for i := 0; i < 1+rng.Intn(6); i++ {
			d.Del = append(d.Del, edges[rng.Intn(len(edges))])
		}
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		p2, ok := p.ApplyDelta(g2, eff, uint64(trial+1))
		if !ok {
			refused++
			continue
		}
		reused++
		if p2.Epoch() != uint64(trial+1) || p2.Graph() != g2 {
			t.Fatalf("trial %d: maintained plan epoch %d graph %p, want %d %p",
				trial, p2.Epoch(), p2.Graph(), trial+1, g2)
		}
		got, err := p2.SolveContext(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveContext(context.Background(), g2, &Options{Reduce: ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || !want.Exact {
			t.Fatalf("trial %d: inexact results without a budget: %v %v", trial, got.Exact, want.Exact)
		}
		if got.Biclique.Size() != want.Biclique.Size() {
			t.Fatalf("trial %d: maintained plan found %d, cold planner found %d (delta %+v)",
				trial, got.Biclique.Size(), want.Biclique.Size(), eff)
		}
		if !got.Biclique.IsBicliqueOf(g2) {
			t.Fatalf("trial %d: maintained plan returned a non-biclique of the mutated graph", trial)
		}
	}
	if reused == 0 {
		t.Fatal("no trial exercised the maintenance path")
	}
	t.Logf("reused %d plans, refused %d (witness deletions)", reused, refused)
}

// TestApplyDeltaRejectsInsertions: any insertion — even between peeled
// vertices — must force a rebuild, because a batch of insertions can
// assemble a larger biclique entirely outside the cached reduction.
func TestApplyDeltaRejectsInsertions(t *testing.T) {
	g := GeneratePowerLaw(50, 50, 250, 3)
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{Add: [][2]int{{0, 0}}}
	if g.HasEdge(0, g.NL()) {
		d.Add[0] = [2]int{0, 1}
	}
	g2, eff, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Add) != 1 {
		t.Fatalf("setup: addition was a no-op: %+v", eff)
	}
	if _, ok := p.ApplyDelta(g2, eff, 1); ok {
		t.Fatal("ApplyDelta accepted an insertion")
	}
}

// TestApplyDeltaWitnessDeletion: deleting an edge inside the heuristic
// witness invalidates τ and must refuse the cheap path.
func TestApplyDeltaWitnessDeletion(t *testing.T) {
	g := GenerateDense(12, 12, 0.9, 5)
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	seed := p.Seed()
	if len(seed.A) == 0 || len(seed.B) == 0 {
		t.Skip("planner produced an empty witness")
	}
	d := Delta{Del: [][2]int{{g.LocalIndex(seed.A[0]), g.LocalIndex(seed.B[0])}}}
	g2, eff, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Del) != 1 {
		t.Fatalf("setup: witness edge not present? eff %+v", eff)
	}
	if _, ok := p.ApplyDelta(g2, eff, 1); ok {
		t.Fatal("ApplyDelta accepted a witness-destroying deletion")
	}
}

// TestPlanContextEpoch: epochs thread through building and maintenance.
func TestPlanContextEpoch(t *testing.T) {
	g := GeneratePowerLaw(30, 30, 120, 1)
	p, err := PlanContextEpoch(context.Background(), g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 7 {
		t.Fatalf("epoch %d, want 7", p.Epoch())
	}
	p0, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Epoch() != 0 {
		t.Fatalf("PlanContext epoch %d, want 0", p0.Epoch())
	}
	// An effectively empty delta still rebinds graph and epoch.
	g2, eff, err := g.Apply(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	p2, ok := p.ApplyDelta(g2, eff, 8)
	if !ok || p2.Epoch() != 8 {
		t.Fatalf("empty-delta maintenance: ok=%v epoch=%d", ok, p2.Epoch())
	}
}
