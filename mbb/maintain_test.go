package mbb

import (
	"context"
	"math/rand"
	"testing"
)

// TestApplyDeltaDeletionDifferential is the differential test of
// incremental plan maintenance: whenever ApplyDelta accepts a
// deletion-only delta, solving through the maintained plan must produce
// the same optimum as a cold planner run on the mutated graph.
func TestApplyDeltaDeletionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reused, refused := 0, 0
	for trial := 0; trial < 25; trial++ {
		g := GeneratePowerLaw(40+rng.Intn(40), 40+rng.Intn(40), 300+rng.Intn(200), int64(trial))
		p, err := PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()
		var d Delta
		for i := 0; i < 1+rng.Intn(6); i++ {
			d.Del = append(d.Del, edges[rng.Intn(len(edges))])
		}
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		p2, ok := p.ApplyDelta(g2, eff, uint64(trial+1))
		if !ok {
			refused++
			continue
		}
		reused++
		if p2.Epoch() != uint64(trial+1) || p2.Graph() != g2 {
			t.Fatalf("trial %d: maintained plan epoch %d graph %p, want %d %p",
				trial, p2.Epoch(), p2.Graph(), trial+1, g2)
		}
		got, err := p2.SolveContext(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveContext(context.Background(), g2, &Options{Reduce: ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || !want.Exact {
			t.Fatalf("trial %d: inexact results without a budget: %v %v", trial, got.Exact, want.Exact)
		}
		if got.Biclique.Size() != want.Biclique.Size() {
			t.Fatalf("trial %d: maintained plan found %d, cold planner found %d (delta %+v)",
				trial, got.Biclique.Size(), want.Biclique.Size(), eff)
		}
		if !got.Biclique.IsBicliqueOf(g2) {
			t.Fatalf("trial %d: maintained plan returned a non-biclique of the mutated graph", trial)
		}
	}
	if reused == 0 {
		t.Fatal("no trial exercised the maintenance path")
	}
	t.Logf("reused %d plans, refused %d (witness deletions)", reused, refused)
}

// TestApplyDeltaInsertionDifferential is the differential test of the
// bounded-local-repair path: whenever ApplyDelta absorbs a batch with
// insertions, solving through the repaired plan must produce the same
// optimum as a cold planner run on the mutated graph, and the repair
// counter must advance.
func TestApplyDeltaInsertionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	repaired, refused := 0, 0
	for trial := 0; trial < 25; trial++ {
		g := GeneratePowerLaw(30+rng.Intn(30), 30+rng.Intn(30), 250+rng.Intn(200), int64(trial))
		p, err := PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		var d Delta
		for i := 0; i < 1+rng.Intn(5); i++ {
			d.Add = append(d.Add, [2]int{rng.Intn(g.NL()), rng.Intn(g.NR())})
		}
		edges := g.Edges()
		for i := 0; i < rng.Intn(3); i++ {
			d.Del = append(d.Del, edges[rng.Intn(len(edges))])
		}
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(eff.Add) == 0 {
			continue
		}
		p2, ok := p.ApplyDelta(g2, eff, uint64(trial+1))
		if !ok {
			refused++
			continue
		}
		repaired++
		if p2.Repairs() != p.Repairs()+1 {
			t.Fatalf("trial %d: repair did not advance the counter: %d -> %d", trial, p.Repairs(), p2.Repairs())
		}
		if p2.Epoch() != uint64(trial+1) || p2.Graph() != g2 {
			t.Fatalf("trial %d: repaired plan epoch %d graph %p, want %d %p",
				trial, p2.Epoch(), p2.Graph(), trial+1, g2)
		}
		got, err := p2.SolveContext(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveContext(context.Background(), g2, &Options{Reduce: ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Exact || !want.Exact {
			t.Fatalf("trial %d: inexact results without a budget: %v %v", trial, got.Exact, want.Exact)
		}
		if got.Biclique.Size() != want.Biclique.Size() {
			t.Fatalf("trial %d: repaired plan found %d, cold planner found %d (delta %+v)",
				trial, got.Biclique.Size(), want.Biclique.Size(), eff)
		}
		if !got.Biclique.IsBicliqueOf(g2) {
			t.Fatalf("trial %d: repaired plan returned a non-biclique of the mutated graph", trial)
		}
	}
	if repaired == 0 {
		t.Fatal("no trial exercised the repair path")
	}
	t.Logf("repaired %d plans, refused %d (witness hits or budget)", repaired, refused)
}

// TestApplyDeltaBatchResurrection pins the DESIGN §7 counterexample that
// used to force a rebuild: insertions assembling a biclique strictly
// larger than τ entirely among peeled vertices. K3,3 minus one edge
// plans to an empty reduction (the 2×2 witness is provably optimal);
// adding the missing edge must re-admit all six vertices and the
// repaired plan must find the new optimum 3.
func TestApplyDeltaBatchResurrection(t *testing.T) {
	g := FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}})
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if p.SeedTau() != 2 || p.Components() != 0 {
		t.Fatalf("setup: plan tau=%d components=%d, want 2 and 0", p.SeedTau(), p.Components())
	}
	g2, eff, err := g.Apply(Delta{Add: [][2]int{{2, 2}}})
	if err != nil || len(eff.Add) != 1 {
		t.Fatalf("setup: %v %+v", err, eff)
	}
	p2, ok := p.ApplyDelta(g2, eff, 1)
	if !ok {
		t.Fatal("repair refused the batch-resurrection insertion")
	}
	if p2.Repairs() != 1 || p2.Components() != 1 || p2.Peeled() != 0 {
		t.Fatalf("repaired plan: repairs=%d components=%d peeled=%d, want 1, 1, 0",
			p2.Repairs(), p2.Components(), p2.Peeled())
	}
	res, err := p2.SolveContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Biclique.Size() != 3 {
		t.Fatalf("repaired solve: exact=%v size=%d, want exact size 3", res.Exact, res.Biclique.Size())
	}
}

// TestApplyDeltaDeleteThenInsertRepairs: a survivor–survivor deletion is
// absorbed without re-peeling (the survivor set may then no longer be a
// certificate fixed point — the deleted endpoints are logged instead),
// and a later insertion must still repair correctly: its frontier seeds
// include the logged endpoints, so re-admission chains broken by the
// earlier deletion stay discoverable. The repaired plan is checked
// differentially against a cold planner run.
func TestApplyDeltaDeleteThenInsertRepairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	exercised := 0
	for trial := 0; trial < 40; trial++ {
		g := GeneratePowerLaw(40+rng.Intn(40), 40+rng.Intn(40), 400+rng.Intn(200), int64(trial))
		p, err := PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if p.red.g.NumEdges() == 0 {
			continue
		}
		// Delete one edge of the reduced graph (mapped back to original
		// side-local ids) that is not a witness edge: the deletion-only
		// path must absorb it and log its endpoints.
		var del [2]int
		found := false
		for _, e := range p.red.g.Edges() {
			u := p.red.newToOld[e[0]]
			v := p.red.newToOld[p.red.g.NL()+e[1]]
			cand := [2]int{u, g.LocalIndex(v)}
			if !p.witnessHit([][2]int{cand}) {
				del, found = cand, true
				break
			}
		}
		if !found {
			continue
		}
		g2, eff, err := g.Apply(Delta{Del: [][2]int{del}})
		if err != nil || len(eff.Del) != 1 {
			t.Fatalf("trial %d: setup %v %+v", trial, err, eff)
		}
		p2, ok := p.ApplyDelta(g2, eff, 1)
		if !ok {
			t.Fatalf("trial %d: deletion-only maintenance refused a non-witness deletion", trial)
		}
		if len(p2.pendingDel) != 2 || p2.loose {
			t.Fatalf("trial %d: deletion logged %d endpoints (loose=%v), want 2 and not loose",
				trial, len(p2.pendingDel), p2.loose)
		}
		// Re-insert the deleted edge plus a fresh one: the repair must
		// accept, clear the log, and solve like a cold plan.
		add := [][2]int{del, {rng.Intn(g.NL()), rng.Intn(g.NR())}}
		g3, eff3, err := g2.Apply(Delta{Add: add})
		if err != nil || len(eff3.Add) == 0 {
			t.Fatalf("trial %d: setup add %v %+v", trial, err, eff3)
		}
		p3, ok := p2.ApplyDelta(g3, eff3, 2)
		if !ok {
			t.Fatalf("trial %d: insertion after a logged deletion refused the repair", trial)
		}
		if len(p3.pendingDel) != 0 || p3.Repairs() != 1 {
			t.Fatalf("trial %d: repair left %d logged endpoints, repairs=%d", trial, len(p3.pendingDel), p3.Repairs())
		}
		got, err := p3.SolveContext(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveContext(context.Background(), g3, &Options{Reduce: ReduceOn})
		if err != nil {
			t.Fatal(err)
		}
		if got.Biclique.Size() != want.Biclique.Size() || !got.Exact || !want.Exact {
			t.Fatalf("trial %d: repaired-after-deletion plan found %d (exact %v), cold planner %d (exact %v)",
				trial, got.Biclique.Size(), got.Exact, want.Biclique.Size(), want.Exact)
		}
		exercised++
	}
	if exercised == 0 {
		t.Fatal("no trial produced a plan with a patchable survivor–survivor edge")
	}
	t.Logf("exercised %d delete-then-insert chains", exercised)
}

// TestApplyDeltaLooseLogRebuilds: once the deletion-endpoint log has
// overflowed, an insertion has no bounded seed set and must refuse the
// repair.
func TestApplyDeltaLooseLogRebuilds(t *testing.T) {
	g := GeneratePowerLaw(50, 50, 250, 3)
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	p.loose = true
	add := [2]int{0, 0}
	if g.HasEdge(0, g.NL()) {
		add = [2]int{0, 1}
	}
	g2, eff, err := g.Apply(Delta{Add: [][2]int{add}})
	if err != nil || len(eff.Add) != 1 {
		t.Fatalf("setup: %v %+v", err, eff)
	}
	if _, ok := p.ApplyDelta(g2, eff, 1); ok {
		t.Fatal("loose plan accepted an insertion repair")
	}
}

// TestApplyDeltaBudgetExceeded: a tiny explicit budget must force the
// rebuild answer rather than a partial repair.
func TestApplyDeltaBudgetExceeded(t *testing.T) {
	g := FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}})
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	g2, eff, err := g.Apply(Delta{Add: [][2]int{{2, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.ApplyDeltaBudget(g2, eff, 1, 1); ok {
		t.Fatal("budget-1 repair accepted a 6-vertex frontier")
	}
}

// TestApplyDeltaWitnessDeletion: deleting an edge inside the heuristic
// witness invalidates τ and must refuse the cheap path.
func TestApplyDeltaWitnessDeletion(t *testing.T) {
	g := GenerateDense(12, 12, 0.9, 5)
	p, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	seed := p.Seed()
	if len(seed.A) == 0 || len(seed.B) == 0 {
		t.Skip("planner produced an empty witness")
	}
	d := Delta{Del: [][2]int{{g.LocalIndex(seed.A[0]), g.LocalIndex(seed.B[0])}}}
	g2, eff, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Del) != 1 {
		t.Fatalf("setup: witness edge not present? eff %+v", eff)
	}
	if _, ok := p.ApplyDelta(g2, eff, 1); ok {
		t.Fatal("ApplyDelta accepted a witness-destroying deletion")
	}
}

// TestPlanContextEpoch: epochs thread through building and maintenance.
func TestPlanContextEpoch(t *testing.T) {
	g := GeneratePowerLaw(30, 30, 120, 1)
	p, err := PlanContextEpoch(context.Background(), g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 7 {
		t.Fatalf("epoch %d, want 7", p.Epoch())
	}
	p0, err := PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Epoch() != 0 {
		t.Fatalf("PlanContext epoch %d, want 0", p0.Epoch())
	}
	// An effectively empty delta still rebinds graph and epoch.
	g2, eff, err := g.Apply(Delta{})
	if err != nil {
		t.Fatal(err)
	}
	p2, ok := p.ApplyDelta(g2, eff, 8)
	if !ok || p2.Epoch() != 8 {
		t.Fatalf("empty-delta maintenance: ok=%v epoch=%d", ok, p2.Epoch())
	}
}
