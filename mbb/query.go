package mbb

import (
	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
)

// query is the normalized form of the Options fields that select the
// query class: k == 1 is the classic single-maximum solve, k > 1 the
// top-k list, minSize > 0 the size-constrained floor. Validate has
// already rejected negatives by the time a query is built.
type query struct {
	k       int
	minSize int
}

// queryOf normalizes opt's query fields (0 means default).
func queryOf(opt *Options) query {
	q := query{k: opt.TopK, minSize: opt.MinSize}
	if q.k < 1 {
		q.k = 1
	}
	return q
}

// floor is the incumbent seed implied by the size constraint: solvers
// prune at sizes ≤ floor, so only bicliques of at least minSize per side
// can be found. 0 when unconstrained.
func (q query) floor() int {
	if q.minSize > 0 {
		return q.minSize - 1
	}
	return 0
}

// infeasible reports whether the size constraint exceeds a side of the
// graph — no biclique of minSize per side can exist, by counting alone.
func (q query) infeasible(g *Graph) bool {
	return q.minSize > g.NL() || q.minSize > g.NR()
}

// refuse is the plan-time answer to an infeasible query: an empty
// biclique with Exact == true (the counting argument is the proof) and
// the trivial upper bound as the certificate. No solver runs.
func (q query) refuse(g *Graph, name string) Result {
	res := Result{
		Exact:     true,
		Solver:    name,
		Algorithm: algorithmOf(name),
	}
	res.Stats.UpperBound = minInt(g.NL(), g.NR())
	if q.k > 1 {
		res.Bicliques = []Biclique{}
	}
	return res
}

// topKTail upgrades a finished single-incumbent solve to the top-k list:
// one balanced witness for each of the k largest distinct balanced sizes
// above the query floor. The exact sizes below the maximum are the
// min-sides of maximal bicliques (trimming a maximal biclique to its
// min-side is exactly the locally-maximal balanced biclique at that
// size), so the tail runs a bound-pruned maximal-biclique enumeration:
// the graph is peeled at the floor (optimum-preserving for every size
// the query accepts), split into components largest first, and each
// component is enumerated against the heap's growing bound — once k
// distinct sizes are held, whole components and subtrees that cannot
// beat the smallest retained size are skipped. The solver's own witness
// seeds the heap, so its exact maximum anchors the list.
//
// The tail shares ex — its budget, cancellation and node accounting. A
// budget cut mid-tail marks res.Stats.TimedOut: the list is then
// best-effort like any other inexact answer.
func topKTail(ex *core.Exec, g *Graph, q query, res *core.Result) []Biclique {
	heap := core.NewTopK(q.k)
	floor := q.floor()
	if bc := res.Biclique.Balanced(); bc.Size() > floor {
		heap.Offer(bc)
	}
	if ex.ShouldStop() {
		res.Stats.TimedOut = true
		return heap.List()
	}
	red := reduction{g: g, newToOld: bigraph.IdentityMap(g.NumVertices())}
	red = reduceFixedPoint(ex, red, floor)
	bound := func() int {
		if b := heap.Bound(); b > floor {
			return b
		}
		return floor
	}
	for _, j := range collectJobs(red, floor) {
		if ex.ShouldStop() {
			break
		}
		// Components too small to beat the current bound cannot add or
		// improve a retained size. (collectJobs already cut those at or
		// below the floor.)
		if b := heap.Bound(); b > 0 && (j.nl <= b || j.nr <= b) {
			continue
		}
		sub, toOrig := red.g.Induced(j.ids)
		bigraph.ComposeMap(toOrig, red.newToOld)
		baseline.EnumerateMaximalPruned(ex, sub, bound, func(A, B []int) bool {
			heap.Offer(bigraph.Biclique{A: A, B: B}.Remap(toOrig))
			return true
		})
	}
	if ex.Stopped() {
		res.Stats.TimedOut = true
	}
	return heap.List()
}

// finishResult assembles the public Result from a solver outcome under a
// query: the top-k list is attached (k > 1 only — the k ≤ 1 fast path
// must not allocate it), sub-floor answers are filtered to the empty
// proof, and the certified upper bound and gap are finalized.
func finishResult(g *Graph, q query, name string, planned bool, res core.Result, exact bool, list []Biclique) Result {
	out := Result{
		Biclique:  res.Biclique,
		Exact:     exact,
		Solver:    name,
		Algorithm: algorithmOf(name),
		Reduced:   planned,
		Stats:     res.Stats,
	}
	// The tail can out-search a budget-cut solver; keep the scalar answer
	// in agreement with the head of the list.
	if len(list) > 0 && list[0].Size() > out.Biclique.Size() {
		out.Biclique = list[0]
	}
	if q.minSize > 0 && out.Biclique.Size() < q.minSize {
		// Below the floor is not an answer. With Exact == true the
		// completed floor-seeded search proves no qualifying biclique
		// exists; without it, the search simply found none in budget.
		out.Biclique = Biclique{}
	}
	if q.k > 1 {
		if list == nil {
			list = []Biclique{}
		}
		out.Bicliques = list
	}

	// Certified upper bound on the maximum balanced size, and the gap it
	// leaves against the answer. For an exact solve the optimum itself is
	// the bound — except under a floor, where a completed search that
	// found nothing qualifying proves optimum ≤ MinSize−1. For an
	// inexact solve the planner's surviving per-component bound is used
	// when present, the whole graph's trivial bound otherwise.
	trivial := minInt(g.NL(), g.NR())
	size := out.Biclique.Size()
	ub := res.Stats.UpperBound
	if exact {
		ub = size
		if q.minSize > 0 && size == 0 {
			ub = minInt(q.minSize-1, trivial)
		}
	} else {
		if ub == 0 || ub > trivial {
			ub = trivial
		}
		if ub < size {
			ub = size
		}
	}
	out.Stats.UpperBound = ub
	if !exact {
		out.Gap = ub - size
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
