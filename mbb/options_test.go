package mbb_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/mbb"
)

// SolveContext validates Options once at the entry point: negative
// budgets and worker counts — which a service may receive verbatim from
// clients — are rejected with ErrBadOptions instead of silently meaning
// "unlimited" (or worse) deeper in the engine.
func TestOptionsValidation(t *testing.T) {
	g := mbb.FromEdges(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	bad := []mbb.Options{
		{Timeout: -time.Second},
		{MaxNodes: -1},
		{Workers: -2},
		{TopK: -1},
		{MinSize: -3},
		{Timeout: -1, MaxNodes: -1, Workers: -1, TopK: -1, MinSize: -1},
	}
	for _, opt := range bad {
		if _, err := mbb.Solve(g, &opt); !errors.Is(err, mbb.ErrBadOptions) {
			t.Errorf("Solve with %+v: err = %v, want ErrBadOptions", opt, err)
		}
	}
	plan, err := mbb.PlanContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range bad {
		if _, err := plan.SolveContext(context.Background(), &opt); !errors.Is(err, mbb.ErrBadOptions) {
			t.Errorf("Plan.SolveContext with %+v: err = %v, want ErrBadOptions", opt, err)
		}
	}
	// Heuristic solvers cannot certify per-size exactness, so a list
	// query against one is a contradiction, not a degraded answer.
	if _, err := mbb.Solve(g, &mbb.Options{Solver: "heur", TopK: 2}); !errors.Is(err, mbb.ErrBadOptions) {
		t.Errorf("heur with TopK=2: err = %v, want ErrBadOptions", err)
	}
	if _, err := mbb.Solve(g, &mbb.Options{Solver: "heur", TopK: 1}); err != nil {
		t.Errorf("heur with TopK=1 (scalar fast path): err = %v", err)
	}
	// The documented zero values stay valid: nil options and all-zero
	// options mean auto solver, unlimited budget, sequential pipeline.
	if res, err := mbb.Solve(g, nil); err != nil || res.Biclique.Size() != 2 {
		t.Fatalf("nil options: res=%+v err=%v", res, err)
	}
	if res, err := mbb.Solve(g, &mbb.Options{}); err != nil || res.Biclique.Size() != 2 {
		t.Fatalf("zero options: res=%+v err=%v", res, err)
	}
}
