package mbb_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/mbb"
)

// TestSolveContextPreCancelled: a context cancelled before the call must
// come back immediately with Exact == false.
func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 40, 0.4)
	start := time.Now()
	res, err := mbb.SolveContext(ctx, g, &mbb.Options{Algorithm: mbb.BasicBB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("cancelled search must not claim exactness")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pre-cancelled solve took %v", elapsed)
	}
}

// TestSolveContextCancelMidSearch cancels a search that would otherwise
// run effectively forever (plain branch and bound on a 300x300 random
// graph explores >10^15 nodes; an 80x80 instance already needs millions)
// and checks it returns promptly with Exact == false.
func TestSolveContextCancelMidSearch(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(4))
	b := mbb.NewBuilder(n, n)
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			if rng.Float64() < 0.5 {
				b.AddEdge(l, r)
			}
		}
	}
	g := b.Build()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := mbb.SolveContext(ctx, g, &mbb.Options{Algorithm: mbb.BasicBB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatalf("basicBB on a %dx%d graph cannot complete in 100ms", n, n)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	// The best-so-far witness must still be valid.
	if res.Biclique.Size() > 0 && !res.Biclique.IsBicliqueOf(g) {
		t.Fatal("cancelled result invalid")
	}
}

// TestSolveContextCancelSparse exercises the cancellation path through
// the sparse framework's streaming pipeline with workers.
func TestSolveContextCancelSparse(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 60, 0.3)
	res, err := mbb.SolveContext(ctx, g, &mbb.Options{Algorithm: mbb.HbvMBB, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("cancelled sparse search must not claim exactness")
	}
}

// TestQuickWorkersMatchSequential: through the public API, the streaming
// pipeline with 4 workers must find the same optimum as the sequential
// schedule on random graphs (run under -race in CI, this also shakes out
// sharing bugs). bd1 skips the step-1 heuristic so the work lands in the
// pipeline.
func TestQuickWorkersMatchSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 14, 0.25)
		want := baseline.BruteForceSize(g)
		for _, workers := range []int{1, 4} {
			res, err := mbb.Solve(g, &mbb.Options{Solver: "bd1", Workers: workers})
			if err != nil {
				t.Log(err)
				return false
			}
			if res.Biclique.Size() != want {
				t.Logf("workers=%d: got %d want %d", workers, res.Biclique.Size(), want)
				return false
			}
			if want > 0 && !res.Biclique.IsBicliqueOf(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryContents(t *testing.T) {
	want := []string{"auto", "hbvMBB", "denseMBB", "basicBB", "extBBCL",
		"bd1", "bd2", "bd3", "bd4", "bd5", "adp1", "adp2", "adp3", "adp4", "heur"}
	names := map[string]bool{}
	for _, s := range mbb.Solvers() {
		names[s.Name] = true
		if s.Doc == "" || s.Run == nil {
			t.Errorf("solver %q lacks doc or run", s.Name)
		}
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("missing registered solver %q", n)
		}
	}
	if len(names) != len(want) {
		t.Errorf("registry has %d solvers, want %d: %v", len(names), len(want), mbb.SolverNames())
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"hbvMBB", "HBVMBB", "hbvmbb"} {
		spec, ok := mbb.Lookup(name)
		if !ok || spec.Name != "hbvMBB" {
			t.Fatalf("Lookup(%q) = %v, %v", name, spec.Name, ok)
		}
	}
	if _, ok := mbb.Lookup("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if _, err := mbb.Solve(mbb.FromEdges(1, 1, nil), &mbb.Options{Solver: "nope"}); err == nil {
		t.Fatal("unknown solver accepted by Solve")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := mbb.Register(mbb.SolverSpec{Name: "x"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	dup := mbb.SolverSpec{Name: "HBVmbb", Doc: "dup",
		Run: func(ex *core.Exec, g *mbb.Graph, opt *mbb.Options) (core.Result, error) {
			return core.Result{}, nil
		}}
	if err := mbb.Register(dup); err == nil {
		t.Fatal("case-insensitive duplicate accepted")
	}
}

// TestQuickRegistrySolversAgree: every registered exact solver must find
// the brute-force optimum on random graphs.
func TestQuickRegistrySolversAgree(t *testing.T) {
	exact := []string{"auto", "hbvMBB", "denseMBB", "basicBB", "extBBCL",
		"bd1", "bd2", "bd3", "bd4", "bd5", "adp1", "adp2", "adp3", "adp4"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10, 0.1+0.7*rng.Float64())
		want := baseline.BruteForceSize(g)
		for _, name := range exact {
			res, err := mbb.Solve(g, &mbb.Options{Solver: name})
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			if res.Biclique.Size() != want {
				t.Logf("%s: got %d want %d (edges=%v)", name, res.Biclique.Size(), want, g.Edges())
				return false
			}
			if res.Solver == "" || res.Solver == "auto" {
				t.Logf("%s: unresolved solver name %q", name, res.Solver)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDenseCellLimit: lowering the cap must surface ErrTooLarge from
// every dense-matrix entry point.
func TestDenseCellLimit(t *testing.T) {
	old := mbb.DenseCellLimit
	defer func() { mbb.DenseCellLimit = old }()
	mbb.DenseCellLimit = 8
	g := mbb.FromEdges(4, 4, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}})

	if _, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.DenseMBB}); !errors.Is(err, mbb.ErrTooLarge) {
		t.Fatalf("Solve(denseMBB) err = %v, want ErrTooLarge", err)
	}
	if _, err := mbb.SolveMaxVertex(g); !errors.Is(err, mbb.ErrTooLarge) {
		t.Fatalf("SolveMaxVertex err = %v, want ErrTooLarge", err)
	}
	if _, _, err := mbb.SolveMaxEdge(g, 0); !errors.Is(err, mbb.ErrTooLarge) {
		t.Fatalf("SolveMaxEdge err = %v, want ErrTooLarge", err)
	}
	if _, _, err := mbb.HasBiclique(g, 1, 1, 0); !errors.Is(err, mbb.ErrTooLarge) {
		t.Fatalf("HasBiclique err = %v, want ErrTooLarge", err)
	}
	// hbvMBB does not build a global matrix and must still work.
	if _, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.HbvMBB}); err != nil {
		t.Fatalf("hbvMBB should not be capped: %v", err)
	}
}
