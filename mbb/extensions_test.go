package mbb_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/mbb"
)

func TestSolveMaxVertex(t *testing.T) {
	// Star: one left hub connected to 5 rights → MVB is 1+5 = 6.
	g := mbb.FromEdges(3, 5, [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}})
	bc, err := mbb.SolveMaxVertex(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bc.A) + len(bc.B); got != 6 {
		t.Fatalf("MVB size = %d, want 6 (%v %v)", got, bc.A, bc.B)
	}
	if !bc.IsBicliqueOf(g) {
		t.Fatal("invalid MVB")
	}
	if _, err := mbb.SolveMaxVertex(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestSolveMaxEdge(t *testing.T) {
	// 2x3 complete block (6 edges) beats a 1x4 star (4 edges).
	g := mbb.FromEdges(3, 4, [][2]int{
		{0, 0}, {0, 1}, {0, 2},
		{1, 0}, {1, 1}, {1, 2},
		{2, 3},
	})
	bc, exact, err := mbb.SolveMaxEdge(g, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("tiny instance should be exact")
	}
	if got := len(bc.A) * len(bc.B); got != 6 {
		t.Fatalf("MEB edges = %d, want 6", got)
	}
	if !bc.IsBicliqueOf(g) {
		t.Fatal("invalid MEB")
	}
}

func TestHasBiclique(t *testing.T) {
	g := mbb.FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}})
	ok, bc, err := mbb.HasBiclique(g, 2, 2, 0)
	if err != nil || !ok {
		t.Fatalf("expected a (2,2) biclique: %v %v", ok, err)
	}
	if len(bc.A) != 2 || len(bc.B) != 2 || !bc.IsBicliqueOf(g) {
		t.Fatalf("bad witness %v", bc)
	}
	ok, _, err = mbb.HasBiclique(g, 3, 2, 0)
	if err != nil || ok {
		t.Fatalf("there is no (3,2) biclique: %v %v", ok, err)
	}
	if _, _, err := mbb.HasBiclique(g, 0, 1, 0); err == nil {
		t.Fatal("non-positive size accepted")
	}
}

func TestEnumerateMaximalBicliques(t *testing.T) {
	// Perfect matching: 4 maximal bicliques.
	g := mbb.FromEdges(4, 4, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	count := 0
	n, err := mbb.EnumerateMaximalBicliques(g, 0, func(bc mbb.Biclique) bool {
		count++
		return bc.IsBicliqueOf(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || count != 4 {
		t.Fatalf("enumerated %d, want 4", n)
	}
	if _, err := mbb.EnumerateMaximalBicliques(nil, 0, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestExtensionsConsistency ties the three objectives together on random
// graphs: MVB ≥ 2·MBB, MEB ≥ MBB², and the (k,k) decision agrees with the
// MBB optimum.
func TestExtensionsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 10, 0.4)
		res, err := mbb.Solve(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		k := res.Biclique.Size()

		mvb, err := mbb.SolveMaxVertex(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(mvb.A)+len(mvb.B) < 2*k {
			t.Fatalf("MVB %d < 2*MBB %d", len(mvb.A)+len(mvb.B), 2*k)
		}

		meb, exact, err := mbb.SolveMaxEdge(g, time.Minute)
		if err != nil || !exact {
			t.Fatalf("MEB failed: %v %v", err, exact)
		}
		if len(meb.A)*len(meb.B) < k*k {
			t.Fatalf("MEB %d < MBB² %d", len(meb.A)*len(meb.B), k*k)
		}

		if k > 0 {
			ok, _, err := mbb.HasBiclique(g, k, k, 0)
			if err != nil || !ok {
				t.Fatalf("(k,k) decision false for k = MBB = %d", k)
			}
		}
		ok, _, err := mbb.HasBiclique(g, k+1, k+1, 0)
		if err != nil || ok {
			t.Fatalf("(k+1,k+1) decision true above the optimum %d", k)
		}
	}
}
