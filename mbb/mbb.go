// Package mbb is the public API of the maximum-balanced-biclique engine:
// exact solvers for dense and sparse bipartite graphs reproducing Chen,
// Liu, Zhou, Xu and Li, "Efficient Exact Algorithms for Maximum Balanced
// Biclique Search in Bipartite Graphs" (PVLDB/SIGMOD 2021 line of work).
//
// Quick start:
//
//	g := mbb.FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
//	res, err := mbb.Solve(g, nil)
//	// res.Biclique.A and .B hold the two sides; res.Exact reports
//	// whether the search completed within budget.
//
// # Engine architecture
//
// Every solve runs on a core.Exec execution context created by
// SolveContext: it carries context.Context cancellation, the wall-clock
// and node budgets (atomic, safe under Options.Workers > 1), the shared
// incumbent balanced size that lets concurrent workers tighten each
// other's pruning bounds the moment any of them improves, and the
// aggregated search statistics. Cancel the context — or set a Timeout or
// MaxNodes budget — and the search returns promptly with the best
// biclique found so far and Exact == false.
//
// When Options.Reduce enables it (the default for the "auto" solver), a
// reduce-and-conquer planner runs ahead of the solver:
//
//	heuristic → reduce → decompose → solve → remap
//
// A greedy heuristic seeds the shared incumbent with a lower bound τ; the
// planner then peels every vertex that provably cannot belong to a
// balanced biclique larger than τ (the (τ+1)-core intersected with the
// 2τ+1 bicore threshold, iterated to a fixed point), splits the survivor
// into connected components, solves the components concurrently largest
// first — all sharing one budget and incumbent — and maps the winner back
// to the original vertex ids. Reduction statistics (τ, vertices peeled,
// components solved) are reported in Stats.
//
// # Query classes
//
// Beyond the single maximum, Options selects richer queries on the same
// engine (and the same cached Plan — plans are query-independent):
//
//   - Options.TopK > 1 returns one balanced witness for each of the k
//     largest distinct balanced sizes in Result.Bicliques, largest
//     first, with Result.Biclique as the head. TopK ≤ 1 is exactly the
//     classic solve — same path, no list allocated. Top-k requires an
//     exact solver (heuristics cannot certify per-size answers).
//   - Options.MinSize restricts answers to bicliques of at least that
//     size per side. The floor seeds the shared incumbent, so solvers
//     prune below it from the first node; an exact empty Result is a
//     proof that no qualifying biclique exists, and a floor larger than
//     a side of the graph is refused at plan time by counting alone.
//   - Budgeted solves are anytime: an inexact Result carries the best
//     biclique found plus Result.Gap, the certified distance between the
//     answer and the weakest surviving upper bound
//     (Stats.UpperBound). Gap == 0 on an inexact result still means the
//     answer is optimal — only the proof was cut short.
//
// Solvers are named and pluggable: Solvers lists the registry, Lookup
// resolves a name case-insensitively, and Register adds custom entries.
// The built-in names (see registry.go for the paper mapping) are
//
//	auto      — picks denseMBB or hbvMBB from the graph shape
//	denseMBB  — reduction/branch-and-bound for dense graphs (Algorithm 3)
//	hbvMBB    — the sparse framework (Algorithm 4, steps = Algorithms 5-8)
//	basicBB   — plain branch and bound (Algorithm 1)
//	extBBCL   — prior state-of-the-art exact algorithm [31]
//	bd1..bd5  — hbvMBB ablations of Table 3
//	adp1..adp4 — composed MBE-based baselines of Table 3
//	heur      — step 1 heuristic only (hMBB, Algorithm 5), inexact
//
// hbvMBB's bridging and verification steps (Algorithms 6 and 8) run as a
// streaming pipeline: vertex-centred subgraphs flow through a bounded
// channel into Options.Workers verification workers, so peak memory is
// O(workers) subgraphs and every improvement propagates instantly.
package mbb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
)

// Graph is a bipartite graph. Left vertices have unified ids [0, NL());
// right vertices have [NL(), NL()+NR()).
type Graph = bigraph.Graph

// Builder accumulates edges for a Graph.
type Builder = bigraph.Builder

// Biclique is a pair of vertex sets (A over the left side, B over the
// right side, both as unified ids).
type Biclique = bigraph.Biclique

// Stats carries search statistics.
type Stats = core.Stats

// NewBuilder returns a builder for an nl×nr bipartite graph.
func NewBuilder(nl, nr int) *Builder { return bigraph.NewBuilder(nl, nr) }

// FromEdges builds a graph from side-local (l, r) index pairs.
func FromEdges(nl, nr int, edges [][2]int) *Graph { return bigraph.FromEdges(nl, nr, edges) }

// ReadGraph parses the text edge-list format ("nL nR m" header, one "l r"
// pair per line, '%'/'#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return bigraph.Read(r) }

// WriteGraph serialises g in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return bigraph.Write(w, g) }

// Algorithm selects one of the classic solvers by enum value. It predates
// the named registry and is kept for compatibility; Options.Solver (any
// registered name, including the bd/adp ablations) takes precedence.
type Algorithm int

const (
	// Auto picks DenseMBB for small dense graphs and HbvMBB otherwise.
	Auto Algorithm = iota
	// HbvMBB is the paper's framework for large sparse graphs
	// (Algorithm 4): heuristics + reduction, bridging to vertex-centred
	// subgraphs in bidegeneracy order, and dense verification.
	HbvMBB
	// DenseMBB is the reduction/branch-and-bound solver for dense graphs
	// (Algorithm 3).
	DenseMBB
	// BasicBB is the plain enumeration of Algorithm 1 (mainly a baseline).
	BasicBB
	// ExtBBCL is the prior state-of-the-art exact algorithm [31].
	ExtBBCL
)

// String names the algorithm as in the paper (and as registered).
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case HbvMBB:
		return "hbvMBB"
	case DenseMBB:
		return "denseMBB"
	case BasicBB:
		return "basicBB"
	case ExtBBCL:
		return "extBBCL"
	}
	return "unknown"
}

// Options configures Solve and SolveContext. The zero value (or nil)
// means: automatic solver choice, bidegeneracy order, no budget, a
// sequential verification pipeline.
//
// Zero-value semantics are load-bearing for callers that forward
// user-supplied budgets (such as the mbbserved daemon): Timeout == 0 and
// MaxNodes == 0 mean "unlimited", Workers == 0 (or 1) means sequential.
// Negative values are never meaningful; SolveContext, Solve and
// Plan.SolveContext validate once at the entry point and reject them
// with an error wrapping ErrBadOptions, so nonsense can't silently
// become "unlimited" deeper in the engine.
type Options struct {
	// Solver names a registered solver (see Solvers). When non-empty it
	// takes precedence over Algorithm; "auto" (or empty plus Algorithm ==
	// Auto) picks denseMBB or hbvMBB from the graph shape.
	Solver string

	// Algorithm is the classic enum selector, consulted only when Solver
	// is empty.
	Algorithm Algorithm

	// Timeout bounds the wall-clock search time; 0 means unlimited and
	// negative values are rejected (ErrBadOptions). When the budget
	// expires the best biclique found so far is returned with
	// Exact == false.
	Timeout time.Duration

	// MaxNodes bounds the number of search nodes across all workers;
	// 0 means unlimited, negative values are rejected (ErrBadOptions).
	MaxNodes int64

	// Order selects the total search order for the sparse framework
	// (default bidegeneracy, the paper's choice). Ignored by solvers
	// whose variant fixes the order (bd4, bd5).
	Order decomp.OrderKind

	// Workers is the number of goroutines used by the sparse framework's
	// streaming verification pipeline and by the planner's per-component
	// solves; 0 and 1 keep both sequential, negative values are rejected
	// (ErrBadOptions).
	Workers int

	// Reduce controls the reduce-and-conquer planner that runs ahead of
	// the solver: a cheap greedy heuristic seeds the shared incumbent with
	// a lower bound τ, vertices that cannot belong to any balanced
	// biclique larger than τ are peeled to a fixed point (the (τ+1)-core
	// intersected with the 2τ+1 bicore threshold), and the surviving
	// connected components are solved concurrently — largest first — on
	// the shared execution context. The default (ReduceAuto) enables the
	// planner for the "auto" solver and disables it for explicitly named
	// solvers; ReduceOn/ReduceOff override per call. Heuristic solvers
	// never use the planner.
	Reduce Reduce

	// TopK asks for the k largest distinct balanced sizes instead of one
	// maximum: Result.Bicliques holds one witness per size, largest
	// first (see Result.Bicliques for the exact semantics). 0 and 1 both
	// mean the classic single-maximum query — 0 is the default, and the
	// k == 1 path is byte-identical to it; negative values are rejected
	// (ErrBadOptions). TopK > 1 requires an exact solver: heuristic
	// solvers cannot rank sizes they never prove.
	TopK int

	// MinSize is the size-constrained floor: only balanced bicliques of
	// at least MinSize per side count as answers. The engine seeds the
	// shared incumbent with MinSize−1 — every solver then prunes below
	// the floor for free — and the planner peels with
	// τ = max(greedy seed, MinSize−1). When no qualifying biclique
	// exists the result is an *empty* biclique with Exact == true: the
	// completed floor-seeded search is the proof of absence. Queries
	// with MinSize exceeding a side of the graph are refused at plan
	// time with the same empty proof, without running a solver. 0 means
	// no floor (the default); negative values are rejected
	// (ErrBadOptions).
	MinSize int
}

// Result is the outcome of Solve.
type Result struct {
	// Biclique is the best balanced biclique found. A and B are unified
	// vertex ids of the input graph. Under Options.MinSize it is empty
	// when no biclique of at least MinSize per side exists — with
	// Exact == true that emptiness is a proof of absence, not a failure.
	Biclique Biclique
	// Exact is true when the search ran to completion, proving optimality.
	Exact bool
	// Bicliques is the top-k answer list, populated only when
	// Options.TopK > 1 (the k ≤ 1 fast path never allocates it): one
	// balanced witness for each of the k largest distinct balanced sizes,
	// largest first, every size ≥ Options.MinSize. It may be shorter than
	// k when fewer distinct sizes exist; Bicliques[0] always agrees with
	// Biclique. With Exact == false the list is best-effort, like the
	// scalar incumbent.
	Bicliques []Biclique
	// Gap quantifies inexactness: the difference between the tightest
	// upper bound on the maximum balanced size that survived the search
	// (Stats.UpperBound) and the size actually found. 0 when Exact; a
	// budget-cut solve with Gap == 0 is also optimal even though the
	// search did not finish — the certificate just arrived from bounds
	// rather than exhaustion.
	Gap int
	// Solver is the registry name of the solver that actually ran
	// (resolves "auto").
	Solver string
	// Algorithm is the classic enum value of the solver that ran, for
	// callers predating the registry; Auto when the solver has no enum
	// value (bd/adp variants, heur, custom registrations).
	Algorithm Algorithm
	// Reduced reports whether the reduce-and-conquer planner ran ahead of
	// the solver (see Options.Reduce).
	Reduced bool
	// Stats holds search counters.
	Stats Stats
}

// ErrNilGraph is returned when Solve receives a nil graph.
var ErrNilGraph = errors.New("mbb: nil graph")

// ErrBadOptions tags errors returned for nonsensical Options values
// (negative Timeout, MaxNodes or Workers). Test with errors.Is.
var ErrBadOptions = errors.New("mbb: invalid options")

// Validate rejects Options values that are never meaningful. It runs
// once at every public entry point (SolveContext, Solve, PlanContext's
// solve phase), so services can forward user-supplied budgets without
// re-checking them.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Timeout < 0 {
		return fmt.Errorf("%w: negative Timeout %v", ErrBadOptions, o.Timeout)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("%w: negative MaxNodes %d", ErrBadOptions, o.MaxNodes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", ErrBadOptions, o.Workers)
	}
	if o.TopK < 0 {
		return fmt.Errorf("%w: negative TopK %d", ErrBadOptions, o.TopK)
	}
	if o.MinSize < 0 {
		return fmt.Errorf("%w: negative MinSize %d", ErrBadOptions, o.MinSize)
	}
	return nil
}

// resolveSpec resolves opt's solver choice through the registry and
// reports whether it was the automatic choice (which the caller — and
// the planner, per component — finalises from the graph shape).
func resolveSpec(opt *Options) (SolverSpec, bool, error) {
	name := opt.Solver
	if name == "" {
		name = opt.Algorithm.String()
	}
	spec, ok := Lookup(name)
	if !ok {
		return SolverSpec{}, false, unknownSolverError(name)
	}
	return spec, spec.Name == "auto", nil
}

// denseAutoLimit bounds the adjacency-matrix size (in bits per side
// product) under which Auto considers the dense solver.
const denseAutoLimit = 1 << 24 // 16M cells ≈ 2 MB per side

// autoSolverName resolves the automatic solver choice from the graph
// shape: the dense solver for small dense graphs, the sparse framework
// for everything else.
func autoSolverName(g *Graph) string {
	if int64(g.NL())*int64(g.NR()) <= denseAutoLimit && g.Density() >= 0.4 {
		return "denseMBB"
	}
	return "hbvMBB"
}

// SolveContext answers a biclique query on g under ctx: the solver is
// resolved through the registry, an execution context carrying ctx plus
// the Timeout/MaxNodes budgets is built, and the search runs until
// completion, budget exhaustion or cancellation — whichever comes first.
// The default query is the classic single maximum; Options.TopK and
// Options.MinSize select the top-k and size-constrained classes, and
// every inexact answer carries a quantified optimality gap (Result.Gap).
// opt may be nil for defaults.
func SolveContext(ctx context.Context, g *Graph, opt *Options) (Result, error) {
	if g == nil {
		return Result{}, ErrNilGraph
	}
	if opt == nil {
		opt = &Options{}
	}
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	spec, isAuto, err := resolveSpec(opt)
	if err != nil {
		return Result{}, err
	}
	q := queryOf(opt)
	if q.k > 1 && spec.Heuristic {
		return Result{}, fmt.Errorf("%w: heuristic solver %q cannot answer top-k queries", ErrBadOptions, spec.Name)
	}
	ex := core.NewExec(ctx, core.Limits{Timeout: opt.Timeout, MaxNodes: opt.MaxNodes})
	if isAuto {
		spec, _ = Lookup(autoSolverName(g))
	}
	if q.infeasible(g) {
		return q.refuse(g, spec.Name), nil
	}
	if f := q.floor(); f > 0 {
		// Seed the shared incumbent with the floor: every solver then
		// prunes below MinSize for free, and a completed search that
		// found nothing above it is a proof of absence.
		ex.OfferBest(f)
	}
	var res core.Result
	planned := planActive(opt, isAuto, spec.Heuristic)
	if planned {
		res, err = planSolve(ex, g, spec, isAuto, opt)
	} else {
		res, err = spec.Run(ex, g, opt)
	}
	if err != nil {
		return Result{}, err
	}
	exact := !res.Stats.TimedOut
	if spec.Heuristic {
		// A heuristic solver proves optimality only when the Lemma 5
		// early-termination step fired.
		exact = exact && res.Stats.Step == core.Step1
	}
	var list []Biclique
	if q.k > 1 {
		list = topKTail(ex, g, q, &res)
		exact = exact && !res.Stats.TimedOut
	}
	return finishResult(g, q, spec.Name, planned, res, exact, list), nil
}

// Solve computes a maximum balanced biclique of g. opt may be nil for
// defaults. The result is exact unless a budget expired (Result.Exact).
// It is a compatibility wrapper over SolveContext with a background
// context.
func Solve(g *Graph, opt *Options) (Result, error) {
	return SolveContext(context.Background(), g, opt)
}

// algorithmOf maps a registry name back to the classic enum value, Auto
// when there is none.
func algorithmOf(name string) Algorithm {
	switch name {
	case "hbvMBB":
		return HbvMBB
	case "denseMBB":
		return DenseMBB
	case "basicBB":
		return BasicBB
	case "extBBCL":
		return ExtBBCL
	}
	return Auto
}
