// Package mbb is the public API of the maximum-balanced-biclique library:
// exact solvers for dense and sparse bipartite graphs reproducing Chen,
// Liu, Zhou, Xu and Li, "Efficient Exact Algorithms for Maximum Balanced
// Biclique Search in Bipartite Graphs" (PVLDB/SIGMOD 2021 line of work).
//
// Quick start:
//
//	g := mbb.FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
//	res, err := mbb.Solve(g, nil)
//	// res.Biclique.A and .B hold the two sides; res.Exact reports
//	// whether the search completed within budget.
//
// The solver picks hbvMBB (the sparse framework, Algorithm 4) or denseMBB
// (Algorithm 3) automatically based on graph shape; Options overrides the
// choice, adds budgets, or selects baseline algorithms for comparison.
package mbb

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// Graph is a bipartite graph. Left vertices have unified ids [0, NL());
// right vertices have [NL(), NL()+NR()).
type Graph = bigraph.Graph

// Builder accumulates edges for a Graph.
type Builder = bigraph.Builder

// Biclique is a pair of vertex sets (A over the left side, B over the
// right side, both as unified ids).
type Biclique = bigraph.Biclique

// Stats carries search statistics.
type Stats = core.Stats

// NewBuilder returns a builder for an nl×nr bipartite graph.
func NewBuilder(nl, nr int) *Builder { return bigraph.NewBuilder(nl, nr) }

// FromEdges builds a graph from side-local (l, r) index pairs.
func FromEdges(nl, nr int, edges [][2]int) *Graph { return bigraph.FromEdges(nl, nr, edges) }

// ReadGraph parses the text edge-list format ("nL nR m" header, one "l r"
// pair per line, '%'/'#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return bigraph.Read(r) }

// WriteGraph serialises g in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return bigraph.Write(w, g) }

// Algorithm selects the solver.
type Algorithm int

const (
	// Auto picks DenseMBB for small dense graphs and HbvMBB otherwise.
	Auto Algorithm = iota
	// HbvMBB is the paper's framework for large sparse graphs
	// (Algorithm 4): heuristics + reduction, bridging to vertex-centred
	// subgraphs in bidegeneracy order, and dense verification.
	HbvMBB
	// DenseMBB is the reduction/branch-and-bound solver for dense graphs
	// (Algorithm 3).
	DenseMBB
	// BasicBB is the plain enumeration of Algorithm 1 (mainly a baseline).
	BasicBB
	// ExtBBCL is the prior state-of-the-art exact algorithm [31].
	ExtBBCL
)

// String names the algorithm as in the paper.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case HbvMBB:
		return "hbvMBB"
	case DenseMBB:
		return "denseMBB"
	case BasicBB:
		return "basicBB"
	case ExtBBCL:
		return "extBBCL"
	}
	return "unknown"
}

// Options configures Solve. The zero value (or nil) means: automatic
// algorithm choice, bidegeneracy order, no budget.
type Options struct {
	Algorithm Algorithm

	// Timeout bounds the wall-clock search time; 0 means unlimited. When
	// the budget expires the best biclique found so far is returned with
	// Exact == false.
	Timeout time.Duration

	// MaxNodes bounds the number of search nodes; 0 means unlimited.
	MaxNodes int64

	// Order selects the total search order for HbvMBB (default
	// bidegeneracy, the paper's choice).
	Order decomp.OrderKind
}

// Result is the outcome of Solve.
type Result struct {
	// Biclique is the best balanced biclique found. A and B are unified
	// vertex ids of the input graph.
	Biclique Biclique
	// Exact is true when the search ran to completion, proving optimality.
	Exact bool
	// Algorithm is the solver that actually ran (resolves Auto).
	Algorithm Algorithm
	// Stats holds search counters.
	Stats Stats
}

// ErrNilGraph is returned when Solve receives a nil graph.
var ErrNilGraph = errors.New("mbb: nil graph")

// denseAutoLimit bounds the adjacency-matrix size (in bits per side
// product) under which Auto considers the dense solver.
const denseAutoLimit = 1 << 24 // 16M cells ≈ 2 MB per side

// Solve computes a maximum balanced biclique of g. opt may be nil for
// defaults. The result is exact unless a budget expired (Result.Exact).
func Solve(g *Graph, opt *Options) (Result, error) {
	if g == nil {
		return Result{}, ErrNilGraph
	}
	if opt == nil {
		opt = &Options{}
	}
	algo := opt.Algorithm
	if algo == Auto {
		if int64(g.NL())*int64(g.NR()) <= denseAutoLimit && g.Density() >= 0.4 {
			algo = DenseMBB
		} else {
			algo = HbvMBB
		}
	}
	budget := &core.Budget{MaxNodes: opt.MaxNodes}
	if opt.Timeout > 0 {
		budget.Deadline = time.Now().Add(opt.Timeout)
	}

	var res core.Result
	switch algo {
	case HbvMBB:
		so := sparse.DefaultOptions()
		if opt.Order != 0 {
			so.Order = opt.Order
		}
		so.Budget = budget
		res = sparse.Solve(g, so)
	case DenseMBB, BasicBB:
		mode := dense.ModeDense
		if algo == BasicBB {
			mode = dense.ModeBasic
		}
		if int64(g.NL())*int64(g.NR()) > 1<<32 {
			return Result{}, fmt.Errorf("mbb: graph too large for the dense solver (%d×%d); use HbvMBB", g.NL(), g.NR())
		}
		m := dense.FromBigraph(g)
		dres := dense.Solve(m, dense.Options{Mode: mode, Budget: budget})
		res.Stats = dres.Stats
		if dres.Found {
			for _, l := range dres.A {
				res.Biclique.A = append(res.Biclique.A, g.Left(l))
			}
			for _, r := range dres.B {
				res.Biclique.B = append(res.Biclique.B, g.Right(r))
			}
		}
	case ExtBBCL:
		res = baseline.ExtBBCL(g, budget)
	default:
		return Result{}, fmt.Errorf("mbb: unknown algorithm %d", algo)
	}
	return Result{
		Biclique:  res.Biclique,
		Exact:     !res.Stats.TimedOut,
		Algorithm: algo,
		Stats:     res.Stats,
	}, nil
}
