package mbb_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/mbb"
)

// TestDatasetStandInsEndToEnd solves a sample of the Table 5 stand-ins at
// small scale and checks the planted optimum is recovered exactly.
func TestDatasetStandInsEndToEnd(t *testing.T) {
	wantOpt := map[string]int{}
	for _, d := range mbb.Datasets() {
		wantOpt[d.Name] = d.Optimum
	}
	for _, name := range []string{"unicodelang", "moreno-crime-crime", "opsahl-ucforum", "escorts", "github", "dbpedia-genre"} {
		g, ok := mbb.GenerateDataset(name, 8000, 3)
		if !ok {
			t.Fatalf("unknown dataset %s", name)
		}
		res, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.HbvMBB, Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Errorf("%s: not exact within a minute", name)
			continue
		}
		if res.Biclique.Size() < wantOpt[name] {
			t.Errorf("%s: found %d < planted %d", name, res.Biclique.Size(), wantOpt[name])
		}
		if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
			t.Errorf("%s: invalid result", name)
		}
	}
}

// TestQuickMonotoneUnderEdgeAddition: adding edges can never shrink the
// maximum balanced biclique.
func TestQuickMonotoneUnderEdgeAddition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 2+rng.Intn(10), 2+rng.Intn(10)
		var edges [][2]int
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, [2]int{l, r})
				}
			}
		}
		g1 := mbb.FromEdges(nl, nr, edges)
		// Add a few more random edges.
		extra := append([][2]int(nil), edges...)
		for i := 0; i < 4; i++ {
			extra = append(extra, [2]int{rng.Intn(nl), rng.Intn(nr)})
		}
		g2 := mbb.FromEdges(nl, nr, extra)
		r1, err1 := mbb.Solve(g1, nil)
		r2, err2 := mbb.Solve(g2, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Biclique.Size() >= r1.Biclique.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubgraphBound: the MBB of an induced subgraph never exceeds
// the MBB of the full graph (exercises consistency between the sparse
// pipeline and graph surgery).
func TestQuickSubgraphBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 3+rng.Intn(9), 3+rng.Intn(9)
		b := mbb.NewBuilder(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(l, r)
				}
			}
		}
		g := b.Build()
		full, err := mbb.Solve(g, nil)
		if err != nil {
			return false
		}
		// Drop one left vertex's edges by rebuilding without it.
		drop := rng.Intn(nl)
		b2 := mbb.NewBuilder(nl, nr)
		for _, e := range g.Edges() {
			if e[0] != drop {
				b2.AddEdge(e[0], e[1])
			}
		}
		sub, err := mbb.Solve(b2.Build(), nil)
		if err != nil {
			return false
		}
		return sub.Biclique.Size() <= full.Biclique.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: repeated solves of the same graph return the same
// size regardless of algorithm.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 12, 0.4)
	var sizes []int
	for i := 0; i < 3; i++ {
		for _, a := range []mbb.Algorithm{mbb.HbvMBB, mbb.DenseMBB} {
			res, err := mbb.Solve(g, &mbb.Options{Algorithm: a})
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, res.Biclique.Size())
		}
	}
	for _, s := range sizes {
		if s != sizes[0] {
			t.Fatalf("nondeterministic sizes: %v", sizes)
		}
	}
}
