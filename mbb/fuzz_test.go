package mbb_test

import (
	"errors"
	"testing"

	"repro/internal/baseline"
	"repro/mbb"
)

// The differential harness: every registered solver — with and without the
// reduce-and-conquer planner — must agree with the brute-force oracle on
// the maximum balanced size. Exact solvers must match it exactly;
// heuristic solvers must never exceed it and must match it whenever they
// claim exactness. The same check runs over a seeded corpus in plain
// `go test` (TestSolversAgreeCorpus) and as a fuzz target
// (FuzzSolversAgree) for CI's bounded smoke run and open-ended fuzzing.

// agreeGraph decodes fuzz-sized parameters into a small test graph. Sides
// are capped at 7 so the brute-force oracle enumerates ≤ 2^7 subsets.
func agreeGraph(nlRaw, nrRaw, mode, density uint8, edges uint16, seed int64) *mbb.Graph {
	nl := 1 + int(nlRaw)%7
	nr := 1 + int(nrRaw)%7
	if mode%2 == 0 {
		p := float64(density) / 255 // full range incl. 0 and 1
		return mbb.GenerateDense(nl, nr, p, seed)
	}
	m := 1 + int(edges)%(3*(nl+nr))
	return mbb.GeneratePowerLaw(nl, nr, m, seed)
}

// checkSolversAgree runs every registered solver on g in both planner
// modes and compares against the oracle — the scalar maximum plus, for
// exact solvers, the top-k size sequences (k ∈ {2, 3}) and the MinSize
// floor semantics against the brute-force top-k oracle.
func checkSolversAgree(t *testing.T, g *mbb.Graph) {
	t.Helper()
	oracle := baseline.BruteForceSize(g)
	for _, spec := range mbb.Solvers() {
		for _, reduce := range []mbb.Reduce{mbb.ReduceOff, mbb.ReduceOn} {
			res, err := mbb.Solve(g, &mbb.Options{Solver: spec.Name, Reduce: reduce})
			if err != nil {
				t.Fatalf("%s reduce=%v: %v", spec.Name, reduce, err)
			}
			bc := res.Biclique
			if !bc.IsBicliqueOf(g) {
				t.Fatalf("%s reduce=%v: returned an invalid biclique %v", spec.Name, reduce, bc)
			}
			if !bc.IsBalanced() {
				t.Fatalf("%s reduce=%v: returned an unbalanced biclique %v", spec.Name, reduce, bc)
			}
			size := bc.Size()
			if spec.Heuristic {
				if size > oracle {
					t.Fatalf("%s reduce=%v: heuristic size %d exceeds oracle %d", spec.Name, reduce, size, oracle)
				}
				if res.Exact && size != oracle {
					t.Fatalf("%s reduce=%v: claims exactness at size %d, oracle %d", spec.Name, reduce, size, oracle)
				}
				// A list answer needs exact per-size certificates; heuristics
				// must be refused up front.
				if _, err := mbb.Solve(g, &mbb.Options{Solver: spec.Name, Reduce: reduce, TopK: 2}); !errors.Is(err, mbb.ErrBadOptions) {
					t.Fatalf("%s reduce=%v: TopK=2 err = %v, want ErrBadOptions", spec.Name, reduce, err)
				}
				continue
			}
			if !res.Exact {
				t.Fatalf("%s reduce=%v: unbudgeted exact solve reported inexact", spec.Name, reduce)
			}
			if size != oracle {
				t.Fatalf("%s reduce=%v: size %d, oracle %d (graph %dx%d, %d edges)",
					spec.Name, reduce, size, oracle, g.NL(), g.NR(), g.NumEdges())
			}
			checkQueriesAgree(t, g, spec.Name, reduce, oracle)
		}
	}
}

// checkQueriesAgree checks an exact solver's query-engine answers against
// the brute-force top-k oracle: size sequences for k ∈ {2, 3} (k = 1 is
// the scalar path above), the MinSize floor at, below and above the
// optimum, and the combined form. Witness identity is not comparable
// under pruning, so lists compare by size sequence and witnesses are
// validated structurally.
func checkQueriesAgree(t *testing.T, g *mbb.Graph, name string, reduce mbb.Reduce, oracle int) {
	t.Helper()
	checkList := func(res mbb.Result, k, minSize int) {
		t.Helper()
		want := baseline.TopKSizes(nil, g, k, minSize)
		got := make([]int, len(res.Bicliques))
		for i, bc := range res.Bicliques {
			if !bc.IsBicliqueOf(g) || !bc.IsBalanced() {
				t.Fatalf("%s reduce=%v k=%d min=%d: invalid witness %v", name, reduce, k, minSize, bc)
			}
			got[i] = bc.Size()
		}
		if len(got) != len(want) {
			t.Fatalf("%s reduce=%v k=%d min=%d: sizes %v, oracle %v", name, reduce, k, minSize, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s reduce=%v k=%d min=%d: sizes %v, oracle %v", name, reduce, k, minSize, got, want)
			}
		}
		if len(got) > 0 && res.Biclique.Size() != got[0] {
			t.Fatalf("%s reduce=%v k=%d min=%d: scalar %d disagrees with list head %d",
				name, reduce, k, minSize, res.Biclique.Size(), got[0])
		}
	}
	for _, k := range []int{2, 3} {
		res, err := mbb.Solve(g, &mbb.Options{Solver: name, Reduce: reduce, TopK: k})
		if err != nil {
			t.Fatalf("%s reduce=%v TopK=%d: %v", name, reduce, k, err)
		}
		if !res.Exact {
			t.Fatalf("%s reduce=%v TopK=%d: unbudgeted solve inexact", name, reduce, k)
		}
		if res.Bicliques == nil {
			t.Fatalf("%s reduce=%v TopK=%d: nil Bicliques", name, reduce, k)
		}
		checkList(res, k, 0)
	}
	for _, m := range []int{1, oracle, oracle + 1} {
		if m < 1 {
			continue
		}
		res, err := mbb.Solve(g, &mbb.Options{Solver: name, Reduce: reduce, MinSize: m})
		if err != nil {
			t.Fatalf("%s reduce=%v MinSize=%d: %v", name, reduce, m, err)
		}
		if !res.Exact {
			t.Fatalf("%s reduce=%v MinSize=%d: unbudgeted solve inexact", name, reduce, m)
		}
		if res.Bicliques != nil {
			t.Fatalf("%s reduce=%v MinSize=%d: list allocated on a scalar query", name, reduce, m)
		}
		switch size := res.Biclique.Size(); {
		case m <= oracle && size != oracle:
			t.Fatalf("%s reduce=%v MinSize=%d: size %d, oracle %d", name, reduce, m, size, oracle)
		case m > oracle && size != 0:
			t.Fatalf("%s reduce=%v MinSize=%d > oracle %d: size %d, want empty proof", name, reduce, m, oracle, size)
		}
	}
	res, err := mbb.Solve(g, &mbb.Options{Solver: name, Reduce: reduce, TopK: 2, MinSize: 2})
	if err != nil {
		t.Fatalf("%s reduce=%v TopK=2 MinSize=2: %v", name, reduce, err)
	}
	checkList(res, 2, 2)
}

// agreeCase is one seeded corpus entry.
type agreeCase struct {
	nl, nr, mode, density uint8
	edges                 uint16
	seed                  int64
}

// agreeCorpus returns the seeded cases: a deterministic sweep over both
// workload families plus hand-picked degenerate shapes. Must stay ≥ 50
// entries — the differential harness's acceptance floor.
func agreeCorpus() []agreeCase {
	cases := []agreeCase{
		{0, 0, 0, 0, 0, 1},   // 1×1, empty
		{0, 0, 0, 255, 0, 1}, // 1×1, complete
		{6, 6, 0, 255, 0, 2}, // 7×7 complete
		{6, 0, 1, 0, 1, 3},   // 7×1 star-ish power law
		{0, 6, 1, 0, 30, 4},  // 1×7 multi-edge power law
		{3, 5, 0, 128, 0, 5}, // mid-density dense
		{6, 6, 1, 0, 40, 6},  // saturated power law
		{2, 2, 0, 200, 0, 7}, // small dense
		{5, 3, 1, 0, 7, 8},   // sparse power law
		{6, 5, 0, 60, 0, 9},  // low-density dense
	}
	// Deterministic sweep: alternate families, vary shape and density.
	for i := 0; len(cases) < 56; i++ {
		cases = append(cases, agreeCase{
			nl:      uint8(i * 3),
			nr:      uint8(i*5 + 1),
			mode:    uint8(i),
			density: uint8(i * 37),
			edges:   uint16(i * 11),
			seed:    int64(100 + i),
		})
	}
	return cases
}

// TestSolversAgreeCorpus runs the differential check over the seeded
// corpus in every plain `go test` run (the fuzz target below reuses the
// same corpus as its seeds).
func TestSolversAgreeCorpus(t *testing.T) {
	cases := agreeCorpus()
	if len(cases) < 50 {
		t.Fatalf("corpus shrank to %d cases; need ≥ 50", len(cases))
	}
	for _, c := range cases {
		checkSolversAgree(t, agreeGraph(c.nl, c.nr, c.mode, c.density, c.edges, c.seed))
	}
}

// FuzzSolversAgree is the open-ended differential fuzz target:
//
//	go test ./mbb -run=FuzzSolversAgree -fuzz=FuzzSolversAgree -fuzztime=20s
func FuzzSolversAgree(f *testing.F) {
	for _, c := range agreeCorpus() {
		f.Add(c.nl, c.nr, c.mode, c.density, c.edges, c.seed)
	}
	f.Fuzz(func(t *testing.T, nlRaw, nrRaw, mode, density uint8, edges uint16, seed int64) {
		checkSolversAgree(t, agreeGraph(nlRaw, nrRaw, mode, density, edges, seed))
	})
}
