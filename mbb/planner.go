package mbb

import (
	"sort"
	"sync"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// Reduce selects the planner's preprocessing mode (see Options.Reduce).
type Reduce int

const (
	// ReduceAuto (the default) runs the planner for the "auto" solver and
	// skips it when a solver was named explicitly.
	ReduceAuto Reduce = iota
	// ReduceOn runs the planner for any exact solver.
	ReduceOn
	// ReduceOff disables the planner.
	ReduceOff
)

// String renders the mode the way the -reduce command-line flag spells it.
func (r Reduce) String() string {
	switch r {
	case ReduceOn:
		return "on"
	case ReduceOff:
		return "off"
	}
	return "auto"
}

// ParseReduce parses a -reduce flag value: "auto", "on" (or "true"), "off"
// (or "false").
func ParseReduce(s string) (Reduce, bool) {
	switch s {
	case "auto", "":
		return ReduceAuto, true
	case "on", "true", "1":
		return ReduceOn, true
	case "off", "false", "0":
		return ReduceOff, true
	}
	return ReduceAuto, false
}

// planActive reports whether the planner should run: always when forced
// on, never when forced off or for heuristic solvers (the planner's
// component pruning assumes exact sub-solves), and for ReduceAuto exactly
// when the caller asked for the automatic solver.
func planActive(opt *Options, isAuto, heuristic bool) bool {
	if heuristic {
		return false
	}
	switch opt.Reduce {
	case ReduceOn:
		return true
	case ReduceOff:
		return false
	}
	return isAuto
}

// reduction is a peeled graph in its own id space, the mapping back to
// the original ids, and how many vertices the peeling removed.
type reduction struct {
	g        *Graph
	newToOld []int
	peeled   int
}

// applyMask induces red.g on mask and composes the id mapping, keeping
// the peeled count.
func applyMask(red reduction, mask []bool) reduction {
	kept := 0
	for _, ok := range mask {
		if ok {
			kept++
		}
	}
	if kept == red.g.NumVertices() {
		return red
	}
	sub, n2 := red.g.InducedByMask(mask)
	bigraph.ComposeMap(n2, red.newToOld)
	return reduction{g: sub, newToOld: n2, peeled: red.peeled + red.g.NumVertices() - kept}
}

// reduceFixedPoint applies the optimum-preserving reduction of
// decomp.ReduceMask — the (tau+1)-core intersected with the 2·tau+1
// bicore threshold — iterating until no vertex is removed or ex wants to
// stop (stopping early just leaves a larger, still-equivalent graph).
// Any balanced biclique of per-side size strictly greater than tau
// survives intact, so solving the result (plus a size-tau witness in
// hand) solves the original graph.
func reduceFixedPoint(ex *core.Exec, red reduction, tau int) reduction {
	for red.g.NumVertices() > 0 && !ex.ShouldStop() {
		next := applyMask(red, decomp.ReduceMask(red.g, tau))
		if next.peeled == red.peeled {
			break
		}
		red = next
	}
	return red
}

// planSolve is the reduce-and-conquer planner: it seeds the shared
// incumbent with a cheap greedy lower bound τ, peels vertices that cannot
// belong to any balanced biclique larger than τ (reduceFixedPoint), splits
// the survivor into connected components, solves the components
// concurrently — largest first, as workers sharing the execution context's
// budget and incumbent — and maps the winner back to the original ids.
// spec is the solver to run per component; when isAuto is true the
// dense/sparse choice is re-made per component from its shape.
func planSolve(ex *core.Exec, g *Graph, spec SolverSpec, isAuto bool, opt *Options) (core.Result, error) {
	// Already cancelled or past the deadline: return before paying for
	// the (unbudgeted) seed heuristic.
	if ex.ShouldStop() {
		stats := ex.Snapshot()
		stats.TimedOut = true
		return core.Result{Stats: stats}, nil
	}

	// Seed τ with the max-degree greedy (Algorithm 5's first pass), apply
	// the cheap core-only reduction, and try the max-core greedy on the
	// survivor — core numbers are only meaningful after the fringe is
	// gone. Only then run the heavier bicore fixed point, on the smallest
	// graph and the best τ the heuristics could buy.
	seed := heur.Greedy(g, heur.DegreeScores(g), 8).Balanced()
	tau := seed.Size()
	ex.OfferBest(tau)

	red := reduction{g: g, newToOld: bigraph.IdentityMap(g.NumVertices())}
	if !ex.ShouldStop() {
		red = applyMask(red, decomp.KCoreMask(g, tau+1))
		if red.g.NumVertices() > 0 {
			bc := heur.Greedy(red.g, decomp.Cores(red.g).Core, 8).Balanced()
			if bc.Size() > tau {
				seed = bc.Remap(red.newToOld)
				tau = bc.Size()
				ex.OfferBest(tau)
				red = applyMask(red, decomp.KCoreMask(red.g, tau+1))
			}
		}
		red = reduceFixedPoint(ex, red, tau)
	}

	// Keep only components that are large enough to beat τ on both sides,
	// largest (by vertex count, then smallest id) first so the long solves
	// start as early as possible.
	type job struct {
		ids    []int
		nl, nr int
	}
	var jobs []job
	if red.g.NumVertices() > 0 && !ex.ShouldStop() {
		for _, comp := range red.g.Components() {
			nl, nr := 0, 0
			for _, v := range comp {
				if red.g.IsLeft(v) {
					nl++
				} else {
					nr++
				}
			}
			if nl > tau && nr > tau {
				jobs = append(jobs, job{ids: comp, nl: nl, nr: nr})
			}
		}
		sort.SliceStable(jobs, func(i, j int) bool {
			return len(jobs[i].ids) > len(jobs[j].ids)
		})
	}

	// When no component survives, the reduction closed the graph (or no
	// surviving component can beat τ) and the heuristic witness is
	// optimal — the planner's analogue of the sparse framework's step-1
	// termination. Stats.Step stays untouched: it reports Algorithm-4
	// steps and would mislabel dense/baseline solver runs; SeedTau,
	// Peeled and Components carry the planner's own story.
	pstats := core.Stats{SeedTau: tau, Peeled: int64(red.peeled), Components: len(jobs)}
	ex.AddStats(&pstats)

	workers := opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Options.Workers is a total goroutine budget: when the planner fans
	// out over components, it is split across them so the per-component
	// inner pipelines never multiply to Workers² goroutines.
	copt := *opt
	if workers > 1 {
		copt.Workers = opt.Workers / workers
	}

	var (
		mu       sync.Mutex
		best     = seed
		outcome  core.Stats
		firstErr error
	)
	solveComp := func(j job) {
		if ex.ShouldStop() {
			return
		}
		// Re-check against the live incumbent: an earlier (larger)
		// component may have raised it past what this one can offer.
		if incumbent := ex.Best(); j.nl <= incumbent || j.nr <= incumbent {
			return
		}
		sub, toOrig := red.g.Induced(j.ids)
		bigraph.ComposeMap(toOrig, red.newToOld)
		rspec := spec
		if isAuto {
			rspec, _ = Lookup(autoSolverName(sub))
		}
		res, err := rspec.Run(ex, sub, &copt)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
				// Abort the remaining components: the whole solve fails,
				// so any further search is wasted work.
				ex.Stop()
			}
			return
		}
		outcome.MergeOutcome(&res.Stats)
		if bc := res.Biclique.Remap(toOrig).Balanced(); bc.Size() > best.Size() {
			best = bc
			ex.OfferBest(bc.Size())
		}
	}
	if workers <= 1 {
		for _, j := range jobs {
			solveComp(j)
		}
	} else {
		ch := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					solveComp(j)
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
	}
	if firstErr != nil {
		return core.Result{}, firstErr
	}

	stats := ex.Snapshot()
	stats.MergeOutcome(&outcome)
	if stats.HeurGlobalSize < tau {
		stats.HeurGlobalSize = tau
	}
	if ex.Stopped() {
		stats.TimedOut = true
	}
	return core.Result{Biclique: best, Stats: stats}, nil
}
