package mbb

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// Reduce selects the planner's preprocessing mode (see Options.Reduce).
type Reduce int

const (
	// ReduceAuto (the default) runs the planner for the "auto" solver and
	// skips it when a solver was named explicitly.
	ReduceAuto Reduce = iota
	// ReduceOn runs the planner for any exact solver.
	ReduceOn
	// ReduceOff disables the planner.
	ReduceOff
)

// String renders the mode the way the -reduce command-line flag spells it.
func (r Reduce) String() string {
	switch r {
	case ReduceOn:
		return "on"
	case ReduceOff:
		return "off"
	}
	return "auto"
}

// ParseReduce parses a -reduce flag value: "auto", "on" (or "true"), "off"
// (or "false").
func ParseReduce(s string) (Reduce, bool) {
	switch s {
	case "auto", "":
		return ReduceAuto, true
	case "on", "true", "1":
		return ReduceOn, true
	case "off", "false", "0":
		return ReduceOff, true
	}
	return ReduceAuto, false
}

// planActive reports whether the planner should run: always when forced
// on, never when forced off or for heuristic solvers (the planner's
// component pruning assumes exact sub-solves), and for ReduceAuto exactly
// when the caller asked for the automatic solver.
func planActive(opt *Options, isAuto, heuristic bool) bool {
	if heuristic {
		return false
	}
	switch opt.Reduce {
	case ReduceOn:
		return true
	case ReduceOff:
		return false
	}
	return isAuto
}

// reduction is a peeled graph in its own id space, the mapping back to
// the original ids, and how many vertices the peeling removed.
type reduction struct {
	g        *Graph
	newToOld []int
	peeled   int
}

// applyMask induces red.g on mask and composes the id mapping, keeping
// the peeled count.
func applyMask(red reduction, mask []bool) reduction {
	kept := 0
	for _, ok := range mask {
		if ok {
			kept++
		}
	}
	if kept == red.g.NumVertices() {
		return red
	}
	sub, n2 := red.g.InducedByMask(mask)
	bigraph.ComposeMap(n2, red.newToOld)
	return reduction{g: sub, newToOld: n2, peeled: red.peeled + red.g.NumVertices() - kept}
}

// reduceFixedPoint applies the optimum-preserving reduction of
// decomp.ReduceMask — the (tau+1)-core intersected with the 2·tau+1
// bicore threshold — iterating until no vertex is removed or ex wants to
// stop (stopping early just leaves a larger, still-equivalent graph).
// Any balanced biclique of per-side size strictly greater than tau
// survives intact, so solving the result (plus a size-tau witness in
// hand) solves the original graph.
func reduceFixedPoint(ex *core.Exec, red reduction, tau int) reduction {
	for red.g.NumVertices() > 0 && !ex.ShouldStop() {
		next := applyMask(red, decomp.ReduceMask(red.g, tau))
		if next.peeled == red.peeled {
			break
		}
		red = next
	}
	return red
}

// planJob is one surviving component of the reduced graph, with its
// per-side vertex counts.
type planJob struct {
	ids    []int
	nl, nr int
}

// compCost is the profile one plan accumulates for one component across
// its solves: the branch-and-bound nodes and wall time observed the last
// time the component was actually searched (pruned dispatches leave the
// profile untouched). A cached Plan backs many solves, so from the second
// solve on the dispatcher can hand out components by how expensive they
// really were rather than by how big they look. Atomics because
// concurrent component workers — and concurrent solves sharing one plan —
// record profiles without coordination; the profile is an advisory
// scheduling hint, not logical plan state, so lost updates are harmless.
type compCost struct {
	nodes atomic.Int64
	nanos atomic.Int64
}

// costlier ranks job i before job j in steal order: components with a
// higher observed node count first (the profile from earlier solves on
// this plan), wall time as the tiebreak, and for unprofiled (cold)
// components the static estimate — more vertices first, then collectJobs
// order. On a cold plan every profile is zero, so the dispatch order is
// exactly the old static largest-first order.
func (p *Plan) costlier(i, j int) bool {
	if ni, nj := p.costs[i].nodes.Load(), p.costs[j].nodes.Load(); ni != nj {
		return ni > nj
	}
	if ti, tj := p.costs[i].nanos.Load(), p.costs[j].nanos.Load(); ti != tj {
		return ti > tj
	}
	if li, lj := len(p.jobs[i].ids), len(p.jobs[j].ids); li != lj {
		return li > lj
	}
	return i < j
}

// takeCostliest removes the costliest job index from pending and returns
// it with the shrunk slice. Linear scan: component counts are small and
// the caller holds a lock anyway.
func (p *Plan) takeCostliest(pending []int) (int, []int) {
	best := 0
	for k := 1; k < len(pending); k++ {
		if p.costlier(pending[k], pending[best]) {
			best = k
		}
	}
	idx := pending[best]
	pending[best] = pending[len(pending)-1]
	return idx, pending[:len(pending)-1]
}

// computePlan runs the planner's preprocessing phase — heuristic seed,
// optimum-preserving reduction, component decomposition — and packages
// the outcome as an immutable Plan. When ex is cut short mid-way the
// reduction is simply larger (still equivalent); only when the component
// collection itself had to be skipped is the plan marked partial, because
// then an empty job list no longer proves the seed optimal.
//
// floor is the size-constrained query floor (Options.MinSize − 1, 0 for
// unconstrained queries): the peel runs at τ = max(greedy seed, floor),
// because a query that only accepts bicliques larger than floor lets the
// reduction discard everything at or below it even when the heuristic
// found less. Plans built with a nonzero floor answer only queries with
// at least that floor; cacheable plans (PlanContext) are built at 0 so
// they stay query-independent.
func computePlan(ex *core.Exec, g *Graph, floor int) *Plan {
	if ex.ShouldStop() {
		return &Plan{g: g, red: reduction{g: g, newToOld: bigraph.IdentityMap(g.NumVertices())}, partial: true}
	}

	// Seed τ with the max-degree greedy (Algorithm 5's first pass), apply
	// the cheap core-only reduction, and try the max-core greedy on the
	// survivor — core numbers are only meaningful after the fringe is
	// gone. Only then run the heavier bicore fixed point, on the smallest
	// graph and the best τ the heuristics could buy.
	seed := heur.Greedy(g, heur.DegreeScores(g), 8).Balanced()
	tau := seed.Size()
	if floor > tau {
		tau = floor
	}
	ex.OfferBest(tau)

	red := reduction{g: g, newToOld: bigraph.IdentityMap(g.NumVertices())}
	if !ex.ShouldStop() {
		red = applyMask(red, decomp.KCoreMask(g, tau+1))
		if red.g.NumVertices() > 0 {
			bc := heur.Greedy(red.g, decomp.Cores(red.g).Core, 8).Balanced()
			if bc.Size() > tau {
				seed = bc.Remap(red.newToOld)
				tau = bc.Size()
				ex.OfferBest(tau)
				red = applyMask(red, decomp.KCoreMask(red.g, tau+1))
			}
		}
		red = reduceFixedPoint(ex, red, tau)
	}

	var jobs []planJob
	partial := false
	if red.g.NumVertices() > 0 {
		if ex.ShouldStop() {
			partial = true
		} else {
			jobs = collectJobs(red, tau)
		}
	}
	return &Plan{g: g, seed: seed, tau: tau, red: red, jobs: jobs, costs: make([]compCost, len(jobs)), partial: partial}
}

// collectJobs splits the reduced graph into its connected components and
// keeps only those large enough to beat τ on both sides, largest (by
// vertex count, then smallest id) first so the long solves start as
// early as possible. Both the planner and incremental plan maintenance
// use it — component structure must be recomputed whenever the reduced
// graph's edge set changes by insertion, because an added edge can merge
// two components into one solve unit.
func collectJobs(red reduction, tau int) []planJob {
	var jobs []planJob
	for _, comp := range red.g.Components() {
		nl, nr := 0, 0
		for _, v := range comp {
			if red.g.IsLeft(v) {
				nl++
			} else {
				nr++
			}
		}
		if nl > tau && nr > tau {
			jobs = append(jobs, planJob{ids: comp, nl: nl, nr: nr})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool {
		return len(jobs[i].ids) > len(jobs[j].ids)
	})
	return jobs
}

// solveOn runs the plan's solve phase on ex: the incumbent is seeded with
// the cached τ, the surviving components are solved concurrently —
// largest first, as workers sharing the execution context's budget and
// incumbent — and the winner is mapped back to the original ids. spec is
// the solver to run per component; when isAuto is true the dense/sparse
// choice is re-made per component from its shape. It is safe to call
// concurrently: the plan is read-only and all mutable state is local.
func (p *Plan) solveOn(ex *core.Exec, spec SolverSpec, isAuto bool, opt *Options) (core.Result, error) {
	ex.OfferBest(p.tau)

	// When no component survives, the reduction closed the graph (or no
	// surviving component can beat τ) and the heuristic witness is
	// optimal — the planner's analogue of the sparse framework's step-1
	// termination. Stats.Step stays untouched: it reports Algorithm-4
	// steps and would mislabel dense/baseline solver runs; SeedTau,
	// Peeled and Components carry the planner's own story.
	pstats := core.Stats{SeedTau: p.tau, Peeled: int64(p.red.peeled), Components: len(p.jobs), Repairs: p.repairs}
	ex.AddStats(&pstats)

	workers := opt.Workers
	if workers > len(p.jobs) {
		workers = len(p.jobs)
	}
	// Options.Workers is a total goroutine budget: when the planner fans
	// out over components, it is split across them so the per-component
	// inner pipelines never multiply to Workers² goroutines.
	copt := *opt
	if workers > 1 {
		copt.Workers = opt.Workers / workers
	}

	var (
		mu       sync.Mutex
		best     = p.seed
		outcome  core.Stats
		firstErr error
	)
	// completed[ji] records that job ji needs no further search: either
	// its solver ran to completion, or the incumbent already covered it
	// (min(nl, nr) ≤ incumbent ≤ final best is a valid completion
	// certificate). Each index is handed to exactly one worker, so the
	// per-element writes need no lock. Uncompleted jobs are what keeps
	// the certified upper bound above the incumbent after a budget cut.
	completed := make([]bool, len(p.jobs))
	solveComp := func(ji int) {
		j := p.jobs[ji]
		if ex.ShouldStop() {
			return
		}
		// Re-check against the live incumbent: an earlier (larger)
		// component may have raised it past what this one can offer.
		if incumbent := ex.Best(); j.nl <= incumbent || j.nr <= incumbent {
			completed[ji] = true
			return
		}
		sub, toOrig := p.red.g.Induced(j.ids)
		bigraph.ComposeMap(toOrig, p.red.newToOld)
		rspec := spec
		if isAuto {
			rspec, _ = Lookup(autoSolverName(sub))
		}
		start := time.Now()
		res, err := rspec.Run(ex, sub, &copt)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
				// Abort the remaining components: the whole solve fails,
				// so any further search is wasted work.
				ex.Stop()
			}
			return
		}
		// Record the observed cost so later solves on this (cached) plan
		// dispatch the genuinely expensive components first.
		p.costs[ji].nodes.Store(res.Stats.Nodes)
		p.costs[ji].nanos.Store(time.Since(start).Nanoseconds())
		completed[ji] = !res.Stats.TimedOut
		outcome.MergeOutcome(&res.Stats)
		if bc := res.Biclique.Remap(toOrig).Balanced(); bc.Size() > best.Size() {
			best = bc
			ex.OfferBest(bc.Size())
		}
	}
	// Work-stealing dispatch: instead of pre-assigning components, every
	// worker pulls the costliest remaining one from a shared queue when it
	// becomes free — so when a large component fizzles early (the incumbent
	// from a sibling already covers it), its worker immediately steals the
	// next expensive component rather than idling behind a static schedule.
	// The sequential path drains the same queue, so its visit order matches
	// the parallel steal order (and, on a cold plan, the old static
	// largest-first order exactly).
	var qmu sync.Mutex
	pending := make([]int, len(p.jobs))
	for i := range pending {
		pending[i] = i
	}
	nextJob := func() (int, bool) {
		qmu.Lock()
		defer qmu.Unlock()
		if len(pending) == 0 {
			return 0, false
		}
		var idx int
		idx, pending = p.takeCostliest(pending)
		return idx, true
	}
	if workers <= 1 {
		for ji, ok := nextJob(); ok; ji, ok = nextJob() {
			solveComp(ji)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ji, ok := nextJob()
					if !ok {
						return
					}
					solveComp(ji)
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return core.Result{}, firstErr
	}

	stats := ex.Snapshot()
	stats.MergeOutcome(&outcome)
	if stats.HeurGlobalSize < p.tau {
		stats.HeurGlobalSize = p.tau
	}
	if ex.Stopped() || p.partial {
		// A partial plan skipped the component decomposition, so an empty
		// job list proves nothing: the result is best-effort, not exact.
		stats.TimedOut = true
	}
	// Certified upper bound on the maximum balanced size: the incumbent,
	// raised by min(nl, nr) of every component whose search did not
	// complete (those are the only places a larger biclique could hide).
	// A partial plan has no component list to certify with, so the whole
	// graph's trivial bound stands in.
	ub := best.Size()
	if b := ex.Best(); b > ub {
		ub = b // a floor-seeded incumbent can exceed the witness
	}
	for ji := range p.jobs {
		if !completed[ji] {
			if m := minInt(p.jobs[ji].nl, p.jobs[ji].nr); m > ub {
				ub = m
			}
		}
	}
	if p.partial {
		if m := minInt(p.g.NL(), p.g.NR()); m > ub {
			ub = m
		}
	}
	stats.UpperBound = ub
	return core.Result{Biclique: best, Stats: stats}, nil
}

// planSolve is the reduce-and-conquer planner: preprocessing
// (computePlan) followed by the solve phase (solveOn) on the same
// execution context. SolveContext takes this path when Options.Reduce
// enables the planner; callers that want to amortize the preprocessing
// across many solves build the Plan once with PlanContext and call
// Plan.SolveContext per query.
func planSolve(ex *core.Exec, g *Graph, spec SolverSpec, isAuto bool, opt *Options) (core.Result, error) {
	// Already cancelled or past the deadline: return before paying for
	// the (unbudgeted) seed heuristic.
	if ex.ShouldStop() {
		stats := ex.Snapshot()
		stats.TimedOut = true
		stats.UpperBound = minInt(g.NL(), g.NR())
		return core.Result{Stats: stats}, nil
	}
	floor := opt.MinSize - 1
	if floor < 0 {
		floor = 0
	}
	return computePlan(ex, g, floor).solveOn(ex, spec, isAuto, opt)
}
