package mbb

import (
	"context"
	"sync"
	"testing"
)

// multiComponentPlan builds a plan over two disjoint dataset stand-ins so
// several components survive the reduction.
func multiComponentPlan(t *testing.T) *Plan {
	t.Helper()
	a, _ := GenerateDataset("github", 800, 5)
	b, _ := GenerateDataset("youtube-groupmemberships", 800, 15)
	bld := NewBuilder(a.NL()+b.NL(), a.NR()+b.NR())
	for _, e := range a.Edges() {
		bld.AddEdge(e[0], e[1])
	}
	for _, e := range b.Edges() {
		bld.AddEdge(a.NL()+e[0], a.NR()+e[1])
	}
	p, err := PlanContext(context.Background(), bld.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.jobs) < 2 {
		t.Fatalf("want ≥ 2 surviving components, got %d", len(p.jobs))
	}
	return p
}

// drainOrder empties a pending queue through takeCostliest and returns
// the visit order.
func drainOrder(p *Plan) []int {
	pending := make([]int, len(p.jobs))
	for i := range pending {
		pending[i] = i
	}
	var order []int
	for len(pending) > 0 {
		var idx int
		idx, pending = p.takeCostliest(pending)
		order = append(order, idx)
	}
	return order
}

// TestStealOrderColdMatchesStatic: with no profile recorded, the steal
// order must be exactly the static largest-first order the planner used
// before — index order, since collectJobs pre-sorts jobs by size. This is
// what keeps cold-plan benchmark trajectories (node counts) unchanged.
func TestStealOrderColdMatchesStatic(t *testing.T) {
	p := multiComponentPlan(t)
	for i, idx := range drainOrder(p) {
		if idx != i {
			t.Fatalf("cold steal order %v, want identity", drainOrder(p))
		}
	}
}

// TestStealOrderFollowsProfile: once a solve has recorded that the
// (statically) smallest component was the most expensive, the next
// dispatch must hand it out first, nodes before wall time.
func TestStealOrderFollowsProfile(t *testing.T) {
	p := multiComponentPlan(t)
	last := len(p.jobs) - 1
	p.costs[last].nodes.Store(1 << 40)
	if order := drainOrder(p); order[0] != last {
		t.Fatalf("steal order %v ignores the node profile on job %d", order, last)
	}
	p.costs[last].nodes.Store(0)
	p.costs[last].nanos.Store(1 << 40)
	if order := drainOrder(p); order[0] != last {
		t.Fatalf("steal order %v ignores the time profile on job %d", order, last)
	}
	p.costs[last].nanos.Store(0)
	if order := drainOrder(p); order[0] != 0 {
		t.Fatalf("steal order %v with cleared profile, want static order", order)
	}
}

// TestSharedPlanConcurrentSolvesRecordProfile: many concurrent solves on
// one cached plan — the profile store is written by all of them — must
// agree on the optimum and leave a profile behind for the costliest
// component. Under -race this locks down the dispatcher's shared state.
func TestSharedPlanConcurrentSolvesRecordProfile(t *testing.T) {
	p := multiComponentPlan(t)
	opt := &Options{Workers: 4}
	want, err := p.SolveContext(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	sizes := make([]int, 6)
	for i := range sizes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.SolveContext(context.Background(), opt)
			if err != nil {
				t.Error(err)
				return
			}
			sizes[i] = res.Biclique.Size()
		}(i)
	}
	wg.Wait()
	for i, s := range sizes {
		if s != want.Biclique.Size() {
			t.Fatalf("concurrent solve %d found size %d, want %d", i, s, want.Biclique.Size())
		}
	}
	profiled := false
	for i := range p.costs {
		if p.costs[i].nanos.Load() > 0 {
			profiled = true
		}
	}
	if !profiled {
		t.Fatal("no component profile recorded after solving")
	}
}
