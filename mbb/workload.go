package mbb

import "repro/internal/workload"

// This file exposes the paper's evaluation workloads through the public
// API so downstream users can regenerate the experiments without touching
// internal packages.

// GenerateDense returns a uniform random bipartite graph (the Table 4
// workload family). Deterministic in seed.
func GenerateDense(nl, nr int, density float64, seed int64) *Graph {
	return workload.Dense(nl, nr, density, seed)
}

// GeneratePowerLaw returns a power-law bipartite graph with roughly m
// edges (the sparse background family). Deterministic in seed.
func GeneratePowerLaw(nl, nr, m int, seed int64) *Graph {
	return workload.PowerLaw(nl, nr, m, 0.5, seed)
}

// PlantBiclique embeds a complete k×k biclique into g and returns the new
// graph. Deterministic in seed.
func PlantBiclique(g *Graph, k int, seed int64) *Graph {
	planted, _, _ := workload.Plant(g, k, seed)
	return planted
}

// DatasetInfo describes one KONECT dataset of the paper's Table 5.
type DatasetInfo struct {
	Name    string
	L, R    int     // published side sizes
	Density float64 // published edge density
	Optimum int     // published maximum balanced biclique size
	Tough   bool    // member of the Table 6 "tough" subset
}

// Datasets lists the 30 Table 5 datasets.
func Datasets() []DatasetInfo {
	out := make([]DatasetInfo, 0, len(workload.Registry))
	for _, d := range workload.Registry {
		out = append(out, DatasetInfo{
			Name: d.Name, L: d.L, R: d.R, Density: d.Density,
			Optimum: d.Optimum, Tough: d.Tough,
		})
	}
	return out
}

// GenerateDataset builds the synthetic stand-in for the named Table 5
// dataset, scaled to at most maxVerts vertices (0 keeps the published
// size). It returns false if the name is unknown.
func GenerateDataset(name string, maxVerts int, seed int64) (*Graph, bool) {
	d, ok := workload.ByName(name)
	if !ok {
		return nil, false
	}
	return d.Generate(maxVerts, seed), true
}
