package mbb

import "repro/internal/bigraph"

// Delta is a batch of edge mutations in side-local (left, right) pairs;
// see bigraph.Delta for the apply semantics (deletions before additions,
// fixed side sizes). Graph.Apply produces the mutated copy-on-write
// snapshot plus the effective delta that Plan.ApplyDelta consumes.
type Delta = bigraph.Delta

// ApplyDelta attempts incremental plan maintenance across a graph
// mutation: given g2 — the result of p.Graph().Apply(d) — and the
// *effective* delta reported by that Apply call, it returns a plan for
// g2 carrying the new epoch without re-running the planner, or
// (nil, false) when the delta could invalidate the cached preprocessing
// and a full PlanContext rebuild is required.
//
// The cheap path applies exactly when the delta is deletion-only and no
// deleted edge lies inside the heuristic witness:
//
//   - deleting edges only lowers degrees and two-hop counts, so every
//     peeled vertex's peeling certificate (the iterated (τ+1)-core ∩
//     2τ+1-bicore mask) still holds in g2;
//   - the witness stays a complete biclique, so τ is still an achieved
//     lower bound;
//   - deletions between two surviving vertices are patched into the
//     cached reduced graph (its vertex ids are stable — no vertex is
//     removed), so component solves see exactly g2's surviving subgraph;
//     deletions touching a peeled endpoint don't appear in the reduced
//     graph at all.
//
// Insertions always force a rebuild, even between peeled vertices: a
// batch of insertions can assemble a biclique larger than τ entirely
// among peeled vertices, and a single insertion between survivors can
// raise a peeled vertex's two-hop bicore count through a surviving
// neighbour — either way the cached reduction's certificates no longer
// bound the new optimum. Callers are expected to keep serving the prior
// snapshot's plan (stale but exact for that epoch) while the rebuild
// runs; internal/server does exactly that.
func (p *Plan) ApplyDelta(g2 *Graph, d Delta, epoch uint64) (*Plan, bool) {
	if p.partial || len(d.Add) > 0 || g2 == nil ||
		g2.NL() != p.g.NL() || g2.NR() != p.g.NR() {
		return nil, false
	}
	np := *p
	np.g = g2
	np.epoch = epoch
	if len(d.Del) == 0 {
		return &np, true
	}
	inA := make(map[int]bool, len(p.seed.A))
	for _, v := range p.seed.A {
		inA[v] = true
	}
	inB := make(map[int]bool, len(p.seed.B))
	for _, v := range p.seed.B {
		inB[v] = true
	}
	oldToNew := make(map[int]int, len(p.red.newToOld))
	for nv, ov := range p.red.newToOld {
		oldToNew[ov] = nv
	}
	var redDel [][2]int
	for _, e := range d.Del {
		u, v := e[0], p.g.NL()+e[1]
		if inA[u] && inB[v] {
			// The witness is complete, so this deletion destroys it and τ
			// is no longer achieved — rebuild.
			return nil, false
		}
		nu, okU := oldToNew[u]
		nv, okV := oldToNew[v]
		if okU && okV {
			// Induced subgraphs preserve sides, so nu is left-side in the
			// reduced id space exactly when u is.
			redDel = append(redDel, [2]int{nu, nv - p.red.g.NL()})
		}
	}
	if len(redDel) > 0 {
		sub, eff, err := p.red.g.Apply(Delta{Del: redDel})
		if err != nil || len(eff.Del) != len(redDel) {
			// d was not the effective delta of p.Graph().Apply — refuse
			// rather than maintain from inconsistent input.
			return nil, false
		}
		np.red = reduction{g: sub, newToOld: p.red.newToOld, peeled: p.red.peeled}
	}
	return &np, true
}
