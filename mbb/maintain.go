package mbb

import (
	"slices"

	"repro/internal/bigraph"
	"repro/internal/decomp"
)

// Delta is a batch of edge mutations in side-local (left, right) pairs;
// see bigraph.Delta for the apply semantics (deletions before additions,
// fixed side sizes). Graph.Apply produces the mutated copy-on-write
// snapshot plus the effective delta that Plan.ApplyDelta consumes.
type Delta = bigraph.Delta

// defaultRepairBudget bounds how many peeled vertices the insertion
// repair frontier may re-examine before ApplyDelta gives up and reports
// a rebuild: generous enough that small graphs always repair, scaling
// sublinearly so a repair on a large graph stays local by construction.
func defaultRepairBudget(n int) int {
	b := n / 8
	if b < 256 {
		b = 256
	}
	return b
}

// maxPendingDel caps the deletion-endpoint log a plan may accumulate
// between certificate fixed points; past it the plan goes loose and the
// next insertion rebuilds. It bounds both plan memory and the repair
// seed set a long deletion-only stream can pile up.
const maxPendingDel = 4096

// ApplyDelta attempts incremental plan maintenance across a graph
// mutation: given g2 — the result of p.Graph().Apply(d) — and the
// *effective* delta reported by that Apply call, it returns a plan for
// g2 carrying the new epoch without re-running the planner, or
// (nil, false) when the delta could invalidate the cached preprocessing
// and a full PlanContext rebuild is required. It is shorthand for
// ApplyDeltaBudget with the default repair budget.
//
// Deletion-only deltas that spare the heuristic witness reuse the plan
// outright (Repairs unchanged): deleting edges only lowers degrees and
// two-hop counts, so every peeled vertex's certificate (the iterated
// (τ+1)-core ∩ 2τ+1-bicore mask) still holds, the witness stays a
// complete biclique achieving τ, and survivor–survivor deletions are
// patched into the cached reduced graph.
//
// Deltas with insertions take the bounded local repair path (Repairs
// grows by one on success): insertions only raise degrees and two-hop
// counts, so the certificate fixed point can re-admit peeled vertices
// but never evicts a survivor, and every re-admittable vertex is
// reachable from the batch's endpoints by two-hop steps through
// plausible peeled vertices (decomp.RepairMask). The repaired plan's
// reduced graph and component jobs are recomputed from the new survivor
// set, so its solves are exact for g2. The repair refuses — forcing a
// rebuild — when the frontier outgrows the budget, when the witness is
// implicated (a deletion inside it would invalidate τ), or when earlier
// deletion-only maintenance left the survivor set loose (no longer a
// certificate fixed point, so locality of the repair can't be proven).
//
// Callers are expected to keep serving the prior snapshot's plan (stale
// but exact for that epoch) while any rebuild runs; internal/server
// does exactly that.
func (p *Plan) ApplyDelta(g2 *Graph, d Delta, epoch uint64) (*Plan, bool) {
	return p.ApplyDeltaBudget(g2, d, epoch, 0)
}

// ApplyDeltaBudget is ApplyDelta with an explicit repair budget: the
// maximum number of peeled vertices the insertion repair may re-examine
// before giving up (≤ 0 picks the default, which scales with the graph).
func (p *Plan) ApplyDeltaBudget(g2 *Graph, d Delta, epoch uint64, budget int) (*Plan, bool) {
	if p.partial || g2 == nil || g2.NL() != p.g.NL() || g2.NR() != p.g.NR() {
		return nil, false
	}
	np := *p
	np.g = g2
	np.epoch = epoch
	if d.Empty() {
		return &np, true
	}
	if p.witnessHit(d.Del) {
		// The witness is complete, so a deletion inside it destroys it
		// and τ is no longer achieved — rebuild.
		return nil, false
	}
	if len(d.Add) == 0 {
		return p.applyDeletions(&np, d)
	}
	return p.applyRepair(&np, d, budget)
}

// witnessHit reports whether any deleted edge lies inside the heuristic
// witness biclique (side-local pairs, as in Delta).
func (p *Plan) witnessHit(del [][2]int) bool {
	if len(del) == 0 {
		return false
	}
	inA := make(map[int]bool, len(p.seed.A))
	for _, v := range p.seed.A {
		inA[v] = true
	}
	inB := make(map[int]bool, len(p.seed.B))
	for _, v := range p.seed.B {
		inB[v] = true
	}
	for _, e := range del {
		if inA[e[0]] && inB[p.g.NL()+e[1]] {
			return true
		}
	}
	return false
}

// oldToNewMap inverts the reduction's id mapping.
func (p *Plan) oldToNewMap() map[int]int {
	oldToNew := make(map[int]int, len(p.red.newToOld))
	for nv, ov := range p.red.newToOld {
		oldToNew[ov] = nv
	}
	return oldToNew
}

// restrict maps the side-local edges of d whose endpoints both survive
// the reduction into the reduced graph's side-local id space.
func (p *Plan) restrict(oldToNew map[int]int, edges [][2]int) [][2]int {
	var out [][2]int
	for _, e := range edges {
		nu, okU := oldToNew[e[0]]
		nv, okV := oldToNew[p.g.NL()+e[1]]
		if okU && okV {
			// Induced subgraphs preserve sides, so nu is left-side in the
			// reduced id space exactly when the original endpoint is.
			out = append(out, [2]int{nu, nv - p.red.g.NL()})
		}
	}
	return out
}

// applyDeletions is the deletion-only maintenance path: survivors and
// component jobs are kept (deletions can only split components, and
// solving a superset is sound), and survivor–survivor deletions are
// patched into the cached reduced graph so component solves see exactly
// g2's surviving subgraph. The deleted edges' endpoints are logged so a
// later insertion repair can still bound its frontier even though the
// kept survivor set may no longer be a certificate fixed point.
func (p *Plan) applyDeletions(np *Plan, d Delta) (*Plan, bool) {
	redDel := p.restrict(p.oldToNewMap(), d.Del)
	if len(redDel) > 0 {
		sub, eff, err := p.red.g.Apply(Delta{Del: redDel})
		if err != nil || len(eff.Del) != len(redDel) {
			// d was not the effective delta of p.Graph().Apply — refuse
			// rather than maintain from inconsistent input.
			return nil, false
		}
		np.red = reduction{g: sub, newToOld: p.red.newToOld, peeled: p.red.peeled}
	}
	if !np.loose {
		// Copy-on-append, deduplicated: sibling plans down other
		// maintenance chains must not see this chain's log, and a
		// stream of deletions around one hub must not inflate the log
		// with repeats of the same endpoint.
		seen := make(map[int]bool, len(p.pendingDel))
		log := append([]int(nil), p.pendingDel...)
		for _, v := range log {
			seen[v] = true
		}
		for _, v := range (Delta{Del: d.Del}).Endpoints(p.g.NL()) {
			if !seen[v] {
				seen[v] = true
				log = append(log, v)
			}
		}
		if len(log) > maxPendingDel {
			np.pendingDel = nil
			np.loose = true
		} else {
			np.pendingDel = log
		}
	}
	return np, true
}

// applyRepair is the insertion path: bounded local repair of the
// peeling certificates, re-admitting whatever the batch could have
// restored and rebuilding the reduced graph and jobs from the repaired
// survivor set.
func (p *Plan) applyRepair(np *Plan, d Delta, budget int) (*Plan, bool) {
	if p.loose {
		// The deletion-endpoint log overflowed: the survivor set may be
		// arbitrarily far from a fixed point with no bounded seed set
		// left, so the repair's locality argument does not apply.
		return nil, false
	}
	g2 := np.g
	if !p.seed.IsBicliqueOf(g2) {
		// Witness re-validation: deletions were already checked edge by
		// edge, so a non-witness here means d and g2 are inconsistent.
		return nil, false
	}
	n := g2.NumVertices()
	survivors := make([]bool, n)
	for _, ov := range p.red.newToOld {
		survivors[ov] = true
	}
	if budget <= 0 {
		budget = defaultRepairBudget(n)
	}
	// Seed the frontier with this batch's endpoints plus every deletion
	// endpoint logged since the last fixed point: a support chain for a
	// re-admission that would have run through a since-deleted edge is
	// only discoverable from that edge's endpoints.
	touched := d.Endpoints(g2.NL())
	if len(p.pendingDel) > 0 {
		touched = append(append([]int(nil), touched...), p.pendingDel...)
	}
	mask, ok := decomp.RepairMask(g2, p.tau, survivors, touched, budget)
	if !ok {
		return nil, false
	}
	same := slices.Equal(mask, survivors)
	// Component jobs must be recomputed whenever the reduced graph may
	// have gained an edge or a vertex — an addition or re-admission can
	// merge two components into one solve unit. A repair that only
	// touched peeled fringe (or only removed reduced edges, which at
	// worst splits a component — solving the superset job stays sound)
	// keeps the cached job list.
	rejoin := false
	if same {
		// Survivor set unchanged: patch the batch's survivor–survivor
		// edges into the cached reduced graph instead of re-inducing.
		oldToNew := p.oldToNewMap()
		redAdd := p.restrict(oldToNew, d.Add)
		redDel := p.restrict(oldToNew, d.Del)
		if len(redAdd)+len(redDel) > 0 {
			sub, eff, err := p.red.g.Apply(Delta{Add: redAdd, Del: redDel})
			if err != nil || len(eff.Add) != len(redAdd) || len(eff.Del) != len(redDel) {
				return nil, false
			}
			np.red = reduction{g: sub, newToOld: p.red.newToOld, peeled: p.red.peeled}
			rejoin = len(redAdd) > 0
		}
	} else {
		sub, newToOld := g2.InducedByMask(mask)
		np.red = reduction{g: sub, newToOld: newToOld, peeled: n - sub.NumVertices()}
		rejoin = true
	}
	if rejoin {
		np.jobs = collectJobs(np.red, p.tau)
		// Job indices moved; the old component profiles no longer line up.
		np.costs = make([]compCost, len(np.jobs))
	}
	// The repaired survivor set is a certificate fixed point of g2
	// again, so the deletion-endpoint log restarts empty.
	np.pendingDel = nil
	np.repairs = p.repairs + 1
	return np, true
}
