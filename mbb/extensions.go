package mbb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/matching"
)

// This file exposes the sibling biclique problems the paper's related
// work covers (§7): the polynomial maximum *vertex* biclique, the NP-hard
// maximum *edge* biclique, the size-constrained (a, b) decision problem
// (§4.2) and full maximal biclique enumeration.

// ErrTooLarge guards every dense-adjacency-matrix construction: it is
// returned (wrapped with the offending dimensions) whenever
// NL()×NR() exceeds DenseCellLimit. Test with errors.Is.
var ErrTooLarge = errors.New("mbb: graph too large for a dense adjacency matrix")

// DenseCellLimit caps the number of adjacency-matrix cells (NL()×NR())
// the dense solvers will allocate. The matrix stores one bit per cell in
// each orientation, so the default of 2^28 cells bounds the allocation
// to ~64 MB; earlier releases allowed 2^32 cells (~1 GB), which let a
// single Solve call exhaust small containers. Callers that know their
// memory budget may raise (or lower) it before solving.
var DenseCellLimit int64 = 1 << 28

func matrixOf(g *Graph) (*dense.Matrix, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if int64(g.NL())*int64(g.NR()) > DenseCellLimit {
		return nil, fmt.Errorf("%w (%d×%d exceeds DenseCellLimit %d)", ErrTooLarge, g.NL(), g.NR(), DenseCellLimit)
	}
	return dense.FromBigraph(g), nil
}

// liftMatrix translates matrix-local index sets back to unified ids.
func liftMatrix(g *Graph, A, B []int) Biclique {
	var bc Biclique
	for _, l := range A {
		bc.A = append(bc.A, g.Left(l))
	}
	for _, r := range B {
		bc.B = append(bc.B, g.Right(r))
	}
	return bc
}

// timeoutExec builds the execution context used by the extension solvers
// (no cancellation surface yet; timeout 0 means unlimited).
func timeoutExec(timeout time.Duration) *core.Exec {
	return core.NewExec(context.Background(), core.Limits{Timeout: timeout})
}

// SolveMaxVertex computes a maximum *vertex* biclique — maximising
// |A|+|B| with no balance constraint — in polynomial time via the
// König-theorem reduction to maximum matching on the bipartite
// complement (§7 of the paper).
func SolveMaxVertex(g *Graph) (Biclique, error) {
	m, err := matrixOf(g)
	if err != nil {
		return Biclique{}, err
	}
	A, B := matching.MaxVertexBiclique(m)
	return liftMatrix(g, A, B), nil
}

// SolveMaxEdge computes a maximum *edge* biclique — maximising |A|·|B| —
// exactly by branch and bound. The problem is NP-hard; timeout 0 means
// unlimited. The boolean reports whether the search completed (exact).
func SolveMaxEdge(g *Graph, timeout time.Duration) (Biclique, bool, error) {
	m, err := matrixOf(g)
	if err != nil {
		return Biclique{}, false, err
	}
	res := dense.SolveMaxEdge(timeoutExec(timeout), m)
	return liftMatrix(g, res.A, res.B), !res.Stats.TimedOut, nil
}

// HasBiclique answers the size-constrained (a, b)-biclique decision
// problem (§4.2): does g contain a biclique with |A| ≥ a and |B| ≥ b?
// On success the returned biclique is a witness with exactly (a, b)
// vertices. a and b must be positive.
func HasBiclique(g *Graph, a, b int, timeout time.Duration) (bool, Biclique, error) {
	if a <= 0 || b <= 0 {
		return false, Biclique{}, fmt.Errorf("mbb: sizes must be positive, got (%d,%d)", a, b)
	}
	m, err := matrixOf(g)
	if err != nil {
		return false, Biclique{}, err
	}
	ok, A, B := dense.HasSizeConstrained(timeoutExec(timeout), m, a, b)
	if !ok {
		return false, Biclique{}, nil
	}
	return true, liftMatrix(g, A, B), nil
}

// EnumerateMaximalBicliques calls fn for every maximal biclique of g with
// both sides nonempty (iMBEA-style enumeration with maximality checking).
// Returning false from fn stops the enumeration early. The return value
// is the number of bicliques reported.
func EnumerateMaximalBicliques(g *Graph, timeout time.Duration, fn func(bc Biclique) bool) (int, error) {
	if g == nil {
		return 0, ErrNilGraph
	}
	n := baseline.EnumerateMaximal(timeoutExec(timeout), g, func(A, B []int) bool {
		return fn(Biclique{A: A, B: B})
	})
	return n, nil
}
