package mbb_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/mbb"
)

func randomGraph(rng *rand.Rand, maxSide int, p float64) *mbb.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := mbb.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

func TestSolveNil(t *testing.T) {
	if _, err := mbb.Solve(nil, nil); err == nil {
		t.Fatal("expected error for nil graph")
	}
}

func TestSolveDefaults(t *testing.T) {
	g := mbb.FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}})
	res, err := mbb.Solve(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Biclique.Size() != 2 || !res.Exact {
		t.Fatalf("size = %d exact = %v, want 2/true", res.Biclique.Size(), res.Exact)
	}
	if !res.Biclique.IsBicliqueOf(g) {
		t.Fatal("invalid witness")
	}
}

func TestAutoPicksDenseForDenseGraphs(t *testing.T) {
	b := mbb.NewBuilder(10, 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			b.AddEdge(i, j)
		}
	}
	res, err := mbb.Solve(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != mbb.DenseMBB {
		t.Fatalf("auto picked %v for a complete graph", res.Algorithm)
	}
	if res.Biclique.Size() != 10 {
		t.Fatalf("size = %d", res.Biclique.Size())
	}
}

func TestAutoPicksSparseForSparseGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := mbb.NewBuilder(5000, 5000)
	for i := 0; i < 8000; i++ {
		b.AddEdge(rng.Intn(5000), rng.Intn(5000))
	}
	res, err := mbb.Solve(b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != mbb.HbvMBB {
		t.Fatalf("auto picked %v for a sparse graph", res.Algorithm)
	}
}

func TestQuickAllAlgorithmsAgree(t *testing.T) {
	algos := []mbb.Algorithm{mbb.HbvMBB, mbb.DenseMBB, mbb.BasicBB, mbb.ExtBBCL}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 11, 0.1+0.7*rng.Float64())
		want := baseline.BruteForceSize(g)
		for _, a := range algos {
			res, err := mbb.Solve(g, &mbb.Options{Algorithm: a})
			if err != nil {
				t.Logf("%v: %v", a, err)
				return false
			}
			if res.Biclique.Size() != want {
				t.Logf("%v: got %d want %d (edges=%v nl=%d nr=%d)",
					a, res.Biclique.Size(), want, g.Edges(), g.NL(), g.NR())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 60, 0.5)
	res, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.BasicBB, MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("10-node basicBB on a 60x60 graph cannot be exact")
	}
	// Timeout variant.
	res, err = mbb.Solve(g, &mbb.Options{Algorithm: mbb.BasicBB, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestGraphIO(t *testing.T) {
	g := mbb.FromEdges(2, 3, [][2]int{{0, 0}, {1, 2}})
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := mbb.ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || g2.NL() != 2 || g2.NR() != 3 {
		t.Fatal("round trip failed")
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[mbb.Algorithm]string{
		mbb.Auto: "auto", mbb.HbvMBB: "hbvMBB", mbb.DenseMBB: "denseMBB",
		mbb.BasicBB: "basicBB", mbb.ExtBBCL: "extBBCL",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if mbb.Algorithm(99).String() != "unknown" {
		t.Error("unknown name wrong")
	}
}
