package mbb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
	"repro/internal/sparse"
)

// SolverSpec is one entry of the named solver registry. Run executes the
// solver under an execution context: ex carries the budget, cancellation
// and the shared incumbent (never pass a nil ex when sharing matters —
// SolveContext builds one from Options). opt supplies solver tuning
// (Order, Workers); its budget fields are ignored here because the
// budget already lives in ex.
type SolverSpec struct {
	// Name is the canonical solver name; Lookup is case-insensitive.
	Name string
	// Paper cites what the solver reproduces (algorithm or table of the
	// source paper), "" for custom registrations.
	Paper string
	// Doc is a one-line description.
	Doc string
	// Heuristic marks solvers whose completed runs still do not prove
	// optimality (Result.Exact then additionally requires the Lemma 5
	// early-termination step, Stats.Step == S1).
	Heuristic bool
	// Run executes the solver. It must be safe for concurrent use.
	Run func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]SolverSpec{}
)

// Register adds spec to the solver registry. It fails on an empty name,
// a nil Run, or a duplicate (case-insensitive) name.
func Register(spec SolverSpec) error {
	if spec.Name == "" || spec.Run == nil {
		return fmt.Errorf("mbb: Register needs a name and a Run function")
	}
	key := strings.ToLower(spec.Name)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		return fmt.Errorf("mbb: solver %q already registered", spec.Name)
	}
	registry[key] = spec
	return nil
}

// Lookup resolves a solver name case-insensitively.
func Lookup(name string) (SolverSpec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	spec, ok := registry[strings.ToLower(name)]
	return spec, ok
}

// Solvers returns every registered solver, sorted by name.
func Solvers() []SolverSpec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]SolverSpec, 0, len(registry))
	for _, spec := range registry {
		out = append(out, spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SolverNames returns the sorted registered names.
func SolverNames() []string {
	specs := Solvers()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func unknownSolverError(name string) error {
	return fmt.Errorf("mbb: unknown solver %q (registered: %s)", name, strings.Join(SolverNames(), ", "))
}

func mustRegister(spec SolverSpec) {
	if err := Register(spec); err != nil {
		panic(err)
	}
}

// runSparse adapts a sparse.Options variant to the registry signature.
// Options.Order and Options.Workers override the variant's values when
// set, so the same entry serves the order sweeps of Figures 5–6 and the
// parallel pipeline.
func runSparse(variant func() sparse.Options) func(*core.Exec, *Graph, *Options) (core.Result, error) {
	return func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
		so := variant()
		if opt.Order != 0 {
			so.Order = opt.Order
		}
		if opt.Workers != 0 {
			so.Workers = opt.Workers
		}
		return sparse.Solve(ex, g, so), nil
	}
}

// runDense adapts the dense matrix solver: build the adjacency matrix
// (guarded by DenseCellLimit) and lift matrix-local indices back to
// unified ids. The run's counters are also published to the execution
// context so the planner's per-component solves aggregate there.
func runDense(mode dense.Mode) func(*core.Exec, *Graph, *Options) (core.Result, error) {
	return func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
		m, err := matrixOf(g)
		if err != nil {
			return core.Result{}, err
		}
		dres := dense.Solve(ex, m, dense.Options{Mode: mode})
		ex.AddStats(&dres.Stats)
		res := core.Result{Stats: dres.Stats}
		if dres.Found {
			res.Biclique = liftMatrix(g, dres.A, dres.B)
		}
		return res, nil
	}
}

func runAdp(kind baseline.AdpKind) func(*core.Exec, *Graph, *Options) (core.Result, error) {
	return func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
		res := baseline.Adp(ex, g, kind)
		ex.AddStats(&res.Stats)
		return res, nil
	}
}

func init() {
	mustRegister(SolverSpec{
		Name: "auto", Paper: "§6",
		Doc: "denseMBB for small dense graphs, hbvMBB otherwise",
		Run: func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
			spec, _ := Lookup(autoSolverName(g))
			return spec.Run(ex, g, opt)
		},
	})
	mustRegister(SolverSpec{
		Name: "hbvMBB", Paper: "Algorithm 4",
		Doc: "sparse framework: hMBB heuristics, bridging, streaming dense verification",
		Run: runSparse(sparse.DefaultOptions),
	})
	mustRegister(SolverSpec{
		Name: "denseMBB", Paper: "Algorithm 3",
		Doc: "reduction + branch-and-bound with the dynamicMBB polynomial case",
		Run: runDense(dense.ModeDense),
	})
	mustRegister(SolverSpec{
		Name: "basicBB", Paper: "Algorithm 1",
		Doc: "plain branch and bound (baseline)",
		Run: runDense(dense.ModeBasic),
	})
	mustRegister(SolverSpec{
		Name: "extBBCL", Paper: "§3 [31]",
		Doc: "prior state-of-the-art exact algorithm (Zhou, Rossi, Hao)",
		Run: func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
			res := baseline.ExtBBCL(ex, g)
			ex.AddStats(&res.Stats)
			return res, nil
		},
	})

	// Table 3 ablation variants of hbvMBB.
	mustRegister(SolverSpec{
		Name: "bd1", Paper: "Table 3",
		Doc: "hbvMBB without the step-1 heuristic",
		Run: runSparse(func() sparse.Options {
			return sparse.Options{Order: decomp.OrderBidegeneracy, SkipHeuristic: true, Seeds: 8}
		}),
	})
	mustRegister(SolverSpec{
		Name: "bd2", Paper: "Table 3",
		Doc: "hbvMBB without core/bicore optimisations",
		Run: runSparse(func() sparse.Options {
			return sparse.Options{SkipCoreOpts: true, Seeds: 8}
		}),
	})
	mustRegister(SolverSpec{
		Name: "bd3", Paper: "Table 3",
		Doc: "hbvMBB verifying with basicBB instead of denseMBB",
		Run: runSparse(func() sparse.Options {
			return sparse.Options{Order: decomp.OrderBidegeneracy, UseBasicBB: true, Seeds: 8}
		}),
	})
	mustRegister(SolverSpec{
		Name: "bd4", Paper: "Table 3",
		Doc: "hbvMBB under the max-degree total order",
		Run: runSparse(func() sparse.Options {
			return sparse.Options{Order: decomp.OrderDegree, Seeds: 8}
		}),
	})
	mustRegister(SolverSpec{
		Name: "bd5", Paper: "Table 3",
		Doc: "hbvMBB under the degeneracy total order",
		Run: runSparse(func() sparse.Options {
			return sparse.Options{Order: decomp.OrderDegeneracy, Seeds: 8}
		}),
	})

	// Composed MBE-based baselines of Table 3.
	mustRegister(SolverSpec{
		Name: "adp1", Paper: "Table 3",
		Doc: "POLS + core bound + FMBE", Run: runAdp(baseline.Adp1),
	})
	mustRegister(SolverSpec{
		Name: "adp2", Paper: "Table 3",
		Doc: "POLS + core bound + iMBEA", Run: runAdp(baseline.Adp2),
	})
	mustRegister(SolverSpec{
		Name: "adp3", Paper: "Table 3",
		Doc: "SBMNAS + core bound + FMBE", Run: runAdp(baseline.Adp3),
	})
	mustRegister(SolverSpec{
		Name: "adp4", Paper: "Table 3",
		Doc: "SBMNAS + core bound + iMBEA", Run: runAdp(baseline.Adp4),
	})

	mustRegister(SolverSpec{
		Name: "heur", Paper: "Algorithm 5",
		Doc:       "step-1 heuristic only (hMBB); exact only when Lemma 5 fires",
		Heuristic: true,
		Run: func(ex *core.Exec, g *Graph, opt *Options) (core.Result, error) {
			so := sparse.DefaultOptions()
			if opt.Order != 0 {
				so.Order = opt.Order
			}
			return sparse.HeuristicOnly(ex, g, so), nil
		},
	})
}
