package mbb_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/mbb"
)

// TestTopKOneMatchesScalar pins the k = 1 degeneration: TopK ≤ 1 must be
// byte-identical to the plain solve — same witness, same stats shape, and
// crucially no Bicliques list allocated.
func TestTopKOneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		g := randomGraph(rng, 12, 0.2+0.6*rng.Float64())
		plain, err := mbb.Solve(g, &mbb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1} {
			res, err := mbb.Solve(g, &mbb.Options{TopK: k})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, plain) {
				t.Fatalf("TopK=%d result diverges from plain solve:\n got %+v\nwant %+v", k, res, plain)
			}
			if res.Bicliques != nil {
				t.Fatalf("TopK=%d allocated a list", k)
			}
		}
	}
}

func TestTopKList(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10; i++ {
		g := randomGraph(rng, 10, 0.2+0.6*rng.Float64())
		for _, k := range []int{2, 3, 5} {
			res, err := mbb.Solve(g, &mbb.Options{TopK: k})
			if err != nil {
				t.Fatal(err)
			}
			want := baseline.TopKSizes(nil, g, k, 0)
			got := make([]int, len(res.Bicliques))
			for j, bc := range res.Bicliques {
				got[j] = bc.Size()
				if !bc.IsBicliqueOf(g) || !bc.IsBalanced() {
					t.Fatalf("k=%d: invalid witness %v", k, bc)
				}
			}
			if len(got) == 0 {
				got = nil
			}
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d sizes = %v, oracle %v", k, got, want)
			}
			if len(got) > 0 && res.Biclique.Size() != got[0] {
				t.Fatalf("k=%d scalar %d != head %d", k, res.Biclique.Size(), got[0])
			}
			if !res.Exact || res.Gap != 0 {
				t.Fatalf("k=%d unbudgeted solve: exact=%v gap=%d", k, res.Exact, res.Gap)
			}
		}
	}
}

// TestMinSizeProof covers the size-constrained query class: a floor at or
// below the optimum leaves the answer unchanged, a floor above it turns
// the completed search into a proof of absence with the matching
// certified upper bound.
func TestMinSizeProof(t *testing.T) {
	g := mbb.FromEdges(4, 4, [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 3},
	}) // optimum 2 (K2,2), trivial bound 4
	for m := 1; m <= 2; m++ {
		res, err := mbb.Solve(g, &mbb.Options{MinSize: m})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Biclique.Size() != 2 || res.Gap != 0 {
			t.Fatalf("MinSize=%d: %+v", m, res)
		}
		if res.Stats.UpperBound != 2 {
			t.Fatalf("MinSize=%d: upper bound %d, want the optimum", m, res.Stats.UpperBound)
		}
	}
	res, err := mbb.Solve(g, &mbb.Options{MinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Biclique.Size() != 0 {
		t.Fatalf("MinSize=3: want exact empty proof, got %+v", res)
	}
	if res.Stats.UpperBound != 2 {
		t.Fatalf("MinSize=3 proof certifies optimum <= %d, want 2 (= MinSize-1)", res.Stats.UpperBound)
	}
	if res.Gap != 0 {
		t.Fatalf("exact proof carries gap %d", res.Gap)
	}
}

// TestMinSizeInfeasibleRefused: a floor beyond a side of the graph is
// refused at plan time by counting — exact empty answer, no search.
func TestMinSizeInfeasibleRefused(t *testing.T) {
	g := mbb.FromEdges(3, 5, [][2]int{{0, 0}, {1, 1}, {2, 2}})
	res, err := mbb.Solve(g, &mbb.Options{MinSize: 4}) // > NL
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Biclique.Size() != 0 {
		t.Fatalf("infeasible floor: want exact empty, got %+v", res)
	}
	if res.Stats.Nodes != 0 {
		t.Fatalf("refusal ran a search: %d nodes", res.Stats.Nodes)
	}
	if res.Stats.UpperBound != 3 {
		t.Fatalf("refusal certificate %d, want trivial bound 3", res.Stats.UpperBound)
	}
	// The k > 1 form of a refusal still answers the list shape.
	res, err = mbb.Solve(g, &mbb.Options{MinSize: 4, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bicliques == nil || len(res.Bicliques) != 0 {
		t.Fatalf("infeasible top-k: Bicliques = %+v, want empty list", res.Bicliques)
	}
}

// TestBudgetCutGap: an inexact answer must carry a certified optimality
// gap — upper bound minus best-so-far, never negative, with the bound
// capped by the trivial min(NL, NR).
func TestBudgetCutGap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 60, 0.5)
	res, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.BasicBB, MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("10-node basicBB on a 60x60 graph cannot be exact")
	}
	trivial := g.NL()
	if g.NR() < trivial {
		trivial = g.NR()
	}
	size := res.Biclique.Size()
	ub := res.Stats.UpperBound
	if ub < size || ub > trivial {
		t.Fatalf("upper bound %d outside [size %d, trivial %d]", ub, size, trivial)
	}
	if res.Gap != ub-size {
		t.Fatalf("gap %d != upper bound %d - size %d", res.Gap, ub, size)
	}
	// Same contract through the planner and on a top-k cut.
	res, err = mbb.Solve(g, &mbb.Options{MaxNodes: 10, Reduce: mbb.ReduceOn, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("10-node budget with a top-k tail cannot be exact")
	}
	if res.Gap != res.Stats.UpperBound-res.Biclique.Size() || res.Gap < 0 {
		t.Fatalf("top-k cut gap %d, ub %d, size %d", res.Gap, res.Stats.UpperBound, res.Biclique.Size())
	}
}

// TestPlanQueryParity: the same query against a cached plan must answer
// exactly like the direct solve — plans are query-independent.
func TestPlanQueryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 6; i++ {
		g := randomGraph(rng, 10, 0.3+0.5*rng.Float64())
		plan, err := mbb.PlanContext(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		opts := []mbb.Options{
			{TopK: 3},
			{MinSize: 2},
			{TopK: 2, MinSize: 2},
			{MinSize: 99}, // infeasible on a ≤10-a-side graph
		}
		for _, opt := range opts {
			o1, o2 := opt, opt
			direct, err := mbb.Solve(g, &o1)
			if err != nil {
				t.Fatal(err)
			}
			viaPlan, err := plan.SolveContext(context.Background(), &o2)
			if err != nil {
				t.Fatal(err)
			}
			if viaPlan.Exact != direct.Exact || viaPlan.Biclique.Size() != direct.Biclique.Size() ||
				viaPlan.Gap != direct.Gap || len(viaPlan.Bicliques) != len(direct.Bicliques) {
				t.Fatalf("opt %+v: plan answer %+v diverges from direct %+v", opt, viaPlan, direct)
			}
			for j := range viaPlan.Bicliques {
				if viaPlan.Bicliques[j].Size() != direct.Bicliques[j].Size() {
					t.Fatalf("opt %+v: plan list sizes diverge at %d", opt, j)
				}
			}
		}
	}
}
