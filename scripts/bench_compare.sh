#!/usr/bin/env bash
# A/B benchmark comparison: run the pinned bench subset on two code
# versions and print per-benchmark deltas via cmd/benchdiff.
#
#   scripts/bench_compare.sh [BASE_REF [NEW_REF]]
#
# With no arguments the working tree is compared against HEAD; with one,
# against BASE_REF; with two, NEW_REF against BASE_REF. Refs are
# materialised in temporary git worktrees so the comparison never
# touches (or is polluted by) uncommitted state. Knobs:
#
#   BENCH_PATTERN   benchmark regexp (default: the pinned subset below)
#   BENCH_COUNT     -count per side (default 3; benchdiff takes best-of)
#   BENCH_TIME      -benchtime (default 1x: deterministic solver work
#                   dominates, so one iteration is already comparable)
#   BENCH_METRIC    gate metric for -threshold: ns, allocs, bytes
#   BENCH_THRESHOLD fail when new/old exceeds this ratio (default 0: report only)
#
# The CI bench gate covers machine-independent node counts
# (scripts/bench_gate.sh); this script is the complementary wall-clock /
# allocation loop a perf change is validated with locally, e.g.:
#
#   scripts/bench_compare.sh HEAD~1            # did my commit help?
#   BENCH_METRIC=allocs BENCH_THRESHOLD=1.0 scripts/bench_compare.sh
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

PATTERN="${BENCH_PATTERN:-BenchmarkAlloc|BenchmarkTable4DenseMBB/n=32|BenchmarkTable5HbvMBB/github|BenchmarkDynamicMBB|BenchmarkGraphApply}"
COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-1x}"
METRIC="${BENCH_METRIC:-ns}"
THRESHOLD="${BENCH_THRESHOLD:-0}"

base_ref="${1:-HEAD}"
new_ref="${2:-}"

tmp="$(mktemp -d)"
cleanup() {
    git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
    git worktree remove --force "$tmp/new" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT

run_bench() { # dir label out
    echo "bench_compare: running $3 in $1 ($2)" >&2
    (cd "$1" && go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" \
        -count "$COUNT" -benchmem .) > "$3"
}

git worktree add --force --detach "$tmp/base" "$base_ref" >/dev/null
run_bench "$tmp/base" "$base_ref" "$tmp/old.txt"

if [ -n "$new_ref" ]; then
    git worktree add --force --detach "$tmp/new" "$new_ref" >/dev/null
    run_bench "$tmp/new" "$new_ref" "$tmp/new.txt"
else
    run_bench "$PWD" "working tree" "$tmp/new.txt"
fi

echo "bench_compare: $base_ref -> ${new_ref:-working tree} (best of $COUNT, metric $METRIC)"
go run ./cmd/benchdiff -metric "$METRIC" -threshold "$THRESHOLD" "$tmp/old.txt" "$tmp/new.txt"
