#!/usr/bin/env bash
# End-to-end smoke test for mbbserved cluster mode: three durable
# workers on one consistent-hash ring behind a coordinator. Asserts the
# routing and replication contract — uploads and mutations land on the
# shard owner (and its WAL), direct writes to non-owners bounce with
# 421, replicas converge on the owner's exact epochs and answer solves
# identically for every named epoch, and killing a worker leaves reads
# serving through replicas while mutations to its shard back off with
# Retry-After. Run from the repo root; CI runs it after the unit tests.
set -euo pipefail

BIN="${MBBSERVED_BIN:-$(mktemp -d)/mbbserved}"
[ -x "$BIN" ] || go build -o "$BIN" ./cmd/mbbserved

K33='3 3 9
0 0
0 1
0 2
1 0
1 1
1 2
2 0
2 1
2 2'

declare -a WPID WLOG WDATA PEER PORT
CPID="" CLOG=""

dump_logs() {
    for i in 0 1 2; do
        [ -f "${WLOG[$i]:-/dev/null}" ] && tail -n 15 "${WLOG[$i]}" | sed "s/^/cluster_smoke: w$i: /" >&2
    done
    [ -f "${CLOG:-/dev/null}" ] && tail -n 15 "$CLOG" | sed 's/^/cluster_smoke: coord: /' >&2
}
fail() { echo "cluster_smoke: FAIL: $*" >&2; dump_logs; exit 1; }
cleanup() {
    for p in "${WPID[@]:-}" "$CPID"; do [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT

# wait_until TRIES CMD...: poll CMD (silenced) every 0.2s.
wait_until() {
    local tries=$1; shift
    for _ in $(seq 1 "$tries"); do "$@" >/dev/null 2>&1 && return 0; sleep 0.2; done
    return 1
}

# free_port: a random high port nothing is listening on right now. The
# worker ring needs every peer URL before any worker can bind, so ports
# must be chosen up front; a lost race shows up as a dead worker and the
# whole bring-up retries with fresh ports.
free_port() {
    while :; do
        local p=$((RANDOM % 20000 + 20000))
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            echo "$p"
            return
        fi
        exec 3>&- 2>/dev/null || true
    done
}

start_workers() {
    local peers=""
    for i in 0 1 2; do
        PORT[$i]=$(free_port)
        PEER[$i]="http://127.0.0.1:${PORT[$i]}"
        peers="${peers:+$peers,}${PEER[$i]}"
    done
    for i in 0 1 2; do
        WLOG[$i]=$(mktemp)
        WDATA[$i]=$(mktemp -d)
        "$BIN" -addr "127.0.0.1:${PORT[$i]}" -workers 2 -default-timeout 30s \
            -data-dir "${WDATA[$i]}" -wal-sync always -retain-epochs 4 \
            -cluster-peers "$peers" -cluster-self "${PEER[$i]}" \
            -replication 3 -max-replica-lag=-1ns >"${WLOG[$i]}" 2>&1 &
        WPID[$i]=$!
    done
    for i in 0 1 2; do
        if ! wait_until 50 grep -q 'listening on' "${WLOG[$i]}"; then
            # Likely a lost port race: tear down and let the caller retry.
            for p in "${WPID[@]}"; do kill -9 "$p" 2>/dev/null || true; done
            wait 2>/dev/null || true
            return 1
        fi
    done
    CLUSTER_PEERS="$peers"
}

started=""
for attempt in 1 2 3 4 5; do
    if start_workers; then started=yes; break; fi
    echo "cluster_smoke: bring-up attempt $attempt lost a port race, retrying" >&2
done
[ -n "$started" ] || fail "could not bring up 3 workers in 5 attempts"

CLOG=$(mktemp)
"$BIN" -coordinator -addr 127.0.0.1:0 -cluster-peers "$CLUSTER_PEERS" \
    -replication 3 -probe-interval 100ms >"$CLOG" 2>&1 &
CPID=$!
wait_until 50 grep -q 'coordinator listening on' "$CLOG" || fail "coordinator never listened"
CBASE="http://$(sed -n 's/.*coordinator listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$CLOG" | head -n1)"

ready_check() { curl -fs "$CBASE/readyz" | grep -q '"workers_ready":3'; }
wait_until 100 ready_check || fail "coordinator never saw 3 ready workers"

# Ownership is a pure ring computation; ask the coordinator where the
# smoke graph lives and find a worker that is NOT its owner.
PLACE=$(curl -fs "$CBASE/cluster?name=smoke")
OWNER=$(echo "$PLACE" | sed -n 's/.*"owner":"\([^"]*\)".*/\1/p')
[ -n "$OWNER" ] || fail "/cluster?name=smoke returned no owner: $PLACE"
OWNER_IDX="" NONOWNER=""
for i in 0 1 2; do
    if [ "${PEER[$i]}" = "$OWNER" ]; then OWNER_IDX=$i; else NONOWNER="${PEER[$i]}"; fi
done
[ -n "$OWNER_IDX" ] || fail "owner $OWNER is not one of the workers"

# Upload through the coordinator: the routing header must name the owner.
HDRS=$(echo "$K33" | curl -fs -D - -o /dev/null -XPUT --data-binary @- "$CBASE/graphs/smoke" | tr -d '\r')
echo "$HDRS" | grep -q "^X-Mbb-Worker: $OWNER$" ||
    fail "upload was not routed to the shard owner $OWNER: $(echo "$HDRS" | grep -i x-mbb)"

# Mutation through the coordinator bumps the owner's epoch; the record
# must land on the owner's WAL (upload + delta = 2 appends).
MUT=$(curl -fs -XDELETE "$CBASE/graphs/smoke/edges" -d '{"edges":[[2,0],[2,1],[2,2]]}')
echo "$MUT" | grep -q '"epoch":1' || fail "mutation did not bump epoch: $MUT"
APPENDS=$(curl -fs "$OWNER/metrics" | sed -n 's/^mbbserved_wal_appends_total \([0-9]*\)$/\1/p')
[ "${APPENDS:-0}" -ge 2 ] || fail "owner WAL shows $APPENDS appends, want >= 2"

# A mutation aimed straight at a non-owner is refused, naming the owner.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$NONOWNER/graphs/smoke/edges" -d '{"del":[[0,0]]}')
[ "$CODE" = "421" ] || fail "non-owner mutation returned $CODE, want 421"

# Replicas converge on the owner's epoch through the delta stream, and
# the replicated-apply counter moves on a non-owner.
for i in 0 1 2; do
    converged() { curl -fs "${PEER[$i]}/graphs/smoke" | grep -q '"epoch":1'; }
    wait_until 100 converged || fail "worker $i never converged to epoch 1"
done
APPLIED=$(curl -fs "$NONOWNER/metrics" | sed -n 's/^mbbserved_replication_applied_total \([0-9]*\)$/\1/p')
[ "${APPLIED:-0}" -ge 2 ] || fail "replica applied $APPLIED replicated records, want >= 2"

# Per-epoch exactness across the cluster: every worker answers the same
# (size, exact, epoch) for the current epoch AND for ?epoch=0 — replicas
# retain the same history the owner does.
solve_triple() { # url query
    local out
    out=$(curl -fs -XPOST "$1/graphs/smoke/solve$2" -d '{"timeout":"30s"}') || return 1
    echo "$out" | sed -n 's/.*"size":\([0-9]*\).*"exact":\(true\|false\).*"epoch":\([0-9]*\).*/size=\1 exact=\2 epoch=\3/p'
}
for q in "" "?epoch=0" "?epoch=1"; do
    WANT=""
    for i in 0 1 2; do
        GOT=$(solve_triple "${PEER[$i]}" "$q") || fail "solve$q failed on worker $i"
        [ -n "$GOT" ] || fail "solve$q on worker $i returned no parsable result"
        if [ -z "$WANT" ]; then WANT="$GOT"; else
            [ "$GOT" = "$WANT" ] || fail "solve$q disagreement: worker $i says '$GOT', first said '$WANT'"
        fi
    done
    echo "cluster_smoke: solve$q agrees on all workers: $WANT"
done
solve_triple "${PEER[0]}" "?epoch=0" | grep -q 'size=3 exact=true epoch=0' || fail "epoch-0 optimum wrong"
solve_triple "${PEER[0]}" "" | grep -q 'size=2 exact=true epoch=1' || fail "current-epoch optimum wrong"

# Per-epoch top-k agreement: re-adding only edge (2,2) gives a graph
# with maximal bicliques at two distinct balanced sizes (2 and 1) at
# epoch 2. After the replicas converge, every worker must answer the
# same ?k=2 list for the same epoch — sizes descending, head equal to
# the scalar answer — and the coordinator's /solveall must merge the
# per-replica lists into that same exact answer.
MUT=$(curl -fs -XPOST "$CBASE/graphs/smoke/edges" -d '{"add":[[2,2]]}')
echo "$MUT" | grep -q '"epoch":2' || fail "top-k mutation did not bump epoch: $MUT"
for i in 0 1 2; do
    converged2() { curl -fs "${PEER[$i]}/graphs/smoke" | grep -q '"epoch":2'; }
    wait_until 100 converged2 || fail "worker $i never converged to epoch 2"
done
topk_answer() { # url
    local out
    out=$(curl -fs -XPOST "$1/graphs/smoke/solve?k=2" -d '{"timeout":"30s"}') || return 1
    echo "$out" | grep -q '"epoch":2' || return 1
    echo "$out" | grep -o '"size":[0-9]*' | tr '\n' ' '
}
WANT=""
for i in 0 1 2; do
    GOT=$(topk_answer "${PEER[$i]}") || fail "top-k solve failed on worker $i"
    if [ -z "$WANT" ]; then WANT="$GOT"; else
        [ "$GOT" = "$WANT" ] || fail "top-k disagreement: worker $i says '$GOT', first said '$WANT'"
    fi
done
echo "cluster_smoke: per-epoch top-k agrees on all workers: $WANT"
echo "$WANT" | grep -q '"size":2 "size":2 "size":1' ||
    fail "top-k sizes wrong (want scalar 2, list [2 1]): $WANT"
ALL=$(curl -fs -XPOST "$CBASE/graphs/smoke/solveall?k=2" -d '{"timeout":"30s"}')
echo "$ALL" | grep -q '"epoch":2' || fail "solveall merged a stale epoch: $ALL"
echo "$ALL" | grep -q '"exact":true' || fail "solveall merge not exact: $ALL"
echo "$ALL" | grep -q '"bicliques":\[{"size":2' || fail "solveall list head is not size 2: $ALL"
echo "$ALL" | grep -q '{"size":1' || fail "solveall list lacks the size-1 entry: $ALL"
echo "$ALL" | grep -q '"workers":\[' || fail "solveall names no contributors: $ALL"

# Kill the owner outright (no drain). Reads must keep serving through
# the replicas; mutations to its shard must back off with Retry-After.
kill -9 "${WPID[$OWNER_IDX]}" 2>/dev/null || true
wait "${WPID[$OWNER_IDX]}" 2>/dev/null || true
WPID[$OWNER_IDX]=""

failover_solve() {
    local h
    h=$(curl -s -D - -o /dev/null -XPOST "$CBASE/graphs/smoke/solve" -d '{"timeout":"30s"}' | tr -d '\r')
    echo "$h" | head -n1 | grep -q ' 200 ' && ! echo "$h" | grep -q "^X-Mbb-Worker: $OWNER$"
}
wait_until 100 failover_solve || fail "solves did not keep serving through replicas after owner death"

MHDRS=$(curl -s -D - -o /dev/null -XPOST "$CBASE/graphs/smoke/edges" -d '{"del":[[0,0]]}' | tr -d '\r')
echo "$MHDRS" | head -n1 | grep -q ' 503 ' ||
    fail "mutation with dead owner did not 503: $(echo "$MHDRS" | head -n1)"
echo "$MHDRS" | grep -qi '^Retry-After:' || fail "dead-owner 503 lacks Retry-After"
curl -fs "$CBASE/readyz" >/dev/null || fail "coordinator went unready with one dead worker"

# Graceful shutdown: the survivors and the coordinator drain to exit 0.
for i in 0 1 2; do
    [ -n "${WPID[$i]}" ] && kill -TERM "${WPID[$i]}"
done
kill -TERM "$CPID"
for i in 0 1 2; do
    [ -n "${WPID[$i]}" ] || continue
    wait "${WPID[$i]}" || fail "worker $i exited non-zero after SIGTERM"
    WPID[$i]=""
done
wait "$CPID" || fail "coordinator exited non-zero after SIGTERM"
CPID=""
trap - EXIT

echo "cluster_smoke: OK"
