#!/usr/bin/env bash
# End-to-end smoke test for cmd/mbbserved: build the daemon, start it,
# upload a tiny graph, solve it twice (asserting the known optimum and
# that the second solve reuses the cached plan), cancel a job, and shut
# down cleanly. Run from the repo root; CI runs it after the unit tests.
set -euo pipefail

ADDR="127.0.0.1:${MBBSERVED_PORT:-18455}"
BASE="http://$ADDR"

# Reuse a prebuilt binary (CI's build step) when provided.
BIN="${MBBSERVED_BIN:-$(mktemp -d)/mbbserved}"
[ -x "$BIN" ] || go build -o "$BIN" ./cmd/mbbserved

"$BIN" -addr "$ADDR" -workers 2 -default-timeout 30s &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the daemon to come up.
for _ in $(seq 1 100); do
    curl -fs "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fs "$BASE/healthz" >/dev/null

fail() { echo "served_smoke: FAIL: $*" >&2; exit 1; }

# Upload K3,3 (optimum balanced biclique: 3 per side).
printf '3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n' |
    curl -fs -XPUT --data-binary @- "$BASE/graphs/k33" >/dev/null ||
    fail "graph upload rejected"

# First solve: correct optimum, exact.
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{"timeout":"30s"}')
echo "$OUT" | grep -q '"size":3' || fail "first solve: wrong size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "first solve: not exact: $OUT"

# Second solve: same optimum, via the cached plan.
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "second solve: wrong size: $OUT"
echo "$OUT" | grep -q '"plan_cached":true' || fail "second solve did not reuse the cached plan: $OUT"

# The store must report exactly one plan build for the two solves.
INFO=$(curl -fs "$BASE/graphs/k33")
echo "$INFO" | grep -q '"plan_builds":1' || fail "plan_builds != 1: $INFO"

# Async submit + cancel: the job must land in a terminal state.
JOB=$(curl -fs -XPOST "$BASE/graphs/k33/jobs" -d '{"timeout":"30s"}')
ID=$(echo "$JOB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit returned no job id: $JOB"
curl -fs -XDELETE "$BASE/jobs/$ID" >/dev/null || fail "cancel rejected"
STATUS=$(curl -fs "$BASE/jobs/$ID?wait=1")
echo "$STATUS" | grep -Eq '"state":"(canceled|done)"' || fail "job not terminal after cancel: $STATUS"

# Malformed upload must be a clean 400.
CODE=$(printf 'not a graph\n' | curl -s -o /dev/null -w '%{http_code}' -XPUT --data-binary @- "$BASE/graphs/bad")
[ "$CODE" = "400" ] || fail "malformed upload returned $CODE, want 400"

# Graceful shutdown.
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
trap - EXIT

echo "served_smoke: OK"
