#!/usr/bin/env bash
# End-to-end smoke test for cmd/mbbserved: build the daemon, start it on
# an ephemeral port (no hard-coded port — parallel CI jobs and dev
# machines cannot collide), upload a tiny graph, solve it twice
# (asserting the known optimum and that the second solve reuses the
# cached plan), mutate the graph through the edge endpoints (asserting
# epoch bumps and the new optimum per epoch), cancel a job, and shut
# down cleanly. Run from the repo root; CI runs it after the unit tests.
set -euo pipefail

# Reuse a prebuilt binary (CI's build step) when provided.
BIN="${MBBSERVED_BIN:-$(mktemp -d)/mbbserved}"
[ -x "$BIN" ] || go build -o "$BIN" ./cmd/mbbserved

# MBBSERVED_PORT pins a port for debugging; the default asks the kernel
# for a free one and discovers it from the daemon's startup log line.
# The daemon runs durable: every upload/mutation lands in a write-ahead
# log under DATA, which the kill -9 section below recovers from.
LOG=$(mktemp)
DATA=$(mktemp -d)
start_daemon() {
    "$BIN" -addr "127.0.0.1:${MBBSERVED_PORT:-0}" -workers 2 -default-timeout 30s \
        -data-dir "$DATA" -wal-sync always -retain-epochs 4 >"$LOG" 2>&1 &
    PID=$!
}
start_daemon
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
}
trap cleanup EXIT

fail() { echo "served_smoke: FAIL: $*" >&2; sed 's/^/served_smoke: daemon: /' "$LOG" >&2; exit 1; }

# Wait for the daemon to announce its actual listening address.
wait_listen() {
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9][0-9]*\).*/\1/p' "$LOG" | head -n1)
        [ -n "$ADDR" ] && break
        kill -0 "$PID" 2>/dev/null || fail "daemon exited before listening"
        sleep 0.1
    done
    [ -n "$ADDR" ] || fail "daemon never logged its listening address"
    BASE="http://$ADDR"
}
wait_listen
curl -fs "$BASE/healthz" >/dev/null || fail "healthz unreachable at $BASE"

# Every response carries an X-Request-Id; a sane inbound id is echoed so
# clients can correlate across services.
RID=$(curl -fs -D - -o /dev/null "$BASE/healthz" | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: //p')
[ -n "$RID" ] || fail "response lacks a generated X-Request-Id header"
RID=$(curl -fs -D - -o /dev/null -H 'X-Request-Id: smoke-42' "$BASE/stats" | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: //p')
[ "$RID" = "smoke-42" ] || fail "inbound X-Request-Id not echoed (got '$RID')"

# Prometheus endpoint serves the exposition format. (Capture first:
# with pipefail, grep -q closing the pipe early would fail curl.)
METRICS=$(curl -fs "$BASE/metrics")
echo "$METRICS" | grep -q 'mbbserved_requests_total' ||
    fail "/metrics missing mbbserved_requests_total"
echo "$METRICS" | grep -q 'mbbserved_queue_capacity' ||
    fail "/metrics missing mbbserved_queue_capacity"

# Upload K3,3 (optimum balanced biclique: 3 per side).
printf '3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n' |
    curl -fs -XPUT --data-binary @- "$BASE/graphs/k33" >/dev/null ||
    fail "graph upload rejected"

# First solve: correct optimum, exact, at the upload epoch.
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{"timeout":"30s"}')
echo "$OUT" | grep -q '"size":3' || fail "first solve: wrong size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "first solve: not exact: $OUT"
echo "$OUT" | grep -q '"epoch":0' || fail "first solve: wrong epoch: $OUT"

# Second solve: same optimum, via the cached plan.
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "second solve: wrong size: $OUT"
echo "$OUT" | grep -q '"plan_cached":true' || fail "second solve did not reuse the cached plan: $OUT"

# The store must report exactly one plan build for the two solves.
INFO=$(curl -fs "$BASE/graphs/k33")
echo "$INFO" | grep -q '"plan_builds":1' || fail "plan_builds != 1: $INFO"

# Mutate: deleting row 2 entirely drops the optimum to 2 and bumps the
# epoch; a deletion-only batch off the witness row also carries the
# cached plan across (no second planner run is asserted via plan_builds
# below only for the reuse case printed by the endpoint).
MUT=$(curl -fs -XDELETE "$BASE/graphs/k33/edges" -d '{"edges":[[2,0],[2,1],[2,2]]}')
echo "$MUT" | grep -q '"epoch":1' || fail "mutation did not bump epoch: $MUT"
echo "$MUT" | grep -q '"removed":3' || fail "mutation removed wrong count: $MUT"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{}')
echo "$OUT" | grep -q '"size":2' || fail "post-delete solve: wrong size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "post-delete solve: not exact: $OUT"
echo "$OUT" | grep -q '"epoch":1' || fail "post-delete solve: wrong epoch: $OUT"

# Mutate back: re-adding the row restores K3,3 at epoch 2 (insertions
# schedule a plan rebuild in the background; the solve must still be
# exact for the new epoch).
MUT=$(curl -fs -XPOST "$BASE/graphs/k33/edges" -d '{"add":[[2,0],[2,1],[2,2]]}')
echo "$MUT" | grep -q '"epoch":2' || fail "re-add did not bump epoch: $MUT"
echo "$MUT" | grep -q '"added":3' || fail "re-add added wrong count: $MUT"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "post-add solve: wrong size: $OUT"
echo "$OUT" | grep -q '"epoch":2' || fail "post-add solve: wrong epoch: $OUT"
INFO=$(curl -fs "$BASE/graphs/k33")
echo "$INFO" | grep -q '"epoch":2' || fail "graph info epoch != 2: $INFO"
echo "$INFO" | grep -q '"mutations":2' || fail "graph info mutations != 2: $INFO"

# Repair path: upload K3,3 minus one edge, build its plan with a solve
# (optimum 2), then insert the missing edge. The insertion must be
# absorbed by bounded local repair — "plan":"repaired", plan_builds
# still 1 — and the repaired plan must find the new optimum 3.
printf '3 3 8\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n' |
    curl -fs -XPUT --data-binary @- "$BASE/graphs/k33minus" >/dev/null ||
    fail "k33minus upload rejected"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33minus/solve" -d '{}')
echo "$OUT" | grep -q '"size":2' || fail "k33minus solve: wrong size: $OUT"
MUT=$(curl -fs -XPOST "$BASE/graphs/k33minus/edges" -d '{"add":[[2,2]]}')
echo "$MUT" | grep -q '"plan":"repaired"' || fail "insertion not absorbed by repair: $MUT"
INFO=$(curl -fs "$BASE/graphs/k33minus")
echo "$INFO" | grep -q '"plan_builds":1' || fail "repair triggered a plan rebuild: $INFO"
echo "$INFO" | grep -q '"plan_repairs":1' || fail "plan_repairs != 1 after repair: $INFO"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33minus/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "repaired-plan solve: wrong size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "repaired-plan solve: not exact: $OUT"
echo "$OUT" | grep -q '"plan_cached":true' || fail "repaired-plan solve missed the cache: $OUT"
INFO=$(curl -fs "$BASE/graphs/k33minus")
echo "$INFO" | grep -q '"plan_builds":1' || fail "plan_builds moved after repaired solve: $INFO"

# Query engine: top-k and size-constrained solves through the URL
# parameters. K3,3 plus a disjoint edge has maximal bicliques at two
# distinct balanced sizes (3 and 1), so ?k=2 must list both, largest
# first, with the scalar answer as the head; ?min= above the optimum
# must come back as an exact empty proof; nonsense values are clean 400s.
printf '4 4 10\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n3 3\n' |
    curl -fs -XPUT --data-binary @- "$BASE/graphs/two" >/dev/null ||
    fail "two-sizes graph upload rejected"
OUT=$(curl -fs -XPOST "$BASE/graphs/two/solve?k=2" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "top-k solve: wrong scalar size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "top-k solve: not exact: $OUT"
echo "$OUT" | grep -q '"bicliques":\[{"size":3' || fail "top-k solve: list head is not size 3: $OUT"
echo "$OUT" | grep -q '{"size":1' || fail "top-k solve: list lacks the size-1 entry: $OUT"
OUT=$(curl -fs -XPOST "$BASE/graphs/two/solve?min=2" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "min=2 solve: wrong size: $OUT"
OUT=$(curl -fs -XPOST "$BASE/graphs/two/solve?min=4" -d '{}')
echo "$OUT" | grep -q '"size":0' || fail "min=4 solve: expected empty proof: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "min=4 solve: proof must be exact: $OUT"
echo "$OUT" | grep -q '"gap":0' || fail "min=4 proof carries a gap: $OUT"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/graphs/two/solve?k=-1" -d '{}')
[ "$CODE" = "400" ] || fail "k=-1 returned $CODE, want 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/graphs/two/solve?min=abc" -d '{}')
[ "$CODE" = "400" ] || fail "min=abc returned $CODE, want 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/graphs/two/solve?k=2" -d '{"k":3}')
[ "$CODE" = "400" ] || fail "conflicting k returned $CODE, want 400"

# Historical epochs: with -retain-epochs 4 the whole k33 history
# (epoch 0 upload, epoch 1 row deleted, epoch 2 row restored) stays
# solvable and exportable.
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve?epoch=1" -d '{}')
echo "$OUT" | grep -q '"size":2' || fail "epoch-1 solve: wrong size: $OUT"
echo "$OUT" | grep -q '"epoch":1' || fail "epoch-1 solve: wrong epoch: $OUT"
EXP=$(curl -fs "$BASE/graphs/k33/export?epoch=1&format=edgelist")
echo "$EXP" | head -n1 | grep -q '^3 3 6$' || fail "epoch-1 export header wrong: $(echo "$EXP" | head -n1)"
EXP=$(curl -fs "$BASE/graphs/k33/export?format=edgelist")
echo "$EXP" | head -n1 | grep -q '^3 3 9$' || fail "current export header wrong: $(echo "$EXP" | head -n1)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/graphs/k33/export?epoch=99")
[ "$CODE" = "404" ] || fail "out-of-window export returned $CODE, want 404"

# The WAL shows up in /metrics with one append per upload/mutation.
METRICS=$(curl -fs "$BASE/metrics")
echo "$METRICS" | grep -q 'mbbserved_wal_appends_total' || fail "/metrics missing mbbserved_wal_appends_total"
echo "$METRICS" | grep -q 'mbbserved_wal_fsyncs_total' || fail "/metrics missing mbbserved_wal_fsyncs_total"
echo "$METRICS" | grep -q 'mbbserved_retained_snapshots' || fail "/metrics missing mbbserved_retained_snapshots"

# Durability: kill -9 (no drain, no clean close) and restart on the same
# data dir. Recovery must replay the WAL back to the exact pre-crash
# state — same graphs, same epochs, same optima, retained history still
# solvable — without re-uploading anything.
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
: >"$LOG"
start_daemon
wait_listen
grep -q 'recovered' "$LOG" || fail "restarted daemon logged no recovery line"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "post-crash solve: wrong size: $OUT"
echo "$OUT" | grep -q '"exact":true' || fail "post-crash solve: not exact: $OUT"
echo "$OUT" | grep -q '"epoch":2' || fail "post-crash solve: wrong epoch: $OUT"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33/solve?epoch=1" -d '{}')
echo "$OUT" | grep -q '"size":2' || fail "post-crash epoch-1 solve: wrong size: $OUT"
INFO=$(curl -fs "$BASE/graphs/k33")
echo "$INFO" | grep -q '"epoch":2' || fail "post-crash graph info epoch != 2: $INFO"
echo "$INFO" | grep -q '"mutations":2' || fail "post-crash graph info mutations != 2: $INFO"
OUT=$(curl -fs -XPOST "$BASE/graphs/k33minus/solve" -d '{}')
echo "$OUT" | grep -q '"size":3' || fail "post-crash k33minus solve: wrong size: $OUT"

# Malformed mutations must be clean 400s and leave the epoch alone.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/graphs/k33/edges" -d '{"add":[[99,99]]}')
[ "$CODE" = "400" ] || fail "out-of-range mutation returned $CODE, want 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -XPOST "$BASE/graphs/k33/edges" -d '{}')
[ "$CODE" = "400" ] || fail "empty mutation returned $CODE, want 400"
curl -fs "$BASE/graphs/k33" | grep -q '"epoch":2' || fail "failed mutation moved the epoch"

# Async submit + cancel: the job must land in a terminal state.
JOB=$(curl -fs -XPOST "$BASE/graphs/k33/jobs" -d '{"timeout":"30s"}')
ID=$(echo "$JOB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$ID" ] || fail "submit returned no job id: $JOB"
curl -fs -XDELETE "$BASE/jobs/$ID" >/dev/null || fail "cancel rejected"
STATUS=$(curl -fs "$BASE/jobs/$ID?wait=1")
echo "$STATUS" | grep -Eq '"state":"(canceled|done)"' || fail "job not terminal after cancel: $STATUS"

# Malformed upload must be a clean 400.
CODE=$(printf 'not a graph\n' | curl -s -o /dev/null -w '%{http_code}' -XPUT --data-binary @- "$BASE/graphs/bad")
[ "$CODE" = "400" ] || fail "malformed upload returned $CODE, want 400"

# Graceful drain: start a sync solve that cannot finish fast (basicBB,
# no reduction, dense random instance, 3s budget), SIGTERM the daemon
# mid-solve, and assert the drain contract — new submissions bounce with
# 503 + Retry-After, the in-flight solve still completes with a 200 and
# a terminal job state, and the daemon exits 0.
awk 'BEGIN{srand(7);n=160;m=0;
    for(l=0;l<n;l++)for(r=0;r<n;r++)if(rand()<0.5)e[m++]=l" "r;
    print n,n,m;for(i=0;i<m;i++)print e[i]}' |
    curl -fs -XPUT --data-binary @- "$BASE/graphs/slow" >/dev/null ||
    fail "slow graph upload rejected"
SOLVE_BODY=$(mktemp)
SOLVE_CODE=$(mktemp)
(curl -s -o "$SOLVE_BODY" -w '%{http_code}' -XPOST "$BASE/graphs/slow/solve" \
    -d '{"solver":"basicBB","reduce":"off","timeout":"3s"}' >"$SOLVE_CODE") &
SOLVE_PID=$!
sleep 0.5
kill -0 "$SOLVE_PID" 2>/dev/null || fail "slow solve finished before SIGTERM; drain test is vacuous"
kill -TERM "$PID"
sleep 0.3
HDRS=$(curl -s -D - -o /dev/null -XPOST "$BASE/graphs/k33/jobs" -d '{}' | tr -d '\r')
echo "$HDRS" | head -n1 | grep -q ' 503 ' || fail "submit during drain did not 503: $(echo "$HDRS" | head -n1)"
echo "$HDRS" | grep -qi '^Retry-After:' || fail "drain 503 lacks Retry-After"
wait "$SOLVE_PID" || true
[ "$(cat "$SOLVE_CODE")" = "200" ] || fail "in-flight solve returned $(cat "$SOLVE_CODE") during drain, want 200"
grep -Eq '"state":"(done|failed|canceled)"' "$SOLVE_BODY" ||
    fail "in-flight solve not terminal after drain: $(cat "$SOLVE_BODY")"
if wait "$PID"; then :; else fail "daemon exited non-zero after SIGTERM drain"; fi
grep -q 'draining' "$LOG" || fail "daemon log never mentioned draining"
trap - EXIT

echo "served_smoke: OK"
