#!/usr/bin/env bash
# CI benchmark trajectory: run the pinned subset (cmd/mbbbench -exp
# trajectory), write the machine-readable record file ($BENCH_OUT,
# default BENCH_8.json — per-solve seconds and search nodes, servebench
# cold/warm/burst latencies, mutebench mutate/solve percentiles per plan
# outcome including the insert-heavy repair-path mix and a WAL-on pass
# whose -wal-suffixed records measure the write-ahead-log overhead of
# the durable mutation path against the volatile records; the intent is
# that wal-sync=interval stays under 1.15x of the volatile mutate p50),
# and gate the deterministic node counts against the newest committed
# BENCH_*.json when one exists: a pin spending more than 2x the
# baseline's search nodes fails the job. The JSON is written even when
# the gate fails so CI can archive the regressing trajectory.
set -euo pipefail

OUT="${BENCH_OUT:-BENCH_8.json}"
BUDGET="${BENCH_BUDGET:-15s}"

baseline_args=()
prev="$(git ls-files 'BENCH_*.json' | sort -V | tail -n1 || true)"
if [ -n "$prev" ]; then
    # The fresh run may overwrite the baseline's file (same PR number), so
    # compare against a copy of the committed content.
    base_copy="$(mktemp)"
    git show "HEAD:$prev" > "$base_copy" 2>/dev/null || cp "$prev" "$base_copy"
    echo "bench_gate: baseline $prev" >&2
    baseline_args=(-baseline "$base_copy")
else
    echo "bench_gate: no committed BENCH_*.json baseline; recording only" >&2
fi

status=0
go run ./cmd/mbbbench -exp trajectory -json -budget "$BUDGET" \
    "${baseline_args[@]}" > "$OUT" || status=$?
echo "bench_gate: wrote $OUT ($(wc -c < "$OUT") bytes)" >&2
exit "$status"
