// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table and figure. Sizes are trimmed so `go test -bench=.` finishes
// in minutes; cmd/mbbbench runs the full-scale sweeps with configurable
// budgets and prints the tables in the paper's layout.
//
// Solver-level benchmarks go through the mbb registry (mbb.Options.Solver)
// so they measure exactly what library users run; substrate benchmarks
// (bitsets, decompositions, matrix construction) call the internal
// packages directly.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
	"repro/internal/heur"
	"repro/internal/sparse"
	"repro/internal/workload"
	"repro/mbb"
)

// benchBudget bounds each solve inside a benchmark iteration so a single
// pathological instance cannot stall the whole suite.
const benchBudget = 10 * time.Second

// benchExec returns a fresh execution context with the benchmark budget.
func benchExec() *core.Exec {
	return core.NewExec(nil, core.Limits{Timeout: benchBudget})
}

// solveNamed runs one registry solver under the benchmark budget,
// skipping the benchmark if the budget is exhausted.
func solveNamed(b *testing.B, solver string, g *mbb.Graph, opt mbb.Options) {
	b.Helper()
	opt.Solver = solver
	opt.Timeout = benchBudget
	res, err := mbb.Solve(g, &opt)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Exact {
		b.Skip("budget exhausted at this size")
	}
}

// --- Table 4: efficiency on dense bipartite graphs -----------------------

// BenchmarkTable4DenseMBB measures denseMBB (Algorithm 3) across the
// paper's density sweep.
func BenchmarkTable4DenseMBB(b *testing.B) {
	for _, n := range []int{32, 64} {
		for _, d := range []float64{0.70, 0.80, 0.90, 0.95} {
			b.Run(fmt.Sprintf("n=%d/density=%.2f", n, d), func(b *testing.B) {
				g := workload.Dense(n, n, d, 42)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					solveNamed(b, "denseMBB", g, mbb.Options{})
				}
			})
		}
	}
}

// BenchmarkTable4ExtBBCL measures the prior state of the art [31] on the
// same instances (smaller sizes: it times out far earlier, exactly as in
// the paper).
func BenchmarkTable4ExtBBCL(b *testing.B) {
	for _, n := range []int{16, 32} {
		for _, d := range []float64{0.70, 0.90} {
			b.Run(fmt.Sprintf("n=%d/density=%.2f", n, d), func(b *testing.B) {
				g := workload.Dense(n, n, d, 42)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					solveNamed(b, "extBBCL", g, mbb.Options{})
				}
			})
		}
	}
}

// --- Table 5: efficiency on sparse bipartite graphs ----------------------

// table5Sets is a representative subset spanning easy (S1) and tough (S3)
// datasets; -bench full sweeps are run via cmd/mbbbench.
var table5Sets = []string{"unicodelang", "escorts", "jester", "github", "dbpedia-genre", "pics-ut"}

// BenchmarkTable5HbvMBB measures the paper's framework per dataset.
func BenchmarkTable5HbvMBB(b *testing.B) {
	for _, name := range table5Sets {
		d, _ := workload.ByName(name)
		b.Run(name, func(b *testing.B) {
			g := d.Generate(20000, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveNamed(b, "hbvMBB", g, mbb.Options{})
			}
		})
	}
}

// BenchmarkTable5Adp3 measures the strongest composed baseline (SBMNAS +
// core bound + FMBE), the paper's runner-up.
func BenchmarkTable5Adp3(b *testing.B) {
	for _, name := range table5Sets {
		d, _ := workload.ByName(name)
		b.Run(name, func(b *testing.B) {
			g := d.Generate(20000, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveNamed(b, "adp3", g, mbb.Options{})
			}
		})
	}
}

// BenchmarkTable5ExtBBCL measures the prior exact algorithm on the same
// stand-ins.
func BenchmarkTable5ExtBBCL(b *testing.B) {
	for _, name := range []string{"unicodelang", "escorts", "github"} {
		d, _ := workload.ByName(name)
		b.Run(name, func(b *testing.B) {
			g := d.Generate(20000, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveNamed(b, "extBBCL", g, mbb.Options{})
			}
		})
	}
}

// --- Table 6: ablation variants on tough datasets -------------------------

// BenchmarkTable6Variants measures hbvMBB against its ablations (bd1: no
// heuristic step; bd2: no core/bicore optimisations; bd3: basicBB instead
// of denseMBB; bd4/bd5: weaker total orders) on tough stand-ins.
func BenchmarkTable6Variants(b *testing.B) {
	variants := []string{"hbvMBB", "bd1", "bd2", "bd3", "bd4", "bd5"}
	for _, dsName := range []string{"github", "pics-ut"} {
		d, _ := workload.ByName(dsName)
		g := d.Generate(15000, 1)
		for _, v := range variants {
			b.Run(dsName+"/"+v, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveNamed(b, v, g, mbb.Options{})
				}
			})
		}
	}
}

// BenchmarkTable6Decompositions measures the degOrder and bdegOrder
// overhead columns of Table 6.
func BenchmarkTable6Decompositions(b *testing.B) {
	d, _ := workload.ByName("github")
	g := d.Generate(20000, 1)
	b.Run("degOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decomp.Cores(g)
		}
	})
	b.Run("bdegOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decomp.BicoresFast(g)
		}
	})
	b.Run("bdegOrderExact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decomp.Bicores(g)
		}
	})
}

// --- Figure 4: heuristic effectiveness ------------------------------------

// BenchmarkFig4Heuristics measures the two heuristic layers whose quality
// gap Figure 4 reports: the global step-1 heuristic (hMBB) and the full
// pipeline including the local step-2 heuristics.
func BenchmarkFig4Heuristics(b *testing.B) {
	d, _ := workload.ByName("pics-ut")
	g := d.Generate(15000, 1)
	b.Run("heuGlobal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.HeuristicOnly(benchExec(), g, sparse.DefaultOptions())
		}
	})
	b.Run("greedyDegree", func(b *testing.B) {
		scores := heur.DegreeScores(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			heur.Greedy(g, scores, 8)
		}
	})
	b.Run("POLS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heur.LocalSearch(benchExec(), g, heur.POLSDefaults())
		}
	})
	b.Run("SBMNAS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			heur.LocalSearch(benchExec(), g, heur.SBMNASDefaults())
		}
	})
}

// --- Figure 5: search depth per total order --------------------------------

// BenchmarkFig5Orders measures full solves under the three total search
// orders; the depth statistics Figure 5 plots are byproducts of these
// runs (cmd/mbbbench -exp fig5 prints them).
func BenchmarkFig5Orders(b *testing.B) {
	d, _ := workload.ByName("github")
	g := d.Generate(15000, 1)
	for _, kind := range []decomp.OrderKind{decomp.OrderDegree, decomp.OrderDegeneracy, decomp.OrderBidegeneracy} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveNamed(b, "hbvMBB", g, mbb.Options{Order: kind})
			}
		})
	}
}

// --- Figure 6: vertex-centred subgraph construction -------------------------

// BenchmarkFig6VertexCentred measures the order computation plus
// vertex-centred subgraph extraction cost that Figure 6's density
// comparison rests on (isolated from the exhaustive search).
func BenchmarkFig6VertexCentred(b *testing.B) {
	d, _ := workload.ByName("github")
	g := d.Generate(15000, 1)
	for _, kind := range []decomp.OrderKind{decomp.OrderDegree, decomp.OrderDegeneracy, decomp.OrderBidegeneracy} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				order := decomp.Order(g, kind)
				pos := make([]int, g.NumVertices())
				for j, v := range order {
					pos[v] = j
				}
				th := decomp.NewTwoHop(g)
				var kept, nbuf []int
				for j, v := range order {
					kept = kept[:0]
					nbuf = th.Append(v, nil, nbuf[:0])
					for _, w := range nbuf {
						if pos[w] > j {
							kept = append(kept, w)
						}
					}
				}
			}
		})
	}
}

// --- Microbenchmarks for the core substrates -------------------------------

// BenchmarkDynamicMBB isolates Algorithm 2 on a worst-case shape: a
// near-complete graph whose complement is one long cycle.
func BenchmarkDynamicMBB(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := dense.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if j != i && j != (i+1)%n {
						m.AddEdge(i, j)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense})
			}
		})
	}
}

// BenchmarkTwoHop measures the N≤2 kernel underlying bicore decomposition.
func BenchmarkTwoHop(b *testing.B) {
	g := workload.PowerLaw(20000, 10000, 80000, 0.5, 3)
	th := decomp.NewTwoHop(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % g.NumVertices()
		th.Size(v, nil)
	}
}

// BenchmarkBruteForceOracle tracks the testing oracle's cost envelope.
func BenchmarkBruteForceOracle(b *testing.B) {
	g := workload.Dense(14, 14, 0.5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BruteForce(g)
	}
}

// BenchmarkGraphBuild measures CSR construction throughput.
func BenchmarkGraphBuild(b *testing.B) {
	edges := workload.PowerLaw(50000, 50000, 400000, 0.5, 5).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := bigraph.NewBuilder(50000, 50000)
		for _, e := range edges {
			bl.AddEdge(e[0], e[1])
		}
		bl.Build()
	}
}

// BenchmarkGraphApply measures the copy-on-write delta path behind the
// mbbserved edge-mutation endpoints against a from-scratch rebuild: for
// a small batch, Apply is a flat CSR copy plus a per-touched-vertex
// merge, while the rebuild pays the full edge sort again.
func BenchmarkGraphApply(b *testing.B) {
	g := workload.PowerLaw(20000, 20000, 160000, 0.5, 5)
	edges := g.Edges()
	b.Run("delta8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := bigraph.Delta{
				Del: [][2]int{edges[i%len(edges)], edges[(i*7+1)%len(edges)],
					edges[(i*13+2)%len(edges)], edges[(i*29+3)%len(edges)]},
				Add: [][2]int{{i % 20000, (i * 31) % 20000}, {(i * 3) % 20000, (i * 37) % 20000},
					{(i * 5) % 20000, (i * 41) % 20000}, {(i * 11) % 20000, (i * 43) % 20000}},
			}
			if _, _, err := g.Apply(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bl := bigraph.NewBuilder(20000, 20000)
			for _, e := range edges {
				bl.AddEdge(e[0], e[1])
			}
			bl.Build()
		}
	})
}

// --- Ablations of the engineered design choices (DESIGN.md §3) -------------

// BenchmarkAblationBounds quantifies each added pruning device on a dense
// instance: the full solver versus dropping the degree-profile bound, the
// complement-matching bound, or the greedy incumbent seed.
func BenchmarkAblationBounds(b *testing.B) {
	g := workload.Dense(48, 48, 0.9, 42)
	m := dense.FromBigraph(g)
	cases := []struct {
		name string
		opt  dense.Options
	}{
		{"full", dense.Options{Mode: dense.ModeDense}},
		{"noProfileBound", dense.Options{Mode: dense.ModeDense, DisableProfileBound: true}},
		{"noMatchingBound", dense.Options{Mode: dense.ModeDense, DisableMatchingBound: true}},
		{"noGreedySeed", dense.Options{Mode: dense.ModeDense, DisableGreedySeed: true}},
		{"basicBB", dense.Options{Mode: dense.ModeBasic}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := dense.Solve(benchExec(), m, c.opt)
				if res.Stats.TimedOut {
					b.Skip("budget exhausted")
				}
			}
		})
	}
}

// BenchmarkParallelVerify measures the streaming worker-pool pipeline of
// steps 2+3.
func BenchmarkParallelVerify(b *testing.B) {
	d, _ := workload.ByName("pics-ut")
	g := d.Generate(15000, 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveNamed(b, "hbvMBB", g, mbb.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkMaxEdge and BenchmarkMaxVertex track the extension solvers.
func BenchmarkMaxEdge(b *testing.B) {
	g := workload.Dense(32, 32, 0.7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbb.SolveMaxEdge(g, benchBudget)
	}
}

func BenchmarkMaxVertex(b *testing.B) {
	g := workload.Dense(256, 256, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbb.SolveMaxVertex(g)
	}
}

// BenchmarkEnumerateMaximal tracks the full enumeration substrate.
func BenchmarkEnumerateMaximal(b *testing.B) {
	g := workload.PowerLaw(2000, 2000, 10000, 0.5, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.EnumerateMaximal(benchExec(), g, func(A, B []int) bool { return true })
	}
}
