package main

import (
	"bytes"
	"testing"

	"repro/internal/bigraph"
)

// TestGeneratedOutputRoundTrips checks that every generator kind produces
// a graph that survives the text edge-list format unchanged: written with
// bigraph.Write and parsed back with bigraph.Read, the shape and the full
// edge set must be identical.
func TestGeneratedOutputRoundTrips(t *testing.T) {
	specs := []genSpec{
		{Kind: "dense", NL: 24, NR: 16, Density: 0.3, Seed: 7},
		{Kind: "dense", NL: 8, NR: 8, Density: 0, Seed: 1}, // empty edge set
		{Kind: "powerlaw", NL: 60, NR: 40, M: 200, Alpha: 0.5, Seed: 3},
		{Kind: "powerlaw", NL: 30, NR: 30, Alpha: 0.5, Seed: 5, Plant: 4},
		{Kind: "dataset", Name: "unicodelang", MaxVerts: 400, Seed: 2},
	}
	for _, s := range specs {
		g, err := buildGraph(s)
		if err != nil {
			t.Fatalf("buildGraph(%+v): %v", s, err)
		}
		var buf bytes.Buffer
		if err := bigraph.Write(&buf, g); err != nil {
			t.Fatalf("Write(%+v): %v", s, err)
		}
		back, err := bigraph.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Read(%+v): %v", s, err)
		}
		if back.NL() != g.NL() || back.NR() != g.NR() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("shape changed in round trip: %dx%d/%d -> %dx%d/%d",
				g.NL(), g.NR(), g.NumEdges(), back.NL(), back.NR(), back.NumEdges())
		}
		ge, be := g.Edges(), back.Edges()
		for i := range ge {
			if ge[i] != be[i] {
				t.Fatalf("edge %d changed in round trip: %v -> %v", i, ge[i], be[i])
			}
		}
	}
}

// TestBuildGraphRejectsBadSpecs pins the error paths the command reports.
func TestBuildGraphRejectsBadSpecs(t *testing.T) {
	for _, s := range []genSpec{
		{Kind: "nope"},
		{Kind: "dataset", Name: "no-such-dataset"},
	} {
		if _, err := buildGraph(s); err == nil {
			t.Errorf("buildGraph(%+v): expected error", s)
		}
	}
}
