// Command mbbgen generates the paper's evaluation workloads in the text
// edge-list format.
//
// Usage:
//
//	mbbgen -kind dense -nl 256 -nr 256 -density 0.85 [-seed 1] [-o file]
//	mbbgen -kind powerlaw -nl 10000 -nr 5000 -m 40000 [-alpha 0.5]
//	mbbgen -kind dataset -name github [-maxverts 30000]
//	mbbgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bigraph"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "dense", "generator: dense, powerlaw, dataset")
	nl := flag.Int("nl", 128, "left side size")
	nr := flag.Int("nr", 128, "right side size")
	density := flag.Float64("density", 0.85, "edge density (dense)")
	m := flag.Int("m", 0, "target edge count (powerlaw)")
	alpha := flag.Float64("alpha", 0.5, "power-law weight exponent (powerlaw)")
	plant := flag.Int("plant", 0, "plant a complete k x k biclique")
	name := flag.String("name", "", "dataset name (dataset)")
	maxVerts := flag.Int("maxverts", 30000, "dataset scale cap (dataset)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list the Table 5 dataset registry and exit")
	flag.Parse()

	if *list {
		for _, d := range workload.Registry {
			tough := ""
			if d.Tough {
				tough = fmt.Sprintf("  tough(D%d)", d.DIndex)
			}
			fmt.Printf("%-28s |L|=%-8d |R|=%-8d density=%.4ge-4 optimum=%d%s\n",
				d.Name, d.L, d.R, d.Density*1e4, d.Optimum, tough)
		}
		return
	}

	g, err := buildGraph(genSpec{
		Kind: *kind, NL: *nl, NR: *nr, Density: *density, M: *m,
		Alpha: *alpha, Plant: *plant, Name: *name, MaxVerts: *maxVerts,
		Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := bigraph.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mbbgen: %d x %d, %d edges (density %.4g)\n",
		g.NL(), g.NR(), g.NumEdges(), g.Density())
}

// genSpec holds the parsed generator parameters; buildGraph turns it into
// a graph so tests can exercise the exact construction the command runs.
type genSpec struct {
	Kind     string
	NL, NR   int
	Density  float64
	M        int
	Alpha    float64
	Plant    int
	Name     string
	MaxVerts int
	Seed     int64
}

func buildGraph(s genSpec) (*bigraph.Graph, error) {
	var g *bigraph.Graph
	switch s.Kind {
	case "dense":
		g = workload.Dense(s.NL, s.NR, s.Density, s.Seed)
	case "powerlaw":
		edges := s.M
		if edges == 0 {
			edges = (s.NL + s.NR) * 2
		}
		g = workload.PowerLaw(s.NL, s.NR, edges, s.Alpha, s.Seed)
	case "dataset":
		d, ok := workload.ByName(s.Name)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (use -list)", s.Name)
		}
		g = d.Generate(s.MaxVerts, s.Seed)
	default:
		return nil, fmt.Errorf("unknown kind %q", s.Kind)
	}
	if s.Plant > 0 && s.Kind != "dataset" {
		g, _, _ = workload.Plant(g, s.Plant, s.Seed+1)
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbgen:", err)
	os.Exit(1)
}
