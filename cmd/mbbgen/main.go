// Command mbbgen generates the paper's evaluation workloads in the text
// edge-list format.
//
// Usage:
//
//	mbbgen -kind dense -nl 256 -nr 256 -density 0.85 [-seed 1] [-o file]
//	mbbgen -kind powerlaw -nl 10000 -nr 5000 -m 40000 [-alpha 0.5]
//	mbbgen -kind dataset -name github [-maxverts 30000]
//	mbbgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bigraph"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "dense", "generator: dense, powerlaw, dataset")
	nl := flag.Int("nl", 128, "left side size")
	nr := flag.Int("nr", 128, "right side size")
	density := flag.Float64("density", 0.85, "edge density (dense)")
	m := flag.Int("m", 0, "target edge count (powerlaw)")
	alpha := flag.Float64("alpha", 0.5, "power-law weight exponent (powerlaw)")
	plant := flag.Int("plant", 0, "plant a complete k x k biclique")
	name := flag.String("name", "", "dataset name (dataset)")
	maxVerts := flag.Int("maxverts", 30000, "dataset scale cap (dataset)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list the Table 5 dataset registry and exit")
	flag.Parse()

	if *list {
		for _, d := range workload.Registry {
			tough := ""
			if d.Tough {
				tough = fmt.Sprintf("  tough(D%d)", d.DIndex)
			}
			fmt.Printf("%-28s |L|=%-8d |R|=%-8d density=%.4ge-4 optimum=%d%s\n",
				d.Name, d.L, d.R, d.Density*1e4, d.Optimum, tough)
		}
		return
	}

	var g *bigraph.Graph
	switch *kind {
	case "dense":
		g = workload.Dense(*nl, *nr, *density, *seed)
	case "powerlaw":
		edges := *m
		if edges == 0 {
			edges = (*nl + *nr) * 2
		}
		g = workload.PowerLaw(*nl, *nr, edges, *alpha, *seed)
	case "dataset":
		d, ok := workload.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q (use -list)", *name))
		}
		g = d.Generate(*maxVerts, *seed)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if *plant > 0 && *kind != "dataset" {
		g, _, _ = workload.Plant(g, *plant, *seed+1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := bigraph.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mbbgen: %d x %d, %d edges (density %.4g)\n",
		g.NL(), g.NR(), g.NumEdges(), g.Density())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbgen:", err)
	os.Exit(1)
}
