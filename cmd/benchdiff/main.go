// Command benchdiff compares two `go test -bench` outputs and prints the
// per-benchmark deltas — the A/B half of the bench-compare loop
// (scripts/bench_compare.sh runs the same pinned subset on two code
// versions and feeds both logs here). It is a dependency-free stand-in
// for benchstat: no statistics beyond best-of-N, but deterministic,
// parseable output and a threshold gate.
//
// Usage:
//
//	benchdiff [-threshold 1.25] [-metric ns|allocs|bytes] old.txt new.txt
//
// Each input is the raw stdout of `go test -bench ... [-count N]`; with
// -count > 1 the best (minimum) value per benchmark is compared, which
// damps scheduler noise without any distribution math. Benchmarks present
// in only one file are listed but never gate. Exit status 1 when any
// benchmark's new/old ratio on the chosen metric exceeds -threshold
// (ratios below 1 are improvements and never fail).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics holds one benchmark line's measurements, keyed by unit.
type metrics struct {
	nsPerOp     float64
	allocsPerOp float64
	bytesPerOp  float64
	haveAllocs  bool
}

// parseBench reads `go test -bench` output, keeping the minimum value per
// benchmark name across repeated -count runs.
func parseBench(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  N  1234 ns/op [ 56 B/op  7 allocs/op ]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so -cpu variations still match.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m, seen := out[name]
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if !seen || v < m.nsPerOp {
					m.nsPerOp = v
				}
			case "B/op":
				if !m.haveAllocs || v < m.bytesPerOp {
					m.bytesPerOp = v
				}
			case "allocs/op":
				if !m.haveAllocs || v < m.allocsPerOp {
					m.allocsPerOp = v
				}
				m.haveAllocs = true
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func pick(m metrics, metric string) (float64, bool) {
	switch metric {
	case "allocs":
		return m.allocsPerOp, m.haveAllocs
	case "bytes":
		return m.bytesPerOp, m.haveAllocs
	default:
		return m.nsPerOp, true
	}
}

func main() {
	threshold := flag.Float64("threshold", 0, "fail (exit 1) when new/old exceeds this ratio on -metric (0 = report only)")
	metric := flag.String("metric", "ns", "gating metric: ns, allocs or bytes")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold R] [-metric ns|allocs|bytes] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseBench(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := parseBench(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	failed := 0
	for _, name := range names {
		nm := cur[name]
		om, ok := old[name]
		nv, _ := pick(nm, *metric)
		if !ok {
			fmt.Printf("%-60s %14s %14.0f %8s\n", name, "-", nv, "new")
			continue
		}
		ov, have := pick(om, *metric)
		if !have || ov == 0 {
			fmt.Printf("%-60s %14s %14.0f %8s\n", name, "?", nv, "n/a")
			continue
		}
		ratio := nv / ov
		mark := ""
		if *threshold > 0 && ratio > *threshold {
			mark = "  FAIL"
			failed++
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", name, ov, nv, (ratio-1)*100, mark)
	}
	for name := range old {
		if _, ok := cur[name]; !ok {
			fmt.Printf("%-60s %14s %14s %8s\n", name, "-", "-", "gone")
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.2fx on %s/op\n", failed, *threshold, *metric)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
