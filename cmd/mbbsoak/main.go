// Command mbbsoak hammers an mbbserved daemon with a mixed
// upload/mutate/solve/cancel/status workload for a configurable
// duration and then asserts that nothing leaked: every job reaches a
// terminal state, historical graph snapshots become collectible, and —
// in in-process mode — the goroutine count returns to its baseline.
//
// Usage:
//
//	mbbsoak [-duration 60s] [-clients 8] [-graphs 6] [-seed 1] [-url http://host:port]
//	        [-restart [-data-dir dir]]
//
// With no -url it starts an in-process daemon on an ephemeral port,
// runs the workload over real TCP (so client disconnects exercise the
// real cancellation path), drains it exactly like SIGTERM would —
// asserting that a submit during the drain gets 503 + Retry-After —
// and finally checks the three leak gauges. With -url it targets a
// remote daemon and limits the leak assertions to what /stats and
// /metrics expose (no goroutine baseline across a process boundary).
//
// -restart makes the in-process daemon durable (write-ahead log under
// -data-dir, interval sync, aggressive checkpointing) and adds a final
// phase: a second server recovers the log and must reconstruct exactly
// the drained state, with the snapshot-leak gauge settling at the
// recovered retention windows.
//
// -cluster N runs the workload against an in-process N-worker cluster
// behind a coordinator: every worker is durable, tails its peers'
// /replicate streams, and the workload flows through the coordinator's
// routing (so misdirected requests would surface as failures). The
// admission statuses the cluster legitimately produces (429 at
// saturation, 503 during bring-up) are tolerated and counted; the final
// phase asserts every graph converged to its shard owner's exact epoch
// on every worker before the leak gauges run.
//
// Exit status 0 means the workload ran clean and nothing leaked; any
// unexpected response or leaked resource prints a diagnosis and exits 1.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/mbb"
)

type counters struct {
	uploads, solves, submits, cancels, mutates,
	reads, deletes, disconnects, retried atomic.Int64
}

// failures collects the first few unexpected outcomes verbatim; any
// entry fails the soak.
type failures struct {
	mu    sync.Mutex
	n     int
	msgs  []string
	limit int
}

func (f *failures) addf(format string, args ...any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	if len(f.msgs) < f.limit {
		f.msgs = append(f.msgs, fmt.Sprintf(format, args...))
	}
}

func main() { os.Exit(run()) }

func run() int {
	duration := flag.Duration("duration", 60*time.Second, "how long to run the mixed workload")
	clients := flag.Int("clients", 8, "concurrent workload clients")
	graphs := flag.Int("graphs", 6, "distinct graph names in play")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	url := flag.String("url", "", "target daemon base URL (empty = in-process)")
	workers := flag.Int("workers", 0, "in-process daemon worker pool (0 = GOMAXPROCS)")
	restart := flag.Bool("restart", false, "in-process only: run durable (WAL on -data-dir), reopen after the drain and assert recovery equality + zero snapshot leaks")
	dataDir := flag.String("data-dir", "", "WAL directory for -restart (default: a fresh temp dir)")
	clusterN := flag.Int("cluster", 0, "run against an in-process N-worker cluster behind a coordinator (N >= 2)")
	flag.Parse()

	if *clusterN != 0 {
		if *clusterN < 2 || *url != "" || *restart {
			fmt.Fprintln(os.Stderr, "mbbsoak: -cluster needs N >= 2 and neither -url nor -restart")
			return 1
		}
		return runCluster(*clusterN, *duration, *clients, *graphs, *seed, *workers)
	}

	if *restart && *url != "" {
		fmt.Fprintln(os.Stderr, "mbbsoak: -restart needs the in-process daemon (drop -url)")
		return 1
	}
	if *restart && *dataDir == "" {
		d, err := os.MkdirTemp("", "mbbsoak-wal-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		defer os.RemoveAll(d)
		*dataDir = d
	}

	baseGoroutines := runtime.NumGoroutine()

	var (
		srv  *server.Server
		hs   *http.Server
		base string
	)
	if *url == "" {
		opt := server.Options{
			Workers:        *workers,
			QueueCap:       64,
			DefaultTimeout: 5 * time.Second,
			MaxTimeout:     10 * time.Second,
			CancelWait:     5 * time.Second,
			AccessLog:      nil, // counted, not written — the soak measures, it does not archive
		}
		if *restart {
			// Durable mode: interval sync keeps upload-heavy soak traffic
			// off the fsync critical path; a small checkpoint threshold
			// makes background compaction actually fire during the run.
			opt.DataDir = *dataDir
			opt.WALSync = "interval"
			opt.CheckpointEvery = 256
			opt.RetainEpochs = 4
		}
		var err error
		srv, err = server.New(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		hs = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go hs.Serve(ln)
		base = "http://" + ln.Addr().String()
		fmt.Printf("mbbsoak: in-process daemon on %s\n", base)
	} else {
		base = strings.TrimRight(*url, "/")
		fmt.Printf("mbbsoak: targeting %s\n", base)
	}

	tr := &http.Transport{MaxIdleConns: *clients * 2, MaxIdleConnsPerHost: *clients * 2}
	httpc := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	ctr := &counters{}
	fails := &failures{limit: 20}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &soakClient{
				id: id, base: base, httpc: httpc,
				rng:    rand.New(rand.NewSource(*seed + int64(id))),
				graphs: *graphs, ctr: ctr, fails: fails,
			}
			c.loop(ctx)
		}(i)
	}
	wg.Wait()

	ops := ctr.uploads.Load() + ctr.solves.Load() + ctr.submits.Load() + ctr.cancels.Load() +
		ctr.mutates.Load() + ctr.reads.Load() + ctr.deletes.Load() + ctr.disconnects.Load()
	fmt.Printf("mbbsoak: %v elapsed, %d ops (uploads %d, solves %d, submits %d, cancels %d, mutates %d, reads %d, deletes %d, disconnects %d, 503-retries %d)\n",
		*duration, ops, ctr.uploads.Load(), ctr.solves.Load(), ctr.submits.Load(), ctr.cancels.Load(),
		ctr.mutates.Load(), ctr.reads.Load(), ctr.deletes.Load(), ctr.disconnects.Load(), ctr.retried.Load())

	// Phase 2: quiesce — every job must reach a terminal state.
	if !waitJobsIdle(httpc, base, srv, 30*time.Second) {
		fails.addf("jobs still live 30s after the workload stopped")
	}

	// /metrics must serve and expose the request counters.
	if body, status := get(httpc, base+"/metrics"); status != http.StatusOK {
		fails.addf("/metrics returned %d", status)
	} else if !strings.Contains(body, "mbbserved_requests_total") || !strings.Contains(body, "mbbserved_jobs_submitted_total") {
		fails.addf("/metrics is missing expected series")
	}

	if srv != nil {
		// Phase 3: drain exactly like SIGTERM, asserting its contract.
		// The probe graph must exist — the handler 404s unknown names
		// before the scheduler can say ErrDraining.
		var pbuf bytes.Buffer
		mbb.WriteGraph(&pbuf, mbb.GenerateDense(4, 4, 1.0, 1))
		req, _ := http.NewRequest(http.MethodPut, base+"/graphs/drainprobe", &pbuf)
		if resp, err := httpc.Do(req); err != nil {
			fails.addf("upload drain probe: %v", err)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				fails.addf("upload drain probe: status %d", resp.StatusCode)
			}
		}
		srv.BeginDrain()
		resp, err := httpc.Post(base+"/graphs/drainprobe/jobs", "application/json", strings.NewReader("{}"))
		if err != nil {
			fails.addf("submit during drain: %v", err)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				fails.addf("submit during drain returned %d, want 503", resp.StatusCode)
			} else if resp.Header.Get("Retry-After") == "" {
				fails.addf("drain 503 lacks Retry-After")
			}
		}
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 15*time.Second)
		if err := srv.WaitIdle(drainCtx); err != nil {
			fails.addf("drain did not go idle: %v", err)
		}
		cancelDrain()
		shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hs.Shutdown(shutCtx); err != nil {
			fails.addf("http shutdown: %v", err)
		}
		cancelShut()
		srv.Close()
		tr.CloseIdleConnections()

		// Phase 4: leak gauges. Snapshots: after the drain every job
		// released its pin, so GC must get the count back to one live
		// snapshot per stored graph. Goroutines: back to the pre-daemon
		// baseline.
		stored := int64(srv.Store().Len())
		if !eventually(10*time.Second, func() bool {
			runtime.GC()
			return server.LiveSnapshots() <= stored
		}) {
			fails.addf("snapshot leak: %d live, want <= %d (one per stored graph)", server.LiveSnapshots(), stored)
		}
		if !eventually(10*time.Second, func() bool {
			runtime.GC()
			return runtime.NumGoroutine() <= baseGoroutines
		}) {
			fails.addf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseGoroutines)
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
		}
		if n := srv.Metrics().Panics(); n > 0 {
			fails.addf("%d handler panics during the soak", n)
		}

		// Phase 5 (-restart): reopen the WAL directory in a fresh server
		// and assert recovery lands on exactly the drained state. The
		// listing is the first daemon's last use, so the GC can reclaim
		// its entire snapshot history during the phase.
		if *restart {
			soakRestart(srv.Store().List(), *dataDir, *workers, fails)
		}
	}

	fails.mu.Lock()
	defer fails.mu.Unlock()
	if fails.n > 0 {
		fmt.Fprintf(os.Stderr, "mbbsoak: FAIL: %d unexpected outcomes\n", fails.n)
		for _, m := range fails.msgs {
			fmt.Fprintln(os.Stderr, "mbbsoak:   ", m)
		}
		return 1
	}
	fmt.Println("mbbsoak: OK — zero leaked goroutines, jobs and snapshots")
	return 0
}

// soakRestart is the -restart phase: a second server recovers the WAL
// directory the drained daemon wrote, and must reconstruct exactly the
// graphs it was serving — same names, epochs and sizes. Afterwards the
// snapshot-leak gauge must settle at the recovered retention windows:
// the first daemon's whole snapshot history has to be collectible.
func soakRestart(want []server.GraphInfo, dataDir string, workers int, fails *failures) {
	type gkey struct {
		Name          string
		Epoch         uint64
		NL, NR, Edges int
	}
	wantSet := make(map[gkey]bool, len(want))
	for _, gi := range want {
		wantSet[gkey{gi.Name, gi.Epoch, gi.NL, gi.NR, gi.Edges}] = true
	}
	srv, err := server.New(server.Options{
		Workers: workers, DataDir: dataDir, WALSync: "interval", RetainEpochs: 4,
	})
	if err != nil {
		fails.addf("reopen %s: %v", dataDir, err)
		return
	}
	defer srv.Close()
	rs := srv.RecoveredStats()
	fmt.Printf("mbbsoak: restart recovered %d graphs (%d records: %d puts, %d snaps, %d deltas; %d segments)\n",
		rs.Graphs, rs.Records, rs.Puts, rs.Snaps, rs.Deltas, rs.Segments)
	got := make(map[gkey]bool)
	for _, gi := range srv.Store().List() {
		got[gkey{gi.Name, gi.Epoch, gi.NL, gi.NR, gi.Edges}] = true
	}
	for k := range wantSet {
		if !got[k] {
			fails.addf("restart lost graph %+v", k)
		}
	}
	for k := range got {
		if !wantSet[k] {
			fails.addf("restart invented graph %+v", k)
		}
	}
	if !eventually(10*time.Second, func() bool {
		runtime.GC()
		return server.LiveSnapshots() <= srv.Store().RetainedSnapshots()
	}) {
		fails.addf("snapshot leak across restart: %d live, want <= %d retained",
			server.LiveSnapshots(), srv.Store().RetainedSnapshots())
	}
}

// runCluster is the -cluster pass: N durable workers on one hash ring
// behind a coordinator, the whole workload routed through the
// coordinator, then convergence and leak assertions.
func runCluster(n int, duration time.Duration, clients, graphs int, seed int64, workers int) int {
	baseGoroutines := runtime.NumGoroutine()
	fails := &failures{limit: 20}

	type node struct {
		srv *server.Server
		hs  *http.Server
		tm  *cluster.TailManager
		url string
	}
	nodes := make([]*node, n)
	var peers []string
	lns := make([]net.Listener, n)
	for i := range nodes {
		dir, err := os.MkdirTemp("", "mbbsoak-cluster-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		srv, err := server.New(server.Options{
			Workers: workers, QueueCap: 64,
			DefaultTimeout: 5 * time.Second, MaxTimeout: 10 * time.Second,
			CancelWait: 5 * time.Second,
			DataDir:    dir, WALSync: "interval", CheckpointEvery: 256, RetainEpochs: 4,
			MaxReplicaLag: -1, // no kills in this pass; never lag-gate the workload
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		lns[i] = ln
		nodes[i] = &node{srv: srv, url: "http://" + ln.Addr().String()}
		peers = append(peers, nodes[i].url)
	}
	for i, nd := range nodes {
		tm, err := cluster.NewTailManager(nd.srv.Store(), cluster.Config{Self: nd.url, Peers: peers, Replication: n})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mbbsoak:", err)
			return 1
		}
		nd.tm = tm
		nd.srv.SetCluster(tm)
		nd.hs = &http.Server{Handler: nd.srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go nd.hs.Serve(lns[i])
		tm.Start()
	}

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Peers: peers, Replication: n, ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbbsoak:", err)
		return 1
	}
	coord.Start()
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mbbsoak:", err)
		return 1
	}
	chs := &http.Server{Handler: server.Chain(coord.Handler(), server.RequestID), ReadHeaderTimeout: 10 * time.Second}
	go chs.Serve(cln)
	base := "http://" + cln.Addr().String()
	fmt.Printf("mbbsoak: %d-worker cluster behind coordinator %s\n", n, base)

	tr := &http.Transport{MaxIdleConns: clients * 2, MaxIdleConnsPerHost: clients * 2}
	httpc := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	if !eventually(10*time.Second, func() bool {
		body, status := get(httpc, base+"/readyz")
		return status == http.StatusOK && strings.Contains(body, fmt.Sprintf(`"workers_ready":%d`, n))
	}) {
		fails.addf("cluster never reached %d ready workers", n)
	}

	ctr := &counters{}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &soakClient{
				id: id, base: base, httpc: httpc,
				rng:    rand.New(rand.NewSource(seed + int64(id))),
				graphs: graphs, ctr: ctr, fails: fails,
				extra: []int{http.StatusTooManyRequests, http.StatusServiceUnavailable},
			}
			c.loop(ctx)
		}(i)
	}
	wg.Wait()

	ops := ctr.uploads.Load() + ctr.solves.Load() + ctr.submits.Load() + ctr.cancels.Load() +
		ctr.mutates.Load() + ctr.reads.Load() + ctr.deletes.Load() + ctr.disconnects.Load()
	fmt.Printf("mbbsoak: %v elapsed, %d ops via coordinator (uploads %d, solves %d, submits %d, cancels %d, mutates %d, reads %d, deletes %d, disconnects %d, backoffs %d)\n",
		duration, ops, ctr.uploads.Load(), ctr.solves.Load(), ctr.submits.Load(), ctr.cancels.Load(),
		ctr.mutates.Load(), ctr.reads.Load(), ctr.deletes.Load(), ctr.disconnects.Load(), ctr.retried.Load())

	// Quiesce every worker's scheduler.
	for _, nd := range nodes {
		nd := nd
		if !eventually(30*time.Second, func() bool { return nd.srv.Scheduler().Live() == 0 }) {
			fails.addf("worker %s still has live jobs 30s after the workload stopped", nd.url)
		}
	}

	// The coordinator's own metrics must serve.
	if body, status := get(httpc, base+"/metrics"); status != http.StatusOK {
		fails.addf("coordinator /metrics returned %d", status)
	} else if !strings.Contains(body, "mbbcoord_forwards_total") || !strings.Contains(body, "mbbcoord_workers_ready") {
		fails.addf("coordinator /metrics is missing mbbcoord series")
	}

	// Convergence: every worker must reach its shard owner's exact state
	// (same epoch and shape, or the same absence) for every graph name.
	graphKey := func(url, name string) string {
		body, status := get(httpc, url+"/graphs/"+name)
		if status == http.StatusNotFound {
			return "absent"
		}
		if status != http.StatusOK {
			return fmt.Sprintf("status-%d", status)
		}
		var gi server.GraphInfo
		if err := json.Unmarshal([]byte(body), &gi); err != nil {
			return "undecodable"
		}
		return fmt.Sprintf("epoch=%d nl=%d nr=%d edges=%d", gi.Epoch, gi.NL, gi.NR, gi.Edges)
	}
	ring := nodes[0].tm.Ring()
	for g := 0; g < graphs; g++ {
		name := fmt.Sprintf("soak%d", g)
		owner := ring.Owner(name)
		if !eventually(20*time.Second, func() bool {
			want := graphKey(owner, name)
			for _, nd := range nodes {
				if graphKey(nd.url, name) != want {
					return false
				}
			}
			return true
		}) {
			detail := ""
			for _, nd := range nodes {
				detail += fmt.Sprintf(" %s:[%s]", nd.url, graphKey(nd.url, name))
			}
			fails.addf("graph %s never converged to owner %s's state:%s", name, owner, detail)
		}
	}

	// Shutdown: stop tailing first (so /replicate handlers unblock), then
	// the coordinator, then the workers.
	for _, nd := range nodes {
		nd.tm.Close()
	}
	coord.Close()
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 10*time.Second)
	if err := chs.Shutdown(shutCtx); err != nil {
		fails.addf("coordinator shutdown: %v", err)
	}
	for _, nd := range nodes {
		if err := nd.hs.Shutdown(shutCtx); err != nil {
			fails.addf("worker shutdown: %v", err)
		}
		nd.srv.Close()
	}
	cancelShut()
	tr.CloseIdleConnections()

	// Leak gauges across the whole fleet.
	var retained int64
	for _, nd := range nodes {
		retained += nd.srv.Store().RetainedSnapshots()
		if p := nd.srv.Metrics().Panics(); p > 0 {
			fails.addf("%d handler panics on worker %s", p, nd.url)
		}
	}
	if !eventually(10*time.Second, func() bool {
		runtime.GC()
		return server.LiveSnapshots() <= retained
	}) {
		fails.addf("snapshot leak: %d live, want <= %d retained across %d workers", server.LiveSnapshots(), retained, n)
	}
	if !eventually(10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines
	}) {
		fails.addf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseGoroutines)
		pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
	}

	fails.mu.Lock()
	defer fails.mu.Unlock()
	if fails.n > 0 {
		fmt.Fprintf(os.Stderr, "mbbsoak: FAIL: %d unexpected outcomes\n", fails.n)
		for _, m := range fails.msgs {
			fmt.Fprintln(os.Stderr, "mbbsoak:   ", m)
		}
		return 1
	}
	fmt.Printf("mbbsoak: OK — %d workers converged, zero leaked goroutines, jobs and snapshots\n", n)
	return 0
}

// eventually polls cond (with backoff) until it holds or the deadline
// passes.
func eventually(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for wait := 10 * time.Millisecond; ; wait *= 2 {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		if wait > 500*time.Millisecond {
			wait = 500 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// waitJobsIdle waits until no job is queued or running — directly off
// the scheduler in-process, via /stats against a remote daemon.
func waitJobsIdle(httpc *http.Client, base string, srv *server.Server, d time.Duration) bool {
	return eventually(d, func() bool {
		if srv != nil {
			return srv.Scheduler().Live() == 0
		}
		body, status := get(httpc, base+"/stats")
		if status != http.StatusOK {
			return false
		}
		return strings.Contains(body, `"queued":0`) && strings.Contains(body, `"running":0`)
	})
}

func get(httpc *http.Client, url string) (string, int) {
	resp, err := httpc.Get(url)
	if err != nil {
		return err.Error(), 0
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode
}

// soakClient is one workload generator: a weighted mix of every API
// verb, tolerant of the statuses concurrency legitimately produces
// (404 after a concurrent delete, 503 at the admission bound, 400 for
// out-of-range edges after a concurrent re-upload) and intolerant of
// everything else.
type soakClient struct {
	id     int
	base   string
	httpc  *http.Client
	rng    *rand.Rand
	graphs int
	ctr    *counters
	fails  *failures
	nreq   int
	// extra statuses tolerated on every op — cluster mode adds the
	// coordinator's admission answers (429 saturation, 503 bring-up).
	extra []int
}

func (c *soakClient) graphName() string {
	return fmt.Sprintf("soak%d", c.rng.Intn(c.graphs))
}

func (c *soakClient) reqID() string {
	c.nreq++
	return fmt.Sprintf("soak-c%d-%d", c.id, c.nreq)
}

func (c *soakClient) loop(ctx context.Context) {
	// Seed one graph so the first solves have something to chew on.
	c.upload(ctx)
	for ctx.Err() == nil {
		switch p := c.rng.Intn(100); {
		case p < 8:
			c.upload(ctx)
		case p < 38:
			c.solveSync(ctx)
		case p < 58:
			c.mutate(ctx)
		case p < 74:
			c.submitPollCancel(ctx)
		case p < 82:
			c.disconnectSolve(ctx)
		case p < 95:
			c.read(ctx)
		default:
			c.deleteGraph(ctx)
		}
	}
}

// do runs one request with a soak request id and returns status + body;
// status 0 means the request itself failed (only tolerated when the
// context canceled it).
func (c *soakClient) do(ctx context.Context, method, path, body string) (int, string) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, strings.NewReader(body))
	if err != nil {
		c.fails.addf("build %s %s: %v", method, path, err)
		return 0, ""
	}
	req.Header.Set("X-Request-Id", c.reqID())
	resp, err := c.httpc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.fails.addf("%s %s: %v", method, path, err)
		}
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (c *soakClient) expect(status int, body, op string, want ...int) {
	if status == 0 {
		return // transport error already recorded (or context over)
	}
	for _, w := range append(want, c.extra...) {
		if status == w {
			if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
				c.ctr.retried.Add(1)
			}
			return
		}
	}
	c.fails.addf("%s: unexpected status %d: %.200s", op, status, body)
}

func (c *soakClient) upload(ctx context.Context) {
	var g *mbb.Graph
	if c.rng.Intn(2) == 0 {
		n := 20 + c.rng.Intn(100)
		g = mbb.GeneratePowerLaw(n, n, 3*n, c.rng.Int63())
	} else {
		n := 8 + c.rng.Intn(12)
		g = mbb.GenerateDense(n, n, 0.5+0.4*c.rng.Float64(), c.rng.Int63())
	}
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		c.fails.addf("generate graph: %v", err)
		return
	}
	status, body := c.do(ctx, http.MethodPut, "/graphs/"+c.graphName(), buf.String())
	c.expect(status, body, "upload", http.StatusCreated)
	c.ctr.uploads.Add(1)
}

func (c *soakClient) solveSync(ctx context.Context) {
	body := fmt.Sprintf(`{"timeout":"%dms"}`, 200+c.rng.Intn(1800))
	status, out := c.do(ctx, http.MethodPost, "/graphs/"+c.graphName()+"/solve", body)
	c.expect(status, out, "solve", http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable)
	c.ctr.solves.Add(1)
}

func (c *soakClient) mutate(ctx context.Context) {
	// In-range for the generator's smallest graphs; larger indices 400
	// cleanly when a smaller graph took the name — both are fine.
	edge := func() string { return fmt.Sprintf("[%d,%d]", c.rng.Intn(20), c.rng.Intn(20)) }
	var body string
	if c.rng.Intn(3) == 0 {
		body = fmt.Sprintf(`{"del":[%s,%s]}`, edge(), edge())
	} else {
		body = fmt.Sprintf(`{"add":[%s],"del":[%s]}`, edge(), edge())
	}
	status, out := c.do(ctx, http.MethodPost, "/graphs/"+c.graphName()+"/edges", body)
	c.expect(status, out, "mutate", http.StatusOK, http.StatusBadRequest, http.StatusNotFound)
	c.ctr.mutates.Add(1)
}

func (c *soakClient) submitPollCancel(ctx context.Context) {
	status, out := c.do(ctx, http.MethodPost, "/graphs/"+c.graphName()+"/jobs",
		fmt.Sprintf(`{"timeout":"%dms"}`, 500+c.rng.Intn(2500)))
	c.ctr.submits.Add(1)
	c.expect(status, out, "submit", http.StatusAccepted, http.StatusNotFound, http.StatusServiceUnavailable)
	if status != http.StatusAccepted {
		return
	}
	id := extractID(out)
	if id == "" {
		c.fails.addf("submit: no job id in %.200s", out)
		return
	}
	if c.rng.Intn(10) < 3 {
		st, body := c.do(ctx, http.MethodDelete, "/jobs/"+id, "")
		c.expect(st, body, "cancel", http.StatusOK, http.StatusNotFound)
		c.ctr.cancels.Add(1)
	}
	st, body := c.do(ctx, http.MethodGet, "/jobs/"+id+"?wait=1", "")
	c.expect(st, body, "job status", http.StatusOK, http.StatusNotFound)
}

// disconnectSolve starts a synchronous solve and walks away mid-flight:
// the server must cancel the job and the handler must not linger.
func (c *soakClient) disconnectSolve(ctx context.Context) {
	short, cancel := context.WithTimeout(ctx, time.Duration(20+c.rng.Intn(200))*time.Millisecond)
	defer cancel()
	status, out := c.do(short, http.MethodPost, "/graphs/"+c.graphName()+"/solve", `{"timeout":"5s"}`)
	// Usually the client context expires first (status 0); a fast solve
	// returning 200/404/503 before the deadline is fine too.
	c.expect(status, out, "disconnect solve", http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable)
	c.ctr.disconnects.Add(1)
}

func (c *soakClient) read(ctx context.Context) {
	paths := [...]string{"/stats", "/graphs", "/jobs", "/metrics", "/healthz", "/graphs/" + c.graphName()}
	path := paths[c.rng.Intn(len(paths))]
	status, out := c.do(ctx, http.MethodGet, path, "")
	c.expect(status, out, "read "+path, http.StatusOK, http.StatusNotFound)
	c.ctr.reads.Add(1)
}

func (c *soakClient) deleteGraph(ctx context.Context) {
	status, out := c.do(ctx, http.MethodDelete, "/graphs/"+c.graphName(), "")
	c.expect(status, out, "delete graph", http.StatusOK, http.StatusNotFound)
	c.ctr.deletes.Add(1)
}

// extractID pulls `"id":"..."` out of a JobInfo response without a full
// decode (the soak treats the daemon as a black box over the wire).
func extractID(body string) string {
	const key = `"id":"`
	i := strings.Index(body, key)
	if i < 0 {
		return ""
	}
	rest := body[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
