// Command mbbserved is the long-running solve service: it keeps parsed
// graphs and their reduce-and-conquer plans in a named store and runs
// solve jobs on a bounded worker pool, so heavy query traffic amortizes
// parsing and reduction instead of redoing them per request.
//
// Usage:
//
//	mbbserved [-addr :8080] [-workers N] [-queue 256] [-store dir]
//	          [-data-dir dir] [-wal-sync always|interval|off]
//	          [-wal-sync-interval 100ms] [-wal-segment-bytes N]
//	          [-checkpoint-every 4096] [-retain-epochs 8]
//	          [-warm-recovery] [-maxupload 67108864] [-maxverts 10000000]
//	          [-default-timeout 30s] [-max-timeout 10m]
//	          [-drain-timeout 30s] [-request-timeout 0] [-pprof]
//	          [-access-log stderr|none|PATH]
//	          [-cluster-peers URL,URL,...] [-cluster-self URL]
//	          [-replication 2] [-max-replica-lag 5s] [-ring-vnodes 64]
//	mbbserved -coordinator -cluster-peers URL,URL,... [-addr :8080]
//	          [-replication 2] [-ring-vnodes 64] [-probe-interval 1s]
//
// With -data-dir the store is durable: every upload, mutation and
// delete is appended to a write-ahead log under that directory before
// it becomes visible, and a restart replays the log — checkpoints plus
// deltas — back to exactly the last durable epoch before the listener
// opens. -wal-sync picks the fsync policy (always = group commit per
// write, interval = background flush every -wal-sync-interval, off =
// the OS decides), -checkpoint-every bounds log growth by snapshotting
// and compacting in the background, and -retain-epochs keeps that many
// trailing snapshots per graph solvable and exportable via ?epoch=E.
//
// -addr may end in ":0" to bind an ephemeral port; the actual listening
// address is logged ("mbbserved: listening on ..."), which is how the
// e2e smoke script discovers it without racing other daemons for a
// hard-coded port.
//
// Every request gets an X-Request-Id (inbound ids are honored), panics
// become 500s, access lines flow through a non-blocking ring buffer,
// GET /metrics serves Prometheus text, and -pprof mounts /debug/pprof.
//
// Cluster mode shards graphs across workers by consistent hashing on
// the graph name. Start every worker with the same -cluster-peers list
// (its own URL named via -cluster-self) and a -data-dir, and one
// -coordinator process with the same peer list fronting them: the
// coordinator routes mutations to each graph's shard owner, fans solves
// across the ready replicas that tail the owner's /replicate delta
// stream, and converts per-shard queue depth and replication lag into
// 429/503 + Retry-After admission decisions. Workers refuse misdirected
// mutations (421 naming the owner) and lag-bounded replica solves (503
// once -max-replica-lag is exceeded), and /readyz distinguishes a live
// process (/healthz) from one that should receive traffic. DESIGN.md
// §11 has the architecture and failure matrix; docs/operations.md has
// the bring-up runbook.
//
// On SIGTERM/SIGINT the daemon drains: new solve submissions get 503 +
// Retry-After while queued and running jobs finish (up to
// -drain-timeout, then they are canceled), read endpoints stay live
// throughout, and only then does the listener close. A listener error
// takes the same shutdown path, so workers and in-flight jobs are
// always stopped — never leaked behind an early exit.
//
// Quick start:
//
//	mbbserved -addr :8080 &
//	printf '3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n' |
//	    curl -sT- 'http://localhost:8080/graphs/k33'
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/solve' -d '{"timeout":"5s"}'
//	# mutate: add/remove edge batches; each bump publishes a new epoch
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/edges' -d '{"del":[[2,2]]}'
//
// See DESIGN.md §6–7 for the API and snapshot/epoch model, §9 for the
// middleware stack, metrics inventory and drain sequence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solve worker pool size = concurrent-solve cap (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	storeDir := flag.String("store", "", "directory of graphs to preload (*.konect/out.* as KONECT, else edge-list)")
	dataDir := flag.String("data-dir", "", "write-ahead-log directory; empty = no durability")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (group commit), interval, or off")
	walSyncInterval := flag.Duration("wal-sync-interval", 100*time.Millisecond, "flush period under -wal-sync=interval")
	walSegBytes := flag.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold in bytes")
	ckptEvery := flag.Int("checkpoint-every", 4096, "background checkpoint+compaction after this many WAL appends (-1 = never)")
	retainEpochs := flag.Int("retain-epochs", 8, "per-graph trailing snapshot epochs kept solvable via ?epoch=E")
	warmRecovery := flag.Bool("warm-recovery", true, "build plans eagerly during WAL replay so recovery lands warm")
	maxUpload := flag.Int64("maxupload", 64<<20, "max graph upload size in bytes")
	maxVerts := flag.Int("maxverts", 10_000_000, "max vertices per uploaded graph (-1 = unlimited)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-job timeout when the request sets none (-1ns = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "hard cap on any per-job timeout (-1ns = no cap)")
	maxJobWorkers := flag.Int("max-job-workers", 0, "clamp on a job's requested goroutine budget (0 = 4xGOMAXPROCS, -1 = no cap)")
	reqTimeout := flag.Duration("request-timeout", 0, "blanket per-request context timeout (0 = none; must exceed pprof profile durations)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	cancelWait := flag.Duration("cancel-wait", 30*time.Second, "bound on waiting for a canceled job after a sync client disconnect (-1ns = unbounded)")
	accessLog := flag.String("access-log", "stderr", "access-log sink: stderr, none, or a file path (appended)")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	coordinator := flag.Bool("coordinator", false, "run the cluster routing front-end instead of a worker")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated worker URLs forming the hash ring (enables cluster mode)")
	clusterSelf := flag.String("cluster-self", "", "this worker's URL as it appears in -cluster-peers")
	replication := flag.Int("replication", 2, "workers holding each graph, shard owner included")
	maxReplicaLag := flag.Duration("max-replica-lag", 5*time.Second, "replica staleness bound before solves 503 (-1ns = unbounded)")
	ringVnodes := flag.Int("ring-vnodes", 0, "virtual nodes per worker on the hash ring (0 = 64; must match cluster-wide)")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator /readyz poll period")
	flag.Parse()

	if *coordinator {
		return runCoordinator(*addr, *clusterPeers, *ringVnodes, *replication, *probeInterval)
	}

	logW, logClose, err := accessLogWriter(*accessLog)
	if err != nil {
		log.Printf("mbbserved: %v", err)
		return 1
	}
	if logClose != nil {
		defer logClose()
	}

	srv, err := server.New(server.Options{
		Workers:         *workers,
		QueueCap:        *queue,
		MaxUploadBytes:  *maxUpload,
		MaxVertices:     *maxVerts,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxJobWorkers:   *maxJobWorkers,
		StoreDir:        *storeDir,
		DataDir:         *dataDir,
		WALSync:         *walSync,
		WALSyncInterval: *walSyncInterval,
		WALSegmentBytes: *walSegBytes,
		CheckpointEvery: *ckptEvery,
		RetainEpochs:    *retainEpochs,
		WarmRecovery:    *warmRecovery,
		RequestTimeout:  *reqTimeout,
		MaxReplicaLag:   *maxReplicaLag,
		CancelWait:      *cancelWait,
		AccessLog:       logW,
		EnablePprof:     *enablePprof,
	})
	if err != nil {
		log.Printf("mbbserved: %v", err)
		return 1
	}
	if *dataDir != "" {
		rs := srv.RecoveredStats()
		log.Printf("mbbserved: recovered %d graphs from %s (%d segments, %d records: %d puts, %d snaps, %d deltas; %d plans warmed, %d carried; %d bytes torn tail truncated)",
			rs.Graphs, *dataDir, rs.Segments, rs.Records, rs.Puts, rs.Snaps, rs.Deltas, rs.PlanWarmed, rs.PlansCarried, rs.TruncatedBytes)
	}
	if *storeDir != "" {
		rep := srv.PreloadReport()
		log.Printf("mbbserved: preloaded %d graphs from %s (%d files skipped)", rep.Loaded, *storeDir, len(rep.Failed))
	}

	// Cluster worker mode: join the ring and tail the peers' delta
	// streams. The ClusterInfo must be installed before the listener
	// opens so the first request already sees ownership and lag gates.
	var tm *cluster.TailManager
	if *clusterPeers != "" {
		if *dataDir == "" {
			log.Printf("mbbserved: cluster workers need -data-dir (the WAL is the replication stream)")
			srv.Close()
			return 1
		}
		peers, perr := cluster.ParsePeers(*clusterPeers)
		if perr != nil {
			log.Printf("mbbserved: %v", perr)
			srv.Close()
			return 1
		}
		tm, err = cluster.NewTailManager(srv.Store(), cluster.Config{
			Self:        cluster.NormalizeURL(*clusterSelf),
			Peers:       peers,
			Vnodes:      *ringVnodes,
			Replication: *replication,
			Warm:        *warmRecovery,
		})
		if err != nil {
			log.Printf("mbbserved: %v", err)
			srv.Close()
			return 1
		}
		srv.SetCluster(tm)
		log.Printf("mbbserved: cluster worker %s on a %d-node ring (replication %d)",
			cluster.NormalizeURL(*clusterSelf), len(peers), *replication)
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before serving so ":0" resolves to a concrete port and the
	// logged address is always dialable.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("mbbserved: %v", err)
		srv.Close()
		return 1
	}
	if tm != nil {
		tm.Start()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mbbserved: listening on %s", ln.Addr())
		errCh <- hs.Serve(ln)
	}()

	// Both exits — a Serve failure and a shutdown signal — funnel into
	// the same drain sequence below, so scheduler workers and in-flight
	// jobs are stopped on every path.
	exit := 0
	select {
	case err := <-errCh:
		log.Printf("mbbserved: serve: %v", err)
		exit = 1
	case <-ctx.Done():
		stop() // a second signal kills us the blunt way
		log.Printf("mbbserved: signal received, draining (timeout %v)", *drainTimeout)
	}

	// Drain: stop admitting (503 + Retry-After), let in-flight jobs
	// finish while the listener still serves reads and job polls, then
	// close the listener and cancel whatever outlasted the deadline.
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.WaitIdle(drainCtx); err != nil {
		log.Printf("mbbserved: drain deadline: canceling %d unfinished jobs", srv.Scheduler().Live())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mbbserved: shutdown: %v", err)
	}
	if tm != nil {
		tm.Close()
	}
	srv.Close()
	log.Printf("mbbserved: drained, bye")
	return exit
}

// runCoordinator serves the cluster routing front-end: no store, no
// WAL — just readiness probes and request routing over the worker ring.
func runCoordinator(addr, peerSpec string, vnodes, replication int, probeInterval time.Duration) int {
	peers, err := cluster.ParsePeers(peerSpec)
	if err != nil {
		log.Printf("mbbserved: -coordinator needs -cluster-peers: %v", err)
		return 1
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Peers:         peers,
		Vnodes:        vnodes,
		Replication:   replication,
		ProbeInterval: probeInterval,
	})
	if err != nil {
		log.Printf("mbbserved: %v", err)
		return 1
	}
	coord.Start()
	hs := &http.Server{
		Handler:           server.Chain(coord.Handler(), server.RequestID),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("mbbserved: %v", err)
		coord.Close()
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mbbserved: coordinator listening on %s (%d workers, replication %d)", ln.Addr(), len(peers), replication)
		errCh <- hs.Serve(ln)
	}()
	exit := 0
	select {
	case err := <-errCh:
		log.Printf("mbbserved: serve: %v", err)
		exit = 1
	case <-ctx.Done():
		stop()
		log.Printf("mbbserved: signal received, shutting down coordinator")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mbbserved: shutdown: %v", err)
	}
	coord.Close()
	log.Printf("mbbserved: coordinator stopped, bye")
	return exit
}

// accessLogWriter resolves the -access-log flag.
func accessLogWriter(spec string) (io.Writer, func() error, error) {
	switch spec {
	case "stderr":
		return os.Stderr, nil, nil
	case "none", "":
		return nil, nil, nil
	default:
		f, err := os.OpenFile(spec, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("access log: %w", err)
		}
		return f, f.Close, nil
	}
}
