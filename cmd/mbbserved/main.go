// Command mbbserved is the long-running solve service: it keeps parsed
// graphs and their reduce-and-conquer plans in a named store and runs
// solve jobs on a bounded worker pool, so heavy query traffic amortizes
// parsing and reduction instead of redoing them per request.
//
// Usage:
//
//	mbbserved [-addr :8080] [-workers N] [-queue 256] [-store dir]
//	          [-maxupload 67108864] [-maxverts 10000000]
//	          [-default-timeout 30s] [-max-timeout 10m]
//	          [-drain-timeout 30s] [-request-timeout 0] [-pprof]
//	          [-access-log stderr|none|PATH]
//
// -addr may end in ":0" to bind an ephemeral port; the actual listening
// address is logged ("mbbserved: listening on ..."), which is how the
// e2e smoke script discovers it without racing other daemons for a
// hard-coded port.
//
// Every request gets an X-Request-Id (inbound ids are honored), panics
// become 500s, access lines flow through a non-blocking ring buffer,
// GET /metrics serves Prometheus text, and -pprof mounts /debug/pprof.
//
// On SIGTERM/SIGINT the daemon drains: new solve submissions get 503 +
// Retry-After while queued and running jobs finish (up to
// -drain-timeout, then they are canceled), read endpoints stay live
// throughout, and only then does the listener close. A listener error
// takes the same shutdown path, so workers and in-flight jobs are
// always stopped — never leaked behind an early exit.
//
// Quick start:
//
//	mbbserved -addr :8080 &
//	printf '3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n' |
//	    curl -sT- 'http://localhost:8080/graphs/k33'
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/solve' -d '{"timeout":"5s"}'
//	# mutate: add/remove edge batches; each bump publishes a new epoch
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/edges' -d '{"del":[[2,2]]}'
//
// See DESIGN.md §6–7 for the API and snapshot/epoch model, §9 for the
// middleware stack, metrics inventory and drain sequence.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solve worker pool size = concurrent-solve cap (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	storeDir := flag.String("store", "", "directory of graphs to preload (*.konect/out.* as KONECT, else edge-list)")
	maxUpload := flag.Int64("maxupload", 64<<20, "max graph upload size in bytes")
	maxVerts := flag.Int("maxverts", 10_000_000, "max vertices per uploaded graph (-1 = unlimited)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-job timeout when the request sets none (-1ns = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "hard cap on any per-job timeout (-1ns = no cap)")
	maxJobWorkers := flag.Int("max-job-workers", 0, "clamp on a job's requested goroutine budget (0 = 4xGOMAXPROCS, -1 = no cap)")
	reqTimeout := flag.Duration("request-timeout", 0, "blanket per-request context timeout (0 = none; must exceed pprof profile durations)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	cancelWait := flag.Duration("cancel-wait", 30*time.Second, "bound on waiting for a canceled job after a sync client disconnect (-1ns = unbounded)")
	accessLog := flag.String("access-log", "stderr", "access-log sink: stderr, none, or a file path (appended)")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	flag.Parse()

	logW, logClose, err := accessLogWriter(*accessLog)
	if err != nil {
		log.Printf("mbbserved: %v", err)
		return 1
	}
	if logClose != nil {
		defer logClose()
	}

	srv, err := server.New(server.Options{
		Workers:        *workers,
		QueueCap:       *queue,
		MaxUploadBytes: *maxUpload,
		MaxVertices:    *maxVerts,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobWorkers:  *maxJobWorkers,
		StoreDir:       *storeDir,
		RequestTimeout: *reqTimeout,
		CancelWait:     *cancelWait,
		AccessLog:      logW,
		EnablePprof:    *enablePprof,
	})
	if err != nil {
		log.Printf("mbbserved: %v", err)
		return 1
	}
	if *storeDir != "" {
		log.Printf("mbbserved: preloaded %d graphs from %s", srv.Store().Len(), *storeDir)
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before serving so ":0" resolves to a concrete port and the
	// logged address is always dialable.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("mbbserved: %v", err)
		srv.Close()
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mbbserved: listening on %s", ln.Addr())
		errCh <- hs.Serve(ln)
	}()

	// Both exits — a Serve failure and a shutdown signal — funnel into
	// the same drain sequence below, so scheduler workers and in-flight
	// jobs are stopped on every path.
	exit := 0
	select {
	case err := <-errCh:
		log.Printf("mbbserved: serve: %v", err)
		exit = 1
	case <-ctx.Done():
		stop() // a second signal kills us the blunt way
		log.Printf("mbbserved: signal received, draining (timeout %v)", *drainTimeout)
	}

	// Drain: stop admitting (503 + Retry-After), let in-flight jobs
	// finish while the listener still serves reads and job polls, then
	// close the listener and cancel whatever outlasted the deadline.
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.WaitIdle(drainCtx); err != nil {
		log.Printf("mbbserved: drain deadline: canceling %d unfinished jobs", srv.Scheduler().Live())
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mbbserved: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("mbbserved: drained, bye")
	return exit
}

// accessLogWriter resolves the -access-log flag.
func accessLogWriter(spec string) (io.Writer, func() error, error) {
	switch spec {
	case "stderr":
		return os.Stderr, nil, nil
	case "none", "":
		return nil, nil, nil
	default:
		f, err := os.OpenFile(spec, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("access log: %w", err)
		}
		return f, f.Close, nil
	}
}
