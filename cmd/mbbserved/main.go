// Command mbbserved is the long-running solve service: it keeps parsed
// graphs and their reduce-and-conquer plans in a named store and runs
// solve jobs on a bounded worker pool, so heavy query traffic amortizes
// parsing and reduction instead of redoing them per request.
//
// Usage:
//
//	mbbserved [-addr :8080] [-workers N] [-queue 256] [-store dir]
//	          [-maxupload 67108864] [-maxverts 10000000]
//	          [-default-timeout 30s] [-max-timeout 10m]
//
// -addr may end in ":0" to bind an ephemeral port; the actual listening
// address is logged ("mbbserved: listening on ..."), which is how the
// e2e smoke script discovers it without racing other daemons for a
// hard-coded port.
//
// Quick start:
//
//	mbbserved -addr :8080 &
//	printf '3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n' |
//	    curl -sT- 'http://localhost:8080/graphs/k33'
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/solve' -d '{"timeout":"5s"}'
//	# mutate: add/remove edge batches; each bump publishes a new epoch
//	curl -s -XPOST 'http://localhost:8080/graphs/k33/edges' -d '{"del":[[2,2]]}'
//
// See DESIGN.md §6–7 for the API and the snapshot/epoch model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solve worker pool size = concurrent-solve cap (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth (admission bound)")
	storeDir := flag.String("store", "", "directory of graphs to preload (*.konect/out.* as KONECT, else edge-list)")
	maxUpload := flag.Int64("maxupload", 64<<20, "max graph upload size in bytes")
	maxVerts := flag.Int("maxverts", 10_000_000, "max vertices per uploaded graph (-1 = unlimited)")
	defTimeout := flag.Duration("default-timeout", 30*time.Second, "per-job timeout when the request sets none (-1ns = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "hard cap on any per-job timeout (-1ns = no cap)")
	maxJobWorkers := flag.Int("max-job-workers", 0, "clamp on a job's requested goroutine budget (0 = 4xGOMAXPROCS, -1 = no cap)")
	flag.Parse()

	srv, err := server.New(server.Options{
		Workers:        *workers,
		QueueCap:       *queue,
		MaxUploadBytes: *maxUpload,
		MaxVertices:    *maxVerts,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxJobWorkers:  *maxJobWorkers,
		StoreDir:       *storeDir,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if *storeDir != "" {
		log.Printf("mbbserved: preloaded %d graphs from %s", srv.Store().Len(), *storeDir)
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before serving so ":0" resolves to a concrete port and the
	// logged address is always dialable.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("mbbserved: listening on %s", ln.Addr())
		errCh <- hs.Serve(ln)
	}()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("mbbserved: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mbbserved: shutdown: %v", err)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbserved:", err)
	os.Exit(1)
}
