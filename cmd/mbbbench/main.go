// Command mbbbench regenerates the paper's tables and figures on the
// synthetic workloads.
//
// Usage:
//
//	mbbbench -exp table4|table5|table6|fig4|fig5|fig6|servebench|mutebench|replay|trajectory|all
//	         [-budget 20s] [-maxverts 30000] [-instances 3]
//	         [-sizes 32,64,128] [-densities 0.7,0.8,0.9,0.95]
//	         [-datasets github,jester] [-seed 1] [-workers 4]
//	         [-reduce auto|on|off] [-json] [-baseline BENCH_n.json]
//	         [-serveurl http://host:8080] [-requests 32] [-clients 4]
//
// -exp servebench replays a solve-request mix against an mbbserved
// daemon (started in-process unless -serveurl points at one) and reports
// cold-vs-warm latency: the first request pays for parsing and the
// reduce-and-conquer plan, every later one reuses the cached plan.
// -exp mutebench replays an interleaved mutate/solve stream against the
// daemon's edge-mutation endpoints, asserting every result is exact for
// the epoch it reports and measuring plan maintenance vs rebuild.
// -exp replay streams a temporal edge trace (timestamped power-law
// insertions with churn deletions, batched per flush interval) through
// the daemon's mutation API in arrival order, solving after every batch,
// and reports the plan repair-vs-rebuild split plus solve latency — the
// production-shaped counterpart to mutebench's synthetic rounds.
// -exp trajectory is the CI benchmark trajectory: pinned sequential
// solves (deterministic node counts) plus small servebench and mutebench
// passes; with -baseline FILE the node counts gate against a previous
// -json export and a >2x regression exits nonzero (after the JSON is
// written). "all" runs only the paper artifacts and excludes the serving
// benchmarks.
//
// With -json the human-readable tables go to standard error and a JSON
// array of per-run records — one object per (experiment, dataset, solver)
// timing, with the measured size, node count and S1/S2/S3 step — goes to
// standard output, so benchmark trajectories can be captured
// reproducibly:
//
//	mbbbench -exp table5 -json > BENCH_table5.json
//
// Absolute times differ from the paper (different hardware, language and
// synthetic data); the qualitative shapes — who wins and where the "-"
// timeouts appear — are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/mbb"
)

func main() {
	expFlag := flag.String("exp", "all", "experiment: table4, table5, table6, fig4, fig5, fig6, all")
	budget := flag.Duration("budget", 20*time.Second, "per-run budget (the paper used 4h)")
	maxVerts := flag.Int("maxverts", 30000, "sparse dataset scale cap")
	instances := flag.Int("instances", 3, "random instances per Table 4 cell")
	sizes := flag.String("sizes", "32,64,128", "Table 4 side sizes")
	densities := flag.String("densities", "0.70,0.75,0.80,0.85,0.90,0.95", "Table 4 densities")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "sparse verification pipeline / planner goroutines (0/1 sequential; negative rejected)")
	reduceFlag := flag.String("reduce", "auto", "reduce-and-conquer planner: auto (off for named solvers), on, off")
	jsonOut := flag.Bool("json", false, "emit per-run timing records as JSON on stdout (tables move to stderr)")
	baseline := flag.String("baseline", "", "previous -json export to gate node counts against (>2x regression fails)")
	serveURL := flag.String("serveurl", "", "servebench/mutebench: base URL of a running mbbserved (empty = start one in-process)")
	requests := flag.Int("requests", 32, "servebench: warm requests; mutebench: mutation rounds; replay: stream rounds")
	clients := flag.Int("clients", 4, "servebench/mutebench: concurrent clients")
	muteMix := flag.String("mutemix", "cycle", "mutebench mutation stream: cycle, insert (repair hot path), mixed")
	walSync := flag.String("walsync", "", "servebench/mutebench: give the in-process daemon a WAL on a temp dir with this sync policy (always, interval, off; empty = volatile)")
	flag.Parse()

	out := os.Stdout
	if *jsonOut {
		out = os.Stderr
	}
	cfg := exp.DefaultConfig(out)
	cfg.Budget = *budget
	cfg.MaxVerts = *maxVerts
	cfg.DenseInstances = *instances
	cfg.Seed = *seed
	cfg.Workers = *workers
	reduce, ok := mbb.ParseReduce(*reduceFlag)
	if !ok {
		fatal(fmt.Errorf("unknown -reduce mode %q (want auto, on or off)", *reduceFlag))
	}
	cfg.Reduce = reduce
	cfg.DenseSizes = parseInts(*sizes)
	cfg.DenseDensities = parseFloats(*densities)
	cfg.ServeURL = *serveURL
	cfg.Requests = *requests
	cfg.Clients = *clients
	cfg.MuteMix = *muteMix
	cfg.WALSync = *walSync
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *jsonOut || *baseline != "" {
		cfg.Recorder = exp.NewRecorder()
	}

	runs := map[string]func(exp.Config) error{
		"table4":     exp.Table4,
		"table5":     exp.Table5,
		"table6":     exp.Table6,
		"fig4":       exp.Fig4,
		"fig5":       exp.Fig5,
		"fig6":       exp.Fig6,
		"servebench": exp.ServeBench,
		"mutebench":  exp.MuteBench,
		"replay":     exp.Replay,
		"trajectory": exp.Trajectory,
	}
	// The serving benchmarks replay traffic against a daemon rather than
	// regenerating a paper artifact, so "all" deliberately excludes them.
	order := []string{"table4", "table5", "table6", "fig4", "fig5", "fig6"}

	which := strings.ToLower(*expFlag)
	if which == "all" {
		for _, name := range order {
			if err := runs[name](cfg); err != nil {
				fatal(err)
			}
			fmt.Fprintln(out)
		}
	} else {
		fn, ok := runs[which]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", which))
		}
		if err := fn(cfg); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		// Only -json promises JSON on stdout; -baseline alone records for
		// the gate but keeps stdout human-readable.
		emitJSON(cfg)
	}
	// Gate after emitting: a regression must still leave the fresh JSON
	// on stdout so CI can archive the failing trajectory.
	if *baseline != "" {
		if err := gateBaseline(*baseline, cfg); err != nil {
			fatal(err)
		}
	}
}

// gateBaseline loads a previous -json export and fails on a >2x
// node-count regression in the pinned trajectory records.
func gateBaseline(path string, cfg exp.Config) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev []exp.Record
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	return exp.CompareRecords(prev, cfg.Recorder.Records(), 2.0, os.Stderr)
}

// emitJSON writes the collected per-run records to stdout when -json is
// active (the Recorder is only created in that case).
func emitJSON(cfg exp.Config) {
	if cfg.Recorder == nil {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cfg.Recorder.Records()); err != nil {
		fatal(err)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", f))
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fatal(fmt.Errorf("bad float %q", f))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbbench:", err)
	os.Exit(1)
}
