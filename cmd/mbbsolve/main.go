// Command mbbsolve computes a maximum balanced biclique of a bipartite
// graph in the text edge-list format (header "nL nR m", then "l r" lines;
// '%' and '#' start comments).
//
// Usage:
//
//	mbbsolve [-solver auto|hbvMBB|denseMBB|basicBB|extBBCL|bd1..bd5|adp1..adp4|heur]
//	         [-timeout 30s] [-workers 4] [-reduce auto|on|off]
//	         [-order bidegeneracy|degeneracy|degree]
//	         [-k 3] [-min 5] [-q] [file]
//
// -k asks for the k largest distinct balanced sizes (one witness each);
// -min restricts answers to bicliques of at least that size per side —
// an empty exact result is then a proof that none exists. Inexact runs
// print the certified optimality gap.
//
// With no file the graph is read from standard input. The solver is
// resolved through the mbb registry (run with -solver help to list the
// registered names). Interrupting the run (Ctrl-C) cancels the search
// gracefully: the best biclique found so far is printed with a
// "may be suboptimal" marker. The result is printed as the two vertex
// sets (side-local indices) plus statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/decomp"
	"repro/mbb"
)

func main() {
	solverFlag := flag.String("solver", "auto", "registered solver name (try: -solver help)")
	algoFlag := flag.String("algo", "", "alias of -solver (kept for compatibility)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	workers := flag.Int("workers", 0, "verification pipeline / component solve goroutines (0/1 sequential; negative rejected)")
	reduceFlag := flag.String("reduce", "auto", "reduce-and-conquer planner: auto (on for -solver auto), on, off")
	orderFlag := flag.String("order", "bidegeneracy", "total search order for the sparse framework: bidegeneracy, degeneracy, degree")
	topK := flag.Int("k", 0, "report the k largest distinct balanced sizes (0/1 = single maximum)")
	minSize := flag.Int("min", 0, "only accept bicliques of at least this size per side (0 = no floor)")
	quiet := flag.Bool("q", false, "print only the balanced size")
	flag.Parse()

	solverSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "solver" {
			solverSet = true
		}
	})
	name := *solverFlag
	if *algoFlag != "" {
		if solverSet {
			fatal(fmt.Errorf("-algo and -solver are aliases; pass only one"))
		}
		name = *algoFlag
	}
	if strings.EqualFold(name, "help") || strings.EqualFold(name, "list") {
		listSolvers(os.Stdout)
		return
	}

	reduce, ok := mbb.ParseReduce(*reduceFlag)
	if !ok {
		fatal(fmt.Errorf("unknown -reduce mode %q (want auto, on or off)", *reduceFlag))
	}
	opt := &mbb.Options{Solver: name, Timeout: *timeout, Workers: *workers, Reduce: reduce, TopK: *topK, MinSize: *minSize}
	switch strings.ToLower(*orderFlag) {
	case "bidegeneracy":
		opt.Order = decomp.OrderBidegeneracy
	case "degeneracy":
		opt.Order = decomp.OrderDegeneracy
	case "degree":
		opt.Order = decomp.OrderDegree
	default:
		fatal(fmt.Errorf("unknown order %q", *orderFlag))
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := mbb.ReadGraph(in)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the execution context; the engine returns the best
	// biclique found so far with Exact == false.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	res, err := mbb.SolveContext(ctx, g, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *quiet {
		fmt.Println(res.Biclique.Size())
		return
	}
	fmt.Printf("graph: %d x %d, %d edges (density %.4g)\n", g.NL(), g.NR(), g.NumEdges(), g.Density())
	fmt.Printf("solver: %s\n", res.Solver)
	fmt.Printf("balanced biclique size: %d per side", res.Biclique.Size())
	if *minSize > 0 && res.Biclique.Size() == 0 {
		if res.Exact {
			fmt.Printf(" (proof: no balanced biclique of size >= %d exists)", *minSize)
		} else {
			fmt.Printf(" (none of size >= %d found within budget)", *minSize)
		}
	}
	if !res.Exact {
		fmt.Printf(" (search interrupted or budget exhausted; may be suboptimal, gap <= %d)", res.Gap)
	}
	fmt.Println()
	fmt.Printf("A (left):  %v\n", localIdx(g, res.Biclique.A))
	fmt.Printf("B (right): %v\n", localIdx(g, res.Biclique.B))
	if res.Bicliques != nil {
		fmt.Printf("top-%d distinct sizes:\n", *topK)
		for _, bc := range res.Bicliques {
			fmt.Printf("  size %d: A=%v B=%v\n", bc.Size(), localIdx(g, bc.A), localIdx(g, bc.B))
		}
	}
	fmt.Printf("time: %v, nodes: %d, poly cases: %d", elapsed, res.Stats.Nodes, res.Stats.PolyCases)
	if res.Stats.Step != 0 {
		fmt.Printf(", terminated at %v", res.Stats.Step)
	}
	fmt.Println()
	if res.Stats.SeedTau > 0 || res.Stats.Peeled > 0 || res.Stats.Components > 0 {
		fmt.Printf("planner: tau=%d, peeled %d vertices, %d components\n",
			res.Stats.SeedTau, res.Stats.Peeled, res.Stats.Components)
	}
}

func listSolvers(w io.Writer) {
	fmt.Fprintln(w, "registered solvers:")
	for _, spec := range mbb.Solvers() {
		fmt.Fprintf(w, "  %-10s %-12s %s\n", spec.Name, spec.Paper, spec.Doc)
	}
}

func localIdx(g *mbb.Graph, vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = g.LocalIndex(v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbsolve:", err)
	os.Exit(1)
}
