// Command mbbsolve computes a maximum balanced biclique of a bipartite
// graph in the text edge-list format (header "nL nR m", then "l r" lines;
// '%' and '#' start comments).
//
// Usage:
//
//	mbbsolve [-algo auto|hbvmbb|densembb|basicbb|extbbcl] [-timeout 30s]
//	         [-order bidegeneracy|degeneracy|degree] [-q] [file]
//
// With no file the graph is read from standard input. The result is
// printed as the two vertex sets (side-local indices) plus statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/decomp"
	"repro/mbb"
)

func main() {
	algoFlag := flag.String("algo", "auto", "algorithm: auto, hbvmbb, densembb, basicbb, extbbcl")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = unlimited)")
	orderFlag := flag.String("order", "bidegeneracy", "total search order for hbvmbb: bidegeneracy, degeneracy, degree")
	quiet := flag.Bool("q", false, "print only the balanced size")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := mbb.ReadGraph(in)
	if err != nil {
		fatal(err)
	}

	opt := &mbb.Options{Timeout: *timeout}
	switch strings.ToLower(*algoFlag) {
	case "auto":
		opt.Algorithm = mbb.Auto
	case "hbvmbb":
		opt.Algorithm = mbb.HbvMBB
	case "densembb":
		opt.Algorithm = mbb.DenseMBB
	case "basicbb":
		opt.Algorithm = mbb.BasicBB
	case "extbbcl":
		opt.Algorithm = mbb.ExtBBCL
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoFlag))
	}
	switch strings.ToLower(*orderFlag) {
	case "bidegeneracy":
		opt.Order = decomp.OrderBidegeneracy
	case "degeneracy":
		opt.Order = decomp.OrderDegeneracy
	case "degree":
		opt.Order = decomp.OrderDegree
	default:
		fatal(fmt.Errorf("unknown order %q", *orderFlag))
	}

	start := time.Now()
	res, err := mbb.Solve(g, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *quiet {
		fmt.Println(res.Biclique.Size())
		return
	}
	fmt.Printf("graph: %d x %d, %d edges (density %.4g)\n", g.NL(), g.NR(), g.NumEdges(), g.Density())
	fmt.Printf("algorithm: %v\n", res.Algorithm)
	fmt.Printf("balanced biclique size: %d per side", res.Biclique.Size())
	if !res.Exact {
		fmt.Printf(" (budget exhausted; may be suboptimal)")
	}
	fmt.Println()
	fmt.Printf("A (left):  %v\n", localIdx(g, res.Biclique.A))
	fmt.Printf("B (right): %v\n", localIdx(g, res.Biclique.B))
	fmt.Printf("time: %v, nodes: %d, poly cases: %d", elapsed, res.Stats.Nodes, res.Stats.PolyCases)
	if res.Stats.Step != 0 {
		fmt.Printf(", terminated at %v", res.Stats.Step)
	}
	fmt.Println()
}

func localIdx(g *mbb.Graph, vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = g.LocalIndex(v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mbbsolve:", err)
	os.Exit(1)
}
