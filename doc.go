// Package repro is a from-scratch Go reproduction of "Efficient Exact
// Algorithms for Maximum Balanced Biclique Search in Bipartite Graphs"
// (Chen, Liu, Zhou, Xu, Li — PVLDB/SIGMOD 2021 line of work), grown into
// a cancellable, concurrency-safe solver engine.
//
// # Layout
//
// The public API lives in the mbb subpackage; the algorithms live under
// internal/ (see DESIGN.md for the system inventory) and the root-level
// bench_test.go regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the measured results).
//
// # Execution engine
//
// Every solve runs on an internal/core.Exec execution context built by
// mbb.SolveContext. It is the single object threaded through all solver
// layers — internal/dense (Algorithms 1–3), internal/sparse (Algorithms
// 4–8), internal/baseline (extBBCL, the adp MBE baselines, brute force)
// and internal/heur — and it carries four concerns:
//
//   - cancellation: a context.Context polled on the search hot path, so
//     Ctrl-C or a server deadline aborts any solver promptly with the
//     best-so-far result;
//   - budgets: wall-clock deadlines and node limits consumed through one
//     atomic counter, safe under any number of workers;
//   - the shared incumbent: an atomic balanced-size that every layer
//     reads while pruning, so an improvement found by one verification
//     worker instantly tightens the bounds inside all the others;
//   - statistics: mutex-guarded aggregation of the per-step counters the
//     experiment harness reports.
//
// Solvers are registered by name (mbb.Solvers, mbb.Lookup, mbb.Register)
// and selected with mbb.Options.Solver; cmd/mbbsolve, cmd/mbbbench, the
// benchmarks and internal/exp all resolve solvers through that one
// registry. The sparse framework's bridging and verification steps
// (Algorithms 6 and 8) run as a streaming producer/consumer pipeline
// over a bounded channel: peak memory is O(workers) vertex-centred
// subgraphs rather than all of them, sequential when Options.Workers <= 1
// (the paper's schedule) and a worker pool otherwise, with identical
// optima either way.
//
// # Planner
//
// Ahead of any exact solver, mbb.SolveContext can run a reduce-and-conquer
// planner (mbb.Options.Reduce; on by default for the "auto" solver):
//
//	heuristic → reduce → decompose → solve → remap
//
// A greedy heuristic seeds the shared incumbent with a lower bound τ;
// the planner peels every vertex that provably cannot belong to a
// balanced biclique larger than τ — the (τ+1)-core intersected with the
// 2τ+1 bicore threshold of internal/decomp, iterated to a fixed point —
// splits the survivor into connected components (bigraph.Components),
// solves the components concurrently largest-first on the shared
// execution context, and remaps the winner to the original vertex ids.
// The reduction is optimum-preserving, so every registered exact solver
// returns the same balanced size with the planner on or off; the
// differential fuzz harness (mbb's FuzzSolversAgree and its ≥50-case
// seeded corpus) checks exactly that agreement against the brute-force
// oracle on every test run.
//
// # Serving layer
//
// cmd/mbbserved and internal/server turn the library into a long-running
// HTTP JSON service:
//
//	store (parsed graph) → cached plan (τ, reduction, components) →
//	scheduler (bounded workers) → core.Exec (budget, cancellation)
//
// Graphs are uploaded once into a named store; the planner's
// preprocessing phase is split out as a cacheable mbb.Plan
// (mbb.PlanContext / Plan.SolveContext), built at most once per graph
// version and shared by every subsequent query, so heavy traffic
// amortizes parsing and reduction instead of redoing them per request.
// Solve jobs run on a bounded worker pool, each on its own execution
// context with per-job budgets, cancelable via DELETE /jobs/{id} or
// client disconnect. The ingestion path (bigraph.ReadKONECT and
// friends) is hardened for untrusted input — hint-bound checks,
// surfaced scanner errors, pre-allocation vertex caps — and fuzzed by
// FuzzReadKONECT's parse→write→reparse round trip.
//
// Served graphs are mutable: POST/DELETE /graphs/{name}/edges apply
// edge batches (bigraph.Delta, bigraph.Graph.Apply) as copy-on-write
// snapshots with a monotone epoch counter. Jobs pin the snapshot
// current at submission, so a solve never observes a half-applied batch
// and its result is exact for the epoch it reports. The cached plan
// follows mutations without a planner rerun (mbb.Plan.ApplyDelta):
// deletion-only batches that spare the heuristic witness carry it
// across unchanged, insertion batches are absorbed by bounded local
// repair of the peeling certificates (decomp.RepairMask re-admits only
// vertices the batch could have restored), and only witness hits or
// over-budget repairs schedule a background rebuild as stale-but-exact
// solves continue on prior snapshots. FuzzGraphApply checks the delta
// path against a from-scratch rebuild and FuzzPlanMaintain checks
// maintained plans against cold plans and the brute-force oracle. See
// DESIGN.md §6–7 for the API, a curl quick-start and the maintenance
// rules; cmd/mbbbench -exp servebench measures the amortization and
// -exp mutebench the mutate/solve interleaving per plan outcome.
//
// The daemon is durable and clusterable. With -data-dir, every
// upload/mutation/delete is appended to a write-ahead delta log
// (internal/wal, versioned codec in internal/bigraph) before it
// becomes visible, with group-commit fsync, checkpoint/compaction and
// exact crash recovery; ?epoch=E answers against a retained window of
// past versions (DESIGN.md §10). With -cluster-peers, workers shard
// the store over a static consistent-hash ring and replicate each
// owner's WAL to its followers as a delta stream (internal/cluster),
// while a stateless -coordinator front-end routes mutations to shard
// owners and fans solves across ready replicas; replicas that lag
// shed reads rather than serve stale epochs, so every answer remains
// exact for the epoch it reports cluster-wide (DESIGN.md §11,
// docs/operations.md for the operator runbooks).
package repro
