// Package repro is a from-scratch Go reproduction of "Efficient Exact
// Algorithms for Maximum Balanced Biclique Search in Bipartite Graphs"
// (Chen, Liu, Zhou, Xu, Li — PVLDB/SIGMOD 2021 line of work).
//
// The public API lives in the mbb subpackage; the algorithms live under
// internal/ (see DESIGN.md for the system inventory) and the root-level
// bench_test.go regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the measured results).
package repro
