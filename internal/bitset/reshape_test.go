package bitset

import "testing"

func TestReshapeReusesBacking(t *testing.T) {
	s := New(256)
	s.Add(3)
	s.Add(200)
	s.Reshape(64) // shrink: same backing array, truncated view
	if s.Cap() != 64 {
		t.Fatalf("Cap() = %d, want 64", s.Cap())
	}
	if !s.Empty() {
		t.Fatalf("Reshape must clear: %v", s)
	}
	s.Add(63)
	s.Reshape(192) // grow within the original backing array
	if s.Cap() != 192 || !s.Empty() {
		t.Fatalf("after regrow: cap=%d empty=%v", s.Cap(), s.Empty())
	}
	s.Add(191)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count() = %d, want 1", got)
	}
	// Steady state: reshaping between capacities below the high-water
	// mark must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		s.Reshape(64)
		s.Reshape(192)
	})
	if allocs != 0 {
		t.Fatalf("Reshape allocated %.1f allocs/op in steady state", allocs)
	}
}

func TestReshapeGrowsPastBacking(t *testing.T) {
	s := New(64)
	s.Reshape(1024)
	if s.Cap() != 1024 || !s.Empty() {
		t.Fatalf("cap=%d empty=%v", s.Cap(), s.Empty())
	}
	s.Add(1023)
	if !s.Contains(1023) {
		t.Fatal("bit 1023 lost after growth")
	}
}

func TestReshapeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape(-1) did not panic")
		}
	}()
	New(8).Reshape(-1)
}

func TestPoolResetRetargetsCapacity(t *testing.T) {
	p := NewPool(100)
	a := p.Get()
	b := p.Get()
	p.Put(a)
	p.Put(b)
	p.Reset(300) // grow: the repair path re-induced a larger graph
	if p.Cap() != 300 {
		t.Fatalf("Cap() = %d, want 300", p.Cap())
	}
	c := p.Get()
	if c.Cap() != 300 {
		t.Fatalf("recycled set has capacity %d, want 300", c.Cap())
	}
	c.Add(299)
	p.Put(c) // same capacity: accepted
	p.Reset(50)
	d := p.Get()
	if d.Cap() != 50 || !d.Empty() {
		t.Fatalf("after shrink: cap=%d empty=%v", d.Cap(), d.Empty())
	}
	p.Put(d)
}

func TestPoolPutForeignStillPanics(t *testing.T) {
	p := NewPool(100)
	s := p.Get()
	p.Reset(200) // s was not returned first: it is now foreign
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a stale-capacity set did not panic")
		}
	}()
	p.Put(s)
}

func TestPoolResetSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool(64)
	// Warm the pool at the largest capacity so later resets only reshape.
	s := p.Get()
	p.Put(s)
	p.Reset(256)
	s = p.Get()
	p.Put(s)
	allocs := testing.AllocsPerRun(100, func() {
		p.Reset(64)
		x := p.Get()
		p.Put(x)
		p.Reset(256)
		x = p.Get()
		p.Put(x)
	})
	if allocs != 0 {
		t.Fatalf("Pool Reset/Get/Put allocated %.1f allocs/op in steady state", allocs)
	}
}
