// Package bitset provides fixed-capacity dense bit sets used as the core
// data structure for the dense branch-and-bound solver. All hot operations
// (intersection counts, subset tests, fused and/and-not) are implemented
// word-wise over []uint64 with no allocation.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The capacity is fixed at construction;
// operations combining two sets require equal word lengths.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a set of capacity n with all n bits set.
func NewFull(n int) *Set {
	s := New(n)
	s.FillAll()
	return s
}

// Cap reports the capacity in bits.
func (s *Set) Cap() int { return s.n }

// Words exposes the backing words for read-only scanning.
func (s *Set) Words() []uint64 { return s.words }

// Add sets bit i.
func (s *Set) Add(i int) { s.words[i/wordBits] |= 1 << uint(i%wordBits) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.words[i/wordBits] &^= 1 << uint(i%wordBits) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear unsets every bit, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// FillAll sets every bit in [0, Cap()).
func (s *Set) FillAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears any bits at positions >= n in the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Reshape changes the capacity of s to n bits and clears every bit. The
// backing array is reused when it is large enough, so repeatedly
// reshaping a scratch set between nearby capacities settles into a
// zero-allocation steady state.
func (s *Set) Reshape(n int) {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	nw := (n + wordBits - 1) / wordBits
	if nw <= cap(s.words) {
		s.words = s.words[:nw]
	} else {
		s.words = make([]uint64, nw)
	}
	s.n = n
	s.Clear()
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t. Capacities must match.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch in CopyFrom")
	}
	copy(s.words, t.words)
}

// And sets s = s ∩ t.
func (s *Set) And(t *Set) {
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s = s \ t.
func (s *Set) AndNot(t *Set) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Or sets s = s ∪ t.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectInto stores a ∩ b into s without allocating.
func (s *Set) IntersectInto(a, b *Set) {
	for i := range s.words {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// AndCount returns |s ∩ t| without materialising the intersection.
func (s *Set) AndCount(t *Set) int {
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// AndNotCount returns |s \ t|.
func (s *Set) AndNotCount(t *Set) int {
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// ContainsAll reports whether t ⊆ s.
func (s *Set) ContainsAll(t *Set) bool {
	for i, w := range t.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t hold exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// First returns the index of the lowest set bit, or -1 if the set is empty.
func (s *Set) First() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the lowest set bit strictly greater than i, or -1.
func (s *Set) NextAfter(i int) int {
	i++
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false the iteration stops.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendTo appends all set bits to dst and returns the extended slice.
func (s *Set) AppendTo(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Slice returns the set bits as a fresh sorted slice.
func (s *Set) Slice() []int { return s.AppendTo(make([]int, 0, s.Count())) }

// String renders the set as "{1, 5, 9}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
