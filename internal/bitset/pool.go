package bitset

// Pool hands out scratch sets of a single fixed capacity and recycles them.
// The dense branch-and-bound recursion allocates two candidate sets per
// node; recycling them keeps the solver allocation-free in steady state.
// Pool is not safe for concurrent use; each solver owns its own pool.
type Pool struct {
	n    int
	free []*Set
}

// NewPool returns a pool producing sets with capacity n bits.
func NewPool(n int) *Pool { return &Pool{n: n} }

// Get returns an empty set of the pool's capacity.
func (p *Pool) Get() *Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		s.Clear()
		return s
	}
	return New(p.n)
}

// GetCopy returns a pooled copy of t, which must have the pool capacity.
func (p *Pool) GetCopy(t *Set) *Set {
	s := p.Get()
	s.CopyFrom(t)
	return s
}

// Put returns a set to the pool. The set must have been produced by Get or
// GetCopy on the same pool (same capacity).
func (p *Pool) Put(s *Set) {
	if s == nil {
		return
	}
	if s.n != p.n {
		panic("bitset: foreign set returned to pool")
	}
	p.free = append(p.free, s)
}
