package bitset

// Pool hands out scratch sets of a single fixed capacity and recycles them.
// The dense branch-and-bound recursion allocates two candidate sets per
// node; recycling them keeps the solver allocation-free in steady state.
// Pool is not safe for concurrent use; each solver owns its own pool.
type Pool struct {
	n    int
	free []*Set
}

// NewPool returns a pool producing sets with capacity n bits.
func NewPool(n int) *Pool { return &Pool{n: n} }

// Cap reports the capacity (in bits) of the sets the pool currently
// hands out.
func (p *Pool) Cap() int { return p.n }

// Reset repurposes the pool to capacity n, reshaping every recycled set
// in place so their backing arrays are reused. All sets handed out by
// Get/GetCopy must have been returned before Reset: a set of the old
// capacity returned afterwards is foreign and Put panics on it. Reset
// is how per-worker scratch survives across solves of differently sized
// (sub)graphs — e.g. a plan repair that re-induces a larger reduced
// graph — without either panicking or reallocating from scratch.
func (p *Pool) Reset(n int) {
	if n == p.n {
		return
	}
	p.n = n
	for _, s := range p.free {
		s.Reshape(n)
	}
}

// Get returns an empty set of the pool's capacity.
func (p *Pool) Get() *Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		s.Clear()
		return s
	}
	return New(p.n)
}

// GetCopy returns a pooled copy of t, which must have the pool capacity.
func (p *Pool) GetCopy(t *Set) *Set {
	s := p.Get()
	s.CopyFrom(t)
	return s
}

// Put returns a set to the pool. The set must have been produced by Get or
// GetCopy on the same pool (same capacity).
func (p *Pool) Put(s *Set) {
	if s == nil {
		return
	}
	if s.n != p.n {
		panic("bitset: foreign set returned to pool")
	}
	p.free = append(p.free, s)
}
