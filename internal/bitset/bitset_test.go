package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if got := s.Count(); got != 0 {
		t.Fatalf("empty count = %d, want 0", got)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestFillAllRespectsCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128, 129} {
		s := NewFull(n)
		if got := s.Count(); got != n {
			t.Errorf("NewFull(%d).Count() = %d", n, got)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	const n = 200
	a, b := New(n), New(n)
	for i := 0; i < n; i += 2 {
		a.Add(i)
	}
	for i := 0; i < n; i += 3 {
		b.Add(i)
	}
	inter := a.Clone()
	inter.And(b)
	want := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 && i%3 == 0 {
			want++
			if !inter.Contains(i) {
				t.Fatalf("intersection missing %d", i)
			}
		} else if inter.Contains(i) {
			t.Fatalf("intersection contains %d", i)
		}
	}
	if got := a.AndCount(b); got != want {
		t.Fatalf("AndCount = %d, want %d", got, want)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Count(); got != a.Count()-want {
		t.Fatalf("AndNot count = %d, want %d", got, a.Count()-want)
	}
	if got := a.AndNotCount(b); got != a.Count()-want {
		t.Fatalf("AndNotCount = %d, want %d", got, a.Count()-want)
	}
	union := a.Clone()
	union.Or(b)
	if got := union.Count(); got != a.Count()+b.Count()-want {
		t.Fatalf("Or count = %d", got)
	}
}

func TestIntersectInto(t *testing.T) {
	const n = 77
	a, b, dst := New(n), New(n), New(n)
	a.Add(3)
	a.Add(50)
	a.Add(76)
	b.Add(50)
	b.Add(76)
	dst.Add(1) // stale content must be overwritten
	dst.IntersectInto(a, b)
	if dst.Contains(1) || dst.Contains(3) || !dst.Contains(50) || !dst.Contains(76) {
		t.Fatalf("IntersectInto wrong: %v", dst)
	}
}

func TestContainsAll(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(5)
	a.Add(70)
	b.Add(5)
	if !a.ContainsAll(b) {
		t.Fatal("a should contain b")
	}
	b.Add(71)
	if a.ContainsAll(b) {
		t.Fatal("a should not contain b")
	}
}

func TestIteration(t *testing.T) {
	s := New(300)
	want := []int{0, 7, 63, 64, 127, 128, 255, 299}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Slice(); len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Slice = %v, want %v", got, want)
			}
		}
	}
	if got := s.First(); got != 0 {
		t.Fatalf("First = %d", got)
	}
	if got := s.NextAfter(0); got != 7 {
		t.Fatalf("NextAfter(0) = %d", got)
	}
	if got := s.NextAfter(128); got != 255 {
		t.Fatalf("NextAfter(128) = %d", got)
	}
	if got := s.NextAfter(299); got != -1 {
		t.Fatalf("NextAfter(299) = %d", got)
	}
	if got := New(64).First(); got != -1 {
		t.Fatalf("First on empty = %d", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(64)
	for i := 0; i < 10; i++ {
		s.Add(i)
	}
	visited := 0
	s.ForEach(func(i int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited = %d, want 3", visited)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(90)
	a.Add(1)
	a.Add(89)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(91)) {
		t.Fatal("different capacities reported equal")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// TestQuickCountMatchesReference cross-checks Count/AndCount against a
// map-based reference on random memberships.
func TestQuickCountMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
				ma[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
				mb[i] = true
			}
		}
		inter := 0
		for i := range ma {
			if mb[i] {
				inter++
			}
		}
		return a.Count() == len(ma) && b.Count() == len(mb) && a.AndCount(b) == inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraLaws checks De Morgan style identities on random sets.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		// |a| = |a∩b| + |a\b|
		if a.Count() != a.AndCount(b)+a.AndNotCount(b) {
			return false
		}
		// a∩b ⊆ a and a∩b ⊆ b
		inter := a.Clone()
		inter.And(b)
		return a.ContainsAll(inter) && b.ContainsAll(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(128)
	s := p.Get()
	s.Add(5)
	p.Put(s)
	s2 := p.Get()
	if s2 != s {
		t.Fatal("pool did not recycle")
	}
	if !s2.Empty() {
		t.Fatal("recycled set not cleared")
	}
	src := New(128)
	src.Add(7)
	c := p.GetCopy(src)
	if !c.Contains(7) || c.Count() != 1 {
		t.Fatal("GetCopy wrong contents")
	}
	p.Put(nil) // must be a no-op
}

func TestPoolForeignSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on foreign set")
		}
	}()
	NewPool(64).Put(New(65))
}
