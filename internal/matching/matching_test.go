package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

func randMatrix(rng *rand.Rand, maxSide int, p float64) *dense.Matrix {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	m := dense.NewMatrix(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				m.AddEdge(l, r)
			}
		}
	}
	return m
}

// bruteMatching computes the maximum matching size by augmenting-path
// search (Kuhn's algorithm), the reference for Hopcroft–Karp.
func bruteMatching(m *dense.Matrix, complement bool) int {
	nl, nr := m.NL(), m.NR()
	matchR := make([]int, nr)
	for j := range matchR {
		matchR[j] = -1
	}
	has := func(l, r int) bool { return m.HasEdge(l, r) != complement }
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for r := 0; r < nr; r++ {
			if !has(l, r) || seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < nl; l++ {
		if try(l, make([]bool, nr)) {
			size++
		}
	}
	return size
}

func TestHopcroftKarpPerfect(t *testing.T) {
	// Complete K5,5: matching 5.
	m := dense.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			m.AddEdge(i, j)
		}
	}
	got := HopcroftKarp(NewAdjacency(m, false))
	if got.Size != 5 {
		t.Fatalf("size = %d, want 5", got.Size)
	}
	// Complement of K5,5 has no edges: matching 0.
	if HopcroftKarp(NewAdjacency(m, true)).Size != 0 {
		t.Fatal("complement of complete graph should have empty matching")
	}
}

func TestQuickHopcroftKarpMatchesKuhn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 15, 0.3)
		for _, comp := range []bool{false, true} {
			got := HopcroftKarp(NewAdjacency(m, comp))
			want := bruteMatching(m, comp)
			if got.Size != want {
				t.Logf("comp=%v got %d want %d", comp, got.Size, want)
				return false
			}
			// The matching must be consistent and use real edges.
			adj := NewAdjacency(m, comp)
			count := 0
			for l, r := range got.MatchL {
				if r == -1 {
					continue
				}
				count++
				if got.MatchR[r] != l || !adj.has(l, r) {
					return false
				}
			}
			if count != got.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKonigCoverValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 12, 0.4)
		adj := NewAdjacency(m, false)
		mt := HopcroftKarp(adj)
		coverL, coverR := KonigCover(adj, mt)
		// Cover size equals matching size (König) ...
		size := 0
		for _, c := range coverL {
			if c {
				size++
			}
		}
		for _, c := range coverR {
			if c {
				size++
			}
		}
		if size != mt.Size {
			t.Logf("cover %d != matching %d", size, mt.Size)
			return false
		}
		// ... and covers every edge.
		for l := 0; l < m.NL(); l++ {
			for r := 0; r < m.NR(); r++ {
				if m.HasEdge(l, r) && !coverL[l] && !coverR[r] {
					t.Logf("edge (%d,%d) uncovered", l, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// bruteMVB enumerates subsets to find the maximum |A|+|B| biclique.
func bruteMVB(m *dense.Matrix) int {
	nl, nr := m.NL(), m.NR()
	best := 0
	for mask := uint64(0); mask < 1<<uint(nl); mask++ {
		var a []int
		for i := 0; i < nl; i++ {
			if mask&(1<<uint(i)) != 0 {
				a = append(a, i)
			}
		}
		common := 0
		for r := 0; r < nr; r++ {
			ok := true
			for _, l := range a {
				if !m.HasEdge(l, r) {
					ok = false
					break
				}
			}
			if ok {
				common++
			}
		}
		if len(a) > 0 && common > 0 && len(a)+common > best {
			best = len(a) + common
		}
	}
	return best
}

func TestQuickMaxVertexBiclique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 10, 0.5)
		A, B := MaxVertexBiclique(m)
		// Result is a biclique.
		for _, l := range A {
			for _, r := range B {
				if !m.HasEdge(l, r) {
					t.Logf("not a biclique: (%d,%d)", l, r)
					return false
				}
			}
		}
		want := bruteMVB(m)
		got := len(A) + len(B)
		// The König construction may return one empty side on graphs with
		// isolated-ish structure; the brute force requires both sides
		// nonempty, so got can exceed want only in that degenerate case.
		if len(A) > 0 && len(B) > 0 && got < want {
			t.Logf("got %d want %d", got, want)
			return false
		}
		if got > want && len(A) > 0 && len(B) > 0 {
			t.Logf("impossible: exceeded brute force (%d > %d)", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
