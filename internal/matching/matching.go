// Package matching implements maximum bipartite matching (Hopcroft–Karp)
// and its König-theorem corollaries over bitset adjacency matrices. The
// paper's related-work section (§7) describes how the polynomially
// solvable maximum *vertex* biclique (MVB) problem reduces to minimum
// vertex cover on the bipartite complement, which in turn reduces to
// maximum matching; this package provides that machinery, both as a
// standalone solver (MVB) and as the exact version of the dense solver's
// matching bound.
package matching

import (
	"repro/internal/bitset"
	"repro/internal/dense"
)

// Adjacency abstracts the edge set Hopcroft–Karp runs on: either the
// matrix itself or its complement, without materialising the latter.
type Adjacency struct {
	m          *dense.Matrix
	complement bool
	// scratch row for complement iteration
	row *bitset.Set
}

// NewAdjacency wraps m; with complement true the edge set is inverted.
func NewAdjacency(m *dense.Matrix, complement bool) *Adjacency {
	return &Adjacency{m: m, complement: complement, row: bitset.New(m.NR())}
}

// neighborsL calls fn for every right-neighbour of left vertex l.
func (a *Adjacency) neighborsL(l int, fn func(r int) bool) {
	if !a.complement {
		a.m.RowL(l).ForEach(fn)
		return
	}
	a.row.FillAll()
	a.row.AndNot(a.m.RowL(l))
	a.row.ForEach(fn)
}

// has reports whether (l, r) is an edge of the (possibly complemented)
// adjacency.
func (a *Adjacency) has(l, r int) bool {
	return a.m.HasEdge(l, r) != a.complement
}

// Matching is a maximum matching: MatchL[l] is the right partner of left
// vertex l (or -1), MatchR[r] symmetric.
type Matching struct {
	MatchL, MatchR []int
	Size           int
}

const inf = int(^uint(0) >> 1)

// HopcroftKarp computes a maximum matching in O(E√V).
func HopcroftKarp(adj *Adjacency) *Matching {
	nl, nr := adj.m.NL(), adj.m.NR()
	matchL := make([]int, nl)
	matchR := make([]int, nr)
	for i := range matchL {
		matchL[i] = -1
	}
	for j := range matchR {
		matchR[j] = -1
	}
	dist := make([]int, nl)
	queue := make([]int, 0, nl)
	size := 0

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			adj.neighborsL(l, func(r int) bool {
				nxt := matchR[r]
				if nxt == -1 {
					found = true
				} else if dist[nxt] == inf {
					dist[nxt] = dist[l] + 1
					queue = append(queue, nxt)
				}
				return true
			})
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		ok := false
		adj.neighborsL(l, func(r int) bool {
			nxt := matchR[r]
			if nxt == -1 || (dist[nxt] == dist[l]+1 && dfs(nxt)) {
				matchL[l] = r
				matchR[r] = l
				ok = true
				return false // stop iteration
			}
			return true
		})
		if !ok {
			dist[l] = inf
		}
		return ok
	}

	for bfs() {
		for l := 0; l < nl; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return &Matching{MatchL: matchL, MatchR: matchR, Size: size}
}

// KonigCover derives a minimum vertex cover from a maximum matching via
// alternating reachability (König's theorem): starting from the unmatched
// left vertices, alternate unmatched/matched edges; the cover is the
// unreached left vertices plus the reached right vertices.
func KonigCover(adj *Adjacency, m *Matching) (coverL, coverR []bool) {
	nl, nr := adj.m.NL(), adj.m.NR()
	visitedL := make([]bool, nl)
	visitedR := make([]bool, nr)
	queue := make([]int, 0, nl)
	for l := 0; l < nl; l++ {
		if m.MatchL[l] == -1 {
			visitedL[l] = true
			queue = append(queue, l)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		l := queue[qi]
		adj.neighborsL(l, func(r int) bool {
			if visitedR[r] {
				return true
			}
			visitedR[r] = true
			if nxt := m.MatchR[r]; nxt != -1 && !visitedL[nxt] {
				visitedL[nxt] = true
				queue = append(queue, nxt)
			}
			return true
		})
	}
	coverL = make([]bool, nl)
	coverR = make([]bool, nr)
	for l := 0; l < nl; l++ {
		coverL[l] = !visitedL[l]
	}
	for r := 0; r < nr; r++ {
		coverR[r] = visitedR[r]
	}
	return coverL, coverR
}

// MaxVertexBiclique solves the maximum *vertex* biclique problem exactly
// in polynomial time: (A, B) is a biclique of m iff the vertices outside
// it cover every complement edge, so the maximum |A|+|B| equals
// |L|+|R| − MVC(complement) = |L|+|R| − maxmatching(complement) by König.
// It returns the two sides as matrix-local indices.
func MaxVertexBiclique(m *dense.Matrix) (A, B []int) {
	adj := NewAdjacency(m, true)
	mt := HopcroftKarp(adj)
	coverL, coverR := KonigCover(adj, mt)
	for l := 0; l < m.NL(); l++ {
		if !coverL[l] {
			A = append(A, l)
		}
	}
	for r := 0; r < m.NR(); r++ {
		if !coverR[r] {
			B = append(B, r)
		}
	}
	return A, B
}
