package workload

import "repro/internal/bigraph"

// Dataset describes one KONECT graph from the paper's Table 5, with the
// published side sizes, density and optimum balanced size.
type Dataset struct {
	Name    string
	L, R    int     // published side sizes
	Density float64 // published density (absolute, not ×10⁻⁴)
	Optimum int     // published maximum balanced biclique size (per side)
	Tough   bool    // member of the Table 6 "tough" subset
	DIndex  int     // D1..D12 index within the tough subset (0 otherwise)
}

// Registry lists the 30 datasets of Table 5 in the paper's order. The
// density column of the paper is given ×10⁻⁴; here it is absolute.
var Registry = []Dataset{
	{Name: "unicodelang", L: 254, R: 614, Density: 8.0e-4, Optimum: 4},
	{Name: "moreno-crime-crime", L: 829, R: 551, Density: 3.2e-4, Optimum: 2},
	{Name: "opsahl-ucforum", L: 899, R: 522, Density: 71.855e-4, Optimum: 5},
	{Name: "escorts", L: 10106, R: 6624, Density: 0.756e-4, Optimum: 6},
	{Name: "jester", L: 173421, R: 100, Density: 563.376e-4, Optimum: 100, Tough: true, DIndex: 1},
	{Name: "pics-ut", L: 17122, R: 82035, Density: 1.637e-4, Optimum: 30, Tough: true, DIndex: 2},
	{Name: "youtube-groupmemberships", L: 94238, R: 30087, Density: 0.103e-4, Optimum: 12},
	{Name: "dbpedia-writer", L: 89356, R: 46213, Density: 0.035e-4, Optimum: 6},
	{Name: "dbpedia-starring", L: 76099, R: 81085, Density: 0.046e-4, Optimum: 6},
	{Name: "github", L: 56519, R: 120867, Density: 0.064e-4, Optimum: 12, Tough: true, DIndex: 3},
	{Name: "dbpedia-recordlabel", L: 168337, R: 18421, Density: 0.075e-4, Optimum: 6},
	{Name: "dbpedia-producer", L: 48833, R: 138844, Density: 0.031e-4, Optimum: 6},
	{Name: "dbpedia-location", L: 172091, R: 53407, Density: 0.032e-4, Optimum: 5},
	{Name: "dbpedia-occupation", L: 127577, R: 101730, Density: 0.019e-4, Optimum: 6},
	{Name: "dbpedia-genre", L: 258934, R: 7783, Density: 0.230e-4, Optimum: 7},
	{Name: "discogs-lgenre", L: 270771, R: 15, Density: 1021.2e-4, Optimum: 15},
	{Name: "bookcrossing-full-rating", L: 105278, R: 340523, Density: 0.032e-4, Optimum: 13, Tough: true, DIndex: 4},
	{Name: "flickr-groupmemberships", L: 395979, R: 103631, Density: 0.208e-4, Optimum: 47, Tough: true, DIndex: 5},
	{Name: "actor-movie", L: 127823, R: 383640, Density: 0.030e-4, Optimum: 8, Tough: true, DIndex: 6},
	{Name: "stackexchange-stackoverflow", L: 545196, R: 96680, Density: 0.025e-4, Optimum: 9, Tough: true, DIndex: 7},
	{Name: "bibsonomy-2ui", L: 5794, R: 767447, Density: 0.575e-4, Optimum: 8},
	{Name: "dbpedia-team", L: 901166, R: 34461, Density: 0.044e-4, Optimum: 6},
	{Name: "reuters", L: 781265, R: 283911, Density: 0.273e-4, Optimum: 51, Tough: true, DIndex: 8},
	{Name: "discogs-style", L: 1617943, R: 383, Density: 38.868e-4, Optimum: 42, Tough: true, DIndex: 9},
	{Name: "gottron-trec", L: 556077, R: 1173225, Density: 0.128e-4, Optimum: 101, Tough: true, DIndex: 10},
	{Name: "edit-frwiktionary", L: 5017, R: 1907247, Density: 0.773e-4, Optimum: 19},
	{Name: "discogs-affiliation", L: 1754823, R: 270771, Density: 0.030e-4, Optimum: 26, Tough: true, DIndex: 11},
	{Name: "wiki-en-cat", L: 1853493, R: 182947, Density: 0.011e-4, Optimum: 14},
	{Name: "edit-dewiki", L: 425842, R: 3195148, Density: 0.042e-4, Optimum: 49, Tough: true, DIndex: 12},
	{Name: "dblp-author", L: 1425813, R: 4000, Density: 0.002e-4, Optimum: 10},
}

// Tough returns the Table 6 subset (D1..D12) in order.
func Tough() []Dataset {
	var out []Dataset
	for _, d := range Registry {
		if d.Tough {
			out = append(out, d)
		}
	}
	return out
}

// ByName returns the dataset with the given name, or false.
func ByName(name string) (Dataset, bool) {
	for _, d := range Registry {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// ScaledShape returns the generated side sizes and target edge count for
// the stand-in graph: the vertex total is reduced to at most maxVerts
// (preserving the L:R ratio), the published average degree is preserved,
// and each side keeps at least the published optimum (so the plant fits)
// plus a small floor.
func (d Dataset) ScaledShape(maxVerts int) (nl, nr, m int) {
	total := d.L + d.R
	f := 1.0
	if maxVerts > 0 && total > maxVerts {
		f = float64(total) / float64(maxVerts)
	}
	nl = int(float64(d.L) / f)
	nr = int(float64(d.R) / f)
	floor := func(orig int) int {
		lo := d.Optimum
		if orig < lo {
			lo = orig
		}
		if orig >= 32 && lo < 32 {
			lo = 32
		}
		return lo
	}
	if lo := floor(d.L); nl < lo {
		nl = lo
	}
	if lo := floor(d.R); nr < lo {
		nr = lo
	}
	origEdges := d.Density * float64(d.L) * float64(d.R)
	m = int(origEdges / f)
	return nl, nr, m
}

// Generate builds the seeded stand-in graph for d: a power-law background
// at the scaled shape, a quasi-dense block that lifts the degeneracy
// above the optimum (so the sparse framework cannot shortcut every
// dataset at step 1, mirroring the S1/S2/S3 mix of Table 5), and a
// planted Optimum×Optimum biclique. The measured optimum may exceed
// d.Optimum if the random parts happen to contain something larger; the
// harness always reports the measured value.
func (d Dataset) Generate(maxVerts int, seed int64) *bigraph.Graph {
	nl, nr, m := d.ScaledShape(maxVerts)
	g := PowerLaw(nl, nr, m, 0.5, seed)
	k := d.Optimum
	if k > nl {
		k = nl
	}
	if k > nr {
		k = nr
	}
	if k >= 3 {
		// A 3k×3k block at density p has degeneracy ≈ 3kp > k (so the
		// Lemma 5 shortcut cannot fire) while the expected number of
		// (k+1)×(k+1) all-ones submatrices, ~exp(2·3k·H(1/3) + (k+1)²·ln p),
		// stays far below 1 for the chosen p — the planted biclique
		// remains the optimum.
		p := 0.65
		if k < 7 {
			p = 0.4
		}
		g = PlantQuasi(g, 3*k, 3*k, p, seed+2)
	}
	if k > 0 {
		g, _, _ = Plant(g, k, seed+1)
	}
	return g
}
