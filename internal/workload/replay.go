package workload

import (
	"math/rand"

	"repro/internal/bigraph"
)

// StreamEvent is one timestamped edge event of a temporal replay stream:
// an insertion (Add) or deletion of the side-local edge (L, R) at Time.
// Times are nondecreasing along a stream, mimicking the arrival order of
// a logged production trace.
type StreamEvent struct {
	Time int64 // milliseconds since the stream start
	Add  bool
	L, R int
}

// EdgeStream is a replayable temporal workload: a base graph plus a
// timestamped event sequence to stream through the mutation API. The
// events reference side-local indices of Base's vertex space (the vertex
// sets never change — only edges churn, like the engine's mutation API).
type EdgeStream struct {
	Base   *bigraph.Graph
	Events []StreamEvent
}

// Replay generates a temporal edge stream over an nl×nr vertex space,
// deterministic in seed. The base graph holds roughly baseEdges power-law
// edges; the stream then issues events alternating growth and churn:
// each event is an insertion of a fresh power-law-sampled edge with
// probability 1−churn, or a deletion of an edge currently present with
// probability churn. Deletions are sampled uniformly from the live edge
// set, so hub edges churn in proportion to their prevalence — the
// classic append-mostly trace with occasional unlinks. Event timestamps
// advance by an exponential-ish jitter of meanGapMs (bounded, so a
// stream's wall-clock span is predictable in tests).
//
// The stream never deletes below half the base edge count and never
// inserts an edge that is already present (those samples are redirected
// to deletions or skipped), so every event is a real mutation when
// applied in order.
func Replay(nl, nr, baseEdges, events int, churn float64, meanGapMs int64, seed int64) EdgeStream {
	rng := rand.New(rand.NewSource(seed))
	base := PowerLaw(nl, nr, baseEdges, 0.5, seed)

	// Live edge set, as l*nr+r keys, for uniform deletion sampling and
	// duplicate-insert suppression.
	live := make([]int64, 0, base.NumEdges()+events)
	liveIdx := make(map[int64]int, base.NumEdges()+events)
	add := func(key int64) {
		liveIdx[key] = len(live)
		live = append(live, key)
	}
	del := func(key int64) {
		i := liveIdx[key]
		last := len(live) - 1
		live[i] = live[last]
		liveIdx[live[i]] = i
		live = live[:last]
		delete(liveIdx, key)
	}
	for _, e := range base.Edges() {
		add(int64(e[0])*int64(nr) + int64(e[1]))
	}
	floor := len(live) / 2

	cumL := weightCDF(nl, 0.5)
	cumR := weightCDF(nr, 0.5)
	if meanGapMs < 1 {
		meanGapMs = 1
	}
	out := EdgeStream{Base: base}
	now := int64(0)
	for len(out.Events) < events {
		// Bounded jitter in [1, 3·mean]: exponential flavour without the
		// unbounded tail that would make test durations flaky.
		now += 1 + rng.Int63n(3*meanGapMs)
		if rng.Float64() < churn && len(live) > floor {
			key := live[rng.Intn(len(live))]
			del(key)
			out.Events = append(out.Events, StreamEvent{
				Time: now, Add: false, L: int(key / int64(nr)), R: int(key % int64(nr)),
			})
			continue
		}
		l := sampleCDF(cumL, rng)
		r := sampleCDF(cumR, rng)
		key := int64(l)*int64(nr) + int64(r)
		if _, present := liveIdx[key]; present {
			continue // duplicate insert: resample
		}
		add(key)
		out.Events = append(out.Events, StreamEvent{Time: now, Add: true, L: l, R: r})
	}
	return out
}

// Batches groups the stream's events into mutation batches of at most
// batchMs of stream time each (and at least one event), preserving
// order: the deltas a replaying client would POST per flush interval. A
// batch also splits early when an event touches an edge the current
// batch already names — delete-then-reinsert inside one delta would be
// netted out by the mutation API, and a replay batch must stay effective
// edge for edge.
func (s EdgeStream) Batches(batchMs int64) []bigraph.Delta {
	if batchMs < 1 {
		batchMs = 1
	}
	var out []bigraph.Delta
	var cur bigraph.Delta
	touched := make(map[[2]int]bool)
	windowEnd := int64(-1)
	flush := func() {
		if !cur.Empty() {
			out = append(out, cur)
			cur = bigraph.Delta{}
			touched = make(map[[2]int]bool)
		}
	}
	for _, ev := range s.Events {
		e := [2]int{ev.L, ev.R}
		if ev.Time >= windowEnd || touched[e] {
			flush()
			windowEnd = ev.Time + batchMs
		}
		touched[e] = true
		if ev.Add {
			cur.Add = append(cur.Add, e)
		} else {
			cur.Del = append(cur.Del, e)
		}
	}
	flush()
	return out
}
