package workload_test

import (
	"reflect"
	"testing"

	"repro/internal/bigraph"
	"repro/internal/workload"
)

func TestReplayDeterministicInSeed(t *testing.T) {
	s1 := workload.Replay(50, 40, 120, 200, 0.3, 20, 9)
	s2 := workload.Replay(50, 40, 120, 200, 0.3, 20, 9)
	if !equalEdges(s1.Base, s2.Base) || !reflect.DeepEqual(s1.Events, s2.Events) {
		t.Fatal("same seed gave different streams")
	}
	s3 := workload.Replay(50, 40, 120, 200, 0.3, 20, 10)
	if reflect.DeepEqual(s1.Events, s3.Events) {
		t.Fatal("different seeds gave identical event sequences")
	}
}

// TestReplayEventsEffective replays the stream event by event against the
// base graph: every event must be a real mutation (inserts absent edges,
// deletes present ones), timestamps must be nondecreasing, and indices in
// range — the contract that lets the exp harness assert the server's
// applied counts match the trace exactly.
func TestReplayEventsEffective(t *testing.T) {
	s := workload.Replay(30, 30, 100, 300, 0.4, 5, 3)
	g := s.Base
	last := int64(0)
	deletions := 0
	for i, ev := range s.Events {
		if ev.Time < last {
			t.Fatalf("event %d: time went backwards (%d after %d)", i, ev.Time, last)
		}
		last = ev.Time
		if ev.L < 0 || ev.L >= g.NL() || ev.R < 0 || ev.R >= g.NR() {
			t.Fatalf("event %d out of range: %+v", i, ev)
		}
		present := g.HasEdge(ev.L, g.NL()+ev.R)
		if ev.Add == present {
			t.Fatalf("event %d ineffective: add=%v but edge present=%v", i, ev.Add, present)
		}
		d := bigraph.Delta{}
		if ev.Add {
			d.Add = [][2]int{{ev.L, ev.R}}
		} else {
			d.Del = [][2]int{{ev.L, ev.R}}
			deletions++
		}
		next, eff, err := g.Apply(d)
		if err != nil || len(eff.Add)+len(eff.Del) != 1 {
			t.Fatalf("event %d: apply eff=%+v err=%v", i, eff, err)
		}
		g = next
	}
	if deletions == 0 {
		t.Fatal("40% churn produced no deletions")
	}
	if g.NumEdges() < s.Base.NumEdges()/2 {
		t.Fatalf("stream deleted below the floor: %d of %d base edges left",
			g.NumEdges(), s.Base.NumEdges())
	}
}

// TestReplayBatchesEffective: batching preserves order and the
// edge-for-edge effectiveness guarantee — no batch names the same edge
// twice, so the server-side netting of delete-then-reinsert can never
// shrink a batch's applied counts.
func TestReplayBatchesEffective(t *testing.T) {
	s := workload.Replay(30, 30, 100, 300, 0.4, 5, 3)
	batches := s.Batches(40)
	total := 0
	g := s.Base
	for bi, d := range batches {
		seen := map[[2]int]bool{}
		for _, e := range append(append([][2]int{}, d.Add...), d.Del...) {
			if seen[e] {
				t.Fatalf("batch %d names edge %v twice", bi, e)
			}
			seen[e] = true
		}
		next, eff, err := g.Apply(d)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		if len(eff.Add) != len(d.Add) || len(eff.Del) != len(d.Del) {
			t.Fatalf("batch %d not fully effective: %d+/%d- applied of %d+/%d-",
				bi, len(eff.Add), len(eff.Del), len(d.Add), len(d.Del))
		}
		total += len(d.Add) + len(d.Del)
		g = next
	}
	if total != len(s.Events) {
		t.Fatalf("batches carry %d events, stream has %d", total, len(s.Events))
	}
}
