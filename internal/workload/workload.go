// Package workload generates the evaluation inputs. The paper uses two
// families: uniform dense bipartite graphs "similar to [25]" (defect
// tolerance crossbars) for Table 4, and 30 real KONECT graphs for Tables
// 5–6. The KONECT files are not available offline, so this package
// provides, for each dataset, a seeded synthetic stand-in: a power-law
// (Chung–Lu style) bipartite graph matching the published shape (|L|,
// |R|, density) with a planted balanced biclique of the published optimum
// size. Large datasets are scaled down by a documented factor that
// preserves average degree. See EXPERIMENTS.md for the substitution map.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/bigraph"
)

// Dense returns a uniform random bipartite graph with the given side
// sizes and edge density (the Table 4 generator). Deterministic in seed.
func Dense(nl, nr int, density float64, seed int64) *bigraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < density {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

// PowerLaw returns a bipartite graph with roughly m edges whose degree
// sequences follow a power law with the given exponent (weight of rank-i
// vertex ∝ (i+1)^(−alpha); alpha around 0.5 gives the β ≈ 3 tails common
// in KONECT data). Duplicate samples are deduplicated, so the realised
// edge count can be slightly below m. Deterministic in seed.
func PowerLaw(nl, nr, m int, alpha float64, seed int64) *bigraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bigraph.NewBuilder(nl, nr)
	if nl == 0 || nr == 0 {
		return b.Build()
	}
	cumL := weightCDF(nl, alpha)
	cumR := weightCDF(nr, alpha)
	for i := 0; i < m; i++ {
		l := sampleCDF(cumL, rng)
		r := sampleCDF(cumR, rng)
		b.AddEdge(l, r)
	}
	return b.Build()
}

// weightCDF builds the cumulative distribution of (i+1)^(−alpha) weights.
func weightCDF(n int, alpha float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// sampleCDF draws an index from the cumulative distribution.
func sampleCDF(cum []float64, rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// PlantQuasi embeds a quasi-dense block into g: qL×qR random vertex pairs
// connected independently with probability p. With p chosen below the
// biclique threshold (see Dataset.Generate) the block raises the graph's
// degeneracy — so heuristic early-termination cannot fire and the
// bridging/verification machinery is exercised — without creating a
// balanced biclique larger than the planted optimum. Deterministic in
// seed.
func PlantQuasi(g *bigraph.Graph, qL, qR int, p float64, seed int64) *bigraph.Graph {
	if qL > g.NL() {
		qL = g.NL()
	}
	if qR > g.NR() {
		qR = g.NR()
	}
	if qL == 0 || qR == 0 || p <= 0 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	lefts := rng.Perm(g.NL())[:qL]
	rights := rng.Perm(g.NR())[:qR]
	b := bigraph.NewBuilder(g.NL(), g.NR())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for _, l := range lefts {
		for _, r := range rights {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

// Plant embeds a complete k×k biclique into g (returned as a new graph)
// over k random distinct vertices per side, and returns the planted
// vertex sets (side-local indices). Deterministic in seed.
func Plant(g *bigraph.Graph, k int, seed int64) (*bigraph.Graph, []int, []int) {
	if k > g.NL() || k > g.NR() {
		panic("workload: planted biclique larger than a side")
	}
	rng := rand.New(rand.NewSource(seed))
	lefts := rng.Perm(g.NL())[:k]
	rights := rng.Perm(g.NR())[:k]
	b := bigraph.NewBuilder(g.NL(), g.NR())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for _, l := range lefts {
		for _, r := range rights {
			b.AddEdge(l, r)
		}
	}
	return b.Build(), lefts, rights
}
