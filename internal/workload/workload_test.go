package workload_test

import (
	"math"
	"testing"

	"repro/internal/bigraph"
	"repro/internal/sparse"
	"repro/internal/workload"
)

func TestDenseDeterministicAndOnTarget(t *testing.T) {
	g1 := workload.Dense(60, 60, 0.8, 7)
	g2 := workload.Dense(60, 60, 0.8, 7)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("not deterministic")
	}
	got := g1.Density()
	if math.Abs(got-0.8) > 0.05 {
		t.Fatalf("density = %v, want ~0.8", got)
	}
	g3 := workload.Dense(60, 60, 0.8, 8)
	if g1.NumEdges() == g3.NumEdges() && equalEdges(g1, g3) {
		t.Fatal("different seeds gave identical graphs")
	}
}

func equalEdges(a, b *bigraph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestPowerLawShape(t *testing.T) {
	g := workload.PowerLaw(2000, 1000, 8000, 0.5, 3)
	if g.NL() != 2000 || g.NR() != 1000 {
		t.Fatal("shape wrong")
	}
	if g.NumEdges() < 6000 {
		t.Fatalf("too many duplicates: m = %d", g.NumEdges())
	}
	// Power-law: the max degree should greatly exceed the average.
	avg := 2.0 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("degree distribution too flat: max %d avg %.1f", g.MaxDegree(), avg)
	}
	// Deterministic.
	if !equalEdges(g, workload.PowerLaw(2000, 1000, 8000, 0.5, 3)) {
		t.Fatal("not deterministic")
	}
}

func TestPowerLawEmptySides(t *testing.T) {
	g := workload.PowerLaw(0, 5, 10, 0.5, 1)
	if g.NumEdges() != 0 {
		t.Fatal("edges on empty side")
	}
}

func TestPlant(t *testing.T) {
	g := workload.PowerLaw(200, 200, 400, 0.5, 5)
	planted, lefts, rights := workload.Plant(g, 6, 9)
	if len(lefts) != 6 || len(rights) != 6 {
		t.Fatal("plant sizes wrong")
	}
	bc := bigraph.Biclique{}
	for _, l := range lefts {
		bc.A = append(bc.A, planted.Left(l))
	}
	for _, r := range rights {
		bc.B = append(bc.B, planted.Right(r))
	}
	if !bc.IsBicliqueOf(planted) {
		t.Fatal("planted biclique not present")
	}
}

func TestPlantTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	workload.Plant(bigraph.FromEdges(3, 3, nil), 4, 1)
}

func TestRegistryComplete(t *testing.T) {
	if len(workload.Registry) != 30 {
		t.Fatalf("registry has %d datasets, want 30", len(workload.Registry))
	}
	tough := workload.Tough()
	if len(tough) != 12 {
		t.Fatalf("tough subset has %d datasets, want 12", len(tough))
	}
	for i, d := range tough {
		if d.DIndex != i+1 {
			t.Fatalf("tough order broken at %s: DIndex %d at position %d", d.Name, d.DIndex, i)
		}
	}
	if _, ok := workload.ByName("jester"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestScaledShapeInvariants(t *testing.T) {
	for _, d := range workload.Registry {
		nl, nr, m := d.ScaledShape(40000)
		if nl+nr > 40000+2*d.Optimum+64 {
			t.Errorf("%s: scaled total %d too large", d.Name, nl+nr)
		}
		if nl < min2(d.Optimum, d.L) || nr < min2(d.Optimum, d.R) {
			t.Errorf("%s: optimum does not fit: %dx%d opt %d", d.Name, nl, nr, d.Optimum)
		}
		if m < 0 {
			t.Errorf("%s: negative edges", d.Name)
		}
		// Average degree is preserved within a factor of ~2.
		origAvg := 2 * d.Density * float64(d.L) * float64(d.R) / float64(d.L+d.R)
		scaledAvg := 2 * float64(m) / float64(nl+nr)
		if origAvg > 1 && (scaledAvg < origAvg/2 || scaledAvg > 2.5*origAvg) {
			t.Errorf("%s: avg degree drifted: orig %.2f scaled %.2f", d.Name, origAvg, scaledAvg)
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestGenerateAndSolveSmall: end-to-end sanity on a few small datasets —
// the generated stand-in must contain at least the planted optimum.
func TestGenerateAndSolveSmall(t *testing.T) {
	for _, name := range []string{"unicodelang", "moreno-crime-crime", "escorts"} {
		d, _ := workload.ByName(name)
		g := d.Generate(8000, 1)
		res := sparse.Solve(nil, g, sparse.DefaultOptions())
		if res.Biclique.Size() < d.Optimum {
			t.Errorf("%s: solved %d < planted %d", name, res.Biclique.Size(), d.Optimum)
		}
		if !res.Biclique.IsBicliqueOf(g) {
			t.Errorf("%s: invalid witness", name)
		}
	}
}

func TestPlantQuasi(t *testing.T) {
	g := workload.PowerLaw(100, 100, 200, 0.5, 3)
	before := g.NumEdges()
	q := workload.PlantQuasi(g, 20, 20, 0.5, 7)
	if q.NumEdges() <= before {
		t.Fatalf("quasi block added no edges: %d -> %d", before, q.NumEdges())
	}
	if q.NL() != 100 || q.NR() != 100 {
		t.Fatal("shape changed")
	}
	// Clamping: requesting a block bigger than the graph must not panic.
	q2 := workload.PlantQuasi(g, 1000, 1000, 0.1, 8)
	if q2.NL() != 100 {
		t.Fatal("clamped quasi wrong")
	}
	// p <= 0 is a no-op returning the same graph.
	if got := workload.PlantQuasi(g, 10, 10, 0, 9); got != g {
		t.Fatal("zero-p quasi should return the input unchanged")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := workload.ByName("github")
	g1 := d.Generate(5000, 42)
	g2 := d.Generate(5000, 42)
	if g1.NumEdges() != g2.NumEdges() || !equalEdges(g1, g2) {
		t.Fatal("dataset generation not deterministic")
	}
	g3 := d.Generate(5000, 43)
	if equalEdges(g1, g3) {
		t.Fatal("different seeds produced identical graphs")
	}
}
