package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Route classes for request metrics. Cardinality is fixed at compile
// time so per-request accounting is an array index plus an atomic add —
// no labels, no maps, no allocation on the hot path.
const (
	routeOther = iota
	routeHealthz
	routeReadyz
	routeReplicate
	routeStats
	routeMetrics
	routeGraphs // GET /graphs (list)
	routeGraph  // /graphs/{name} (put/get/delete)
	routeEdges  // /graphs/{name}/edges
	routeExport // /graphs/{name}/export
	routeSubmit // /graphs/{name}/jobs
	routeSolve  // /graphs/{name}/solve
	routeJobs   // GET /jobs (list)
	routeJob    // /jobs/{id} (get/cancel)
	routePprof
	numRoutes
)

var routeNames = [numRoutes]string{
	"other", "healthz", "readyz", "replicate", "stats", "metrics",
	"graphs", "graph", "edges", "export", "submit", "solve", "jobs",
	"job", "pprof",
}

// routeIndex classifies a request path into one of the fixed route
// classes without allocating (suffix/prefix checks only — the mux has
// not matched yet when the middleware runs).
func routeIndex(path string) int {
	switch path {
	case "/healthz":
		return routeHealthz
	case "/readyz":
		return routeReadyz
	case "/replicate":
		return routeReplicate
	case "/stats":
		return routeStats
	case "/metrics":
		return routeMetrics
	case "/graphs":
		return routeGraphs
	case "/jobs":
		return routeJobs
	}
	switch {
	case strings.HasPrefix(path, "/graphs/"):
		switch {
		case strings.HasSuffix(path, "/edges"):
			return routeEdges
		case strings.HasSuffix(path, "/export"):
			return routeExport
		case strings.HasSuffix(path, "/jobs"):
			return routeSubmit
		case strings.HasSuffix(path, "/solve"):
			return routeSolve
		}
		return routeGraph
	case strings.HasPrefix(path, "/jobs/"):
		return routeJob
	case strings.HasPrefix(path, "/debug/pprof"):
		return routePprof
	}
	return routeOther
}

// latencyBounds are the histogram bucket upper bounds in seconds; the
// implicit final bucket is +Inf. Spanning 1ms–60s covers both metadata
// requests and long synchronous solves.
var latencyBounds = [...]float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// Metrics is the request-side counter set behind GET /metrics. All
// fields are atomics updated in place, so the instrumentation adds zero
// allocations per request; the /metrics handler pays the formatting
// cost, not the solve path.
type Metrics struct {
	inflight atomic.Int64
	// requests[route][class] counts completed requests; class is
	// status/100 clamped to 0..5 (0 = no status written).
	requests [numRoutes][6]atomic.Int64
	// Latency histogram over all requests: buckets[i] counts requests
	// with duration <= latencyBounds[i]; the last slot is +Inf.
	buckets  [len(latencyBounds) + 1]atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64

	panics         atomic.Int64
	abandonedWaits atomic.Int64
	timeouts       atomic.Int64

	// Cluster-mode counters (zero on a single node): mutations rejected
	// as addressed to the wrong shard owner, solves rejected for
	// replication lag, records and streams served over /replicate.
	misdirected      atomic.Int64
	lagRejects       atomic.Int64
	replicateRecords atomic.Int64
	replicateStreams atomic.Int64
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// observe records one completed request.
func (m *Metrics) observe(route, status int, dur time.Duration) {
	class := status / 100
	if class < 0 || class > 5 {
		class = 0
	}
	if route < 0 || route >= numRoutes {
		route = routeOther
	}
	m.requests[route][class].Add(1)
	secs := dur.Seconds()
	i := 0
	for ; i < len(latencyBounds); i++ {
		if secs <= latencyBounds[i] {
			break
		}
	}
	m.buckets[i].Add(1)
	m.count.Add(1)
	m.sumNanos.Add(int64(dur))
}

// Panics reports how many handler panics the recovery middleware
// converted into 500s.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// AbandonedWaits reports how many sync-solve handlers gave up waiting
// for a canceled job (the bounded-disconnect-wait safety valve).
func (m *Metrics) AbandonedWaits() int64 { return m.abandonedWaits.Load() }

// Requests sums completed requests on one route class across statuses.
func (m *Metrics) Requests(route int) int64 {
	var n int64
	if route < 0 || route >= numRoutes {
		return 0
	}
	for c := range m.requests[route] {
		n += m.requests[route][c].Load()
	}
	return n
}

// handleMetrics renders the Prometheus text exposition: the request
// counters above plus scheduler, store and logger gauges. Formatting
// allocates freely — only recording had to be free.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	var b bytes.Buffer

	fmt.Fprintf(&b, "# HELP mbbserved_requests_total Completed HTTP requests by route class and status class.\n")
	fmt.Fprintf(&b, "# TYPE mbbserved_requests_total counter\n")
	for route := 0; route < numRoutes; route++ {
		for class := 0; class < 6; class++ {
			if n := m.requests[route][class].Load(); n > 0 {
				fmt.Fprintf(&b, "mbbserved_requests_total{route=%q,code=\"%dxx\"} %d\n", routeNames[route], class, n)
			}
		}
	}

	fmt.Fprintf(&b, "# HELP mbbserved_request_seconds Request latency histogram over all routes.\n")
	fmt.Fprintf(&b, "# TYPE mbbserved_request_seconds histogram\n")
	var cum int64
	for i, bound := range latencyBounds {
		cum += m.buckets[i].Load()
		fmt.Fprintf(&b, "mbbserved_request_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += m.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(&b, "mbbserved_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "mbbserved_request_seconds_sum %g\n", float64(m.sumNanos.Load())/1e9)
	fmt.Fprintf(&b, "mbbserved_request_seconds_count %d\n", m.count.Load())

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("mbbserved_requests_inflight", "Requests currently being served.", m.inflight.Load())
	counter("mbbserved_panics_total", "Handler panics converted to 500s.", m.panics.Load())
	counter("mbbserved_request_timeouts_total", "Requests whose per-request timeout elapsed.", m.timeouts.Load())
	counter("mbbserved_abandoned_waits_total", "Sync-solve handlers that gave up waiting for a canceled job.", m.abandonedWaits.Load())
	counter("mbbserved_accesslog_records_total", "Access-log records accepted by the ring buffer.", s.accessLog.Logged())
	counter("mbbserved_accesslog_dropped_total", "Access-log records overwritten before the sink drained them.", s.accessLog.Dropped())

	// Scheduler: admission state and cumulative job outcomes.
	gauge("mbbserved_queue_depth", "Jobs waiting in the scheduler queue.", int64(s.sched.QueueDepth()))
	gauge("mbbserved_queue_capacity", "Scheduler queue capacity (admission bound).", int64(s.sched.QueueCapacity()))
	gauge("mbbserved_jobs_running", "Jobs currently executing on workers.", s.sched.Running())
	gauge("mbbserved_jobs_live", "Jobs not yet in a terminal state (queued + running).", s.sched.Live())
	c := s.sched.Counters()
	counter("mbbserved_jobs_submitted_total", "Jobs accepted by the scheduler.", c.Submitted)
	fmt.Fprintf(&b, "# HELP mbbserved_jobs_total Jobs finished, by terminal state.\n# TYPE mbbserved_jobs_total counter\n")
	fmt.Fprintf(&b, "mbbserved_jobs_total{state=\"done\"} %d\n", c.Done)
	fmt.Fprintf(&b, "mbbserved_jobs_total{state=\"failed\"} %d\n", c.Failed)
	fmt.Fprintf(&b, "mbbserved_jobs_total{state=\"canceled\"} %d\n", c.Canceled)

	// Store: size, mutation volume and plan-maintenance outcomes. These
	// are store-lifetime counters — deleting a graph does not rewind them.
	ss := s.store.Stats()
	gauge("mbbserved_graphs", "Graphs currently stored.", int64(s.store.Len()))
	counter("mbbserved_mutations_total", "Effective edge-mutation batches (epoch bumps).", ss.Mutations)
	counter("mbbserved_plan_builds_total", "Full planner runs.", ss.PlanBuilds)
	counter("mbbserved_plan_hits_total", "Solves that reused an already-built plan.", ss.PlanHits)
	counter("mbbserved_plan_inherits_total", "Mutations that carried the plan across unchanged.", ss.PlanReuses)
	counter("mbbserved_plan_repairs_total", "Mutations absorbed by bounded local plan repair.", ss.PlanRepairs)

	var maxEpoch uint64
	for _, gi := range s.store.List() {
		if gi.Epoch > maxEpoch {
			maxEpoch = gi.Epoch
		}
	}
	gauge("mbbserved_snapshot_epoch_max", "Highest snapshot epoch across stored graphs.", int64(maxEpoch))
	gauge("mbbserved_snapshots_live", "Snapshots the GC still sees reachable (current + pinned by jobs).", LiveSnapshots())
	gauge("mbbserved_retained_snapshots", "Snapshots held in the per-graph retention windows.", s.store.RetainedSnapshots())

	// WAL: durability-path counters, present only when a DataDir is
	// configured.
	if l := s.store.WAL(); l != nil {
		ws := l.Stats()
		counter("mbbserved_wal_appends_total", "Records appended to the write-ahead log.", ws.Appends)
		counter("mbbserved_wal_append_bytes_total", "Framed bytes appended to the write-ahead log.", ws.AppendBytes)
		counter("mbbserved_wal_fsyncs_total", "WAL fsync calls (group commits count once).", ws.Fsyncs)
		fmt.Fprintf(&b, "# HELP mbbserved_wal_fsync_seconds WAL fsync latency histogram.\n# TYPE mbbserved_wal_fsync_seconds histogram\n")
		var wcum uint64
		for i, bound := range wal.FsyncBounds {
			wcum += ws.FsyncHist[i]
			fmt.Fprintf(&b, "mbbserved_wal_fsync_seconds_bucket{le=\"%g\"} %d\n", bound, wcum)
		}
		wcum += ws.FsyncHist[len(wal.FsyncBounds)]
		fmt.Fprintf(&b, "mbbserved_wal_fsync_seconds_bucket{le=\"+Inf\"} %d\n", wcum)
		fmt.Fprintf(&b, "mbbserved_wal_fsync_seconds_sum %g\n", float64(ws.FsyncNanos)/1e9)
		fmt.Fprintf(&b, "mbbserved_wal_fsync_seconds_count %d\n", wcum)
		gauge("mbbserved_wal_segments", "Live WAL segment files on disk.", ws.Segments)
		counter("mbbserved_wal_checkpoints_total", "Checkpoints written to the WAL.", ws.Checkpoints)
		counter("mbbserved_wal_segments_dropped_total", "Segment files removed by compaction.", ws.SegmentsDropped)
		age := float64(0)
		if ws.LastCheckpointUnix > 0 {
			age = time.Since(time.Unix(0, ws.LastCheckpointUnix)).Seconds()
		}
		fmt.Fprintf(&b, "# HELP mbbserved_wal_checkpoint_age_seconds Seconds since the last checkpoint (0 if none yet).\n# TYPE mbbserved_wal_checkpoint_age_seconds gauge\nmbbserved_wal_checkpoint_age_seconds %g\n", age)
	}

	// Cluster: ownership enforcement, lag-bounded reads and replication
	// stream state. The stream counters exist on any worker; the status
	// block needs an installed ClusterInfo.
	counter("mbbserved_misdirected_total", "Mutations rejected with 421 as addressed to the wrong shard owner.", m.misdirected.Load())
	counter("mbbserved_lag_rejects_total", "Solves rejected with 503 because replication lag exceeded the bound.", m.lagRejects.Load())
	counter("mbbserved_replicate_records_total", "WAL records served over /replicate streams.", m.replicateRecords.Load())
	gauge("mbbserved_replicate_streams", "Open /replicate streams (replicas tailing this worker).", m.replicateStreams.Load())
	if ci := s.cluster; ci != nil {
		cs := ci.Status()
		gauge("mbbserved_cluster_peers", "Workers on the cluster ring, self included.", int64(cs.Peers))
		gauge("mbbserved_replication_streams", "Replication streams this worker has connected to peers.", int64(cs.Streams))
		synced := int64(0)
		if cs.Synced {
			synced = 1
		}
		gauge("mbbserved_replication_synced", "1 once every replication stream finished its initial catch-up.", synced)
		fmt.Fprintf(&b, "# HELP mbbserved_replication_lag_seconds Worst replication lag behind any peer's delta stream.\n# TYPE mbbserved_replication_lag_seconds gauge\nmbbserved_replication_lag_seconds %g\n", cs.MaxLag.Seconds())
		counter("mbbserved_replication_applied_total", "Records applied from peers' replication streams.", cs.Applied)
		counter("mbbserved_replication_resyncs_total", "Full replication stream restarts (epoch gaps, log resets).", cs.Resyncs)
	}
	ready := int64(0)
	if s.readyStatus().Ready {
		ready = 1
	}
	gauge("mbbserved_ready", "1 while /readyz reports ready.", ready)

	draining := int64(0)
	if s.Draining() {
		draining = 1
	}
	gauge("mbbserved_draining", "1 while the server is draining (rejecting new jobs).", draining)
	fmt.Fprintf(&b, "# HELP mbbserved_uptime_seconds Seconds since process start.\n# TYPE mbbserved_uptime_seconds gauge\nmbbserved_uptime_seconds %g\n", time.Since(s.started).Seconds())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(b.Bytes())
}
