package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/mbb"
)

// cancelErrSolver registers (once) a solver that waits for cancellation
// and then surfaces it as an error, the way a solver path that checks
// its context mid-search would.
var cancelErrSolver sync.Once

func registerCancelErrSolver(t *testing.T) {
	t.Helper()
	cancelErrSolver.Do(func() {
		err := mbb.Register(mbb.SolverSpec{
			Name: "testCancelErr",
			Doc:  "test-only: blocks until stopped, then returns context.Canceled",
			Run: func(ex *core.Exec, g *mbb.Graph, opt *mbb.Options) (core.Result, error) {
				for !ex.ShouldStop() {
					time.Sleep(time.Millisecond)
				}
				return core.Result{}, context.Canceled
			},
		})
		if err != nil {
			t.Fatalf("register test solver: %v", err)
		}
	})
}

// TestCanceledJobSurfacingCanceledError is the regression test for the
// canceled-job misclassification: when cancellation makes the solver
// path return context.Canceled as an error, the job must land in
// JobCanceled — not JobFailed with a spurious error message.
func TestCanceledJobSurfacingCanceledError(t *testing.T) {
	registerCancelErrSolver(t)
	srv, err := New(Options{Workers: 1, QueueCap: 4, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sg, err := srv.Store().Put("g", mustParse(t, k33minus))
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Scheduler().Submit(sg, SolveRequest{Solver: "testCancelErr", Timeout: "1m"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is actually running so the cancel exercises the
	// running-job path (a queued job is finished directly by Cancel).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if job.Info().State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", job.Info())
		}
		time.Sleep(time.Millisecond)
	}
	srv.Scheduler().Cancel(job.ID())
	<-job.Done()
	info := job.Info()
	if info.State != JobCanceled {
		t.Fatalf("job state %q (error %q), want %q", info.State, info.Error, JobCanceled)
	}
	if info.Error != "" {
		t.Fatalf("canceled job carries error %q, want none", info.Error)
	}
}
