package server

import (
	"context"
	"log"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Middleware wraps an http.Handler. The server composes its stack with
// Chain; each layer is independently testable and reusable.
type Middleware func(http.Handler) http.Handler

// Chain wraps h in mw, outermost first: Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFromContext returns the request id the RequestID middleware
// stored, or "" outside an instrumented request.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ridPrefix makes request ids unique across daemon restarts (the
// counter alone would repeat); base36 of the start time keeps it short.
var ridPrefix = strconv.FormatInt(time.Now().UnixNano()%(36*36*36*36*36*36), 36)

var ridCounter atomic.Int64

// validRequestID accepts client-supplied ids that are short and
// printable-ASCII without spaces or quotes — anything else is replaced,
// not echoed, so a hostile header cannot corrupt logs or responses.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// RequestID assigns every request an id — the inbound X-Request-Id when
// it is sane (so callers can correlate across services), a fresh
// "<start>-<n>" otherwise — echoes it in the X-Request-Id response
// header, and stores it in the context for the access log and job info.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = ridPrefix + "-" + strconv.FormatInt(ridCounter.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// statusWriter captures the response status and byte count for the
// metrics and access-log layer. Instances recycle through a sync.Pool
// so instrumentation adds no per-request allocation.
type statusWriter struct {
	http.ResponseWriter
	status  int
	written int64
}

func (sw *statusWriter) reset(w http.ResponseWriter) {
	sw.ResponseWriter = w
	sw.status = 0
	sw.written = 0
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.written += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming handlers (/replicate) can
// push frames through the instrumented writer as they are produced.
// The embedded interface would otherwise hide the underlying Flush from
// type assertions.
func (sw *statusWriter) Flush() {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Wrote reports whether the handler committed a status (used by Recover
// to decide whether a 500 can still be written).
func (sw *statusWriter) Wrote() bool { return sw.status != 0 }

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

// Instrument is the metrics + access-log layer: it wraps the response
// writer to capture status and size, times the request, bumps the
// atomic counters and appends one record to the ring logger. The whole
// layer adds zero allocations per request (TestAllocBudgets pins it).
func Instrument(m *Metrics, accessLog *RingLogger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := statusWriterPool.Get().(*statusWriter)
			sw.reset(w)
			m.inflight.Add(1)
			start := time.Now()
			next.ServeHTTP(sw, r)
			dur := time.Since(start)
			m.inflight.Add(-1)
			status := sw.status
			if status == 0 {
				status = http.StatusOK // handler returned without writing
			}
			written := sw.written
			sw.reset(nil)
			statusWriterPool.Put(sw)
			m.observe(routeIndex(r.URL.Path), status, dur)
			if accessLog != nil {
				accessLog.Record(RequestIDFromContext(r.Context()), r.Method, r.URL.Path, status, written, dur)
			}
		})
	}
}

// recoverLog is swappable so the panic-recovery test does not spam the
// test log with intentional stack traces.
var recoverLog = log.New(os.Stderr, "", log.LstdFlags)

// Recover converts a handler panic into a 500 (when no status was
// committed yet), a counter bump and a logged stack trace, so one bad
// request cannot take down the daemon or vanish without a trace.
// http.ErrAbortHandler keeps its net/http abort semantics.
func Recover(m *Metrics) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				m.panics.Add(1)
				recoverLog.Printf("server: panic serving %s %s (request %s): %v\n%s",
					r.Method, r.URL.Path, RequestIDFromContext(r.Context()), p, debug.Stack())
				if ws, ok := w.(interface{ Wrote() bool }); !ok || !ws.Wrote() {
					writeError(w, http.StatusInternalServerError, "internal server error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// Timeout bounds every request's context at d (0 or negative disables
// the layer). Handlers already honor their context — a solve past the
// deadline cancels its job like a client disconnect — so this is the
// blanket hygiene bound, not the solve budget (jobs have their own).
// Note /debug/pprof/profile?seconds=N needs d above N (or 0).
func Timeout(d time.Duration, m *Metrics) Middleware {
	if d <= 0 {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer func() {
				if ctx.Err() == context.DeadlineExceeded {
					m.timeouts.Add(1)
				}
				cancel()
			}()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
