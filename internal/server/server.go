package server

import (
	"net/http"
	"runtime"
	"time"
)

// Options configures a Server. Zero values pick the defaults below.
type Options struct {
	// Workers is the solve worker pool size — the server-wide
	// concurrent-solve cap. Default: GOMAXPROCS.
	Workers int
	// QueueCap is the job queue depth — the admission bound beyond the
	// running solves. Default 256.
	QueueCap int
	// MaxUploadBytes caps a graph upload body. Default 64 MiB.
	MaxUploadBytes int64
	// MaxVertices caps the vertex count of any uploaded graph (parsing
	// rejects larger inputs before allocating). Default 10M; negative
	// means unlimited.
	MaxVertices int
	// MaxGraphs caps the store size. Default 1024; negative means
	// unlimited.
	MaxGraphs int
	// DefaultTimeout fills a job's unset timeout. Default 30s; negative
	// means none (the MaxTimeout clamp still applies).
	DefaultTimeout time.Duration
	// MaxTimeout caps every job's timeout, including explicit "0"
	// (unlimited) requests. Default 10m; negative means no cap.
	MaxTimeout time.Duration
	// MaxJobWorkers clamps the per-job goroutine budget a request may
	// ask for. Default 4×GOMAXPROCS; negative means no cap.
	MaxJobWorkers int
	// StoreDir, when non-empty, is preloaded into the store at startup
	// (see Store.LoadDir).
	StoreDir string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.MaxVertices == 0 {
		o.MaxVertices = 10_000_000
	} else if o.MaxVertices < 0 {
		o.MaxVertices = 0
	}
	if o.MaxGraphs == 0 {
		o.MaxGraphs = 1024
	} else if o.MaxGraphs < 0 {
		o.MaxGraphs = 0
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	} else if o.DefaultTimeout < 0 {
		// Like the neighbouring caps, negative means "none": jobs without
		// an explicit timeout fall through to the MaxTimeout clamp instead
		// of failing per-request validation with a negative default.
		o.DefaultTimeout = 0
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 10 * time.Minute
	} else if o.MaxTimeout < 0 {
		o.MaxTimeout = 0
	}
	if o.MaxJobWorkers == 0 {
		o.MaxJobWorkers = 4 * runtime.GOMAXPROCS(0)
	} else if o.MaxJobWorkers < 0 {
		o.MaxJobWorkers = 0
	}
	return o
}

// Server wires the graph store, the job scheduler and the HTTP API. Use
// New, mount Handler on an http.Server, and Close on shutdown.
type Server struct {
	opt     Options
	store   *Store
	sched   *Scheduler
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server and preloads Options.StoreDir when set.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:     opt,
		store:   NewStore(opt.MaxVertices, opt.MaxGraphs),
		sched:   NewScheduler(opt.Workers, opt.QueueCap, opt.DefaultTimeout, opt.MaxTimeout, opt.MaxJobWorkers),
		started: time.Now(),
	}
	s.mux = s.routes()
	if opt.StoreDir != "" {
		if _, err := s.store.LoadDir(opt.StoreDir); err != nil {
			s.sched.Close()
			return nil, err
		}
	}
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the graph store (used by preloading and tests).
func (s *Server) Store() *Store { return s.store }

// Scheduler exposes the job scheduler (used by tests and servebench).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Close cancels all jobs and stops the workers. The HTTP listener is the
// caller's to shut down (http.Server.Shutdown) before calling Close.
func (s *Server) Close() { s.sched.Close() }
