package server

import (
	"context"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/wal"
)

// Options configures a Server. Zero values pick the defaults below.
type Options struct {
	// Workers is the solve worker pool size — the server-wide
	// concurrent-solve cap. Default: GOMAXPROCS.
	Workers int
	// QueueCap is the job queue depth — the admission bound beyond the
	// running solves. Default 256.
	QueueCap int
	// MaxUploadBytes caps a graph upload body. Default 64 MiB.
	MaxUploadBytes int64
	// MaxVertices caps the vertex count of any uploaded graph (parsing
	// rejects larger inputs before allocating). Default 10M; negative
	// means unlimited.
	MaxVertices int
	// MaxGraphs caps the store size. Default 1024; negative means
	// unlimited.
	MaxGraphs int
	// DefaultTimeout fills a job's unset timeout. Default 30s; negative
	// means none (the MaxTimeout clamp still applies).
	DefaultTimeout time.Duration
	// MaxTimeout caps every job's timeout, including explicit "0"
	// (unlimited) requests. Default 10m; negative means no cap.
	MaxTimeout time.Duration
	// MaxJobWorkers clamps the per-job goroutine budget a request may
	// ask for. Default 4×GOMAXPROCS; negative means no cap.
	MaxJobWorkers int
	// StoreDir, when non-empty, is preloaded into the store at startup
	// (see Store.LoadDir). Unparsable files are logged and skipped.
	StoreDir string
	// DataDir, when non-empty, makes the store durable: a write-ahead
	// log under this directory records every upload, mutation and
	// delete, and New replays it before the server accepts traffic.
	DataDir string
	// WALSync is the append durability policy for DataDir: "always"
	// (default — group-commit fsync before a write returns), "interval"
	// (background fsync every WALSyncInterval) or "off".
	WALSync string
	// WALSyncInterval is the flush period under WALSync "interval".
	// Default 100ms.
	WALSyncInterval time.Duration
	// WALSegmentBytes is the segment rotation threshold. Default 64 MiB.
	WALSegmentBytes int64
	// CheckpointEvery checkpoints and compacts the WAL in the background
	// after this many appended records. Default 4096; negative disables
	// automatic checkpoints.
	CheckpointEvery int
	// RetainEpochs is the per-graph snapshot retention window: how many
	// trailing epochs stay resolvable for ?epoch=E solves and exports.
	// Default 1 (current only).
	RetainEpochs int
	// WarmRecovery builds each recovered graph's plan eagerly during
	// replay, so replayed deltas exercise the repair path and the first
	// solve after a restart finds the plan warm. Costs planner time at
	// boot.
	WarmRecovery bool
	// RequestTimeout bounds every request's context (the blanket
	// hygiene timeout, distinct from per-job solve budgets). Default 0:
	// disabled.
	RequestTimeout time.Duration
	// MaxReplicaLag bounds how far behind its owner's delta stream a
	// replica may be while still answering solves; beyond it, replica
	// solves 503 with Retry-After instead of silently serving a stale
	// epoch, and /readyz reports not ready. Only consulted when a
	// ClusterInfo is installed. Default 5s; negative means unbounded.
	MaxReplicaLag time.Duration
	// CancelWait bounds how long a synchronous solve handler waits for
	// its job after the client disconnected and the job was canceled. A
	// wedged solver then costs an abandoned-wait log line and counter
	// bump instead of a goroutine pinned forever. Default 30s; negative
	// means wait without bound (shutdown still unblocks the handler).
	CancelWait time.Duration
	// AccessLog receives structured access-log lines through the
	// non-blocking ring buffer; nil discards them (they are still
	// counted in /metrics).
	AccessLog io.Writer
	// AccessLogCap is the ring capacity in records. Default 4096.
	AccessLogCap int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.MaxVertices == 0 {
		o.MaxVertices = 10_000_000
	} else if o.MaxVertices < 0 {
		o.MaxVertices = 0
	}
	if o.MaxGraphs == 0 {
		o.MaxGraphs = 1024
	} else if o.MaxGraphs < 0 {
		o.MaxGraphs = 0
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 30 * time.Second
	} else if o.DefaultTimeout < 0 {
		// Like the neighbouring caps, negative means "none": jobs without
		// an explicit timeout fall through to the MaxTimeout clamp instead
		// of failing per-request validation with a negative default.
		o.DefaultTimeout = 0
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 10 * time.Minute
	} else if o.MaxTimeout < 0 {
		o.MaxTimeout = 0
	}
	if o.MaxJobWorkers == 0 {
		o.MaxJobWorkers = 4 * runtime.GOMAXPROCS(0)
	} else if o.MaxJobWorkers < 0 {
		o.MaxJobWorkers = 0
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.WALSync == "" {
		o.WALSync = "always"
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 4096
	} else if o.CheckpointEvery < 0 {
		o.CheckpointEvery = 0
	}
	if o.RetainEpochs < 1 {
		o.RetainEpochs = 1
	}
	if o.CancelWait == 0 {
		o.CancelWait = 30 * time.Second
	} else if o.CancelWait < 0 {
		o.CancelWait = 0
	}
	if o.MaxReplicaLag == 0 {
		o.MaxReplicaLag = 5 * time.Second
	} else if o.MaxReplicaLag < 0 {
		o.MaxReplicaLag = 0
	}
	if o.AccessLogCap <= 0 {
		o.AccessLogCap = 4096
	}
	return o
}

// Server wires the graph store, the job scheduler, the middleware stack
// and the HTTP API. Use New, mount Handler on an http.Server, and Close
// on shutdown; BeginDrain + WaitIdle in between give a graceful drain.
type Server struct {
	opt       Options
	store     *Store
	sched     *Scheduler
	metrics   *Metrics
	accessLog *RingLogger
	handler   http.Handler
	started   time.Time
	recovered RecoverStats
	preload   LoadReport
	// cluster is the worker's view of its cluster (nil = single node).
	// Written once by SetCluster before the listener opens; handlers
	// read it without synchronization.
	cluster ClusterInfo

	closeOnce sync.Once
	closing   chan struct{} // closed when Close starts: unblocks bounded waits
}

// New builds a Server. When Options.DataDir is set it recovers the
// durable state from the write-ahead log before anything can observe
// the store; Options.StoreDir (if any) is preloaded afterwards, so
// preloaded uploads are themselves logged. Recovery details land in
// RecoveredStats.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:       opt,
		store:     NewStore(opt.MaxVertices, opt.MaxGraphs),
		sched:     NewScheduler(opt.Workers, opt.QueueCap, opt.DefaultTimeout, opt.MaxTimeout, opt.MaxJobWorkers),
		metrics:   NewMetrics(),
		accessLog: NewRingLogger(opt.AccessLog, opt.AccessLogCap),
		started:   time.Now(),
		closing:   make(chan struct{}),
	}
	s.store.SetRetainEpochs(opt.RetainEpochs)
	s.store.SetCheckpointEvery(opt.CheckpointEvery)
	// Outermost first: ids exist before anything observes the request,
	// Instrument sees the final status of everything inside it
	// (including panics Recover turned into 500s), and the timeout only
	// constrains the handler proper.
	s.handler = Chain(s.routes(),
		RequestID,
		Instrument(s.metrics, s.accessLog),
		Recover(s.metrics),
		Timeout(opt.RequestTimeout, s.metrics),
	)
	fail := func(err error) (*Server, error) {
		s.sched.Close()
		s.accessLog.Close()
		_ = s.store.CloseWAL()
		return nil, err
	}
	if opt.DataDir != "" {
		policy, err := wal.ParseSyncPolicy(opt.WALSync)
		if err != nil {
			return fail(err)
		}
		rs, err := s.store.OpenWAL(opt.DataDir, wal.Options{
			Sync:         policy,
			SyncInterval: opt.WALSyncInterval,
			SegmentBytes: opt.WALSegmentBytes,
		}, opt.WarmRecovery)
		if err != nil {
			return fail(err)
		}
		s.recovered = rs
	}
	if opt.StoreDir != "" {
		rep, err := s.store.LoadDir(opt.StoreDir)
		if err != nil {
			return fail(err)
		}
		s.preload = rep
	}
	return s, nil
}

// RecoveredStats reports what WAL recovery replayed at startup (zero
// without a DataDir).
func (s *Server) RecoveredStats() RecoverStats { return s.recovered }

// PreloadReport reports the StoreDir preload outcome (zero without a
// StoreDir).
func (s *Server) PreloadReport() LoadReport { return s.preload }

// Handler returns the HTTP API behind the full middleware stack.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the graph store (used by preloading and tests).
func (s *Server) Store() *Store { return s.store }

// Scheduler exposes the job scheduler (used by tests and servebench).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics exposes the request counters (used by tests and mbbsoak).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain stops admitting solve jobs — submissions get ErrDraining
// (HTTP 503 + Retry-After) — while everything already queued or running
// keeps going and read endpoints stay live. Call WaitIdle to learn when
// in-flight work has finished, then Close. Idempotent.
func (s *Server) BeginDrain() { s.sched.Drain() }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.sched.Draining() }

// WaitIdle blocks until no job is queued or running, or ctx expires.
func (s *Server) WaitIdle(ctx context.Context) error { return s.sched.WaitIdle(ctx) }

// Close cancels all jobs, stops the workers, flushes the access log and
// closes the WAL (final fsync included). The HTTP listener is the
// caller's to shut down (http.Server.Shutdown) before calling Close.
// Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.sched.Close()
	s.accessLog.Close()
	if err := s.store.CloseWAL(); err != nil {
		log.Printf("server: close wal: %v", err)
	}
}
