package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bigraph"
	"repro/internal/wal"
)

// RecoverStats reports what a WAL recovery reconstructed.
type RecoverStats struct {
	wal.ReplayStats
	Graphs        int // graphs live after replay
	Puts          int // full uploads replayed
	Deltas        int // mutations replayed through Graph.Apply
	Snaps         int // checkpoint snapshots that established state
	PlanWarmed    int // plans built eagerly during warm recovery
	PlansCarried  int // deltas whose plan was inherited or repaired in replay
	PlansRebuilt  int // deltas that invalidated the plan (left for lazy rebuild)
	SkippedStale  int // records ignored as older than reconstructed state
	TombstonedFor int // records ignored for deleted generations
}

// replayer folds WAL records into a Store. Replay is single-threaded and
// runs strictly before the store serves traffic, so it writes the graph
// map under the store lock only for form's sake.
//
// Correctness rests on two invariants of the append side:
//   - per graph, delta records appear in epoch order (Mutate appends
//     while holding sg.mu), and
//   - a checkpoint snapshot record is appended under the same sg.mu, so
//     every later delta record for that graph has epoch > the snapshot's.
//
// Generation ids resolve the remaining ambiguity: a record whose gen
// does not match the reconstructed incarnation of its name belongs to a
// replaced or deleted predecessor and is skipped.
type replayer struct {
	s     *Store
	warm  bool
	stats RecoverStats
	// tombs records the highest generation deleted per name, so a
	// checkpoint snapshot emitted concurrently with the delete cannot
	// resurrect the graph.
	tombs map[string]uint64
}

func (r *replayer) bumpGen(gen uint64) {
	if gen > r.s.gen.Load() {
		r.s.gen.Store(gen)
	}
}

// install publishes a graph reconstructed from a full-graph record (Put
// or checkpoint snapshot) as the named graph's state.
func (r *replayer) install(name string, gen, epoch uint64, g *bigraph.Graph) {
	s := r.s
	sg := &StoredGraph{name: name, shared: &s.counters, st: s, gen: gen}
	snap := trackSnapshot(&Snapshot{sg: sg, g: g, epoch: epoch, at: time.Now()})
	sg.publish(snap)
	s.mu.Lock()
	s.graphs[name] = sg
	s.mu.Unlock()
	if r.warm {
		if _, _, err := snap.Plan(); err == nil {
			r.stats.PlanWarmed++
		}
	}
}

func (r *replayer) apply(rec wal.Record) error {
	s := r.s
	switch rec.Type {
	case wal.RecCheckpointEnd:
		return nil

	case wal.RecPut:
		r.bumpGen(rec.Gen)
		if tg, ok := r.tombs[rec.Name]; ok && tg < rec.Gen {
			delete(r.tombs, rec.Name)
		}
		if sg, ok := s.graphs[rec.Name]; ok && sg.gen > rec.Gen {
			// A later incarnation was already established by a checkpoint
			// snapshot that replayed before this older put.
			r.stats.SkippedStale++
			return nil
		}
		g, err := bigraph.UnmarshalGraph(rec.Payload)
		if err != nil {
			return err
		}
		r.install(rec.Name, rec.Gen, 0, g)
		r.stats.Puts++
		return nil

	case wal.RecDelete:
		r.bumpGen(rec.Gen)
		if tg, ok := r.tombs[rec.Name]; !ok || tg < rec.Gen {
			r.tombs[rec.Name] = rec.Gen
		}
		if sg, ok := s.graphs[rec.Name]; ok && sg.gen == rec.Gen {
			s.mu.Lock()
			delete(s.graphs, rec.Name)
			s.mu.Unlock()
		}
		return nil

	case wal.RecDelta:
		sg, ok := s.graphs[rec.Name]
		if !ok || sg.gen != rec.Gen {
			// Addressed to a deleted or replaced incarnation, or to
			// history wholly behind a compacted checkpoint.
			r.stats.SkippedStale++
			return nil
		}
		old := sg.cur.Load()
		if rec.Epoch <= old.epoch {
			// Already covered by a checkpoint snapshot at a later epoch.
			r.stats.SkippedStale++
			return nil
		}
		if rec.Epoch != old.epoch+1 {
			return fmt.Errorf("epoch gap: graph at %d, delta for %d", old.epoch, rec.Epoch)
		}
		d, err := bigraph.UnmarshalDelta(rec.Payload)
		if err != nil {
			return err
		}
		g2, eff, err := old.g.Apply(d)
		if err != nil {
			return err
		}
		if eff.Empty() {
			// Only effective deltas are ever logged; an ineffective one
			// means the graph state diverged from the log.
			return errors.New("logged delta had no effect on the reconstructed graph")
		}
		snap := trackSnapshot(&Snapshot{sg: sg, g: g2, epoch: rec.Epoch, at: time.Now()})
		// Same maintenance path as a live mutation, so recovery lands
		// warm: plans repair across insertion batches and carry across
		// deletions instead of forcing full rebuilds. An invalidated
		// plan is left unbuilt for the first solve to rebuild lazily —
		// replay never blocks on the planner.
		if carryPlan(sg, old, snap, eff, nil) {
			r.stats.PlansRebuilt++
		} else if out := snap.planVal.Load(); out != nil {
			r.stats.PlansCarried++
		}
		sg.publish(snap)
		sg.mutations.Add(1)
		if sg.shared != nil {
			sg.shared.mutations.Add(1)
		}
		r.stats.Deltas++
		return nil

	case wal.RecGraphSnap:
		r.bumpGen(rec.Gen)
		if tg, ok := r.tombs[rec.Name]; ok && tg >= rec.Gen {
			// Snapshot of a generation that was deleted; the delete record
			// is authoritative (it was appended under the store lock).
			r.stats.TombstonedFor++
			return nil
		}
		if sg, ok := s.graphs[rec.Name]; ok {
			if sg.gen > rec.Gen || (sg.gen == rec.Gen && sg.cur.Load().epoch >= rec.Epoch) {
				// State already reconstructed past this snapshot (the
				// deltas it summarizes replayed from an uncompacted
				// prefix, or a newer incarnation exists).
				r.stats.SkippedStale++
				return nil
			}
		}
		g, err := bigraph.UnmarshalGraph(rec.Payload)
		if err != nil {
			return err
		}
		r.install(rec.Name, rec.Gen, rec.Epoch, g)
		r.stats.Snaps++
		return nil

	default:
		return fmt.Errorf("unhandled record type %d", rec.Type)
	}
}

// OpenWAL attaches a write-ahead log at dir to the store, replaying any
// durable history into it first: checkpoints and uploads re-parse
// through the binary codec, deltas re-apply through Graph.Apply and the
// plan-maintenance path, epochs land exactly where they were. When warm
// is set, plans are built eagerly for every full-graph record so the
// replayed deltas exercise repair instead of starting cold.
//
// Replay finishes before the first new record can be appended, and every
// graph the store already holds (there should be none) is untouched.
// After OpenWAL returns, Put/Mutate/Delete are durable per the log's
// sync policy, and Server.Close (via CloseWAL) must run to release it.
func (s *Store) OpenWAL(dir string, opt wal.Options, warm bool) (RecoverStats, error) {
	if s.wal != nil {
		return RecoverStats{}, errors.New("server: store already has a WAL")
	}
	r := &replayer{s: s, warm: warm, tombs: make(map[string]uint64)}
	l, rs, err := wal.Open(dir, opt, r.apply)
	r.stats.ReplayStats = rs
	if err != nil {
		return r.stats, err
	}
	s.wal = l
	s.mu.RLock()
	r.stats.Graphs = len(s.graphs)
	s.mu.RUnlock()
	return r.stats, nil
}
