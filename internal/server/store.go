// Package server is the serving layer of the engine: a named graph
// store with cached reduce-and-conquer plans, a bounded job scheduler
// running solves on per-job execution contexts, and the HTTP JSON
// handlers that cmd/mbbserved exposes. The pipeline per query is
//
//	store (parsed graph) → cached plan (τ, reduction, components) →
//	scheduler (bounded workers) → core.Exec (budget, cancellation)
//
// so a long-running daemon pays for parsing and reduction once per graph
// instead of once per request.
package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigraph"
	"repro/mbb"
)

// GraphFormat selects an upload parser.
type GraphFormat string

const (
	// FormatEdgeList is the repo's text edge-list format ("nL nR m"
	// header, 0-based "l r" lines) parsed by bigraph.Read.
	FormatEdgeList GraphFormat = "edgelist"
	// FormatKONECT is the KONECT out.* format (1-based ids, optional
	// "% m nL nR" size hint) parsed by bigraph.ReadKONECT.
	FormatKONECT GraphFormat = "konect"
)

// ParseFormat resolves a ?format= value; the empty string means edgelist.
func ParseFormat(s string) (GraphFormat, error) {
	switch strings.ToLower(s) {
	case "", "edgelist", "edge-list", "text":
		return FormatEdgeList, nil
	case "konect", "out":
		return FormatKONECT, nil
	}
	return "", fmt.Errorf("unknown graph format %q (want edgelist or konect)", s)
}

// StoredGraph is one named graph plus its lazily built, cached plan. The
// graph and the plan are immutable; the plan is built at most once (the
// first planner-backed solve pays for it, every later one reuses it).
type StoredGraph struct {
	name     string
	g        *bigraph.Graph
	loadedAt time.Time

	planOnce sync.Once
	// planVal publishes the build outcome atomically: concurrent readers
	// (Info, from the graph/stats handlers) either see nil — build not
	// finished — or the complete outcome, never a half-written pair.
	planVal    atomic.Pointer[planOutcome]
	planNanos  atomic.Int64 // wall time of the one plan build
	planBuilds atomic.Int64 // how many times the plan was computed (stays ≤ 1)
	planHits   atomic.Int64 // how many solves reused the cached plan
}

// planOutcome is the immutable result of the one plan build.
type planOutcome struct {
	plan *mbb.Plan
	err  error
}

// Name returns the store key.
func (sg *StoredGraph) Name() string { return sg.name }

// Graph returns the parsed graph.
func (sg *StoredGraph) Graph() *bigraph.Graph { return sg.g }

// Plan returns the cached reduce-and-conquer plan, building it on first
// use; built reports whether this call performed the build (false means
// a cache hit). The build runs detached from any request context: a
// client that gives up must not poison the cache for everyone after it.
func (sg *StoredGraph) Plan() (plan *mbb.Plan, built bool, err error) {
	sg.planOnce.Do(func() {
		built = true
		start := time.Now()
		sg.planBuilds.Add(1)
		p, perr := mbb.PlanContext(context.Background(), sg.g)
		sg.planNanos.Store(int64(time.Since(start)))
		sg.planVal.Store(&planOutcome{plan: p, err: perr})
	})
	out := sg.planVal.Load() // non-nil: Do returns only after the build stored it
	if out.err == nil && !built {
		sg.planHits.Add(1)
	}
	return out.plan, built, out.err
}

// PlanBuilds reports how many times the plan was computed — the
// amortization invariant the e2e smoke asserts (it must stay ≤ 1 no
// matter how many solves ran).
func (sg *StoredGraph) PlanBuilds() int64 { return sg.planBuilds.Load() }

// GraphInfo is the JSON view of a stored graph.
type GraphInfo struct {
	Name       string  `json:"name"`
	NL         int     `json:"nl"`
	NR         int     `json:"nr"`
	Edges      int     `json:"edges"`
	Density    float64 `json:"density"`
	LoadedAt   string  `json:"loaded_at"`
	PlanCached bool    `json:"plan_cached"`
	PlanBuilds int64   `json:"plan_builds"`
	PlanHits   int64   `json:"plan_hits"`
	PlanMillis float64 `json:"plan_millis,omitempty"`
	SeedTau    int     `json:"tau,omitempty"`
	Peeled     int     `json:"peeled,omitempty"`
	Components int     `json:"components,omitempty"`
}

// Info returns the JSON view, including the cached plan's statistics
// once it exists.
func (sg *StoredGraph) Info() GraphInfo {
	info := GraphInfo{
		Name:       sg.name,
		NL:         sg.g.NL(),
		NR:         sg.g.NR(),
		Edges:      sg.g.NumEdges(),
		Density:    sg.g.Density(),
		LoadedAt:   sg.loadedAt.UTC().Format(time.RFC3339),
		PlanBuilds: sg.planBuilds.Load(),
		PlanHits:   sg.planHits.Load(),
	}
	if out := sg.planVal.Load(); out != nil {
		info.PlanMillis = float64(sg.planNanos.Load()) / 1e6
		if out.err == nil {
			info.PlanCached = true
			info.SeedTau = out.plan.SeedTau()
			info.Peeled = out.plan.Peeled()
			info.Components = out.plan.Components()
		}
	}
	return info
}

// nameRe bounds graph names to URL-safe tokens.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Store is the named graph store. All methods are safe for concurrent
// use; graphs are immutable once stored, so readers never block solvers.
type Store struct {
	mu        sync.RWMutex
	graphs    map[string]*StoredGraph
	maxVerts  int // per-graph vertex cap for untrusted uploads, 0 = unlimited
	maxGraphs int // store capacity, 0 = unlimited
}

// NewStore returns an empty store. maxVerts caps the vertex count of any
// parsed upload (0 = unlimited); maxGraphs caps how many graphs the
// store holds (0 = unlimited).
func NewStore(maxVerts, maxGraphs int) *Store {
	return &Store{graphs: make(map[string]*StoredGraph), maxVerts: maxVerts, maxGraphs: maxGraphs}
}

// Parse decodes r in the given format, honouring the store's vertex cap.
func (s *Store) Parse(r io.Reader, format GraphFormat) (*bigraph.Graph, error) {
	switch format {
	case FormatKONECT:
		return bigraph.ReadKONECTLimited(r, s.maxVerts)
	default:
		return bigraph.ReadLimited(r, s.maxVerts)
	}
}

// Put stores g under name, replacing any previous graph of that name
// (and its cached plan). It rejects invalid names and a full store.
func (s *Store) Put(name string, g *bigraph.Graph) (*StoredGraph, error) {
	if !nameRe.MatchString(name) {
		return nil, fmt.Errorf("invalid graph name %q (want [A-Za-z0-9._-], max 128 chars)", name)
	}
	sg := &StoredGraph{name: name, g: g, loadedAt: time.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, replacing := s.graphs[name]; !replacing && s.maxGraphs > 0 && len(s.graphs) >= s.maxGraphs {
		return nil, fmt.Errorf("graph store is full (%d graphs)", s.maxGraphs)
	}
	s.graphs[name] = sg
	return sg, nil
}

// Get returns the named graph.
func (s *Store) Get(name string) (*StoredGraph, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.graphs[name]
	return sg, ok
}

// Delete removes the named graph. Jobs already holding the StoredGraph
// keep solving against it; the memory is reclaimed once they finish.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.graphs[name]; !ok {
		return false
	}
	delete(s.graphs, name)
	return true
}

// List returns every stored graph's info, sorted by name.
func (s *Store) List() []GraphInfo {
	s.mu.RLock()
	sgs := make([]*StoredGraph, 0, len(s.graphs))
	for _, sg := range s.graphs {
		sgs = append(sgs, sg)
	}
	s.mu.RUnlock()
	sort.Slice(sgs, func(i, j int) bool { return sgs[i].name < sgs[j].name })
	out := make([]GraphInfo, len(sgs))
	for i, sg := range sgs {
		out[i] = sg.Info()
	}
	return out
}

// Len returns how many graphs are stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.graphs)
}

// LoadDir preloads every regular file in dir into the store: files named
// *.konect or out.* parse as KONECT, everything else as the text
// edge-list format. The graph name is the file's base name with the
// extension stripped (out.foo becomes foo). Returns how many graphs were
// loaded; the first parse error aborts the load.
func (s *Store) LoadDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		format := FormatEdgeList
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "out."):
			format = FormatKONECT
			name = strings.TrimPrefix(name, "out.")
		case strings.HasSuffix(name, ".konect"):
			format = FormatKONECT
			name = strings.TrimSuffix(name, ".konect")
		default:
			name = strings.TrimSuffix(name, filepath.Ext(name))
		}
		f, err := os.Open(path)
		if err != nil {
			return n, err
		}
		g, err := s.Parse(f, format)
		f.Close()
		if err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		if _, err := s.Put(name, g); err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		n++
	}
	return n, nil
}
