// Package server is the serving layer of the engine: a named store of
// mutable, versioned graphs with cached reduce-and-conquer plans, a
// bounded job scheduler running solves on per-job execution contexts,
// and the HTTP JSON handlers that cmd/mbbserved exposes. The pipeline
// per query is
//
//	store (snapshot chain) → cached plan (τ, reduction, components) →
//	scheduler (bounded workers) → core.Exec (budget, cancellation)
//
// so a long-running daemon pays for parsing and reduction once per graph
// version instead of once per request. Mutations (POST/DELETE
// /graphs/{name}/edges) publish a new immutable snapshot with a bumped
// epoch; jobs pin the snapshot current at submission, so a solve never
// observes a half-applied batch and its result is exact for the epoch it
// reports.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigraph"
	"repro/internal/wal"
	"repro/mbb"
)

// liveSnapshots counts snapshots that are still reachable: published
// versions plus historical ones pinned by in-flight jobs. Incremented
// at creation, decremented by a GC cleanup, it is the leak gauge the
// soak harness (and /metrics) watch — after a drain and a GC it must
// fall back to one per stored graph.
var liveSnapshots atomic.Int64

// trackSnapshot registers sn with the leak gauge.
func trackSnapshot(sn *Snapshot) *Snapshot {
	liveSnapshots.Add(1)
	runtime.AddCleanup(sn, func(struct{}) { liveSnapshots.Add(-1) }, struct{}{})
	return sn
}

// LiveSnapshots reports how many snapshots the GC still sees reachable
// (an upper bound refreshed by collection, not an instantaneous count).
func LiveSnapshots() int64 { return liveSnapshots.Load() }

// GraphFormat selects an upload parser.
type GraphFormat string

const (
	// FormatEdgeList is the repo's text edge-list format ("nL nR m"
	// header, 0-based "l r" lines) parsed by bigraph.Read.
	FormatEdgeList GraphFormat = "edgelist"
	// FormatKONECT is the KONECT out.* format (1-based ids, optional
	// "% m nL nR" size hint) parsed by bigraph.ReadKONECT.
	FormatKONECT GraphFormat = "konect"
)

// ParseFormat resolves a ?format= value; the empty string means edgelist.
func ParseFormat(s string) (GraphFormat, error) {
	switch strings.ToLower(s) {
	case "", "edgelist", "edge-list", "text":
		return FormatEdgeList, nil
	case "konect", "out":
		return FormatKONECT, nil
	}
	return "", fmt.Errorf("unknown graph format %q (want edgelist or konect)", s)
}

// Snapshot is one immutable version of a stored graph: the parsed graph,
// its epoch, and the lazily built (or inherited) plan for exactly this
// version. Jobs hold the Snapshot they were submitted against, so
// mutations publishing newer snapshots never disturb a solve in flight.
type Snapshot struct {
	sg    *StoredGraph
	g     *bigraph.Graph
	epoch uint64
	at    time.Time // when this version was published

	// pins counts jobs currently solving against this snapshot. A pinned
	// snapshot is never trimmed out of the retention window, so
	// ?epoch=E keeps resolving for every epoch under active solve.
	pins atomic.Int64

	planOnce sync.Once
	// planVal publishes the build outcome atomically: concurrent readers
	// (Info, from the graph/stats handlers) either see nil — build not
	// finished — or the complete outcome, never a half-written pair.
	planVal atomic.Pointer[planOutcome]
}

// planOutcome is the immutable result of one plan build, repair or
// inheritance. source records how this snapshot got its plan ("built":
// a full planner run; "repaired": bounded local repair across an
// insertion batch; "inherited": carried across a deletion-only batch
// unchanged) and nanos the wall time this snapshot itself paid for it —
// an inherited plan no longer reports its predecessor's build time as
// its own.
type planOutcome struct {
	plan   *mbb.Plan
	err    error
	source string
	nanos  int64
}

// Graph returns this snapshot's parsed graph.
func (sn *Snapshot) Graph() *bigraph.Graph { return sn.g }

// Epoch returns this snapshot's version counter (0 for the upload).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// pin marks a job as solving against this snapshot; unpin releases it.
// The retention trimmer skips pinned snapshots.
func (sn *Snapshot) pin()   { sn.pins.Add(1) }
func (sn *Snapshot) unpin() { sn.pins.Add(-1) }

// Plan returns this snapshot's reduce-and-conquer plan, building it on
// first use; built reports whether this call performed a build (false
// means a cache hit, including plans inherited across a mutation via
// ApplyDelta). The build runs detached from any request context: a
// client that gives up must not poison the cache for everyone after it.
func (sn *Snapshot) Plan() (plan *mbb.Plan, built bool, err error) {
	sn.planOnce.Do(func() {
		built = true
		start := time.Now()
		sn.sg.planBuilds.Add(1)
		if sh := sn.sg.shared; sh != nil {
			sh.planBuilds.Add(1)
		}
		p, perr := mbb.PlanContextEpoch(context.Background(), sn.g, sn.epoch)
		sn.planVal.Store(&planOutcome{plan: p, err: perr, source: "built", nanos: int64(time.Since(start))})
	})
	out := sn.planVal.Load() // non-nil: Do returns only after the outcome stored it
	if out.err == nil && !built {
		sn.sg.planHits.Add(1)
		if sh := sn.sg.shared; sh != nil {
			sh.planHits.Add(1)
		}
	}
	return out.plan, built, out.err
}

// StoredGraph is one named graph as a chain of immutable snapshots. The
// current snapshot is read lock-free; mutations serialize on mu and
// publish a successor with epoch+1, carrying the cached plan across when
// mbb.Plan.ApplyDelta proves the delta cannot invalidate it.
type StoredGraph struct {
	name   string
	shared *storeCounters // store-lifetime aggregates (nil outside a Store)
	st     *Store         // owning store (nil outside a Store)
	// gen is the graph's generation id, unique across the store's life
	// (including recoveries). Every WAL record carries it, so replay can
	// tell a delta for this incarnation of the name from one addressed
	// to a deleted or replaced predecessor.
	gen uint64

	mu  sync.Mutex // serializes mutations (epoch transitions)
	cur atomic.Pointer[Snapshot]

	// retained is the retention window: the most recent snapshots in
	// ascending, contiguous epoch order, newest last (always containing
	// cur). Historical ?epoch=E solves resolve against it; publish trims
	// it to the store's window, never evicting a pinned snapshot.
	retMu    sync.RWMutex
	retained []*Snapshot

	mutations   atomic.Int64 // effective mutations (epoch bumps)
	planBuilds  atomic.Int64 // full planner runs across all snapshots
	planHits    atomic.Int64 // solves that reused an already-present plan
	planReuses  atomic.Int64 // mutations that carried the plan across unchanged
	planRepairs atomic.Int64 // mutations absorbed by bounded local repair
}

// storeCounters aggregates the per-graph counters over the store's
// lifetime. Prometheus counters must never go backwards, and summing
// GraphInfo at scrape time would: deleting a graph takes its history
// with it. The same events bump both the per-graph atomics (the graph's
// own story) and these (the fleet's).
type storeCounters struct {
	mutations   atomic.Int64
	planBuilds  atomic.Int64
	planHits    atomic.Int64
	planReuses  atomic.Int64
	planRepairs atomic.Int64
}

// StoreStats is the store-lifetime counter snapshot for /metrics.
type StoreStats struct {
	Mutations   int64
	PlanBuilds  int64
	PlanHits    int64
	PlanReuses  int64
	PlanRepairs int64
}

// Name returns the store key.
func (sg *StoredGraph) Name() string { return sg.name }

// Snapshot returns the current (latest) snapshot.
func (sg *StoredGraph) Snapshot() *Snapshot { return sg.cur.Load() }

// Graph returns the current snapshot's parsed graph.
func (sg *StoredGraph) Graph() *bigraph.Graph { return sg.Snapshot().g }

// Epoch returns the current snapshot's epoch.
func (sg *StoredGraph) Epoch() uint64 { return sg.Snapshot().epoch }

// PlanBuilds reports how many full planner runs the graph has paid for
// across all its versions — the amortization counter the e2e smoke
// asserts (it stays ≤ 1 however many solves ran, until a mutation that
// cannot inherit the plan forces one more).
func (sg *StoredGraph) PlanBuilds() int64 { return sg.planBuilds.Load() }

// Generation returns the graph's WAL generation id (0 outside a
// WAL-backed store).
func (sg *StoredGraph) Generation() uint64 { return sg.gen }

// retainWindow is how many trailing epochs this graph keeps resolvable.
func (sg *StoredGraph) retainWindow() int {
	if sg.st != nil && sg.st.retain > 0 {
		return sg.st.retain
	}
	return 1
}

// publish makes snap the current snapshot and appends it to the
// retention window, trimming the oldest unpinned snapshots beyond the
// window. Callers serialize via sg.mu (or single-threaded replay).
func (sg *StoredGraph) publish(snap *Snapshot) {
	sg.cur.Store(snap)
	window := sg.retainWindow()
	sg.retMu.Lock()
	sg.retained = append(sg.retained, snap)
	drop := 0
	for len(sg.retained)-drop > window && sg.retained[drop].pins.Load() == 0 {
		drop++
	}
	if drop > 0 {
		copy(sg.retained, sg.retained[drop:])
		for i := len(sg.retained) - drop; i < len(sg.retained); i++ {
			sg.retained[i] = nil // release the reference for the GC
		}
		sg.retained = sg.retained[:len(sg.retained)-drop]
	}
	sg.retMu.Unlock()
}

// SnapshotAt resolves an epoch within the retention window (the current
// epoch always resolves). It reports false for epochs that were never
// published or have been compacted away.
func (sg *StoredGraph) SnapshotAt(epoch uint64) (*Snapshot, bool) {
	if cur := sg.cur.Load(); cur.epoch == epoch {
		return cur, true
	}
	sg.retMu.RLock()
	defer sg.retMu.RUnlock()
	if len(sg.retained) == 0 {
		return nil, false
	}
	lo := sg.retained[0].epoch
	if epoch < lo || epoch > sg.retained[len(sg.retained)-1].epoch {
		return nil, false
	}
	// Retained epochs are contiguous, so the lookup is an index.
	return sg.retained[epoch-lo], true
}

// RetainedRange reports the oldest and newest retained epochs and the
// window's size (0 means only bookkeeping has not run yet; the current
// snapshot still resolves).
func (sg *StoredGraph) RetainedRange() (lo, hi uint64, n int) {
	sg.retMu.RLock()
	defer sg.retMu.RUnlock()
	if len(sg.retained) == 0 {
		cur := sg.cur.Load()
		return cur.epoch, cur.epoch, 1
	}
	return sg.retained[0].epoch, sg.retained[len(sg.retained)-1].epoch, len(sg.retained)
}

// Retained reports how many snapshots the retention window holds.
func (sg *StoredGraph) Retained() int {
	sg.retMu.RLock()
	defer sg.retMu.RUnlock()
	return len(sg.retained)
}

// MutationInfo is the JSON response to an edge-mutation request.
type MutationInfo struct {
	Name    string `json:"name"`
	Epoch   uint64 `json:"epoch"`
	Added   int    `json:"added"`   // edges actually inserted
	Removed int    `json:"removed"` // edges actually deleted
	NL      int    `json:"nl"`
	NR      int    `json:"nr"`
	Edges   int    `json:"edges"`
	// Plan reports what happened to the cached plan: "reused" (carried
	// across unchanged by ApplyDelta), "repaired" (insertions absorbed
	// by bounded local repair — still no full planner run), "rebuilding"
	// (invalidated; a background rebuild was scheduled), "unchanged" (a
	// no-op batch left the snapshot and its plan untouched), or "none"
	// (no plan was built yet).
	Plan string `json:"plan"`
}

// Mutate applies d atomically: the current snapshot's graph gets the
// delta (copy-on-write — in-flight jobs keep their pinned snapshots),
// and the successor snapshot is published with epoch+1. When the current
// snapshot has a built plan, mbb.Plan.ApplyDelta tries to carry it
// across (deletion-only deltas that spare the heuristic witness);
// otherwise a background rebuild warms the new snapshot's plan while
// stale-but-exact solves continue on prior snapshots. A delta that
// changes nothing keeps the current snapshot and epoch. Returns the
// snapshot the store now serves.
func (sg *StoredGraph) Mutate(d bigraph.Delta) (*Snapshot, MutationInfo, error) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	old := sg.cur.Load()
	g2, eff, err := old.g.Apply(d)
	if err != nil {
		return nil, MutationInfo{}, err
	}
	info := MutationInfo{
		Name: sg.name, Epoch: old.epoch,
		Added: len(eff.Add), Removed: len(eff.Del),
		NL: old.g.NL(), NR: old.g.NR(), Edges: old.g.NumEdges(),
		Plan: "none",
	}
	if eff.Empty() {
		// Nothing changed: keep the snapshot (and its plan) as is, so
		// no-op batches cost no epoch bump, no cache invalidation — and
		// no reuse accounting, since nothing was carried anywhere.
		if out := old.planVal.Load(); out != nil && out.err == nil {
			info.Plan = "unchanged"
		}
		return old, info, nil
	}
	snap := trackSnapshot(&Snapshot{sg: sg, g: g2, epoch: old.epoch + 1, at: time.Now()})
	// Durability before visibility: the effective delta must be in the
	// WAL before any reader can observe the new epoch. A failed append
	// fails the mutation — the store keeps serving the old snapshot.
	if sg.st != nil && sg.st.wal != nil {
		payload, err := eff.AppendBinary(nil)
		if err != nil {
			return nil, MutationInfo{}, err
		}
		if err := sg.st.wal.Append(wal.Record{
			Type: wal.RecDelta, Name: sg.name, Gen: sg.gen, Epoch: snap.epoch, Payload: payload,
		}); err != nil {
			return nil, MutationInfo{}, fmt.Errorf("wal append: %w", err)
		}
	}
	rebuild := carryPlan(sg, old, snap, eff, &info.Plan)
	sg.publish(snap)
	sg.mutations.Add(1)
	if sg.shared != nil {
		sg.shared.mutations.Add(1)
	}
	info.Epoch = snap.epoch
	info.Edges = g2.NumEdges()
	if rebuild {
		// The previous version had a plan and the new one cannot inherit
		// it. Rebuild in the background so in-flight traffic keeps solving
		// on prior snapshots while the next query finds the plan warm (or
		// at worst joins the build through the sync.Once).
		go snap.Plan()
	}
	if sg.st != nil {
		sg.st.noteAppend()
	}
	return snap, info, nil
}

// carryPlan tries to move old's built plan onto snap across the
// effective delta eff via mbb.Plan.ApplyDelta, pre-populating snap's
// plan slot (and consuming its Once) when maintenance succeeds. It
// returns true when the plan was invalidated and a rebuild is needed.
// planState, when non-nil, receives the MutationInfo.Plan wire word.
// Callers hold sg.mu (or run single-threaded replay).
func carryPlan(sg *StoredGraph, old, snap *Snapshot, eff bigraph.Delta, planState *string) (rebuild bool) {
	out := old.planVal.Load()
	if out == nil || out.err != nil {
		return false
	}
	start := time.Now()
	p2, ok := out.plan.ApplyDelta(snap.g, eff, snap.epoch)
	if !ok {
		if planState != nil {
			*planState = "rebuilding"
		}
		return true
	}
	// Pre-populate before publishing: consume the Once so Plan() never
	// rebuilds what the maintenance path already proved.
	source := "inherited"
	if p2.Repairs() > out.plan.Repairs() {
		source = "repaired"
		sg.planRepairs.Add(1)
		if sg.shared != nil {
			sg.shared.planRepairs.Add(1)
		}
		if planState != nil {
			*planState = "repaired"
		}
	} else {
		sg.planReuses.Add(1)
		if sg.shared != nil {
			sg.shared.planReuses.Add(1)
		}
		if planState != nil {
			*planState = "reused"
		}
	}
	snap.planVal.Store(&planOutcome{plan: p2, source: source, nanos: int64(time.Since(start))})
	snap.planOnce.Do(func() {})
	return false
}

// GraphInfo is the JSON view of a stored graph's current snapshot.
type GraphInfo struct {
	Name        string  `json:"name"`
	NL          int     `json:"nl"`
	NR          int     `json:"nr"`
	Edges       int     `json:"edges"`
	Density     float64 `json:"density"`
	Epoch       uint64  `json:"epoch"`
	Mutations   int64   `json:"mutations"`
	LoadedAt    string  `json:"loaded_at"` // when the current snapshot was published
	PlanCached  bool    `json:"plan_cached"`
	PlanBuilds  int64   `json:"plan_builds"`
	PlanHits    int64   `json:"plan_hits"`
	PlanReuses  int64   `json:"plan_reuses"`
	PlanRepairs int64   `json:"plan_repairs"`
	// PlanSource says how the current snapshot got its plan ("built",
	// "repaired", "inherited"); PlanMillis is the wall time this
	// snapshot itself spent obtaining it — a snapshot that inherited its
	// plan across a mutation no longer reports the predecessor's build
	// time as its own.
	PlanSource string  `json:"plan_source,omitempty"`
	PlanMillis float64 `json:"plan_millis,omitempty"`
	SeedTau    int     `json:"tau,omitempty"`
	Peeled     int     `json:"peeled,omitempty"`
	Components int     `json:"components,omitempty"`
}

// Info returns the JSON view of the current snapshot, including the
// cached plan's statistics once it exists.
func (sg *StoredGraph) Info() GraphInfo {
	sn := sg.Snapshot()
	info := GraphInfo{
		Name:        sg.name,
		NL:          sn.g.NL(),
		NR:          sn.g.NR(),
		Edges:       sn.g.NumEdges(),
		Density:     sn.g.Density(),
		Epoch:       sn.epoch,
		Mutations:   sg.mutations.Load(),
		LoadedAt:    sn.at.UTC().Format(time.RFC3339),
		PlanBuilds:  sg.planBuilds.Load(),
		PlanHits:    sg.planHits.Load(),
		PlanReuses:  sg.planReuses.Load(),
		PlanRepairs: sg.planRepairs.Load(),
	}
	if out := sn.planVal.Load(); out != nil {
		info.PlanSource = out.source
		info.PlanMillis = float64(out.nanos) / 1e6
		if out.err == nil {
			info.PlanCached = true
			info.SeedTau = out.plan.SeedTau()
			info.Peeled = out.plan.Peeled()
			info.Components = out.plan.Components()
		}
	}
	return info
}

// nameRe bounds graph names to URL-safe tokens.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Store is the named graph store. All methods are safe for concurrent
// use; snapshots are immutable once published, so readers never block
// solvers or mutators.
type Store struct {
	mu        sync.RWMutex
	graphs    map[string]*StoredGraph
	maxVerts  int // per-graph vertex cap for untrusted uploads, 0 = unlimited
	maxGraphs int // store capacity, 0 = unlimited
	counters  storeCounters

	// Durability. wal is nil for a volatile store; gen issues generation
	// ids (restored past the replayed maximum on recovery); retain is the
	// per-graph retention window (min 1).
	wal    *wal.Log
	gen    atomic.Uint64
	retain int

	// Automatic checkpointing: after ckptEvery WAL appends a background
	// single-flight checkpoint compacts the log.
	ckptEvery int64
	ckptCount atomic.Int64
	ckptBusy  atomic.Bool
	ckptWG    sync.WaitGroup
}

// NewStore returns an empty store. maxVerts caps the vertex count of any
// parsed upload (0 = unlimited); maxGraphs caps how many graphs the
// store holds (0 = unlimited).
func NewStore(maxVerts, maxGraphs int) *Store {
	return &Store{graphs: make(map[string]*StoredGraph), maxVerts: maxVerts, maxGraphs: maxGraphs, retain: 1}
}

// SetRetainEpochs sets the per-graph snapshot retention window (minimum
// 1: the current snapshot). Call before serving traffic.
func (s *Store) SetRetainEpochs(n int) {
	if n < 1 {
		n = 1
	}
	s.retain = n
}

// SetCheckpointEvery makes the store checkpoint-and-compact its WAL in
// the background after every n appended records (0 disables automatic
// checkpoints). Call before serving traffic.
func (s *Store) SetCheckpointEvery(n int) { s.ckptEvery = int64(n) }

// WAL returns the attached log, or nil for a volatile store.
func (s *Store) WAL() *wal.Log { return s.wal }

// Stats returns the store-lifetime aggregates (monotone across graph
// deletions, unlike summing List()).
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Mutations:   s.counters.mutations.Load(),
		PlanBuilds:  s.counters.planBuilds.Load(),
		PlanHits:    s.counters.planHits.Load(),
		PlanReuses:  s.counters.planReuses.Load(),
		PlanRepairs: s.counters.planRepairs.Load(),
	}
}

// Parse decodes r in the given format, honouring the store's vertex cap.
func (s *Store) Parse(r io.Reader, format GraphFormat) (*bigraph.Graph, error) {
	switch format {
	case FormatKONECT:
		return bigraph.ReadKONECTLimited(r, s.maxVerts)
	default:
		return bigraph.ReadLimited(r, s.maxVerts)
	}
}

// Put stores g under name at epoch 0, replacing any previous graph of
// that name (and its snapshot chain). It rejects invalid names and a
// full store.
func (s *Store) Put(name string, g *bigraph.Graph) (*StoredGraph, error) {
	if !nameRe.MatchString(name) {
		return nil, fmt.Errorf("invalid graph name %q (want [A-Za-z0-9._-], max 128 chars)", name)
	}
	sg := &StoredGraph{name: name, shared: &s.counters, st: s, gen: s.gen.Add(1)}
	sg.publish(trackSnapshot(&Snapshot{sg: sg, g: g, at: time.Now()}))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, replacing := s.graphs[name]; !replacing && s.maxGraphs > 0 && len(s.graphs) >= s.maxGraphs {
		return nil, fmt.Errorf("graph store is full (%d graphs)", s.maxGraphs)
	}
	// Appending under s.mu serializes the Put record against any Delete
	// of the same name; the rare upload fsync briefly stalling reads is
	// an accepted cost.
	if s.wal != nil {
		if err := s.wal.Append(wal.Record{
			Type: wal.RecPut, Name: name, Gen: sg.gen, Payload: g.AppendBinary(nil),
		}); err != nil {
			return nil, fmt.Errorf("wal append: %w", err)
		}
	}
	s.graphs[name] = sg
	s.noteAppend()
	return sg, nil
}

// Get returns the named graph.
func (s *Store) Get(name string) (*StoredGraph, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.graphs[name]
	return sg, ok
}

// Delete removes the named graph. Jobs already holding a Snapshot keep
// solving against it; the memory is reclaimed once they finish. The
// boolean reports whether the graph existed; the error is non-nil only
// when the WAL append failed (the graph is then kept).
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sg, ok := s.graphs[name]
	if !ok {
		return false, nil
	}
	if s.wal != nil {
		if err := s.wal.Append(wal.Record{Type: wal.RecDelete, Name: name, Gen: sg.gen}); err != nil {
			return true, fmt.Errorf("wal append: %w", err)
		}
	}
	delete(s.graphs, name)
	s.noteAppend()
	return true, nil
}

// List returns every stored graph's info, sorted by name.
func (s *Store) List() []GraphInfo {
	s.mu.RLock()
	sgs := make([]*StoredGraph, 0, len(s.graphs))
	for _, sg := range s.graphs {
		sgs = append(sgs, sg)
	}
	s.mu.RUnlock()
	sort.Slice(sgs, func(i, j int) bool { return sgs[i].name < sgs[j].name })
	out := make([]GraphInfo, len(sgs))
	for i, sg := range sgs {
		out[i] = sg.Info()
	}
	return out
}

// Len returns how many graphs are stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.graphs)
}

// LoadError records one file LoadDir could not turn into a stored graph.
type LoadError struct {
	File string
	Err  error
}

func (e LoadError) Error() string { return fmt.Sprintf("%s: %v", e.File, e.Err) }

// LoadReport summarizes a LoadDir pass: how many graphs loaded and which
// files were skipped, with why.
type LoadReport struct {
	Loaded int
	Failed []LoadError
}

// LoadDir preloads every regular file in dir into the store: files named
// *.konect or out.* parse as KONECT, everything else as the text
// edge-list format. The graph name is the file's base name with the
// extension stripped (out.foo becomes foo). Hidden files (dotfiles such
// as .gitignore or .DS_Store) are skipped — filepath.Ext would strip
// their whole name to the empty string, which can never be a valid graph
// name and used to abort the entire preload. An unreadable or unparsable
// file is logged, recorded in the report and skipped — one stray file in
// a data directory must not take every other graph down with it. The
// error is non-nil only when the directory itself cannot be read.
func (s *Store) LoadDir(dir string) (LoadReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return LoadReport{}, err
	}
	var rep LoadReport
	fail := func(path string, err error) {
		log.Printf("server: preload %s: %v (skipped)", path, err)
		rep.Failed = append(rep.Failed, LoadError{File: path, Err: err})
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		format := FormatEdgeList
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "out."):
			format = FormatKONECT
			name = strings.TrimPrefix(name, "out.")
		case strings.HasSuffix(name, ".konect"):
			format = FormatKONECT
			name = strings.TrimSuffix(name, ".konect")
		default:
			name = strings.TrimSuffix(name, filepath.Ext(name))
		}
		f, err := os.Open(path)
		if err != nil {
			fail(path, err)
			continue
		}
		g, err := s.Parse(f, format)
		f.Close()
		if err != nil {
			fail(path, err)
			continue
		}
		if _, err := s.Put(name, g); err != nil {
			fail(path, err)
			continue
		}
		rep.Loaded++
	}
	return rep, nil
}

// Checkpoint serializes every stored graph's current snapshot into a
// fresh WAL segment and compacts the history behind it. Each snapshot
// record is appended while holding that graph's mutation lock, which
// pins the invariant replay relies on: any delta record after a graph's
// snapshot record has a higher epoch than the snapshot. Mutations on
// other graphs interleave freely. No-op without a WAL.
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Checkpoint(func(app func(wal.Record) error) error {
		s.mu.RLock()
		sgs := make([]*StoredGraph, 0, len(s.graphs))
		for _, sg := range s.graphs {
			sgs = append(sgs, sg)
		}
		s.mu.RUnlock()
		sort.Slice(sgs, func(i, j int) bool { return sgs[i].name < sgs[j].name })
		for _, sg := range sgs {
			sg.mu.Lock()
			cur := sg.cur.Load()
			err := app(wal.Record{
				Type: wal.RecGraphSnap, Name: sg.name, Gen: sg.gen,
				Epoch: cur.epoch, Payload: cur.g.AppendBinary(nil),
			})
			sg.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// noteAppend ticks the automatic-checkpoint counter and kicks off a
// single-flight background checkpoint when it reaches the threshold.
func (s *Store) noteAppend() {
	if s.wal == nil || s.ckptEvery <= 0 {
		return
	}
	if s.ckptCount.Add(1) < s.ckptEvery {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	s.ckptCount.Store(0)
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		defer s.ckptBusy.Store(false)
		if err := s.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
			log.Printf("server: background checkpoint: %v", err)
		}
	}()
}

// CloseWAL waits for any background checkpoint and closes the log (a
// final fsync included). The store stays readable; further mutations
// fail their WAL append.
func (s *Store) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	s.ckptWG.Wait()
	return s.wal.Close()
}

// RetainedSnapshots sums the retention windows across stored graphs —
// the denominator for the soak harness's snapshot-leak gauge.
func (s *Store) RetainedSnapshots() int64 {
	s.mu.RLock()
	sgs := make([]*StoredGraph, 0, len(s.graphs))
	for _, sg := range s.graphs {
		sgs = append(sgs, sg)
	}
	s.mu.RUnlock()
	var n int64
	for _, sg := range sgs {
		n += int64(sg.Retained())
	}
	return n
}
