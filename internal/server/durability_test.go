package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/wal"
)

// --- model helpers -----------------------------------------------------

type edgeSet map[[2]int]bool

func edgeSetOf(g *bigraph.Graph) edgeSet {
	es := make(edgeSet, g.NumEdges())
	for _, e := range g.Edges() {
		es[e] = true
	}
	return es
}

func buildGraph(nl, nr int, es edgeSet) *bigraph.Graph {
	b := bigraph.NewBuilder(nl, nr)
	for e := range es {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func (es edgeSet) clone() edgeSet {
	out := make(edgeSet, len(es))
	for e := range es {
		out[e] = true
	}
	return out
}

// modelGraph mirrors one stored graph: its dimensions and the edge set
// at every epoch since the last upload.
type modelGraph struct {
	nl, nr int
	hist   []edgeSet // hist[epoch] = edges
}

func (m *modelGraph) clone() *modelGraph {
	out := &modelGraph{nl: m.nl, nr: m.nr, hist: make([]edgeSet, len(m.hist))}
	for i, es := range m.hist {
		out.hist[i] = es.clone()
	}
	return out
}

func cloneModel(model map[string]*modelGraph) map[string]*modelGraph {
	out := make(map[string]*modelGraph, len(model))
	for name, m := range model {
		out[name] = m.clone()
	}
	return out
}

// walSegPath returns the single segment file of a one-segment log.
func walSegPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one WAL segment, got %v (err %v)", segs, err)
	}
	return segs[0]
}

// checkRecovered asserts that the recovered store matches the model at a
// durable point: same graphs, same final epochs and edge sets, and every
// retained epoch's graph both matches the model history and solves to
// the brute-force optimum of the model graph.
func checkRecovered(t *testing.T, s *Store, model map[string]*modelGraph) {
	t.Helper()
	if s.Len() != len(model) {
		t.Fatalf("recovered %d graphs, want %d", s.Len(), len(model))
	}
	for name, m := range model {
		sg, ok := s.Get(name)
		if !ok {
			t.Fatalf("graph %q missing after recovery", name)
		}
		wantEpoch := uint64(len(m.hist) - 1)
		if sg.Epoch() != wantEpoch {
			t.Fatalf("graph %q at epoch %d, want %d", name, sg.Epoch(), wantEpoch)
		}
		lo, hi, n := sg.RetainedRange()
		if hi != wantEpoch || n < 1 {
			t.Fatalf("graph %q retained range [%d,%d] n=%d, want hi=%d", name, lo, hi, n, wantEpoch)
		}
		for e := lo; e <= hi; e++ {
			snap, ok := sg.SnapshotAt(e)
			if !ok {
				t.Fatalf("graph %q epoch %d not resolvable inside retained range [%d,%d]", name, e, lo, hi)
			}
			got := edgeSetOf(snap.Graph())
			want := m.hist[e]
			if len(got) != len(want) {
				t.Fatalf("graph %q epoch %d has %d edges, want %d", name, e, len(got), len(want))
			}
			for edge := range want {
				if !got[edge] {
					t.Fatalf("graph %q epoch %d missing edge %v", name, e, edge)
				}
			}
			if got, want := baseline.BruteForceSize(snap.Graph()), baseline.BruteForceSize(buildGraph(m.nl, m.nr, want)); got != want {
				t.Fatalf("graph %q epoch %d solves to %d, oracle says %d", name, e, got, want)
			}
		}
	}
}

// --- crash-recovery property test --------------------------------------

// TestCrashRecoveryProperty drives a random upload/mutate/delete script
// against a WAL-backed store under SyncAlways, recording the durable log
// size after every operation. It then simulates a crash by truncating
// the log at a random point — a record boundary or mid-record (a torn
// tail) — recovers a fresh store from what survived, and asserts the
// result equals the model folded over exactly the surviving operations:
// same graphs, same epochs, same edges, and every retained epoch solves
// to the brute-force optimum.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			crashRecoveryRound(t, seed)
		})
	}
}

func crashRecoveryRound(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	s := NewStore(0, 0)
	s.SetRetainEpochs(4)
	if _, err := s.OpenWAL(dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 1 << 30}, false); err != nil {
		t.Fatal(err)
	}
	seg := ""

	names := []string{"alpha", "beta", "gamma"}
	model := make(map[string]*modelGraph)

	type durablePoint struct {
		size  int64
		model map[string]*modelGraph
	}
	var durable []durablePoint
	note := func() {
		if seg == "" {
			seg = walSegPath(t, dir)
		}
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		durable = append(durable, durablePoint{size: fi.Size(), model: cloneModel(model)})
	}

	randomEdges := func(nl, nr int) edgeSet {
		es := make(edgeSet)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(2) == 0 {
					es[[2]int{l, r}] = true
				}
			}
		}
		return es
	}

	for op := 0; op < 40; op++ {
		name := names[rng.Intn(len(names))]
		m, exists := model[name]
		switch k := rng.Intn(10); {
		case k < 3 || !exists: // upload (or replace)
			nl, nr := 1+rng.Intn(5), 1+rng.Intn(5)
			es := randomEdges(nl, nr)
			if _, err := s.Put(name, buildGraph(nl, nr, es)); err != nil {
				t.Fatalf("put %s: %v", name, err)
			}
			model[name] = &modelGraph{nl: nl, nr: nr, hist: []edgeSet{es}}
		case k < 9: // mutate
			var d bigraph.Delta
			for i := 0; i < 1+rng.Intn(4); i++ {
				e := [2]int{rng.Intn(m.nl), rng.Intn(m.nr)}
				if rng.Intn(2) == 0 {
					d.Add = append(d.Add, e)
				} else {
					d.Del = append(d.Del, e)
				}
			}
			sg, _ := s.Get(name)
			before := sg.Epoch()
			snap, _, err := sg.Mutate(d)
			if err != nil {
				t.Fatalf("mutate %s: %v", name, err)
			}
			if snap.Epoch() > before {
				m.hist = append(m.hist, edgeSetOf(snap.Graph()))
			}
		default: // delete
			if _, err := s.Delete(name); err != nil {
				t.Fatalf("delete %s: %v", name, err)
			}
			delete(model, name)
		}
		note()
	}

	// Crash: truncate the log at a random durable point, possibly with a
	// torn fragment of the next record after it.
	k := rng.Intn(len(durable))
	cut := durable[k].size
	if k+1 < len(durable) {
		if gap := durable[k+1].size - cut; gap > 0 {
			cut += rng.Int63n(gap)
		}
	}
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0, 0)
	s2.SetRetainEpochs(4)
	rs, err := s2.OpenWAL(dir, wal.Options{Sync: wal.SyncOff, SegmentBytes: 1 << 30}, false)
	if err != nil {
		t.Fatalf("recover after cut at %d (durable point %d/%d): %v", cut, k, len(durable), err)
	}
	checkRecovered(t, s2, durable[k].model)
	if rs.Graphs != len(durable[k].model) {
		t.Fatalf("RecoverStats.Graphs = %d, want %d", rs.Graphs, len(durable[k].model))
	}
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryAfterCheckpointCompaction exercises the full durable
// lifecycle: small segments force rotation, explicit checkpoints compact
// history behind them (including a deleted graph whose tombstone must
// survive), and a clean reopen reconstructs the exact final state from
// checkpoint snapshots plus trailing deltas.
func TestRecoveryAfterCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(0, 0)
	s.SetRetainEpochs(3)
	if _, err := s.OpenWAL(dir, wal.Options{Sync: wal.SyncOff, SegmentBytes: 512}, false); err != nil {
		t.Fatal(err)
	}

	mkEdges := func(n, dim int) edgeSet {
		es := make(edgeSet)
		for i := 0; i < n; i++ {
			es[[2]int{i % dim, (i * 3) % dim}] = true
		}
		return es
	}
	if _, err := s.Put("keep", buildGraph(4, 4, mkEdges(7, 4))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("drop", buildGraph(3, 3, mkEdges(5, 3))); err != nil {
		t.Fatal(err)
	}
	toggle := func(name string, e [2]int) {
		t.Helper()
		sg, ok := s.Get(name)
		if !ok {
			t.Fatalf("graph %q missing", name)
		}
		var d bigraph.Delta
		if edgeSetOf(sg.Graph())[e] {
			d.Del = [][2]int{e}
		} else {
			d.Add = [][2]int{e}
		}
		if _, _, err := sg.Mutate(d); err != nil {
			t.Fatalf("mutate %s: %v", name, err)
		}
	}
	for i := 0; i < 5; i++ {
		toggle("keep", [2]int{i % 4, (i + 1) % 4})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("drop"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		toggle("keep", [2]int{(i + 2) % 4, i % 4})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	toggle("keep", [2]int{0, 0})
	toggle("keep", [2]int{1, 1})

	st := s.WAL().Stats()
	if st.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", st.Checkpoints)
	}
	if st.SegmentsDropped == 0 {
		t.Fatal("compaction dropped no segments despite 512-byte segments and two checkpoints")
	}

	// Remember the final state, then reopen the directory fresh.
	sg, _ := s.Get("keep")
	wantEpoch := sg.Epoch()
	wantEdges := edgeSetOf(sg.Graph())
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0, 0)
	s2.SetRetainEpochs(3)
	rs, err := s2.OpenWAL(dir, wal.Options{Sync: wal.SyncOff, SegmentBytes: 512}, true)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered %d graphs, want 1 (tombstoned graph resurrected?)", s2.Len())
	}
	sg2, ok := s2.Get("keep")
	if !ok {
		t.Fatal("graph \"keep\" missing after recovery")
	}
	if sg2.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", sg2.Epoch(), wantEpoch)
	}
	got := edgeSetOf(sg2.Graph())
	if len(got) != len(wantEdges) {
		t.Fatalf("recovered %d edges, want %d", len(got), len(wantEdges))
	}
	for e := range wantEdges {
		if !got[e] {
			t.Fatalf("recovered graph missing edge %v", e)
		}
	}
	if rs.Snaps == 0 {
		t.Fatalf("recovery replayed no checkpoint snapshots: %+v", rs)
	}
	if rs.PlanWarmed == 0 {
		t.Fatalf("warm recovery built no plans: %+v", rs)
	}
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMutateWhileCheckpoint races mutations against explicit
// checkpoints (run with -race). Each writer toggles its own edge so
// every mutation is effective; afterwards a fresh store recovered from
// the log must match the live final state exactly.
func TestConcurrentMutateWhileCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(0, 0)
	s.SetRetainEpochs(2)
	if _, err := s.OpenWAL(dir, wal.Options{Sync: wal.SyncOff, SegmentBytes: 4096}, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g0", "g1"} {
		if _, err := s.Put(name, buildGraph(4, 4, edgeSet{{0, 0}: true, {1, 1}: true})); err != nil {
			t.Fatal(err)
		}
	}

	const writers, rounds = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", w%2)
			sg, _ := s.Get(name)
			edge := [2]int{2 + w/2, 2 + w/2} // this writer's private edge
			for i := 0; i < rounds; i++ {
				var d bigraph.Delta
				if i%2 == 0 {
					d.Add = [][2]int{edge}
				} else {
					d.Del = [][2]int{edge}
				}
				if _, _, err := sg.Mutate(d); err != nil {
					t.Errorf("mutate %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if err := s.Checkpoint(); err != nil {
			t.Errorf("checkpoint: %v", err)
			break
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wg.Wait()

	type state struct {
		epoch uint64
		edges edgeSet
	}
	want := make(map[string]state)
	for _, name := range []string{"g0", "g1"} {
		sg, _ := s.Get(name)
		want[name] = state{epoch: sg.Epoch(), edges: edgeSetOf(sg.Graph())}
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(0, 0)
	if _, err := s2.OpenWAL(dir, wal.Options{Sync: wal.SyncOff}, false); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		sg, ok := s2.Get(name)
		if !ok {
			t.Fatalf("graph %q missing after recovery", name)
		}
		if sg.Epoch() != w.epoch {
			t.Fatalf("graph %q recovered at epoch %d, want %d", name, sg.Epoch(), w.epoch)
		}
		got := edgeSetOf(sg.Graph())
		if len(got) != len(w.edges) {
			t.Fatalf("graph %q recovered with %d edges, want %d", name, len(got), len(w.edges))
		}
		for e := range w.edges {
			if !got[e] {
				t.Fatalf("graph %q recovered without edge %v", name, e)
			}
		}
	}
	if err := s2.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// --- retention window --------------------------------------------------

// TestRetentionWindow checks the trailing-epoch window: old epochs fall
// out as new ones publish, epochs inside the window resolve to the exact
// historical graph, and a pinned snapshot blocks trimming until
// released.
func TestRetentionWindow(t *testing.T) {
	s := NewStore(0, 0)
	s.SetRetainEpochs(3)
	sg, err := s.Put("g", buildGraph(3, 3, edgeSet{{0, 0}: true}))
	if err != nil {
		t.Fatal(err)
	}
	adds := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	histories := []edgeSet{edgeSetOf(sg.Graph())}
	for _, e := range adds {
		snap, _, err := sg.Mutate(bigraph.Delta{Add: [][2]int{e}})
		if err != nil {
			t.Fatal(err)
		}
		histories = append(histories, edgeSetOf(snap.Graph()))
	}
	lo, hi, n := sg.RetainedRange()
	if lo != 3 || hi != 5 || n != 3 {
		t.Fatalf("retained range [%d,%d] n=%d, want [3,5] n=3", lo, hi, n)
	}
	if _, ok := sg.SnapshotAt(2); ok {
		t.Fatal("epoch 2 resolved outside the retention window")
	}
	if _, ok := sg.SnapshotAt(6); ok {
		t.Fatal("future epoch 6 resolved")
	}
	for e := lo; e <= hi; e++ {
		snap, ok := sg.SnapshotAt(e)
		if !ok {
			t.Fatalf("epoch %d not resolvable", e)
		}
		if got := edgeSetOf(snap.Graph()); len(got) != len(histories[e]) {
			t.Fatalf("epoch %d has %d edges, want %d", e, len(got), len(histories[e]))
		}
	}

	// Pin the oldest retained snapshot: it (and everything behind it in
	// the window) must survive further publishes until unpinned.
	pinned, _ := sg.SnapshotAt(3)
	pinned.pin()
	for _, e := range adds[:3] {
		if _, _, err := sg.Mutate(bigraph.Delta{Del: [][2]int{e}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := sg.SnapshotAt(3); !ok {
		t.Fatal("pinned epoch 3 was trimmed")
	}
	if sg.Retained() != 6 {
		t.Fatalf("window grew to %d, want 6 (pin blocks trimming)", sg.Retained())
	}
	pinned.unpin()
	if _, _, err := sg.Mutate(bigraph.Delta{Add: [][2]int{{2, 0}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sg.SnapshotAt(3); ok {
		t.Fatal("epoch 3 still resolvable after unpin and publish")
	}
	if sg.Retained() != 3 {
		t.Fatalf("window is %d after unpin, want 3", sg.Retained())
	}
}

// --- HTTP layer: export, historical solves, restart ---------------------

// TestExportAndHistoricalSolve drives the HTTP API: mutate a graph,
// solve it at a retained historical epoch, export both endpoints of the
// window, and re-upload an export round-trip.
func TestExportAndHistoricalSolve(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, RetainEpochs: 4})
	putGraph(t, ts, "k33", k33, "")

	// Epoch 1 removes one edge: K3,3 minus an edge still has a balanced
	// biclique of size 2, not 3.
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/k33/edges", strings.NewReader(`{"del":[[2,2]]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}

	// Historical solve at epoch 0 must see the intact K3,3.
	resp, data = do(t, http.MethodPost, ts.URL+"/graphs/k33/solve?epoch=0", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve epoch 0: %d %s", resp.StatusCode, data)
	}
	j := decode[JobInfo](t, data)
	if j.Result == nil || j.Result.Size != 3 || j.Result.Epoch != 0 {
		t.Fatalf("epoch-0 solve %+v", j.Result)
	}
	resp, data = do(t, http.MethodPost, ts.URL+"/graphs/k33/solve", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve current: %d %s", resp.StatusCode, data)
	}
	j = decode[JobInfo](t, data)
	if j.Result == nil || j.Result.Epoch != 1 {
		t.Fatalf("current solve %+v", j.Result)
	}

	// Export epoch 0 as edgelist and re-upload: bit-identical structure.
	resp, data = do(t, http.MethodGet, ts.URL+"/graphs/k33/export?epoch=0&format=edgelist", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export epoch 0: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Graph-Epoch"); got != "0" {
		t.Fatalf("X-Graph-Epoch = %q, want 0", got)
	}
	info := putGraph(t, ts, "copy", string(data), "")
	if info.Edges != 9 {
		t.Fatalf("re-uploaded export has %d edges, want 9", info.Edges)
	}

	// Default export (KONECT) serves the current epoch.
	resp, data = do(t, http.MethodGet, ts.URL+"/graphs/k33/export", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export current: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Graph-Epoch"); got != "1" {
		t.Fatalf("X-Graph-Epoch = %q, want 1", got)
	}
	if !strings.Contains(string(data), "% 8 3 3") {
		t.Fatalf("KONECT export header missing, got %q", string(data[:min(len(data), 40)]))
	}

	// Out-of-window and malformed epochs.
	resp, _ = do(t, http.MethodGet, ts.URL+"/graphs/k33/export?epoch=99", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export epoch 99: %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/graphs/k33/export?epoch=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("export epoch banana: %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/graphs/k33/solve?epoch=99", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve epoch 99: %d, want 404", resp.StatusCode)
	}
}

// TestServerRestartRecoversState restarts a durable server end to end:
// the second instance must serve the same graphs at the same epochs with
// the same optimum, without re-uploading anything.
func TestServerRestartRecoversState(t *testing.T) {
	dataDir := t.TempDir()
	opt := Options{Workers: 2, DataDir: dataDir, WALSync: "always", RetainEpochs: 4, WarmRecovery: true}

	srv1, ts1 := newTestServer(t, opt)
	putGraph(t, ts1, "k33", k33, "")
	resp, data := do(t, http.MethodPost, ts1.URL+"/graphs/k33/edges", strings.NewReader(`{"del":[[2,2]]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}
	j1 := solveSync(t, ts1, "k33", "")
	ts1.Close()
	srv1.Close()

	srv2, ts2 := newTestServer(t, opt)
	rs := srv2.RecoveredStats()
	if rs.Graphs != 1 || rs.Deltas != 1 {
		t.Fatalf("recovery stats %+v, want 1 graph, 1 delta", rs)
	}
	j2 := solveSync(t, ts2, "k33", "")
	if j1.Result == nil || j2.Result == nil {
		t.Fatalf("missing results: %+v / %+v", j1, j2)
	}
	if j2.Result.Size != j1.Result.Size || j2.Result.Epoch != j1.Result.Epoch {
		t.Fatalf("after restart solve = (size %d, epoch %d), before = (size %d, epoch %d)",
			j2.Result.Size, j2.Result.Epoch, j1.Result.Size, j1.Result.Epoch)
	}
	// Epoch 0 (pre-mutation) survived into the retention window too.
	resp, data = do(t, http.MethodPost, ts2.URL+"/graphs/k33/solve?epoch=0", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("historical solve after restart: %d %s", resp.StatusCode, data)
	}
	if j := decode[JobInfo](t, data); j.Result == nil || j.Result.Size != 3 {
		t.Fatalf("epoch-0 solve after restart %+v", j.Result)
	}
}
