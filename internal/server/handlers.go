package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/bigraph"
)

// jsonError is the uniform error envelope.
type jsonError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do but log.
		log.Printf("server: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, jsonError{Error: fmt.Sprintf(format, args...)})
}

// routes builds the HTTP API:
//
//	GET    /healthz              liveness probe (process up; always 200)
//	GET    /readyz               readiness probe (503 while draining,
//	                             catching up, or lagging past the bound)
//	GET    /replicate            stream this worker's WAL (?pos=seg:off)
//	GET    /metrics              Prometheus text exposition
//	GET    /debug/pprof/*        profiling (when Options.EnablePprof)
//	GET    /stats                store + scheduler counters
//	GET    /graphs               list stored graphs
//	PUT    /graphs/{name}        upload a graph (?format=edgelist|konect)
//	GET    /graphs/{name}        graph + cached-plan info
//	GET    /graphs/{name}/export stream a retained snapshot (?epoch=E, ?format=)
//	DELETE /graphs/{name}        drop a graph
//	POST   /graphs/{name}/edges  mutate: {"add":[[l,r],...],"del":[...]}
//	DELETE /graphs/{name}/edges  mutate: {"edges":[[l,r],...]} (delete-only)
//	POST   /graphs/{name}/jobs   submit an async solve job (?k=, ?min=)
//	POST   /graphs/{name}/solve  synchronous solve (cancels on disconnect;
//	                             ?k= top-k list, ?min= size floor)
//	GET    /jobs                 list jobs
//	GET    /jobs/{id}            job status (+result); ?wait=1 long-polls
//	DELETE /jobs/{id}            cancel a job
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /replicate", s.handleReplicate)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.store.List())
	})
	mux.HandleFunc("PUT /graphs/{name}", s.handlePutGraph)
	mux.HandleFunc("GET /graphs/{name}", s.handleGetGraph)
	mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	mux.HandleFunc("GET /graphs/{name}/export", s.handleExport)
	mux.HandleFunc("POST /graphs/{name}/edges", s.handleMutateGraph)
	mux.HandleFunc("DELETE /graphs/{name}/edges", s.handleMutateGraph)
	mux.HandleFunc("POST /graphs/{name}/jobs", s.handleSubmit)
	mux.HandleFunc("POST /graphs/{name}/solve", s.handleSolveSync)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.sched.List())
	})
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancelJob)
	return mux
}

// ServerStats is the GET /stats payload.
type ServerStats struct {
	Graphs      int         `json:"graphs"`
	Mutations   int64       `json:"mutations"`
	PlanBuilds  int64       `json:"plan_builds"`
	PlanHits    int64       `json:"plan_hits"`
	PlanReuses  int64       `json:"plan_reuses"`
	PlanRepairs int64       `json:"plan_repairs"`
	Scheduler   SchedStats  `json:"scheduler"`
	Uptime      float64     `json:"uptime_seconds"`
	GraphList   []GraphInfo `json:"graph_list,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	graphs := s.store.List()
	st := ServerStats{
		Graphs:    len(graphs),
		Scheduler: s.sched.Stats(s.opt.Workers),
		Uptime:    time.Since(s.started).Seconds(),
	}
	for _, gi := range graphs {
		st.Mutations += gi.Mutations
		st.PlanBuilds += gi.PlanBuilds
		st.PlanHits += gi.PlanHits
		st.PlanReuses += gi.PlanReuses
		st.PlanRepairs += gi.PlanRepairs
	}
	if r.URL.Query().Get("graphs") != "" {
		st.GraphList = graphs
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePutGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.misdirected(w, name) {
		return
	}
	format, err := ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes)
	g, err := s.store.Parse(body, format)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "parse %s: %v", format, err)
		return
	}
	sg, err := s.store.Put(name, g)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sg.Info())
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, sg.Info())
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	if s.misdirected(w, r.PathValue("name")) {
		return
	}
	ok, err := s.store.Delete(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// resolveEpoch resolves the optional ?epoch=E query parameter against
// the graph's retention window, defaulting to the current snapshot. A
// false return means the response was already written.
func resolveEpoch(w http.ResponseWriter, r *http.Request, sg *StoredGraph) (*Snapshot, bool) {
	q := r.URL.Query().Get("epoch")
	if q == "" {
		return sg.Snapshot(), true
	}
	epoch, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad epoch %q: %v", q, err)
		return nil, false
	}
	snap, ok := sg.SnapshotAt(epoch)
	if !ok {
		lo, hi, _ := sg.RetainedRange()
		writeError(w, http.StatusNotFound, "epoch %d of graph %q is outside the retention window [%d, %d]",
			epoch, sg.Name(), lo, hi)
		return nil, false
	}
	return snap, true
}

// handleExport streams a retained snapshot's exact graph bytes out of
// the live daemon: KONECT by default, the text edge-list format with
// ?format=edgelist. ?epoch=E picks any epoch in the retention window.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	format := FormatKONECT
	if q := r.URL.Query().Get("format"); q != "" {
		var err error
		if format, err = ParseFormat(q); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	snap, ok := resolveEpoch(w, r, sg)
	if !ok {
		return
	}
	// Pin for the duration of the stream so the retention trimmer keeps
	// the epoch resolvable while it is being read.
	snap.pin()
	defer snap.unpin()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Graph-Epoch", strconv.FormatUint(snap.Epoch(), 10))
	var err error
	if format == FormatKONECT {
		err = bigraph.WriteKONECT(w, snap.Graph())
	} else {
		err = bigraph.Write(w, snap.Graph())
	}
	if err != nil {
		// Headers (and likely part of the body) are gone; log is all
		// that is left.
		log.Printf("server: export %s@%d: %v", sg.Name(), snap.Epoch(), err)
	}
}

// MutateRequest is the JSON body of the edge-mutation endpoints. POST
// applies deletions then additions in one atomic epoch bump; DELETE is
// the delete-only form and accepts the edges to remove under "edges"
// (or "del" — they are merged).
type MutateRequest struct {
	Add   [][2]int `json:"add,omitempty"`
	Del   [][2]int `json:"del,omitempty"`
	Edges [][2]int `json:"edges,omitempty"` // DELETE shorthand for Del
}

func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	if s.misdirected(w, r.PathValue("name")) {
		return
	}
	sg, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return
	}
	var req MutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "mutation exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return
	}
	d := bigraph.Delta{Add: req.Add, Del: req.Del}
	if r.Method == http.MethodDelete {
		if len(req.Add) > 0 {
			writeError(w, http.StatusBadRequest, "DELETE /edges cannot add edges; use POST with \"add\"")
			return
		}
		d.Del = append(d.Del, req.Edges...)
	} else if len(req.Edges) > 0 {
		writeError(w, http.StatusBadRequest, "\"edges\" is the DELETE shorthand; POST takes \"add\" and \"del\"")
		return
	}
	if d.Empty() {
		writeError(w, http.StatusBadRequest, "empty mutation: provide \"add\" and/or \"del\" edge batches")
		return
	}
	_, info, err := sg.Mutate(d)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// decodeSolveRequest reads an optional JSON body; an empty body is the
// zero request (auto solver, default budget).
func decodeSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	err := dec.Decode(&req)
	if err == nil || errors.Is(err, io.EOF) {
		return req, nil
	}
	return req, err
}

// queryIntParam reads an integer URL query parameter that mirrors a JSON
// body field (?k= ↔ "k", ?min= ↔ "min_size"). A missing parameter keeps
// the body value; a parameter that contradicts a nonzero body value is a
// conflict the client must resolve, not a precedence puzzle the server
// guesses at. Range validation (negatives) stays with mbb.Options.
func queryIntParam(r *http.Request, name string, body int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return body, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: not an integer", name, raw)
	}
	if body != 0 && v != body {
		return 0, fmt.Errorf("conflicting %s: URL parameter says %d, body says %d", name, v, body)
	}
	return v, nil
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	if s.replicaGate(w, r.PathValue("name")) {
		return nil, false
	}
	sg, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("name"))
		return nil, false
	}
	req, err := decodeSolveRequest(r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// An oversized body is the client exceeding a documented
			// limit, not a malformed request: 413, like the upload path.
			writeError(w, http.StatusRequestEntityTooLarge, "solve request exceeds %d bytes", tooBig.Limit)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	if req.TopK, err = queryIntParam(r, "k", req.TopK); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	if req.MinSize, err = queryIntParam(r, "min", req.MinSize); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	snap, ok := resolveEpoch(w, r, sg)
	if !ok {
		return nil, false
	}
	job, err := s.sched.SubmitSnapshot(sg, snap, req, RequestIDFromContext(r.Context()))
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
			// Closed and draining are transient behind a restart or a
			// load balancer — tell the client when to come back, exactly
			// like the queue-full 503.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return nil, false
	}
	return job, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submitJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleSolveSync submits a job and waits for it, cancelling the job if
// the client disconnects — the request context is the job's leash.
func (s *Server) handleSolveSync(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submitJob(w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		s.sched.Cancel(job.ID())
		// Cancellation is cooperative and normally prompt, but a wedged
		// or slow-to-cancel solver must not pin this handler goroutine
		// forever: bound the wait by CancelWait and by server shutdown
		// (Close cancels every job, yet a solver ignoring its context
		// would still never close Done).
		var bound <-chan time.Time
		if s.opt.CancelWait > 0 {
			t := time.NewTimer(s.opt.CancelWait)
			defer t.Stop()
			bound = t.C
		}
		select {
		case <-job.Done():
		case <-bound:
			s.metrics.abandonedWaits.Add(1)
			log.Printf("server: job %s (request %s) still not stopped %v after client disconnect; abandoning wait",
				job.ID(), RequestIDFromContext(r.Context()), s.opt.CancelWait)
		case <-s.closing:
			s.metrics.abandonedWaits.Add(1)
			log.Printf("server: abandoning wait for job %s (request %s): server closing",
				job.ID(), RequestIDFromContext(r.Context()))
		}
	}
	info := job.Info()
	status := http.StatusOK
	if info.State == JobFailed {
		// Status-code-checking clients must not mistake a failed solve
		// (e.g. a solver rejecting the graph) for a success with an
		// empty result.
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, info)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" && wait != "0" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, job.Info())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Hold the job before cancelling: Cancel makes it terminal, which is
	// exactly what lets a concurrent Submit's retention pruning evict it.
	job, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.sched.Cancel(id)
	writeJSON(w, http.StatusOK, job.Info())
}
