package server

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadDirSkipsHiddenFiles is the regression test for the dotfile
// preload bug: filepath.Ext strips a dotfile's entire name (".gitignore"
// has extension ".gitignore"), producing an empty graph name that fails
// validation and used to abort the whole preload. Hidden files must be
// skipped, not fatal.
func TestLoadDirSkipsHiddenFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"tiny.txt":   "2 2 2\n0 0\n1 1\n",
		".gitignore": "*.log\n",
		".DS_Store":  "\x00\x01junk",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore(0, 0)
	n, err := s.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d graphs, want 1", n)
	}
	sg, ok := s.Get("tiny")
	if !ok {
		t.Fatal("graph \"tiny\" not loaded")
	}
	if g := sg.Graph(); g.NL() != 2 || g.NR() != 2 || g.NumEdges() != 2 {
		t.Fatalf("loaded graph %dx%d/%d, want 2x2/2", g.NL(), g.NR(), g.NumEdges())
	}
}

// TestLoadDirOnlyHiddenFiles: a directory holding nothing but dotfiles
// preloads zero graphs without error.
func TestLoadDirOnlyHiddenFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".DS_Store"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(0, 0)
	n, err := s.LoadDir(dir)
	if err != nil || n != 0 {
		t.Fatalf("LoadDir = (%d, %v), want (0, nil)", n, err)
	}
}
