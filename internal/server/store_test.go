package server

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadDirSkipsHiddenFiles is the regression test for the dotfile
// preload bug: filepath.Ext strips a dotfile's entire name (".gitignore"
// has extension ".gitignore"), producing an empty graph name that fails
// validation and used to abort the whole preload. Hidden files must be
// skipped, not fatal.
func TestLoadDirSkipsHiddenFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"tiny.txt":   "2 2 2\n0 0\n1 1\n",
		".gitignore": "*.log\n",
		".DS_Store":  "\x00\x01junk",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore(0, 0)
	rep, err := s.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if rep.Loaded != 1 {
		t.Fatalf("loaded %d graphs, want 1", rep.Loaded)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("unexpected per-file failures: %v", rep.Failed)
	}
	sg, ok := s.Get("tiny")
	if !ok {
		t.Fatal("graph \"tiny\" not loaded")
	}
	if g := sg.Graph(); g.NL() != 2 || g.NR() != 2 || g.NumEdges() != 2 {
		t.Fatalf("loaded graph %dx%d/%d, want 2x2/2", g.NL(), g.NR(), g.NumEdges())
	}
}

// TestLoadDirOnlyHiddenFiles: a directory holding nothing but dotfiles
// preloads zero graphs without error.
func TestLoadDirOnlyHiddenFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".DS_Store"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(0, 0)
	rep, err := s.LoadDir(dir)
	if err != nil || rep.Loaded != 0 || len(rep.Failed) != 0 {
		t.Fatalf("LoadDir = (%+v, %v), want (0 loaded, nil)", rep, err)
	}
}

// TestLoadDirSkipsBadFiles: a corrupt file in the preload directory is
// logged and skipped — the remaining graphs still load and the report
// names the failure.
func TestLoadDirSkipsBadFiles(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"good.txt":   "2 2 2\n0 0\n1 1\n",
		"bad.txt":    "this is not a graph\n",
		"alsook.txt": "1 1 1\n0 0\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore(0, 0)
	rep, err := s.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if rep.Loaded != 2 {
		t.Fatalf("loaded %d graphs, want 2", rep.Loaded)
	}
	if len(rep.Failed) != 1 || filepath.Base(rep.Failed[0].File) != "bad.txt" {
		t.Fatalf("failed = %v, want one entry for bad.txt", rep.Failed)
	}
	if rep.Failed[0].Error() == "" {
		t.Fatal("LoadError.Error should describe the failure")
	}
	for _, name := range []string{"good", "alsook"} {
		if _, ok := s.Get(name); !ok {
			t.Fatalf("graph %q not loaded", name)
		}
	}
}
