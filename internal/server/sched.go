package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/mbb"
)

// JobState is the lifecycle of a solve job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// SolveRequest is the JSON body of a solve submission. The zero value
// asks for the automatic solver with the server's default budget; all
// budget fields pass straight through to mbb.Options, whose entry-point
// validation turns nonsense (negative budgets, unknown solvers) into a
// 400 at submit time rather than a late job failure.
type SolveRequest struct {
	// Solver is a registry name ("auto", "hbvMBB", "denseMBB", ...);
	// empty means auto.
	Solver string `json:"solver,omitempty"`
	// Timeout is a Go duration string ("500ms", "30s"); empty picks the
	// server default, and the server-wide maximum always applies.
	Timeout string `json:"timeout,omitempty"`
	// MaxNodes bounds the search nodes spent on the job; 0 = unlimited.
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// Workers is the per-job goroutine budget (0/1 sequential).
	Workers int `json:"workers,omitempty"`
	// Reduce is the planner mode: "auto" (default), "on", "off". When
	// the planner applies, the solve reuses the graph's cached plan.
	Reduce string `json:"reduce,omitempty"`
	// TopK asks for the k largest distinct balanced sizes (0/1 = the
	// classic single maximum). Also settable via the ?k= URL parameter.
	TopK int `json:"k,omitempty"`
	// MinSize is the size-constrained floor: only bicliques of at least
	// MinSize per side count; an empty exact result is a proof of
	// absence. Also settable via the ?min= URL parameter.
	MinSize int `json:"min_size,omitempty"`
}

// resolve turns the wire request into validated mbb.Options plus the
// cached-plan decision. defTimeout fills an unset timeout; maxTimeout
// (when > 0) caps any timeout, including "unlimited"; maxWorkers (when
// > 0) clamps the per-job goroutine budget — an uncapped client value
// would size channels and goroutine pools inside the solvers.
func (r SolveRequest) resolve(defTimeout, maxTimeout time.Duration, maxWorkers int) (*mbb.Options, bool, error) {
	opt := &mbb.Options{Solver: r.Solver, MaxNodes: r.MaxNodes, Workers: r.Workers, TopK: r.TopK, MinSize: r.MinSize}
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil {
			return nil, false, fmt.Errorf("bad timeout %q: %w", r.Timeout, err)
		}
		opt.Timeout = d
	} else {
		opt.Timeout = defTimeout
	}
	reduce, ok := mbb.ParseReduce(r.Reduce)
	if !ok {
		return nil, false, fmt.Errorf("bad reduce mode %q (want auto, on or off)", r.Reduce)
	}
	opt.Reduce = reduce
	if err := opt.Validate(); err != nil {
		return nil, false, err
	}
	if maxTimeout > 0 && (opt.Timeout <= 0 || opt.Timeout > maxTimeout) {
		opt.Timeout = maxTimeout
	}
	if maxWorkers > 0 && opt.Workers > maxWorkers {
		opt.Workers = maxWorkers
	}
	usePlan, err := opt.PlanActive()
	if err != nil {
		return nil, false, err // unknown solver
	}
	return opt, usePlan, nil
}

// StatsJSON is the wire form of the search statistics the service
// reports per job: the planner's cached-reduction story (τ, peeled,
// components) plus the search effort.
type StatsJSON struct {
	Nodes      int64  `json:"nodes"`
	Tau        int    `json:"tau"`
	Peeled     int64  `json:"peeled"`
	Components int    `json:"components"`
	Repairs    int    `json:"repairs,omitempty"` // plan repairs the serving plan accumulated
	Step       string `json:"step,omitempty"`
	TimedOut   bool   `json:"timed_out"`
}

func statsJSON(s core.Stats) StatsJSON {
	out := StatsJSON{
		Nodes: s.Nodes, Tau: s.SeedTau, Peeled: s.Peeled,
		Components: s.Components, Repairs: s.Repairs, TimedOut: s.TimedOut,
	}
	if s.Step != core.StepNone {
		out.Step = s.Step.String()
	}
	return out
}

// BicliqueJSON is one entry of a top-k answer list on the wire: a
// balanced witness in side-local indices, like the scalar A/B fields.
type BicliqueJSON struct {
	Size int   `json:"size"`
	A    []int `json:"a"`
	B    []int `json:"b"`
}

// JobResult is the outcome of a finished (or canceled-midway) job. A and
// B are side-local indices like the CLI prints. Epoch is the snapshot
// version the job solved: the result is exact (when Exact) for exactly
// that published version of the graph, which may be older than the
// store's current epoch if mutations landed while the job ran.
//
// Gap is always present (including on canceled jobs' best-so-far
// results): the certified optimality gap of the answer, 0 when Exact.
// Bicliques appears only for top-k submissions (k > 1), one witness per
// distinct size, largest first.
type JobResult struct {
	Size       int            `json:"size"`
	A          []int          `json:"a"`
	B          []int          `json:"b"`
	Bicliques  []BicliqueJSON `json:"bicliques,omitempty"`
	Exact      bool           `json:"exact"`
	Gap        int            `json:"gap"`
	Epoch      uint64         `json:"epoch"`
	Solver     string         `json:"solver"`
	Reduced    bool           `json:"reduced"`
	PlanCached bool           `json:"plan_cached"`
	Seconds    float64        `json:"seconds"`
	Stats      StatsJSON      `json:"stats"`
}

// Job is one scheduled solve. All mutable state is behind mu; Done is
// closed exactly once when the job reaches a terminal state.
type Job struct {
	id     string
	origin string // request id of the submitting HTTP request, if any
	// graphName, not *StoredGraph: a terminal job retained for status
	// queries must not keep a replaced graph generation (and its current
	// snapshot) alive — the name is all Info ever needs.
	graphName string
	snap      *Snapshot // pinned at submission: mutations never move a job
	opt       *mbb.Options
	usePlan   bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	state      JobState
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	canceled   bool
	result     *JobResult
	errMsg     string
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobInfo is the JSON status view of a job. RequestID names the HTTP
// request that submitted it, so a job can be joined back to the access
// log and to the client's own tracing.
type JobInfo struct {
	ID        string     `json:"id"`
	RequestID string     `json:"request_id,omitempty"`
	Graph     string     `json:"graph"`
	State     JobState   `json:"state"`
	Queued    string     `json:"queued"`
	Started   string     `json:"started,omitempty"`
	Finished  string     `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Info returns the job's status snapshot.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.id,
		RequestID: j.origin,
		Graph:     j.graphName,
		State:     j.state,
		Queued:    j.queuedAt.UTC().Format(time.RFC3339Nano),
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.startedAt.IsZero() {
		info.Started = j.startedAt.UTC().Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		info.Finished = j.finishedAt.UTC().Format(time.RFC3339Nano)
	}
	return info
}

// ErrQueueFull is returned by Submit when the job queue is at capacity —
// the server-wide admission bound (HTTP maps it to 503).
var ErrQueueFull = errors.New("server: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: scheduler closed")

// ErrDraining is returned by Submit while the scheduler is draining:
// admission is over but in-flight jobs are still finishing. Clients
// should retry against the restarted (or replacement) daemon — the
// HTTP layer maps it to a 503 with Retry-After.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// retainFinished bounds how many finished jobs stay queryable; beyond
// it the oldest finished jobs are pruned so a long-running daemon's job
// table cannot grow without bound.
const retainFinished = 1024

// Scheduler runs solve jobs on a fixed pool of worker goroutines
// draining a bounded queue. The pool size is the server-wide
// concurrent-solve cap; the queue depth is the admission bound. Each job
// solves on its own execution context (per-job timeout and node budget)
// and is cancelable while queued or running.
type Scheduler struct {
	queue      chan *Job
	defTimeout time.Duration
	maxTimeout time.Duration
	maxWorkers int

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing and pruning
	closed bool

	nextID   atomic.Int64
	running  atomic.Int64
	live     atomic.Int64 // jobs not yet terminal (queued + running)
	draining atomic.Bool

	// Cumulative outcome counters for /metrics — unlike Stats, these
	// never decrease when finished jobs are pruned from the table.
	ctrSubmitted atomic.Int64
	ctrDone      atomic.Int64
	ctrFailed    atomic.Int64
	ctrCanceled  atomic.Int64

	wg sync.WaitGroup
}

// SchedCounters is the cumulative, prune-proof job accounting.
type SchedCounters struct {
	Submitted int64
	Done      int64
	Failed    int64
	Canceled  int64
}

// Counters returns the cumulative job counters.
func (s *Scheduler) Counters() SchedCounters {
	return SchedCounters{
		Submitted: s.ctrSubmitted.Load(),
		Done:      s.ctrDone.Load(),
		Failed:    s.ctrFailed.Load(),
		Canceled:  s.ctrCanceled.Load(),
	}
}

// QueueDepth reports how many jobs are waiting in the queue.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// QueueCapacity reports the admission bound.
func (s *Scheduler) QueueCapacity() int { return cap(s.queue) }

// Running reports how many jobs are executing right now.
func (s *Scheduler) Running() int64 { return s.running.Load() }

// Live reports how many jobs have not reached a terminal state.
func (s *Scheduler) Live() int64 { return s.live.Load() }

// Drain stops admission without touching in-flight jobs: Submit returns
// ErrDraining while queued and running jobs finish naturally. Use
// WaitIdle to find out when they have.
func (s *Scheduler) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until no job is queued or running, or ctx expires
// (returning its error). It does not stop admission by itself — pair it
// with Drain, or new submissions can keep it waiting forever.
func (s *Scheduler) WaitIdle(ctx context.Context) error {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.live.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// finish records a job's terminal accounting. Call exactly once per
// job, at the point its done channel is closed.
func (s *Scheduler) finish(state JobState) {
	switch state {
	case JobDone:
		s.ctrDone.Add(1)
	case JobFailed:
		s.ctrFailed.Add(1)
	case JobCanceled:
		s.ctrCanceled.Add(1)
	}
	s.live.Add(-1)
}

// NewScheduler starts workers goroutines (min 1) draining a queue of
// queueCap slots (min 1). defTimeout fills unset per-job timeouts;
// maxTimeout (when > 0) caps every job's timeout, including "unlimited"
// requests; maxWorkers (when > 0) clamps each job's requested goroutine
// budget.
func NewScheduler(workers, queueCap int, defTimeout, maxTimeout time.Duration, maxWorkers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &Scheduler{
		queue:      make(chan *Job, queueCap),
		defTimeout: defTimeout,
		maxTimeout: maxTimeout,
		maxWorkers: maxWorkers,
		jobs:       make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.run(job)
			}
		}()
	}
	return s
}

// Submit validates req, enqueues a job against sg's current snapshot and
// returns it. The job pins that Snapshot for its whole life, so neither
// a concurrent store delete nor an edge mutation affects it: the solve
// runs against exactly one published version and reports its epoch.
func (s *Scheduler) Submit(sg *StoredGraph, req SolveRequest) (*Job, error) {
	return s.SubmitOrigin(sg, req, "")
}

// SubmitOrigin is Submit carrying the request id of the HTTP request
// that asked for the job, so job info and logs can be joined back to
// the client's trace.
func (s *Scheduler) SubmitOrigin(sg *StoredGraph, req SolveRequest, origin string) (*Job, error) {
	return s.SubmitSnapshot(sg, sg.Snapshot(), req, origin)
}

// SubmitSnapshot is SubmitOrigin against an explicit snapshot — the
// entry point for epoch-pinned historical solves (?epoch=E resolves a
// retained snapshot first). The job pins snap for its whole run, which
// keeps the epoch inside the retention window until the solve finishes.
func (s *Scheduler) SubmitSnapshot(sg *StoredGraph, snap *Snapshot, req SolveRequest, origin string) (*Job, error) {
	opt, usePlan, err := req.resolve(s.defTimeout, s.maxTimeout, s.maxWorkers)
	if err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	snap.pin()
	job := &Job{
		graphName: sg.Name(), origin: origin, snap: snap, opt: opt, usePlan: usePlan,
		ctx: ctx, cancel: cancel,
		done:  make(chan struct{}),
		state: JobQueued, queuedAt: time.Now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		cancel()
		snap.unpin()
		return nil, ErrClosed
	}
	job.id = fmt.Sprintf("j%d", s.nextID.Add(1))
	select {
	case s.queue <- job:
	default:
		cancel()
		snap.unpin()
		return nil, ErrQueueFull
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.ctrSubmitted.Add(1)
	s.live.Add(1)
	s.pruneLocked()
	return job, nil
}

// releaseSnap drops a terminal job's snapshot pin and reference exactly
// once. Callers hold job.mu.
func releaseSnap(job *Job) {
	if job.snap != nil {
		job.snap.unpin()
		job.snap = nil
	}
}

// pruneLocked drops the oldest finished jobs beyond retainFinished.
func (s *Scheduler) pruneLocked() {
	if len(s.jobs) <= retainFinished {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - retainFinished
	for _, id := range s.order {
		job := s.jobs[id]
		if excess > 0 && job != nil {
			job.mu.Lock()
			terminal := job.state.Terminal()
			job.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// run executes one dequeued job.
func (s *Scheduler) run(job *Job) {
	job.mu.Lock()
	if job.state.Terminal() { // canceled while queued
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.startedAt = time.Now()
	job.mu.Unlock()

	s.running.Add(1)
	defer s.running.Add(-1)

	start := time.Now()
	var (
		res        mbb.Result
		err        error
		planCached bool
	)
	if job.usePlan {
		var plan *mbb.Plan
		var built bool
		plan, built, err = job.snap.Plan()
		planCached = err == nil && !built
		if err == nil {
			res, err = plan.SolveContext(job.ctx, job.opt)
		}
	} else {
		res, err = mbb.SolveContext(job.ctx, job.snap.Graph(), job.opt)
	}
	secs := time.Since(start).Seconds()

	job.mu.Lock()
	defer job.mu.Unlock()
	job.finishedAt = time.Now()
	switch {
	case job.canceled && errors.Is(err, context.Canceled):
		// The cancellation itself surfaced as an error from the solver
		// path. That is a canceled job, not a failed one — there is no
		// best-so-far result to keep, but the state must say "canceled"
		// so clients can tell their own cancel apart from a crash.
		job.state = JobCanceled
	case err != nil:
		job.state = JobFailed
		job.errMsg = err.Error()
	case job.canceled:
		// Canceled mid-run: the engine returned the best-so-far witness
		// with Exact == false; keep it — a canceled solve is still a
		// valid (inexact) answer.
		job.state = JobCanceled
		job.result = jobResult(job.snap, res, planCached, secs)
	default:
		job.state = JobDone
		job.result = jobResult(job.snap, res, planCached, secs)
	}
	// Release the snapshot pin: the result already carries the epoch,
	// and a terminal job retained for status queries must not keep a
	// whole historical graph version (plus plan) alive with it.
	releaseSnap(job)
	s.finish(job.state)
	close(job.done)
}

func jobResult(snap *Snapshot, res mbb.Result, planCached bool, secs float64) *JobResult {
	g := snap.Graph()
	localize := func(ids []int) []int {
		out := make([]int, len(ids))
		for i, v := range ids {
			out[i] = g.LocalIndex(v)
		}
		return out
	}
	jr := &JobResult{
		Size: res.Biclique.Size(), A: localize(res.Biclique.A), B: localize(res.Biclique.B),
		Exact: res.Exact, Gap: res.Gap, Epoch: snap.Epoch(), Solver: res.Solver, Reduced: res.Reduced,
		PlanCached: planCached, Seconds: secs, Stats: statsJSON(res.Stats),
	}
	if res.Bicliques != nil {
		jr.Bicliques = make([]BicliqueJSON, len(res.Bicliques))
		for i, bc := range res.Bicliques {
			jr.Bicliques[i] = BicliqueJSON{Size: bc.Size(), A: localize(bc.A), B: localize(bc.B)}
		}
	}
	return jr
}

// Get returns a job by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Cancel requests cooperative cancellation of a job. A queued job
// finishes immediately as canceled; a running job's execution context is
// cancelled and the job lands in JobCanceled with its best-so-far
// result. Returns false for unknown ids, true otherwise (including jobs
// already terminal — cancellation is idempotent).
func (s *Scheduler) Cancel(id string) bool {
	job, ok := s.Get(id)
	if !ok {
		return false
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state.Terminal() {
		return true
	}
	job.canceled = true
	job.cancel()
	if job.state == JobQueued {
		// Finish now: the worker that eventually pops it will skip it.
		job.state = JobCanceled
		job.finishedAt = time.Now()
		releaseSnap(job) // release the pinned snapshot, as in run()
		s.finish(job.state)
		close(job.done)
	}
	return true
}

// List returns every retained job's info in submission order.
func (s *Scheduler) List() []JobInfo {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if job, ok := s.jobs[id]; ok {
			jobs = append(jobs, job)
		}
	}
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, job := range jobs {
		out[i] = job.Info()
	}
	return out
}

// SchedStats is the scheduler section of GET /stats.
type SchedStats struct {
	Workers  int   `json:"workers"`
	QueueCap int   `json:"queue_cap"`
	Queued   int   `json:"queued"`
	Running  int64 `json:"running"`
	Done     int   `json:"done"`
	Failed   int   `json:"failed"`
	Canceled int   `json:"canceled"`
}

// Stats counts jobs by state.
func (s *Scheduler) Stats(workers int) SchedStats {
	st := SchedStats{Workers: workers, QueueCap: cap(s.queue), Running: s.running.Load()}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, job := range s.jobs {
		jobs = append(jobs, job)
	}
	s.mu.Unlock()
	for _, job := range jobs {
		job.mu.Lock()
		state := job.state
		job.mu.Unlock()
		switch state {
		case JobQueued:
			st.Queued++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCanceled:
			st.Canceled++
		}
	}
	return st
}

// Close stops admission, cancels every live job and waits for the
// workers to drain. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, job := range s.jobs {
		jobs = append(jobs, job)
	}
	close(s.queue)
	s.mu.Unlock()
	ids := make([]string, 0, len(jobs))
	for _, job := range jobs {
		ids = append(ids, job.id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.Cancel(id)
	}
	s.wg.Wait()
}
