package server

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestIDMiddleware(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFromContext(r.Context())
	}))
	serve := func(inbound string) string {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if inbound != "" {
			req.Header.Set("X-Request-Id", inbound)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Header().Get("X-Request-Id")
	}

	if got := serve("client-7"); got != "client-7" || seen != "client-7" {
		t.Errorf("valid inbound id: header %q, context %q, want client-7 for both", got, seen)
	}
	if got := serve(""); got == "" || seen != got {
		t.Errorf("generated id: header %q, context %q — want non-empty and equal", got, seen)
	}
	for _, bad := range []string{"has space", "quo\"te", strings.Repeat("x", 65), "ctrl\x01"} {
		if got := serve(bad); got == bad || got == "" {
			t.Errorf("hostile id %q was echoed (got %q); want a fresh generated id", bad, got)
		}
	}
	// Generated ids must be unique per request.
	if a, b := serve(""), serve(""); a == b {
		t.Errorf("two generated ids collide: %q", a)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	old := recoverLog
	recoverLog = log.New(io.Discard, "", 0)
	defer func() { recoverLog = old }()

	m := NewMetrics()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/late" {
			w.WriteHeader(http.StatusAccepted) // status already committed
		}
		panic("boom")
	}), Instrument(m, nil), Recover(m))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/early", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panic before write: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal server error") {
		t.Errorf("panic response body %q lacks the error envelope", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rec.Code != http.StatusAccepted {
		t.Errorf("panic after write: status %d, want the committed 202", rec.Code)
	}
	if got := m.Panics(); got != 2 {
		t.Errorf("Panics = %d, want 2", got)
	}

	// http.ErrAbortHandler keeps its net/http abort semantics.
	abort := Recover(m)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if p := recover(); p != http.ErrAbortHandler {
				t.Errorf("recovered %v, want http.ErrAbortHandler to propagate", p)
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}()
}

func TestTimeoutMiddleware(t *testing.T) {
	m := NewMetrics()
	h := Timeout(10*time.Millisecond, m)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // a handler that honors its context
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout middleware let the handler run %v", d)
	}
	if got := m.timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}

	// Zero disables the layer: the handler sees no deadline.
	var hasDeadline bool
	off := Timeout(0, m)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
	}))
	off.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if hasDeadline {
		t.Error("Timeout(0) still imposed a deadline")
	}
}

// gateWriter blocks its first Write until released, so the test can
// deterministically wedge the ring consumer and force overwrites.
type gateWriter struct {
	entered chan struct{} // closed when Write is first called
	release chan struct{}
	got     []byte
}

func (w *gateWriter) Write(p []byte) (int, error) {
	select {
	case <-w.entered:
	default:
		close(w.entered)
		<-w.release
	}
	w.got = append(w.got, p...)
	return len(p), nil
}

func TestRingLoggerDropsWhenWedged(t *testing.T) {
	const capacity = 16
	gw := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	l := NewRingLogger(gw, capacity)

	// One record wakes the consumer, which wedges inside Write.
	l.Record("r0", "GET", "/p0", 200, 1, time.Millisecond)
	<-gw.entered

	// Fill the (now empty) ring, then three more to force overwrites.
	for i := 0; i < capacity+3; i++ {
		l.Record("rX", "GET", "/pX", 200, 1, time.Millisecond)
	}
	if got := l.Dropped(); got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	if got := l.Logged(); got != capacity+4 {
		t.Errorf("Logged = %d, want %d", got, capacity+4)
	}

	close(gw.release)
	l.Close() // flushes the surviving records

	out := string(gw.got)
	if n := strings.Count(out, "\n"); n != capacity+1 {
		t.Errorf("sink got %d lines, want %d (1 + the %d survivors)", n, capacity+1, capacity)
	}
	for _, want := range []string{"id=r0", "method=GET", "path=/p0", "status=200", "bytes=1", "dur=0.001000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("access line missing %q in %q", want, out)
		}
	}
	// Records after Close are discarded, not deadlocked.
	l.Record("late", "GET", "/late", 200, 0, 0)
	if strings.Contains(string(gw.got), "late") {
		t.Error("record after Close reached the sink")
	}
}

func TestRingLoggerTruncatesLongFields(t *testing.T) {
	var sb strings.Builder
	l := NewRingLogger(writerFunc(func(p []byte) (int, error) { return sb.WriteString(string(p)) }), 16)
	longPath := "/" + strings.Repeat("p", 300)
	l.Record(strings.Repeat("i", 100), "OPTIONS", longPath, 200, 0, 0)
	l.Close()
	line := sb.String()
	if len(line) == 0 || len(line) > 400 {
		t.Errorf("truncated line has surprising length %d: %q", len(line), line)
	}
	if !strings.Contains(line, "method=OPTIONS") {
		t.Errorf("line %q lost the method", line)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	putGraph(t, ts, "k33", k33, "")
	solveSync(t, ts, "k33", "")

	resp, data := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := string(data)
	for _, want := range []string{
		`mbbserved_requests_total{route="graph",code="2xx"} 1`,
		`mbbserved_requests_total{route="solve",code="2xx"} 1`,
		"mbbserved_request_seconds_bucket{le=\"+Inf\"}",
		"mbbserved_jobs_submitted_total 1",
		`mbbserved_jobs_total{state="done"} 1`,
		"mbbserved_graphs 1",
		"mbbserved_plan_builds_total 1",
		"mbbserved_queue_capacity",
		"mbbserved_snapshots_live",
		"mbbserved_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := srv.Metrics().Requests(routeSolve); got != 1 {
		t.Errorf("Requests(routeSolve) = %d, want 1", got)
	}
}

func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Options{})
	if resp, _ := do(t, http.MethodGet, off.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Options{EnablePprof: true})
	if resp, _ := do(t, http.MethodGet, on.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with EnablePprof: status %d, want 200", resp.StatusCode)
	}
}

func TestRouteIndex(t *testing.T) {
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/healthz", routeHealthz},
		{"/metrics", routeMetrics},
		{"/stats", routeStats},
		{"/graphs", routeGraphs},
		{"/graphs/k33", routeGraph},
		{"/graphs/k33/edges", routeEdges},
		{"/graphs/k33/jobs", routeSubmit},
		{"/graphs/k33/solve", routeSolve},
		{"/jobs", routeJobs},
		{"/jobs/j1", routeJob},
		{"/debug/pprof/heap", routePprof},
		{"/nonsense", routeOther},
	} {
		if got := routeIndex(tc.path); got != tc.want {
			t.Errorf("routeIndex(%q) = %s, want %s", tc.path, routeNames[got], routeNames[tc.want])
		}
	}
}
