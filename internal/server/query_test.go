package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// twoSizes is K3,3 plus a disjoint edge: two maximal bicliques with
// distinct balanced sizes 3 and 1 — enough to exercise a top-2 list.
const twoSizes = "4 4 10\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n3 3\n"

func TestSolveTopKParam(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	putGraph(t, ts, "two", twoSizes, "")

	check := func(job JobInfo) {
		t.Helper()
		res := job.Result
		if res == nil || !res.Exact || res.Size != 3 || res.Gap != 0 {
			t.Fatalf("result %+v", res)
		}
		if len(res.Bicliques) != 2 || res.Bicliques[0].Size != 3 || res.Bicliques[1].Size != 1 {
			t.Fatalf("bicliques %+v, want sizes [3 1]", res.Bicliques)
		}
		if res.Bicliques[0].Size != res.Size {
			t.Fatalf("list head %d disagrees with scalar %d", res.Bicliques[0].Size, res.Size)
		}
	}
	// ?k= URL parameter, the body field, and both in agreement.
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/two/solve?k=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?k=2: %d %s", resp.StatusCode, data)
	}
	check(decode[JobInfo](t, data))
	check(solveSync(t, ts, "two", `{"k":2}`))
	resp, data = do(t, http.MethodPost, ts.URL+"/graphs/two/solve?k=2", strings.NewReader(`{"k":2}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("agreeing k: %d %s", resp.StatusCode, data)
	}
	check(decode[JobInfo](t, data))

	// Scalar solves must not carry a list.
	job := solveSync(t, ts, "two", "")
	if job.Result == nil || job.Result.Bicliques != nil {
		t.Fatalf("scalar solve grew a list: %+v", job.Result)
	}
}

func TestSolveMinParam(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	putGraph(t, ts, "two", twoSizes, "")

	// Floor below the optimum: unchanged answer.
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/two/solve?min=2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?min=2: %d %s", resp.StatusCode, data)
	}
	if job := decode[JobInfo](t, data); job.Result == nil || job.Result.Size != 3 || !job.Result.Exact {
		t.Fatalf("?min=2 result %+v", job.Result)
	}
	// Floor above the optimum: exact empty proof.
	resp, data = do(t, http.MethodPost, ts.URL+"/graphs/two/solve?min=4", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?min=4: %d %s", resp.StatusCode, data)
	}
	if job := decode[JobInfo](t, data); job.Result == nil || job.Result.Size != 0 || !job.Result.Exact {
		t.Fatalf("?min=4 result %+v, want exact empty proof", job.Result)
	}
	// Body form.
	if job := solveSync(t, ts, "two", `{"min_size":3}`); job.Result == nil || job.Result.Size != 3 {
		t.Fatalf("min_size=3 result %+v", job.Result)
	}
}

func TestSolveQueryParamErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	putGraph(t, ts, "two", twoSizes, "")
	cases := []struct {
		query, body string
	}{
		{"?k=abc", ""},
		{"?min=abc", ""},
		{"?k=-1", ""},
		{"?min=-2", ""},
		{"?k=2", `{"k":3}`},          // conflicting values
		{"?min=2", `{"min_size":3}`}, // conflicting values
		{"", `{"k":-1}`},
		{"", `{"min_size":-1}`},
	}
	for _, tc := range cases {
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/two/solve"+tc.query, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("solve%s body=%q: status %d (%s), want 400", tc.query, tc.body, resp.StatusCode, data)
		}
	}
}

// TestResultGapOnWire: the gap field is always serialized — budget-cut
// results report their certified gap, exact ones an explicit 0.
func TestResultGapOnWire(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	putGraph(t, ts, "two", twoSizes, "")
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/two/solve", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, data)
	}
	var raw struct {
		Result map[string]json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Result["gap"]; !ok {
		t.Fatalf("result JSON lacks a gap field: %s", data)
	}
	if _, ok := raw.Result["bicliques"]; ok {
		t.Fatalf("scalar result JSON carries bicliques: %s", data)
	}

	// A node-budget cut on a hard graph keeps best-so-far plus gap.
	big := genDenseBody(40)
	putGraph(t, ts, "big", big, "")
	job := solveSync(t, ts, "big", `{"max_nodes":5,"solver":"basicBB"}`)
	if job.Result == nil {
		t.Fatalf("budget-cut job lost its result: %+v", job)
	}
	if job.Result.Exact {
		t.Skip("graph solved within 5 nodes; gap path not exercised")
	}
	if job.Result.Gap <= 0 {
		t.Fatalf("inexact result gap = %d, want positive", job.Result.Gap)
	}
}

// genDenseBody builds an n×n ~70%-density edge list deterministically.
func genDenseBody(n int) string {
	var sb strings.Builder
	var edges []string
	state := uint32(2463534242)
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			state ^= state << 13
			state ^= state >> 17
			state ^= state << 5
			if state%10 < 7 {
				edges = append(edges, strconv.Itoa(l)+" "+strconv.Itoa(r)+"\n")
			}
		}
	}
	sb.WriteString(strconv.Itoa(n) + " " + strconv.Itoa(n) + " " + strconv.Itoa(len(edges)) + "\n")
	for _, e := range edges {
		sb.WriteString(e)
	}
	return sb.String()
}
