package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/mbb"
)

// stallGate is the release valve for the testStall solver: each test
// installs a fresh channel; the solver blocks on it, deliberately
// ignoring cancellation, to model a wedged or slow-to-cancel solver.
var (
	stallSolverOnce sync.Once
	stallGate       atomic.Pointer[chan struct{}]
)

func registerStallSolver(t *testing.T) chan struct{} {
	t.Helper()
	stallSolverOnce.Do(func() {
		err := mbb.Register(mbb.SolverSpec{
			Name: "testStall",
			Doc:  "test-only: ignores cancellation until its gate is closed",
			Run: func(ex *core.Exec, g *mbb.Graph, opt *mbb.Options) (core.Result, error) {
				if ch := stallGate.Load(); ch != nil {
					<-*ch
				}
				return core.Result{}, context.Canceled
			},
		})
		if err != nil {
			t.Fatalf("register stall solver: %v", err)
		}
	})
	gate := make(chan struct{})
	stallGate.Store(&gate)
	// Never leave a worker goroutine parked past the test.
	t.Cleanup(func() { releaseGate(gate) })
	return gate
}

// releaseGate closes the stall gate exactly once; tests run their
// solvers sequentially, so the check-then-close cannot race.
func releaseGate(gate chan struct{}) {
	select {
	case <-gate:
	default:
		close(gate)
	}
}

const stallBody = `{"solver":"testStall","reduce":"off","timeout":"1m"}`

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSolveBodyTooLarge is the regression test for oversized solve
// bodies: exceeding the 1 MiB cap is the client breaking a documented
// limit (413), not a malformed request (400) — on both solve endpoints.
func TestSolveBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	putGraph(t, ts, "k33", k33, "")
	big := `{"timeout":"` + strings.Repeat("x", 1<<20) + `"}`
	for _, path := range []string{"/graphs/k33/solve", "/graphs/k33/jobs"} {
		resp, data := do(t, http.MethodPost, ts.URL+path, strings.NewReader(big))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with %d-byte body: status %d (%s), want 413", path, len(big), resp.StatusCode, data)
		}
	}
	// A body inside the limit but malformed stays a 400.
	resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/k33/solve", strings.NewReader(`{"timeout":`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// TestSubmit503RetryAfter pins the Retry-After contract on all three
// transient admission failures: queue full, draining, and closed.
func TestSubmit503RetryAfter(t *testing.T) {
	t.Run("queue-full", func(t *testing.T) {
		gate := registerStallSolver(t)
		srv, ts := newTestServer(t, Options{Workers: 1, QueueCap: 1})
		putGraph(t, ts, "g", k33, "")
		// Occupy the only worker, then the only queue slot.
		for i := 0; i < 2; i++ {
			resp, data := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader(stallBody))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: %d %s", i, resp.StatusCode, data)
			}
		}
		waitFor(t, 5*time.Second, "worker to pick up the stall job", func() bool {
			return srv.Scheduler().Running() == 1
		})
		resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader(stallBody))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("over-capacity submit: status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("queue-full 503 lacks Retry-After")
		}
		releaseGate(gate)
	})

	t.Run("draining", func(t *testing.T) {
		srv, ts := newTestServer(t, Options{Workers: 1})
		putGraph(t, ts, "g", k33, "")
		srv.BeginDrain()
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader("{}"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit while draining: status %d (%s), want 503", resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("draining 503 lacks Retry-After")
		}
		if !strings.Contains(string(data), "draining") {
			t.Errorf("draining 503 body %q does not say why", data)
		}
		// Reads stay live during a drain.
		if resp, _ := do(t, http.MethodGet, ts.URL+"/graphs/g", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET /graphs/g during drain: status %d, want 200", resp.StatusCode)
		}
	})

	t.Run("closed", func(t *testing.T) {
		srv, ts := newTestServer(t, Options{Workers: 1})
		putGraph(t, ts, "g", k33, "")
		srv.Close()
		resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader("{}"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("submit after close: status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("closed 503 lacks Retry-After")
		}
	})
}

// TestSolveSyncDisconnectBoundedWait is the regression test for the
// unbounded post-disconnect wait: when the client goes away and the
// canceled job's solver refuses to stop, the handler must give up after
// CancelWait instead of pinning its goroutine on <-job.Done() forever.
func TestSolveSyncDisconnectBoundedWait(t *testing.T) {
	gate := registerStallSolver(t)
	srv, ts := newTestServer(t, Options{Workers: 1, QueueCap: 4, CancelWait: 50 * time.Millisecond})
	putGraph(t, ts, "g", k33, "")

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/graphs/g/solve", strings.NewReader(stallBody)).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		srv.Handler().ServeHTTP(rec, req)
	}()

	waitFor(t, 5*time.Second, "stall job to start running", func() bool {
		return srv.Scheduler().Running() == 1
	})
	cancel() // the client disconnects; the solver keeps ignoring its context

	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("sync-solve handler still blocked 5s after client disconnect; bounded wait not applied")
	}
	if n := srv.Metrics().AbandonedWaits(); n != 1 {
		t.Errorf("AbandonedWaits = %d, want 1", n)
	}
	releaseGate(gate) // free the worker so Close does not hang
}

// TestSolveSyncDisconnectNoLeak hammers the disconnect path with real
// solves and checks (under -race in CI) that no handler or job
// goroutine outlives its request.
func TestSolveSyncDisconnectNoLeak(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, CancelWait: time.Second})
	var sb strings.Builder
	if err := mbb.WriteGraph(&sb, mbb.GenerateDense(30, 30, 0.9, 1)); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "dense", sb.String(), "")
	solveSync(t, ts, "dense", `{"timeout":"10s"}`) // warm plan and connections

	baseline := runtime.NumGoroutine()
	client := &http.Client{}
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/graphs/dense/solve",
			strings.NewReader(`{"timeout":"10s"}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
		cancel()
	}
	client.CloseIdleConnections()

	waitFor(t, 10*time.Second, "jobs to reach terminal states", func() bool {
		return srv.Scheduler().Live() == 0
	})
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d live, baseline %d — disconnected solves leaked handlers or jobs",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainCompletesInFlight drives the SIGTERM sequence through the
// library API: in-flight jobs stay pollable and finish, new submissions
// bounce with Retry-After, and WaitIdle returns once the last job ends.
func TestDrainCompletesInFlight(t *testing.T) {
	gate := registerStallSolver(t)
	srv, ts := newTestServer(t, Options{Workers: 1, QueueCap: 4})
	putGraph(t, ts, "g", k33, "")

	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader(stallBody))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	job := decode[JobInfo](t, data)
	waitFor(t, 5*time.Second, "job to start", func() bool { return srv.Scheduler().Running() == 1 })

	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/g/jobs", strings.NewReader("{}")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/jobs/"+job.ID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("job poll during drain: status %d, want 200", resp.StatusCode)
	}

	go func() {
		time.Sleep(30 * time.Millisecond)
		releaseGate(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle during drain: %v", err)
	}
	_, data = do(t, http.MethodGet, ts.URL+"/jobs/"+job.ID, nil)
	if got := decode[JobInfo](t, data); !got.State.Terminal() {
		t.Errorf("in-flight job after drain: state %q, want terminal", got.State)
	}
}

// TestJobCarriesRequestID checks the trace join: the X-Request-Id of
// the submitting request must surface in the job's status view.
func TestJobCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	putGraph(t, ts, "k33", k33, "")
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/graphs/k33/solve", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-42" {
		t.Errorf("response X-Request-Id = %q, want trace-42", got)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.RequestID != "trace-42" {
		t.Errorf("job request_id = %q, want trace-42", info.RequestID)
	}
}
