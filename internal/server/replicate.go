package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bigraph"
	"repro/internal/wal"
)

// replicateHeartbeatEvery is how often /replicate interleaves a
// heartbeat (the log's end position) between records, bounding how
// stale a replica's lag estimate can get.
const replicateHeartbeatEvery = 500 * time.Millisecond

// handleReplicate streams this worker's WAL to a replica: every record
// from the resume position (?pos=seg:off, default the oldest live
// byte) in append order, with heartbeats naming the log's end so the
// consumer can tell caught-up from behind. The stream is unbounded; it
// ends when the client disconnects, the server closes, or the blanket
// -request-timeout (if set) expires — replicas resume transparently
// from their last applied position.
//
// A resume position that compaction has dropped (or that belongs to a
// previous incarnation of the log) restarts from the oldest segment;
// the StreamStartHeader tells the consumer the position actually
// served, and the replay rules make re-delivery idempotent.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	l := s.store.WAL()
	if l == nil {
		writeError(w, http.StatusNotImplemented, "replication needs a durable store: start this worker with -data-dir")
		return
	}
	pos := l.StartPos()
	if q := r.URL.Query().Get("pos"); q != "" {
		p, err := wal.ParsePos(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Clamp positions from a previous log incarnation (the data dir
		// was rebuilt, or the consumer outlived a compaction) back to
		// the oldest live byte.
		if !p.After(l.EndPos()) && !p.Before(l.StartPos()) {
			pos = p
		}
	}
	t := l.Tail(pos)
	defer t.Close()

	w.Header().Set(wal.StreamProtoHeader, strconv.Itoa(wal.StreamProtoVersion))
	w.Header().Set(wal.StreamStartHeader, pos.String())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	s.metrics.replicateStreams.Add(1)
	defer s.metrics.replicateStreams.Add(-1)

	ctx := r.Context()
	var buf []byte
	nextHB := time.Now() // first heartbeat immediately: a caught-up replica learns so at once
	for {
		select {
		case <-s.closing:
			return
		default:
		}
		if !time.Now().Before(nextHB) {
			buf = wal.AppendStreamMsg(buf[:0], wal.StreamMsg{Kind: wal.StreamHeartbeat, Pos: l.EndPos()})
			if _, err := w.Write(buf); err != nil {
				return
			}
			flush()
			nextHB = time.Now().Add(replicateHeartbeatEvery)
		}
		rctx, cancel := context.WithDeadline(ctx, nextHB)
		rec, err := t.Next(rctx)
		cancel()
		switch {
		case err == nil:
			buf = wal.AppendStreamMsg(buf[:0], wal.StreamMsg{Kind: wal.StreamRecord, Pos: t.Pos(), Rec: rec})
			if _, werr := w.Write(buf); werr != nil {
				return
			}
			s.metrics.replicateRecords.Add(1)
			flush()
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Heartbeat due (the loop head sends it); keep tailing.
		default:
			// Client gone, server closing, or the log closed/corrupted.
			return
		}
	}
}

// ErrReplicaGap reports that the replication stream skipped state the
// replica needs (a delta for an epoch or generation it never saw). The
// consumer's remedy is a full resync: restart the stream from the
// owner's oldest segment, whose checkpoint head is complete state.
var ErrReplicaGap = errors.New("replication stream out of sequence")

// ApplyReplica folds one replicated WAL record into the store on a
// replica. It mirrors the recovery replay rules — stale records are
// skipped, full-graph records install idempotently, deltas must extend
// the current epoch by exactly one (anything else is ErrReplicaGap) —
// but with live locking, the *owner's* generation ids preserved, and no
// append to this worker's own WAL (periodic local checkpoints still
// capture replicated graphs, which is what lets a durable replica
// restart warm and re-tail from where its checkpoint left it).
//
// Every payload decodes through the versioned bigraph codec before any
// state changes, so a frame from a newer-versioned owner is rejected
// cleanly: the store is untouched, no partial apply. When warm is set,
// installed graphs build their plans in the background; deltas always
// take the carryPlan repair path, so replicas come up warm either way.
func (s *Store) ApplyReplica(rec wal.Record, warm bool) error {
	switch rec.Type {
	case wal.RecCheckpointEnd:
		return nil

	case wal.RecPut, wal.RecGraphSnap:
		g, err := bigraph.UnmarshalGraph(rec.Payload)
		if err != nil {
			return fmt.Errorf("replicated %s of %q: %w", rec.Type, rec.Name, err)
		}
		epoch := uint64(0)
		if rec.Type == wal.RecGraphSnap {
			epoch = rec.Epoch
		}
		sg := &StoredGraph{name: rec.Name, shared: &s.counters, st: s, gen: rec.Gen}
		snap := trackSnapshot(&Snapshot{sg: sg, g: g, epoch: epoch, at: time.Now()})
		sg.publish(snap)
		s.mu.Lock()
		if old, ok := s.graphs[rec.Name]; ok {
			if old.gen > rec.Gen || (old.gen == rec.Gen && old.cur.Load().epoch >= epoch) {
				// Already at or past this state (a stream restart is
				// re-delivering history).
				s.mu.Unlock()
				return nil
			}
		}
		s.graphs[rec.Name] = sg
		s.mu.Unlock()
		if warm {
			go snap.Plan()
		}
		return nil

	case wal.RecDelete:
		s.mu.Lock()
		if sg, ok := s.graphs[rec.Name]; ok && sg.gen <= rec.Gen {
			delete(s.graphs, rec.Name)
		}
		s.mu.Unlock()
		return nil

	case wal.RecDelta:
		s.mu.RLock()
		sg, ok := s.graphs[rec.Name]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: delta for unknown graph %q", ErrReplicaGap, rec.Name)
		}
		if sg.gen != rec.Gen {
			if sg.gen > rec.Gen {
				return nil // delta for a replaced incarnation: stale
			}
			return fmt.Errorf("%w: delta for %q generation %d, replica has %d", ErrReplicaGap, rec.Name, rec.Gen, sg.gen)
		}
		d, err := bigraph.UnmarshalDelta(rec.Payload)
		if err != nil {
			return fmt.Errorf("replicated delta for %q: %w", rec.Name, err)
		}
		sg.mu.Lock()
		defer sg.mu.Unlock()
		old := sg.cur.Load()
		if rec.Epoch <= old.epoch {
			return nil // covered by a snapshot that installed a later epoch
		}
		if rec.Epoch != old.epoch+1 {
			return fmt.Errorf("%w: %q at epoch %d, delta for %d", ErrReplicaGap, rec.Name, old.epoch, rec.Epoch)
		}
		g2, eff, err := old.g.Apply(d)
		if err != nil {
			return fmt.Errorf("replicated delta for %q: %w", rec.Name, err)
		}
		if eff.Empty() {
			return fmt.Errorf("replicated delta for %q had no effect: replica diverged from owner", rec.Name)
		}
		snap := trackSnapshot(&Snapshot{sg: sg, g: g2, epoch: rec.Epoch, at: time.Now()})
		rebuild := carryPlan(sg, old, snap, eff, nil)
		sg.publish(snap)
		sg.mutations.Add(1)
		if sg.shared != nil {
			sg.shared.mutations.Add(1)
		}
		if rebuild && warm {
			go snap.Plan()
		}
		return nil

	default:
		return fmt.Errorf("replicated record of unhandled type %d", rec.Type)
	}
}
