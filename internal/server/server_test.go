package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/mbb"
)

// k33 is the complete bipartite graph K3,3 in edge-list format; its
// maximum balanced biclique has size 3 per side.
const k33 = "3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n"

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.DefaultTimeout == 0 {
		opt.DefaultTimeout = time.Minute
	}
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func do(t *testing.T, method, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return v
}

func putGraph(t *testing.T, ts *httptest.Server, name, body, format string) GraphInfo {
	t.Helper()
	url := ts.URL + "/graphs/" + name
	if format != "" {
		url += "?format=" + format
	}
	resp, data := do(t, http.MethodPut, url, strings.NewReader(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT %s: %d %s", name, resp.StatusCode, data)
	}
	return decode[GraphInfo](t, data)
}

func solveSync(t *testing.T, ts *httptest.Server, graph, body string) JobInfo {
	t.Helper()
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/"+graph+"/solve", strings.NewReader(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve %s: %d %s", graph, resp.StatusCode, data)
	}
	return decode[JobInfo](t, data)
}

func TestUploadAndSolve(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	info := putGraph(t, ts, "k33", k33, "")
	if info.NL != 3 || info.NR != 3 || info.Edges != 9 {
		t.Fatalf("upload info %+v", info)
	}
	job := solveSync(t, ts, "k33", `{"timeout":"30s"}`)
	if job.State != JobDone || job.Result == nil {
		t.Fatalf("job %+v", job)
	}
	if job.Result.Size != 3 || !job.Result.Exact {
		t.Fatalf("result %+v", job.Result)
	}
}

func TestUploadKONECT(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	konect := "% bip unweighted\n% 9 3 3\n1 1\n1 2\n1 3\n2 1\n2 2\n2 3\n3 1\n3 2\n3 3\n"
	info := putGraph(t, ts, "k33k", konect, "konect")
	if info.NL != 3 || info.NR != 3 || info.Edges != 9 {
		t.Fatalf("upload info %+v", info)
	}
	job := solveSync(t, ts, "k33k", "")
	if job.Result == nil || job.Result.Size != 3 {
		t.Fatalf("job %+v", job)
	}
}

func TestUploadErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxVertices: 100})
	cases := []struct {
		name, body, format string
		wantStatus         int
	}{
		{"bad", "not a graph", "", http.StatusBadRequest},
		{"bad", k33, "nope", http.StatusBadRequest},
		{"huge", "1000000 1000000 1\n0 0\n", "", http.StatusBadRequest},
		{"hugehint", "% 1 500000 500000\n1 1\n", "konect", http.StatusBadRequest},
		{"outofhint", "% 3 2 2\n5 1\n", "konect", http.StatusBadRequest},
		{"bad name!", k33, "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := do(t, http.MethodPut, ts.URL+"/graphs/"+strings.ReplaceAll(tc.name, " ", "%20")+"?format="+tc.format, strings.NewReader(tc.body))
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("PUT %q format=%q: status %d (%s), want %d", tc.name, tc.format, resp.StatusCode, data, tc.wantStatus)
		}
	}
	resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/ghost/solve", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("solve unknown graph: %d", resp.StatusCode)
	}
}

func TestBadSolveOptions(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	putGraph(t, ts, "k33", k33, "")
	cases := []string{
		`{"max_nodes":-1}`,
		`{"workers":-2}`,
		`{"timeout":"-3s"}`,
		`{"timeout":"soon"}`,
		`{"solver":"nope"}`,
		`{"reduce":"sometimes"}`,
		`{"bogus_field":1}`,
	}
	for _, body := range cases {
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/k33/jobs", strings.NewReader(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d (%s), want 400", body, resp.StatusCode, data)
		}
	}
}

// Two overlapping jobs on the same stored graph must both complete with
// the correct optimum — the scheduler's concurrency acceptance check.
func TestOverlappingSolves(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	g := mbb.GeneratePowerLaw(200, 200, 1200, 9)
	want, err := mbb.Solve(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "pl", buf.String(), "")

	ids := make([]string, 2)
	for i := range ids {
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/pl/jobs", strings.NewReader(`{"timeout":"60s"}`))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, data)
		}
		ids[i] = decode[JobInfo](t, data).ID
	}
	for _, id := range ids {
		resp, data := do(t, http.MethodGet, ts.URL+"/jobs/"+id+"?wait=1", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wait %s: %d %s", id, resp.StatusCode, data)
		}
		job := decode[JobInfo](t, data)
		if job.State != JobDone || job.Result == nil {
			t.Fatalf("job %s: %+v", id, job)
		}
		if job.Result.Size != want.Biclique.Size() || !job.Result.Exact {
			t.Fatalf("job %s: size %d exact %v, want %d exact", id, job.Result.Size, job.Result.Exact, want.Biclique.Size())
		}
	}
	if n := srv.Store().List()[0].PlanBuilds; n != 1 {
		t.Fatalf("plan built %d times for two jobs, want 1", n)
	}
}

// A repeated query on a stored graph must reuse the cached reduction:
// the second run reports the same τ/peeled/components, flags
// plan_cached, and the store shows exactly one plan build.
func TestCachedPlanReuse(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	g := mbb.GeneratePowerLaw(150, 150, 800, 4)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "pl", buf.String(), "")

	first := solveSync(t, ts, "pl", "")
	second := solveSync(t, ts, "pl", "")
	if first.Result == nil || second.Result == nil {
		t.Fatalf("results missing: %+v / %+v", first, second)
	}
	if first.Result.PlanCached {
		t.Error("first solve claims a cached plan")
	}
	if !second.Result.PlanCached {
		t.Error("second solve did not reuse the cached plan")
	}
	fs, ss := first.Result.Stats, second.Result.Stats
	if fs.Tau != ss.Tau || fs.Peeled != ss.Peeled || fs.Components != ss.Components {
		t.Errorf("stats diverged across cached runs: %+v vs %+v", fs, ss)
	}
	if second.Result.Size != first.Result.Size {
		t.Errorf("sizes diverged: %d vs %d", first.Result.Size, second.Result.Size)
	}
	info := srv.Store().List()[0]
	if info.PlanBuilds != 1 {
		t.Errorf("plan_builds = %d after two solves, want 1", info.PlanBuilds)
	}
	if info.PlanHits < 1 {
		t.Errorf("plan_hits = %d, want >= 1", info.PlanHits)
	}
	if info.SeedTau != fs.Tau || int64(info.Peeled) != fs.Peeled || info.Components != fs.Components {
		t.Errorf("graph info plan stats %+v disagree with job stats %+v", info, fs)
	}
}

// DELETE /jobs/{id} must stop a running solve promptly; the job lands in
// "canceled" with its best-so-far result and Exact == false.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	g := mbb.GenerateDense(46, 46, 0.93, 7)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "hard", buf.String(), "")

	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/hard/jobs",
		strings.NewReader(`{"solver":"basicBB","timeout":"5m"}`))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	id := decode[JobInfo](t, data).ID

	time.Sleep(150 * time.Millisecond) // let the worker pick it up
	cancelAt := time.Now()
	resp, data = do(t, http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d %s", resp.StatusCode, data)
	}
	resp, data = do(t, http.MethodGet, ts.URL+"/jobs/"+id+"?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: %d %s", resp.StatusCode, data)
	}
	if elapsed := time.Since(cancelAt); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	job := decode[JobInfo](t, data)
	if job.State != JobCanceled {
		t.Fatalf("state %q, want canceled (job %+v)", job.State, job)
	}
	if job.Result != nil && job.Result.Exact {
		t.Fatal("canceled job claims an exact result")
	}
}

// A job canceled while still queued finishes immediately as canceled
// without ever running.
func TestCancelQueuedJob(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueCap: 4, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g := mbb.GenerateDense(46, 46, 0.93, 3)
	sg, err := srv.Store().Put("hard", g)
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := srv.Scheduler().Submit(sg, SolveRequest{Solver: "basicBB", Timeout: "5m"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Scheduler().Submit(sg, SolveRequest{Solver: "basicBB", Timeout: "5m"})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.Scheduler().Cancel(queued.ID()) {
		t.Fatal("cancel queued job failed")
	}
	select {
	case <-queued.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("queued job not done after cancel")
	}
	if info := queued.Info(); info.State != JobCanceled || info.Started != "" {
		t.Fatalf("queued job info %+v", info)
	}
	srv.Scheduler().Cancel(blocker.ID())
	<-blocker.Done()
}

// The queue is the admission bound: with one busy worker and a full
// queue, further submissions are rejected with ErrQueueFull (HTTP 503).
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueCap: 1})
	g := mbb.GenerateDense(46, 46, 0.93, 5)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "hard", buf.String(), "")

	submit := func() (int, JobInfo) {
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/hard/jobs",
			strings.NewReader(`{"solver":"basicBB","timeout":"5m"}`))
		var info JobInfo
		if resp.StatusCode == http.StatusAccepted {
			info = decode[JobInfo](t, data)
		}
		return resp.StatusCode, info
	}
	var accepted []string
	sawFull := false
	for i := 0; i < 8 && !sawFull; i++ {
		code, info := submit()
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, info.ID)
		case http.StatusServiceUnavailable:
			sawFull = true
		default:
			t.Fatalf("submit: unexpected status %d", code)
		}
	}
	if !sawFull {
		t.Fatal("queue never reported full")
	}
	for _, id := range accepted {
		do(t, http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	}
}

// A request may not size the solver's goroutine pools arbitrarily: huge
// workers values are clamped server-side, and a job that fails at solve
// time surfaces as HTTP 500 on the synchronous endpoint, not a 200 with
// an empty result.
func TestWorkersClampAndFailedSolve(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxJobWorkers: 8})
	putGraph(t, ts, "k33", k33, "")
	// Unclamped, this would allocate a ~1e9-slot channel and as many
	// goroutines inside the sparse pipeline.
	job := solveSync(t, ts, "k33", `{"workers":1000000000,"solver":"hbvMBB"}`)
	if job.State != JobDone || job.Result == nil || job.Result.Size != 3 {
		t.Fatalf("clamped-workers solve: %+v", job)
	}

	old := mbb.DenseCellLimit
	mbb.DenseCellLimit = 4 // 3x3 = 9 cells > 4 → denseMBB fails with ErrTooLarge
	defer func() { mbb.DenseCellLimit = old }()
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/k33/solve", strings.NewReader(`{"solver":"denseMBB"}`))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed solve returned %d (%s), want 500", resp.StatusCode, data)
	}
	info := decode[JobInfo](t, data)
	if info.State != JobFailed || info.Error == "" {
		t.Fatalf("failed solve info %+v", info)
	}
}

func TestGraphLifecycleAndStats(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	putGraph(t, ts, "k33", k33, "")
	solveSync(t, ts, "k33", "")

	resp, data := do(t, http.MethodGet, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	stats := decode[ServerStats](t, data)
	if stats.Graphs != 1 || stats.Scheduler.Done != 1 {
		t.Fatalf("stats %+v", stats)
	}

	resp, _ = do(t, http.MethodGet, ts.URL+"/graphs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list graphs: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/graphs/k33", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/graphs/k33", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/jobs/zzz", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown job: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestStoreLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("k33.txt", k33)
	writeFile("out.tiny", "% bip\n1 1\n2 2\n")
	writeFile("pair.konect", "% bip\n% 1 2 2\n1 1\n")

	srv, err := New(Options{StoreDir: dir, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if n := srv.Store().Len(); n != 3 {
		t.Fatalf("loaded %d graphs, want 3", n)
	}
	for _, name := range []string{"k33", "tiny", "pair"} {
		if _, ok := srv.Store().Get(name); !ok {
			t.Errorf("graph %q not loaded", name)
		}
	}
}
