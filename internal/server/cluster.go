package server

import (
	"fmt"
	"net/http"
	"time"
)

// ClusterStatus is a point-in-time summary of a worker's replication
// state, surfaced through /readyz and /metrics.
type ClusterStatus struct {
	Self    string        // this worker's advertised URL
	Peers   int           // workers on the ring, self included
	Streams int           // replication streams currently connected
	Synced  bool          // every stream has completed its initial catch-up
	MaxLag  time.Duration // worst replication lag across streams
	Applied int64         // records applied from peers' streams
	Resyncs int64         // full stream restarts (epoch gaps, log resets)
}

// ClusterInfo is what the server needs to know about its cluster role;
// internal/cluster implements it. The server only consults it — graph
// ownership, replica membership and replication lag — so the dependency
// points outward (cluster imports server, never the reverse). Install
// with SetCluster before serving traffic; nil means single-node.
type ClusterInfo interface {
	// OwnerOf returns the owning worker's URL for a graph name and
	// whether this worker is that owner.
	OwnerOf(name string) (owner string, self bool)
	// ReplicaOf reports whether this worker replicates the named graph
	// (owner excluded).
	ReplicaOf(name string) bool
	// Lag returns the replication lag behind the named graph's owner
	// and whether that stream has completed its initial catch-up. The
	// owner's own graphs report (0, true).
	Lag(name string) (lag time.Duration, synced bool)
	// Status summarizes all streams for readiness and metrics.
	Status() ClusterStatus
}

// SetCluster installs the worker's cluster view. Must be called before
// the handler serves traffic (cmd wiring does it between New and
// listen); handlers read the field without synchronization.
func (s *Server) SetCluster(ci ClusterInfo) { s.cluster = ci }

// ReadyStatus is the GET /readyz payload — the machine-readable
// readiness the coordinator's health probes steer by.
type ReadyStatus struct {
	Ready         bool    `json:"ready"`
	Draining      bool    `json:"draining"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Running       int64   `json:"running"`
	Synced        bool    `json:"synced"`
	LagSeconds    float64 `json:"lag_seconds"`
	Reason        string  `json:"reason,omitempty"`
}

// readyStatus computes the current readiness: false while draining or
// while any replication stream is still in its initial catch-up or
// lagging past the bound. (Recovery cannot be observed here: New
// replays the WAL before the handler exists, so a recovering daemon is
// simply not listening yet.)
func (s *Server) readyStatus() ReadyStatus {
	st := ReadyStatus{
		Ready:         true,
		Draining:      s.Draining(),
		QueueDepth:    s.sched.QueueDepth(),
		QueueCapacity: s.sched.QueueCapacity(),
		Running:       s.sched.Running(),
		Synced:        true,
	}
	if st.Draining {
		st.Ready = false
		st.Reason = "draining"
	}
	if ci := s.cluster; ci != nil {
		cs := ci.Status()
		st.Synced = cs.Synced
		st.LagSeconds = cs.MaxLag.Seconds()
		switch {
		case !cs.Synced && st.Ready:
			st.Ready = false
			st.Reason = "replication catching up"
		case s.opt.MaxReplicaLag > 0 && cs.MaxLag > s.opt.MaxReplicaLag && st.Ready:
			st.Ready = false
			st.Reason = fmt.Sprintf("replication lag %.1fs exceeds %v", cs.MaxLag.Seconds(), s.opt.MaxReplicaLag)
		}
	}
	return st
}

// handleReadyz is the readiness probe: 200 while the worker should
// receive traffic, 503 otherwise. /healthz stays pure liveness (the
// process is up); this is the one load balancers and the coordinator
// watch.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.readyStatus()
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, st)
}

// misdirected rejects a mutation addressed to a graph this worker does
// not own with 421 Misdirected Request, naming the owner in the
// X-Mbb-Owner header so a bypassing client can fix its routing. The
// ownership check is what keeps every mutation on its shard owner's
// WAL — the durability-before-visibility invariant only holds there.
// A true return means the response was written.
func (s *Server) misdirected(w http.ResponseWriter, name string) bool {
	ci := s.cluster
	if ci == nil {
		return false
	}
	owner, self := ci.OwnerOf(name)
	if self {
		return false
	}
	s.metrics.misdirected.Add(1)
	w.Header().Set("X-Mbb-Owner", owner)
	writeError(w, http.StatusMisdirectedRequest, "graph %q is owned by %s (this worker is not its shard owner)", name, owner)
	return true
}

// replicaGate rejects a solve this worker cannot answer honestly:
// 421 when it neither owns nor replicates the graph, 503 + Retry-After
// when its replica is still catching up or lagging past MaxReplicaLag —
// a lagging replica must refuse rather than silently serve a stale
// epoch as if it were current. (?epoch=E solves go through the same
// gate: the retention window only holds epochs the replica has applied,
// so lag would quietly narrow the answerable range too.) A true return
// means the response was written.
func (s *Server) replicaGate(w http.ResponseWriter, name string) bool {
	ci := s.cluster
	if ci == nil {
		return false
	}
	owner, self := ci.OwnerOf(name)
	if self {
		return false
	}
	if !ci.ReplicaOf(name) {
		s.metrics.misdirected.Add(1)
		w.Header().Set("X-Mbb-Owner", owner)
		writeError(w, http.StatusMisdirectedRequest, "graph %q is neither owned nor replicated here (owner %s)", name, owner)
		return true
	}
	lag, synced := ci.Lag(name)
	if !synced || (s.opt.MaxReplicaLag > 0 && lag > s.opt.MaxReplicaLag) {
		s.metrics.lagRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		if !synced {
			writeError(w, http.StatusServiceUnavailable, "replica of %q is still catching up on %s's delta stream", name, owner)
		} else {
			writeError(w, http.StatusServiceUnavailable, "replica of %q is %.1fs behind owner %s (bound %v)", name, lag.Seconds(), owner, s.opt.MaxReplicaLag)
		}
		return true
	}
	return false
}
