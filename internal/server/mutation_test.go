package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/mbb"
)

// k33minus is K3,3 with the (2,2) edge missing: optimum balanced size 2.
const k33minus = "3 3 8\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n"

// TestMutateEndpoints walks the HTTP mutation lifecycle: insert the
// missing edge (epoch 1, optimum grows to 3), delete a batch (epoch 2,
// optimum shrinks), with each solve reporting the epoch it answered for.
func TestMutateEndpoints(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	putGraph(t, ts, "m", k33minus, "")

	job := solveSync(t, ts, "m", "")
	if job.Result == nil || job.Result.Size != 2 || !job.Result.Exact || job.Result.Epoch != 0 {
		t.Fatalf("epoch-0 solve: %+v", job.Result)
	}

	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/m/edges", strings.NewReader(`{"add":[[2,2]]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}
	mi := decode[MutationInfo](t, data)
	if mi.Epoch != 1 || mi.Added != 1 || mi.Removed != 0 || mi.Edges != 9 {
		t.Fatalf("mutation info %+v", mi)
	}
	// A bounded insertion batch is absorbed by local repair of the
	// cached plan (built by the first solve): no full planner rerun.
	if mi.Plan != "repaired" {
		t.Fatalf("insertion reported plan %q, want repaired", mi.Plan)
	}
	info0 := decode[GraphInfo](t, func() []byte { _, d := do(t, http.MethodGet, ts.URL+"/graphs/m", nil); return d }())
	if info0.PlanBuilds != 1 || info0.PlanRepairs != 1 || info0.PlanSource != "repaired" {
		t.Fatalf("after repair: plan_builds=%d plan_repairs=%d plan_source=%q, want 1, 1, repaired",
			info0.PlanBuilds, info0.PlanRepairs, info0.PlanSource)
	}

	job = solveSync(t, ts, "m", "")
	if job.Result == nil || job.Result.Size != 3 || !job.Result.Exact || job.Result.Epoch != 1 {
		t.Fatalf("epoch-1 solve: %+v", job.Result)
	}
	if !job.Result.PlanCached {
		t.Error("solve after repair did not hit the plan cache")
	}

	resp, data = do(t, http.MethodDelete, ts.URL+"/graphs/m/edges",
		strings.NewReader(`{"edges":[[2,0],[2,1],[2,2]]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete edges: %d %s", resp.StatusCode, data)
	}
	mi = decode[MutationInfo](t, data)
	if mi.Epoch != 2 || mi.Removed != 3 || mi.Edges != 6 {
		t.Fatalf("delete mutation info %+v", mi)
	}

	job = solveSync(t, ts, "m", "")
	if job.Result == nil || job.Result.Size != 2 || !job.Result.Exact || job.Result.Epoch != 2 {
		t.Fatalf("epoch-2 solve: %+v", job.Result)
	}

	info := decode[GraphInfo](t, func() []byte { _, d := do(t, http.MethodGet, ts.URL+"/graphs/m", nil); return d }())
	if info.Epoch != 2 || info.Mutations != 2 || info.Edges != 6 {
		t.Fatalf("graph info after mutations: %+v", info)
	}
	if got := srv.Store(); got.Len() != 1 {
		t.Fatalf("store len %d", got.Len())
	}
}

// TestMutateEndpointErrors: malformed and out-of-contract mutation
// requests answer clean 4xx codes.
func TestMutateEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	putGraph(t, ts, "m", k33minus, "")
	cases := []struct {
		method, body string
		want         int
	}{
		{http.MethodPost, `{"add":[[9,9]]}`, http.StatusBadRequest},   // out of range
		{http.MethodPost, `{"add":[[-1,0]]}`, http.StatusBadRequest},  // negative
		{http.MethodPost, `{}`, http.StatusBadRequest},                // empty mutation
		{http.MethodPost, ``, http.StatusBadRequest},                  // empty body
		{http.MethodPost, `{"edges":[[0,0]]}`, http.StatusBadRequest}, // DELETE-only field
		{http.MethodPost, `not json`, http.StatusBadRequest},          // garbage
		{http.MethodPost, `{"bogus":1}`, http.StatusBadRequest},       // unknown field
		{http.MethodDelete, `{"add":[[0,0]]}`, http.StatusBadRequest}, // add on DELETE
		{http.MethodDelete, `{}`, http.StatusBadRequest},              // empty
	}
	for _, tc := range cases {
		resp, data := do(t, tc.method, ts.URL+"/graphs/m/edges", strings.NewReader(tc.body))
		if resp.StatusCode != tc.want {
			t.Errorf("%s %q: status %d (%s), want %d", tc.method, tc.body, resp.StatusCode, data, tc.want)
		}
	}
	resp, _ := do(t, http.MethodPost, ts.URL+"/graphs/ghost/edges", strings.NewReader(`{"add":[[0,0]]}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("mutate unknown graph: %d", resp.StatusCode)
	}
	// The graph is untouched by all the failures above.
	info := decode[GraphInfo](t, func() []byte { _, d := do(t, http.MethodGet, ts.URL+"/graphs/m", nil); return d }())
	if info.Epoch != 0 || info.Mutations != 0 || info.Edges != 8 {
		t.Errorf("graph changed by failed mutations: %+v", info)
	}
}

// TestMutationPlanReuse: a deletion-only mutation that spares the
// heuristic witness carries the cached plan across the epoch bump — no
// second planner run — and the maintained plan still solves exactly.
func TestMutationPlanReuse(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	g := mbb.GeneratePowerLaw(120, 120, 700, 6)
	var sb strings.Builder
	if err := mbb.WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "pl", sb.String(), "")
	solveSync(t, ts, "pl", "") // builds the plan

	sg, _ := srv.Store().Get("pl")
	// Delete low-degree fringe edges: overwhelmingly likely to be outside
	// the witness, so the plan should survive. Walk candidates until one
	// mutation reports reuse.
	reused := false
	edges := g.Edges()
	for i := 0; i < 10 && !reused; i++ {
		e := edges[(i*37)%len(edges)]
		body := fmt.Sprintf(`{"del":[[%d,%d]]}`, e[0], e[1])
		resp, data := do(t, http.MethodPost, ts.URL+"/graphs/pl/edges", strings.NewReader(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutate: %d %s", resp.StatusCode, data)
		}
		mi := decode[MutationInfo](t, data)
		if mi.Plan == "reused" {
			reused = true
		}
	}
	if !reused {
		t.Fatal("no deletion mutation reused the plan")
	}
	job := solveSync(t, ts, "pl", "")
	if job.Result == nil || !job.Result.Exact {
		t.Fatalf("solve after reuse: %+v", job.Result)
	}
	if !job.Result.PlanCached {
		t.Error("solve after plan reuse did not hit the cache")
	}
	// The graph is too large for the brute-force oracle; a cold planner
	// run on the mutated graph is the differential reference.
	cold, err := mbb.Solve(sg.Graph(), &mbb.Options{Reduce: mbb.ReduceOn})
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Size != cold.Biclique.Size() {
		t.Errorf("maintained plan found %d, cold planner found %d", job.Result.Size, cold.Biclique.Size())
	}
	if sg.Info().PlanReuses < 1 {
		t.Errorf("plan_reuses = %d, want >= 1", sg.Info().PlanReuses)
	}
}

// TestMutationPlanRepair: an insertion batch on a planned graph is
// absorbed by bounded local repair — plan_builds stays at 1, the store
// counts a repair, and the repaired plan still solves exactly (checked
// against a cold planner run on the mutated graph).
func TestMutationPlanRepair(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	g := mbb.GeneratePowerLaw(100, 100, 600, 9)
	var sb strings.Builder
	if err := mbb.WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	putGraph(t, ts, "pr", sb.String(), "")
	solveSync(t, ts, "pr", "") // builds the plan

	sg, _ := srv.Store().Get("pr")
	// Insert a batch of fresh edges; a pristine plan must repair.
	var adds [][2]int
	for l := 0; l < g.NL() && len(adds) < 3; l++ {
		for r := 0; r < g.NR() && len(adds) < 3; r++ {
			if !g.HasEdge(l, g.NL()+r) {
				adds = append(adds, [2]int{l, r})
			}
		}
	}
	body, err := json.Marshal(bigraph.Delta{Add: adds})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs/pr/edges", strings.NewReader(string(body)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, data)
	}
	mi := decode[MutationInfo](t, data)
	if mi.Plan != "repaired" {
		t.Fatalf("insertion batch reported plan %q, want repaired", mi.Plan)
	}
	info := sg.Info()
	if info.PlanBuilds != 1 {
		t.Fatalf("plan_builds = %d after a repaired insertion, want 1", info.PlanBuilds)
	}
	if info.PlanRepairs != 1 || info.PlanSource != "repaired" {
		t.Fatalf("plan_repairs=%d plan_source=%q, want 1 and repaired", info.PlanRepairs, info.PlanSource)
	}
	job := solveSync(t, ts, "pr", "")
	if job.Result == nil || !job.Result.Exact || job.Result.Epoch != mi.Epoch {
		t.Fatalf("solve after repair: %+v", job.Result)
	}
	if !job.Result.PlanCached {
		t.Error("solve after repair did not hit the plan cache")
	}
	cold, err := mbb.Solve(sg.Graph(), &mbb.Options{Reduce: mbb.ReduceOn})
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Size != cold.Biclique.Size() {
		t.Errorf("repaired plan found %d, cold planner found %d", job.Result.Size, cold.Biclique.Size())
	}
}

// TestJobPinsSnapshot: a job submitted before a mutation solves the
// snapshot it was submitted against, even when it only starts running
// after the mutation landed.
func TestJobPinsSnapshot(t *testing.T) {
	srv, err := New(Options{Workers: 1, QueueCap: 8, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	blockG := mbb.GenerateDense(46, 46, 0.93, 3)
	blockSG, err := srv.Store().Put("block", blockG)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := srv.Store().Put("k", mustParse(t, k33minus))
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single worker so the real job stays queued across the
	// mutation.
	blocker, err := srv.Scheduler().Submit(blockSG, SolveRequest{Solver: "basicBB", Timeout: "5m"})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := srv.Scheduler().Submit(sg, SolveRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate while the job is queued: add the missing edge (optimum 3 at
	// epoch 1; the pinned snapshot's optimum stays 2).
	if _, mi, err := sg.Mutate(bigraph.Delta{Add: [][2]int{{2, 2}}}); err != nil || mi.Epoch != 1 {
		t.Fatalf("mutate: %+v %v", mi, err)
	}
	srv.Scheduler().Cancel(blocker.ID())
	<-blocker.Done()
	<-pinned.Done()
	res := pinned.Info().Result
	if res == nil || !res.Exact || res.Epoch != 0 || res.Size != 2 {
		t.Fatalf("pinned job result %+v, want exact size 2 at epoch 0", res)
	}
}

func mustParse(t *testing.T, text string) *bigraph.Graph {
	t.Helper()
	g, err := bigraph.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConcurrentMutateSolveExactPerEpoch is the acceptance test of the
// snapshot model under -race: mutators and solvers run concurrently, and
// every returned result must be exact and equal the brute-force optimum
// of the *published snapshot epoch it reports* — never a torn view, never
// a result for an epoch that was not published.
func TestConcurrentMutateSolveExactPerEpoch(t *testing.T) {
	srv, err := New(Options{Workers: 4, QueueCap: 256, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := mbb.GeneratePowerLaw(7, 7, 24, 2)
	sg, err := srv.Store().Put("g", g)
	if err != nil {
		t.Fatal(err)
	}

	// oracle[epoch] = brute-force optimum of the snapshot published at
	// that epoch. The mutator records each snapshot it publishes; solver
	// results are checked against the map after everything drains.
	var (
		oracleMu sync.Mutex
		oracle   = map[uint64]int{0: baseline.BruteForceSize(g)}
	)

	const (
		mutations       = 40
		solvers         = 3
		solvesPerSolver = 15
	)
	var wg sync.WaitGroup
	errCh := make(chan error, solvers+1)

	wg.Add(1)
	go func() { // mutator: serialized epochs, random add/del batches
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < mutations; i++ {
			var d bigraph.Delta
			cur := sg.Graph()
			edges := cur.Edges()
			for k := 0; k < 1+rng.Intn(3); k++ {
				if rng.Intn(2) == 0 && len(edges) > 0 {
					d.Del = append(d.Del, edges[rng.Intn(len(edges))])
				} else {
					d.Add = append(d.Add, [2]int{rng.Intn(7), rng.Intn(7)})
				}
			}
			snap, _, err := sg.Mutate(d)
			if err != nil {
				errCh <- err
				return
			}
			oracleMu.Lock()
			if _, seen := oracle[snap.Epoch()]; !seen {
				oracle[snap.Epoch()] = baseline.BruteForceSize(snap.Graph())
			}
			oracleMu.Unlock()
		}
	}()

	type outcome struct {
		epoch uint64
		size  int
		exact bool
	}
	results := make(chan outcome, solvers*solvesPerSolver)
	for w := 0; w < solvers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < solvesPerSolver; i++ {
				req := SolveRequest{}
				if i%2 == 1 {
					req.Reduce = "off" // exercise the non-plan path too
				}
				job, err := srv.Scheduler().Submit(sg, req)
				if err != nil {
					errCh <- err
					return
				}
				<-job.Done()
				res := job.Info().Result
				if res == nil {
					errCh <- fmt.Errorf("solver %d: job %s finished without result: %+v", w, job.ID(), job.Info())
					return
				}
				results <- outcome{epoch: res.Epoch, size: res.Size, exact: res.Exact}
			}
		}(w)
	}
	wg.Wait()
	close(results)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	n := 0
	for res := range results {
		n++
		want, ok := oracle[res.epoch]
		if !ok {
			t.Fatalf("result reports epoch %d, which was never published", res.epoch)
		}
		if !res.exact {
			t.Errorf("solve at epoch %d not exact", res.epoch)
		}
		if res.size != want {
			t.Errorf("solve at epoch %d found %d, oracle says %d", res.epoch, res.size, want)
		}
	}
	if n != solvers*solvesPerSolver {
		t.Fatalf("collected %d results, want %d", n, solvers*solvesPerSolver)
	}
	if sg.Info().Mutations == 0 {
		t.Fatal("no mutation took effect")
	}
}

// TestConcurrentInsertRepairExactPerEpoch drives the repair path under
// -race: a mutator publishes insertion-only batches (each absorbed by
// bounded local repair on the pristine plan chain) while solver
// goroutines call Snapshot.Plan and solve concurrently. Every result
// must be exact and match the brute-force optimum of the epoch it
// reports — repaired plans must solve identically to fresh plans.
func TestConcurrentInsertRepairExactPerEpoch(t *testing.T) {
	srv, err := New(Options{Workers: 4, QueueCap: 256, DefaultTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g := mbb.GeneratePowerLaw(7, 7, 16, 4)
	sg, err := srv.Store().Put("g", g)
	if err != nil {
		t.Fatal(err)
	}
	// Build the epoch-0 plan up front so every mutation sees a cached
	// plan to repair.
	if _, _, err := sg.Snapshot().Plan(); err != nil {
		t.Fatal(err)
	}

	var (
		oracleMu sync.Mutex
		oracle   = map[uint64]int{0: baseline.BruteForceSize(g)}
	)
	const (
		mutations       = 30
		solvers         = 3
		solvesPerSolver = 12
	)
	var wg sync.WaitGroup
	errCh := make(chan error, solvers+1)

	wg.Add(1)
	go func() { // mutator: insertion-only batches
		defer wg.Done()
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < mutations; i++ {
			var d bigraph.Delta
			for k := 0; k < 1+rng.Intn(3); k++ {
				d.Add = append(d.Add, [2]int{rng.Intn(7), rng.Intn(7)})
			}
			snap, _, err := sg.Mutate(d)
			if err != nil {
				errCh <- err
				return
			}
			oracleMu.Lock()
			if _, seen := oracle[snap.Epoch()]; !seen {
				oracle[snap.Epoch()] = baseline.BruteForceSize(snap.Graph())
			}
			oracleMu.Unlock()
		}
	}()

	type outcome struct {
		epoch uint64
		size  int
		exact bool
	}
	results := make(chan outcome, solvers*solvesPerSolver)
	for w := 0; w < solvers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solvesPerSolver; i++ {
				job, err := srv.Scheduler().Submit(sg, SolveRequest{})
				if err != nil {
					errCh <- err
					return
				}
				<-job.Done()
				res := job.Info().Result
				if res == nil {
					errCh <- fmt.Errorf("job %s finished without result: %+v", job.ID(), job.Info())
					return
				}
				results <- outcome{epoch: res.Epoch, size: res.Size, exact: res.Exact}
			}
		}()
	}
	wg.Wait()
	close(results)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for res := range results {
		want, ok := oracle[res.epoch]
		if !ok {
			t.Fatalf("result reports epoch %d, which was never published", res.epoch)
		}
		if !res.exact {
			t.Errorf("solve at epoch %d not exact", res.epoch)
		}
		if res.size != want {
			t.Errorf("solve at epoch %d found %d, oracle says %d", res.epoch, res.size, want)
		}
	}
	info := sg.Info()
	if info.PlanRepairs == 0 {
		t.Fatal("no insertion batch was absorbed by repair")
	}
	if info.PlanBuilds != 1 {
		t.Errorf("plan_builds = %d under insertion-only mutation, want 1 (all repairs)", info.PlanBuilds)
	}
}
