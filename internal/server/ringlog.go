package server

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// accessRecord is one completed request, stored inline — fixed-size
// byte arrays, no pointers — so recording a request copies into a
// preallocated ring slot and never allocates. Over-long fields are
// truncated; the log is a traffic trace, not an archival store.
type accessRecord struct {
	when    int64 // unix nanoseconds at completion
	durNano int64
	status  int32
	written int64 // response bytes
	methLen uint8
	pathLen uint8
	idLen   uint8
	method  [8]byte
	path    [128]byte
	reqID   [24]byte
}

func (rec *accessRecord) set(id, method, path string, status int, written int64, dur time.Duration) {
	rec.when = time.Now().UnixNano()
	rec.durNano = int64(dur)
	rec.status = int32(status)
	rec.written = written
	rec.methLen = uint8(copy(rec.method[:], method))
	rec.pathLen = uint8(copy(rec.path[:], path))
	rec.idLen = uint8(copy(rec.reqID[:], id))
}

// appendLine formats rec as one logfmt line into buf and returns the
// extended slice. Append-only: the consumer reuses one buffer across
// lines, so steady-state draining allocates nothing either.
func (rec *accessRecord) appendLine(buf []byte) []byte {
	buf = append(buf, "ts="...)
	buf = time.Unix(0, rec.when).UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, " id="...)
	if rec.idLen > 0 {
		buf = append(buf, rec.reqID[:rec.idLen]...)
	} else {
		buf = append(buf, '-')
	}
	buf = append(buf, " method="...)
	buf = append(buf, rec.method[:rec.methLen]...)
	buf = append(buf, " path="...)
	buf = append(buf, rec.path[:rec.pathLen]...)
	buf = append(buf, " status="...)
	buf = strconv.AppendInt(buf, int64(rec.status), 10)
	buf = append(buf, " bytes="...)
	buf = strconv.AppendInt(buf, rec.written, 10)
	buf = append(buf, " dur="...)
	buf = strconv.AppendFloat(buf, time.Duration(rec.durNano).Seconds(), 'f', 6, 64)
	buf = append(buf, "s\n"...)
	return buf
}

// RingLogger is the non-blocking structured access log: producers copy
// one fixed-size record into a bounded ring under a mutex (no
// allocation, no I/O, never blocked by the sink) and a single consumer
// goroutine drains batches to the writer. When producers outrun the
// consumer the oldest records are overwritten and counted in Dropped —
// a slow or wedged log sink costs log lines, never solve latency.
type RingLogger struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []accessRecord
	head   int // index of the oldest unconsumed record
	count  int // unconsumed records in the ring
	closed bool

	dropped atomic.Int64
	logged  atomic.Int64

	w    io.Writer
	done chan struct{}
}

// NewRingLogger starts a ring logger with the given capacity (min 16)
// draining to w; a nil w discards records (they are still counted, so
// the metrics stay meaningful). Close flushes and stops the consumer.
func NewRingLogger(w io.Writer, capacity int) *RingLogger {
	if capacity < 16 {
		capacity = 16
	}
	if w == nil {
		w = io.Discard
	}
	l := &RingLogger{
		ring: make([]accessRecord, capacity),
		w:    w,
		done: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.drain()
	return l
}

// Record enqueues one completed request. It never blocks and never
// allocates: the record is copied into the ring slot in place; if the
// ring is full the oldest unconsumed record is overwritten and counted
// as dropped.
func (l *RingLogger) Record(id, method, path string, status int, written int64, dur time.Duration) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	var slot *accessRecord
	if l.count == len(l.ring) {
		// Full: overwrite the oldest, keeping the most recent traffic.
		slot = &l.ring[l.head]
		l.head++
		if l.head == len(l.ring) {
			l.head = 0
		}
		l.dropped.Add(1)
	} else {
		slot = &l.ring[(l.head+l.count)%len(l.ring)]
		l.count++
	}
	slot.set(id, method, path, status, written, dur)
	l.cond.Signal()
	l.mu.Unlock()
	l.logged.Add(1)
}

// drain is the consumer: it copies out pending records under the lock,
// then formats and writes them outside it, reusing one scratch batch
// and one line buffer so steady-state logging allocates nothing.
func (l *RingLogger) drain() {
	defer close(l.done)
	batch := make([]accessRecord, 0, len(l.ring))
	buf := make([]byte, 0, 4096)
	for {
		l.mu.Lock()
		for l.count == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.count == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch = batch[:0]
		for l.count > 0 {
			batch = append(batch, l.ring[l.head])
			l.head++
			if l.head == len(l.ring) {
				l.head = 0
			}
			l.count--
		}
		l.mu.Unlock()

		buf = buf[:0]
		for i := range batch {
			buf = batch[i].appendLine(buf)
		}
		l.w.Write(buf) // a failing sink only loses log lines
	}
}

// Close flushes pending records and stops the consumer. Records
// arriving after Close are discarded.
func (l *RingLogger) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

// Dropped reports how many records were overwritten before the consumer
// could drain them.
func (l *RingLogger) Dropped() int64 { return l.dropped.Load() }

// Logged reports how many records were accepted (dropped or written).
func (l *RingLogger) Logged() int64 { return l.logged.Load() }
