//go:build race

package sparse

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation changes escape analysis, so exact allocation-count
// assertions are only meaningful without it.
const raceEnabled = true
