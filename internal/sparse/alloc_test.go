package sparse

import (
	"testing"

	"repro/internal/bigraph"
	"repro/internal/core"
)

// matchingComplement returns K_{n,n} minus a perfect matching: every
// vertex has degree n−1 and the maximum balanced biclique has per-side
// size ⌊n/2⌋ (picking k left vertices forbids their k matched partners,
// so min(k, n−k) is maximised at k = n/2).
func matchingComplement(n int) *bigraph.Graph {
	b := bigraph.NewBuilder(n, n)
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			if l != r {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

// TestVerifyPrunedZeroAlloc: once the per-worker arena on the Exec is
// warm, a verification that the k-core prune rejects (the steady state
// when the incumbent is already optimal) allocates nothing.
func TestVerifyPrunedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; alloc counts not meaningful")
	}
	g := matchingComplement(12)
	st := newState(core.Background(), g, DefaultOptions())
	// Incumbent high enough that the (best+1)-core is empty: deg = 11 < 13.
	st.ex.OfferBest(12)
	h := centred{sub: g, toOrig: bigraph.IdentityMap(g.NumVertices()), center: 0}
	st.verifyOne(h) // warm the arena
	allocs := testing.AllocsPerRun(50, func() {
		st.verifyOne(h)
	})
	if allocs != 0 {
		t.Fatalf("pruned verification: %.1f allocs/op, want 0", allocs)
	}
}

// TestVerifyFullSolveAllocBudget: a verification that survives the
// prunes and runs the anchored dense solve to completion (finding
// nothing better) costs only the handful of escaping allocations of the
// induced subgraph — independent of subgraph size and of how many
// branch-and-bound nodes the solve visits.
func TestVerifyFullSolveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes escape analysis; alloc counts not meaningful")
	}
	g := matchingComplement(12)
	st := newState(core.Background(), g, DefaultOptions())
	// The optimum is 6; with best = 6 the 7-core keeps everything
	// (degrees are 11) but the solve cannot improve, so the whole
	// pipeline below the prunes runs on every call.
	st.ex.OfferBest(6)
	h := centred{sub: g, toOrig: bigraph.IdentityMap(g.NumVertices()), center: 0}
	for i := 0; i < 3; i++ {
		st.verifyOne(h)
	}
	if got := st.bestSize(); got != 6 {
		t.Fatalf("incumbent moved to %d, want 6", got)
	}
	allocs := testing.AllocsPerRun(20, func() {
		st.verifyOne(h)
	})
	// The induced subgraph and its id map escape the Inducer (4 allocs);
	// everything else is recycled.
	if allocs > 6 {
		t.Fatalf("full verification: %.1f allocs/op, want ≤ 6", allocs)
	}
}
