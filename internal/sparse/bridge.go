package sparse

import (
	"repro/internal/bigraph"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// centred is a materialised vertex-centred subgraph (Definition 6):
// the centre vertex plus its N≤2 successors in the total search order.
type centred struct {
	sub    *bigraph.Graph
	toOrig []int // sub unified ids → original unified ids
	center int   // centre vertex in sub unified ids
}

// bridge is step 2 of the framework (Algorithm 6): it computes the total
// search order, generates one vertex-centred subgraph per vertex, prunes
// subgraphs whose size or degeneracy cannot beat the incumbent, and runs
// the local core-based greedy heuristic on each survivor to tighten the
// incumbent further. reduced is the step-1 output graph; newToOld maps
// its ids to original ids.
func (s *state) bridge(reduced *bigraph.Graph, newToOld []int) []centred {
	kind := s.opt.Order
	if s.opt.SkipCoreOpts {
		kind = decomp.OrderDegree // peeling orders are core-based
	}

	var order []int
	switch kind {
	case decomp.OrderBidegeneracy:
		bi := decomp.BicoresFast(reduced)
		order = bi.Order
		s.stats.Bidegeneracy = bi.Bidegeneracy()
	default:
		order = decomp.Order(reduced, kind)
	}
	pos := make([]int, reduced.NumVertices())
	for i, v := range order {
		pos[v] = i
	}

	th := decomp.NewTwoHop(reduced)
	var survivors []centred
	members := make([]int, 0, 64)
	for i, v := range order {
		if !s.opt.Budget.Spend() {
			s.stats.TimedOut = true
			break
		}
		members = members[:0]
		members = append(members, v)
		members = th.Append(v, nil, members)
		// Keep only successors in the order (Observation 5).
		kept := members[:1]
		for _, w := range members[1:] {
			if pos[w] > i {
				kept = append(kept, w)
			}
		}
		s.stats.Subgraphs++
		// Size prune: each side needs at least best+1 vertices.
		nl, nr := 0, 0
		for _, w := range kept {
			if reduced.IsLeft(w) {
				nl++
			} else {
				nr++
			}
		}
		if nl <= s.bestSize() || nr <= s.bestSize() {
			s.stats.SubgraphsPruned++
			continue
		}

		sub, toReduced := reduced.Induced(kept)
		s.stats.SumSubDensity += sub.Density()
		s.stats.DensitySamples++
		s.stats.SumSubVertices += int64(sub.NumVertices())

		var scores []int
		if s.opt.SkipCoreOpts {
			scores = heur.DegreeScores(sub)
		} else {
			// Degeneracy prune: a biclique of balanced size best+1 forces
			// δ(H) ≥ best+1.
			c := decomp.Cores(sub)
			if c.Degeneracy() <= s.bestSize() {
				s.stats.SubgraphsPruned++
				continue
			}
			scores = c.Core
		}

		// Map sub ids to original ids and locate the centre.
		compose(toReduced, newToOld)
		centerOrig := newToOld[v]
		center := -1
		for j, ov := range toReduced {
			if ov == centerOrig {
				center = j
				break
			}
		}

		// Local greedy heuristic (Algorithm 6 lines 11–13).
		if bc := heur.Greedy(sub, scores, s.opt.Seeds); bc.Size() > 0 {
			s.improve(remap(bc, toReduced))
		}

		survivors = append(survivors, centred{sub: sub, toOrig: toReduced, center: center})
	}
	return survivors
}
