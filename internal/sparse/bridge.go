package sparse

import (
	"sync"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// centred is a materialised vertex-centred subgraph (Definition 6):
// the centre vertex plus its N≤2 successors in the total search order.
type centred struct {
	sub    *bigraph.Graph
	toOrig []int // sub unified ids → original unified ids
	center int   // centre vertex in sub unified ids
}

// pipeline runs steps 2 and 3 of the framework as a streaming
// producer/consumer. The producer (Algorithm 6) generates one
// vertex-centred subgraph at a time; survivors flow through a bounded
// channel into Options.Workers verification workers (Algorithm 8), so at
// most O(workers) subgraphs are materialised at once. Because every
// improvement is published to the execution context's shared incumbent
// the moment it is found, a worker's result immediately strengthens the
// producer's size/degeneracy prunes and the bounds inside every other
// worker's running dense solve.
func (s *state) pipeline(reduced *bigraph.Graph, newToOld []int) {
	var produced int64
	if s.opt.Workers <= 1 {
		// Sequential pipeline: verify each survivor as it is generated.
		// This is the paper's schedule, except that step-3 improvements
		// now tighten step-2 pruning of the not-yet-generated subgraphs.
		produced = s.produce(reduced, newToOld, func(h centred) { s.verifyOne(h) })
	} else {
		jobs := make(chan centred, s.opt.Workers)
		var wg sync.WaitGroup
		for w := 0; w < s.opt.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for h := range jobs {
					s.verifyOne(h)
				}
			}()
		}
		produced = s.produce(reduced, newToOld, func(h centred) { jobs <- h })
		close(jobs)
		wg.Wait()
	}
	if produced == 0 {
		s.step = core.Step2
	} else {
		s.step = core.Step3
	}
}

// produce is step 2 of the framework (Algorithm 6): it computes the total
// search order, generates one vertex-centred subgraph per vertex, prunes
// subgraphs whose size or degeneracy cannot beat the incumbent, runs the
// local core-based greedy heuristic on each survivor to tighten the
// incumbent further, and hands each survivor to emit. reduced is the
// step-1 output graph; newToOld maps its ids to original ids. It returns
// the number of survivors emitted.
func (s *state) produce(reduced *bigraph.Graph, newToOld []int, emit func(centred)) int64 {
	kind := s.opt.Order
	if s.opt.SkipCoreOpts {
		kind = decomp.OrderDegree // peeling orders are core-based
	}

	var order []int
	switch kind {
	case decomp.OrderBidegeneracy:
		bi := decomp.BicoresFast(reduced)
		order = bi.Order
		s.bidegeneracy = bi.Bidegeneracy()
	default:
		order = decomp.Order(reduced, kind)
	}
	pos := make([]int, reduced.NumVertices())
	for i, v := range order {
		pos[v] = i
	}

	th := decomp.NewTwoHop(reduced)
	var stats core.Stats // producer-side counters, flushed on return
	defer func() { s.ex.AddStats(&stats) }()
	var produced int64
	members := make([]int, 0, 64)
	for i, v := range order {
		if !s.ex.Spend() {
			stats.TimedOut = true
			break
		}
		members = members[:0]
		members = append(members, v)
		members = th.Append(v, nil, members)
		// Keep only successors in the order (Observation 5).
		kept := members[:1]
		for _, w := range members[1:] {
			if pos[w] > i {
				kept = append(kept, w)
			}
		}
		stats.Subgraphs++
		// Size prune: each side needs at least best+1 vertices.
		nl, nr := 0, 0
		for _, w := range kept {
			if reduced.IsLeft(w) {
				nl++
			} else {
				nr++
			}
		}
		if nl <= s.bestSize() || nr <= s.bestSize() {
			stats.SubgraphsPruned++
			continue
		}

		sub, toReduced := reduced.Induced(kept)
		stats.SumSubDensity += sub.Density()
		stats.DensitySamples++
		stats.SumSubVertices += int64(sub.NumVertices())

		var scores []int
		if s.opt.SkipCoreOpts {
			scores = heur.DegreeScores(sub)
		} else {
			// Degeneracy prune: a biclique of balanced size best+1 forces
			// δ(H) ≥ best+1.
			c := decomp.Cores(sub)
			if c.Degeneracy() <= s.bestSize() {
				stats.SubgraphsPruned++
				continue
			}
			scores = c.Core
		}

		// Map sub ids to original ids and locate the centre.
		bigraph.ComposeMap(toReduced, newToOld)
		centerOrig := newToOld[v]
		center := -1
		for j, ov := range toReduced {
			if ov == centerOrig {
				center = j
				break
			}
		}

		// Local greedy heuristic (Algorithm 6 lines 11–13).
		if bc := heur.Greedy(sub, scores, s.opt.Seeds); bc.Size() > 0 {
			s.improve(remap(bc, toReduced))
			if bc.Size() > s.heurLocal {
				s.heurLocal = bc.Size()
			}
		}

		produced++
		emit(centred{sub: sub, toOrig: toReduced, center: center})
	}
	return produced
}
