package sparse

import (
	"repro/internal/bigraph"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// hMBB is step 1 of the framework (Algorithm 5): a max-degree greedy
// heuristic, the Lemma 4 core reduction, the Lemma 5 early-termination
// check, and a second pass with the max-core greedy rule on the reduced
// graph. It returns the reduced graph (in its own id space with a
// newToOld table into the original graph) and done=true when optimality
// is already proven.
//
// Lemma 4: with an incumbent of balanced size s, any strictly larger
// balanced biclique has s+1 vertices of degree ≥ s+1 on each side, so all
// of its vertices lie in the (s+1)-core.
//
// Lemma 5: a balanced biclique of size t is a subgraph of minimum degree
// t, so t ≤ δ(G); an incumbent of size δ(G) is therefore optimal.
func (s *state) hMBB() (reduced *bigraph.Graph, newToOld []int, done bool) {
	g := s.g
	if s.opt.SkipHeuristic {
		// Variant bd1: no heuristic, no global reduction; step 2 works on
		// the whole graph.
		newToOld = bigraph.IdentityMap(g.NumVertices())
		return g, newToOld, false
	}

	// Max-degree greedy.
	s.improve(heur.Greedy(g, heur.DegreeScores(g), s.opt.Seeds))

	if s.opt.SkipCoreOpts {
		// Variant bd2: keep the heuristic but skip every core-based
		// reduction and the core-greedy pass.
		newToOld = bigraph.IdentityMap(g.NumVertices())
		return g, newToOld, false
	}

	cores := decomp.Cores(g)
	if s.bestSize() >= cores.Degeneracy() {
		return nil, nil, true // Lemma 5 on the original graph
	}
	// Lemma 4 reduction.
	mask := decomp.KCoreMask(g, s.bestSize()+1)
	reduced, newToOld = g.InducedByMask(mask)
	if reduced.NumVertices() == 0 {
		return nil, nil, true
	}

	// Max-core greedy on the reduced graph.
	rcores := decomp.Cores(reduced)
	bc := heur.Greedy(reduced, rcores.Core, s.opt.Seeds)
	if s.improve(remap(bc, newToOld)) {
		if s.bestSize() >= rcores.Degeneracy() {
			return nil, nil, true // Lemma 5 on the reduced graph
		}
		// Reduce again with the improved incumbent.
		mask2 := decomp.KCoreMask(reduced, s.bestSize()+1)
		reduced2, n2 := reduced.InducedByMask(mask2)
		if reduced2.NumVertices() == 0 {
			return nil, nil, true
		}
		bigraph.ComposeMap(n2, newToOld)
		return reduced2, n2, false
	}
	return reduced, newToOld, false
}
