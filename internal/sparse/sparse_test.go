package sparse_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/sparse"
)

func randomBigraph(rng *rand.Rand, maxSide int, p float64) *bigraph.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

func fig1b() *bigraph.Graph {
	edges := [][2]int{
		{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {2, 3},
		{3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 1}, {5, 4}, {5, 5},
	}
	return bigraph.FromEdges(6, 6, edges)
}

func TestSolveFig1b(t *testing.T) {
	g := fig1b()
	res := sparse.Solve(nil, g, sparse.DefaultOptions())
	if res.Biclique.Size() != 2 {
		t.Fatalf("size = %d, want 2", res.Biclique.Size())
	}
	if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
		t.Fatalf("invalid result %+v", res.Biclique)
	}
	// The paper's walkthrough of this graph terminates in step 1 via the
	// Lemma 5 early-termination check (δ(G) = 2 = found size).
	if res.Stats.Step != core.Step1 {
		t.Errorf("step = %v, want S1", res.Stats.Step)
	}
}

func TestSolveEmptyAndTiny(t *testing.T) {
	for _, g := range []*bigraph.Graph{
		bigraph.FromEdges(0, 0, nil),
		bigraph.FromEdges(3, 3, nil),
		bigraph.FromEdges(1, 1, [][2]int{{0, 0}}),
	} {
		res := sparse.Solve(nil, g, sparse.DefaultOptions())
		want := baseline.BruteForceSize(g)
		if res.Biclique.Size() != want {
			t.Fatalf("size = %d, want %d (nl=%d nr=%d m=%d)", res.Biclique.Size(), want, g.NL(), g.NR(), g.NumEdges())
		}
	}
}

func allVariants() map[string]sparse.Options {
	return map[string]sparse.Options{
		"hbvMBB": sparse.DefaultOptions(),
		"bd1":    {Order: decomp.OrderBidegeneracy, SkipHeuristic: true},
		"bd2":    {SkipCoreOpts: true},
		"bd3":    {Order: decomp.OrderBidegeneracy, UseBasicBB: true},
		"bd4":    {Order: decomp.OrderDegree},
		"bd5":    {Order: decomp.OrderDegeneracy},
	}
}

// TestQuickAllVariantsExact: every variant must stay exact on random
// graphs (the variants trade speed, never correctness).
func TestQuickAllVariantsExact(t *testing.T) {
	variants := allVariants()
	densities := []float64{0.05, 0.15, 0.3, 0.5, 0.8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 12, densities[rng.Intn(len(densities))])
		want := baseline.BruteForceSize(g)
		for name, opt := range variants {
			res := sparse.Solve(nil, g, opt)
			if res.Biclique.Size() != want {
				t.Logf("%s: got %d want %d on %dx%d edges=%v",
					name, res.Biclique.Size(), want, g.NL(), g.NR(), g.Edges())
				return false
			}
			if want > 0 && (!res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced()) {
				t.Logf("%s: invalid witness", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlantedBiclique embeds a known K8,8 into a sparse background and
// checks the framework recovers exactly size 8.
func TestPlantedBiclique(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nl, nr, k := 300, 300, 8
	b := bigraph.NewBuilder(nl, nr)
	for i := 0; i < 2000; i++ {
		b.AddEdge(rng.Intn(nl), rng.Intn(nr))
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			b.AddEdge(100+i, 100+j)
		}
	}
	g := b.Build()
	res := sparse.Solve(nil, g, sparse.DefaultOptions())
	if res.Biclique.Size() != k {
		t.Fatalf("planted size = %d, want %d", res.Biclique.Size(), k)
	}
	if !res.Biclique.IsBicliqueOf(g) {
		t.Fatal("invalid witness")
	}
	if res.Stats.TimedOut {
		t.Fatal("unexpected timeout")
	}
}

func TestBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomBigraph(rng, 40, 0.3)
	opt := sparse.DefaultOptions()
	opt.SkipHeuristic = true // force work into steps 2/3
	ex := core.NewExec(nil, core.Limits{MaxNodes: 1})
	res := sparse.Solve(ex, g, opt)
	if !res.Stats.TimedOut {
		t.Skip("graph solved within one node; acceptable")
	}
	// Result may be suboptimal but must still be a valid biclique.
	if res.Biclique.Size() > 0 && !res.Biclique.IsBicliqueOf(g) {
		t.Fatal("timeout result invalid")
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// A graph sparse enough to reach step 2/3 with a nontrivial optimum.
	g := randomBigraph(rng, 30, 0.15)
	opt := sparse.DefaultOptions()
	opt.SkipHeuristic = true
	res := sparse.Solve(nil, g, opt)
	if res.Stats.Step == core.StepNone {
		t.Fatal("step not recorded")
	}
	if res.Stats.Subgraphs == 0 {
		t.Fatal("no vertex-centred subgraphs recorded")
	}
	if res.Stats.Step == core.Step3 && res.Stats.SearchSamples == 0 && res.Stats.SubgraphsPruned == 0 {
		t.Fatal("step 3 ran but neither solved nor pruned any subgraph")
	}
}

// TestOrdersAgree: the three search orders must give identical optima.
func TestOrdersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomBigraph(rng, 25, 0.2)
		want := -1
		for _, kind := range []decomp.OrderKind{decomp.OrderDegree, decomp.OrderDegeneracy, decomp.OrderBidegeneracy} {
			res := sparse.Solve(nil, g, sparse.Options{Order: kind})
			if want == -1 {
				want = res.Biclique.Size()
			} else if res.Biclique.Size() != want {
				t.Fatalf("order %v: got %d want %d", kind, res.Biclique.Size(), want)
			}
		}
	}
}
