package sparse_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// TestQuickParallelMatchesSequential: the parallel verifier must return
// the same optimum as the sequential one (and the brute force) on random
// graphs.
func TestQuickParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 14, 0.25)
		want := baseline.BruteForceSize(g)
		for _, workers := range []int{2, 4} {
			opt := sparse.DefaultOptions()
			opt.Workers = workers
			opt.SkipHeuristic = true // force work into step 3
			res := sparse.Solve(nil, g, opt)
			if res.Biclique.Size() != want {
				t.Logf("workers=%d: got %d want %d", workers, res.Biclique.Size(), want)
				return false
			}
			if want > 0 && !res.Biclique.IsBicliqueOf(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPlanted: a medium planted instance exercised with real
// concurrency (race detector builds catch sharing bugs here).
func TestParallelPlanted(t *testing.T) {
	g := workload.PowerLaw(2000, 2000, 12000, 0.5, 3)
	g, _, _ = workload.Plant(g, 9, 4)
	g = quasi(g)
	seqOpt := sparse.DefaultOptions()
	seq := sparse.Solve(nil, g, seqOpt)
	parOpt := sparse.DefaultOptions()
	parOpt.Workers = 4
	par := sparse.Solve(nil, g, parOpt)
	if seq.Biclique.Size() != par.Biclique.Size() {
		t.Fatalf("parallel %d != sequential %d", par.Biclique.Size(), seq.Biclique.Size())
	}
	if par.Biclique.Size() < 9 {
		t.Fatalf("missed planted biclique: %d", par.Biclique.Size())
	}
	if !par.Biclique.IsBicliqueOf(g) {
		t.Fatal("invalid parallel result")
	}
}

// quasi adds a quasi-dense block so the early-termination shortcut cannot
// fire and step 3 actually runs.
func quasi(g *bigraph.Graph) *bigraph.Graph {
	return workload.PlantQuasi(g, 27, 27, 0.6, 99)
}
