// Package sparse implements the paper's framework for large sparse
// bipartite graphs (Section 5): hbvMBB (Algorithm 4) with its three
// steps — heuristics + reduction (hMBB, Algorithm 5), bridging to locally
// dense vertex-centred subgraphs over a total search order (bridgeMBB,
// Algorithm 6, Definitions 5–6), and maximality verification with the
// dense solver (verifyMBB, Algorithm 8) — plus the bd1..bd5 ablation
// variants of Table 3.
//
// Steps 2 and 3 run as a streaming pipeline: vertex-centred subgraphs
// flow from the producer (the bridging step) through a bounded channel
// into a pool of verification workers, so peak memory is O(workers)
// subgraphs instead of O(all subgraphs), and an improvement found by any
// worker immediately tightens the pruning of the producer and of every
// other worker via the execution context's shared incumbent size.
package sparse

import (
	"sync"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
)

// Options configures hbvMBB and its ablation variants. Budgets and
// cancellation are carried by the *core.Exec passed to Solve, not by
// Options.
type Options struct {
	// Order is the total search order used to build vertex-centred
	// subgraphs. The default (zero value) is decomp.OrderDegree; callers
	// should normally pass decomp.OrderBidegeneracy, the paper's choice.
	Order decomp.OrderKind

	// SkipHeuristic disables step 1 entirely (variant bd1).
	SkipHeuristic bool

	// SkipCoreOpts disables every core/bicore-based optimisation (variant
	// bd2): no Lemma 4 reduction, no degeneracy pruning of subgraphs, and
	// degree-based scores replace core numbers in the heuristics. It also
	// forces the degree order, since the peeling orders are themselves
	// core-based.
	SkipCoreOpts bool

	// UseBasicBB verifies subgraphs with Algorithm 1 instead of denseMBB
	// (variant bd3).
	UseBasicBB bool

	// Seeds is the number of high-score seed vertices each greedy
	// heuristic tries (default 8).
	Seeds int

	// Workers sets the number of goroutines used by the maximality
	// verification step; values ≤ 1 keep the pipeline sequential (the
	// paper's schedule). The workers share one budget and one incumbent
	// through the execution context, so the optimum is identical — only
	// the schedule (and therefore the node count) differs.
	Workers int
}

// DefaultOptions returns the full hbvMBB configuration used in the
// paper's headline results.
func DefaultOptions() Options {
	return Options{Order: decomp.OrderBidegeneracy, Seeds: 8}
}

// Solve runs Algorithm 4 (hbvMBB) on g under the execution context ex
// (nil means unlimited) and returns the maximum balanced biclique (exact
// unless the budget ran out or ex was cancelled).
func Solve(ex *core.Exec, g *bigraph.Graph, opt Options) core.Result {
	st := newState(ex, g, opt)

	// Step 1: heuristics and global reduction (hMBB).
	reduced, newToOld, done := st.hMBB()
	st.heurGlobal = st.bestSize()
	st.heurLocal = st.heurGlobal // refined by step 2 if it runs
	if done {
		st.step = core.Step1
		return st.result()
	}

	// Steps 2+3: the streaming bridge/verify pipeline.
	st.pipeline(reduced, newToOld)
	return st.result()
}

// HeuristicOnly runs only step 1 of the framework (hMBB, Algorithm 5):
// the greedy heuristics with core-based reduction and early termination.
// The result is the heuristic incumbent; Stats.Step is Step1 if
// optimality was proven, StepNone otherwise.
func HeuristicOnly(ex *core.Exec, g *bigraph.Graph, opt Options) core.Result {
	st := newState(ex, g, opt)
	_, _, done := st.hMBB()
	st.heurGlobal = st.bestSize()
	st.heurLocal = st.heurGlobal
	if done {
		st.step = core.Step1
	}
	return st.result()
}

// state carries the incumbent (always in original unified ids) and the
// framework-level statistics across the three steps. The incumbent size
// is mirrored into the execution context's shared atomic so every layer
// (producer, workers, the dense solver's inner nodes) prunes with the
// freshest bound; the witness itself lives here under mu.
type state struct {
	g   *bigraph.Graph
	opt Options
	ex  *core.Exec

	mu   sync.Mutex
	best bigraph.Biclique

	// Framework-level stats, written only from the coordinating
	// goroutine (the additive per-solve counters flow through
	// ex.AddStats instead).
	step                  core.Step
	heurGlobal, heurLocal int
	bidegeneracy          int
}

func newState(ex *core.Exec, g *bigraph.Graph, opt Options) *state {
	if opt.Seeds <= 0 {
		opt.Seeds = 8
	}
	if ex == nil {
		// The shared incumbent and budget live in the Exec, so the
		// framework always runs with one, even if the caller did not
		// care to provide one.
		ex = core.Background()
	}
	return &state{g: g, opt: opt, ex: ex}
}

// bestSize reads the shared incumbent balanced size.
func (s *state) bestSize() int { return s.ex.Best() }

// improve installs bc (given in original unified ids) if strictly larger
// than the incumbent, publishing the new size to the execution context.
// Safe for concurrent use.
func (s *state) improve(bc bigraph.Biclique) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bc.Size() > s.best.Size() {
		s.best = bc.Balanced()
		s.ex.OfferBest(s.best.Size())
		return true
	}
	return false
}

func (s *state) result() core.Result {
	stats := s.ex.Snapshot()
	stats.Step = s.step
	stats.HeurGlobalSize = s.heurGlobal
	stats.HeurLocalSize = s.heurLocal
	if s.bidegeneracy > stats.Bidegeneracy {
		stats.Bidegeneracy = s.bidegeneracy
	}
	if s.ex.Stopped() {
		stats.TimedOut = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.Result{Biclique: s.best, Stats: stats}
}

// remap lifts a biclique through a newToOld table.
func remap(bc bigraph.Biclique, newToOld []int) bigraph.Biclique {
	return bc.Remap(newToOld)
}
