// Package sparse implements the paper's framework for large sparse
// bipartite graphs (Section 5): hbvMBB (Algorithm 4) with its three
// steps — heuristics + reduction (hMBB, Algorithm 5), bridging to locally
// dense vertex-centred subgraphs over a total search order (bridgeMBB,
// Algorithm 6, Definitions 5–6), and maximality verification with the
// dense solver (verifyMBB, Algorithm 8) — plus the bd1..bd5 ablation
// variants of Table 3.
package sparse

import (
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
)

// Options configures hbvMBB and its ablation variants.
type Options struct {
	Budget *core.Budget // nil means unlimited

	// Order is the total search order used to build vertex-centred
	// subgraphs. The default (zero value) is decomp.OrderDegree; callers
	// should normally pass decomp.OrderBidegeneracy, the paper's choice.
	Order decomp.OrderKind

	// SkipHeuristic disables step 1 entirely (variant bd1).
	SkipHeuristic bool

	// SkipCoreOpts disables every core/bicore-based optimisation (variant
	// bd2): no Lemma 4 reduction, no degeneracy pruning of subgraphs, and
	// degree-based scores replace core numbers in the heuristics. It also
	// forces the degree order, since the peeling orders are themselves
	// core-based.
	SkipCoreOpts bool

	// UseBasicBB verifies subgraphs with Algorithm 1 instead of denseMBB
	// (variant bd3).
	UseBasicBB bool

	// Seeds is the number of high-score seed vertices each greedy
	// heuristic tries (default 8).
	Seeds int

	// Workers sets the number of goroutines used by the maximality
	// verification step; values ≤ 1 keep it sequential. Parallel
	// verification is an engineering extension over the paper (whose
	// implementation is sequential); results are identical, only the
	// schedule differs. With a MaxNodes budget the limit applies per
	// worker.
	Workers int
}

// DefaultOptions returns the full hbvMBB configuration used in the
// paper's headline results.
func DefaultOptions() Options {
	return Options{Order: decomp.OrderBidegeneracy, Seeds: 8}
}

// Solve runs Algorithm 4 (hbvMBB) on g and returns the maximum balanced
// biclique (exact unless the budget ran out).
func Solve(g *bigraph.Graph, opt Options) core.Result {
	if opt.Seeds <= 0 {
		opt.Seeds = 8
	}
	st := &state{g: g, opt: opt}

	// Step 1: heuristics and global reduction (hMBB).
	reduced, newToOld, done := st.hMBB()
	st.stats.HeurGlobalSize = st.bestSize()
	st.stats.HeurLocalSize = st.bestSize() // refined by step 2 if it runs
	if done {
		st.stats.Step = core.Step1
		return st.result()
	}

	// Step 2: bridge to vertex-centred subgraphs.
	survivors := st.bridge(reduced, newToOld)
	st.stats.HeurLocalSize = st.bestSize()
	if len(survivors) == 0 {
		st.stats.Step = core.Step2
		return st.result()
	}

	// Step 3: maximality verification.
	st.stats.Step = core.Step3
	st.verify(survivors)
	return st.result()
}

// HeuristicOnly runs only step 1 of the framework (hMBB, Algorithm 5):
// the greedy heuristics with core-based reduction and early termination.
// The result is the heuristic incumbent; Stats.Step is Step1 if
// optimality was proven, StepNone otherwise.
func HeuristicOnly(g *bigraph.Graph, opt Options) core.Result {
	if opt.Seeds <= 0 {
		opt.Seeds = 8
	}
	st := &state{g: g, opt: opt}
	_, _, done := st.hMBB()
	st.stats.HeurGlobalSize = st.bestSize()
	if done {
		st.stats.Step = core.Step1
	}
	return st.result()
}

// state carries the incumbent (always in original unified ids) and the
// aggregated statistics across the three steps.
type state struct {
	g     *bigraph.Graph
	opt   Options
	best  bigraph.Biclique
	stats core.Stats
}

func (s *state) bestSize() int { return s.best.Size() }

// improve installs bc (given in original unified ids) if strictly larger.
func (s *state) improve(bc bigraph.Biclique) bool {
	if bc.Size() > s.best.Size() {
		s.best = bc.Balanced()
		return true
	}
	return false
}

func (s *state) result() core.Result {
	return core.Result{Biclique: s.best, Stats: s.stats}
}

// remap lifts a biclique through a newToOld table.
func remap(bc bigraph.Biclique, newToOld []int) bigraph.Biclique {
	return bc.Remap(newToOld)
}
