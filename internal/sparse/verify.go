package sparse

import (
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
)

// verifyOne is step 3 of the framework (Algorithm 8) for a single
// vertex-centred subgraph: reduce it to the (best+1)-core and, if its
// centre survives, search it exhaustively with the dense solver anchored
// at the centre. Any strictly larger balanced biclique becomes the new
// incumbent, which — through the execution context's shared size —
// immediately strengthens the reduction of every other in-flight
// subgraph. Safe for concurrent use by the worker pool.
func (s *state) verifyOne(h centred) {
	if s.ex.Stopped() {
		return // drain quickly after cancellation or budget exhaustion
	}
	bc, stats, found := s.solveCentred(h, s.bestSize())
	s.ex.AddStats(&stats)
	if found {
		s.improve(bc)
	}
}

// solveCentred verifies one vertex-centred subgraph against the incumbent
// size `best` and returns an improving biclique (in original unified ids)
// if one exists. It is safe for concurrent use: it only reads immutable
// state from s (the graph and options) and the concurrency-safe execution
// context.
func (s *state) solveCentred(h centred, best int) (bigraph.Biclique, core.Stats, bool) {
	var stats core.Stats
	mode := dense.ModeDense
	if s.opt.UseBasicBB {
		mode = dense.ModeBasic
	}

	// Re-apply the cheap prunes with the (possibly improved) incumbent.
	mask := decomp.KCoreMask(h.sub, best+1)
	if !mask[h.center] {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	sub2, toSub := h.sub.InducedByMask(mask)
	nl, nr := sub2.NL(), sub2.NR()
	if nl <= best || nr <= best {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	toOrig := make([]int, len(toSub))
	for i, v := range toSub {
		toOrig[i] = h.toOrig[v]
	}

	// Locate the centre in sub2 and orient the matrix so the centre side
	// is the matrix's left side.
	centerOrig := h.toOrig[h.center]
	center := indexOf(toOrig, centerOrig)
	if center < 0 {
		return bigraph.Biclique{}, stats, false // unreachable: mask held
	}
	var lefts, rights []int
	if sub2.IsLeft(center) {
		lefts = sideIDs(sub2, true)
		rights = sideIDs(sub2, false)
	} else {
		lefts = sideIDs(sub2, false)
		rights = sideIDs(sub2, true)
	}
	anchor := indexOf(lefts, center)
	m := dense.FromInduced(sub2, lefts, rights)
	res := dense.Solve(s.ex, m, dense.Options{
		Mode:   mode,
		Lower:  best,
		FixedA: []int{anchor},
	})
	stats.Merge(&res.Stats)
	if !res.Found {
		return bigraph.Biclique{}, stats, false
	}
	// Lift matrix indices → sub2 ids → original ids, then split by
	// original side (the matrix may be side-flipped).
	var bc bigraph.Biclique
	for _, i := range res.A {
		bc.A = append(bc.A, toOrig[lefts[i]])
	}
	for _, j := range res.B {
		bc.B = append(bc.B, toOrig[rights[j]])
	}
	if !s.g.IsLeft(bc.A[0]) {
		bc.A, bc.B = bc.B, bc.A
	}
	return bc, stats, true
}

// sideIDs lists the unified ids of one side of g.
func sideIDs(g *bigraph.Graph, left bool) []int {
	var out []int
	if left {
		for i := 0; i < g.NL(); i++ {
			out = append(out, g.Left(i))
		}
	} else {
		for j := 0; j < g.NR(); j++ {
			out = append(out, g.Right(j))
		}
	}
	return out
}

func indexOf(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return -1
}
