package sparse

import (
	"sync"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
)

// verify is step 3 of the framework (Algorithm 8): each surviving
// vertex-centred subgraph is reduced to the (best+1)-core and, if its
// centre survives, searched exhaustively with the dense solver anchored
// at the centre. Any strictly larger balanced biclique found becomes the
// new incumbent, which strengthens the reduction for the remaining
// subgraphs. With Options.Workers > 1 the subgraphs are verified
// concurrently; each worker reads the incumbent at dispatch time, so
// pruning is slightly weaker than the sequential schedule but the result
// is identical.
func (s *state) verify(survivors []centred) {
	if s.opt.Workers > 1 {
		s.verifyParallel(survivors)
		return
	}
	for _, h := range survivors {
		if s.opt.Budget.Exceeded() {
			s.stats.TimedOut = true
			return
		}
		bc, stats, found := s.solveCentred(h, s.bestSize(), s.opt.Budget)
		s.stats.Merge(&stats)
		if found {
			s.improve(bc)
		}
	}
}

// verifyParallel fans the surviving subgraphs out to a worker pool. The
// shared budget is replaced by per-worker budgets with the same deadline
// (core.Budget is not safe for concurrent use); node limits are applied
// per worker.
func (s *state) verifyParallel(survivors []centred) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan centred)
	workers := s.opt.Workers

	for w := 0; w < workers; w++ {
		wb := cloneBudget(s.opt.Budget)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range jobs {
				mu.Lock()
				best := s.bestSize()
				mu.Unlock()
				bc, stats, found := s.solveCentred(h, best, wb)
				mu.Lock()
				s.stats.Merge(&stats)
				if found {
					s.improve(bc)
				}
				mu.Unlock()
				if wb.Exceeded() {
					mu.Lock()
					s.stats.TimedOut = true
					mu.Unlock()
					break
				}
			}
			// Drain remaining jobs if we broke early.
			for range jobs {
			}
		}()
	}
	for _, h := range survivors {
		jobs <- h
	}
	close(jobs)
	wg.Wait()
}

// cloneBudget derives an independent budget with the same limits.
func cloneBudget(b *core.Budget) *core.Budget {
	if b == nil {
		return nil
	}
	return &core.Budget{Deadline: b.Deadline, MaxNodes: b.MaxNodes}
}

// solveCentred verifies one vertex-centred subgraph against the incumbent
// size `best` and returns an improving biclique (in original unified ids)
// if one exists. It is safe for concurrent use: it only reads immutable
// state from s (the graph and options).
func (s *state) solveCentred(h centred, best int, budget *core.Budget) (bigraph.Biclique, core.Stats, bool) {
	var stats core.Stats
	mode := dense.ModeDense
	if s.opt.UseBasicBB {
		mode = dense.ModeBasic
	}

	// Re-apply the cheap prunes with the (possibly improved) incumbent.
	mask := decomp.KCoreMask(h.sub, best+1)
	if !mask[h.center] {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	sub2, toSub := h.sub.InducedByMask(mask)
	nl, nr := sub2.NL(), sub2.NR()
	if nl <= best || nr <= best {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	toOrig := make([]int, len(toSub))
	for i, v := range toSub {
		toOrig[i] = h.toOrig[v]
	}

	// Locate the centre in sub2 and orient the matrix so the centre side
	// is the matrix's left side.
	centerOrig := h.toOrig[h.center]
	center := indexOf(toOrig, centerOrig)
	if center < 0 {
		return bigraph.Biclique{}, stats, false // unreachable: mask held
	}
	var lefts, rights []int
	if sub2.IsLeft(center) {
		lefts = sideIDs(sub2, true)
		rights = sideIDs(sub2, false)
	} else {
		lefts = sideIDs(sub2, false)
		rights = sideIDs(sub2, true)
	}
	anchor := indexOf(lefts, center)
	m := dense.FromInduced(sub2, lefts, rights)
	res := dense.Solve(m, dense.Options{
		Mode:   mode,
		Budget: budget,
		Lower:  best,
		FixedA: []int{anchor},
	})
	stats.Merge(&res.Stats)
	if !res.Found {
		return bigraph.Biclique{}, stats, false
	}
	// Lift matrix indices → sub2 ids → original ids, then split by
	// original side (the matrix may be side-flipped).
	var bc bigraph.Biclique
	for _, i := range res.A {
		bc.A = append(bc.A, toOrig[lefts[i]])
	}
	for _, j := range res.B {
		bc.B = append(bc.B, toOrig[rights[j]])
	}
	if !s.g.IsLeft(bc.A[0]) {
		bc.A, bc.B = bc.B, bc.A
	}
	return bc, stats, true
}

// sideIDs lists the unified ids of one side of g.
func sideIDs(g *bigraph.Graph, left bool) []int {
	var out []int
	if left {
		for i := 0; i < g.NL(); i++ {
			out = append(out, g.Left(i))
		}
	} else {
		for j := 0; j < g.NR(); j++ {
			out = append(out, g.Right(j))
		}
	}
	return out
}

func indexOf(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return -1
}
