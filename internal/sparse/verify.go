package sparse

import (
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dense"
)

// verifyScratch is the per-worker arena for solveCentred, recycled
// through the execution context: the k-core mask, the subgraph inducer,
// the id-translation buffers and the dense matrix arena are all reused
// across the many subgraphs one verification worker processes. A pruned
// verification (the steady state once the incumbent is optimal) touches
// only this arena and allocates nothing.
type verifyScratch struct {
	mask          []bool
	ind           bigraph.Inducer
	toOrig        []int
	lefts, rights []int
	pos           []int32
	mat           dense.Matrix
	fixedA        [1]int
}

var verifyScratchKey = new(core.ScratchKey)

// verifyOne is step 3 of the framework (Algorithm 8) for a single
// vertex-centred subgraph: reduce it to the (best+1)-core and, if its
// centre survives, search it exhaustively with the dense solver anchored
// at the centre. Any strictly larger balanced biclique becomes the new
// incumbent, which — through the execution context's shared size —
// immediately strengthens the reduction of every other in-flight
// subgraph. Safe for concurrent use by the worker pool.
func (s *state) verifyOne(h centred) {
	if s.ex.Stopped() {
		return // drain quickly after cancellation or budget exhaustion
	}
	bc, stats, found := s.solveCentred(h, s.bestSize())
	s.ex.AddStats(&stats)
	if found {
		s.improve(bc)
	}
}

// solveCentred verifies one vertex-centred subgraph against the incumbent
// size `best` and returns an improving biclique (in original unified ids)
// if one exists. It is safe for concurrent use: it only reads immutable
// state from s (the graph and options) and the concurrency-safe execution
// context.
func (s *state) solveCentred(h centred, best int) (bigraph.Biclique, core.Stats, bool) {
	var stats core.Stats
	mode := dense.ModeDense
	if s.opt.UseBasicBB {
		mode = dense.ModeBasic
	}
	var vs *verifyScratch
	if v := s.ex.GetScratch(verifyScratchKey); v != nil {
		vs = v.(*verifyScratch)
	} else {
		vs = &verifyScratch{}
	}
	defer s.ex.PutScratch(verifyScratchKey, vs)

	// Re-apply the cheap prunes with the (possibly improved) incumbent.
	vs.mask = decomp.KCoreMaskInto(h.sub, best+1, vs.mask)
	if !vs.mask[h.center] {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	sub2, toSub := vs.ind.InduceByMask(h.sub, vs.mask)
	nl, nr := sub2.NL(), sub2.NR()
	if nl <= best || nr <= best {
		stats.SubgraphsPruned++
		return bigraph.Biclique{}, stats, false
	}
	toOrig := vs.toOrig[:0]
	for _, v := range toSub {
		toOrig = append(toOrig, h.toOrig[v])
	}
	vs.toOrig = toOrig

	// Locate the centre in sub2 and orient the matrix so the centre side
	// is the matrix's left side.
	centerOrig := h.toOrig[h.center]
	center := indexOf(toOrig, centerOrig)
	if center < 0 {
		return bigraph.Biclique{}, stats, false // unreachable: mask held
	}
	var lefts, rights []int
	if sub2.IsLeft(center) {
		lefts = sideIDsInto(sub2, true, vs.lefts[:0])
		rights = sideIDsInto(sub2, false, vs.rights[:0])
	} else {
		lefts = sideIDsInto(sub2, false, vs.lefts[:0])
		rights = sideIDsInto(sub2, true, vs.rights[:0])
	}
	vs.lefts, vs.rights = lefts, rights
	anchor := indexOf(lefts, center)
	vs.pos = dense.FromInducedInto(&vs.mat, sub2, lefts, rights, vs.pos)
	vs.fixedA[0] = anchor
	res := dense.Solve(s.ex, &vs.mat, dense.Options{
		Mode:   mode,
		Lower:  best,
		FixedA: vs.fixedA[:],
	})
	stats.Merge(&res.Stats)
	if !res.Found {
		return bigraph.Biclique{}, stats, false
	}
	// Lift matrix indices → sub2 ids → original ids, then split by
	// original side (the matrix may be side-flipped).
	var bc bigraph.Biclique
	for _, i := range res.A {
		bc.A = append(bc.A, toOrig[lefts[i]])
	}
	for _, j := range res.B {
		bc.B = append(bc.B, toOrig[rights[j]])
	}
	if !s.g.IsLeft(bc.A[0]) {
		bc.A, bc.B = bc.B, bc.A
	}
	return bc, stats, true
}

// sideIDsInto appends the unified ids of one side of g to dst.
func sideIDsInto(g *bigraph.Graph, left bool, dst []int) []int {
	if left {
		for i := 0; i < g.NL(); i++ {
			dst = append(dst, g.Left(i))
		}
	} else {
		for j := 0; j < g.NR(); j++ {
			dst = append(dst, g.Right(j))
		}
	}
	return dst
}

func indexOf(a []int, v int) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return -1
}
