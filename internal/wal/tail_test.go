package wal

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// nextT calls Next with a test-bounded deadline so a bug hangs the test
// for seconds, not forever.
func nextT(t *testing.T, tl *Tailer) Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rec, err := tl.Next(ctx)
	if err != nil {
		t.Fatalf("tail next: %v", err)
	}
	return rec
}

func TestTailReadsExistingAndLiveRecords(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncOff}) // buffered path: exercises Flush-on-catch-up
	defer l.Close()

	for i := 1; i <= 3; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i), Payload: []byte("d")}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tl := l.Tail(Pos{})
	defer tl.Close()
	for i := 1; i <= 3; i++ {
		rec := nextT(t, tl)
		if rec.Type != RecDelta || rec.Epoch != uint64(i) || rec.Name != "g" {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	if end := l.EndPos(); tl.Pos() != end {
		t.Fatalf("caught-up tail pos %v != end pos %v", tl.Pos(), end)
	}

	// A caught-up Next blocks until the next append lands.
	done := make(chan Record, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rec, err := tl.Next(ctx)
		if err == nil {
			done <- rec
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Next returned before any append")
	case <-time.After(50 * time.Millisecond):
	}
	if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: 4, Payload: []byte("live")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	rec, ok := <-done
	if !ok || rec.Epoch != 4 || !bytes.Equal(rec.Payload, []byte("live")) {
		t.Fatalf("live-followed record = %+v (ok=%v)", rec, ok)
	}
}

func TestTailCrossesSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	defer l.Close()

	const n = 20
	for i := 1; i <= n; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 40)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if first, active, _, _ := l.tailState(); active == first {
		t.Fatalf("expected rotation, still on segment %d", active)
	}
	tl := l.Tail(Pos{})
	defer tl.Close()
	for i := 1; i <= n; i++ {
		if rec := nextT(t, tl); rec.Epoch != uint64(i) {
			t.Fatalf("record %d has epoch %d", i, rec.Epoch)
		}
	}
}

func TestTailRestartsAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 64})
	defer l.Close()

	for i := 1; i <= 10; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i), Payload: bytes.Repeat([]byte{1}, 40)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// A tailer parked at the (about to be compacted) oldest segment.
	tl := l.Tail(Pos{})
	defer tl.Close()

	// Checkpoint: one snapshot record, then compaction drops the old
	// segments the tailer was pointing at.
	err := l.Checkpoint(func(app func(Record) error) error {
		return app(Record{Type: RecGraphSnap, Name: "g", Gen: 1, Epoch: 10, Payload: []byte("snap")})
	})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if start := l.StartPos(); start.Seg <= 1 {
		t.Fatalf("compaction did not advance the start pos: %v", start)
	}

	// The tailer restarts from the oldest live segment and sees the
	// checkpoint contents, not an error.
	rec := nextT(t, tl)
	if rec.Type != RecGraphSnap || rec.Name != "g" || rec.Epoch != 10 {
		t.Fatalf("post-compaction record = %+v, want the checkpoint snapshot", rec)
	}
	if rec = nextT(t, tl); rec.Type != RecCheckpointEnd {
		t.Fatalf("expected checkpoint-end, got %+v", rec)
	}
}

func TestTailResumeFromPos(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways})
	defer l.Close()

	for i := 1; i <= 4; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tl := l.Tail(Pos{})
	nextT(t, tl)
	nextT(t, tl)
	resume := tl.Pos()
	tl.Close()

	tl2 := l.Tail(resume)
	defer tl2.Close()
	if rec := nextT(t, tl2); rec.Epoch != 3 {
		t.Fatalf("resumed tail read epoch %d, want 3", rec.Epoch)
	}

	// Round-trip the resume position through its wire form.
	parsed, err := ParsePos(resume.String())
	if err != nil || parsed != resume {
		t.Fatalf("ParsePos(%q) = %v, %v; want %v", resume.String(), parsed, err, resume)
	}
}

func TestTailClosedLog(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways})
	if err := l.Append(Record{Type: RecPut, Name: "g", Gen: 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	tl := l.Tail(Pos{})
	defer tl.Close()
	nextT(t, tl) // the appended record still reads fine
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := tl.Next(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next on closed log = %v, want ErrClosed", err)
	}
}

func TestStreamMsgRoundTrip(t *testing.T) {
	rec := Record{Type: RecDelta, Name: "graph-7", Gen: 3, Epoch: 42, Payload: []byte{1, 2, 3, 4}}
	var buf []byte
	buf = AppendStreamMsg(buf, StreamMsg{Kind: StreamRecord, Pos: Pos{Seg: 2, Off: 99}, Rec: rec})
	buf = AppendStreamMsg(buf, StreamMsg{Kind: StreamHeartbeat, Pos: Pos{Seg: 5, Off: 1234}})

	br := bufio.NewReader(bytes.NewReader(buf))
	m1, err := ReadStreamMsg(br)
	if err != nil {
		t.Fatalf("read record msg: %v", err)
	}
	if m1.Kind != StreamRecord || m1.Pos != (Pos{Seg: 2, Off: 99}) ||
		m1.Rec.Type != rec.Type || m1.Rec.Name != rec.Name || m1.Rec.Gen != rec.Gen ||
		m1.Rec.Epoch != rec.Epoch || !bytes.Equal(m1.Rec.Payload, rec.Payload) {
		t.Fatalf("record msg = %+v", m1)
	}
	m2, err := ReadStreamMsg(br)
	if err != nil {
		t.Fatalf("read heartbeat: %v", err)
	}
	if m2.Kind != StreamHeartbeat || m2.Pos != (Pos{Seg: 5, Off: 1234}) {
		t.Fatalf("heartbeat = %+v", m2)
	}
}

func TestStreamMsgRejectsCorruption(t *testing.T) {
	good := AppendStreamMsg(nil, StreamMsg{Kind: StreamRecord, Pos: Pos{Seg: 1}, Rec: Record{Type: RecPut, Name: "g", Gen: 1, Payload: []byte("p")}})

	flip := append([]byte(nil), good...)
	flip[len(flip)-1] ^= 0xff
	if _, err := ReadStreamMsg(bufio.NewReader(bytes.NewReader(flip))); err == nil {
		t.Fatal("corrupted payload read back without error")
	}

	unknown := append([]byte(nil), good...)
	unknown[0] = 'Z'
	if _, err := ReadStreamMsg(bufio.NewReader(bytes.NewReader(unknown))); err == nil {
		t.Fatal("unknown message kind accepted")
	}

	if _, err := ReadStreamMsg(bufio.NewReader(bytes.NewReader(good[:5]))); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
