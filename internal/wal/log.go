package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Append returns, with group commit:
	// concurrent appenders share one fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker; an append is durable
	// within one SyncInterval of returning.
	SyncInterval
	// SyncOff never fsyncs on the append path (only on rotation,
	// checkpoint and close). Crash durability is whatever the OS page
	// cache allows.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("sync-policy-%d", int(p))
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Options configures a Log. Zero values select the defaults noted on
// each field.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size. Default 64 MiB. A record never spans segments, so a
	// segment can exceed this by at most one record.
	SegmentBytes int64
	// Sync is the append durability policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval. Default 100ms.
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	return o
}

// ReplayStats summarizes what Open found on disk.
type ReplayStats struct {
	Segments       int   // segment files present at open
	Records        int   // records replayed
	TruncatedBytes int64 // torn bytes dropped from the tail segment
}

// FsyncBounds are the upper bounds (seconds) of the fsync latency
// histogram buckets; counts have one extra overflow bucket.
var FsyncBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// StatsSnapshot is a point-in-time copy of the log's counters.
type StatsSnapshot struct {
	Appends            int64
	AppendBytes        int64
	Fsyncs             int64
	FsyncNanos         int64
	FsyncHist          []uint64 // len(FsyncBounds)+1 buckets
	Segments           int64    // live segment files
	Checkpoints        int64
	SegmentsDropped    int64
	LastCheckpointUnix int64 // unix nanos of last completed checkpoint, 0 if none
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(idx uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, idx, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if len(mid) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only segmented record log. All methods are safe for
// concurrent use.
type Log struct {
	dir string
	opt Options

	// mu guards the active segment (file, writer, sizes) and the append
	// sequence. Lock order: mu before syncMu; never the reverse.
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segIdx   uint64 // index of the active segment
	firstSeg uint64 // oldest live segment index
	segSize  int64  // bytes appended to the active segment (incl. buffered)
	seq      uint64 // records appended over the log's lifetime
	dirty    bool   // buffered/unsynced bytes exist
	closed   bool
	scratch  []byte // frame encode buffer, reused under mu

	// Group commit (SyncAlways): an appender waits until syncedSeq
	// covers its record; the first waiter to find no sync in flight
	// becomes leader and fsyncs everything buffered so far.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq uint64

	// checkpointMu serializes Checkpoint passes.
	checkpointMu sync.Mutex

	stop     chan struct{} // closes the interval-sync goroutine
	bgDone   sync.WaitGroup
	statsVal stats
}

type stats struct {
	appends         atomic.Int64
	appendBytes     atomic.Int64
	fsyncs          atomic.Int64
	fsyncNanos      atomic.Int64
	fsyncHist       []atomic.Uint64
	segments        atomic.Int64
	checkpoints     atomic.Int64
	segmentsDropped atomic.Int64
	lastCheckpoint  atomic.Int64
}

// Open opens (or creates) the log in dir, replays every intact record
// through replay in append order, and readies the log for appends.
// Replay happens strictly before any new write can be issued, so the
// caller's state is exactly the durable state when Open returns.
//
// A torn tail — a partial or corrupt frame at the end of the *newest*
// segment — is truncated away: it is the expected residue of a crash
// mid-append. The same damage in any older segment is hard corruption
// and fails Open, because rotation fsyncs a segment before opening its
// successor, so older segments can never legitimately be torn.
func Open(dir string, opt Options, replay func(Record) error) (*Log, ReplayStats, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ReplayStats{}, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	var segs []uint64
	for _, e := range entries {
		if idx, ok := parseSegName(e.Name()); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	var rs ReplayStats
	rs.Segments = len(segs)
	for i, idx := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rs, err
		}
		off := 0
		for off < len(data) {
			rec, n, ferr := parseFrame(data[off:])
			if ferr != nil {
				if !last {
					return nil, rs, fmt.Errorf("wal: segment %s corrupt at offset %d: %w", segName(idx), off, ferr)
				}
				// Torn tail: drop it and resume appending at the last
				// intact frame.
				rs.TruncatedBytes = int64(len(data) - off)
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, rs, err
				}
				break
			}
			if err := replay(rec); err != nil {
				return nil, rs, fmt.Errorf("wal: replaying %s record for %q (epoch %d): %w", rec.Type, rec.Name, rec.Epoch, err)
			}
			rs.Records++
			off += n
		}
	}

	l := &Log{dir: dir, opt: opt, stop: make(chan struct{})}
	l.syncCond = sync.NewCond(&l.syncMu)
	l.statsVal.fsyncHist = make([]atomic.Uint64, len(FsyncBounds)+1)
	if len(segs) == 0 {
		l.segIdx, l.firstSeg = 1, 1
		if err := l.openSegment(true); err != nil {
			return nil, rs, err
		}
	} else {
		l.segIdx, l.firstSeg = segs[len(segs)-1], segs[0]
		if err := l.openSegment(false); err != nil {
			return nil, rs, err
		}
	}
	l.statsVal.segments.Store(int64(l.segIdx - l.firstSeg + 1))
	if opt.Sync == SyncInterval {
		l.bgDone.Add(1)
		go l.intervalLoop()
	}
	return l, rs, nil
}

// openSegment opens the active segment for append, creating it if asked,
// and records its current size. Called with l.mu effectively exclusive
// (from Open or under l.mu).
func (l *Log) openSegment(create bool) error {
	flags := os.O_WRONLY | os.O_APPEND
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.segIdx)), flags, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.w, l.segSize = f, bufio.NewWriterSize(f, 1<<16), st.Size()
	if create {
		return syncDir(l.dir)
	}
	return nil
}

// Append writes rec to the log and applies the sync policy: under
// SyncAlways it returns only once the record is fsynced (sharing the
// fsync with concurrent appenders); under SyncInterval/SyncOff it
// returns once the record is buffered.
func (l *Log) Append(rec Record) error {
	seq, err := l.append(rec)
	if err != nil {
		return err
	}
	if l.opt.Sync == SyncAlways {
		return l.syncTo(seq)
	}
	return nil
}

// append frames and buffers rec, rotating first if the active segment is
// full. Returns the record's sequence number.
func (l *Log) append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	l.scratch = rec.appendFrame(l.scratch[:0])
	if _, err := l.w.Write(l.scratch); err != nil {
		return 0, err
	}
	l.segSize += int64(len(l.scratch))
	l.seq++
	l.dirty = true
	l.statsVal.appends.Add(1)
	l.statsVal.appendBytes.Add(int64(len(l.scratch)))
	return l.seq, nil
}

// rotate seals the active segment (flush + fsync, preserving the
// only-the-last-segment-can-tear invariant regardless of sync policy)
// and opens the next one. Called under l.mu.
func (l *Log) rotate() error {
	if err := l.flushSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segIdx++
	if err := l.openSegment(true); err != nil {
		return err
	}
	l.statsVal.segments.Store(int64(l.segIdx - l.firstSeg + 1))
	return nil
}

// flushSyncLocked flushes the buffer and fsyncs the active segment,
// advancing the group-commit horizon on success. Called under l.mu.
func (l *Log) flushSyncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	el := time.Since(start)
	l.statsVal.fsyncs.Add(1)
	l.statsVal.fsyncNanos.Add(el.Nanoseconds())
	sec := el.Seconds()
	b := 0
	for b < len(FsyncBounds) && sec > FsyncBounds[b] {
		b++
	}
	l.statsVal.fsyncHist[b].Add(1)
	l.dirty = false
	covered := l.seq
	l.syncMu.Lock()
	if covered > l.syncedSeq {
		l.syncedSeq = covered
	}
	l.syncMu.Unlock()
	return nil
}

// syncTo blocks until every record up to seq is fsynced. Group commit:
// the first caller to find no fsync in flight becomes the leader and
// syncs everything buffered; others ride along. On fsync failure the
// horizon does not advance, so each waiter retries as leader and
// surfaces its own error.
func (l *Log) syncTo(seq uint64) error {
	for {
		l.syncMu.Lock()
		for l.syncing && l.syncedSeq < seq {
			l.syncCond.Wait()
		}
		if l.syncedSeq >= seq {
			l.syncMu.Unlock()
			return nil
		}
		l.syncing = true
		l.syncMu.Unlock()

		l.mu.Lock()
		var err error
		if l.closed {
			err = ErrClosed
		} else {
			err = l.flushSyncLocked()
		}
		l.mu.Unlock()

		l.syncMu.Lock()
		l.syncing = false
		l.syncCond.Broadcast()
		l.syncMu.Unlock()
		if err != nil {
			return err
		}
	}
}

func (l *Log) intervalLoop() {
	defer l.bgDone.Done()
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				// Best effort: an error here surfaces on the next
				// explicit sync (rotate/checkpoint/close).
				_ = l.flushSyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Checkpoint rotates to a fresh segment, has the caller emit one
// RecGraphSnap per live graph through app, seals the pass with a
// RecCheckpointEnd and an fsync, and then deletes every segment older
// than the checkpoint segment. Concurrent Appends interleave freely with
// the emitted snapshots — replay ignores a snapshot that is older than
// the state already reconstructed, so the interleaving is harmless.
func (l *Log) Checkpoint(emit func(app func(Record) error) error) error {
	l.checkpointMu.Lock()
	defer l.checkpointMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.rotate(); err != nil {
		l.mu.Unlock()
		return err
	}
	ckptSeg := l.segIdx
	l.mu.Unlock()

	app := func(rec Record) error {
		_, err := l.append(rec)
		return err
	}
	if err := emit(app); err != nil {
		return err
	}
	if err := app(Record{Type: RecCheckpointEnd}); err != nil {
		return err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	err := l.flushSyncLocked()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if err := l.compact(ckptSeg); err != nil {
		return err
	}
	l.statsVal.checkpoints.Add(1)
	l.statsVal.lastCheckpoint.Store(time.Now().UnixNano())
	return nil
}

// compact deletes every segment older than keepFrom. The snapshots in
// keepFrom are durable before compact is called, so the dropped history
// is redundant.
func (l *Log) compact(keepFrom uint64) error {
	l.mu.Lock()
	first := l.firstSeg
	l.mu.Unlock()
	dropped := int64(0)
	for idx := first; idx < keepFrom; idx++ {
		if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil && !os.IsNotExist(err) {
			return err
		}
		dropped++
	}
	if dropped == 0 {
		return nil
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	l.firstSeg = keepFrom
	l.statsVal.segments.Store(int64(l.segIdx - l.firstSeg + 1))
	l.mu.Unlock()
	l.statsVal.segmentsDropped.Add(dropped)
	return nil
}

// Sync forces an immediate flush + fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.flushSyncLocked()
}

// Close flushes, fsyncs and closes the log. Further appends return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.flushSyncLocked()
	l.closed = true
	cerr := l.f.Close()
	l.mu.Unlock()
	close(l.stop)
	l.bgDone.Wait()
	// Wake any group-commit waiters so they observe closed.
	l.syncMu.Lock()
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() StatsSnapshot {
	s := StatsSnapshot{
		Appends:            l.statsVal.appends.Load(),
		AppendBytes:        l.statsVal.appendBytes.Load(),
		Fsyncs:             l.statsVal.fsyncs.Load(),
		FsyncNanos:         l.statsVal.fsyncNanos.Load(),
		Segments:           l.statsVal.segments.Load(),
		Checkpoints:        l.statsVal.checkpoints.Load(),
		SegmentsDropped:    l.statsVal.segmentsDropped.Load(),
		LastCheckpointUnix: l.statsVal.lastCheckpoint.Load(),
		FsyncHist:          make([]uint64, len(FsyncBounds)+1),
	}
	for i := range l.statsVal.fsyncHist {
		s.FsyncHist[i] = l.statsVal.fsyncHist[i].Load()
	}
	return s
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
