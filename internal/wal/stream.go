package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The replication stream is the WAL shipped over HTTP: GET /replicate
// on a worker answers an unbounded sequence of framed messages, each a
// record from its log (with the position one past it, so the consumer
// always knows its resume point) or a heartbeat naming the log's
// current end (so the consumer can tell caught-up from behind).
//
// Message frame:
//
//	kind (1 byte) | payload length (4 bytes LE) | CRC32C (4 bytes LE) |
//	seg (8 bytes LE) | off (8 bytes LE) | [record body]
//
// The CRC covers the payload (positions + record body). Record bodies
// reuse the WAL's own body encoding (Record.AppendBody / DecodeRecord),
// so the stream inherits the log's versioned bigraph payload codec —
// a replica behind on codec versions rejects a frame cleanly at decode,
// before any state change.
const (
	// StreamProtoVersion is the wire protocol version, carried in the
	// StreamProtoHeader response header. A consumer must reject a
	// mismatch rather than guess at frame layouts.
	StreamProtoVersion = 1
	// StreamProtoHeader is the HTTP response header naming the stream
	// protocol version.
	StreamProtoHeader = "X-Mbb-Replication-Proto"
	// StreamStartHeader is the HTTP response header naming the position
	// the stream actually starts at — the requested resume position, or
	// the log's oldest position when the requested one was compacted
	// away (the consumer must adopt it before reading messages).
	StreamStartHeader = "X-Mbb-Replication-Start"

	// StreamRecord frames one WAL record plus the position after it.
	StreamRecord byte = 'R'
	// StreamHeartbeat frames the log's current end position; a consumer
	// whose position is not before it is caught up.
	StreamHeartbeat byte = 'H'

	streamHdrLen = 9  // kind + length + CRC
	streamPosLen = 16 // seg + off
)

// StreamMsg is one replication stream message.
type StreamMsg struct {
	Kind byte
	// Pos is the position after the framed record (StreamRecord) or the
	// log's end (StreamHeartbeat).
	Pos Pos
	// Rec is the framed record; valid only for StreamRecord.
	Rec Record
}

// AppendBody appends the record's body encoding — the frame payload
// without length/CRC framing, the unit the replication stream ships —
// to dst. DecodeRecord parses it back.
func (r Record) AppendBody(dst []byte) []byte { return r.appendBody(dst) }

// AppendStreamMsg appends the framed encoding of m to dst.
func AppendStreamMsg(dst []byte, m StreamMsg) []byte {
	start := len(dst)
	dst = append(dst, m.Kind, 0, 0, 0, 0, 0, 0, 0, 0)
	var posBuf [streamPosLen]byte
	binary.LittleEndian.PutUint64(posBuf[:8], m.Pos.Seg)
	binary.LittleEndian.PutUint64(posBuf[8:], uint64(m.Pos.Off))
	dst = append(dst, posBuf[:]...)
	if m.Kind == StreamRecord {
		dst = m.Rec.AppendBody(dst)
	}
	payload := dst[start+streamHdrLen:]
	binary.LittleEndian.PutUint32(dst[start+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:], crc32.Checksum(payload, crcTable))
	return dst
}

// ReadStreamMsg reads one framed stream message. The input is untrusted
// network bytes: framing violations return errors, never panics. The
// returned record's Name and Payload own their bytes (each message
// allocates its payload), so a consumer may retain them.
func ReadStreamMsg(br *bufio.Reader) (StreamMsg, error) {
	var hdr [streamHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return StreamMsg{}, err
	}
	m := StreamMsg{Kind: hdr[0]}
	if m.Kind != StreamRecord && m.Kind != StreamHeartbeat {
		return StreamMsg{}, fmt.Errorf("wal: unknown stream message kind %q", m.Kind)
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n < streamPosLen || n > MaxRecordBytes+streamPosLen {
		return StreamMsg{}, fmt.Errorf("wal: stream payload length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return StreamMsg{}, err
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[5:]); got != want {
		return StreamMsg{}, fmt.Errorf("wal: stream CRC mismatch (%08x != %08x)", got, want)
	}
	m.Pos = Pos{
		Seg: binary.LittleEndian.Uint64(payload[:8]),
		Off: int64(binary.LittleEndian.Uint64(payload[8:16])),
	}
	if m.Kind == StreamHeartbeat {
		if n != streamPosLen {
			return StreamMsg{}, fmt.Errorf("wal: heartbeat with %d trailing bytes", n-streamPosLen)
		}
		return m, nil
	}
	rec, err := DecodeRecord(payload[streamPosLen:])
	if err != nil {
		return StreamMsg{}, err
	}
	m.Rec = rec
	return m, nil
}
