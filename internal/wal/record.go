// Package wal is an append-only, segmented write-ahead log for the
// served graph store. One record is appended per state transition
// (upload, mutation, delete), checkpoints serialize full snapshots
// in-line, and compaction drops every segment wholly behind the newest
// checkpoint. The log is also the future replication stream: a replica
// that tails the segment files and applies records through the same
// replay rules converges on the primary's state.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// RecordType discriminates WAL records. Values are part of the on-disk
// format; never renumber.
type RecordType uint8

const (
	// RecPut is a full graph upload: payload is a bigraph binary graph
	// record, epoch is 0, gen is the graph's generation id.
	RecPut RecordType = 1
	// RecDelta is one mutation: payload is a bigraph binary delta record
	// (the *effective* delta), epoch is the epoch the delta produced.
	RecDelta RecordType = 2
	// RecDelete removes a graph; payload empty, gen names the generation
	// being deleted.
	RecDelete RecordType = 3
	// RecGraphSnap is a checkpoint copy of one graph at some epoch:
	// payload is a bigraph binary graph record. Semantically a no-op for
	// state that already replayed past it; it exists so compaction can
	// drop the history behind it.
	RecGraphSnap RecordType = 4
	// RecCheckpointEnd marks a completed checkpoint pass. Name, gen,
	// epoch and payload are unused.
	RecCheckpointEnd RecordType = 5
)

func (t RecordType) valid() bool { return t >= RecPut && t <= RecCheckpointEnd }

func (t RecordType) String() string {
	switch t {
	case RecPut:
		return "put"
	case RecDelta:
		return "delta"
	case RecDelete:
		return "delete"
	case RecGraphSnap:
		return "snap"
	case RecCheckpointEnd:
		return "checkpoint-end"
	default:
		return fmt.Sprintf("record-type-%d", uint8(t))
	}
}

// Record is one logical WAL entry. Gen is the owning graph's generation
// id — a store-wide monotone counter stamped at Put time — which lets
// replay distinguish a delta for the *current* incarnation of a name
// from one addressed to a since-deleted predecessor.
type Record struct {
	Type    RecordType
	Name    string
	Gen     uint64
	Epoch   uint64
	Payload []byte
}

const (
	// maxNameLen bounds the graph-name field on decode. The server caps
	// names at 128 bytes; anything larger in a record is corruption.
	maxNameLen = 256
	// MaxRecordBytes bounds a framed record body. Graph payloads are a
	// few bytes per edge, so this comfortably covers the server's vertex
	// ceilings while keeping a corrupt length field from driving a
	// giant allocation.
	MaxRecordBytes = 1 << 28

	frameHeaderLen = 8 // 4-byte little-endian body length + 4-byte CRC32C
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendBody appends the record body (unframed) to dst.
func (r Record) appendBody(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, r.Gen)
	dst = binary.AppendUvarint(dst, r.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(r.Name)))
	dst = append(dst, r.Name...)
	dst = append(dst, r.Payload...)
	return dst
}

// DecodeRecord parses a record body produced by appendBody. The input
// is untrusted (it is read back from disk): malformed bodies return an
// error, never a panic. The returned record's Name and Payload alias
// body.
func DecodeRecord(body []byte) (Record, error) {
	if len(body) == 0 {
		return Record{}, fmt.Errorf("wal: empty record body")
	}
	r := Record{Type: RecordType(body[0])}
	if !r.Type.valid() {
		return Record{}, fmt.Errorf("wal: unknown record type %d", body[0])
	}
	off := 1
	next := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated record at offset %d", off)
		}
		off += n
		return v, nil
	}
	var err error
	if r.Gen, err = next(); err != nil {
		return Record{}, err
	}
	if r.Epoch, err = next(); err != nil {
		return Record{}, err
	}
	nameLen, err := next()
	if err != nil {
		return Record{}, err
	}
	if nameLen > maxNameLen || nameLen > uint64(len(body)-off) {
		return Record{}, fmt.Errorf("wal: name length %d out of range", nameLen)
	}
	r.Name = string(body[off : off+int(nameLen)])
	off += int(nameLen)
	r.Payload = body[off:]
	return r, nil
}

// appendFrame appends the framed encoding of r to dst: body length,
// CRC32C of the body, body. The CRC covers only the body; a corrupt
// length field is caught by the bounds checks on read and by the CRC of
// whatever the misread length spans.
func (r Record) appendFrame(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = r.appendBody(dst)
	body := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst
}

// parseFrame reads one framed record from the front of data. It returns
// the record, the total frame size consumed, or an error describing why
// the bytes cannot be a whole, intact frame (truncation and corruption
// are both errors; the caller decides whether that means a torn tail or
// hard corruption).
func parseFrame(data []byte) (Record, int, error) {
	if len(data) < frameHeaderLen {
		return Record{}, 0, fmt.Errorf("wal: short frame header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("wal: frame length %d out of range", n)
	}
	if uint64(n) > uint64(len(data)-frameHeaderLen) {
		return Record{}, 0, fmt.Errorf("wal: frame length %d exceeds %d bytes available", n, len(data)-frameHeaderLen)
	}
	body := data[frameHeaderLen : frameHeaderLen+int(n)]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[4:]); got != want {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch (%08x != %08x)", got, want)
	}
	rec, err := DecodeRecord(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + int(n), nil
}
