package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, dir string, opt Options) ([]Record, *Log, ReplayStats) {
	t.Helper()
	var got []Record
	l, rs, err := Open(dir, opt, func(r Record) error {
		// Name/Payload alias the segment read buffer; copy for keeping.
		r.Payload = append([]byte(nil), r.Payload...)
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return got, l, rs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways})
	want := []Record{
		{Type: RecPut, Name: "g", Gen: 1, Payload: []byte("graph-bytes")},
		{Type: RecDelta, Name: "g", Gen: 1, Epoch: 1, Payload: []byte("delta-1")},
		{Type: RecDelta, Name: "g", Gen: 1, Epoch: 2, Payload: []byte{}},
		{Type: RecDelete, Name: "g", Gen: 1},
		{Type: RecPut, Name: "other.name-x", Gen: 2, Payload: bytes.Repeat([]byte{0xab}, 1000)},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	got, l2, rs := collect(t, dir, Options{})
	defer l2.Close()
	if rs.Records != len(want) || rs.TruncatedBytes != 0 {
		t.Fatalf("replay stats = %+v, want %d records, 0 truncated", rs, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Type != w.Type || g.Name != w.Name || g.Gen != w.Gen || g.Epoch != w.Epoch || !bytes.Equal(g.Payload, w.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i + 1), Payload: []byte("payload")}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: drop the last 3 bytes, then every other possible
	// cut of the final record, and verify recovery each time.
	frame := len(data) / 5
	for cut := len(data) - frame + 1; cut < len(data); cut++ {
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, l2, rs := collect(t, dir, Options{})
		if len(got) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, len(got))
		}
		if rs.TruncatedBytes != int64(cut-4*frame) {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rs.TruncatedBytes, cut-4*frame)
		}
		// The log must be appendable after truncation.
		if err := l2.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: 5}); err != nil {
			t.Fatalf("cut %d: append after truncate: %v", cut, err)
		}
		l2.Close()
		got2, l3, _ := collect(t, dir, Options{})
		if len(got2) != 5 || got2[4].Epoch != 5 {
			t.Fatalf("cut %d: post-truncate replay got %d records", cut, len(got2))
		}
		l3.Close()
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptionInOldSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation: each record is ~30 bytes.
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 1})
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the first segment.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{}, func(Record) error { return nil })
	if err == nil {
		t.Fatal("corruption in non-last segment did not fail Open")
	}
}

func TestRotationAndCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncOff, SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if err := l.Append(Record{Type: RecDelta, Name: "g", Gen: 1, Epoch: uint64(i + 1), Payload: bytes.Repeat([]byte{1}, 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", s.Segments)
	}
	err := l.Checkpoint(func(app func(Record) error) error {
		return app(Record{Type: RecGraphSnap, Name: "g", Gen: 1, Epoch: 50, Payload: []byte("snapshot")})
	})
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	s := l.Stats()
	if s.Segments != 1 {
		t.Fatalf("after compaction: %d segments live, want 1", s.Segments)
	}
	if s.SegmentsDropped == 0 || s.Checkpoints != 1 || s.LastCheckpointUnix == 0 {
		t.Fatalf("checkpoint stats not recorded: %+v", s)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files on disk after compaction, want 1", len(entries))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2, _ := collect(t, dir, Options{})
	defer l2.Close()
	if len(got) != 2 || got[0].Type != RecGraphSnap || got[1].Type != RecCheckpointEnd {
		t.Fatalf("post-compaction replay = %d records (first %v), want snap+end", len(got), got[0].Type)
	}
	if string(got[0].Payload) != "snapshot" || got[0].Epoch != 50 {
		t.Fatalf("snapshot record mangled: %+v", got[0])
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncAlways, SegmentBytes: 4096})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(Record{Type: RecDelta, Name: fmt.Sprintf("g%d", w), Gen: uint64(w), Epoch: uint64(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.Stats()
	if s.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", s.Appends, writers*each)
	}
	// Group commit must batch: far fewer fsyncs than appends would be
	// ideal, but at minimum it must not exceed appends.
	if s.Fsyncs > s.Appends {
		t.Fatalf("fsyncs %d > appends %d", s.Fsyncs, s.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, l2, _ := collect(t, dir, Options{})
	defer l2.Close()
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	// Per-writer epoch order must be preserved.
	next := map[string]uint64{}
	for _, r := range got {
		if r.Epoch != next[r.Name] {
			t.Fatalf("writer %s: epoch %d out of order (want %d)", r.Name, r.Epoch, next[r.Name])
		}
		next[r.Name]++
	}
}

func TestIntervalSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	_, l, _ := collect(t, dir, Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
	if err := l.Append(Record{Type: RecPut, Name: "g", Gen: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	_, l, _ := collect(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecPut, Name: "g"}); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// FuzzWALRecord fuzzes the frame and body decoders with arbitrary bytes
// (no panics, no over-allocation) and checks encode/decode round trips
// whenever the bytes happen to parse.
func FuzzWALRecord(f *testing.F) {
	f.Add(Record{Type: RecPut, Name: "g", Gen: 1, Payload: []byte("payload")}.appendFrame(nil))
	f.Add(Record{Type: RecDelta, Name: "a.b-c_d", Gen: 7, Epoch: 9, Payload: []byte{}}.appendFrame(nil))
	f.Add(Record{Type: RecCheckpointEnd}.appendFrame(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, n, err := parseFrame(data); err == nil {
			if n > len(data) {
				t.Fatalf("frame consumed %d of %d bytes", n, len(data))
			}
			re := rec.appendFrame(nil)
			rec2, _, err := parseFrame(re)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if rec2.Type != rec.Type || rec2.Name != rec.Name || rec2.Gen != rec.Gen ||
				rec2.Epoch != rec.Epoch || !bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("frame round trip mismatch: %+v vs %+v", rec, rec2)
			}
		}
		if rec, err := DecodeRecord(data); err == nil {
			body := rec.appendBody(nil)
			rec2, err := DecodeRecord(body)
			if err != nil {
				t.Fatalf("re-decode body: %v", err)
			}
			if rec2.Type != rec.Type || rec2.Name != rec.Name || rec2.Gen != rec.Gen ||
				rec2.Epoch != rec.Epoch || !bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("body round trip mismatch")
			}
		}
	})
}
