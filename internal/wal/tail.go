package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Pos is a durable position in the log: a segment index and a byte
// offset within that segment. Unlike the append sequence number (which
// is process-lifetime only), a Pos survives restarts and names a spot
// in the on-disk stream, so replication tails resume from one.
//
// Positions are only meaningful within the log instance that issued
// them; after compaction a Pos may fall before StartPos, in which case
// a tail restarts from the oldest live segment (the apply rules make
// re-delivery harmless: a checkpoint boundary is complete state).
type Pos struct {
	Seg uint64
	Off int64
}

// Before reports whether p is strictly earlier in the stream than q.
func (p Pos) Before(q Pos) bool {
	return p.Seg < q.Seg || (p.Seg == q.Seg && p.Off < q.Off)
}

// After reports whether p is strictly later in the stream than q.
func (p Pos) After(q Pos) bool { return q.Before(p) }

// IsZero reports whether p is the zero position ("from the beginning").
func (p Pos) IsZero() bool { return p == Pos{} }

// String renders p as "seg:off", the wire form ParsePos accepts.
func (p Pos) String() string {
	return strconv.FormatUint(p.Seg, 10) + ":" + strconv.FormatInt(p.Off, 10)
}

// ParsePos parses the "seg:off" form produced by Pos.String.
func ParsePos(s string) (Pos, error) {
	seg, off, ok := strings.Cut(s, ":")
	if !ok {
		return Pos{}, fmt.Errorf("wal: bad position %q (want seg:off)", s)
	}
	sv, err := strconv.ParseUint(seg, 10, 64)
	if err != nil {
		return Pos{}, fmt.Errorf("wal: bad position segment %q: %v", seg, err)
	}
	ov, err := strconv.ParseInt(off, 10, 64)
	if err != nil || ov < 0 {
		return Pos{}, fmt.Errorf("wal: bad position offset %q", off)
	}
	return Pos{Seg: sv, Off: ov}, nil
}

// StartPos returns the position of the oldest live byte in the log —
// where a tail with no resume position begins.
func (l *Log) StartPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.firstSeg}
}

// EndPos returns the position one past the newest appended record,
// including records still in the append buffer.
func (l *Log) EndPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.segIdx, Off: l.segSize}
}

// tailState snapshots the fields a Tailer steers by.
func (l *Log) tailState() (first, active uint64, activeSize int64, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeg, l.segIdx, l.segSize, l.closed
}

// Flush pushes buffered appended bytes through to the active segment
// file without forcing an fsync, so a concurrent Tailer can read them.
// Durability is unchanged: the sync policy still decides when the bytes
// are crash-safe.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.w.Flush()
}

// errShortFrame reports that a frame extends past the readable bytes of
// a segment file — the reader caught up with (or outran a buffered part
// of) the appender, not corruption.
var errShortFrame = errors.New("wal: frame extends past readable bytes")

// tailPoll is how often a caught-up Tailer re-checks for new appends.
const tailPoll = 15 * time.Millisecond

// Tailer reads the log's records in append order, starting at a Pos and
// blocking (in Next) for records that have not been appended yet. It
// reads the segment files directly, so it never contends with the
// append path beyond a brief flush when it catches up with the buffer.
// A Tailer is not safe for concurrent use; each consumer opens its own.
type Tailer struct {
	l    *Log
	pos  Pos
	f    *os.File
	fseg uint64
	hdr  [frameHeaderLen]byte
	body []byte
}

// Tail returns a Tailer positioned at pos (the zero Pos means the
// oldest live byte). A pos that compaction has since dropped restarts
// transparently from StartPos — safe, because the records a checkpoint
// replaced are re-delivered as snapshots that apply rules skip or
// install idempotently.
func (l *Log) Tail(pos Pos) *Tailer {
	if pos.IsZero() {
		pos = l.StartPos()
	}
	return &Tailer{l: l, pos: pos}
}

// Pos returns the position one past the last record Next returned —
// the resume point for a successor Tailer.
func (t *Tailer) Pos() Pos { return t.pos }

// Close releases the Tailer's file handle. The log itself is untouched.
func (t *Tailer) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// Next returns the next record in append order, blocking until one is
// appended, ctx is done, or the log closes (ErrClosed). The returned
// record's Name and Payload alias an internal buffer that the next call
// reuses — consume or copy them before calling Next again.
func (t *Tailer) Next(ctx context.Context) (Record, error) {
	for {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		first, active, activeSize, closed := t.l.tailState()
		if t.pos.Seg < first {
			// Compaction dropped our segment: restart from the oldest
			// live one. The checkpoint at its head is complete state.
			t.Close()
			t.pos = Pos{Seg: first}
			continue
		}
		if t.f == nil || t.fseg != t.pos.Seg {
			f, err := os.Open(filepath.Join(t.l.dir, segName(t.pos.Seg)))
			if err != nil {
				if os.IsNotExist(err) {
					// Raced a compaction between tailState and Open;
					// the next tailState pass restarts us.
					if closed {
						return Record{}, ErrClosed
					}
					continue
				}
				return Record{}, err
			}
			t.Close()
			t.f, t.fseg = f, t.pos.Seg
		}
		rec, n, err := t.readFrame()
		if err == nil {
			t.pos.Off += int64(n)
			return rec, nil
		}
		switch {
		case t.pos.Seg < active:
			// Sealed segment: every byte is final. A short read at its
			// end means we consumed it — move to the next segment.
			st, serr := t.f.Stat()
			if serr != nil {
				return Record{}, serr
			}
			if errors.Is(err, errShortFrame) && t.pos.Off >= st.Size() {
				t.pos = Pos{Seg: t.pos.Seg + 1}
				continue
			}
			return Record{}, fmt.Errorf("wal: tail %s at offset %d: %w", segName(t.pos.Seg), t.pos.Off, err)
		case t.pos.Seg == active:
			if !errors.Is(err, errShortFrame) {
				return Record{}, fmt.Errorf("wal: tail %s at offset %d: %w", segName(t.pos.Seg), t.pos.Off, err)
			}
			if t.pos.Off < activeSize {
				// The bytes exist but sit in the append buffer; push
				// them to the file (no fsync) and retry. Appends only
				// advance activeSize by whole frames, so the retry
				// finds a complete frame.
				if ferr := t.l.Flush(); ferr != nil {
					if errors.Is(ferr, ErrClosed) {
						return Record{}, ErrClosed
					}
					return Record{}, ferr
				}
				continue
			}
			// Caught up: wait for an append, cancellation or close.
			if closed {
				return Record{}, ErrClosed
			}
			select {
			case <-ctx.Done():
				return Record{}, ctx.Err()
			case <-time.After(tailPoll):
			}
		default:
			return Record{}, fmt.Errorf("wal: tail position %v is beyond the active segment %d", t.pos, active)
		}
	}
}

// readFrame reads one frame at the current position. errShortFrame
// means the file does not (yet) hold the whole frame; other errors are
// corruption or I/O failures.
func (t *Tailer) readFrame() (Record, int, error) {
	if _, err := t.f.ReadAt(t.hdr[:], t.pos.Off); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, 0, errShortFrame
		}
		return Record{}, 0, err
	}
	n := binary.LittleEndian.Uint32(t.hdr[:4])
	if n == 0 || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("wal: frame length %d out of range", n)
	}
	if cap(t.body) < int(n) {
		t.body = make([]byte, n)
	}
	t.body = t.body[:n]
	if _, err := t.f.ReadAt(t.body, t.pos.Off+frameHeaderLen); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, 0, errShortFrame
		}
		return Record{}, 0, err
	}
	if got, want := crc32.Checksum(t.body, crcTable), binary.LittleEndian.Uint32(t.hdr[4:]); got != want {
		return Record{}, 0, fmt.Errorf("wal: CRC mismatch (%08x != %08x)", got, want)
	}
	rec, err := DecodeRecord(t.body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderLen + int(n), nil
}
