package exp

import (
	"fmt"
	"text/tabwriter"
	"time"

	"repro/internal/decomp"
	"repro/internal/workload"
)

// Table4 reproduces "Efficiency for dense bipartite graphs": average
// running time of extBBCL and denseMBB over random dense bipartite
// graphs, for each size and density. Timeouts print as "-".
func Table4(cfg Config) error {
	cfg.fill()
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(cfg.W, "Table 4: efficiency for dense bipartite graphs (avg over %d instances, budget %v)\n",
		cfg.DenseInstances, cfg.Budget)
	fmt.Fprint(tw, "density")
	for _, n := range cfg.DenseSizes {
		fmt.Fprintf(tw, "\t%dx%d extBBCl\t%dx%d denseMBB", n, n, n, n)
	}
	fmt.Fprintln(tw)
	for _, d := range cfg.DenseDensities {
		fmt.Fprintf(tw, "%.0f%%", d*100)
		for _, n := range cfg.DenseSizes {
			for _, solver := range []string{"extBBCL", "denseMBB"} {
				secs, timedOut, err := avgDense(cfg, n, d, solver)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "\t%s", cell(secs, timedOut))
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// avgDense averages the named solver's run time over the configured
// instances; a single timeout marks the cell as timed out (like the
// paper's "-").
func avgDense(cfg Config, n int, density float64, solver string) (float64, bool, error) {
	label := fmt.Sprintf("n=%d,density=%.2f", n, density)
	total := 0.0
	for i := 0; i < cfg.DenseInstances; i++ {
		g := workload.Dense(n, n, density, cfg.Seed+int64(i)*131)
		secs, _, timedOut, err := cfg.runSolver("table4", label, solver, g, nil)
		if err != nil {
			return 0, false, err
		}
		if timedOut {
			return 0, true, nil
		}
		total += secs
	}
	return total / float64(cfg.DenseInstances), false, nil
}

// Table5 reproduces "Efficiency for sparse bipartite graphs": per
// dataset, the measured optimum and the running times of adp1..adp4,
// extBBCL and hbvMBB (with the step at which hbvMBB terminated).
func Table5(cfg Config) error {
	cfg.fill()
	datasets := cfg.selectDatasets(workload.Registry)
	fmt.Fprintf(cfg.W, "Table 5: efficiency for sparse bipartite graphs (scaled to ≤%d vertices, budget %v)\n",
		cfg.MaxVerts, cfg.Budget)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\t|L|\t|R|\tdens(e-4)\topt\tadp1\tadp2\tadp3\tadp4\textBBCl\thbvMBB")
	for _, d := range datasets {
		g := cfg.generate(d)
		row := fmt.Sprintf("%s\t%d\t%d\t%.3f", d.Name, g.NL(), g.NR(), g.Density()*1e4)

		opt := -1
		hbvSecs, hbvRes, hbvTO, err := cfg.runSolver("table5", d.Name, "hbvMBB", g, nil)
		if err != nil {
			return err
		}
		if !hbvTO {
			opt = hbvRes.Biclique.Size()
		}

		var cells []string
		for _, solver := range []string{"adp1", "adp2", "adp3", "adp4", "extBBCL"} {
			secs, res, timedOut, err := cfg.runSolver("table5", d.Name, solver, g, nil)
			if err != nil {
				return err
			}
			if !timedOut && opt >= 0 && res.Biclique.Size() != opt {
				// Exactness cross-check between independent solvers.
				return fmt.Errorf("exp: %s: %s found %d, hbvMBB found %d",
					d.Name, solver, res.Biclique.Size(), opt)
			}
			cells = append(cells, cell(secs, timedOut))
		}
		hbvCell := cell(hbvSecs, hbvTO)
		if !hbvTO {
			hbvCell += ", " + hbvRes.Stats.Step.String()
		}
		cells = append(cells, hbvCell)

		optStr := "-"
		if opt >= 0 {
			optStr = fmt.Sprint(opt)
		}
		fmt.Fprintf(tw, "%s\t%s", row, optStr)
		for _, c := range cells {
			fmt.Fprintf(tw, "\t%s", c)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Table6 reproduces "Efficiency of our techniques on tough datasets": the
// decomposition overheads (hMBB, degOrder, bdegOrder) and the bd1..bd5
// ablation variants against full hbvMBB.
func Table6(cfg Config) error {
	cfg.fill()
	datasets := cfg.selectDatasets(workload.Tough())
	fmt.Fprintf(cfg.W, "Table 6: techniques on tough datasets (scaled to ≤%d vertices, budget %v)\n",
		cfg.MaxVerts, cfg.Budget)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\thMBB\tdegOrder\tbdegOrder\tbd1\tbd2\tbd3\tbd4\tbd5\thbvMBB")
	for _, d := range datasets {
		g := cfg.generate(d)
		fmt.Fprintf(tw, "%s", d.Name)

		// Heuristic step alone. TimedOut here means the budget ran out
		// mid-heuristic (not merely that Lemma 5 failed to fire), which
		// deserves the paper's "-" like every other column.
		secs, _, timedOut, err := cfg.runSolver("table6", d.Name, "heur", g, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "\t%s", cell(secs, timedOut))

		// Decomposition overheads.
		start := time.Now()
		decomp.Cores(g)
		fmt.Fprintf(tw, "\t%s", cell(time.Since(start).Seconds(), false))
		start = time.Now()
		decomp.BicoresFast(g)
		fmt.Fprintf(tw, "\t%s", cell(time.Since(start).Seconds(), false))

		for _, solver := range []string{"bd1", "bd2", "bd3", "bd4", "bd5", "hbvMBB"} {
			secs, _, timedOut, err := cfg.runSolver("table6", d.Name, solver, g, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", cell(secs, timedOut))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
