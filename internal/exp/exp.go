// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) on the synthetic workloads
// of internal/workload and prints them in the paper's layout. Absolute
// numbers differ from the paper (different hardware, language and data
// stand-ins); the harness exists to reproduce the qualitative shape: who
// wins, by what order of magnitude, and where the crossovers fall.
package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/sparse"
	"repro/internal/workload"
)

// Config controls workload scale and per-run budgets. Zero values select
// the defaults of DefaultConfig.
type Config struct {
	W io.Writer

	// Budget is the per-algorithm-run timeout (the paper used 4 hours;
	// the default here is far smaller so the suite completes quickly).
	Budget time.Duration

	// MaxVerts caps the generated vertex count of each sparse dataset
	// stand-in (the documented scale-down).
	MaxVerts int

	// DenseSizes and DenseDensities define the Table 4 sweep.
	DenseSizes     []int
	DenseDensities []float64
	// DenseInstances is the number of random instances averaged per cell
	// (the paper used 100).
	DenseInstances int

	// Datasets restricts Tables 5/6 and the figures to the named
	// datasets; nil means all (Table 5) / the tough subset (Table 6 and
	// figures).
	Datasets []string

	Seed int64
}

// DefaultConfig returns a configuration sized to finish in a few minutes.
func DefaultConfig(w io.Writer) Config {
	return Config{
		W:              w,
		Budget:         20 * time.Second,
		MaxVerts:       30000,
		DenseSizes:     []int{32, 64, 128},
		DenseDensities: []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95},
		DenseInstances: 3,
		Seed:           1,
	}
}

func (c *Config) fill() {
	def := DefaultConfig(c.W)
	if c.Budget == 0 {
		c.Budget = def.Budget
	}
	if c.MaxVerts == 0 {
		c.MaxVerts = def.MaxVerts
	}
	if len(c.DenseSizes) == 0 {
		c.DenseSizes = def.DenseSizes
	}
	if len(c.DenseDensities) == 0 {
		c.DenseDensities = def.DenseDensities
	}
	if c.DenseInstances == 0 {
		c.DenseInstances = def.DenseInstances
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
}

// selectDatasets resolves the dataset list against a default pool.
func (c *Config) selectDatasets(pool []workload.Dataset) []workload.Dataset {
	if len(c.Datasets) == 0 {
		return pool
	}
	var out []workload.Dataset
	for _, name := range c.Datasets {
		if d, ok := workload.ByName(name); ok {
			out = append(out, d)
		}
	}
	return out
}

// timed runs fn under a fresh budget and returns the elapsed seconds, the
// result, and whether the budget expired.
func (c *Config) timed(fn func(b *core.Budget) core.Result) (float64, core.Result, bool) {
	b := core.NewTimeBudget(c.Budget)
	start := time.Now()
	res := fn(b)
	return time.Since(start).Seconds(), res, res.Stats.TimedOut
}

// cell formats a timing cell, printing "-" on timeout like the paper.
func cell(secs float64, timedOut bool) string {
	if timedOut {
		return "-"
	}
	switch {
	case secs < 0.01:
		return fmt.Sprintf("%.4f", secs)
	case secs < 1:
		return fmt.Sprintf("%.3f", secs)
	default:
		return fmt.Sprintf("%.2f", secs)
	}
}

// variantOptions returns the sparse.Options for each Table 3 variant.
func variantOptions(name string) sparse.Options {
	switch name {
	case "hbvMBB":
		return sparse.DefaultOptions()
	case "bd1":
		return sparse.Options{Order: decomp.OrderBidegeneracy, SkipHeuristic: true}
	case "bd2":
		return sparse.Options{SkipCoreOpts: true}
	case "bd3":
		return sparse.Options{Order: decomp.OrderBidegeneracy, UseBasicBB: true}
	case "bd4":
		return sparse.Options{Order: decomp.OrderDegree}
	case "bd5":
		return sparse.Options{Order: decomp.OrderDegeneracy}
	}
	panic("exp: unknown variant " + name)
}

// generate builds the seeded stand-in for dataset d.
func (c *Config) generate(d workload.Dataset) *bigraph.Graph {
	return d.Generate(c.MaxVerts, c.Seed)
}
