// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) on the synthetic workloads
// of internal/workload and prints them in the paper's layout. Absolute
// numbers differ from the paper (different hardware, language and data
// stand-ins); the harness exists to reproduce the qualitative shape: who
// wins, by what order of magnitude, and where the crossovers fall.
//
// Solvers are resolved through the mbb registry (mbb.Lookup), so the
// harness measures exactly what library users run; each run gets a fresh
// core.Exec carrying the per-run budget. An optional Recorder captures
// every timed run as a structured Record for JSON export
// (cmd/mbbbench -json).
package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/mbb"
)

// Config controls workload scale and per-run budgets. Zero values select
// the defaults of DefaultConfig.
type Config struct {
	W io.Writer

	// Budget is the per-algorithm-run timeout (the paper used 4 hours;
	// the default here is far smaller so the suite completes quickly).
	Budget time.Duration

	// MaxVerts caps the generated vertex count of each sparse dataset
	// stand-in (the documented scale-down).
	MaxVerts int

	// DenseSizes and DenseDensities define the Table 4 sweep.
	DenseSizes     []int
	DenseDensities []float64
	// DenseInstances is the number of random instances averaged per cell
	// (the paper used 100).
	DenseInstances int

	// Datasets restricts Tables 5/6 and the figures to the named
	// datasets; nil means all (Table 5) / the tough subset (Table 6 and
	// figures).
	Datasets []string

	// Workers is passed to the sparse framework's verification pipeline
	// and the planner's component solves (0 keeps both sequential, the
	// paper's schedule).
	Workers int

	// Reduce selects the planner mode passed to every run (the default,
	// mbb.ReduceAuto, keeps explicitly named solvers planner-free so the
	// paper's numbers are measured unchanged; mbb.ReduceOn measures every
	// solver behind the reduce-and-conquer planner).
	Reduce mbb.Reduce

	// Recorder, when non-nil, collects a Record per timed solver run.
	Recorder *Recorder

	Seed int64

	// ServeBench settings (cmd/mbbbench -exp servebench): ServeURL is an
	// already-running mbbserved base URL — empty starts an in-process
	// daemon — and Requests warm queries are replayed by Clients
	// concurrent clients after one cold query.
	ServeURL string
	Requests int
	Clients  int

	// MuteMix selects the mutebench mutation stream: "cycle" (default —
	// rounds alternate deletion-only, insertion-only, mixed), "insert"
	// (insertion-only, the plan-repair hot path), or "mixed" (every
	// round both inserts and deletes).
	MuteMix string

	// WALSync, when non-empty, makes the in-process daemon durable: it
	// opens a write-ahead log on a temporary data directory with this
	// sync policy ("always", "interval" or "off"). Empty keeps the
	// daemon volatile (no WAL), the baseline every WAL-on run is
	// compared against. Ignored when ServeURL points at an external
	// daemon.
	WALSync string
}

// DefaultConfig returns a configuration sized to finish in a few minutes.
func DefaultConfig(w io.Writer) Config {
	return Config{
		W:              w,
		Budget:         20 * time.Second,
		MaxVerts:       30000,
		DenseSizes:     []int{32, 64, 128},
		DenseDensities: []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95},
		DenseInstances: 3,
		Seed:           1,
	}
}

func (c *Config) fill() {
	def := DefaultConfig(c.W)
	if c.Budget == 0 {
		c.Budget = def.Budget
	}
	if c.MaxVerts == 0 {
		c.MaxVerts = def.MaxVerts
	}
	if len(c.DenseSizes) == 0 {
		c.DenseSizes = def.DenseSizes
	}
	if len(c.DenseDensities) == 0 {
		c.DenseDensities = def.DenseDensities
	}
	if c.DenseInstances == 0 {
		c.DenseInstances = def.DenseInstances
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
}

// Record is one measured solver run, the unit of the -json export.
type Record struct {
	Exp      string  `json:"exp"`               // "table4", "fig5", ...
	Dataset  string  `json:"dataset"`           // dataset name or dense-cell label
	Solver   string  `json:"solver"`            // registry solver name
	Seconds  float64 `json:"seconds"`           // wall-clock run time
	TimedOut bool    `json:"timed_out"`         // budget expired (the paper's "-")
	Size     int     `json:"size"`              // balanced biclique size found
	Nodes    int64   `json:"nodes,omitempty"`   // search nodes spent
	Step     string  `json:"step,omitempty"`    // S1/S2/S3 for the sparse framework
	Workers  int     `json:"workers,omitempty"` // verification pipeline width

	// Allocation profile of the run (runtime.ReadMemStats deltas around
	// the solve, covering all of its goroutines). Heap telemetry for the
	// bench trajectory, not a gated number: counts are deterministic only
	// up to scheduling, so the gate stays on Nodes.
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"` // heap allocations during the run
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`  // bytes allocated during the run

	// Planner fields, nonzero only when the reduce-and-conquer planner ran.
	Reduce     string `json:"reduce,omitempty"`     // planner mode ("on"; omitted when off)
	Tau        int    `json:"tau,omitempty"`        // heuristic seed lower bound
	Peeled     int64  `json:"peeled,omitempty"`     // vertices removed by reduction
	Components int    `json:"components,omitempty"` // components handed to the solvers
}

// Recorder collects Records across experiments; safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	records []Record
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Records returns a copy of everything recorded so far.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.records...)
}

func (r *Recorder) add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.records = append(r.records, rec)
	r.mu.Unlock()
}

// selectDatasets resolves the dataset list against a default pool.
func (c *Config) selectDatasets(pool []workload.Dataset) []workload.Dataset {
	if len(c.Datasets) == 0 {
		return pool
	}
	var out []workload.Dataset
	for _, name := range c.Datasets {
		if d, ok := workload.ByName(name); ok {
			out = append(out, d)
		}
	}
	return out
}

// runSolver resolves name in the mbb registry, runs it through
// mbb.SolveContext — so the run takes exactly the path library users take,
// including the reduce-and-conquer planner when Config.Reduce enables
// it — under the per-run budget, records the run, and returns the elapsed
// seconds, result and timeout flag.
func (c *Config) runSolver(expName, dataset, name string, g *bigraph.Graph, opt *mbb.Options) (float64, core.Result, bool, error) {
	spec, ok := mbb.Lookup(name)
	if !ok {
		return 0, core.Result{}, false, fmt.Errorf("exp: unknown solver %q", name)
	}
	if opt == nil {
		opt = &mbb.Options{}
	}
	o := *opt
	if o.Workers == 0 {
		o.Workers = c.Workers
	}
	o.Solver = spec.Name
	o.Timeout = c.Budget
	if o.Reduce == mbb.ReduceAuto {
		o.Reduce = c.Reduce
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sres, err := mbb.SolveContext(context.Background(), g, &o)
	if err != nil {
		return 0, core.Result{}, false, err
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	res := core.Result{Biclique: sres.Biclique, Stats: sres.Stats}
	timedOut := res.Stats.TimedOut
	rec := Record{
		Exp: expName, Dataset: dataset, Solver: spec.Name,
		Seconds: secs, TimedOut: timedOut, Size: res.Biclique.Size(),
		Nodes: res.Stats.Nodes, Step: stepLabel(res.Stats.Step), Workers: o.Workers,
		Tau: res.Stats.SeedTau, Peeled: res.Stats.Peeled, Components: res.Stats.Components,
		AllocsPerOp: int64(m1.Mallocs - m0.Mallocs), BytesPerOp: int64(m1.TotalAlloc - m0.TotalAlloc),
	}
	if sres.Reduced {
		rec.Reduce = "on"
	}
	c.Recorder.add(rec)
	return secs, res, timedOut, nil
}

func stepLabel(s core.Step) string {
	if s == core.StepNone {
		return ""
	}
	return s.String()
}

// cell formats a timing cell, printing "-" on timeout like the paper.
func cell(secs float64, timedOut bool) string {
	if timedOut {
		return "-"
	}
	switch {
	case secs < 0.01:
		return fmt.Sprintf("%.4f", secs)
	case secs < 1:
		return fmt.Sprintf("%.3f", secs)
	default:
		return fmt.Sprintf("%.2f", secs)
	}
}

// generate builds the seeded stand-in for dataset d.
func (c *Config) generate(d workload.Dataset) *bigraph.Graph {
	return d.Generate(c.MaxVerts, c.Seed)
}
