package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bigraph"
	"repro/internal/workload"
)

// trajectoryPins is the pinned CI subset: small seeded instances that
// every run solves to completion, so their search-node counts are
// deterministic for a given code version and comparable across commits.
// The dense cells carry most of the gate's signal (tens of thousands to
// millions of nodes); the sparse stand-ins mostly watch that the planner
// keeps crushing them (small counts, but a pruning regression would blow
// them up well past 2x). Adding a pin is cheap; renaming one orphans its
// baseline history.
var trajectoryPins = []struct {
	dataset string // Record.Dataset label
	solver  string
	gen     func(seed int64) *bigraph.Graph
}{
	{"dense-48x48-0.90", "denseMBB", func(s int64) *bigraph.Graph { return workload.Dense(48, 48, 0.90, s) }},
	{"dense-64x64-0.90", "denseMBB", func(s int64) *bigraph.Graph { return workload.Dense(64, 64, 0.90, s) }},
	{"dense-32x32-0.80", "extBBCL", func(s int64) *bigraph.Graph { return workload.Dense(32, 32, 0.80, s) }},
	{"github", "auto", standIn("github", 15000)},
	{"pics-ut", "hbvMBB", standIn("pics-ut", 8000)},
}

// standIn generates the seeded stand-in for a named KONECT dataset.
func standIn(name string, maxVerts int) func(int64) *bigraph.Graph {
	return func(seed int64) *bigraph.Graph {
		d, ok := workload.ByName(name)
		if !ok {
			return nil
		}
		return d.Generate(maxVerts, seed)
	}
}

// Trajectory is the CI benchmark trajectory (cmd/mbbbench -exp
// trajectory): a pinned, seeded subset of the paper workloads solved
// sequentially — whose search-node counts are the machine-independent
// regression currency — followed by a small servebench and mutebench
// pass for the serving-layer latency records. With -json the combined
// records become BENCH_<pr>.json; with -baseline the node counts gate
// against a previous trajectory (CompareRecords).
func Trajectory(c Config) error {
	c.fill()
	if c.Recorder == nil {
		c.Recorder = NewRecorder()
	}

	fmt.Fprintf(c.W, "trajectory: %d pinned solves (budget %s, sequential)\n", len(trajectoryPins), c.Budget)
	seq := c
	seq.Workers = 0 // deterministic node counts
	for _, pin := range trajectoryPins {
		g := pin.gen(c.Seed)
		if g == nil {
			return fmt.Errorf("trajectory: unknown dataset %q", pin.dataset)
		}
		secs, res, timedOut, err := seq.runSolver("trajectory", pin.dataset, pin.solver, g, nil)
		if err != nil {
			return fmt.Errorf("trajectory %s/%s: %w", pin.dataset, pin.solver, err)
		}
		mark := ""
		if timedOut {
			// A timeout makes the node count budget-dependent, not
			// code-dependent; the record stays (TimedOut flags it) but the
			// gate skips it.
			mark = " (timed out — excluded from the gate)"
		}
		fmt.Fprintf(c.W, "  %-18s %-9s %8.3fs %12d nodes  size %d%s\n",
			pin.dataset, pin.solver, secs, res.Stats.Nodes, res.Biclique.Size(), mark)
	}

	sb := c
	sb.Requests, sb.Clients = 12, 3
	if err := ServeBench(sb); err != nil {
		return fmt.Errorf("trajectory servebench: %w", err)
	}
	mb := c
	mb.Requests, mb.Clients = 9, 3
	if err := MuteBench(mb); err != nil {
		return fmt.Errorf("trajectory mutebench: %w", err)
	}
	// The insert-heavy pass records the bounded-local-repair path —
	// mutate-repaired-p50-insert et al. in BENCH_<pr>.json — so the
	// trajectory captures repair latency alongside the default stream.
	mbi := c
	mbi.Requests, mbi.Clients, mbi.MuteMix = 9, 3, "insert"
	if err := MuteBench(mbi); err != nil {
		return fmt.Errorf("trajectory mutebench insert mix: %w", err)
	}
	// The WAL-on pass re-runs the default stream against a durable
	// daemon (-wal-sync=interval on a throwaway data dir), recording
	// mutate-*-p50-wal alongside the volatile mutate-*-p50 above so the
	// write-ahead-log overhead on the mutation path is visible in every
	// BENCH_<pr>.json (target: under 1.15x of the volatile p50).
	mbw := c
	mbw.Requests, mbw.Clients, mbw.WALSync = 9, 3, "interval"
	if err := MuteBench(mbw); err != nil {
		return fmt.Errorf("trajectory mutebench wal: %w", err)
	}
	return nil
}

// CompareRecords is the CI regression gate: cur's pinned-trajectory node
// counts must not exceed factor× the matching record in prev. Only
// exp "trajectory" records that completed within budget enter the
// comparison — serving-layer latencies are machine-dependent and node
// counts from concurrent phases race on pruning order, so neither gates.
// Matched, passing entries are logged to w; any regression is collected
// into the returned error.
func CompareRecords(prev, cur []Record, factor float64, w io.Writer) error {
	key := func(r Record) string { return r.Dataset + "/" + r.Solver }
	gated := func(r Record) bool { return r.Exp == "trajectory" && !r.TimedOut && r.Nodes > 0 }
	base := make(map[string]int64)
	for _, r := range prev {
		if gated(r) {
			base[key(r)] = r.Nodes
		}
	}
	var bad []string
	matched := 0
	for _, r := range cur {
		if !gated(r) {
			continue
		}
		b, ok := base[key(r)]
		if !ok {
			fmt.Fprintf(w, "bench gate: %-28s %12d nodes (new pin, no baseline)\n", key(r), r.Nodes)
			continue
		}
		matched++
		ratio := float64(r.Nodes) / float64(b)
		if float64(r.Nodes) > factor*float64(b) {
			bad = append(bad, fmt.Sprintf("%s: %d nodes vs %d baseline (%.2fx > %.1fx)",
				key(r), r.Nodes, b, ratio, factor))
			continue
		}
		fmt.Fprintf(w, "bench gate: %-28s %12d nodes vs %d baseline (%.2fx) ok\n", key(r), r.Nodes, b, ratio)
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression (node counts):\n  %s", strings.Join(bad, "\n  "))
	}
	if matched == 0 && len(base) > 0 {
		return fmt.Errorf("bench gate: baseline has %d pins but the current run matched none", len(base))
	}
	return nil
}
