package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/decomp"
	"repro/internal/workload"
	"repro/mbb"
)

// Fig4 reproduces "Effectiveness of heuristics": per tough dataset, the
// gap between the heuristic results (heuGlobal after step 1, heuLocal
// after step 2) and the optimum balanced biclique.
func Fig4(cfg Config) error {
	cfg.fill()
	datasets := cfg.selectDatasets(workload.Tough())
	fmt.Fprintf(cfg.W, "Figure 4: heuristic gap to the optimum (per-side vertices)\n")
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\toptimum\theuGlobal gap\theuLocal gap")
	for _, d := range datasets {
		g := cfg.generate(d)
		_, res, timedOut, err := cfg.runSolver("fig4", d.Name, "hbvMBB", g, nil)
		if err != nil {
			return err
		}
		if timedOut {
			fmt.Fprintf(tw, "D%d %s\t-\t-\t-\n", d.DIndex, d.Name)
			continue
		}
		opt := res.Biclique.Size()
		fmt.Fprintf(tw, "D%d %s\t%d\t%d\t%d\n", d.DIndex, d.Name, opt,
			opt-res.Stats.HeurGlobalSize, opt-res.Stats.HeurLocalSize)
	}
	return tw.Flush()
}

// Fig5 reproduces "Evaluation on search depth": the average maximum
// recursion depth of the exhaustive searches, normalised by δ̈(G), for
// the three total search orders.
func Fig5(cfg Config) error {
	cfg.fill()
	datasets := cfg.selectDatasets(workload.Tough())
	fmt.Fprintf(cfg.W, "Figure 5: average search depth over bidegeneracy (lower is better)\n")
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tδ̈\tmaxDeg\tdegeneracy\tbidegeneracy")
	for _, d := range datasets {
		g := cfg.generate(d)
		bideg := decomp.BicoresFast(g).Bidegeneracy()
		fmt.Fprintf(tw, "D%d %s\t%d", d.DIndex, d.Name, bideg)
		for _, kind := range []decomp.OrderKind{decomp.OrderDegree, decomp.OrderDegeneracy, decomp.OrderBidegeneracy} {
			_, res, timedOut, err := cfg.runSolver("fig5", d.Name, "hbvMBB", g, &mbb.Options{Order: kind})
			if err != nil {
				return err
			}
			if timedOut || bideg == 0 {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.3f", res.Stats.AvgSearchDepth()/float64(bideg))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig6 reproduces "Evaluation on density of vertex centered subgraphs":
// the average edge density of the generated vertex-centred subgraphs for
// the three total search orders.
func Fig6(cfg Config) error {
	cfg.fill()
	datasets := cfg.selectDatasets(workload.Tough())
	fmt.Fprintf(cfg.W, "Figure 6: average density of vertex-centred subgraphs (higher is better)\n")
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmaxDeg\tdegeneracy\tbidegeneracy")
	for _, d := range datasets {
		g := cfg.generate(d)
		fmt.Fprintf(tw, "D%d %s", d.DIndex, d.Name)
		for _, kind := range []decomp.OrderKind{decomp.OrderDegree, decomp.OrderDegeneracy, decomp.OrderBidegeneracy} {
			_, res, timedOut, err := cfg.runSolver("fig6", d.Name, "hbvMBB", g, &mbb.Options{Order: kind})
			if err != nil {
				return err
			}
			if timedOut {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.4f", res.Stats.AvgSubgraphDensity())
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
