package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallConfig(buf *bytes.Buffer) Config {
	return Config{
		W:              buf,
		Budget:         5 * time.Second,
		MaxVerts:       2500,
		DenseSizes:     []int{16, 32},
		DenseDensities: []float64{0.7, 0.9},
		DenseInstances: 2,
		Seed:           1,
	}
}

func TestTable4Small(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig(&buf)
	if err := Table4(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "denseMBB") || !strings.Contains(out, "70%") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 4 {
		t.Fatalf("too few rows:\n%s", out)
	}
}

func TestTable5Small(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig(&buf)
	cfg.Datasets = []string{"unicodelang", "moreno-crime-crime", "escorts"}
	if err := Table5(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"unicodelang", "escorts", "hbvMBB", "adp1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable6Small(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig(&buf)
	cfg.Datasets = []string{"github"}
	if err := Table6(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"github", "bdegOrder", "bd5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestFiguresSmall(t *testing.T) {
	for name, fn := range map[string]func(Config) error{
		"fig4": Fig4, "fig5": Fig5, "fig6": Fig6,
	} {
		var buf bytes.Buffer
		cfg := smallConfig(&buf)
		cfg.Datasets = []string{"github", "jester"}
		if err := fn(cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "github") {
			t.Fatalf("%s: missing dataset row:\n%s", name, buf.String())
		}
	}
}

func TestRunSolverUnknown(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig(&buf)
	cfg.fill()
	if _, _, _, err := cfg.runSolver("test", "d", "bd9", nil, nil); err == nil {
		t.Fatal("expected error for unknown solver")
	}
}

func TestRecorderCapturesRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallConfig(&buf)
	cfg.Recorder = NewRecorder()
	cfg.Datasets = []string{"unicodelang"}
	if err := Table5(cfg); err != nil {
		t.Fatal(err)
	}
	recs := cfg.Recorder.Records()
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	solvers := map[string]bool{}
	for _, r := range recs {
		if r.Exp != "table5" || r.Dataset != "unicodelang" {
			t.Fatalf("bad record %+v", r)
		}
		solvers[r.Solver] = true
	}
	for _, want := range []string{"hbvMBB", "adp1", "extBBCL"} {
		if !solvers[want] {
			t.Fatalf("missing solver %q in records %v", want, solvers)
		}
	}
}

func TestCellFormatting(t *testing.T) {
	if got := cell(0.001, false); got != "0.0010" {
		t.Errorf("cell(0.001) = %q", got)
	}
	if got := cell(0.5, false); got != "0.500" {
		t.Errorf("cell(0.5) = %q", got)
	}
	if got := cell(12.345, false); got != "12.35" {
		t.Errorf("cell(12.345) = %q", got)
	}
	if got := cell(99, true); got != "-" {
		t.Errorf("timeout cell = %q", got)
	}
}

func TestSelectDatasets(t *testing.T) {
	cfg := Config{Datasets: []string{"github", "nonexistent", "jester"}}
	got := cfg.selectDatasets(nil)
	if len(got) != 2 || got[0].Name != "github" || got[1].Name != "jester" {
		t.Fatalf("selectDatasets = %v", got)
	}
}
