package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/bigraph"
	"repro/internal/server"
	"repro/mbb"
)

// MuteBench measures the mutable-graph serving path: it replays an
// interleaved mutate/solve stream against a running mbbserved daemon
// (Config.ServeURL, or an in-process one) — each round publishes one
// edge batch through POST /graphs/{name}/edges and then fans a burst of
// solves over Config.Clients concurrent clients. Config.MuteMix picks
// the stream: "cycle" (default) alternates deletion-only, insertion-only
// and mixed rounds; "insert" is insertion-only (the bounded-local-repair
// hot path); "mixed" puts insertions and deletions in every batch.
//
// Every solve is checked against the versioning contract: the result
// must be exact and must report exactly the epoch the round published
// (no torn batches, no stale epochs once the mutation returned). The
// printed table reports solve latency percentiles plus per-outcome
// mutation latencies — reused (deletion-only carry), repaired (local
// insertion repair) and rebuilding (plan invalidated) — which is the
// repair-vs-rebuild comparison the maintenance path exists to win.
func MuteBench(c Config) error {
	c.fill()
	rounds := c.Requests
	if rounds <= 0 {
		rounds = 24
	}
	clients := c.Clients
	if clients <= 0 {
		clients = 4
	}
	mix := c.MuteMix
	if mix == "" {
		mix = "cycle"
	}
	if mix != "cycle" && mix != "insert" && mix != "mixed" {
		return fmt.Errorf("mutebench: unknown mix %q (want cycle, insert or mixed)", mix)
	}
	// Distinct record labels per mix so trajectory baselines keyed on
	// the default stream never collide with the insert-heavy pass; a
	// further -wal suffix separates the durable-daemon pass, keeping the
	// WAL-on vs WAL-off mutation-overhead comparison explicit in the
	// JSON export.
	suffix := ""
	if mix != "cycle" {
		suffix = "-" + mix
	}
	if c.WALSync != "" {
		suffix += "-wal"
	}
	const solvesPerRound = 3
	const batch = 4

	url, stop, err := sbDaemon(c, "mutebench")
	if err != nil {
		return err
	}
	defer stop()

	// Small enough that every solve answers interactively even on the
	// rebuild rounds, big enough that the plan matters.
	n := c.MaxVerts / 4
	if n > 800 {
		n = 800
	}
	if n < 40 {
		n = 40
	}
	g := mbb.GeneratePowerLaw(n, n, 4*n, c.Seed)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		return err
	}
	if err := sbPut(url+"/graphs/mutebench", buf.Bytes()); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	mixLabel := mix
	if c.WALSync != "" {
		mixLabel += " wal-sync=" + c.WALSync
	}
	fmt.Fprintf(c.W, "mutebench[%s]: graph %dx%d, %d edges; %d rounds x (1 mutation + %d solves) over %d clients\n",
		mixLabel, g.NL(), g.NR(), g.NumEdges(), rounds, solvesPerRound, clients)

	// Client-side mirror of the edge set, for generating batches that are
	// valid and effective by construction.
	edgeSet := make(map[[2]int]bool, g.NumEdges())
	edgeList := g.Edges()
	for _, e := range edgeList {
		edgeSet[e] = true
	}
	rng := rand.New(rand.NewSource(c.Seed))

	body := fmt.Sprintf(`{"timeout":%q,"workers":%d}`, c.Budget.String(), c.Workers)
	solve := func() (float64, server.JobInfo, error) {
		start := time.Now()
		info, err := sbSolve(url+"/graphs/mutebench/solve", body)
		return time.Since(start).Seconds(), info, err
	}

	// Cold solve builds the epoch-0 plan before the stream starts.
	coldSecs, coldInfo, err := solve()
	if err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if coldInfo.Result == nil || !coldInfo.Result.Exact {
		return fmt.Errorf("cold solve not exact: %+v", coldInfo)
	}
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "cold" + suffix, Solver: coldInfo.Result.Solver,
		Seconds: coldSecs, Size: coldInfo.Result.Size, Nodes: coldInfo.Result.Stats.Nodes})

	var solveLat []float64
	mutLat := map[string][]float64{} // mutation latency per plan outcome
	for round := 0; round < rounds; round++ {
		// Round kinds: 0 deletions only (reuse path), 1 insertions only
		// (repair path), 2 both. The cycle mix alternates them; insert
		// pins kind 1; mixed pins kind 2.
		var d bigraph.Delta
		kind := round % 3
		switch mix {
		case "insert":
			kind = 1
		case "mixed":
			kind = 2
		}
		delThisRound := make(map[[2]int]bool, batch)
		if kind != 1 { // deletions
			for k := 0; k < batch && len(edgeList) > 0; k++ {
				i := rng.Intn(len(edgeList))
				e := edgeList[i]
				if !edgeSet[e] {
					continue // already deleted this stream
				}
				delete(edgeSet, e)
				delThisRound[e] = true
				d.Del = append(d.Del, e)
			}
		}
		if kind != 0 { // insertions
			for k := 0; k < batch; k++ {
				e := [2]int{rng.Intn(g.NL()), rng.Intn(g.NR())}
				// Skip edges present — or deleted earlier this same round:
				// the server nets an edge named in both lists out of the
				// effective delta, which would break the count assertion
				// below.
				if edgeSet[e] || delThisRound[e] {
					continue
				}
				edgeSet[e] = true
				edgeList = append(edgeList, e)
				d.Add = append(d.Add, e)
			}
		}
		if d.Empty() {
			continue
		}
		payload, err := muteBody(d)
		if err != nil {
			return err
		}
		start := time.Now()
		var mi server.MutationInfo
		if err := sbPost(url+"/graphs/mutebench/edges", payload, &mi); err != nil {
			return fmt.Errorf("round %d mutation: %w", round, err)
		}
		mutLat[mi.Plan] = append(mutLat[mi.Plan], time.Since(start).Seconds())
		if mi.Added != len(d.Add) || mi.Removed != len(d.Del) {
			return fmt.Errorf("round %d: mutation applied %d+/%d-, client expected %d+/%d-",
				round, mi.Added, mi.Removed, len(d.Add), len(d.Del))
		}

		// Fan the round's solves over the client pool; every result must
		// be exact for exactly the epoch this round published.
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first error
		)
		slots := make(chan struct{}, clients)
		for i := 0; i < solvesPerRound; i++ {
			wg.Add(1)
			slots <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				secs, info, err := solve()
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					if first == nil {
						first = err
					}
				case info.Result == nil || !info.Result.Exact:
					if first == nil {
						first = fmt.Errorf("solve not exact: %+v", info)
					}
				case info.Result.Epoch != mi.Epoch:
					if first == nil {
						first = fmt.Errorf("solve reports epoch %d, round published %d", info.Result.Epoch, mi.Epoch)
					}
				default:
					solveLat = append(solveLat, secs)
					c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve" + suffix, Solver: info.Result.Solver,
						Seconds: secs, Size: info.Result.Size, Nodes: info.Result.Stats.Nodes,
						Tau: info.Result.Stats.Tau, Peeled: info.Result.Stats.Peeled,
						Components: info.Result.Stats.Components})
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
	}

	var gi server.GraphInfo
	if err := sbGet(url+"/graphs/mutebench", &gi); err != nil {
		return fmt.Errorf("graph info: %w", err)
	}

	fmt.Fprintf(c.W, "%-18s %9s %10s %10s %10s %10s %10s\n", "op", "count", "mean", "p50", "p95", "p99", "max")
	for _, outcome := range []string{"reused", "repaired", "rebuilding", "unchanged", "none"} {
		lat := mutLat[outcome]
		if len(lat) == 0 {
			continue
		}
		mean, p50, p95, maxv := sbDist(lat)
		fmt.Fprintf(c.W, "%-18s %9d %10s %10s %10s %10s %10s\n", "mutate/"+outcome, len(lat),
			sbMs(mean), sbMs(p50), sbMs(p95), sbMs(sbPct(lat, 0.99)), sbMs(maxv))
		c.Recorder.add(Record{Exp: "mutebench", Dataset: "mutate-" + outcome + "-p50" + suffix, Seconds: p50})
	}
	sMean, sP50, sP95, sMax := sbDist(solveLat)
	fmt.Fprintf(c.W, "%-18s %9d %10s %10s %10s %10s %10s\n", "solve", len(solveLat),
		sbMs(sMean), sbMs(sP50), sbMs(sP95), sbMs(sbPct(solveLat, 0.99)), sbMs(sMax))
	fmt.Fprintf(c.W, "epochs: %d published, plan reused %d, repaired %d, rebuilt %d; plan_builds=%d plan_hits=%d\n",
		gi.Epoch, len(mutLat["reused"]), len(mutLat["repaired"]), len(mutLat["rebuilding"]), gi.PlanBuilds, gi.PlanHits)
	if rep, reb := mutLat["repaired"], mutLat["rebuilding"]; len(rep) > 0 && len(reb) > 0 {
		_, repP50, _, _ := sbDist(rep)
		_, rebP50, _, _ := sbDist(reb)
		fmt.Fprintf(c.W, "repair vs rebuild: p50 %s vs %s (mutation response; rebuilds also burn a background planner run)\n",
			sbMs(repP50), sbMs(rebP50))
	}
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve-p50" + suffix, Seconds: sP50})
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve-p99" + suffix, Seconds: sbPct(solveLat, 0.99)})

	// The contract each mix exists to exercise: the cycle mix must carry
	// plans across deletion-only rounds, the insert mix must absorb
	// insertion batches by local repair.
	switch mix {
	case "cycle":
		if gi.Mutations == 0 || gi.PlanReuses == 0 {
			return fmt.Errorf("mutebench: no plan maintenance happened (mutations=%d plan_reuses=%d)", gi.Mutations, gi.PlanReuses)
		}
	case "insert":
		if gi.Mutations == 0 || gi.PlanRepairs == 0 {
			return fmt.Errorf("mutebench: no plan repair happened (mutations=%d plan_repairs=%d)", gi.Mutations, gi.PlanRepairs)
		}
	default:
		if gi.Mutations == 0 {
			return fmt.Errorf("mutebench: no mutation took effect")
		}
	}
	return nil
}

// muteBody encodes a delta as the POST /graphs/{name}/edges body.
func muteBody(d bigraph.Delta) ([]byte, error) {
	return json.Marshal(d)
}

// sbPost POSTs a JSON body and decodes a 200 response into v.
func sbPost(url string, body []byte, v any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

// sbPct returns the q-quantile of xs (0 when empty).
func sbPct(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}
