package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/bigraph"
	"repro/internal/server"
	"repro/mbb"
)

// MuteBench measures the mutable-graph serving path: it replays an
// interleaved mutate/solve stream against a running mbbserved daemon
// (Config.ServeURL, or an in-process one) — each round publishes one
// edge batch (insertions, deletions or both) through POST
// /graphs/{name}/edges and then fans a burst of solves over
// Config.Clients concurrent clients.
//
// Every solve is checked against the versioning contract: the result
// must be exact and must report exactly the epoch the round published
// (no torn batches, no stale epochs once the mutation returned). The
// printed table reports mutation and solve latency percentiles plus the
// plan-maintenance story: how many epoch bumps carried the cached plan
// across (deletion-only rounds) versus forcing a background rebuild.
func MuteBench(c Config) error {
	c.fill()
	rounds := c.Requests
	if rounds <= 0 {
		rounds = 24
	}
	clients := c.Clients
	if clients <= 0 {
		clients = 4
	}
	const solvesPerRound = 3
	const batch = 4

	url, stop, err := sbDaemon(c, "mutebench")
	if err != nil {
		return err
	}
	defer stop()

	// Small enough that every solve answers interactively even on the
	// rebuild rounds, big enough that the plan matters.
	n := c.MaxVerts / 4
	if n > 800 {
		n = 800
	}
	if n < 40 {
		n = 40
	}
	g := mbb.GeneratePowerLaw(n, n, 4*n, c.Seed)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		return err
	}
	if err := sbPut(url+"/graphs/mutebench", buf.Bytes()); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Fprintf(c.W, "mutebench: graph %dx%d, %d edges; %d rounds x (1 mutation + %d solves) over %d clients\n",
		g.NL(), g.NR(), g.NumEdges(), rounds, solvesPerRound, clients)

	// Client-side mirror of the edge set, for generating batches that are
	// valid and effective by construction.
	edgeSet := make(map[[2]int]bool, g.NumEdges())
	edgeList := g.Edges()
	for _, e := range edgeList {
		edgeSet[e] = true
	}
	rng := rand.New(rand.NewSource(c.Seed))

	body := fmt.Sprintf(`{"timeout":%q,"workers":%d}`, c.Budget.String(), c.Workers)
	solve := func() (float64, server.JobInfo, error) {
		start := time.Now()
		info, err := sbSolve(url+"/graphs/mutebench/solve", body)
		return time.Since(start).Seconds(), info, err
	}

	// Cold solve builds the epoch-0 plan before the stream starts.
	coldSecs, coldInfo, err := solve()
	if err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if coldInfo.Result == nil || !coldInfo.Result.Exact {
		return fmt.Errorf("cold solve not exact: %+v", coldInfo)
	}
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "cold", Solver: coldInfo.Result.Solver,
		Seconds: coldSecs, Size: coldInfo.Result.Size, Nodes: coldInfo.Result.Stats.Nodes})

	var mutLat, solveLat []float64
	reusedRounds, rebuildRounds := 0, 0
	for round := 0; round < rounds; round++ {
		// Round kinds cycle: deletions only (plan maintenance path),
		// insertions only (background rebuild path), mixed.
		var d bigraph.Delta
		kind := round % 3
		delThisRound := make(map[[2]int]bool, batch)
		if kind != 1 { // deletions
			for k := 0; k < batch && len(edgeList) > 0; k++ {
				i := rng.Intn(len(edgeList))
				e := edgeList[i]
				if !edgeSet[e] {
					continue // already deleted this stream
				}
				delete(edgeSet, e)
				delThisRound[e] = true
				d.Del = append(d.Del, e)
			}
		}
		if kind != 0 { // insertions
			for k := 0; k < batch; k++ {
				e := [2]int{rng.Intn(g.NL()), rng.Intn(g.NR())}
				// Skip edges present — or deleted earlier this same round:
				// the server nets an edge named in both lists out of the
				// effective delta, which would break the count assertion
				// below.
				if edgeSet[e] || delThisRound[e] {
					continue
				}
				edgeSet[e] = true
				edgeList = append(edgeList, e)
				d.Add = append(d.Add, e)
			}
		}
		if d.Empty() {
			continue
		}
		payload, err := muteBody(d)
		if err != nil {
			return err
		}
		start := time.Now()
		var mi server.MutationInfo
		if err := sbPost(url+"/graphs/mutebench/edges", payload, &mi); err != nil {
			return fmt.Errorf("round %d mutation: %w", round, err)
		}
		mutLat = append(mutLat, time.Since(start).Seconds())
		if mi.Added != len(d.Add) || mi.Removed != len(d.Del) {
			return fmt.Errorf("round %d: mutation applied %d+/%d-, client expected %d+/%d-",
				round, mi.Added, mi.Removed, len(d.Add), len(d.Del))
		}
		switch mi.Plan {
		case "reused":
			reusedRounds++
		case "rebuilding":
			rebuildRounds++
		}

		// Fan the round's solves over the client pool; every result must
		// be exact for exactly the epoch this round published.
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			first error
		)
		slots := make(chan struct{}, clients)
		for i := 0; i < solvesPerRound; i++ {
			wg.Add(1)
			slots <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				secs, info, err := solve()
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					if first == nil {
						first = err
					}
				case info.Result == nil || !info.Result.Exact:
					if first == nil {
						first = fmt.Errorf("solve not exact: %+v", info)
					}
				case info.Result.Epoch != mi.Epoch:
					if first == nil {
						first = fmt.Errorf("solve reports epoch %d, round published %d", info.Result.Epoch, mi.Epoch)
					}
				default:
					solveLat = append(solveLat, secs)
					c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve", Solver: info.Result.Solver,
						Seconds: secs, Size: info.Result.Size, Nodes: info.Result.Stats.Nodes,
						Tau: info.Result.Stats.Tau, Peeled: info.Result.Stats.Peeled,
						Components: info.Result.Stats.Components})
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
	}

	var gi server.GraphInfo
	if err := sbGet(url+"/graphs/mutebench", &gi); err != nil {
		return fmt.Errorf("graph info: %w", err)
	}

	mMean, mP50, mP95, mMax := sbDist(mutLat)
	sMean, sP50, sP95, sMax := sbDist(solveLat)
	fmt.Fprintf(c.W, "%-9s %9s %10s %10s %10s %10s %10s\n", "op", "count", "mean", "p50", "p95", "p99", "max")
	fmt.Fprintf(c.W, "%-9s %9d %10s %10s %10s %10s %10s\n", "mutate", len(mutLat),
		sbMs(mMean), sbMs(mP50), sbMs(mP95), sbMs(sbPct(mutLat, 0.99)), sbMs(mMax))
	fmt.Fprintf(c.W, "%-9s %9d %10s %10s %10s %10s %10s\n", "solve", len(solveLat),
		sbMs(sMean), sbMs(sP50), sbMs(sP95), sbMs(sbPct(solveLat, 0.99)), sbMs(sMax))
	fmt.Fprintf(c.W, "epochs: %d published, plan carried across %d (deletion-only), rebuilt %d; plan_builds=%d plan_hits=%d\n",
		gi.Epoch, reusedRounds, rebuildRounds, gi.PlanBuilds, gi.PlanHits)
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "mutate-p50", Seconds: mP50, Size: int(gi.Epoch)})
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve-p50", Seconds: sP50})
	c.Recorder.add(Record{Exp: "mutebench", Dataset: "solve-p99", Seconds: sbPct(solveLat, 0.99)})

	if gi.Mutations == 0 || gi.PlanReuses == 0 {
		return fmt.Errorf("mutebench: no plan maintenance happened (mutations=%d plan_reuses=%d)", gi.Mutations, gi.PlanReuses)
	}
	return nil
}

// muteBody encodes a delta as the POST /graphs/{name}/edges body.
func muteBody(d bigraph.Delta) ([]byte, error) {
	return json.Marshal(d)
}

// sbPost POSTs a JSON body and decodes a 200 response into v.
func sbPost(url string, body []byte, v any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

// sbPct returns the q-quantile of xs (0 when empty).
func sbPct(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}
