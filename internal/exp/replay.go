package exp

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
	"repro/mbb"
)

// Replay streams a temporal edge workload through the mutation API: a
// timestamped event trace (workload.Replay — power-law insertions with
// uniform churn deletions, nondecreasing timestamps) is grouped into
// per-flush-interval delta batches and POSTed in arrival order against a
// running mbbserved daemon (Config.ServeURL, or an in-process one), with
// an epoch-exact solve after every batch. Unlike mutebench's synthetic
// per-kind rounds, the batch composition here is whatever the trace
// produced — mixed, insert-heavy and deletion-only batches arrive in
// whatever order the timestamps dictate, which is exactly the regime the
// plan-maintenance path has to survive in production.
//
// The printed table reports the repair-vs-rebuild split the maintenance
// path is judged on: how many batches the serving plan survived by reuse
// (deletion-only carry) or bounded local repair versus how many forced a
// rebuild, plus solve latency percentiles. Every fourth solve asks for
// the top-2 distinct sizes (?k=2), so the replay also exercises the
// query engine's list path against a mutating graph: list sizes must be
// strictly descending and head-consistent with the scalar answer.
func Replay(c Config) error {
	c.fill()
	rounds := c.Requests
	if rounds <= 0 {
		rounds = 24
	}

	url, stop, err := sbDaemon(c, "replay")
	if err != nil {
		return err
	}
	defer stop()

	// Sized like mutebench: interactive solves even on rebuild rounds.
	n := c.MaxVerts / 4
	if n > 600 {
		n = 600
	}
	if n < 40 {
		n = 40
	}
	// ~6 events per 240ms batch window at a ~40ms mean gap, 30% churn.
	stream := workload.Replay(n, n, 4*n, rounds*6, 0.3, 20, c.Seed)
	batches := stream.Batches(240)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, stream.Base); err != nil {
		return err
	}
	if err := sbPut(url+"/graphs/replay", buf.Bytes()); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Fprintf(c.W, "replay: graph %dx%d, %d edges; %d events in %d batches (30%% churn)\n",
		stream.Base.NL(), stream.Base.NR(), stream.Base.NumEdges(), len(stream.Events), len(batches))

	solveBody := fmt.Sprintf(`{"timeout":%q,"workers":%d}`, c.Budget.String(), c.Workers)
	topkBody := fmt.Sprintf(`{"timeout":%q,"workers":%d,"k":2}`, c.Budget.String(), c.Workers)

	// Cold solve builds the epoch-0 plan before the stream starts.
	if info, err := sbSolve(url+"/graphs/replay/solve", solveBody); err != nil {
		return fmt.Errorf("cold solve: %w", err)
	} else if info.Result == nil || !info.Result.Exact {
		return fmt.Errorf("cold solve not exact: %+v", info)
	}

	var solveLat []float64
	mutLat := map[string][]float64{}
	for bi, d := range batches {
		payload, err := muteBody(d)
		if err != nil {
			return err
		}
		start := time.Now()
		var mi server.MutationInfo
		if err := sbPost(url+"/graphs/replay/edges", payload, &mi); err != nil {
			return fmt.Errorf("batch %d mutation: %w", bi, err)
		}
		mutLat[mi.Plan] = append(mutLat[mi.Plan], time.Since(start).Seconds())
		if mi.Added != len(d.Add) || mi.Removed != len(d.Del) {
			return fmt.Errorf("batch %d: applied %d+/%d-, trace says %d+/%d- (replay batches are effective by construction)",
				bi, mi.Added, mi.Removed, len(d.Add), len(d.Del))
		}

		body := solveBody
		if bi%4 == 3 {
			body = topkBody
		}
		start = time.Now()
		info, err := sbSolve(url+"/graphs/replay/solve", body)
		secs := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("batch %d solve: %w", bi, err)
		}
		res := info.Result
		switch {
		case res == nil || !res.Exact:
			return fmt.Errorf("batch %d solve not exact: %+v", bi, info)
		case res.Epoch != mi.Epoch:
			return fmt.Errorf("batch %d solve reports epoch %d, batch published %d", bi, res.Epoch, mi.Epoch)
		}
		if body == topkBody {
			for i, bc := range res.Bicliques {
				if i == 0 && bc.Size != res.Size {
					return fmt.Errorf("batch %d: top-k head size %d disagrees with scalar %d", bi, bc.Size, res.Size)
				}
				if i > 0 && bc.Size >= res.Bicliques[i-1].Size {
					return fmt.Errorf("batch %d: top-k sizes not strictly descending: %+v", bi, res.Bicliques)
				}
			}
		}
		solveLat = append(solveLat, secs)
		c.Recorder.add(Record{Exp: "replay", Dataset: "solve", Solver: res.Solver,
			Seconds: secs, Size: res.Size, Nodes: res.Stats.Nodes,
			Tau: res.Stats.Tau, Peeled: res.Stats.Peeled, Components: res.Stats.Components})
	}

	var gi server.GraphInfo
	if err := sbGet(url+"/graphs/replay", &gi); err != nil {
		return fmt.Errorf("graph info: %w", err)
	}

	fmt.Fprintf(c.W, "%-18s %9s %10s %10s %10s %10s %10s\n", "op", "count", "mean", "p50", "p95", "p99", "max")
	survived, rebuilt := 0, 0
	for _, outcome := range []string{"reused", "repaired", "rebuilding", "unchanged", "none"} {
		lat := mutLat[outcome]
		if len(lat) == 0 {
			continue
		}
		switch outcome {
		case "reused", "repaired", "unchanged":
			survived += len(lat)
		case "rebuilding":
			rebuilt += len(lat)
		}
		mean, p50, p95, maxv := sbDist(lat)
		fmt.Fprintf(c.W, "%-18s %9d %10s %10s %10s %10s %10s\n", "mutate/"+outcome, len(lat),
			sbMs(mean), sbMs(p50), sbMs(p95), sbMs(sbPct(lat, 0.99)), sbMs(maxv))
		c.Recorder.add(Record{Exp: "replay", Dataset: "mutate-" + outcome + "-p50", Seconds: p50})
	}
	sMean, sP50, sP95, sMax := sbDist(solveLat)
	fmt.Fprintf(c.W, "%-18s %9d %10s %10s %10s %10s %10s\n", "solve", len(solveLat),
		sbMs(sMean), sbMs(sP50), sbMs(sP95), sbMs(sbPct(solveLat, 0.99)), sbMs(sMax))
	total := survived + rebuilt
	if total > 0 {
		fmt.Fprintf(c.W, "plan survival: %d/%d batches (%.0f%%) absorbed without a rebuild (reused %d, repaired %d, rebuilt %d)\n",
			survived, total, 100*float64(survived)/float64(total),
			len(mutLat["reused"]), len(mutLat["repaired"]), len(mutLat["rebuilding"]))
	}
	fmt.Fprintf(c.W, "epochs: %d published; plan_builds=%d plan_hits=%d\n", gi.Epoch, gi.PlanBuilds, gi.PlanHits)
	c.Recorder.add(Record{Exp: "replay", Dataset: "solve-p50", Seconds: sP50})
	c.Recorder.add(Record{Exp: "replay", Dataset: "solve-p99", Seconds: sbPct(solveLat, 0.99)})
	if gi.Mutations == 0 {
		return fmt.Errorf("replay: no mutation took effect")
	}
	return nil
}
