package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/mbb"
)

// ServeBench measures the serving layer's amortization: it replays a
// request mix against a running mbbserved daemon (Config.ServeURL) — or
// an in-process one when no URL is given — and compares the cold first
// solve (which pays for the plan build) against the warm requests that
// reuse the cached reduction, across Config.Clients concurrent clients.
//
// The printed table reports per-phase latency percentiles plus the
// store's plan_builds counter, which must stay at 1 no matter how many
// requests ran — the cached-reduction invariant.
func ServeBench(c Config) error {
	c.fill()
	if c.Requests <= 0 {
		c.Requests = 32
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}

	url, stop, err := sbDaemon(c, "servebench")
	if err != nil {
		return err
	}
	defer stop()

	// A mid-sized power-law instance: big enough that the plan build is
	// visible, small enough that warm solves answer interactively.
	n := c.MaxVerts / 2
	if n > 2000 {
		n = 2000
	}
	if n < 50 {
		n = 50
	}
	g := mbb.GeneratePowerLaw(n, n, 5*n, c.Seed)
	var buf bytes.Buffer
	if err := mbb.WriteGraph(&buf, g); err != nil {
		return err
	}
	if err := sbPut(url+"/graphs/servebench", buf.Bytes()); err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Fprintf(c.W, "servebench: graph %dx%d, %d edges; %d requests over %d clients\n",
		g.NL(), g.NR(), g.NumEdges(), c.Requests, c.Clients)

	body := fmt.Sprintf(`{"timeout":%q,"workers":%d}`, c.Budget.String(), c.Workers)
	solve := func() (float64, server.JobInfo, error) {
		start := time.Now()
		info, err := sbSolve(url+"/graphs/servebench/solve", body)
		return time.Since(start).Seconds(), info, err
	}

	// Cold: the first request pays for the plan build.
	coldSecs, coldInfo, err := solve()
	if err != nil {
		return fmt.Errorf("cold solve: %w", err)
	}
	if coldInfo.Result == nil {
		return fmt.Errorf("cold solve finished without a result: state %s %s", coldInfo.State, coldInfo.Error)
	}
	wantSize := coldInfo.Result.Size
	c.Recorder.add(Record{Exp: "servebench", Dataset: "cold", Solver: coldInfo.Result.Solver,
		Seconds: coldSecs, Size: wantSize, Workers: c.Clients,
		Tau: coldInfo.Result.Stats.Tau, Peeled: coldInfo.Result.Stats.Peeled,
		Components: coldInfo.Result.Stats.Components})

	// Warm, sequential: uncontended requests directly comparable with
	// the cold one — the difference is the amortized parse+plan work.
	warmN := c.Requests / 2
	if warmN < 4 {
		warmN = 4
	}
	if warmN > 16 {
		warmN = 16
	}
	var warm []float64
	for i := 0; i < warmN; i++ {
		secs, info, err := solve()
		if err != nil {
			return fmt.Errorf("warm solve: %w", err)
		}
		if info.Result == nil || info.Result.Size != wantSize {
			return fmt.Errorf("warm solve disagreed: %+v", info)
		}
		warm = append(warm, secs)
		c.Recorder.add(Record{Exp: "servebench", Dataset: "warm", Solver: info.Result.Solver,
			Seconds: secs, Size: info.Result.Size,
			Tau: info.Result.Stats.Tau, Peeled: info.Result.Stats.Peeled,
			Components: info.Result.Stats.Components})
	}

	// Burst: the full request mix fanned out over the client pool —
	// latency here includes queueing behind the worker pool, and the
	// wall clock gives the sustained throughput.
	var (
		mu    sync.Mutex
		burst []float64
		first error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				secs, info, err := solve()
				mu.Lock()
				switch {
				case err != nil:
					if first == nil {
						first = err
					}
				case info.Result == nil || info.Result.Size != wantSize:
					if first == nil {
						first = fmt.Errorf("burst solve disagreed: %+v", info)
					}
				default:
					burst = append(burst, secs)
					c.Recorder.add(Record{Exp: "servebench", Dataset: "burst", Solver: info.Result.Solver,
						Seconds: secs, Size: info.Result.Size, Workers: c.Clients,
						Tau: info.Result.Stats.Tau, Peeled: info.Result.Stats.Peeled,
						Components: info.Result.Stats.Components})
				}
				mu.Unlock()
			}
		}()
	}
	burstStart := time.Now()
	for i := 0; i < c.Requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	burstWall := time.Since(burstStart).Seconds()
	if first != nil {
		return first
	}

	var gi server.GraphInfo
	if err := sbGet(url+"/graphs/servebench", &gi); err != nil {
		return fmt.Errorf("graph info: %w", err)
	}

	fmt.Fprintf(c.W, "%-6s %9s %10s %10s %10s %10s\n", "phase", "requests", "mean", "p50", "p95", "max")
	fmt.Fprintf(c.W, "%-6s %9d %10s %10s %10s %10s\n", "cold", 1,
		sbMs(coldSecs), sbMs(coldSecs), sbMs(coldSecs), sbMs(coldSecs))
	warmMean, warmP50, warmP95, warmMax := sbDist(warm)
	fmt.Fprintf(c.W, "%-6s %9d %10s %10s %10s %10s\n", "warm", len(warm),
		sbMs(warmMean), sbMs(warmP50), sbMs(warmP95), sbMs(warmMax))
	burstMean, burstP50, burstP95, burstMax := sbDist(burst)
	fmt.Fprintf(c.W, "%-6s %9d %10s %10s %10s %10s\n", "burst", len(burst),
		sbMs(burstMean), sbMs(burstP50), sbMs(burstP95), sbMs(burstMax))
	fmt.Fprintf(c.W, "plan: built %d time(s) in %.1f ms, reused by %d solve(s); tau=%d peeled=%d components=%d\n",
		gi.PlanBuilds, gi.PlanMillis, gi.PlanHits, gi.SeedTau, gi.Peeled, gi.Components)
	if warmMean > 0 {
		fmt.Fprintf(c.W, "amortization: cold %s (parse+plan+solve) vs warm mean %s — %.2fx per request\n",
			sbMs(coldSecs), sbMs(warmMean), coldSecs/warmMean)
	}
	if burstWall > 0 && len(burst) > 0 {
		fmt.Fprintf(c.W, "throughput: %d burst requests in %.2fs = %.1f req/s over %d clients\n",
			len(burst), burstWall, float64(len(burst))/burstWall, c.Clients)
	}
	if gi.PlanBuilds != 1 {
		return fmt.Errorf("servebench: plan built %d times, want exactly 1 (cache broken)", gi.PlanBuilds)
	}
	return nil
}

// sbDaemon resolves the target daemon for a serving benchmark: the
// Config.ServeURL when one is given, otherwise an in-process mbbserved
// on a loopback listener. When Config.WALSync is set the in-process
// daemon gets a write-ahead log on a throwaway data directory, so the
// benchmark measures the durable mutation path. stop tears the
// in-process one down (and is a no-op for an external URL).
func sbDaemon(c Config, bench string) (url string, stop func(), err error) {
	if c.ServeURL != "" {
		return c.ServeURL, func() {}, nil
	}
	workers := c.Workers
	if workers < 2 {
		workers = 2
	}
	opt := server.Options{Workers: workers, DefaultTimeout: c.Budget}
	dataDir := ""
	if c.WALSync != "" {
		dataDir, err = os.MkdirTemp("", bench+"-wal-")
		if err != nil {
			return "", nil, err
		}
		opt.DataDir = dataDir
		opt.WALSync = c.WALSync
		opt.RetainEpochs = 4
	}
	cleanup := func() {
		if dataDir != "" {
			os.RemoveAll(dataDir)
		}
	}
	srv, err := server.New(opt)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		cleanup()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	url = "http://" + ln.Addr().String()
	durable := "volatile"
	if c.WALSync != "" {
		durable = "wal-sync=" + c.WALSync
	}
	fmt.Fprintf(c.W, "%s: started in-process daemon (%d workers, %s) at %s\n", bench, workers, durable, url)
	return url, func() { hs.Close(); srv.Close(); cleanup() }, nil
}

func sbMs(secs float64) string { return fmt.Sprintf("%.2fms", secs*1e3) }

// sbDist returns mean/p50/p95/max of xs (zeros when empty).
func sbDist(xs []float64) (mean, p50, p95, maxv float64) {
	if len(xs) == 0 {
		return
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return sum / float64(len(sorted)), pick(0.5), pick(0.95), sorted[len(sorted)-1]
}

func sbPut(url string, body []byte) error {
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("PUT %s: %d %s", url, resp.StatusCode, data)
	}
	return nil
}

func sbSolve(url, body string) (server.JobInfo, error) {
	var info server.JobInfo
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return info, err
	}
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, data)
	}
	return info, json.Unmarshal(data, &info)
}

func sbGet(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}
