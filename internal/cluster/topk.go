package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/server"
)

// MergeTopK merges per-replica solve results for the same graph into one
// answer. Epoch discipline comes first: only results at the newest epoch
// present among the inputs participate — results from different epochs
// answer for different graphs and are never mixed, however exact they
// are. Within the winning epoch the top-k lists (or, for scalar solves,
// the single witnesses) merge by distinct balanced size, largest first,
// first witness per size wins, truncated to k when k > 1. The merged
// result is Exact when any contributor was (same epoch ⇒ same graph ⇒
// any one proof suffices) and carries the smallest gap any contributor
// certified. Returns false when results is empty.
func MergeTopK(k int, results []server.JobResult) (server.JobResult, bool) {
	if len(results) == 0 {
		return server.JobResult{}, false
	}
	epoch := results[0].Epoch
	for _, r := range results[1:] {
		if r.Epoch > epoch {
			epoch = r.Epoch
		}
	}
	var merged server.JobResult
	merged.Epoch = epoch
	first := true
	bySize := make(map[int]server.BicliqueJSON)
	var order []int
	offer := func(bc server.BicliqueJSON) {
		if bc.Size <= 0 {
			return
		}
		if _, seen := bySize[bc.Size]; !seen {
			bySize[bc.Size] = bc
			order = append(order, bc.Size)
		}
	}
	for _, r := range results {
		if r.Epoch != epoch {
			continue
		}
		if first {
			merged = r
			merged.Bicliques = nil
			first = false
		} else {
			merged.Exact = merged.Exact || r.Exact
			if r.Gap < merged.Gap {
				merged.Gap = r.Gap
			}
			merged.Stats.Nodes += r.Stats.Nodes
			merged.Seconds += r.Seconds
		}
		for _, bc := range r.Bicliques {
			offer(bc)
		}
		offer(server.BicliqueJSON{Size: r.Size, A: r.A, B: r.B})
	}
	// Largest sizes first; insertion sort — k is tiny.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] > order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if k > 1 && len(order) > k {
		order = order[:k]
	}
	if k > 1 {
		merged.Bicliques = make([]server.BicliqueJSON, len(order))
		for i, s := range order {
			merged.Bicliques[i] = bySize[s]
		}
	}
	if len(order) > 0 {
		top := bySize[order[0]]
		merged.Size, merged.A, merged.B = top.Size, top.A, top.B
	}
	// An exact contributor's optimum closes the gap for the merge.
	if merged.Exact {
		merged.Gap = 0
	}
	return merged, true
}

// SolveAllResponse is the POST /graphs/{name}/solveall payload: the
// merged answer plus which replicas contributed at the merged epoch and
// which were skipped (stale epoch, failure, or unreachable).
type SolveAllResponse struct {
	Result  server.JobResult `json:"result"`
	Epoch   uint64           `json:"epoch"`
	Workers []string         `json:"workers"`
	Skipped []string         `json:"skipped,omitempty"`
}

// handleSolveAll fans a synchronous solve to every ready replica of the
// graph and merges the answers with MergeTopK — the cluster analogue of
// a single worker's /solve, trading duplicated work for an answer that
// survives any single replica's budget cut and for cross-replica
// agreement checking. Unlike solveForward it does not fail over to ONE
// replica; it asks all of them concurrently and keeps only results of
// the newest epoch any of them served.
func (c *Coordinator) handleSolveAll(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, solveBufferBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request body: %v", err)
		return
	}
	if len(body) > solveBufferBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "solve request exceeds %d bytes", solveBufferBytes)
		return
	}
	k, ok := c.solveAllK(w, r, body)
	if !ok {
		return
	}
	cands := c.readCandidates(name)
	if len(cands) == 0 {
		c.downReject.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "no ready replica of graph %q", name)
		return
	}
	type outcome struct {
		worker string
		result *server.JobResult
	}
	outcomes := make([]outcome, len(cands))
	var wg sync.WaitGroup
	for i, u := range cands {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			outcomes[i] = outcome{worker: u, result: c.solveOn(r, u, name, body)}
		}(i, u)
	}
	wg.Wait()
	var results []server.JobResult
	var workers, skipped []string
	for _, o := range outcomes {
		if o.result == nil {
			skipped = append(skipped, o.worker)
			continue
		}
		results = append(results, *o.result)
		workers = append(workers, o.worker)
	}
	merged, ok := MergeTopK(k, results)
	if !ok {
		c.downReject.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "no replica of graph %q returned a result", name)
		return
	}
	// Contributors are only the replicas whose result carried the merged
	// (newest) epoch; the rest answered for an older graph.
	var contributors []string
	for i, res := range results {
		if res.Epoch == merged.Epoch {
			contributors = append(contributors, workers[i])
		} else {
			skipped = append(skipped, workers[i])
		}
	}
	c.forwards.Add(1)
	writeJSON(w, http.StatusOK, SolveAllResponse{
		Result: merged, Epoch: merged.Epoch, Workers: contributors, Skipped: skipped,
	})
}

// solveAllK extracts the top-k truncation bound for the merge from the
// ?k= parameter or the request body's "k" field (mirroring the worker's
// own precedence rules); writes a 400 and reports false on nonsense.
func (c *Coordinator) solveAllK(w http.ResponseWriter, r *http.Request, body []byte) (int, bool) {
	k := 0
	if len(body) > 0 {
		var probe struct {
			K int `json:"k"`
		}
		if err := json.Unmarshal(body, &probe); err == nil {
			k = probe.K
		}
	}
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad k=%q: not an integer", raw)
			return 0, false
		}
		if k != 0 && v != k {
			writeError(w, http.StatusBadRequest, "conflicting k: URL parameter says %d, body says %d", v, k)
			return 0, false
		}
		k = v
	}
	if k < 0 {
		writeError(w, http.StatusBadRequest, "bad k=%d: must be positive", k)
		return 0, false
	}
	return k, true
}

// solveOn runs one replica's synchronous solve and returns its result,
// nil on transport errors, non-2xx answers, failed jobs or jobs without
// a result (a canceled job that kept a best-so-far still counts).
func (c *Coordinator) solveOn(r *http.Request, worker, name string, body []byte) *server.JobResult {
	url := worker + "/graphs/" + name + "/solve" + c.rawQuery(r)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := server.RequestIDFromContext(r.Context()); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil
	}
	var info server.JobInfo
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&info) != nil {
		return nil
	}
	return info.Result
}
