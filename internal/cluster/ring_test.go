package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"http://w1:1", "http://w2:2", "http://w3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://w3:3", "http://w1:1", "http://w2:2", "http://w1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("graph-%d", i)
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("owner of %q differs across peer orderings: %s vs %s", name, a.Owner(name), b.Owner(name))
		}
		ra, rb := a.Replicas(name, 2), b.Replicas(name, 2)
		if len(ra) != 2 || ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("replicas of %q differ: %v vs %v", name, ra, rb)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(nodes, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("g%d", i))]++
	}
	for _, u := range nodes {
		// A perfectly even split is n/3; require each node to own at
		// least a third of its fair share — a very loose bound that only
		// a broken placement would miss.
		if counts[u] < n/9 {
			t.Fatalf("unbalanced ring: %v", counts)
		}
	}
}

func TestRingReplicas(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("g%d", i)
		reps := r.Replicas(name, 5) // over-asking clamps to ring size
		if len(reps) != 3 {
			t.Fatalf("replicas(%q, 5) = %v, want all 3 distinct nodes", name, reps)
		}
		if reps[0] != r.Owner(name) {
			t.Fatalf("preference list of %q does not start with its owner: %v", name, reps)
		}
		seen := map[string]bool{}
		for _, u := range reps {
			if seen[u] {
				t.Fatalf("duplicate replica in %v", reps)
			}
			seen[u] = true
		}
	}
	if got := r.Replicas("g", 1); len(got) != 1 || got[0] != r.Owner("g") {
		t.Fatalf("replication 1 should be the owner alone, got %v", got)
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 4); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 4); err == nil {
		t.Fatal("blank peer URL accepted")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" localhost:8080, http://w2:9090/ ,https://w3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://localhost:8080", "http://w2:9090", "https://w3"}
	if len(peers) != len(want) {
		t.Fatalf("peers %v, want %v", peers, want)
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peers %v, want %v", peers, want)
		}
	}
	if _, err := ParsePeers(" , "); err == nil {
		t.Fatal("blank spec accepted")
	}
}
