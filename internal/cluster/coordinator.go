package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// solveBufferBytes bounds how much of a solve/submit request body the
// coordinator buffers for failover; it matches the workers' own solve
// body limit, so anything larger would be rejected downstream anyway.
const solveBufferBytes = 1 << 20

// jobRouteCap bounds the learned job-id → worker map; older routes are
// evicted FIFO and fall back to the fan-out lookup.
const jobRouteCap = 4096

// CoordinatorConfig configures the routing front-end.
type CoordinatorConfig struct {
	// Peers is the worker URL list — the same ring every worker runs.
	Peers []string
	// Vnodes and Replication must match the workers' settings.
	Vnodes      int
	Replication int
	// ProbeInterval is the /readyz poll period. Default 1s.
	ProbeInterval time.Duration
	// Client performs probes and forwards. Default: no overall timeout
	// (sync solves legitimately run long); probes get their own bound.
	Client *http.Client
}

// Coordinator fronts a worker ring: it routes mutations to shard
// owners, fans solves across ready replicas with failover, and turns
// per-shard queue depth and replication lag into 429/503 + Retry-After
// admission decisions. It holds no graph state — every durable byte
// lives on a worker's WAL — so a coordinator restart loses nothing but
// its learned job routes, which the fan-out lookup rebuilds on demand.
type Coordinator struct {
	cfg    CoordinatorConfig
	ring   *Ring
	client *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	workers map[string]*workerState

	routeMu  sync.Mutex
	routes   map[string]string // job id → worker URL
	routeLog []string          // FIFO eviction order

	forwards   atomic.Int64
	failovers  atomic.Int64
	busyReject atomic.Int64 // 429: every candidate's queue is full
	downReject atomic.Int64 // 503: no ready candidate at all
	probeFails atomic.Int64
}

// workerState is the probe loop's view of one worker.
type workerState struct {
	url string

	mu    sync.Mutex
	ready bool
	st    server.ReadyStatus
	err   error
}

func (ws *workerState) snapshot() (bool, server.ReadyStatus, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.ready, ws.st, ws.err
}

// NewCoordinator builds the coordinator; Start begins health probing.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	ring, err := NewRing(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replication > len(ring.Nodes()) {
		cfg.Replication = len(ring.Nodes())
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    ring,
		client:  cfg.Client,
		ctx:     ctx,
		cancel:  cancel,
		workers: make(map[string]*workerState),
		routes:  make(map[string]string),
	}
	for _, p := range ring.Nodes() {
		c.workers[p] = &workerState{url: p}
	}
	return c, nil
}

// Start launches the per-worker readiness probes (one immediate probe
// each, then every ProbeInterval).
func (c *Coordinator) Start() {
	for _, ws := range c.workers {
		c.wg.Add(1)
		go c.probeLoop(ws)
	}
}

// Close stops the probes and waits for them.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

func (c *Coordinator) probeLoop(ws *workerState) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.probe(ws)
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probe polls one worker's /readyz. A 503 with a decodable body is a
// live-but-not-ready worker (draining, catching up) and keeps its queue
// numbers; a transport error or garbage marks it down.
func (c *Coordinator) probe(ws *workerState) {
	ctx, cancel := context.WithTimeout(c.ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.url+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.probeFails.Add(1)
		ws.mu.Lock()
		ws.ready, ws.err = false, err
		ws.mu.Unlock()
		return
	}
	defer resp.Body.Close()
	var st server.ReadyStatus
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st)
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if decErr != nil {
		c.probeFails.Add(1)
		ws.ready, ws.err = false, fmt.Errorf("decode /readyz: %w", decErr)
		return
	}
	ws.st, ws.err = st, nil
	ws.ready = resp.StatusCode == http.StatusOK && st.Ready
}

// Handler returns the coordinator's HTTP API. It mirrors the worker
// API — clients point at the coordinator instead of a worker and keep
// their request shapes — plus GET /cluster for topology and routing
// introspection.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /cluster", c.handleCluster)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /graphs", c.handleGraphs)
	mux.HandleFunc("PUT /graphs/{name}", c.ownerForward)
	mux.HandleFunc("GET /graphs/{name}", c.readForward)
	mux.HandleFunc("DELETE /graphs/{name}", c.ownerForward)
	mux.HandleFunc("GET /graphs/{name}/export", c.readForward)
	mux.HandleFunc("POST /graphs/{name}/edges", c.ownerForward)
	mux.HandleFunc("DELETE /graphs/{name}/edges", c.ownerForward)
	mux.HandleFunc("POST /graphs/{name}/jobs", c.solveForward)
	mux.HandleFunc("POST /graphs/{name}/solve", c.solveForward)
	mux.HandleFunc("POST /graphs/{name}/solveall", c.handleSolveAll)
	mux.HandleFunc("GET /jobs", c.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", c.jobForward)
	mux.HandleFunc("DELETE /jobs/{id}", c.jobForward)
	return mux
}

// handleReadyz: the coordinator is ready when any worker is — it can
// still serve reads for live shards even with part of the ring down.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := 0
	for _, ws := range c.workers {
		if ok, _, _ := ws.snapshot(); ok {
			ready++
		}
	}
	st := map[string]any{"ready": ready > 0, "workers_ready": ready, "workers_total": len(c.workers)}
	if ready == 0 {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("mbbcoord_forwards_total", "Requests forwarded to workers.", c.forwards.Load())
	counter("mbbcoord_failovers_total", "Solve forwards that moved past a failed candidate.", c.failovers.Load())
	counter("mbbcoord_busy_rejects_total", "Requests rejected 429 with every candidate queue full.", c.busyReject.Load())
	counter("mbbcoord_down_rejects_total", "Requests rejected 503 with no ready candidate.", c.downReject.Load())
	counter("mbbcoord_probe_failures_total", "Readiness probes that failed outright.", c.probeFails.Load())
	ready := 0
	for _, ws := range c.workers {
		if ok, _, _ := ws.snapshot(); ok {
			ready++
		}
	}
	fmt.Fprintf(&b, "# HELP mbbcoord_workers_ready Workers currently passing readiness probes.\n# TYPE mbbcoord_workers_ready gauge\nmbbcoord_workers_ready %d\n", ready)
	fmt.Fprintf(&b, "# HELP mbbcoord_workers_total Workers on the ring.\n# TYPE mbbcoord_workers_total gauge\nmbbcoord_workers_total %d\n", len(c.workers))
	w.Write(b.Bytes())
}

// ClusterTopology is the GET /cluster payload.
type ClusterTopology struct {
	Workers     []WorkerInfo `json:"workers"`
	Vnodes      int          `json:"vnodes"`
	Replication int          `json:"replication"`
}

// WorkerInfo is one worker's probed state in the topology payload.
type WorkerInfo struct {
	URL        string  `json:"url"`
	Ready      bool    `json:"ready"`
	Draining   bool    `json:"draining"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_capacity"`
	Synced     bool    `json:"synced"`
	LagSeconds float64 `json:"lag_seconds"`
	Error      string  `json:"error,omitempty"`
}

// GraphPlacement is the GET /cluster?name=G payload.
type GraphPlacement struct {
	Name     string   `json:"name"`
	Owner    string   `json:"owner"`
	Replicas []string `json:"replicas"`
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("name"); name != "" {
		writeJSON(w, http.StatusOK, GraphPlacement{
			Name:     name,
			Owner:    c.ring.Owner(name),
			Replicas: c.ring.Replicas(name, c.cfg.Replication),
		})
		return
	}
	top := ClusterTopology{Vnodes: c.cfg.Vnodes, Replication: c.cfg.Replication}
	if top.Vnodes <= 0 {
		top.Vnodes = DefaultVnodes
	}
	for _, u := range c.ring.Nodes() {
		ready, st, err := c.workers[u].snapshot()
		wi := WorkerInfo{URL: u, Ready: ready, Draining: st.Draining,
			QueueDepth: st.QueueDepth, QueueCap: st.QueueCapacity,
			Synced: st.Synced, LagSeconds: st.LagSeconds}
		if err != nil {
			wi.Error = err.Error()
		}
		top.Workers = append(top.Workers, wi)
	}
	writeJSON(w, http.StatusOK, top)
}

// forward proxies r to worker, rewriting only the host. It streams the
// response back with the worker named in X-Mbb-Worker. body replaces
// r.Body when non-nil (the buffered failover path).
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, worker string, body []byte) (int, bool) {
	url := worker + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader = r.Body
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "build forward request: %v", err)
		return 0, false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := server.RequestIDFromContext(r.Context()); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	c.forwards.Add(1)
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", "X-Graph-Epoch", "X-Mbb-Owner"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Mbb-Worker", worker)
	w.WriteHeader(resp.StatusCode)
	if resp.StatusCode == http.StatusAccepted || r.URL.Path == "/jobs" || strings.HasPrefix(r.URL.Path, "/jobs/") {
		// Job-shaped responses are small; tee them to learn id → worker.
		var buf bytes.Buffer
		io.Copy(&buf, io.LimitReader(resp.Body, 1<<20))
		c.learnRoute(buf.Bytes(), worker)
		w.Write(buf.Bytes())
	} else {
		io.Copy(w, resp.Body)
	}
	return resp.StatusCode, true
}

func (c *Coordinator) learnRoute(body []byte, worker string) {
	var probe struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.ID == "" {
		return
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if _, known := c.routes[probe.ID]; !known {
		c.routeLog = append(c.routeLog, probe.ID)
		for len(c.routeLog) > jobRouteCap {
			delete(c.routes, c.routeLog[0])
			c.routeLog = c.routeLog[1:]
		}
	}
	c.routes[probe.ID] = worker
}

// ownerForward routes mutations (upload, delete, edges) to the shard
// owner — the only worker whose WAL may accept them. Not-ready owners
// are refused up front with the same Retry-After the worker's drain
// path uses; there is no failover for writes.
func (c *Coordinator) ownerForward(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	owner := c.ring.Owner(name)
	if ok, _, _ := c.workers[owner].snapshot(); !ok {
		c.downReject.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "shard owner %s of graph %q is not ready", owner, name)
		return
	}
	if _, ok := c.forward(w, r, owner, nil); !ok {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "shard owner %s of graph %q is unreachable", owner, name)
	}
}

// readCandidates is the named graph's replica preference list filtered
// to probed-ready workers and ordered by queue depth (owner's position
// breaks ties, keeping owner-affinity when queues are level).
func (c *Coordinator) readCandidates(name string) []string {
	prefs := c.ring.Replicas(name, c.cfg.Replication)
	type cand struct {
		url   string
		depth int
		pref  int
	}
	var cands []cand
	for i, u := range prefs {
		if ok, st, _ := c.workers[u].snapshot(); ok {
			cands = append(cands, cand{u, st.QueueDepth, i})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].depth != cands[b].depth {
			return cands[a].depth < cands[b].depth
		}
		return cands[a].pref < cands[b].pref
	})
	out := make([]string, len(cands))
	for i, cd := range cands {
		out[i] = cd.url
	}
	return out
}

// readForward sends a read (graph info, export) to the least-loaded
// ready replica, failing over through the rest of the preference list.
func (c *Coordinator) readForward(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cands := c.readCandidates(name)
	if len(cands) == 0 {
		c.downReject.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "no ready replica of graph %q", name)
		return
	}
	for i, u := range cands {
		if i > 0 {
			c.failovers.Add(1)
		}
		if _, ok := c.forward(w, r, u, nil); ok {
			return
		}
		// Transport error before any bytes reached the client — the
		// next candidate gets a clean response writer.
	}
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable, "every replica of graph %q is unreachable", name)
}

// solveForward routes a solve/submit across the ready replicas,
// buffering the (bounded) request body so a failed candidate can be
// retried on the next one. Failover triggers on transport errors and on
// 503/421 — a queue-full or lag-gated replica is exactly when another
// replica should answer. All-queues-full becomes 429 (the cluster is
// saturated: backing off is the fix), no-ready-candidate becomes 503.
func (c *Coordinator) solveForward(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, solveBufferBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request body: %v", err)
		return
	}
	if len(body) > solveBufferBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "solve request exceeds %d bytes", solveBufferBytes)
		return
	}
	cands := c.readCandidates(name)
	if len(cands) == 0 {
		c.downReject.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "no ready replica of graph %q", name)
		return
	}
	tried, refused := 0, 0
	for i, u := range cands {
		if i > 0 {
			c.failovers.Add(1)
		}
		status, sent := c.tryCandidate(w, r, u, body)
		if sent && status != http.StatusServiceUnavailable && status != http.StatusMisdirectedRequest {
			return
		}
		tried++
		if sent {
			refused++
		}
	}
	if refused == tried && tried > 0 {
		// Every candidate answered and said "not now" — saturation.
		c.busyReject.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all %d replicas of graph %q are at capacity or lag-bounded", tried, name)
		return
	}
	c.downReject.Add(1)
	w.Header().Set("Retry-After", "5")
	writeError(w, http.StatusServiceUnavailable, "no replica of graph %q could take the solve", name)
}

// tryCandidate attempts one solve forward. Unlike forward, a 503/421
// answer is NOT relayed — the caller will fail over — so the response
// is only committed once the status is final.
func (c *Coordinator) tryCandidate(w http.ResponseWriter, r *http.Request, worker string, body []byte) (int, bool) {
	url := worker + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := server.RequestIDFromContext(r.Context()); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusMisdirectedRequest {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return resp.StatusCode, true
	}
	c.forwards.Add(1)
	var buf bytes.Buffer
	io.Copy(&buf, io.LimitReader(resp.Body, 64<<20))
	c.learnRoute(buf.Bytes(), worker)
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", "X-Graph-Epoch"} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Mbb-Worker", worker)
	w.WriteHeader(resp.StatusCode)
	w.Write(buf.Bytes())
	return resp.StatusCode, true
}

// jobForward resolves a job id to the worker that ran it — the learned
// route when we have it, otherwise a fan-out probe (coordinator
// restarts forget routes; the jobs themselves live on).
func (c *Coordinator) jobForward(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.routeMu.Lock()
	worker, known := c.routes[id]
	c.routeMu.Unlock()
	if known {
		status, ok := c.forward(w, r, worker, nil)
		if ok && status != http.StatusNotFound {
			return
		}
		// Stale or unreachable: drop the route and fall through to the
		// fan-out lookup. A relayed 404 already answered the client
		// (the job may have been retention-pruned there), so only a
		// transport error — response unwritten — retries below.
		c.routeMu.Lock()
		delete(c.routes, id)
		c.routeMu.Unlock()
		if ok {
			return
		}
	}
	for _, u := range c.ring.Nodes() {
		if ok, _, _ := c.workers[u].snapshot(); !ok {
			continue
		}
		resp, err := c.proxyGet(r, u, "/jobs/"+id+c.rawQuery(r))
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		// Found it. Re-issue the real method against the right worker so
		// DELETE and ?wait semantics land where the job lives.
		resp.Body.Close()
		c.learnRouteID(id, u)
		c.forward(w, r, u, nil)
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %q on any ready worker", id)
}

func (c *Coordinator) learnRouteID(id, worker string) {
	c.learnRoute([]byte(fmt.Sprintf(`{"id":%q}`, id)), worker)
}

func (c *Coordinator) rawQuery(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return "?" + r.URL.RawQuery
	}
	return ""
}

func (c *Coordinator) proxyGet(r *http.Request, worker, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, worker+path, nil)
	if err != nil {
		return nil, err
	}
	return c.client.Do(req)
}

// handleGraphs merges every ready worker's graph list, preferring each
// graph's shard-owner copy (its counters are authoritative; replica
// copies lag by design).
func (c *Coordinator) handleGraphs(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		raw   json.RawMessage
		owned bool
	}
	merged := make(map[string]entry)
	var order []string
	for _, u := range c.ring.Nodes() {
		if ok, _, _ := c.workers[u].snapshot(); !ok {
			continue
		}
		resp, err := c.proxyGet(r, u, "/graphs")
		if err != nil {
			continue
		}
		var list []json.RawMessage
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, raw := range list {
			var probe struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(raw, &probe) != nil || probe.Name == "" {
				continue
			}
			owned := c.ring.Owner(probe.Name) == u
			if old, seen := merged[probe.Name]; seen {
				if !old.owned && owned {
					merged[probe.Name] = entry{raw, true}
				}
				continue
			}
			merged[probe.Name] = entry{raw, owned}
			order = append(order, probe.Name)
		}
	}
	sort.Strings(order)
	out := make([]json.RawMessage, 0, len(order))
	for _, n := range order {
		out = append(out, merged[n].raw)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJobs concatenates every ready worker's job list, tagging each
// entry with the worker it came from.
func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	type taggedJob struct {
		Worker string          `json:"worker"`
		Job    json.RawMessage `json:"job"`
	}
	var out []taggedJob
	for _, u := range c.ring.Nodes() {
		if ok, _, _ := c.workers[u].snapshot(); !ok {
			continue
		}
		resp, err := c.proxyGet(r, u, "/jobs")
		if err != nil {
			continue
		}
		var list []json.RawMessage
		err = json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, raw := range list {
			out = append(out, taggedJob{Worker: u, Job: raw})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStats maps each worker URL to its /stats payload (no merging:
// per-shard numbers are what an operator debugging imbalance needs).
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	out := make(map[string]json.RawMessage)
	for _, u := range c.ring.Nodes() {
		resp, err := c.proxyGet(r, u, "/stats"+c.rawQuery(r))
		if err != nil {
			out[u] = json.RawMessage(fmt.Sprintf(`{"error":%q}`, err.Error()))
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil || !json.Valid(raw) {
			out[u] = json.RawMessage(`{"error":"bad stats payload"}`)
			continue
		}
		out[u] = raw
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
