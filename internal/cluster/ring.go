// Package cluster scales the serving layer horizontally: a consistent
// hash ring shards graphs by name across worker daemons, a coordinator
// routes client traffic to shard owners (mutations) and read replicas
// (solves), and a tail manager on each worker follows its peers'
// /replicate delta streams so replicas converge on the owner's exact
// epochs and answer with the same per-epoch exactness guarantee.
//
// The dependency points outward: this package imports internal/server
// (and internal/wal for the stream protocol); the server sees the
// cluster only through the small server.ClusterInfo interface. The
// ring is static configuration — every worker and the coordinator are
// started with the same peer list, and a worker leaving the ring does
// not rebalance it: its graphs stay readable on replicas and writable
// again when it returns (DESIGN.md §11 has the failure matrix).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultVnodes is the default virtual-node count per worker. 64 keeps
// the expected ownership imbalance across a handful of workers within a
// few percent while the ring stays tiny (N×64 points).
const DefaultVnodes = 64

// Ring is a consistent hash ring over worker URLs. Ownership of a name
// is the first ring point at or after the name's hash; the replica set
// is the next distinct workers clockwise. All workers build identical
// rings from the same peer list (order-insensitive: nodes are sorted
// before placement), so ownership is agreed without coordination.
type Ring struct {
	nodes  []string // sorted, deduplicated worker URLs
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring of vnodes points per node (DefaultVnodes when
// vnodes <= 0). Node URLs are normalized only by sorting and
// deduplication — callers pass the same strings everywhere.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty worker URL in peer list")
		}
		if !seen[n] {
			seen[n] = true
			r.nodes = append(r.nodes, n)
		}
	}
	if len(r.nodes) == 0 {
		return nil, fmt.Errorf("cluster: peer list is empty")
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + fmt.Sprint(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		return p.node < q.node // deterministic tiebreak on (vanishingly rare) collisions
	})
	return r, nil
}

// ringHash is FNV-64a: stable across processes and platforms, which is
// what ownership agreement needs (maphash would differ per process).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns the ring's workers, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the worker URL owning the named graph.
func (r *Ring) Owner(name string) string { return r.nodes[r.points[r.search(name)].node] }

// Replicas returns the named graph's preference list: the owner first,
// then the next distinct workers clockwise, k entries total (clamped to
// the ring size). Every worker computes the same list.
func (r *Ring) Replicas(name string, k int) []string {
	if k < 1 {
		k = 1
	}
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	out := make([]string, 0, k)
	seen := make(map[int]bool, k)
	for i := r.search(name); len(out) < k; i++ {
		p := r.points[i%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// search finds the first ring point at or after the name's hash.
func (r *Ring) search(name string) int {
	h := ringHash(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// ParsePeers splits a comma-separated worker URL list, trims blanks,
// defaults bare host:port entries to http:// and strips trailing
// slashes, so flag values compare equal however they were spelled.
func ParsePeers(spec string) ([]string, error) {
	var peers []string
	for _, p := range strings.Split(spec, ",") {
		p = NormalizeURL(p)
		if p == "" {
			continue
		}
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no worker URLs in %q", spec)
	}
	return peers, nil
}

// NormalizeURL canonicalizes one worker URL the way ParsePeers does.
func NormalizeURL(p string) string {
	p = strings.TrimSpace(p)
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return strings.TrimRight(p, "/")
}
