package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bigraph"
	"repro/internal/server"
	"repro/internal/wal"
)

// k33 is K3,3 in edge-list format; its maximum balanced biclique is 3×3.
const k33 = "3 3 9\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n"

type testWorker struct {
	srv    *server.Server
	ts     *httptest.Server
	tm     *TailManager
	url    string
	killed bool
}

// kill simulates a worker death: stop tailing, unblock the replicate
// handlers (srv.Close), then close the listener so probes see refusals.
func (w *testWorker) kill() {
	if w.killed {
		return
	}
	w.killed = true
	w.tm.Close()
	w.srv.Close()
	w.ts.Close()
}

// startCluster brings up n durable workers on one ring. Listeners are
// bound (so URLs are known) before any server starts serving, which is
// what lets every worker be configured with the full peer list.
func startCluster(t *testing.T, n, replication int, maxLag time.Duration) []*testWorker {
	t.Helper()
	workers := make([]*testWorker, n)
	var peers []string
	for i := range workers {
		srv, err := server.New(server.Options{
			Workers: 2, QueueCap: 8, DefaultTimeout: time.Minute,
			DataDir: t.TempDir(), WALSync: "off",
			RetainEpochs: 8, MaxReplicaLag: maxLag,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		url := "http://" + ts.Listener.Addr().String()
		workers[i] = &testWorker{srv: srv, ts: ts, url: url}
		peers = append(peers, url)
	}
	for _, w := range workers {
		tm, err := NewTailManager(w.srv.Store(), Config{Self: w.url, Peers: peers, Replication: replication})
		if err != nil {
			t.Fatal(err)
		}
		w.tm = tm
		w.srv.SetCluster(tm)
		w.ts.Start()
		tm.Start()
	}
	t.Cleanup(func() {
		for _, w := range workers {
			if !w.killed {
				w.tm.Close()
			}
		}
		for _, w := range workers {
			if !w.killed {
				w.srv.Close()
				w.ts.Close()
			}
		}
	})
	return workers
}

func byURL(workers []*testWorker, url string) *testWorker {
	for _, w := range workers {
		if w.url == url {
			return w
		}
	}
	return nil
}

// pickName finds a graph name the given worker owns.
func pickName(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		name := fmt.Sprintf("g%d", i)
		if r.Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no name owned by %s in 10k tries", owner)
	return ""
}

func doReq(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeT[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return v
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterShardingReplicationFailover is the end-to-end tentpole
// test: upload routes to the shard owner, mutations land on the owner's
// WAL and replicate, every worker answers the same result for the same
// epoch (current and historical), and a dead owner leaves reads serving
// while mutations back off with Retry-After.
func TestClusterShardingReplicationFailover(t *testing.T) {
	workers := startCluster(t, 3, 3, -1) // unbounded lag: availability over freshness
	peers := make([]string, len(workers))
	for i, w := range workers {
		peers[i] = w.url
	}
	coord, err := NewCoordinator(CoordinatorConfig{Peers: peers, Replication: 3, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(server.Chain(coord.Handler(), server.RequestID))
	t.Cleanup(cts.Close)

	waitFor(t, 5*time.Second, "all workers ready at the coordinator", func() bool {
		resp, data := doReq(t, http.MethodGet, cts.URL+"/readyz", "")
		st := decodeT[map[string]any](t, data)
		return resp.StatusCode == http.StatusOK && st["workers_ready"] == float64(3)
	})

	ring := workers[0].tm.Ring()
	name := pickName(t, ring, workers[0].url) // owned by worker 0
	owner := workers[0]

	// Placement introspection agrees with the ring.
	_, data := doReq(t, http.MethodGet, cts.URL+"/cluster?name="+name, "")
	place := decodeT[GraphPlacement](t, data)
	if place.Owner != owner.url || len(place.Replicas) != 3 {
		t.Fatalf("placement %+v, want owner %s and 3 replicas", place, owner.url)
	}

	// Upload through the coordinator: must land on the owner.
	resp, data := doReq(t, http.MethodPut, cts.URL+"/graphs/"+name, k33)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT via coordinator: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Mbb-Worker"); got != owner.url {
		t.Fatalf("upload routed to %s, want owner %s", got, owner.url)
	}

	// Mutate through the coordinator; the owner's epoch advances.
	resp, data = doReq(t, http.MethodPost, cts.URL+"/graphs/"+name+"/edges", `{"del":[[2,2]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate via coordinator: %d %s", resp.StatusCode, data)
	}

	// A mutation sent straight at a non-owner is refused with the owner
	// named — durability-before-visibility only holds on the owner's WAL.
	resp, _ = doReq(t, http.MethodPost, workers[1].url+"/graphs/"+name+"/edges", `{"del":[[0,0]]}`)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("non-owner mutation: %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mbb-Owner"); got != owner.url {
		t.Fatalf("421 names owner %q, want %s", got, owner.url)
	}

	// Every replica converges on epoch 1 through the delta stream.
	for _, w := range workers {
		w := w
		waitFor(t, 10*time.Second, "replica "+w.url+" at epoch 1", func() bool {
			resp, data := doReq(t, http.MethodGet, w.url+"/graphs/"+name, "")
			return resp.StatusCode == http.StatusOK && decodeT[server.GraphInfo](t, data).Epoch == 1
		})
	}

	// Per-epoch exactness across the cluster: every worker answers the
	// same size/exactness for the same epoch, current and historical.
	for _, epoch := range []string{"", "?epoch=0", "?epoch=1"} {
		var want *server.JobResult
		for _, w := range workers {
			resp, data := doReq(t, http.MethodPost, w.url+"/graphs/"+name+"/solve"+epoch, `{"timeout":"30s"}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("solve%s at %s: %d %s", epoch, w.url, resp.StatusCode, data)
			}
			job := decodeT[server.JobInfo](t, data)
			if job.Result == nil || !job.Result.Exact {
				t.Fatalf("solve%s at %s: inexact or empty result %+v", epoch, w.url, job)
			}
			if want == nil {
				want = job.Result
				continue
			}
			if job.Result.Size != want.Size || job.Result.Epoch != want.Epoch {
				t.Fatalf("solve%s disagreement: %s says size=%d epoch=%d, first said size=%d epoch=%d",
					epoch, w.url, job.Result.Size, job.Result.Epoch, want.Size, want.Epoch)
			}
		}
	}

	// Kill the owner. Reads keep working through replicas (lag is
	// unbounded here); mutations to its shard back off with Retry-After.
	owner.kill()
	waitFor(t, 5*time.Second, "coordinator to mark the dead worker", func() bool {
		_, data := doReq(t, http.MethodGet, cts.URL+"/cluster", "")
		for _, wi := range decodeT[ClusterTopology](t, data).Workers {
			if wi.URL == owner.url {
				return !wi.Ready
			}
		}
		return false
	})

	resp, data = doReq(t, http.MethodPost, cts.URL+"/graphs/"+name+"/solve", `{"timeout":"30s"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after owner death: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Mbb-Worker"); got == owner.url {
		t.Fatalf("solve answered by the dead owner %s", got)
	}
	job := decodeT[server.JobInfo](t, data)
	if job.Result == nil || job.Result.Epoch != 1 {
		t.Fatalf("post-failure solve result %+v, want epoch 1", job)
	}

	resp, data = doReq(t, http.MethodPost, cts.URL+"/graphs/"+name+"/edges", `{"del":[[0,1]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation with dead owner: %d %s, want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for dead-owner mutation lacks Retry-After")
	}
}

// TestReplicaLagGate pins the no-stale-serve satellite: once the owner
// stops streaming and the replica's lag passes MaxReplicaLag, replica
// solves return 503 + Retry-After instead of quietly serving old state.
func TestReplicaLagGate(t *testing.T) {
	workers := startCluster(t, 2, 2, 100*time.Millisecond)
	ring := workers[0].tm.Ring()
	name := pickName(t, ring, workers[0].url)
	owner, replica := workers[0], workers[1]

	resp, data := doReq(t, http.MethodPut, owner.url+"/graphs/"+name, k33)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT at owner: %d %s", resp.StatusCode, data)
	}
	waitFor(t, 10*time.Second, "replica to receive the graph", func() bool {
		resp, _ := doReq(t, http.MethodGet, replica.url+"/graphs/"+name, "")
		return resp.StatusCode == http.StatusOK
	})
	waitFor(t, 10*time.Second, "replica solve to pass the gate", func() bool {
		resp, _ := doReq(t, http.MethodPost, replica.url+"/graphs/"+name+"/solve", `{"timeout":"30s"}`)
		return resp.StatusCode == http.StatusOK
	})

	owner.kill()
	var last *http.Response
	waitFor(t, 10*time.Second, "lag gate to trip after owner death", func() bool {
		resp, _ := doReq(t, http.MethodPost, replica.url+"/graphs/"+name+"/solve", `{"timeout":"30s"}`)
		last = resp
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("lag-gated 503 lacks Retry-After")
	}
	// The gate also feeds readiness: a lag-bound replica drops out of
	// rotation instead of serving stale answers.
	resp, data = doReq(t, http.MethodGet, replica.url+"/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lagging replica /readyz: %d %s, want 503", resp.StatusCode, data)
	}
}

// TestApplyReplicaVersionSkew pins the codec-skew satellite: a frame
// carrying a newer codec version is rejected before any state changes —
// no partial apply, and the stream position does not move past it.
func TestApplyReplicaVersionSkew(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	st := srv.Store()

	g, err := st.Parse(strings.NewReader(k33), server.FormatEdgeList)
	if err != nil {
		t.Fatal(err)
	}
	payload := g.MarshalBinary()

	// A skewed full-graph record never installs.
	bad := append([]byte(nil), payload...)
	bad[2] = 99 // codec version byte
	if err := st.ApplyReplica(wal.Record{Type: wal.RecPut, Name: "skewed", Gen: 1, Payload: bad}, false); err == nil {
		t.Fatal("version-skewed graph record applied")
	}
	if _, ok := st.Get("skewed"); ok {
		t.Fatal("skewed record left a graph behind (partial apply)")
	}

	// Install a clean replica copy, then hit it with a skewed delta.
	if err := st.ApplyReplica(wal.Record{Type: wal.RecPut, Name: "g", Gen: 1, Payload: payload}, false); err != nil {
		t.Fatal(err)
	}
	enc, err := bigraph.Delta{Del: [][2]int{{0, 0}}}.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	badDelta := append([]byte(nil), enc...)
	badDelta[2] = 99
	if err := st.ApplyReplica(wal.Record{Type: wal.RecDelta, Name: "g", Gen: 1, Epoch: 1, Payload: badDelta}, false); err == nil {
		t.Fatal("version-skewed delta applied")
	}
	sg, _ := st.Get("g")
	if sg.Info().Epoch != 0 {
		t.Fatalf("skewed delta moved the epoch to %d", sg.Info().Epoch)
	}

	// The same delta with the right version applies cleanly afterwards:
	// the rejection left no poisoned state.
	if err := st.ApplyReplica(wal.Record{Type: wal.RecDelta, Name: "g", Gen: 1, Epoch: 1, Payload: enc}, false); err != nil {
		t.Fatal(err)
	}
	if sg.Info().Epoch != 1 {
		t.Fatalf("clean delta after rejection: epoch %d, want 1", sg.Info().Epoch)
	}

	// An out-of-sequence delta is the resync signal, not a crash.
	if err := st.ApplyReplica(wal.Record{Type: wal.RecDelta, Name: "g", Gen: 1, Epoch: 5, Payload: enc}, false); !errors.Is(err, server.ErrReplicaGap) {
		t.Fatalf("epoch-gap delta: %v, want ErrReplicaGap", err)
	}
}

// TestCoordinatorAdmission pins the admission-control split: every
// candidate refusing with 503 means saturation (429, short retry); no
// ready candidate at all means outage (503, long retry).
func TestCoordinatorAdmission(t *testing.T) {
	ready := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ready":true,"synced":true}`)
	}
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			ready(w, r)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(busy.Close)
	busy2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			ready(w, r)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(busy2.Close)

	coord, err := NewCoordinator(CoordinatorConfig{
		Peers: []string{busy.URL, busy2.URL}, Replication: 2, ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	waitFor(t, 5*time.Second, "stub workers ready", func() bool {
		resp, _ := doReq(t, http.MethodGet, cts.URL+"/readyz", "")
		return resp.StatusCode == http.StatusOK
	})

	// Both candidates answer 503: the cluster is saturated → 429.
	resp, data := doReq(t, http.MethodPost, cts.URL+"/graphs/any/solve", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: %d %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("429 Retry-After %q, want 1", resp.Header.Get("Retry-After"))
	}

	// Kill both: no ready candidate → 503 with the longer retry.
	busy.Close()
	busy2.Close()
	waitFor(t, 5*time.Second, "stub workers marked down", func() bool {
		resp, _ := doReq(t, http.MethodGet, cts.URL+"/readyz", "")
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, data = doReq(t, http.MethodPost, cts.URL+"/graphs/any/solve", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-worker solve: %d %s, want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") != "5" {
		t.Fatalf("503 Retry-After %q, want 5", resp.Header.Get("Retry-After"))
	}
}
