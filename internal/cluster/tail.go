package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// Config configures a worker's cluster membership.
type Config struct {
	// Self is this worker's URL exactly as it appears in Peers.
	Self string
	// Peers is every worker URL on the ring, self included.
	Peers []string
	// Vnodes is the ring's virtual-node count; must match across the
	// cluster. Default DefaultVnodes.
	Vnodes int
	// Replication is how many workers hold each graph, owner included.
	// Default 2; clamped to the ring size. 1 disables replication
	// (sharding only).
	Replication int
	// Warm builds plans eagerly for replicated graph installs, like
	// -warm-recovery does for WAL replay.
	Warm bool
	// Client performs the /replicate requests. Default: a dedicated
	// client with no overall timeout (the streams are unbounded).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: Self URL is required")
	}
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Peers) {
		c.Replication = len(c.Peers)
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
			break
		}
	}
	if !found {
		return c, fmt.Errorf("cluster: self %q is not in the peer list %v", c.Self, c.Peers)
	}
	return c, nil
}

// TailManager follows peers' /replicate delta streams and applies the
// records this worker replicates (graphs whose ring owner is the
// streamed peer and whose replica set includes self) into the local
// store through Store.ApplyReplica. It implements server.ClusterInfo,
// so the server's handlers enforce ownership (421 on misdirected
// mutations) and lag bounds (503 on stale replica solves) through it.
type TailManager struct {
	cfg   Config
	ring  *Ring
	store *server.Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	applied atomic.Int64
	resyncs atomic.Int64

	streams map[string]*tailStream // keyed by peer URL; empty when Replication == 1
}

// tailStream is one peer's replication stream state.
type tailStream struct {
	peer string

	mu        sync.Mutex
	pos       wal.Pos // resume position in the peer's log coordinates
	connected bool
	synced    bool      // completed initial catch-up (sticky across reconnects)
	lagSince  time.Time // zero while connected and caught up
	failed    error     // sticky apply/protocol failure (cleared by a clean catch-up)
}

// NewTailManager builds the manager; Start begins tailing.
func NewTailManager(store *server.Store, cfg Config) (*TailManager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Peers, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &TailManager{cfg: cfg, ring: ring, store: store, ctx: ctx, cancel: cancel, streams: make(map[string]*tailStream)}
	if cfg.Replication >= 2 {
		for _, p := range ring.Nodes() {
			if p != cfg.Self {
				m.streams[p] = &tailStream{peer: p}
			}
		}
	}
	return m, nil
}

// Ring exposes the manager's hash ring (the coordinator test harness
// and mbbsoak use it to pick owners).
func (m *TailManager) Ring() *Ring { return m.ring }

// Start launches one tail goroutine per peer. Call after the local
// store has recovered (server.New returned), so replicated state lands
// on a settled store.
func (m *TailManager) Start() {
	for _, st := range m.streams {
		m.wg.Add(1)
		go m.run(st)
	}
}

// Close stops every stream and waits for the tail goroutines.
func (m *TailManager) Close() {
	m.cancel()
	m.wg.Wait()
}

// OwnerOf implements server.ClusterInfo.
func (m *TailManager) OwnerOf(name string) (string, bool) {
	owner := m.ring.Owner(name)
	return owner, owner == m.cfg.Self
}

// ReplicaOf implements server.ClusterInfo.
func (m *TailManager) ReplicaOf(name string) bool {
	for _, p := range m.ring.Replicas(name, m.cfg.Replication)[1:] {
		if p == m.cfg.Self {
			return true
		}
	}
	return false
}

// Lag implements server.ClusterInfo: the replication state of the
// stream from the named graph's owner. A disconnected stream counts as
// lagging from the moment it broke — the replica cannot tell a dead
// owner (safe to serve: no writes are landing anywhere) from a
// partition (its data may be going stale), so the lag bound is the
// operator's knob for how long to keep serving under that uncertainty.
func (m *TailManager) Lag(name string) (time.Duration, bool) {
	owner := m.ring.Owner(name)
	if owner == m.cfg.Self {
		return 0, true
	}
	st, ok := m.streams[owner]
	if !ok {
		return 0, false // not replicating that peer at all
	}
	return st.state()
}

// Status implements server.ClusterInfo.
func (m *TailManager) Status() server.ClusterStatus {
	cs := server.ClusterStatus{
		Self:    m.cfg.Self,
		Peers:   len(m.ring.Nodes()),
		Synced:  true,
		Applied: m.applied.Load(),
		Resyncs: m.resyncs.Load(),
	}
	for _, st := range m.streams {
		lag, synced := st.state()
		st.mu.Lock()
		connected := st.connected
		st.mu.Unlock()
		if connected {
			cs.Streams++
		}
		if !synced {
			cs.Synced = false
		}
		if lag > cs.MaxLag {
			cs.MaxLag = lag
		}
	}
	return cs
}

func (st *tailStream) state() (lag time.Duration, synced bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.lagSince.IsZero() {
		lag = time.Since(st.lagSince)
	}
	return lag, st.synced && st.failed == nil
}

// run reconnects the peer's stream forever, backing off on failures.
// Sticky apply failures (codec version skew, divergence) retry on the
// longest backoff: the record cannot be skipped, but the peer may be
// rolled to a compatible version later.
func (m *TailManager) run(st *tailStream) {
	defer m.wg.Done()
	const minBackoff, maxBackoff, failedBackoff = 250 * time.Millisecond, 2 * time.Second, 5 * time.Second
	backoff := minBackoff
	for m.ctx.Err() == nil {
		applied, err := m.streamOnce(st)
		if m.ctx.Err() != nil {
			return
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("cluster: replicate stream from %s: %v", st.peer, err)
		}
		st.mu.Lock()
		st.connected = false
		if st.lagSince.IsZero() {
			st.lagSince = time.Now()
		}
		sticky := st.failed != nil
		st.mu.Unlock()
		if applied > 0 {
			backoff = minBackoff
		}
		wait := backoff
		if sticky {
			wait = failedBackoff
		} else if backoff < maxBackoff {
			backoff *= 2
		}
		select {
		case <-m.ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// streamOnce runs one /replicate connection to completion, applying
// replicated records and tracking catch-up state. It returns how many
// records it applied and the error that ended the stream.
func (m *TailManager) streamOnce(st *tailStream) (int64, error) {
	st.mu.Lock()
	pos := st.pos
	st.mu.Unlock()
	url := st.peer + "/replicate"
	if !pos.IsZero() {
		url += "?pos=" + pos.String()
	}
	req, err := http.NewRequestWithContext(m.ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := m.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if v, err := strconv.Atoi(resp.Header.Get(wal.StreamProtoHeader)); err != nil || v != wal.StreamProtoVersion {
		// A protocol we cannot parse: refuse the stream rather than
		// guess at frame layouts. Sticky until the peer speaks ours.
		err := fmt.Errorf("replication protocol version %q from %s (want %d)", resp.Header.Get(wal.StreamProtoHeader), st.peer, wal.StreamProtoVersion)
		st.fail(err)
		return 0, err
	}
	// The server names the position it actually serves from — our
	// requested resume point, or its oldest byte when compaction (or a
	// log rebuild) dropped ours. Adopt it so positions and heartbeats
	// compare in the same coordinates.
	start, err := wal.ParsePos(resp.Header.Get(wal.StreamStartHeader))
	if err != nil {
		return 0, fmt.Errorf("bad %s header from %s: %v", wal.StreamStartHeader, st.peer, err)
	}
	st.mu.Lock()
	if start != st.pos {
		if !st.pos.IsZero() {
			m.resyncs.Add(1)
			st.synced = false // re-reading history; caught-up again at the next covering heartbeat
		}
		st.pos = start
	}
	st.connected = true
	st.mu.Unlock()

	var applied int64
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		msg, err := wal.ReadStreamMsg(br)
		if err != nil {
			return applied, err
		}
		switch msg.Kind {
		case wal.StreamHeartbeat:
			st.observeEnd(msg.Pos)
		case wal.StreamRecord:
			if m.replicates(st.peer, msg.Rec) {
				if err := m.store.ApplyReplica(msg.Rec, m.cfg.Warm); err != nil {
					if errors.Is(err, server.ErrReplicaGap) {
						// The stream skipped state we need; restart it
						// from the owner's oldest segment (complete
						// state at its checkpoint head).
						m.resyncs.Add(1)
						st.mu.Lock()
						st.pos = wal.Pos{}
						st.synced = false
						st.mu.Unlock()
						return applied, err
					}
					// A record we cannot apply — codec version skew or
					// divergence. The position does NOT advance past
					// it (no partial or skipped apply); the stream is
					// unsynced until an operator fixes the skew.
					st.fail(err)
					return applied, err
				}
				m.applied.Add(1)
				applied++
			}
			st.advance(msg.Pos)
		}
	}
}

// replicates reports whether rec, arriving on peer's stream, is a
// graph this worker replicates from that peer. Records without a name
// (checkpoint-end) and graphs owned elsewhere or not replicated here
// are filtered out — the position still advances past them.
func (m *TailManager) replicates(peer string, rec wal.Record) bool {
	if rec.Name == "" {
		return false
	}
	if m.ring.Owner(rec.Name) != peer {
		return false
	}
	return m.ReplicaOf(rec.Name)
}

func (st *tailStream) advance(pos wal.Pos) {
	st.mu.Lock()
	st.pos = pos
	st.mu.Unlock()
}

// observeEnd folds a heartbeat (the owner's log end) into the lag
// state: at or past it we are caught up — synced, zero lag, and any
// sticky failure is cleared (the bad record was compacted away or the
// peer was fixed); behind it, the lag clock starts if it wasn't
// already running.
func (st *tailStream) observeEnd(end wal.Pos) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !end.After(st.pos) {
		st.synced = true
		st.failed = nil
		st.lagSince = time.Time{}
	} else if st.lagSince.IsZero() {
		st.lagSince = time.Now()
	}
}

func (st *tailStream) fail(err error) {
	st.mu.Lock()
	st.failed = err
	if st.lagSince.IsZero() {
		st.lagSince = time.Now()
	}
	st.mu.Unlock()
}
