package cluster

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
)

func jr(epoch uint64, size int, exact bool, gap int, list ...server.BicliqueJSON) server.JobResult {
	side := make([]int, size)
	for i := range side {
		side[i] = i
	}
	return server.JobResult{
		Size: size, A: side, B: side, Exact: exact, Gap: gap,
		Epoch: epoch, Bicliques: list,
	}
}

func mergedSizes(r server.JobResult) []int {
	out := make([]int, len(r.Bicliques))
	for i, bc := range r.Bicliques {
		out[i] = bc.Size
	}
	return out
}

func TestMergeTopKEmpty(t *testing.T) {
	if _, ok := MergeTopK(2, nil); ok {
		t.Fatal("empty merge reported a result")
	}
}

// TestMergeTopKEpochDiscipline: results at different epochs answer for
// different graphs; only the newest epoch participates, however good the
// stale answers look.
func TestMergeTopKEpochDiscipline(t *testing.T) {
	merged, ok := MergeTopK(2,
		[]server.JobResult{
			jr(3, 5, true, 0), // stale but exact and larger
			jr(7, 2, false, 1),
			jr(7, 3, false, 2),
		})
	if !ok || merged.Epoch != 7 {
		t.Fatalf("merged %+v", merged)
	}
	if merged.Size != 3 || merged.Exact {
		t.Fatalf("stale contributor leaked into %+v", merged)
	}
	if merged.Gap != 1 {
		t.Fatalf("gap %d, want the smallest same-epoch gap 1", merged.Gap)
	}
	if got := mergedSizes(merged); !reflect.DeepEqual(got, []int{3, 2}) {
		t.Fatalf("sizes %v, want [3 2]", got)
	}
}

func TestMergeTopKDistinctAndTruncated(t *testing.T) {
	list1 := []server.BicliqueJSON{
		{Size: 4, A: []int{0, 1, 2, 3}, B: []int{0, 1, 2, 3}},
		{Size: 2, A: []int{0, 1}, B: []int{0, 1}},
	}
	list2 := []server.BicliqueJSON{
		{Size: 4, A: []int{9, 8, 7, 6}, B: []int{9, 8, 7, 6}}, // duplicate size: first wins
		{Size: 3, A: []int{0, 1, 2}, B: []int{0, 1, 2}},
		{Size: 1, A: []int{0}, B: []int{0}},
	}
	merged, ok := MergeTopK(3, []server.JobResult{
		jr(1, 4, true, 0, list1...),
		jr(1, 4, true, 0, list2...),
	})
	if !ok {
		t.Fatal("merge failed")
	}
	if got := mergedSizes(merged); !reflect.DeepEqual(got, []int{4, 3, 2}) {
		t.Fatalf("sizes %v, want [4 3 2] (distinct, descending, truncated to 3)", got)
	}
	if !reflect.DeepEqual(merged.Bicliques[0].A, []int{0, 1, 2, 3}) {
		t.Fatalf("size-4 witness replaced by a later contributor: %+v", merged.Bicliques[0])
	}
	if merged.Size != 4 || !reflect.DeepEqual(merged.A, merged.Bicliques[0].A) {
		t.Fatalf("scalar head %d/%v disagrees with list head", merged.Size, merged.A)
	}
	if !merged.Exact || merged.Gap != 0 {
		t.Fatalf("exact contributors: exact=%v gap=%d", merged.Exact, merged.Gap)
	}
}

// TestMergeTopKScalarOnly: scalar (k ≤ 1) merges keep the best same-epoch
// answer without growing a list, and one exact contributor closes the
// gap for the whole merge.
func TestMergeTopKScalarOnly(t *testing.T) {
	merged, ok := MergeTopK(0, []server.JobResult{
		jr(2, 2, false, 3),
		jr(2, 4, true, 0),
		jr(2, 3, false, 2),
	})
	if !ok {
		t.Fatal("merge failed")
	}
	if merged.Bicliques != nil {
		t.Fatalf("scalar merge grew a list: %+v", merged.Bicliques)
	}
	if merged.Size != 4 || !merged.Exact || merged.Gap != 0 {
		t.Fatalf("merged %+v, want exact size 4 with gap 0", merged)
	}
}

// TestSolveAllEndToEnd fans a top-k solve across a replicated pair via
// the coordinator's /solveall and checks the merged per-epoch answer.
func TestSolveAllEndToEnd(t *testing.T) {
	workers := startCluster(t, 2, 2, 0)
	coord, err := NewCoordinator(CoordinatorConfig{
		Peers: []string{workers[0].url, workers[1].url}, Replication: 2,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	cts := srv.URL

	waitFor(t, 5*time.Second, "cluster ready", func() bool {
		resp, _ := doReq(t, http.MethodGet, cts+"/readyz", "")
		return resp.StatusCode == http.StatusOK
	})
	// K3,3 plus a disjoint edge: distinct balanced sizes 3 and 1.
	two := "4 4 10\n0 0\n0 1\n0 2\n1 0\n1 1\n1 2\n2 0\n2 1\n2 2\n3 3\n"
	resp, data := doReq(t, http.MethodPut, cts+"/graphs/two", two)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, data)
	}

	var sa SolveAllResponse
	waitFor(t, 10*time.Second, "replicas ready for solveall", func() bool {
		resp, data := doReq(t, http.MethodPost, cts+"/graphs/two/solveall?k=2", "")
		if resp.StatusCode != http.StatusOK {
			return false
		}
		sa = decodeT[SolveAllResponse](t, data)
		return true
	})
	if !sa.Result.Exact || sa.Result.Size != 3 {
		t.Fatalf("merged result %+v", sa.Result)
	}
	if got := mergedSizes(sa.Result); !reflect.DeepEqual(got, []int{3, 1}) {
		t.Fatalf("merged sizes %v, want [3 1]", got)
	}
	if len(sa.Workers) == 0 || sa.Epoch != sa.Result.Epoch {
		t.Fatalf("response bookkeeping %+v", sa)
	}
	for _, w := range sa.Workers {
		for _, s := range sa.Skipped {
			if w == s {
				t.Fatalf("worker %s both contributed and skipped", w)
			}
		}
	}

	// Nonsense k is refused up front.
	for _, q := range []string{"?k=abc", "?k=-1"} {
		resp, data := doReq(t, http.MethodPost, cts+"/graphs/two/solveall"+q, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("solveall%s: %d %s, want 400", q, resp.StatusCode, data)
		}
	}
}
