package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestScratchNilExec(t *testing.T) {
	var e *Exec
	key := new(ScratchKey)
	if v := e.GetScratch(key); v != nil {
		t.Fatalf("nil Exec GetScratch = %v, want nil", v)
	}
	e.PutScratch(key, 42) // must not panic
}

func TestScratchRoundTrip(t *testing.T) {
	e := Background()
	key := new(ScratchKey)
	if v := e.GetScratch(key); v != nil {
		t.Fatalf("empty GetScratch = %v, want nil", v)
	}
	s := &struct{ n int }{n: 7}
	e.PutScratch(key, s)
	if v := e.GetScratch(key); v != s {
		t.Fatalf("GetScratch = %v, want the released value", v)
	}
	if v := e.GetScratch(key); v != nil {
		t.Fatalf("second GetScratch = %v, want nil (value is held)", v)
	}
}

func TestScratchKeysDoNotCollide(t *testing.T) {
	e := Background()
	k1, k2 := new(ScratchKey), new(ScratchKey)
	e.PutScratch(k1, "one")
	if v := e.GetScratch(k2); v != nil {
		t.Fatalf("key 2 observed key 1's value: %v", v)
	}
	if v := e.GetScratch(k1); v != "one" {
		t.Fatalf("key 1 lost its value: %v", v)
	}
}

// scratchProbe detects concurrent sharing: holding goroutines flip held
// from 0 to 1 and back, so any overlap trips the check (and the data
// races on payload would trip the race detector).
type scratchProbe struct {
	held    atomic.Int32
	payload int
}

// TestScratchExclusiveUnderConcurrency is the per-worker isolation
// assertion: scratch values handed out by one Exec are never observed
// by two concurrent holders. Run under -race this also proves the
// unsynchronized payload writes are safe, i.e. ownership transfer
// through Get/PutScratch is a proper happens-before edge.
func TestScratchExclusiveUnderConcurrency(t *testing.T) {
	e := Background()
	key := new(ScratchKey)
	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var p *scratchProbe
				if v := e.GetScratch(key); v != nil {
					p = v.(*scratchProbe)
				} else {
					p = &scratchProbe{}
				}
				if !p.held.CompareAndSwap(0, 1) {
					t.Error("scratch value held by two goroutines at once")
					return
				}
				p.payload += seed + i // racy iff exclusivity is broken
				p.held.Store(0)
				e.PutScratch(key, p)
			}
		}(w + 1)
	}
	wg.Wait()
}
