package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bigraph"
)

func bc(a, b []int) bigraph.Biclique { return bigraph.Biclique{A: a, B: b} }

func sizesOf(list []bigraph.Biclique) []int {
	out := make([]int, len(list))
	for i, e := range list {
		out[i] = e.Size()
	}
	return out
}

func TestTopKDistinctDescending(t *testing.T) {
	h := NewTopK(3)
	if h.Bound() != 0 {
		t.Fatalf("empty heap bound = %d, want 0", h.Bound())
	}
	for _, w := range [][2][]int{
		{{1, 2}, {3, 4}},             // size 2
		{{5}, {6}},                   // size 1
		{{1, 2}, {7, 8}},             // size 2 duplicate: first witness wins
		{{0, 1, 2, 3}, {4, 5, 6, 7}}, // size 4
	} {
		h.Offer(bc(w[0], w[1]))
	}
	if got := sizesOf(h.List()); !reflect.DeepEqual(got, []int{4, 2, 1}) {
		t.Fatalf("sizes = %v, want [4 2 1]", got)
	}
	// First witness per size wins: the size-2 entry is still {1,2}/{3,4}.
	two := h.List()[1]
	if !reflect.DeepEqual(two.A, []int{1, 2}) || !reflect.DeepEqual(two.B, []int{3, 4}) {
		t.Fatalf("size-2 witness replaced: %+v", two)
	}
	if h.Bound() != 1 {
		t.Fatalf("full heap bound = %d, want 1 (smallest retained)", h.Bound())
	}
	// Size 3 evicts size 1, bound grows to 2.
	if !h.Offer(bc([]int{9, 10, 11}, []int{12, 13, 14})) {
		t.Fatal("size 3 should be retained")
	}
	if got := sizesOf(h.List()); !reflect.DeepEqual(got, []int{4, 3, 2}) {
		t.Fatalf("sizes = %v, want [4 3 2]", got)
	}
	if h.Bound() != 2 {
		t.Fatalf("bound = %d, want 2", h.Bound())
	}
	// At or below the bound is rejected without locking.
	if h.Offer(bc([]int{1, 2}, []int{9, 9})) {
		t.Fatal("size at bound must be rejected")
	}
	if h.Offer(bc(nil, nil)) {
		t.Fatal("empty witness must be rejected")
	}
}

func TestTopKCopiesAndTrims(t *testing.T) {
	h := NewTopK(2)
	a := []int{4, 1, 9} // unbalanced: size is min side = 2
	b := []int{7, 3}
	h.Offer(bc(a, b))
	a[0], b[0] = 99, 99 // caller keeps ownership; heap must have copied
	got := h.List()[0]
	if !reflect.DeepEqual(got.A, []int{1, 4}) || !reflect.DeepEqual(got.B, []int{3, 7}) {
		t.Fatalf("witness not copied+trimmed+sorted: %+v", got)
	}
}

func TestTopKDegenerateK(t *testing.T) {
	h := NewTopK(0)
	if h.K() != 1 {
		t.Fatalf("k<1 must clamp to 1, got %d", h.K())
	}
	h.Offer(bc([]int{1}, []int{2}))
	h.Offer(bc([]int{1, 2}, []int{3, 4}))
	if got := sizesOf(h.List()); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("k=1 heap holds %v, want [2]", got)
	}
	if h.Bound() != 2 {
		t.Fatalf("k=1 bound = %d, want the single incumbent", h.Bound())
	}
}

func TestTopKConcurrentOffers(t *testing.T) {
	h := NewTopK(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 1; s <= 16; s++ {
				side := make([]int, s)
				for i := range side {
					side[i] = w*100 + i
				}
				h.Offer(bc(side, side))
			}
		}(w)
	}
	wg.Wait()
	if got := sizesOf(h.List()); !reflect.DeepEqual(got, []int{16, 15, 14, 13}) {
		t.Fatalf("sizes = %v, want [16 15 14 13]", got)
	}
	if h.Bound() != 13 {
		t.Fatalf("bound = %d, want 13", h.Bound())
	}
}
