package core

import (
	"testing"
	"time"
)

func TestBudgetNil(t *testing.T) {
	var b *Budget
	if !b.Spend() {
		t.Fatal("nil budget must be unlimited")
	}
	if b.Exceeded() {
		t.Fatal("nil budget never exceeds")
	}
	if b.Nodes() != 0 {
		t.Fatal("nil budget has no nodes")
	}
}

func TestBudgetZeroValueUnlimited(t *testing.T) {
	b := &Budget{}
	for i := 0; i < 10000; i++ {
		if !b.Spend() {
			t.Fatal("zero budget must be unlimited")
		}
	}
	if b.Nodes() != 10000 {
		t.Fatalf("nodes = %d", b.Nodes())
	}
}

func TestBudgetMaxNodes(t *testing.T) {
	b := &Budget{MaxNodes: 3}
	for i := 0; i < 3; i++ {
		if !b.Spend() {
			t.Fatalf("spend %d should succeed", i)
		}
	}
	if b.Spend() {
		t.Fatal("fourth spend should fail")
	}
	if !b.Exceeded() {
		t.Fatal("budget should report exceeded")
	}
	// Once exceeded, stays exceeded.
	if b.Spend() {
		t.Fatal("spend after exceeded should fail")
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := &Budget{Deadline: time.Now().Add(-time.Second)}
	// The deadline is only polled every 1024 nodes.
	ok := true
	for i := 0; i < 2048 && ok; i++ {
		ok = b.Spend()
	}
	if ok {
		t.Fatal("expired deadline not detected within 2048 spends")
	}
}

func TestNewTimeBudget(t *testing.T) {
	if b := NewTimeBudget(0); !b.Deadline.IsZero() {
		t.Fatal("non-positive duration should mean unlimited")
	}
	b := NewTimeBudget(time.Hour)
	if b.Deadline.IsZero() {
		t.Fatal("deadline not set")
	}
	if !b.Spend() {
		t.Fatal("fresh hour budget should allow spending")
	}
}

func TestStepString(t *testing.T) {
	cases := map[Step]string{Step1: "S1", Step2: "S2", Step3: "S3", StepNone: "-", Step(9): "-"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Nodes: 1, PolyCases: 2, Reductions: 3, Subgraphs: 4,
		SubgraphsPruned: 5, SumSearchDepth: 6, SearchSamples: 2,
		SumSubDensity: 0.5, DensitySamples: 1, SumSubVertices: 7,
		Step: Step1, Bidegeneracy: 3}
	b := Stats{Nodes: 10, PolyCases: 20, Reductions: 30, Subgraphs: 40,
		SubgraphsPruned: 50, SumSearchDepth: 60, SearchSamples: 3,
		SumSubDensity: 1.5, DensitySamples: 3, SumSubVertices: 70,
		Step: Step3, Bidegeneracy: 2, TimedOut: true}
	a.Merge(&b)
	if a.Nodes != 11 || a.PolyCases != 22 || a.Reductions != 33 {
		t.Fatalf("counter merge wrong: %+v", a)
	}
	if a.Subgraphs != 44 || a.SubgraphsPruned != 55 || a.SumSubVertices != 77 {
		t.Fatalf("subgraph merge wrong: %+v", a)
	}
	if a.Step != Step3 {
		t.Fatalf("step merge = %v", a.Step)
	}
	if a.Bidegeneracy != 3 {
		t.Fatalf("bidegeneracy merge = %d", a.Bidegeneracy)
	}
	if !a.TimedOut {
		t.Fatal("timeout not merged")
	}
}

func TestStatsAverages(t *testing.T) {
	var s Stats
	if s.AvgSearchDepth() != 0 || s.AvgSubgraphDensity() != 0 {
		t.Fatal("empty stats should average to 0")
	}
	s.SumSearchDepth = 10
	s.SearchSamples = 4
	if got := s.AvgSearchDepth(); got != 2.5 {
		t.Fatalf("AvgSearchDepth = %v", got)
	}
	s.SumSubDensity = 1.0
	s.DensitySamples = 2
	if got := s.AvgSubgraphDensity(); got != 0.5 {
		t.Fatalf("AvgSubgraphDensity = %v", got)
	}
}
