package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestExecNil(t *testing.T) {
	var e *Exec
	if !e.Spend() {
		t.Fatal("nil exec must be unlimited")
	}
	if e.Stopped() {
		t.Fatal("nil exec never stops")
	}
	if e.Nodes() != 0 || e.Best() != 0 || e.Err() != nil {
		t.Fatal("nil exec has no state")
	}
	if e.OfferBest(5) {
		t.Fatal("nil exec accepts no incumbent")
	}
	e.Stop()
	e.AddStats(&Stats{Nodes: 1})
	if s := e.Snapshot(); s.Nodes != 0 {
		t.Fatal("nil exec aggregates nothing")
	}
}

func TestExecUnlimited(t *testing.T) {
	e := Background()
	for i := 0; i < 10000; i++ {
		if !e.Spend() {
			t.Fatal("unlimited exec must always allow spending")
		}
	}
	if e.Nodes() != 10000 {
		t.Fatalf("nodes = %d", e.Nodes())
	}
}

func TestExecMaxNodes(t *testing.T) {
	e := NewExec(nil, Limits{MaxNodes: 3})
	for i := 0; i < 3; i++ {
		if !e.Spend() {
			t.Fatalf("spend %d should succeed", i)
		}
	}
	if e.Spend() {
		t.Fatal("fourth spend should fail")
	}
	if !e.Stopped() {
		t.Fatal("exec should report stopped")
	}
	// Once stopped, stays stopped.
	if e.Spend() {
		t.Fatal("spend after stop should fail")
	}
}

func TestExecDeadline(t *testing.T) {
	e := NewExec(nil, Limits{Deadline: time.Now().Add(-time.Second)})
	// The deadline is only polled every 1024 nodes.
	ok := true
	for i := 0; i < 2048 && ok; i++ {
		ok = e.Spend()
	}
	if ok {
		t.Fatal("expired deadline not detected within 2048 spends")
	}
}

func TestExecTimeout(t *testing.T) {
	e := NewExec(nil, Limits{Timeout: time.Hour})
	if e.deadline.IsZero() {
		t.Fatal("timeout should set a deadline")
	}
	if !e.Spend() {
		t.Fatal("fresh hour budget should allow spending")
	}
	// The earliest of Timeout and Deadline wins.
	past := time.Now().Add(-time.Minute)
	e = NewExec(nil, Limits{Timeout: time.Hour, Deadline: past})
	if !e.deadline.Equal(past) {
		t.Fatal("explicit earlier deadline should win")
	}
}

func TestExecContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewExec(ctx, Limits{})
	if !e.Spend() {
		t.Fatal("live context should allow spending")
	}
	cancel()
	if !e.Stopped() {
		t.Fatal("cancelled context should stop the exec immediately")
	}
	if e.Err() == nil {
		t.Fatal("Err should surface the context error")
	}
	ok := true
	for i := 0; i < 2048 && ok; i++ {
		ok = e.Spend()
	}
	if ok {
		t.Fatal("cancelled context not detected within 2048 spends")
	}
}

func TestExecContextDeadlineAdopted(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Minute))
	defer cancel()
	e := NewExec(ctx, Limits{Timeout: time.Hour})
	d, _ := ctx.Deadline()
	if !e.deadline.Equal(d) {
		t.Fatal("context deadline earlier than timeout should win")
	}
}

func TestExecStop(t *testing.T) {
	e := Background()
	e.Stop()
	if e.Spend() || !e.Stopped() {
		t.Fatal("Stop should halt all spending")
	}
}

func TestExecOfferBest(t *testing.T) {
	e := Background()
	if e.Best() != 0 {
		t.Fatal("fresh incumbent should be 0")
	}
	if !e.OfferBest(3) || e.Best() != 3 {
		t.Fatal("first offer should install")
	}
	if e.OfferBest(3) || e.OfferBest(2) {
		t.Fatal("equal or smaller offers must be rejected")
	}
	if !e.OfferBest(5) || e.Best() != 5 {
		t.Fatal("larger offer should install")
	}
}

// TestExecConcurrent hammers the shared state from many goroutines; run
// with -race to catch sharing bugs.
func TestExecConcurrent(t *testing.T) {
	e := NewExec(nil, Limits{MaxNodes: 50000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				e.Spend()
				e.OfferBest(i % 97)
				if i%1000 == 0 {
					e.AddStats(&Stats{Nodes: 1, Subgraphs: int64(w)})
				}
			}
		}()
	}
	wg.Wait()
	if !e.Stopped() {
		t.Fatal("80000 spends must exhaust a 50000-node budget")
	}
	if n := e.Nodes(); n < 50000 {
		t.Fatalf("nodes = %d, want >= 50000", n)
	}
	if e.Best() != 96 {
		t.Fatalf("best = %d, want 96", e.Best())
	}
	if s := e.Snapshot(); s.Nodes != 80 {
		t.Fatalf("aggregated stats nodes = %d, want 80", s.Nodes)
	}
}

func TestStepString(t *testing.T) {
	cases := map[Step]string{Step1: "S1", Step2: "S2", Step3: "S3", StepNone: "-", Step(9): "-"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Nodes: 1, PolyCases: 2, Reductions: 3, Subgraphs: 4,
		SubgraphsPruned: 5, SumSearchDepth: 6, SearchSamples: 2,
		SumSubDensity: 0.5, DensitySamples: 1, SumSubVertices: 7,
		Step: Step1, Bidegeneracy: 3}
	b := Stats{Nodes: 10, PolyCases: 20, Reductions: 30, Subgraphs: 40,
		SubgraphsPruned: 50, SumSearchDepth: 60, SearchSamples: 3,
		SumSubDensity: 1.5, DensitySamples: 3, SumSubVertices: 70,
		Step: Step3, Bidegeneracy: 2, TimedOut: true}
	a.Merge(&b)
	if a.Nodes != 11 || a.PolyCases != 22 || a.Reductions != 33 {
		t.Fatalf("counter merge wrong: %+v", a)
	}
	if a.Subgraphs != 44 || a.SubgraphsPruned != 55 || a.SumSubVertices != 77 {
		t.Fatalf("subgraph merge wrong: %+v", a)
	}
	if a.Step != Step3 {
		t.Fatalf("step merge = %v", a.Step)
	}
	if a.Bidegeneracy != 3 {
		t.Fatalf("bidegeneracy merge = %d", a.Bidegeneracy)
	}
	if !a.TimedOut {
		t.Fatal("timeout not merged")
	}
}

func TestStatsAverages(t *testing.T) {
	var s Stats
	if s.AvgSearchDepth() != 0 || s.AvgSubgraphDensity() != 0 {
		t.Fatal("empty stats should average to 0")
	}
	s.SumSearchDepth = 10
	s.SearchSamples = 4
	if got := s.AvgSearchDepth(); got != 2.5 {
		t.Fatalf("AvgSearchDepth = %v", got)
	}
	s.SumSubDensity = 1.0
	s.DensitySamples = 2
	if got := s.AvgSubgraphDensity(); got != 0.5 {
		t.Fatalf("AvgSubgraphDensity = %v", got)
	}
}
