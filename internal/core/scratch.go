package core

// Per-worker scratch recycling. The solver layers (internal/dense,
// internal/sparse) keep large reusable arenas — bitset pools, candidate
// lists, peeling queues — that must be reused across the many solves one
// execution context runs (per-component plan solves, per-subgraph
// verification) without ever being shared by two concurrent solves.
//
// The Exec owns those arenas: GetScratch hands a previously released
// value back to exactly one caller (or nil when none is free, in which
// case the caller allocates a fresh one and releases it when done), and
// PutScratch returns it for the next solve on the same context. Because
// a value is removed from the free list while held, ownership is
// exclusive by construction — two workers can never observe the same
// scratch value at the same time. Keys are compared by identity; each
// package allocates one private key per scratch type so unrelated
// scratch kinds on a shared Exec never collide.
//
// Scratch lives on the Exec rather than in package-level pools so its
// lifetime matches the search: when the context is dropped, every arena
// it accumulated becomes garbage at once, and solves on unrelated
// graphs (different Execs) never exchange possibly huge buffers.

// ScratchKey identifies one kind of scratch value on an Exec. Allocate
// one per scratch type with new(ScratchKey) and keep it package-private.
type ScratchKey struct{ _ byte }

// GetScratch removes and returns a free scratch value previously
// released under key, or nil when none is available (first use, or all
// values are currently held by concurrent solves). A nil Exec always
// returns nil: callers then run with a fresh, unshared value.
func (e *Exec) GetScratch(key *ScratchKey) any {
	if e == nil || key == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	free := e.scratch[key]
	k := len(free)
	if k == 0 {
		return nil
	}
	v := free[k-1]
	free[k-1] = nil
	e.scratch[key] = free[:k-1]
	return v
}

// PutScratch releases v for reuse by a later GetScratch with the same
// key. The caller must not touch v afterwards. No-op on a nil Exec or a
// nil value.
func (e *Exec) PutScratch(key *ScratchKey, v any) {
	if e == nil || key == nil || v == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.scratch == nil {
		e.scratch = make(map[*ScratchKey][]any)
	}
	e.scratch[key] = append(e.scratch[key], v)
}
