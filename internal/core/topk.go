package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bigraph"
)

// TopK is the bounded incumbent heap behind top-k queries: it retains one
// witness for each of the k largest *distinct* balanced sizes offered so
// far. Distinctness is what keeps the query class meaningful — the set of
// balanced bicliques is subset-closed, so "the k largest bicliques"
// without a distinctness rule would always degenerate to trims of the
// single maximum.
//
// The pruning bound (Bound) is published through an atomic so search
// workers can read it on their hot path without taking the mutex: it is
// the smallest retained size once the heap holds k distinct sizes, and 0
// before that. A subtree whose best possible balanced size is ≤ Bound()
// can be skipped — it can neither introduce a new qualifying size nor
// improve a retained one. With k == 1 the bound is exactly the classic
// single incumbent, which is why the scalar Exec.Best fast path and this
// heap answer the same query at k == 1.
//
// Offer is safe for concurrent use; witnesses are copied in.
type TopK struct {
	k     int
	bound atomic.Int64

	mu      sync.Mutex
	entries []bigraph.Biclique // sorted by Size() descending, sizes distinct
}

// NewTopK returns a heap retaining the k largest distinct balanced sizes.
// k values below 1 are treated as 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k}
}

// K returns the heap's capacity in distinct sizes.
func (t *TopK) K() int { return t.k }

// Bound returns the current pruning bound: the smallest retained size
// when the heap is full, 0 otherwise. It only ever grows.
func (t *TopK) Bound() int { return int(t.bound.Load()) }

// Offer submits a balanced biclique witness. It is retained — copied, the
// caller keeps ownership of bc — when its size is positive, not already
// present, and either the heap is not full or the size beats the current
// bound. Reports whether the heap changed.
func (t *TopK) Offer(bc bigraph.Biclique) bool {
	size := bc.Size()
	if size <= 0 || size <= t.Bound() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.entries)
	for i, e := range t.entries {
		if e.Size() == size {
			return false // distinct sizes only; first witness wins
		}
		if e.Size() < size {
			pos = i
			break
		}
	}
	cp := bigraph.Biclique{
		A: append([]int(nil), bc.A[:size]...),
		B: append([]int(nil), bc.B[:size]...),
	}
	sort.Ints(cp.A)
	sort.Ints(cp.B)
	t.entries = append(t.entries, bigraph.Biclique{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = cp
	if len(t.entries) > t.k {
		t.entries = t.entries[:t.k]
	}
	if len(t.entries) == t.k {
		t.bound.Store(int64(t.entries[t.k-1].Size()))
	}
	return true
}

// List returns the retained witnesses, largest size first. The slice is
// fresh; the witnesses are shared and must not be modified.
func (t *TopK) List() []bigraph.Biclique {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]bigraph.Biclique(nil), t.entries...)
}
