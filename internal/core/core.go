// Package core holds the execution spine shared by all MBB solvers: the
// Exec execution context (cancellation, budgets, the shared incumbent
// size and statistics aggregation), search statistics, and the solver
// result envelope. The algorithms themselves live in internal/dense
// (Algorithms 1–3) and internal/sparse (Algorithms 4–8); this package is
// their common vocabulary.
package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigraph"
)

// Limits bounds a search by wall-clock time and/or node count. The zero
// value means "unlimited". Deadline and Timeout may both be set; the
// earlier one wins.
type Limits struct {
	Timeout  time.Duration // 0 means no timeout
	Deadline time.Time     // zero means no deadline
	MaxNodes int64         // 0 means no node limit
}

// Exec is the execution context threaded through every solver layer. It
// combines
//
//   - cancellation: the context passed to NewExec is polled alongside the
//     deadline, so callers can abort a search with context.CancelFunc;
//   - the wall-clock/node budget, consumed via Spend with atomic
//     counters, safe for any number of concurrent workers;
//   - the shared incumbent balanced size (Best/OfferBest), an atomic that
//     lets one worker's improvement immediately tighten the pruning
//     bounds of every other worker;
//   - per-step Stats aggregation (AddStats/Snapshot) under an internal
//     mutex.
//
// The nil *Exec is valid and means "unlimited, nothing shared": Spend
// reports true, Best reports 0, and the aggregation methods are no-ops.
// Every method is safe for concurrent use.
type Exec struct {
	ctx      context.Context
	deadline time.Time
	maxNodes int64

	nodes   atomic.Int64
	stopped atomic.Bool
	best    atomic.Int64

	mu      sync.Mutex
	stats   Stats
	scratch map[*ScratchKey][]any // free per-worker scratch arenas, see scratch.go
}

// NewExec returns an execution context bound to ctx and lim. A nil ctx
// means context.Background(). The effective deadline is the earliest of
// lim.Deadline, now+lim.Timeout and the context's own deadline.
func NewExec(ctx context.Context, lim Limits) *Exec {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &Exec{ctx: ctx, deadline: lim.Deadline, maxNodes: lim.MaxNodes}
	if lim.Timeout > 0 {
		if d := time.Now().Add(lim.Timeout); e.deadline.IsZero() || d.Before(e.deadline) {
			e.deadline = d
		}
	}
	if d, ok := ctx.Deadline(); ok && (e.deadline.IsZero() || d.Before(e.deadline)) {
		e.deadline = d
	}
	if ctx.Err() != nil {
		// Already cancelled: stop before the first node is spent (Spend
		// polls the context only every 1024 nodes, which a small search
		// might never reach).
		e.stopped.Store(true)
	}
	return e
}

// Background returns an unlimited execution context. Prefer this over a
// nil *Exec when the incumbent must be shared across workers.
func Background() *Exec { return NewExec(context.Background(), Limits{}) }

// Spend consumes one search node and reports whether the search may
// continue. It is the per-node hot-path check: the node counter is a
// single atomic add, and the deadline and context are polled only every
// 1024 nodes (a branch-and-bound node is microseconds, so cancellation
// still takes effect promptly).
func (e *Exec) Spend() bool {
	if e == nil {
		return true
	}
	if e.stopped.Load() {
		return false
	}
	n := e.nodes.Add(1)
	if e.maxNodes > 0 && n > e.maxNodes {
		e.stopped.Store(true)
		return false
	}
	if n&1023 == 0 {
		if e.ctx.Err() != nil || (!e.deadline.IsZero() && time.Now().After(e.deadline)) {
			e.stopped.Store(true)
			return false
		}
	}
	return true
}

// Stop cancels the execution from the inside: every subsequent Spend
// reports false across all workers.
func (e *Exec) Stop() {
	if e != nil {
		e.stopped.Store(true)
	}
}

// Stopped reports whether the budget ran out, the context was cancelled,
// or Stop was called.
func (e *Exec) Stopped() bool {
	if e == nil {
		return false
	}
	if e.stopped.Load() {
		return true
	}
	// A cancelled context counts as stopped even before the next poll.
	if e.ctx.Err() != nil {
		e.stopped.Store(true)
		return true
	}
	return false
}

// ShouldStop reports whether new work should not begin: like Stopped, but
// it additionally latches the stop when the wall-clock deadline has
// passed, even before any Spend poll observes it. Call it only BEFORE
// starting a stage or subproblem — the latch marks the run as cut short,
// which is accurate exactly when there is remaining work to skip. Result
// labeling after completed work must keep using Stopped, so a search that
// ran to completion just past its deadline — without ever being cut
// short — is not retroactively marked TimedOut.
func (e *Exec) ShouldStop() bool {
	if e == nil {
		return false
	}
	if e.Stopped() {
		return true
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.stopped.Store(true)
		return true
	}
	return false
}

// Err returns the context error if the context was cancelled, nil
// otherwise (budget exhaustion is reported via Stopped, not Err).
func (e *Exec) Err() error {
	if e == nil {
		return nil
	}
	return e.ctx.Err()
}

// Nodes returns how many nodes were spent so far, across all workers.
func (e *Exec) Nodes() int64 {
	if e == nil {
		return 0
	}
	return e.nodes.Load()
}

// Best returns the shared incumbent balanced size.
func (e *Exec) Best() int {
	if e == nil {
		return 0
	}
	return int(e.best.Load())
}

// OfferBest installs n as the shared incumbent balanced size if it is
// strictly larger than the current one, and reports whether it was. The
// size — not the witness — is shared: workers keep their witnesses local
// and the owner of the search installs the largest one.
func (e *Exec) OfferBest(n int) bool {
	if e == nil {
		return false
	}
	for {
		cur := e.best.Load()
		if int64(n) <= cur {
			return false
		}
		if e.best.CompareAndSwap(cur, int64(n)) {
			return true
		}
	}
}

// AddStats merges other into the aggregated execution statistics.
func (e *Exec) AddStats(other *Stats) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.stats.Merge(other)
	e.mu.Unlock()
}

// Snapshot returns a copy of the aggregated execution statistics.
func (e *Exec) Snapshot() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Step identifies where the sparse framework (Algorithm 4) terminated,
// reported as S1/S2/S3 in the paper's Table 5.
type Step int

const (
	StepNone Step = 0 // not applicable (dense solver, baselines)
	Step1    Step = 1 // heuristic + reduction proved optimality (Lemma 5)
	Step2    Step = 2 // bridging pruned every vertex-centred subgraph
	Step3    Step = 3 // maximality verification ran exhaustive search
)

// String renders the step the way Table 5 does.
func (s Step) String() string {
	switch s {
	case Step1:
		return "S1"
	case Step2:
		return "S2"
	case Step3:
		return "S3"
	}
	return "-"
}

// Stats aggregates search counters. Every counter is best-effort
// instrumentation used by the experiment harness; none affects results.
type Stats struct {
	Nodes      int64 // branch-and-bound recursions entered
	PolyCases  int64 // dynamicMBB (Algorithm 2) invocations
	Reductions int64 // vertices removed or promoted by Lemmas 1–2

	// Sparse-framework counters.
	Step            Step    // where Algorithm 4 terminated
	Subgraphs       int64   // vertex-centred subgraphs generated
	SubgraphsPruned int64   // pruned before exhaustive search
	HeurGlobalSize  int     // balanced size after step 1 (hMBB), Figure 4
	HeurLocalSize   int     // balanced size after step 2 (bridge), Figure 4
	SumSearchDepth  int64   // Σ max recursion depth over dense solves, Figure 5
	SearchSamples   int64   // number of dense solves measured
	SumSubDensity   float64 // Σ density of vertex-centred subgraphs, Figure 6
	DensitySamples  int64
	SumSubVertices  int64 // Σ |V(H)| over vertex-centred subgraphs
	Bidegeneracy    int   // δ̈ of the reduced graph (0 if never computed)
	TimedOut        bool  // budget ran out; result may be suboptimal

	// UpperBound is the tightest certified upper bound on the maximum
	// balanced size that survived the search: for a completed search it
	// equals the optimum; for a budget-cut search it is the weakest
	// surviving bound (the max over unfinished components of min(nl, nr),
	// or min(NL, NR) when no finer certificate exists). It quantifies
	// TimedOut results — Result.Gap in the public API is
	// UpperBound − incumbent. Set once by the top-level solve; it is
	// deliberately not folded by Merge/MergeOutcome, because per-component
	// bounds do not compose additively.
	UpperBound int

	// Planner counters (the reduce-and-conquer preprocessing stage that
	// mbb.SolveContext runs ahead of the solver when Options.Reduce is on).
	SeedTau    int   // heuristic lower bound τ that seeded the planner
	Peeled     int64 // vertices removed by the optimum-preserving reduction
	Components int   // connected components handed to the solve stage
	Repairs    int   // times the cached plan was locally repaired, not rebuilt
}

// Merge adds other's counters into s (Step, Bidegeneracy and TimedOut are
// merged toward the most advanced/true value).
func (s *Stats) Merge(other *Stats) {
	s.Nodes += other.Nodes
	s.PolyCases += other.PolyCases
	s.Reductions += other.Reductions
	s.Subgraphs += other.Subgraphs
	s.SubgraphsPruned += other.SubgraphsPruned
	s.SumSearchDepth += other.SumSearchDepth
	s.SearchSamples += other.SearchSamples
	s.SumSubDensity += other.SumSubDensity
	s.DensitySamples += other.DensitySamples
	s.SumSubVertices += other.SumSubVertices
	s.Peeled += other.Peeled
	s.Components += other.Components
	s.MergeOutcome(other)
}

// MergeOutcome merges only the non-additive outcome fields of other into
// s: the step, heuristic sizes, bidegeneracy and seed bound are taken
// toward the maximum, and the timeout flag is or-ed. The planner uses it
// to combine per-component solver results whose additive counters already
// flowed through Exec.AddStats — merging those again would double count.
func (s *Stats) MergeOutcome(other *Stats) {
	if other.Step > s.Step {
		s.Step = other.Step
	}
	if other.Bidegeneracy > s.Bidegeneracy {
		s.Bidegeneracy = other.Bidegeneracy
	}
	if other.HeurGlobalSize > s.HeurGlobalSize {
		s.HeurGlobalSize = other.HeurGlobalSize
	}
	if other.HeurLocalSize > s.HeurLocalSize {
		s.HeurLocalSize = other.HeurLocalSize
	}
	if other.SeedTau > s.SeedTau {
		s.SeedTau = other.SeedTau
	}
	if other.Repairs > s.Repairs {
		s.Repairs = other.Repairs
	}
	s.TimedOut = s.TimedOut || other.TimedOut
}

// AvgSearchDepth returns the mean max-recursion-depth over all dense
// solves (Figure 5's measure), or 0 if none ran.
func (s *Stats) AvgSearchDepth() float64 {
	if s.SearchSamples == 0 {
		return 0
	}
	return float64(s.SumSearchDepth) / float64(s.SearchSamples)
}

// AvgSubgraphDensity returns the mean edge density of the generated
// vertex-centred subgraphs (Figure 6's measure), or 0 if none.
func (s *Stats) AvgSubgraphDensity() float64 {
	if s.DensitySamples == 0 {
		return 0
	}
	return s.SumSubDensity / float64(s.DensitySamples)
}

// Result is a solver outcome: the best balanced biclique found plus
// search statistics. When Stats.TimedOut is false the biclique is an
// exact maximum balanced biclique.
type Result struct {
	Biclique bigraph.Biclique
	Stats    Stats
}
