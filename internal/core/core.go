// Package core holds the types shared by all MBB solvers: search budgets,
// search statistics, and the solver result envelope. The algorithms
// themselves live in internal/dense (Algorithms 1–3) and internal/sparse
// (Algorithms 4–8); this package is their common vocabulary.
package core

import (
	"time"

	"repro/internal/bigraph"
)

// Budget bounds a search by wall-clock deadline and/or node count. The
// zero value means "unlimited". Budgets are consumed by Spend, which is
// cheap enough to call once per branch-and-bound node: the deadline is
// polled only every 1024 nodes.
type Budget struct {
	Deadline time.Time // zero means no deadline
	MaxNodes int64     // 0 means no node limit

	nodes    int64
	exceeded bool
}

// NewTimeBudget returns a budget that expires after d from now. A
// non-positive d means unlimited.
func NewTimeBudget(d time.Duration) *Budget {
	if d <= 0 {
		return &Budget{}
	}
	return &Budget{Deadline: time.Now().Add(d)}
}

// Spend consumes one node from the budget and reports whether the search
// may continue.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	if b.exceeded {
		return false
	}
	b.nodes++
	if b.MaxNodes > 0 && b.nodes > b.MaxNodes {
		b.exceeded = true
		return false
	}
	if !b.Deadline.IsZero() && b.nodes%1024 == 0 && time.Now().After(b.Deadline) {
		b.exceeded = true
		return false
	}
	return true
}

// Exceeded reports whether the budget has run out.
func (b *Budget) Exceeded() bool { return b != nil && b.exceeded }

// Nodes returns how many nodes were spent so far.
func (b *Budget) Nodes() int64 {
	if b == nil {
		return 0
	}
	return b.nodes
}

// Step identifies where the sparse framework (Algorithm 4) terminated,
// reported as S1/S2/S3 in the paper's Table 5.
type Step int

const (
	StepNone Step = 0 // not applicable (dense solver, baselines)
	Step1    Step = 1 // heuristic + reduction proved optimality (Lemma 5)
	Step2    Step = 2 // bridging pruned every vertex-centred subgraph
	Step3    Step = 3 // maximality verification ran exhaustive search
)

// String renders the step the way Table 5 does.
func (s Step) String() string {
	switch s {
	case Step1:
		return "S1"
	case Step2:
		return "S2"
	case Step3:
		return "S3"
	}
	return "-"
}

// Stats aggregates search counters. Every counter is best-effort
// instrumentation used by the experiment harness; none affects results.
type Stats struct {
	Nodes      int64 // branch-and-bound recursions entered
	PolyCases  int64 // dynamicMBB (Algorithm 2) invocations
	Reductions int64 // vertices removed or promoted by Lemmas 1–2

	// Sparse-framework counters.
	Step            Step    // where Algorithm 4 terminated
	Subgraphs       int64   // vertex-centred subgraphs generated
	SubgraphsPruned int64   // pruned before exhaustive search
	HeurGlobalSize  int     // balanced size after step 1 (hMBB), Figure 4
	HeurLocalSize   int     // balanced size after step 2 (bridge), Figure 4
	SumSearchDepth  int64   // Σ max recursion depth over dense solves, Figure 5
	SearchSamples   int64   // number of dense solves measured
	SumSubDensity   float64 // Σ density of vertex-centred subgraphs, Figure 6
	DensitySamples  int64
	SumSubVertices  int64 // Σ |V(H)| over vertex-centred subgraphs
	Bidegeneracy    int   // δ̈ of the reduced graph (0 if never computed)
	TimedOut        bool  // budget ran out; result may be suboptimal
}

// Merge adds other's counters into s (Step, Bidegeneracy and TimedOut are
// merged toward the most advanced/true value).
func (s *Stats) Merge(other *Stats) {
	s.Nodes += other.Nodes
	s.PolyCases += other.PolyCases
	s.Reductions += other.Reductions
	s.Subgraphs += other.Subgraphs
	s.SubgraphsPruned += other.SubgraphsPruned
	s.SumSearchDepth += other.SumSearchDepth
	s.SearchSamples += other.SearchSamples
	s.SumSubDensity += other.SumSubDensity
	s.DensitySamples += other.DensitySamples
	s.SumSubVertices += other.SumSubVertices
	if other.Step > s.Step {
		s.Step = other.Step
	}
	if other.Bidegeneracy > s.Bidegeneracy {
		s.Bidegeneracy = other.Bidegeneracy
	}
	s.TimedOut = s.TimedOut || other.TimedOut
}

// AvgSearchDepth returns the mean max-recursion-depth over all dense
// solves (Figure 5's measure), or 0 if none ran.
func (s *Stats) AvgSearchDepth() float64 {
	if s.SearchSamples == 0 {
		return 0
	}
	return float64(s.SumSearchDepth) / float64(s.SearchSamples)
}

// AvgSubgraphDensity returns the mean edge density of the generated
// vertex-centred subgraphs (Figure 6's measure), or 0 if none.
func (s *Stats) AvgSubgraphDensity() float64 {
	if s.DensitySamples == 0 {
		return 0
	}
	return s.SumSubDensity / float64(s.DensitySamples)
}

// Result is a solver outcome: the best balanced biclique found plus
// search statistics. When Stats.TimedOut is false the biclique is an
// exact maximum balanced biclique.
type Result struct {
	Biclique bigraph.Biclique
	Stats    Stats
}
