package dense_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
)

func randDense(n int, dens float64, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < dens {
				m.AddEdge(i, j)
			}
		}
	}
	return m
}

func TestPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke")
	}
	for _, cfg := range []struct {
		n    int
		dens float64
	}{{24, 0.7}, {32, 0.7}, {48, 0.7}, {48, 0.9}} {
		m := randDense(cfg.n, cfg.dens, 42)
		start := time.Now()
		ex := core.NewExec(nil, core.Limits{Timeout: 5 * time.Second})
		res := dense.Solve(ex, m, dense.Options{Mode: dense.ModeDense})
		t.Logf("n=%d dens=%.2f: size=%d nodes=%d poly=%d red=%d timeout=%v in %v",
			cfg.n, cfg.dens, res.Size, res.Stats.Nodes, res.Stats.PolyCases, res.Stats.Reductions, res.Stats.TimedOut, time.Since(start))
	}
}
