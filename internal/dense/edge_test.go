package dense_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dense"
)

func randMatrix(rng *rand.Rand, maxSide int, p float64) *dense.Matrix {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	m := dense.NewMatrix(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				m.AddEdge(l, r)
			}
		}
	}
	return m
}

// bruteMaxEdge maximises |A|·|common(A)| over all nonempty A ⊆ L.
func bruteMaxEdge(m *dense.Matrix) int {
	best := 0
	for mask := uint64(1); mask < 1<<uint(m.NL()); mask++ {
		var a []int
		for i := 0; i < m.NL(); i++ {
			if mask&(1<<uint(i)) != 0 {
				a = append(a, i)
			}
		}
		common := 0
		for r := 0; r < m.NR(); r++ {
			ok := true
			for _, l := range a {
				if !m.HasEdge(l, r) {
					ok = false
					break
				}
			}
			if ok {
				common++
			}
		}
		if e := len(a) * common; e > best {
			best = e
		}
	}
	return best
}

func TestSolveMaxEdgeKnown(t *testing.T) {
	// 3x3 complete + a pendant row: optimum is the 3x3 block (9 edges).
	m := dense.NewMatrix(4, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.AddEdge(i, j)
		}
	}
	m.AddEdge(3, 0)
	res := dense.SolveMaxEdge(nil, m)
	// A 4x1 biclique has 4 edges; 3x3 has 9.
	if res.Edges != 9 {
		t.Fatalf("edges = %d, want 9", res.Edges)
	}
	if len(res.A)*len(res.B) != 9 {
		t.Fatalf("witness %vx%v inconsistent", res.A, res.B)
	}
}

func TestSolveMaxEdgeEmpty(t *testing.T) {
	res := dense.SolveMaxEdge(nil, dense.NewMatrix(3, 3))
	if res.Edges != 0 {
		t.Fatalf("edges = %d on empty graph", res.Edges)
	}
}

func TestQuickMaxEdgeMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 10, 0.15+0.7*rng.Float64())
		res := dense.SolveMaxEdge(nil, m)
		want := bruteMaxEdge(m)
		if res.Edges != want {
			t.Logf("got %d want %d (%dx%d)", res.Edges, want, m.NL(), m.NR())
			return false
		}
		// Witness validity.
		for _, l := range res.A {
			for _, r := range res.B {
				if !m.HasEdge(l, r) {
					return false
				}
			}
		}
		return len(res.A)*len(res.B) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 70}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMaxEdgeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 30, 0.5)
	res := dense.SolveMaxEdge(core.NewExec(nil, core.Limits{MaxNodes: 1}), m)
	if !res.Stats.TimedOut {
		t.Fatal("expected timeout flag")
	}
}

// bruteHasAB checks the (a,b) decision by subset enumeration.
func bruteHasAB(m *dense.Matrix, a, b int) bool {
	for mask := uint64(1); mask < 1<<uint(m.NL()); mask++ {
		var s []int
		for i := 0; i < m.NL(); i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, i)
			}
		}
		if len(s) < a {
			continue
		}
		common := 0
		for r := 0; r < m.NR(); r++ {
			ok := true
			for _, l := range s {
				if !m.HasEdge(l, r) {
					ok = false
					break
				}
			}
			if ok {
				common++
			}
		}
		if common >= b {
			return true
		}
	}
	return false
}

func TestQuickSizeConstrained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 9, 0.2+0.6*rng.Float64())
		a := 1 + rng.Intn(4)
		b := 1 + rng.Intn(4)
		got, wa, wb := dense.HasSizeConstrained(nil, m, a, b)
		want := bruteHasAB(m, a, b)
		if got != want {
			t.Logf("(%d,%d): got %v want %v on %dx%d", a, b, got, want, m.NL(), m.NR())
			return false
		}
		if got {
			if len(wa) < a || len(wb) < b {
				t.Logf("witness too small: %v %v", wa, wb)
				return false
			}
			for _, l := range wa {
				for _, r := range wb {
					if !m.HasEdge(l, r) {
						t.Log("witness not a biclique")
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeConstrainedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive target")
		}
	}()
	dense.HasSizeConstrained(nil, dense.NewMatrix(2, 2), 0, 1)
}
