package dense_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
)

// TestSolveSteadyStateZeroAlloc asserts the allocation discipline of the
// dense branch-and-bound inner loop: once the recycled solver arenas on
// the execution context are warm, a full solve that does not improve on
// Options.Lower performs zero heap allocations. This is the regime the
// planner and the sparse verification pipeline run in almost always —
// the incumbent is already optimal and solves only confirm it.
func TestSolveSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	m := dense.NewMatrix(n, n)
	for l := 0; l < n; l++ {
		for r := 0; r < n; r++ {
			if rng.Float64() < 0.85 {
				m.AddEdge(l, r)
			}
		}
	}
	ex := core.Background()
	first := dense.Solve(ex, m, dense.Options{Mode: dense.ModeDense})
	if !first.Found {
		t.Fatal("warm-up solve found nothing")
	}
	// With Lower at the optimum nothing is found, so no witness is copied
	// out; repeated solves must reuse every arena.
	opt := dense.Options{Mode: dense.ModeDense, Lower: first.Size}
	for i := 0; i < 3; i++ {
		if res := dense.Solve(ex, m, opt); res.Found {
			t.Fatalf("solve with Lower=optimum reported size %d", res.Size)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		dense.Solve(ex, m, opt)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense solve: %.1f allocs/op, want 0", allocs)
	}
}

// TestSolveScratchSurvivesResize checks that one context's recycled
// solver handles solves over differently sized matrices back to back
// (the plan-repair scenario: a re-induced graph grows or shrinks). The
// shared incumbent legitimately carries across solves on one ex, so the
// expected outcome of each complete-bipartite solve is known exactly:
// found iff n beats the best size seen so far.
func TestSolveScratchSurvivesResize(t *testing.T) {
	ex := core.Background()
	best := 0
	for _, n := range []int{8, 30, 12, 64, 5, 80} {
		m := dense.NewMatrix(n, n)
		for l := 0; l < n; l++ {
			for r := 0; r < n; r++ {
				m.AddEdge(l, r)
			}
		}
		res := dense.Solve(ex, m, dense.Options{Mode: dense.ModeDense})
		if n > best {
			if !res.Found || res.Size != n {
				t.Fatalf("n=%d (incumbent %d): found=%v size=%d, want size %d", n, best, res.Found, res.Size, n)
			}
			best = n
		} else if res.Found {
			t.Fatalf("n=%d (incumbent %d): found size %d, want pruned", n, best, res.Size)
		}
	}
}
