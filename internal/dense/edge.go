package dense

import (
	"repro/internal/bitset"
	"repro/internal/core"
)

// This file extends the dense machinery to the two sibling problems the
// paper's related work discusses (§7 and §4.2): the NP-hard maximum
// *edge* biclique problem (maximise |A|·|B|) and the size-constrained
// (a, b)-biclique decision problem ("is there a biclique with |A| ≥ a and
// |B| ≥ b?"). Both reuse the bitset candidate machinery of the MBB
// solver: include/exclude branching, all-connection promotion and
// candidate-product bounding.

// EdgeResult is the outcome of SolveMaxEdge.
type EdgeResult struct {
	A, B  []int // matrix-local indices of a maximum edge biclique
	Edges int   // |A|·|B|
	Stats core.Stats
}

// SolveMaxEdge computes a biclique of m maximising |A|·|B| exactly,
// within the budget of ex (nil means unlimited). Both sides of the result
// are nonempty whenever m has at least one edge.
func SolveMaxEdge(ex *core.Exec, m *Matrix) EdgeResult {
	s := &edgeSolver{m: m, ex: ex,
		poolL: bitset.NewPool(m.nl), poolR: bitset.NewPool(m.nr)}
	CA := bitset.NewFull(m.nl)
	CB := bitset.NewFull(m.nr)
	s.node(CA, CB)
	res := EdgeResult{A: s.bestA, B: s.bestB, Edges: s.best}
	res.Stats.Nodes = s.nodes
	res.Stats.TimedOut = s.timedOut
	return res
}

type edgeSolver struct {
	m            *Matrix
	ex           *core.Exec
	poolL, poolR *bitset.Pool
	A, B         []int
	best         int
	bestA, bestB []int
	nodes        int64
	timedOut     bool
}

func (s *edgeSolver) node(CA, CB *bitset.Set) {
	if !s.ex.Spend() {
		s.timedOut = true
		return
	}
	s.nodes++
	baseA, baseB := len(s.A), len(s.B)
	defer func() {
		s.A = s.A[:baseA]
		s.B = s.B[:baseB]
	}()

	// All-connection promotion (Lemma 1 carries over: a candidate
	// adjacent to the whole opposite candidate set can always join, and
	// for the edge objective extra vertices never hurt).
	for changed := true; changed; {
		changed = false
		cb := CB.Count()
		if cb > 0 {
			for u := CA.First(); u != -1; u = CA.NextAfter(u) {
				if s.m.rowL[u].AndCount(CB) == cb {
					CA.Remove(u)
					s.A = append(s.A, u)
					changed = true
				}
			}
		}
		ca := CA.Count()
		if ca > 0 {
			for v := CB.First(); v != -1; v = CB.NextAfter(v) {
				if s.m.rowR[v].AndCount(CA) == ca {
					CB.Remove(v)
					s.B = append(s.B, v)
					changed = true
				}
			}
		}
	}

	a, b := len(s.A), len(s.B)
	ca, cb := CA.Count(), CB.Count()

	// Current realisable candidates: extend one side freely.
	s.update(a, b+cb, CB, b)
	s.updateFlip(b, a+ca, CA, a)

	// Bound: even taking every candidate cannot beat the incumbent.
	if (a+ca)*(b+cb) <= s.best {
		return
	}
	if ca == 0 || cb == 0 {
		return
	}

	// Branch at the candidate with the most missing edges.
	u, onLeft, maxMiss := -1, true, -1
	for v := CA.First(); v != -1; v = CA.NextAfter(v) {
		if miss := cb - s.m.rowL[v].AndCount(CB); miss > maxMiss {
			maxMiss, u, onLeft = miss, v, true
		}
	}
	for v := CB.First(); v != -1; v = CB.NextAfter(v) {
		if miss := ca - s.m.rowR[v].AndCount(CA); miss > maxMiss {
			maxMiss, u, onLeft = miss, v, false
		}
	}
	if onLeft {
		CA.Remove(u)
		ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
		s.node(ca2, cb2) // exclude first (triviality last)
		s.poolL.Put(ca2)
		s.poolR.Put(cb2)
		CB.And(s.m.rowL[u])
		s.A = append(s.A, u)
		s.node(CA, CB)
		s.A = s.A[:len(s.A)-1]
		return
	}
	CB.Remove(u)
	ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
	s.node(ca2, cb2)
	s.poolL.Put(ca2)
	s.poolR.Put(cb2)
	CA.And(s.m.rowR[u])
	s.B = append(s.B, u)
	s.node(CA, CB)
	s.B = s.B[:len(s.B)-1]
}

// update records A × (B ∪ CB) if it improves the incumbent (every CB
// vertex is adjacent to all of A).
func (s *edgeSolver) update(a, bTotal int, CB *bitset.Set, b int) {
	if a == 0 || bTotal == 0 || a*bTotal <= s.best {
		return
	}
	s.best = a * bTotal
	s.bestA = append(s.bestA[:0], s.A...)
	s.bestB = append(s.bestB[:0], s.B...)
	need := bTotal - b
	for v := CB.First(); need > 0; v = CB.NextAfter(v) {
		s.bestB = append(s.bestB, v)
		need--
	}
}

func (s *edgeSolver) updateFlip(b, aTotal int, CA *bitset.Set, a int) {
	if b == 0 || aTotal == 0 || aTotal*b <= s.best {
		return
	}
	s.best = aTotal * b
	s.bestB = append(s.bestB[:0], s.B...)
	s.bestA = append(s.bestA[:0], s.A...)
	need := aTotal - a
	for v := CA.First(); need > 0; v = CA.NextAfter(v) {
		s.bestA = append(s.bestA, v)
		need--
	}
}

// HasSizeConstrained reports whether m contains a biclique with |A| ≥ a
// and |B| ≥ b (the paper's (a, b)-biclique decision problem, §4.2), and
// returns a witness when it does. a and b must be positive; ex bounds the
// search (nil means unlimited).
func HasSizeConstrained(ex *core.Exec, m *Matrix, a, b int) (bool, []int, []int) {
	if a <= 0 || b <= 0 {
		panic("dense: (a,b) must be positive")
	}
	s := &abSolver{m: m, ex: ex, ta: a, tb: b,
		poolL: bitset.NewPool(m.nl), poolR: bitset.NewPool(m.nr)}
	s.node(bitset.NewFull(m.nl), bitset.NewFull(m.nr))
	return s.found, s.witA, s.witB
}

type abSolver struct {
	m            *Matrix
	ex           *core.Exec
	ta, tb       int
	poolL, poolR *bitset.Pool
	A, B         []int
	found        bool
	witA, witB   []int
	timedOut     bool
}

func (s *abSolver) node(CA, CB *bitset.Set) {
	if s.found {
		return
	}
	if !s.ex.Spend() {
		s.timedOut = true
		return
	}
	baseA, baseB := len(s.A), len(s.B)
	defer func() {
		s.A = s.A[:baseA]
		s.B = s.B[:baseB]
	}()

	// Reduction: a candidate that cannot reach the target side size goes.
	for changed := true; changed; {
		changed = false
		for u := CA.First(); u != -1; u = CA.NextAfter(u) {
			if len(s.B)+s.m.rowL[u].AndCount(CB) < s.tb {
				CA.Remove(u)
				changed = true
			}
		}
		for v := CB.First(); v != -1; v = CB.NextAfter(v) {
			if len(s.A)+s.m.rowR[v].AndCount(CA) < s.ta {
				CB.Remove(v)
				changed = true
			}
		}
	}

	a, b := len(s.A), len(s.B)
	ca, cb := CA.Count(), CB.Count()
	if a+ca < s.ta || b+cb < s.tb {
		return
	}

	// Check the two one-sided completions.
	if a >= s.ta && b+cb >= s.tb {
		s.install(CA, CB, a, s.tb-b)
		return
	}
	if b >= s.tb && a+ca >= s.ta {
		s.installA(CA, s.ta-a)
		return
	}

	// Branch on the max-missing candidate.
	u, onLeft, maxMiss := -1, true, -1
	for v := CA.First(); v != -1; v = CA.NextAfter(v) {
		if miss := cb - s.m.rowL[v].AndCount(CB); miss > maxMiss {
			maxMiss, u, onLeft = miss, v, true
		}
	}
	for v := CB.First(); v != -1; v = CB.NextAfter(v) {
		if miss := ca - s.m.rowR[v].AndCount(CA); miss > maxMiss {
			maxMiss, u, onLeft = miss, v, false
		}
	}
	if maxMiss == 0 {
		// The candidate subgraph is complete: everything fits.
		s.A = append(s.A, CA.AppendTo(nil)...)
		s.B = append(s.B, CB.AppendTo(nil)...)
		if len(s.A) >= s.ta && len(s.B) >= s.tb {
			s.witA = append([]int(nil), s.A[:s.ta]...)
			s.witB = append([]int(nil), s.B[:s.tb]...)
			s.found = true
		}
		return
	}
	if onLeft {
		CA.Remove(u)
		ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
		cb2.And(s.m.rowL[u])
		s.A = append(s.A, u)
		s.node(ca2, cb2) // include first: we only need existence
		s.A = s.A[:len(s.A)-1]
		s.poolL.Put(ca2)
		s.poolR.Put(cb2)
		if !s.found {
			s.node(CA, CB)
		}
		return
	}
	CB.Remove(u)
	ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
	ca2.And(s.m.rowR[u])
	s.B = append(s.B, u)
	s.node(ca2, cb2)
	s.B = s.B[:len(s.B)-1]
	s.poolL.Put(ca2)
	s.poolR.Put(cb2)
	if !s.found {
		s.node(CA, CB)
	}
}

// install completes the witness with need vertices from CB.
func (s *abSolver) install(CA, CB *bitset.Set, a, need int) {
	s.witA = append([]int(nil), s.A[:s.ta]...)
	s.witB = append([]int(nil), s.B...)
	for v := CB.First(); need > 0; v = CB.NextAfter(v) {
		s.witB = append(s.witB, v)
		need--
	}
	s.found = true
}

func (s *abSolver) installA(CA *bitset.Set, need int) {
	s.witB = append([]int(nil), s.B[:s.tb]...)
	s.witA = append([]int(nil), s.A...)
	for v := CA.First(); need > 0; v = CA.NextAfter(v) {
		s.witA = append(s.witA, v)
		need--
	}
	s.found = true
}
