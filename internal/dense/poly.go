package dense

import "repro/internal/bitset"

// This file implements dynamicMBB (Algorithm 2), the polynomial-time MBB
// solver for candidate subgraphs satisfying Lemma 3: every candidate
// vertex misses at most two neighbours on the opposite candidate side.
//
// In that regime the bipartite complement of the candidate subgraph has
// maximum degree ≤ 2, i.e. it is a disjoint union of paths, cycles and
// isolated vertices (Observation 1). Choosing a biclique (A' ⊆ CA,
// B' ⊆ CB) is exactly choosing a set with no complement edge between A'
// and B'; since every complement edge joins the two sides, that is an
// independent set in the complement. Per component the Pareto frontier of
// achievable (a, b) = (#left picks, #right picks) profiles has a closed
// form (the corrected version of the paper's Observation 2, which is
// garbled in the arXiv text; see frontierClosed and the package tests
// that validate it against an explicit DP). The components are then
// combined with an array knapsack — the dense form of Algorithm 2's
// stamped table.
//
// dynamicMBB runs in two passes: a fast allocation-light pass that only
// computes the optimal size, and, only when that size beats the
// incumbent, a reconstruction pass (per-component independent-set DP with
// backtracking) that materialises a witness.

type component struct {
	seq    []int // node encodings in path order (for cycles, cyclic order)
	cycle  bool
	countL int // #left nodes in seq (encodings < nl)
	// frontier[a] = max #right picks over independent sets with exactly a
	// left picks; -1 if no such set.
	frontier []int
}

// frontierClosed fills c.frontier from the closed forms. With countL and
// countR the side sizes of the component:
//
//	LR-ended path (countL == countR == k):   fr[a] = k − a
//	LL-ended path (countL == k+1, countR=k): fr[0] = k, fr[a] = k−a, fr[k+1] = 0
//	RR-ended path (countL == k, countR=k+1): fr[0] = k+1, fr[a] = k−a
//	cycle (countL == countR == k):           fr[0] = k, fr[a] = max(k−1−a, 0)
//
// Intuition: picks must be pairwise non-adjacent along the component; a
// maximal arrangement packs all left picks consecutively and then all
// right picks, and switching sides once costs one extra position (twice
// on a cycle).
func (c *component) frontierClosed(nl int) {
	countL := 0
	for _, enc := range c.seq {
		if enc < nl {
			countL++
		}
	}
	countR := len(c.seq) - countL
	// Reuse the caller-provided frontier backing when it is large enough
	// (dynamicMBB pre-slices it from a solver arena); every entry is
	// written below, so no clearing is needed.
	if cap(c.frontier) < countL+1 {
		c.frontier = make([]int, countL+1)
	} else {
		c.frontier = c.frontier[:countL+1]
	}
	fr := c.frontier
	switch {
	case c.cycle:
		k := countL // == countR on a cycle
		fr[0] = k
		for a := 1; a <= k; a++ {
			if b := k - 1 - a; b > 0 {
				fr[a] = b
			} else {
				fr[a] = 0
			}
		}
	case countL == countR:
		for a := 0; a <= countL; a++ {
			fr[a] = countL - a
		}
	case countL > countR: // LL-ended path
		k := countR
		fr[0] = k
		for a := 1; a <= k; a++ {
			fr[a] = k - a
		}
		fr[k+1] = 0
	default: // RR-ended path
		k := countL
		fr[0] = k + 1
		for a := 1; a <= k; a++ {
			fr[a] = k - a
		}
	}
}

const (
	firstFree = iota
	firstForceSkip
	firstForceTake
)

// pathDP runs the independent-set DP over seq with the given constraint
// on the first node and optionally forbidding taking the last node. It
// returns the full per-position table for backtracking:
// f[pos][a][c] = max right picks using seq[:pos] with a left picks and
// c=1 iff seq[pos-1] taken; -1 marks unreachable states. Used only for
// witness reconstruction and as the test oracle for frontierClosed.
func pathDP(seq []int, nl, countL, firstMode int, lastNoTake bool) [][][2]int {
	m := len(seq)
	f := make([][][2]int, m+1)
	for p := range f {
		f[p] = make([][2]int, countL+1)
		for a := range f[p] {
			f[p][a] = [2]int{-1, -1}
		}
	}
	f[0][0][0] = 0
	for p, enc := range seq {
		isL := enc < nl
		for a := 0; a <= countL; a++ {
			for c := 0; c < 2; c++ {
				v := f[p][a][c]
				if v < 0 {
					continue
				}
				// Skip seq[p].
				if !(p == 0 && firstMode == firstForceTake) {
					if v > f[p+1][a][0] {
						f[p+1][a][0] = v
					}
				}
				// Take seq[p]: previous must not be taken.
				if c == 1 || (p == 0 && firstMode == firstForceSkip) {
					continue
				}
				if lastNoTake && p == m-1 {
					continue
				}
				if isL {
					if a+1 <= countL && v > f[p+1][a+1][1] {
						f[p+1][a+1][1] = v
					}
				} else {
					if v+1 > f[p+1][a][1] {
						f[p+1][a][1] = v + 1
					}
				}
			}
		}
	}
	return f
}

// frontierDP computes the frontier by explicit DP; the tests check it
// agrees with frontierClosed on every component shape.
func (c *component) frontierDP(nl int) []int {
	countL := 0
	for _, enc := range c.seq {
		if enc < nl {
			countL++
		}
	}
	fr := make([]int, countL+1)
	for a := range fr {
		fr[a] = -1
	}
	merge := func(f [][][2]int) {
		last := f[len(c.seq)]
		for a := 0; a <= countL; a++ {
			for cc := 0; cc < 2; cc++ {
				if v := last[a][cc]; v > fr[a] {
					fr[a] = v
				}
			}
		}
	}
	if !c.cycle {
		merge(pathDP(c.seq, nl, countL, firstFree, false))
		return fr
	}
	merge(pathDP(c.seq, nl, countL, firstForceSkip, false))
	merge(pathDP(c.seq, nl, countL, firstForceTake, true))
	return fr
}

// backtrack extracts a chosen node set achieving (a, ≥b) from a pathDP
// table. It returns nil if not achievable in this table.
func backtrack(f [][][2]int, seq []int, nl, a, b int) []int {
	m := len(seq)
	c := -1
	for cc := 0; cc < 2; cc++ {
		if f[m][a][cc] >= b {
			c = cc
			b = f[m][a][c]
			break
		}
	}
	if c < 0 {
		return nil
	}
	var chosen []int
	for p := m; p > 0; p-- {
		enc := seq[p-1]
		isL := enc < nl
		if c == 1 {
			chosen = append(chosen, enc)
			pa, pb := a, b
			if isL {
				pa--
			} else {
				pb--
			}
			if f[p-1][pa][0] >= pb {
				a, b, c = pa, pb, 0
				continue
			}
			return nil // inconsistent table (unreachable)
		}
		if f[p-1][a][0] >= b {
			c = 0
			continue
		}
		if f[p-1][a][1] >= b {
			c = 1
			continue
		}
		return nil
	}
	return chosen
}

// pick reconstructs a chosen node set achieving (a, frontier[a]).
func (c *component) pick(nl, a int) []int {
	countL := 0
	for _, enc := range c.seq {
		if enc < nl {
			countL++
		}
	}
	b := c.frontier[a]
	if b < 0 {
		return nil
	}
	if !c.cycle {
		return backtrack(pathDP(c.seq, nl, countL, firstFree, false), c.seq, nl, a, b)
	}
	if got := backtrack(pathDP(c.seq, nl, countL, firstForceSkip, false), c.seq, nl, a, b); got != nil {
		return got
	}
	return backtrack(pathDP(c.seq, nl, countL, firstForceTake, true), c.seq, nl, a, b)
}

// decompose builds the complement components of the candidate subgraph.
// It returns the components plus the trivial (complement-isolated) nodes
// of each side, all in node encodings: left candidate i (position in
// caList) is i, right candidate j is nl+j.
//
// Everything returned lives in solver-owned arenas valid until the next
// decompose call: comps is s.compBuf, each component's seq is a subslice
// of s.seqBuf (pre-sized to nl+nr before walking, so appends never
// relocate it under an already-built component), and the trivial lists
// are s.trivL/s.trivR.
func (s *solver) decompose(CA, CB *bitset.Set, caList, cbList []int) (comps []component, trivialL, trivialR []int) {
	nl, nr := len(caList), len(cbList)
	n := nl + nr
	if cap(s.posR) < s.m.nr {
		s.posR = make([]int32, s.m.nr)
	}
	posR := s.posR[:s.m.nr]
	for j, r := range cbList {
		posR[r] = int32(j)
	}
	if cap(s.adjBuf) < n {
		s.adjBuf = make([][2]int32, n)
		s.degBuf = make([]int8, n)
		s.visBuf = make([]bool, n)
	}
	adj := s.adjBuf[:n] // complement degree ≤ 2 per node
	deg := s.degBuf[:n]
	visited := s.visBuf[:n]
	for i := range deg {
		deg[i] = 0
		visited[i] = false
	}
	miss := s.poolR.Get()
	for i, u := range caList {
		miss.CopyFrom(CB)
		miss.AndNot(s.m.rowL[u])
		miss.ForEach(func(r int) bool {
			j := int(posR[r])
			adj[i][deg[i]] = int32(nl + j)
			deg[i]++
			adj[nl+j][deg[nl+j]] = int32(i)
			deg[nl+j]++
			return true
		})
	}
	s.poolR.Put(miss)

	if cap(s.seqBuf) < n {
		s.seqBuf = make([]int, 0, n)
	}
	seq := s.seqBuf[:0]
	comps = s.compBuf[:0]
	walk := func(start int) {
		base := len(seq)
		c := component{}
		prev := -1
		cur := start
		for {
			visited[cur] = true
			seq = append(seq, cur)
			if cur < nl {
				c.countL++
			}
			next := -1
			for k := int8(0); k < deg[cur]; k++ {
				w := int(adj[cur][k])
				if w != prev && !visited[w] {
					next = w
					break
				}
			}
			if next == -1 {
				for k := int8(0); k < deg[cur]; k++ {
					if int(adj[cur][k]) == start && len(seq)-base > 2 {
						c.cycle = true
					}
				}
				// Full-capacity cap so a later append elsewhere can never
				// write through this component's view.
				c.seq = seq[base:len(seq):len(seq)]
				comps = append(comps, c)
				return
			}
			prev, cur = cur, next
		}
	}
	trivialL = s.trivL[:0]
	trivialR = s.trivR[:0]
	for enc := 0; enc < n; enc++ {
		if deg[enc] == 0 {
			if enc < nl {
				trivialL = append(trivialL, enc)
			} else {
				trivialR = append(trivialR, enc)
			}
			visited[enc] = true
		}
	}
	for enc := 0; enc < n; enc++ {
		if !visited[enc] && deg[enc] == 1 {
			walk(enc)
		}
	}
	for enc := 0; enc < n; enc++ {
		if !visited[enc] {
			walk(enc)
		}
	}
	s.compBuf = comps
	s.trivL, s.trivR = trivialL, trivialR
	return comps, trivialL, trivialR
}

// dynamicMBB solves the current subproblem exactly in polynomial time and
// updates the incumbent if it finds a strictly larger balanced biclique.
// Precondition: every vertex of CA misses ≤ 2 vertices of CB and vice
// versa (checked by the caller via pickBranch).
func (s *solver) dynamicMBB(CA, CB *bitset.Set) {
	caList := s.caScratch[:0]
	caList = CA.AppendTo(caList)
	s.caScratch = caList
	cbList := s.cbScratch[:0]
	cbList = CB.AppendTo(cbList)
	s.cbScratch = cbList
	nl := len(caList)

	comps, trivialL, trivialR := s.decompose(CA, CB, caList, cbList)
	// Hand each component a frontier slice from one pre-sized arena, so
	// frontierClosed fills in place without allocating. Sizing happens
	// before any frontier is assigned: growing s.frontBuf later would
	// relocate slices already handed out.
	need := 0
	for i := range comps {
		need += comps[i].countL + 1
	}
	if cap(s.frontBuf) < need {
		s.frontBuf = make([]int, need)
	}
	off := 0
	for i := range comps {
		c := &comps[i]
		c.frontier = s.frontBuf[off : off+c.countL+1 : off+c.countL+1]
		off += c.countL + 1
		c.frontierClosed(nl)
	}

	// Fast size pass: array knapsack over component frontiers.
	// fb[a] = max total right picks achievable with a total left picks.
	a0 := len(s.A) + len(trivialL)
	b0 := len(s.B) + len(trivialR)
	maxA := a0 + nl
	if cap(s.fbScratch) < maxA+1 {
		s.fbScratch = make([]int, maxA+1)
		s.fbTmp = make([]int, maxA+1)
	}
	fb := s.fbScratch[:maxA+1]
	tmp := s.fbTmp[:maxA+1]
	for i := range fb {
		fb[i] = -1
	}
	fb[a0] = b0
	hi := a0 // highest reachable a so far
	for ci := range comps {
		c := &comps[ci]
		for i := range tmp {
			tmp[i] = -1
		}
		for a := a0; a <= hi; a++ {
			base := fb[a]
			if base < 0 {
				continue
			}
			for x, y := range c.frontier {
				if y < 0 {
					continue
				}
				if v := base + y; v > tmp[a+x] {
					tmp[a+x] = v
				}
			}
		}
		hi += len(c.frontier) - 1
		if hi > maxA {
			hi = maxA
		}
		copy(fb, tmp)
	}
	bestMin, bestA := s.bestSize, -1
	for a := a0; a <= hi; a++ {
		if fb[a] < 0 {
			continue
		}
		if m := minInt(a, fb[a]); m > bestMin {
			bestMin, bestA = m, a
		}
	}
	if bestA < 0 {
		return // nothing better than the incumbent here
	}

	// Reconstruction pass (rare): re-run the knapsack stage by stage,
	// then walk backwards choosing a consistent per-component profile.
	s.reconstruct(comps, caList, cbList, trivialL, trivialR, a0, b0, bestA, bestMin)
}

// reconstruct materialises a witness achieving min(a,b) == bestMin with
// total left picks targetA, and installs it as the incumbent.
func (s *solver) reconstruct(comps []component, caList, cbList, trivialL, trivialR []int, a0, b0, targetA, bestMin int) {
	nl := len(caList)
	// stage[p][a] = max right picks after combining comps[:p].
	stages := make([][]int, len(comps)+1)
	maxA := a0 + nl
	mk := func() []int {
		v := make([]int, maxA+1)
		for i := range v {
			v[i] = -1
		}
		return v
	}
	stages[0] = mk()
	stages[0][a0] = b0
	for p, c := range comps {
		nxt := mk()
		for a := a0; a <= maxA; a++ {
			base := stages[p][a]
			if base < 0 {
				continue
			}
			for x, y := range c.frontier {
				if y < 0 || a+x > maxA {
					continue
				}
				if v := base + y; v > nxt[a+x] {
					nxt[a+x] = v
				}
			}
		}
		stages[p+1] = nxt
	}

	chosenA := append([]int(nil), s.A...)
	chosenB := append([]int(nil), s.B...)
	for _, enc := range trivialL {
		chosenA = append(chosenA, caList[enc])
	}
	for _, enc := range trivialR {
		chosenB = append(chosenB, cbList[enc-nl])
	}
	a, b := targetA, stages[len(comps)][targetA]
	for p := len(comps); p >= 1; p-- {
		c := comps[p-1]
		found := false
		for x, y := range c.frontier {
			if y < 0 || a-x < a0 {
				continue
			}
			if prev := stages[p-1][a-x]; prev >= 0 && prev+y >= b {
				if x > 0 || y > 0 {
					for _, enc := range c.pick(nl, x) {
						if enc < nl {
							chosenA = append(chosenA, caList[enc])
						} else {
							chosenB = append(chosenB, cbList[enc-nl])
						}
					}
				}
				a, b = a-x, minInt(prev, b-y)
				found = true
				break
			}
		}
		if !found {
			return // unreachable for a consistent table
		}
	}

	s.record(bestMin)
	s.bestA = append(s.bestA[:0], chosenA[:bestMin]...)
	s.bestB = append(s.bestB[:0], chosenB[:bestMin]...)
}
