package dense

import (
	"math/rand"
	"testing"
)

// TestFrontierClosedMatchesDP validates the closed-form (a, b) Pareto
// frontiers (the corrected Observation 2) against the explicit
// independent-set DP for every path/cycle shape up to 24 nodes and both
// starting sides.
func TestFrontierClosedMatchesDP(t *testing.T) {
	for m := 2; m <= 24; m++ {
		for _, startLeft := range []bool{true, false} {
			// Build the encoded alternating sequence. Encodings only need
			// to distinguish sides: use nl as the side threshold with
			// left nodes < nl.
			nl := m // generous: left encodings 0..nl-1, right nl..
			seq := make([]int, m)
			li, ri := 0, 0
			for p := 0; p < m; p++ {
				isL := (p%2 == 0) == startLeft
				if isL {
					seq[p] = li
					li++
				} else {
					seq[p] = nl + ri
					ri++
				}
			}
			shapes := []bool{false}
			if m >= 4 && m%2 == 0 {
				shapes = append(shapes, true) // cycles are even-length
			}
			for _, cyc := range shapes {
				c := &component{seq: seq, cycle: cyc}
				c.frontierClosed(nl)
				want := c.frontierDP(nl)
				if len(want) != len(c.frontier) {
					t.Fatalf("m=%d startLeft=%v cyc=%v: len %d vs %d", m, startLeft, cyc, len(c.frontier), len(want))
				}
				for a := range want {
					if c.frontier[a] != want[a] {
						t.Fatalf("m=%d startLeft=%v cyc=%v: frontier[%d] = %d, DP = %d (closed=%v dp=%v)",
							m, startLeft, cyc, a, c.frontier[a], want[a], c.frontier, want)
					}
				}
				// Every frontier point must be realisable by pick.
				for a := range c.frontier {
					if c.frontier[a] < 0 {
						continue
					}
					chosen := c.pick(nl, a)
					gotA, gotB := 0, 0
					for _, enc := range chosen {
						if enc < nl {
							gotA++
						} else {
							gotB++
						}
					}
					if gotA != a || gotB < c.frontier[a] {
						t.Fatalf("m=%d cyc=%v pick(%d): got (%d,%d), want (%d,>=%d)",
							m, cyc, a, gotA, gotB, a, c.frontier[a])
					}
					// Independence check.
					pos := map[int]int{}
					for p, enc := range seq {
						pos[enc] = p
					}
					for _, x := range chosen {
						for _, y := range chosen {
							if x == y {
								continue
							}
							d := pos[x] - pos[y]
							if d < 0 {
								d = -d
							}
							if d == 1 || (cyc && d == m-1) {
								t.Fatalf("m=%d cyc=%v pick(%d): adjacent picks", m, cyc, a)
							}
						}
					}
				}
			}
		}
	}
}

// TestFrontierRandomComponents fuzzes longer random components.
func TestFrontierRandomComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(40)
		startLeft := rng.Intn(2) == 0
		cyc := m >= 4 && m%2 == 0 && rng.Intn(2) == 0
		nl := m
		seq := make([]int, m)
		li, ri := 0, 0
		for p := 0; p < m; p++ {
			if (p%2 == 0) == startLeft {
				seq[p] = li
				li++
			} else {
				seq[p] = nl + ri
				ri++
			}
		}
		c := &component{seq: seq, cycle: cyc}
		c.frontierClosed(nl)
		want := c.frontierDP(nl)
		for a := range want {
			if c.frontier[a] != want[a] {
				t.Fatalf("m=%d cyc=%v: frontier[%d]=%d, DP=%d", m, cyc, a, c.frontier[a], want[a])
			}
		}
	}
}
