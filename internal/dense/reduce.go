package dense

import "repro/internal/bitset"

// reduce applies the paper's two reduction rules (Lemmas 1 and 2) to the
// candidate sets until a fixed point:
//
//   - All-connection rule (Lemma 1): a candidate adjacent to every vertex
//     of the opposite candidate set is promoted into the partial solution.
//     Promotion is safe because any biclique extending (A, B) inside the
//     candidate subgraph remains a biclique after adding the promoted
//     vertex, and a larger side never hurts a balanced result (the final
//     answer is trimmed).
//
//   - Low-degree rule (Lemma 2, tightened): u ∈ CA is dropped as soon as
//     |B| + deg(u, CB) ≤ best. If u belonged to a balanced biclique of
//     size ≥ best+1 inside this subproblem, its right side — contained in
//     B ∪ (CB ∩ N(u)) — would have at least best+1 vertices.
//
// reduce mutates CA/CB and appends promoted vertices to s.A/s.B; node's
// epilogue restores the partial sets.
func (s *solver) reduce(CA, CB *bitset.Set) {
	for {
		changed := false
		cb := CB.Count()
		for u := CA.First(); u != -1; u = CA.NextAfter(u) {
			deg := s.m.rowL[u].AndCount(CB)
			if len(s.B)+deg <= s.bestSize {
				CA.Remove(u)
				s.stats.Reductions++
				changed = true
			} else if deg == cb && cb > 0 {
				CA.Remove(u)
				s.A = append(s.A, u)
				s.stats.Reductions++
				changed = true
			}
		}
		ca := CA.Count()
		for v := CB.First(); v != -1; v = CB.NextAfter(v) {
			deg := s.m.rowR[v].AndCount(CA)
			if len(s.A)+deg <= s.bestSize {
				CB.Remove(v)
				s.stats.Reductions++
				changed = true
			} else if deg == ca && ca > 0 {
				CB.Remove(v)
				s.B = append(s.B, v)
				s.stats.Reductions++
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
