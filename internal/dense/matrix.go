// Package dense implements the paper's algorithms for dense bipartite
// graphs: the basic branch-and-bound enumeration (Algorithm 1), the
// polynomial-time solver for near-complete subgraphs (Algorithm 2,
// dynamicMBB) and the full reduction/branch-and-bound solver denseMBB
// (Algorithm 3) with the Lemma 1/2 reduction rules.
//
// All algorithms run on Matrix, a bitset adjacency matrix. denseMBB is
// only ever invoked on graphs that are dense by construction or on the
// small vertex-centred subgraphs produced by the sparse framework, so the
// O(|L|·|R|) bits are well spent: every reduction and bound becomes a
// handful of fused popcount loops.
package dense

import (
	"repro/internal/bigraph"
	"repro/internal/bitset"
)

// Matrix is a bipartite adjacency matrix with one bitset row per vertex on
// each side. RowL[i] holds the R-neighbours of left vertex i as bits in
// [0, NR); RowR[j] holds the L-neighbours of right vertex j.
type Matrix struct {
	nl, nr int
	rowL   []*bitset.Set
	rowR   []*bitset.Set
	edges  int
}

// NewMatrix returns an empty nl×nr matrix.
func NewMatrix(nl, nr int) *Matrix {
	m := &Matrix{nl: nl, nr: nr}
	m.rowL = make([]*bitset.Set, nl)
	for i := range m.rowL {
		m.rowL[i] = bitset.New(nr)
	}
	m.rowR = make([]*bitset.Set, nr)
	for j := range m.rowR {
		m.rowR[j] = bitset.New(nl)
	}
	return m
}

// NL returns the number of left vertices.
func (m *Matrix) NL() int { return m.nl }

// NR returns the number of right vertices.
func (m *Matrix) NR() int { return m.nr }

// NumEdges returns the number of edges added.
func (m *Matrix) NumEdges() int { return m.edges }

// AddEdge inserts the edge (l, r); duplicate insertions are ignored.
func (m *Matrix) AddEdge(l, r int) {
	if m.rowL[l].Contains(r) {
		return
	}
	m.rowL[l].Add(r)
	m.rowR[r].Add(l)
	m.edges++
}

// HasEdge reports whether (l, r) is an edge.
func (m *Matrix) HasEdge(l, r int) bool { return m.rowL[l].Contains(r) }

// RowL returns the neighbour set of left vertex l (do not modify).
func (m *Matrix) RowL(l int) *bitset.Set { return m.rowL[l] }

// RowR returns the neighbour set of right vertex r (do not modify).
func (m *Matrix) RowR(r int) *bitset.Set { return m.rowR[r] }

// Density returns |E|/(|L|·|R|).
func (m *Matrix) Density() float64 {
	if m.nl == 0 || m.nr == 0 {
		return 0
	}
	return float64(m.edges) / (float64(m.nl) * float64(m.nr))
}

// Reset reshapes m in place into an empty nl×nr matrix, reusing the row
// sets' backing storage (rows kept in the slices' spare capacity from
// earlier, larger shapes are reused too). Intended for per-worker matrix
// arenas that host one induced subgraph after another.
func (m *Matrix) Reset(nl, nr int) {
	m.nl, m.nr, m.edges = nl, nr, 0
	m.rowL = resetRows(m.rowL, nl, nr)
	m.rowR = resetRows(m.rowR, nr, nl)
}

// resetRows resizes rows to n entries of width-bit empty sets, reshaping
// existing sets in place and allocating only for never-before-seen rows.
func resetRows(rows []*bitset.Set, n, width int) []*bitset.Set {
	full := rows[:cap(rows)]
	if len(full) < n {
		next := make([]*bitset.Set, n)
		copy(next, full)
		full = next
	}
	rows = full[:n]
	for i, s := range rows {
		if s == nil {
			rows[i] = bitset.New(width)
		} else {
			s.Reshape(width)
		}
	}
	return rows
}

// FromBigraph converts a whole bipartite graph to a matrix. Matrix left
// index i corresponds to unified id i, right index j to unified id NL+j.
func FromBigraph(g *bigraph.Graph) *Matrix {
	m := NewMatrix(g.NL(), g.NR())
	for l := 0; l < g.NL(); l++ {
		for _, r := range g.Neighbors(l) {
			m.AddEdge(l, int(r)-g.NL())
		}
	}
	return m
}

// FromInduced builds the matrix of the subgraph of g induced by the given
// unified ids (lefts from L, rights from R, each in any order). It returns
// the matrix; matrix index i on the left corresponds to lefts[i], index j
// on the right to rights[j].
func FromInduced(g *bigraph.Graph, lefts, rights []int) *Matrix {
	m := &Matrix{}
	FromInducedInto(m, g, lefts, rights, nil)
	return m
}

// FromInducedInto is FromInduced filling a caller-owned matrix arena:
// m is Reset to len(lefts)×len(rights) and populated in place. pos is a
// scratch position table indexed by unified id of g (grown as needed,
// contents overwritten); the possibly-grown table is returned for reuse.
func FromInducedInto(m *Matrix, g *bigraph.Graph, lefts, rights []int, pos []int32) []int32 {
	m.Reset(len(lefts), len(rights))
	n := g.NumVertices()
	if cap(pos) < n {
		pos = make([]int32, n)
	}
	pos = pos[:n]
	for i := range pos {
		pos[i] = -1
	}
	for j, v := range rights {
		pos[v] = int32(j)
	}
	for i, v := range lefts {
		for _, wn := range g.Neighbors(v) {
			if j := pos[wn]; j >= 0 {
				m.AddEdge(i, int(j))
			}
		}
	}
	return pos
}
