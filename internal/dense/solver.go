package dense

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/core"
)

// Mode selects the search algorithm.
type Mode int

const (
	// ModeBasic is Algorithm 1: plain branch and bound with the simple
	// bounding condition and alternating-side expansion.
	ModeBasic Mode = iota
	// ModeDense is Algorithm 3 (denseMBB): Lemma 1/2 reductions, the
	// polynomially solvable case of Lemma 3 solved by dynamicMBB, and
	// triviality-last branching at a vertex missing ≥ 3 neighbours.
	ModeDense
)

// Options configures a solve over a Matrix.
type Options struct {
	Mode Mode

	// Lower is the incumbent balanced size: only bicliques of balanced
	// size strictly greater than Lower are searched for and reported.
	// The execution context's shared incumbent (Exec.Best) is read live
	// during the search and tightens this bound as other workers improve.
	Lower int

	// FixedA forces the given left indices into the partial solution A.
	// Candidate right vertices are restricted to their common neighbours.
	// Used by the sparse framework to anchor the search at the centre
	// vertex of a vertex-centred subgraph.
	FixedA []int

	// CandA/CandB restrict the candidate sets to the given indices. Nil
	// means the whole side.
	CandA, CandB []int

	// Ablation switches (benchmarking the design choices documented in
	// DESIGN.md §3; production callers leave them false).
	DisableProfileBound  bool // drop the degree-profile bound
	DisableMatchingBound bool // drop the complement-matching bound
	DisableGreedySeed    bool // start with an empty incumbent
}

// Result of a dense solve. A and B are matrix-local indices; Found is true
// only if a balanced biclique strictly larger than Options.Lower was found
// by this solve (bicliques matched elsewhere and shared via the execution
// context raise the pruning bound but are never reported here).
type Result struct {
	Found bool
	A, B  []int
	Size  int // balanced per-side size, == len(A) == len(B) when Found
	Stats core.Stats
}

// denseScratchKey identifies recycled *solver arenas on an Exec: one
// solver (pools, suffix counts, dynamicMBB buffers) per concurrent solve,
// reused across the many solves a planner or verification pipeline runs
// on the same context.
var denseScratchKey = new(core.ScratchKey)

// Solve runs the configured algorithm under ex (nil means unlimited) to
// completion or budget exhaustion and returns the best balanced biclique
// strictly larger than Options.Lower, if any. Solve is safe to call from
// many goroutines sharing one ex: the budget is consumed atomically and
// the shared incumbent size tightens every concurrent solve. Because the
// incumbent size is adopted as a pruning bound, solves sharing an ex
// must be searching the same optimum — the same graph, or subgraphs of
// one graph as the sparse verification pipeline does; reusing an ex
// across unrelated graphs prunes with a bound that does not apply.
//
// Solve recycles its internal arenas through ex (see core.Exec scratch):
// steady-state solves on one context allocate nothing unless they improve
// on Options.Lower. The returned index slices are freshly allocated and
// owned by the caller.
func Solve(ex *core.Exec, m *Matrix, opt Options) Result {
	var s *solver
	if v := ex.GetScratch(denseScratchKey); v != nil {
		s = v.(*solver)
		s.reset(m)
	} else {
		s = &solver{
			poolL: bitset.NewPool(m.nl),
			poolR: bitset.NewPool(m.nr),
		}
	}
	s.m = m
	s.mode = opt.Mode
	s.ex = ex
	s.bestSize = opt.Lower
	s.noProfileBound = opt.DisableProfileBound
	s.noMatchingBound = opt.DisableMatchingBound
	if sb := ex.Best(); sb > s.bestSize {
		s.bestSize = sb
	}

	CA := s.poolL.Get()
	if opt.CandA == nil {
		CA.FillAll()
	} else {
		for _, v := range opt.CandA {
			CA.Add(v)
		}
	}
	CB := s.poolR.Get()
	if opt.CandB == nil {
		CB.FillAll()
	} else {
		for _, v := range opt.CandB {
			CB.Add(v)
		}
	}
	for _, u := range opt.FixedA {
		s.A = append(s.A, u)
		CA.Remove(u)
		CB.And(m.rowL[u])
	}

	if opt.Mode == ModeDense && !opt.DisableGreedySeed {
		s.greedySeed(CA, CB)
	}
	s.node(CA, CB)
	s.poolL.Put(CA)
	s.poolR.Put(CB)

	res := Result{Stats: s.stats}
	res.Stats.SumSearchDepth = int64(s.maxDepth)
	res.Stats.SearchSamples = 1
	res.Stats.TimedOut = s.timedOut
	if s.found {
		res.Found = true
		res.Size = s.foundSize
		// Copy out: bestA/bestB stay with the solver for the next solve.
		res.A = append([]int(nil), s.bestA...)
		res.B = append([]int(nil), s.bestB...)
	}
	ex.PutScratch(denseScratchKey, s)
	return res
}

// reset readies a recycled solver for a solve over m: the pools are
// reshaped to m's dimensions (reusing their backing arrays) and all
// per-solve state is cleared. The amortised buffers (suffix counts,
// dynamicMBB scratch, decompose arenas) keep their capacity.
func (s *solver) reset(m *Matrix) {
	s.poolL.Reset(m.nl)
	s.poolR.Reset(m.nr)
	s.A = s.A[:0]
	s.B = s.B[:0]
	s.bestA = s.bestA[:0]
	s.bestB = s.bestB[:0]
	s.stats = core.Stats{}
	s.found = false
	s.foundSize = 0
	s.depth, s.maxDepth = 0, 0
	s.timedOut = false
}

type solver struct {
	m     *Matrix
	mode  Mode
	ex    *core.Exec
	stats core.Stats

	poolL, poolR *bitset.Pool
	A, B         []int // current partial biclique (matrix-local indices)

	// bestSize is the pruning bound: the max of Options.Lower, the local
	// finds and the shared incumbent read from ex. found/foundSize record
	// only the local finds (what Result may legitimately report).
	bestSize     int
	found        bool
	foundSize    int
	bestA, bestB []int

	// sufA[x] = number of CA vertices with ≥ x neighbours in CB at the
	// current node (filled by pickBranch); sufB is symmetric. Backing for
	// the degree-profile bound.
	sufA, sufB []int

	// Scratch buffers for dynamicMBB (allocation-free fast path).
	caScratch, cbScratch []int
	fbScratch, fbTmp     []int
	posR                 []int32
	matchScratch         *bitset.Set

	// decompose arenas (poly.go): complement adjacency, walk state and
	// component storage, all reused across dynamicMBB invocations. seqBuf
	// and frontBuf are pre-sized before each decomposition so the
	// component subslices handed out never relocate.
	adjBuf       [][2]int32
	degBuf       []int8
	visBuf       []bool
	seqBuf       []int
	frontBuf     []int
	compBuf      []component
	trivL, trivR []int

	noProfileBound, noMatchingBound bool

	depth, maxDepth int
	timedOut        bool
}

// profileBound returns the largest target size t consistent with the
// candidate degree profiles: a balanced biclique of size t through this
// node needs ≥ t−|A| vertices of CA with ≥ t−|B| neighbours in CB and
// ≥ t−|B| vertices of CB with ≥ t−|A| neighbours in CA. Feasibility is
// monotone in t, so the maximum is found by binary search. This is the
// whole-subproblem generalisation of the Lemma 2 per-vertex rule.
func (s *solver) profileBound(a, b, ca, cb int) int {
	lo, hi := 0, minInt(a+ca, b+cb)
	feasible := func(t int) bool {
		na, nb := t-a, t-b
		if na < 0 {
			na = 0
		}
		if nb < 0 {
			nb = 0
		}
		xa, xb := t-b, t-a
		if xa < 0 {
			xa = 0
		}
		if xb < 0 {
			xb = 0
		}
		return s.sufA[xa] >= na && s.sufB[xb] >= nb
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// node owns CA and CB: it may mutate them freely and the caller must not
// reuse them afterwards.
func (s *solver) node(CA, CB *bitset.Set) {
	if !s.ex.Spend() {
		s.timedOut = true
		return
	}
	// Adopt the shared incumbent: an improvement found by any concurrent
	// worker immediately strengthens this solve's pruning bound.
	if sb := s.ex.Best(); sb > s.bestSize {
		s.bestSize = sb
	}
	s.stats.Nodes++
	s.depth++
	if s.depth > s.maxDepth {
		s.maxDepth = s.depth
	}
	baseA, baseB := len(s.A), len(s.B)
	defer func() {
		s.depth--
		s.A = s.A[:baseA]
		s.B = s.B[:baseB]
	}()

	if s.mode == ModeDense {
		s.reduce(CA, CB)
	}

	a, b := len(s.A), len(s.B)
	ca, cb := CA.Count(), CB.Count()
	s.updateOneSided(CB, a, b, cb)
	s.updateOneSidedR(CA, a, b, ca)

	// Bounding condition (Algorithm 1 line 1 / Algorithm 3 lines 1, 3).
	if ub := minInt(a+ca, b+cb); ub <= s.bestSize {
		return
	}
	if ca == 0 || cb == 0 {
		return // terminal: one-sided extension already evaluated
	}

	if s.mode == ModeDense {
		u, onLeft, maxMiss := s.pickBranch(CA, CB, ca, cb)
		// Degree-profile bound: prune unless some target t > best is
		// consistent with the candidate degree distributions.
		if !s.noProfileBound && s.profileBound(a, b, ca, cb) <= s.bestSize {
			return
		}
		// Complement-matching bound (König-style): every matching edge of
		// the complement candidate graph forces at least one exclusion.
		if !s.noMatchingBound && s.matchingBound(CA, CB, a, b, ca, cb) <= s.bestSize {
			return
		}
		if maxMiss <= 2 {
			// Lemma 3: the candidate subgraph is polynomially solvable.
			s.stats.PolyCases++
			s.dynamicMBB(CA, CB)
			return
		}
		s.branch(u, onLeft, CA, CB)
		return
	}

	// ModeBasic: expand the smaller side to keep the enumeration
	// near-balanced (the role-swap of Algorithm 1).
	if a <= b {
		s.branch(CA.First(), true, CA, CB)
	} else {
		s.branch(CB.First(), false, CA, CB)
	}
}

// branch explores the include/exclude subtrees for vertex u (a left index
// if onLeft, else a right index).
//
// In ModeDense the exclude branch is explored first: the branch vertex is
// the one missing the most neighbours — the least likely member of a
// large biclique — so excluding it is the "triviality last" move that
// steers the first descent towards the dense, polynomially solvable core
// and picks up a strong incumbent immediately. ModeBasic keeps Algorithm
// 1's include-first order.
func (s *solver) branch(u int, onLeft bool, CA, CB *bitset.Set) {
	excludeFirst := s.mode == ModeDense
	if onLeft {
		CA.Remove(u)
		if excludeFirst {
			ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
			s.node(ca2, cb2)
			s.poolL.Put(ca2)
			s.poolR.Put(cb2)
			CB.And(s.m.rowL[u])
			s.A = append(s.A, u)
			s.node(CA, CB)
			s.A = s.A[:len(s.A)-1]
			return
		}
		// Include u: A ← A∪{u}, CB ← CB ∩ N(u).
		ca2 := s.poolL.GetCopy(CA)
		cb2 := s.poolR.GetCopy(CB)
		cb2.And(s.m.rowL[u])
		s.A = append(s.A, u)
		s.node(ca2, cb2)
		s.A = s.A[:len(s.A)-1]
		s.poolL.Put(ca2)
		s.poolR.Put(cb2)
		// Exclude u.
		s.node(CA, CB)
		return
	}
	CB.Remove(u)
	if excludeFirst {
		ca2, cb2 := s.poolL.GetCopy(CA), s.poolR.GetCopy(CB)
		s.node(ca2, cb2)
		s.poolL.Put(ca2)
		s.poolR.Put(cb2)
		CA.And(s.m.rowR[u])
		s.B = append(s.B, u)
		s.node(CA, CB)
		s.B = s.B[:len(s.B)-1]
		return
	}
	ca2 := s.poolL.GetCopy(CA)
	ca2.And(s.m.rowR[u])
	cb2 := s.poolR.GetCopy(CB)
	s.B = append(s.B, u)
	s.node(ca2, cb2)
	s.B = s.B[:len(s.B)-1]
	s.poolL.Put(ca2)
	s.poolR.Put(cb2)
	s.node(CA, CB)
}

// pickBranch scans both candidate sides for the vertex missing the most
// neighbours on the opposite candidate side. If every vertex misses at
// most 2, the subgraph satisfies Lemma 3. As a side effect it fills the
// suffix degree counts used by profileBound.
func (s *solver) pickBranch(CA, CB *bitset.Set, ca, cb int) (u int, onLeft bool, maxMiss int) {
	if cap(s.sufA) < cb+2 {
		s.sufA = make([]int, cb+2)
	}
	if cap(s.sufB) < ca+2 {
		s.sufB = make([]int, ca+2)
	}
	s.sufA = s.sufA[:cb+2]
	s.sufB = s.sufB[:ca+2]
	for i := range s.sufA {
		s.sufA[i] = 0
	}
	for i := range s.sufB {
		s.sufB[i] = 0
	}

	u, onLeft, maxMiss = -1, true, -1
	for v := CA.First(); v != -1; v = CA.NextAfter(v) {
		deg := s.m.rowL[v].AndCount(CB)
		s.sufA[deg]++
		if miss := cb - deg; miss > maxMiss {
			maxMiss, u, onLeft = miss, v, true
		}
	}
	for v := CB.First(); v != -1; v = CB.NextAfter(v) {
		deg := s.m.rowR[v].AndCount(CA)
		s.sufB[deg]++
		if miss := ca - deg; miss > maxMiss {
			maxMiss, u, onLeft = miss, v, false
		}
	}
	// Turn histograms into suffix counts: sufX[x] = #vertices with deg ≥ x.
	for x := cb; x >= 0; x-- {
		s.sufA[x] += s.sufA[x+1]
	}
	for x := ca; x >= 0; x-- {
		s.sufB[x] += s.sufB[x+1]
	}
	return u, onLeft, maxMiss
}

// updateOneSided records the balanced biclique obtained by extending B
// with arbitrary vertices of CB (every one of them is adjacent to all of
// A, so any subset yields a biclique).
func (s *solver) updateOneSided(CB *bitset.Set, a, b, cb int) {
	c := minInt(a, b+cb)
	if c <= s.bestSize {
		return
	}
	s.record(c)
	s.bestA = append(s.bestA[:0], s.A[:c]...)
	s.bestB = append(s.bestB[:0], s.B...)
	need := c - b
	for v := CB.First(); need > 0; v = CB.NextAfter(v) {
		s.bestB = append(s.bestB, v)
		need--
	}
}

// record installs c as a locally found balanced size and publishes it to
// the shared incumbent so concurrent workers prune with it immediately.
func (s *solver) record(c int) {
	s.bestSize = c
	s.found = true
	s.foundSize = c
	s.ex.OfferBest(c)
}

// updateOneSidedR is the mirror image: extend A from CA.
func (s *solver) updateOneSidedR(CA *bitset.Set, a, b, ca int) {
	c := minInt(b, a+ca)
	if c <= s.bestSize {
		return
	}
	s.record(c)
	s.bestB = append(s.bestB[:0], s.B[:c]...)
	s.bestA = append(s.bestA[:0], s.A...)
	need := c - a
	for v := CA.First(); need > 0; v = CA.NextAfter(v) {
		s.bestA = append(s.bestA, v)
		need--
	}
}

// greedySeed primes the incumbent with a cheap alternating greedy pass:
// always extend the smaller side with the candidate keeping the most
// opposite candidates alive. Every intermediate state is evaluated via
// the one-sided extension rule, so the recorded incumbent is the best
// balanced biclique along the greedy trajectory. The search that follows
// starts with strong Lemma 2 reductions and bound prunes from the root.
func (s *solver) greedySeed(CA0, CB0 *bitset.Set) {
	CA := s.poolL.GetCopy(CA0)
	CB := s.poolR.GetCopy(CB0)
	baseA, baseB := len(s.A), len(s.B)
	for {
		a, b := len(s.A), len(s.B)
		ca, cb := CA.Count(), CB.Count()
		s.updateOneSided(CB, a, b, cb)
		s.updateOneSidedR(CA, a, b, ca)
		if (a <= b && ca == 0) || (a > b && cb == 0) {
			break
		}
		if a <= b {
			bestU, bestDeg := -1, -1
			for u := CA.First(); u != -1; u = CA.NextAfter(u) {
				if d := s.m.rowL[u].AndCount(CB); d > bestDeg {
					bestU, bestDeg = u, d
				}
			}
			CA.Remove(bestU)
			CB.And(s.m.rowL[bestU])
			s.A = append(s.A, bestU)
		} else {
			bestV, bestDeg := -1, -1
			for v := CB.First(); v != -1; v = CB.NextAfter(v) {
				if d := s.m.rowR[v].AndCount(CA); d > bestDeg {
					bestV, bestDeg = v, d
				}
			}
			CB.Remove(bestV)
			CA.And(s.m.rowR[bestV])
			s.B = append(s.B, bestV)
		}
	}
	s.A = s.A[:baseA]
	s.B = s.B[:baseB]
	s.poolL.Put(CA)
	s.poolR.Put(CB)
}

// matchingBound returns an upper bound on the balanced size achievable
// from this node. A biclique extension must pick SA ⊆ CA and SB ⊆ CB with
// no complement edge between them, so for every edge of any matching M in
// the complement candidate graph at least one endpoint is discarded:
// |SA| + |SB| ≤ ca + cb − |M|, hence
//
//	t ≤ (a + b + ca + cb − |M|) / 2.
//
// Any matching certifies the bound; a greedy maximal matching (first free
// complement partner per CA vertex) is used for speed.
func (s *solver) matchingBound(CA, CB *bitset.Set, a, b, ca, cb int) int {
	if s.matchScratch == nil {
		s.matchScratch = bitset.New(s.m.nr)
	} else if s.matchScratch.Cap() != s.m.nr {
		s.matchScratch.Reshape(s.m.nr)
	}
	free := s.matchScratch
	free.CopyFrom(CB) // complement partners still unmatched
	m := 0
	for u := CA.First(); u != -1; u = CA.NextAfter(u) {
		// First unmatched CB vertex missing from u's neighbourhood.
		v := firstAndNot(free, s.m.rowL[u])
		if v >= 0 {
			free.Remove(v)
			m++
		}
	}
	return (a + b + ca + cb - m) / 2
}

// firstAndNot returns the first bit set in a but not in b, or -1.
func firstAndNot(a, b *bitset.Set) int {
	aw, bw := a.Words(), b.Words()
	for i, w := range aw {
		if d := w &^ bw[i]; d != 0 {
			return i*64 + bits.TrailingZeros64(d)
		}
	}
	return -1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
