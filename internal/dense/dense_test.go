package dense_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/dense"
)

func randomBigraph(rng *rand.Rand, maxSide int, p float64) *bigraph.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

// solveToBiclique runs the dense solver on a whole graph and lifts the
// matrix-local answer to unified ids.
func solveToBiclique(g *bigraph.Graph, mode dense.Mode) bigraph.Biclique {
	m := dense.FromBigraph(g)
	res := dense.Solve(nil, m, dense.Options{Mode: mode})
	if !res.Found {
		return bigraph.Biclique{}
	}
	bc := bigraph.Biclique{}
	for _, l := range res.A {
		bc.A = append(bc.A, g.Left(l))
	}
	for _, r := range res.B {
		bc.B = append(bc.B, g.Right(r))
	}
	return bc
}

func TestMatrixBasics(t *testing.T) {
	m := dense.NewMatrix(3, 2)
	m.AddEdge(0, 0)
	m.AddEdge(0, 0) // duplicate ignored
	m.AddEdge(2, 1)
	if m.NumEdges() != 2 {
		t.Fatalf("edges = %d", m.NumEdges())
	}
	if !m.HasEdge(0, 0) || m.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if m.NL() != 3 || m.NR() != 2 {
		t.Fatal("sizes wrong")
	}
	if m.Density() != 2.0/6.0 {
		t.Fatalf("density = %v", m.Density())
	}
	if !m.RowL(0).Contains(0) || !m.RowR(1).Contains(2) {
		t.Fatal("rows wrong")
	}
}

func TestFromInduced(t *testing.T) {
	g := bigraph.FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {2, 2}})
	m := dense.FromInduced(g, []int{0, 1}, []int{g.Right(1)})
	if m.NL() != 2 || m.NR() != 1 || m.NumEdges() != 2 {
		t.Fatalf("induced matrix wrong: %dx%d m=%d", m.NL(), m.NR(), m.NumEdges())
	}
	if !m.HasEdge(0, 0) || !m.HasEdge(1, 0) {
		t.Fatal("edges wrong")
	}
}

func TestSolveCompleteBipartite(t *testing.T) {
	for _, mode := range []dense.Mode{dense.ModeBasic, dense.ModeDense} {
		for _, n := range []int{1, 2, 5, 8} {
			m := dense.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.AddEdge(i, j)
				}
			}
			res := dense.Solve(nil, m, dense.Options{Mode: mode})
			if !res.Found || res.Size != n {
				t.Fatalf("mode %v complete K%d,%d: size = %d, want %d", mode, n, n, res.Size, n)
			}
		}
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	m := dense.NewMatrix(4, 4)
	for _, mode := range []dense.Mode{dense.ModeBasic, dense.ModeDense} {
		res := dense.Solve(nil, m, dense.Options{Mode: mode})
		if res.Found {
			t.Fatalf("mode %v found biclique in empty graph", mode)
		}
	}
}

func TestSolveFig1a(t *testing.T) {
	// Figure 1(a): dense 5x5 graph whose MBB is ({1,2},{6,7}), size 2.
	// We reconstruct a 5x5 dense graph with known optimum: complete 5x5
	// minus a perfect matching has MBB of size 4 per side... instead use
	// the paper's property directly: a dense graph where every vertex
	// misses ≤ 2 must be solved by the polynomial case in one node.
	m := dense.NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j { // complement is a perfect matching (5 odd paths)
				m.AddEdge(i, j)
			}
		}
	}
	res := dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense})
	// Complement = 5 disjoint edges; from each we can take one endpoint;
	// optimum balanced size is 4 by taking L sides of two edges... the
	// exact optimum: choose a of the 5 components to contribute L, the
	// rest R: best min(a, 5-a) at a=2 or 3 → 2? No: each component offers
	// (1,0) or (0,1); plus nothing trivial. Best balanced = min(a, 5-a)
	// maximised at a=2 → 2... but we can also *drop* a component's
	// contribution — which never helps. However (1,0)/(0,1) per odd path
	// of length 1: frontier also allows... The true optimum of K5,5 minus
	// perfect matching: A of size k needs B ⊆ common neighbours =
	// vertices not matched to A: 5-k choices → min(k, 5-k) → best 2 at
	// k=2 (wait: min(2,3)=2, min(3,2)=2) → 2? k=2: B can have 3 vertices
	// but balance trims to 2. Optimum is ⌊5/2⌋ = 2.
	if !res.Found || res.Size != 2 {
		t.Fatalf("K5,5 minus matching: size = %d, want 2", res.Size)
	}
	// Note: the greedy seed may already prove optimality via the bounds,
	// in which case dynamicMBB need not fire; exactness is what matters.
	// Verify the witness is a genuine biclique.
	for _, a := range res.A {
		for _, b := range res.B {
			if !m.HasEdge(a, b) {
				t.Fatalf("witness not a biclique: (%d,%d) missing", a, b)
			}
		}
	}
}

func TestPolyCaseCycleComplement(t *testing.T) {
	// Complement = a single 2k-cycle: L_i missing R_i and R_{i+1 mod k}.
	for _, k := range []int{2, 3, 4, 5, 8} {
		m := dense.NewMatrix(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if j != i && j != (i+1)%k {
					m.AddEdge(i, j)
				}
			}
		}
		g := bigraph.NewBuilder(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if m.HasEdge(i, j) {
					g.AddEdge(i, j)
				}
			}
		}
		want := baseline.BruteForceSize(g.Build())
		res := dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense})
		got := 0
		if res.Found {
			got = res.Size
		}
		if got != want {
			t.Fatalf("cycle complement k=%d: got %d, want %d", k, got, want)
		}
	}
}

func TestSolveWithLowerBound(t *testing.T) {
	// K3,3: optimum 3. With Lower=3 nothing strictly larger exists.
	m := dense.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.AddEdge(i, j)
		}
	}
	res := dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense, Lower: 3})
	if res.Found {
		t.Fatal("found result not strictly larger than lower bound")
	}
	res = dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense, Lower: 2})
	if !res.Found || res.Size != 3 {
		t.Fatalf("with lower 2: size = %d, want 3", res.Size)
	}
}

func TestSolveFixedA(t *testing.T) {
	// Two disjoint K2,2s; anchoring at a vertex of the first must return
	// a biclique through it.
	m := dense.NewMatrix(4, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m.AddEdge(i, j)
			m.AddEdge(2+i, 2+j)
		}
	}
	res := dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense, FixedA: []int{0}})
	if !res.Found || res.Size != 2 {
		t.Fatalf("anchored solve: size = %d, want 2", res.Size)
	}
	foundAnchor := false
	for _, a := range res.A {
		if a == 0 {
			foundAnchor = true
		}
		if a >= 2 {
			t.Fatalf("anchored solve escaped the anchor's component: A=%v", res.A)
		}
	}
	if !foundAnchor {
		t.Fatalf("anchor not in result: A=%v", res.A)
	}
}

func TestSolveBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomBigraph(rng, 14, 0.5)
	m := dense.FromBigraph(g)
	ex := core.NewExec(nil, core.Limits{MaxNodes: 1})
	res := dense.Solve(ex, m, dense.Options{Mode: dense.ModeBasic})
	if !res.Stats.TimedOut {
		t.Fatal("expected timeout flag with 1-node budget")
	}
}

// TestQuickModesMatchBruteForce is the central correctness test: both
// search modes must find the exact optimum on random graphs across the
// density spectrum.
func TestQuickModesMatchBruteForce(t *testing.T) {
	densities := []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 12, densities[rng.Intn(len(densities))])
		want := baseline.BruteForceSize(g)
		for _, mode := range []dense.Mode{dense.ModeBasic, dense.ModeDense} {
			bc := solveToBiclique(g, mode)
			if bc.Size() != want {
				t.Logf("mode %v: got %d want %d on %dx%d m=%d edges=%v",
					mode, bc.Size(), want, g.NL(), g.NR(), g.NumEdges(), g.Edges())
				return false
			}
			if want > 0 && (!bc.IsBicliqueOf(g) || !bc.IsBalanced()) {
				t.Logf("mode %v: invalid witness %v", mode, bc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDenseGraphsPolyConvergence: on sufficiently dense graphs the
// dense solver must reach the polynomial case and stay exact.
func TestQuickDensePolyConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 4+rng.Intn(10), 4+rng.Intn(10)
		b := bigraph.NewBuilder(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.9 {
					b.AddEdge(l, r)
				}
			}
		}
		g := b.Build()
		want := baseline.BruteForceSize(g)
		bc := solveToBiclique(g, dense.ModeDense)
		return bc.Size() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAnchoredSolve cross-checks FixedA solves against an anchored
// brute force.
func TestQuickAnchoredSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 10, 0.4)
		if g.Deg(0) == 0 {
			return true
		}
		m := dense.FromBigraph(g)
		res := dense.Solve(nil, m, dense.Options{Mode: dense.ModeDense, FixedA: []int{0}})
		// anchored brute force: enumerate subsets of L containing 0
		best := 0
		nl := g.NL()
		for mask := uint64(1); mask < 1<<uint(nl); mask++ {
			if mask&1 == 0 {
				continue
			}
			var s []int
			for i := 0; i < nl; i++ {
				if mask&(1<<uint(i)) != 0 {
					s = append(s, i)
				}
			}
			// common neighbourhood
			common := map[int]int{}
			for _, l := range s {
				for _, r := range g.Neighbors(l) {
					common[int(r)]++
				}
			}
			cnt := 0
			for _, c := range common {
				if c == len(s) {
					cnt++
				}
			}
			size := len(s)
			if cnt < size {
				size = cnt
			}
			if size > best {
				best = size
			}
		}
		got := 0
		if res.Found {
			got = res.Size
		}
		if got != best {
			t.Logf("anchored: got %d want %d on edges=%v", got, best, g.Edges())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceKnown(t *testing.T) {
	// Figure 1(b): optimum balanced size is 2 (({3,4},{9,10})).
	edges := [][2]int{
		{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {2, 3},
		{3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 1}, {5, 4}, {5, 5},
	}
	g := bigraph.FromEdges(6, 6, edges)
	bc := baseline.BruteForce(g)
	if bc.Size() != 2 {
		t.Fatalf("fig1b optimum = %d, want 2", bc.Size())
	}
	if !bc.IsBicliqueOf(g) || !bc.IsBalanced() {
		t.Fatalf("invalid brute-force witness %v", bc)
	}
}

func TestBruteForceFlip(t *testing.T) {
	// NL > NR exercises the flipped enumeration path.
	g := bigraph.FromEdges(5, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {3, 1}, {4, 0}})
	bc := baseline.BruteForce(g)
	if bc.Size() != 2 {
		t.Fatalf("size = %d, want 2", bc.Size())
	}
	if !bc.IsBicliqueOf(g) {
		t.Fatalf("invalid witness %v", bc)
	}
}

func TestBruteForceEmpty(t *testing.T) {
	if baseline.BruteForce(bigraph.FromEdges(3, 3, nil)).Size() != 0 {
		t.Fatal("empty graph should have size 0")
	}
	if baseline.BruteForce(bigraph.FromEdges(0, 3, nil)).Size() != 0 {
		t.Fatal("no-left-side graph should have size 0")
	}
}

// TestQuickAblationsStayExact: disabling any engineered pruning must
// never change the answer, only the node count.
func TestQuickAblationsStayExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 11, 0.3+0.6*rng.Float64())
		want := baseline.BruteForceSize(g)
		m := dense.FromBigraph(g)
		for _, opt := range []dense.Options{
			{Mode: dense.ModeDense, DisableProfileBound: true},
			{Mode: dense.ModeDense, DisableMatchingBound: true},
			{Mode: dense.ModeDense, DisableGreedySeed: true},
			{Mode: dense.ModeDense, DisableProfileBound: true, DisableMatchingBound: true, DisableGreedySeed: true},
		} {
			res := dense.Solve(nil, m, opt)
			got := 0
			if res.Found {
				got = res.Size
			}
			if got != want {
				t.Logf("opt %+v: got %d want %d", opt, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
