package baseline

import (
	"sort"

	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
)

// This file implements the two adapted maximal-biclique-enumeration (MBE)
// searchers used to build the adp baselines (Table 3). Following the
// paper's adaptation recipe, maximality and duplication checking are
// removed; instead the incumbent balanced size terminates unpromising
// branches.
//
//   - iMBEA style [29]: subsets of the smaller side are enumerated
//     globally; the partner side is always the common neighbourhood.
//   - FMBE style [9]: before enumerating the bicliques through a vertex,
//     the scope is narrowed to its two-hop neighbourhood, and each vertex
//     is processed against its successors in a total order.

// MBEKind selects the enumeration strategy.
type MBEKind int

const (
	// IMBEA enumerates subsets of one side globally.
	IMBEA MBEKind = iota
	// FMBE scopes the enumeration to two-hop neighbourhoods.
	FMBE
)

// MBESearch runs the adapted enumeration and returns the best balanced
// biclique with size strictly greater than lower (or the incumbent-less
// best when lower is 0). The returned stats count enumeration nodes.
func MBESearch(ex *core.Exec, g *bigraph.Graph, kind MBEKind, lower int) core.Result {
	m := &mbeSolver{g: g, ex: ex, bestSize: lower}
	switch kind {
	case IMBEA:
		m.global()
	case FMBE:
		m.scoped()
	}
	res := core.Result{Biclique: m.best}
	res.Stats.Nodes = m.nodes
	res.Stats.TimedOut = m.timedOut
	return res
}

type mbeSolver struct {
	g        *bigraph.Graph
	ex       *core.Exec
	best     bigraph.Biclique
	bestSize int
	nodes    int64
	timedOut bool
}

// global is the iMBEA-style enumeration: expand subsets of the side with
// fewer vertices; the partner side is the running common neighbourhood.
func (m *mbeSolver) global() {
	g := m.g
	enumLeft := g.NL() <= g.NR()
	var side []int32
	if enumLeft {
		for i := 0; i < g.NL(); i++ {
			side = append(side, int32(g.Left(i)))
		}
	} else {
		for j := 0; j < g.NR(); j++ {
			side = append(side, int32(g.Right(j)))
		}
	}
	// Process high-degree vertices first: large bicliques appear earlier.
	sort.Slice(side, func(i, j int) bool {
		di, dj := g.Deg(int(side[i])), g.Deg(int(side[j]))
		if di != dj {
			return di > dj
		}
		return side[i] < side[j]
	})
	m.expand(nil, nil, side, enumLeft)
}

// expand grows the enumeration set S (with common neighbourhood common;
// nil means "not yet seeded") over the remaining candidates.
func (m *mbeSolver) expand(S, common, cand []int32, enumLeft bool) {
	if !m.ex.Spend() {
		m.timedOut = true
		return
	}
	m.nodes++
	for k := 0; k < len(cand); k++ {
		v := cand[k]
		var nc []int32
		if S == nil {
			nc = append([]int32(nil), m.g.Neighbors(int(v))...)
		} else {
			nc = intersect32(m.g, common, int(v))
		}
		ns := append(S[:len(S):len(S)], v)
		// Record the balanced value of (ns, nc).
		if c := min2(len(ns), len(nc)); c > m.bestSize {
			m.install(ns, nc, c, enumLeft)
		}
		// Bound: S can still grow by the remaining candidates; the common
		// neighbourhood only shrinks.
		if min2(len(ns)+len(cand)-k-1, len(nc)) > m.bestSize {
			m.expand(ns, nc, cand[k+1:], enumLeft)
		}
		if m.timedOut {
			return
		}
	}
}

// scoped is the FMBE-style enumeration: for each vertex v (in degeneracy
// order), enumerate the bicliques through v inside its two-hop scope
// restricted to order successors.
func (m *mbeSolver) scoped() {
	g := m.g
	cores := decomp.Cores(g)
	order := cores.Order
	pos := cores.Pos
	th := decomp.NewTwoHop(g)
	var nbuf []int
	var scope []int32
	for i, v := range order {
		if m.timedOut {
			return
		}
		// Scope: v's same-side two-hop successors; enumeration runs over
		// {v} ∪ scope with the common neighbourhood inside N(v)-ish sets.
		// Both buffers are reused across vertices: expand never retains
		// its candidate slice past the call.
		nbuf = th.Append(v, nil, nbuf[:0])
		scope = scope[:0]
		for _, w := range nbuf {
			if pos[w] > i && (g.IsLeft(w) == g.IsLeft(v)) {
				scope = append(scope, int32(w))
			}
		}
		sort.Slice(scope, func(a, b int) bool {
			da, db := g.Deg(int(scope[a])), g.Deg(int(scope[b]))
			if da != db {
				return da > db
			}
			return scope[a] < scope[b]
		})
		common := append([]int32(nil), g.Neighbors(v)...)
		S := []int32{int32(v)}
		if c := min2(1, len(common)); c > m.bestSize {
			m.install(S, common, c, g.IsLeft(v))
		}
		if min2(1+len(scope), len(common)) > m.bestSize {
			m.expand(S, common, scope, g.IsLeft(v))
		}
	}
}

// install materialises (S, common[:need]) as the new incumbent.
func (m *mbeSolver) install(S, common []int32, c int, enumLeft bool) {
	bc := bigraph.Biclique{}
	for _, v := range S[:c] {
		bc.A = append(bc.A, int(v))
	}
	for _, v := range common[:c] {
		bc.B = append(bc.B, int(v))
	}
	if !enumLeft {
		bc.A, bc.B = bc.B, bc.A
	}
	m.best = bc
	m.bestSize = c
}
