package baseline

import (
	"sort"

	"repro/internal/bigraph"
	"repro/internal/core"
)

// ExtBBCL reimplements the state-of-the-art exact MBB algorithm of Zhou,
// Rossi and Hao [31] as described in the paper's Section 3: a branch and
// bound over vertices in non-increasing global degree order, with two
// precomputed per-vertex upper bounds.
//
//   - The basic bound i_v of a vertex v is the largest integer i such that
//     i same-side vertices each share at least i common neighbours with v
//     (an H-index over the common-neighbour counts).
//   - The tight bound t_v is the largest integer t such that t neighbours
//     of v have basic bound at least t (an H-index over neighbour bounds).
//
// When the search branches at v and 2·t_v cannot beat the incumbent, the
// branch including v is pruned.
func ExtBBCL(ex *core.Exec, g *bigraph.Graph) core.Result {
	e := &extSolver{g: g, ex: ex}
	e.precompute()
	if !e.timedOut {
		order := make([]int32, 0, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			order = append(order, int32(v))
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Deg(int(order[i])), g.Deg(int(order[j]))
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		var ca, cb []int32
		for _, v := range order {
			if g.IsLeft(int(v)) {
				ca = append(ca, v)
			} else {
				cb = append(cb, v)
			}
		}
		e.rec(nil, nil, ca, cb)
	}
	res := core.Result{Biclique: e.best}
	res.Stats.Nodes = e.nodes
	res.Stats.TimedOut = e.timedOut
	return res
}

type extSolver struct {
	g     *bigraph.Graph
	ex    *core.Exec
	tight []int // t_v per vertex
	best  bigraph.Biclique
	nodes int64

	timedOut bool
	scratch  []int32 // counter keys for common-neighbour counting
	counts   []int32
}

// precompute fills tight[] with the two-level H-index bounds.
func (e *extSolver) precompute() {
	n := e.g.NumVertices()
	basic := make([]int, n)
	e.counts = make([]int32, n)
	for v := 0; v < n; v++ {
		if !e.ex.Spend() {
			e.timedOut = true
			return
		}
		// Count common neighbours with every same-side vertex.
		e.scratch = e.scratch[:0]
		for _, w := range e.g.Neighbors(v) {
			for _, x := range e.g.Neighbors(int(w)) {
				if int(x) == v {
					continue
				}
				if e.counts[x] == 0 {
					e.scratch = append(e.scratch, x)
				}
				e.counts[x]++
			}
		}
		// H-index of the counts: largest i with i values ≥ i. The vertex
		// itself participates with count deg(v) (an i×i biclique through v
		// uses v plus i−1 partners, so the count must include v).
		vals := make([]int, 0, len(e.scratch)+1)
		vals = append(vals, e.g.Deg(v))
		for _, x := range e.scratch {
			vals = append(vals, int(e.counts[x]))
			e.counts[x] = 0
		}
		basic[v] = hIndex(vals)
	}
	e.tight = make([]int, n)
	for v := 0; v < n; v++ {
		vals := make([]int, 0, e.g.Deg(v))
		for _, w := range e.g.Neighbors(v) {
			vals = append(vals, basic[w])
		}
		e.tight[v] = hIndex(vals)
	}
}

// hIndex returns the largest i such that at least i values are ≥ i.
func hIndex(vals []int) int {
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	h := 0
	for i, v := range vals {
		if v >= i+1 {
			h = i + 1
		} else {
			break
		}
	}
	return h
}

// rec is the alternating branch-and-bound enumeration with the tight
// upper-bound prune.
func (e *extSolver) rec(A, B, CA, CB []int32) {
	if !e.ex.Spend() {
		e.timedOut = true
		return
	}
	e.nodes++
	a, b := len(A), len(B)
	// Terminal one-sided extensions.
	if c := min2(a, b+len(CB)); c > e.best.Size() {
		e.install(A[:c], B, CB, c-b)
	}
	if c := min2(b, a+len(CA)); c > e.best.Size() {
		e.installFlip(B[:c], A, CA, c-a)
	}
	// Basic bounding condition.
	if min2(a+len(CA), b+len(CB)) <= e.best.Size() {
		return
	}
	if len(CA) == 0 && len(CB) == 0 {
		return
	}

	// Expand the smaller side, keeping the static degree order.
	if (a <= b && len(CA) > 0) || len(CB) == 0 {
		v := CA[0]
		rest := CA[1:]
		// Include v unless its tight bound cannot beat the incumbent.
		if e.tight[v] > e.best.Size() {
			e.rec(append(A[:a:a], v), B, rest, intersect32(e.g, CB, int(v)))
		}
		e.rec(A, B, rest, CB)
		return
	}
	v := CB[0]
	rest := CB[1:]
	if e.tight[v] > e.best.Size() {
		e.rec(A, append(B[:b:b], v), intersect32(e.g, CA, int(v)), rest)
	}
	e.rec(A, B, CA, rest)
}

// install records A (already trimmed) with B extended by need vertices of
// CB as the new incumbent.
func (e *extSolver) install(A, B, CB []int32, need int) {
	bc := bigraph.Biclique{}
	for _, v := range A {
		bc.A = append(bc.A, int(v))
	}
	for _, v := range B {
		bc.B = append(bc.B, int(v))
	}
	for i := 0; i < need; i++ {
		bc.B = append(bc.B, int(CB[i]))
	}
	e.best = bc.Balanced()
}

// installFlip is install with the sides swapped (first argument is the
// right side).
func (e *extSolver) installFlip(B, A, CA []int32, need int) {
	bc := bigraph.Biclique{}
	for _, v := range B {
		bc.B = append(bc.B, int(v))
	}
	for _, v := range A {
		bc.A = append(bc.A, int(v))
	}
	for i := 0; i < need; i++ {
		bc.A = append(bc.A, int(CA[i]))
	}
	e.best = bc.Balanced()
}

// intersect32 returns cand ∩ N(v) preserving cand's order.
func intersect32(g *bigraph.Graph, cand []int32, v int) []int32 {
	ns := g.Neighbors(v)
	out := make([]int32, 0, min2(len(cand), len(ns)))
	for _, c := range cand {
		if hasSorted(ns, c) {
			out = append(out, c)
		}
	}
	return out
}

// hasSorted reports whether x occurs in the ascending slice ns.
func hasSorted(ns []int32, x int32) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= x })
	return i < len(ns) && ns[i] == x
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
