package baseline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
)

func randomBigraph(rng *rand.Rand, maxSide int, p float64) *bigraph.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

func TestExtBBCLKnown(t *testing.T) {
	// Complete K4,4 → size 4.
	b := bigraph.NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			b.AddEdge(i, j)
		}
	}
	res := baseline.ExtBBCL(nil, b.Build())
	if res.Biclique.Size() != 4 {
		t.Fatalf("K4,4: size = %d, want 4", res.Biclique.Size())
	}
}

func TestExtBBCLEmpty(t *testing.T) {
	res := baseline.ExtBBCL(nil, bigraph.FromEdges(3, 3, nil))
	if res.Biclique.Size() != 0 {
		t.Fatalf("empty: size = %d", res.Biclique.Size())
	}
}

func TestQuickExtBBCLMatchesBruteForce(t *testing.T) {
	densities := []float64{0.1, 0.3, 0.5, 0.8}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 11, densities[rng.Intn(len(densities))])
		want := baseline.BruteForceSize(g)
		res := baseline.ExtBBCL(nil, g)
		if res.Biclique.Size() != want {
			t.Logf("got %d want %d on %dx%d edges=%v", res.Biclique.Size(), want, g.NL(), g.NR(), g.Edges())
			return false
		}
		if want > 0 && (!res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMBESearchersMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 11, 0.15+0.5*rng.Float64())
		want := baseline.BruteForceSize(g)
		for _, kind := range []baseline.MBEKind{baseline.IMBEA, baseline.FMBE} {
			res := baseline.MBESearch(nil, g, kind, 0)
			if res.Biclique.Size() != want {
				t.Logf("kind %v: got %d want %d on edges=%v nl=%d nr=%d",
					kind, res.Biclique.Size(), want, g.Edges(), g.NL(), g.NR())
				return false
			}
			if want > 0 && (!res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMBELowerSuppressesSmaller(t *testing.T) {
	// K3,3: with lower=3, nothing strictly larger exists → empty result.
	b := bigraph.NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	for _, kind := range []baseline.MBEKind{baseline.IMBEA, baseline.FMBE} {
		res := baseline.MBESearch(nil, g, kind, 3)
		if res.Biclique.Size() != 0 {
			t.Fatalf("kind %v: expected no result above lower bound", kind)
		}
	}
}

func TestQuickAdpMatchesBruteForce(t *testing.T) {
	kinds := []baseline.AdpKind{baseline.Adp1, baseline.Adp2, baseline.Adp3, baseline.Adp4}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 10, 0.3)
		want := baseline.BruteForceSize(g)
		for _, k := range kinds {
			res := baseline.Adp(nil, g, k)
			if res.Biclique.Size() != want {
				t.Logf("%v: got %d want %d on edges=%v nl=%d nr=%d", k, res.Biclique.Size(), want, g.Edges(), g.NL(), g.NR())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAdpNames(t *testing.T) {
	if baseline.Adp1.String() != "adp1" || baseline.Adp4.String() != "adp4" {
		t.Fatal("names wrong")
	}
	if baseline.AdpKind(0).String() != "adp?" {
		t.Fatal("unknown name wrong")
	}
}

func TestExtBBCLBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomBigraph(rng, 20, 0.5)
	res := baseline.ExtBBCL(core.NewExec(nil, core.Limits{MaxNodes: 2}), g)
	if !res.Stats.TimedOut {
		t.Fatal("expected timeout")
	}
}
