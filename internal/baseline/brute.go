// Package baseline implements the comparison algorithms of the paper's
// evaluation: an exhaustive-subset oracle used by the tests, the
// state-of-the-art exact solver extBBCL [31], adapted maximal-biclique
// enumeration searchers (iMBEA [29] and FMBE [9] style) and the composed
// adp1..adp4 baselines of Table 3.
package baseline

import (
	"repro/internal/bigraph"
	"repro/internal/bitset"
)

// BruteForce computes an exact maximum balanced biclique by enumerating
// every subset of the smaller side. For a subset S the best partner side
// is its common neighbourhood T = ∩_{v∈S} N(v), giving a balanced biclique
// of size min(|S|, |T|); maximising over all S is exact because any
// balanced biclique (A, B) satisfies B ⊆ ∩_{v∈A} N(v).
//
// Complexity is O(2^min(|L|,|R|) · n/64); intended as a testing oracle for
// graphs whose smaller side has at most ~24 vertices.
func BruteForce(g *bigraph.Graph) bigraph.Biclique {
	if g.NL() == 0 || g.NR() == 0 {
		return bigraph.Biclique{}
	}
	flip := g.NL() > g.NR()
	// rows[i] = neighbour set of enumeration-side vertex i over the other
	// side, as side-local indices.
	var small, large int
	if flip {
		small, large = g.NR(), g.NL()
	} else {
		small, large = g.NL(), g.NR()
	}
	rows := make([]*bitset.Set, small)
	for i := 0; i < small; i++ {
		rows[i] = bitset.New(large)
		var v int
		if flip {
			v = g.Right(i)
		} else {
			v = g.Left(i)
		}
		for _, w := range g.Neighbors(v) {
			rows[i].Add(g.LocalIndex(int(w)))
		}
	}

	bestSize := 0
	var bestS []int
	var bestT []int
	common := bitset.New(large)
	for mask := uint64(1); mask < uint64(1)<<uint(small); mask++ {
		var s []int
		common.FillAll()
		for i := 0; i < small; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, i)
				common.And(rows[i])
			}
		}
		size := len(s)
		if c := common.Count(); c < size {
			size = c
		}
		if size > bestSize {
			bestSize = size
			bestS = s
			bestT = common.Slice()
		}
	}
	if bestSize == 0 {
		return bigraph.Biclique{}
	}
	bc := bigraph.Biclique{}
	for _, i := range bestS[:bestSize] {
		if flip {
			bc.B = append(bc.B, g.Right(i))
		} else {
			bc.A = append(bc.A, g.Left(i))
		}
	}
	for _, j := range bestT[:bestSize] {
		if flip {
			bc.A = append(bc.A, g.Left(j))
		} else {
			bc.B = append(bc.B, g.Right(j))
		}
	}
	return bc
}

// BruteForceSize returns only the balanced size of a maximum balanced
// biclique.
func BruteForceSize(g *bigraph.Graph) int { return BruteForce(g).Size() }
