package baseline

import (
	"repro/internal/bigraph"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/heur"
)

// AdpKind names the four composed baselines of Table 3: a heuristic for
// step 1 (POLS or SBMNAS), the core-based upper-bound reduction, and an
// adapted MBE searcher (FMBE or iMBEA) replacing steps 2–3.
type AdpKind int

const (
	Adp1 AdpKind = iota + 1 // POLS   + core bound + FMBE
	Adp2                    // POLS   + core bound + iMBEA
	Adp3                    // SBMNAS + core bound + FMBE
	Adp4                    // SBMNAS + core bound + iMBEA
)

// String returns the Table 3 name.
func (k AdpKind) String() string {
	switch k {
	case Adp1:
		return "adp1"
	case Adp2:
		return "adp2"
	case Adp3:
		return "adp3"
	case Adp4:
		return "adp4"
	}
	return "adp?"
}

// Adp runs the composed baseline: heuristic, Lemma 4 core reduction, then
// the adapted exact MBE search with incumbent pruning. The result is
// exact when the budget does not run out.
func Adp(ex *core.Exec, g *bigraph.Graph, kind AdpKind) core.Result {
	var opt heur.LocalSearchOptions
	switch kind {
	case Adp1, Adp2:
		opt = heur.POLSDefaults()
	default:
		opt = heur.SBMNASDefaults()
	}
	best := heur.LocalSearch(ex, g, opt)

	// Core-based upper-bound reduction (Lemma 4).
	mask := decomp.KCoreMask(g, best.Size()+1)
	reduced, newToOld := g.InducedByMask(mask)

	var stats core.Stats
	if reduced.NumVertices() > 0 {
		kindMBE := FMBE
		if kind == Adp2 || kind == Adp4 {
			kindMBE = IMBEA
		}
		res := MBESearch(ex, reduced, kindMBE, best.Size())
		stats = res.Stats
		if res.Biclique.Size() > best.Size() {
			best = res.Biclique.Remap(newToOld)
		}
	}
	return core.Result{Biclique: best, Stats: stats}
}
