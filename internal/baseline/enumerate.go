package baseline

import (
	"sort"

	"repro/internal/bigraph"
	"repro/internal/core"
)

// EnumerateMaximal enumerates every maximal biclique of g with both sides
// nonempty, in the style of the iMBEA algorithm [29] (the unadapted
// version with maximality and duplication checking that the paper's
// baselines strip). For each maximal biclique it calls fn with the left
// and right unified-id sets; returning false stops the enumeration. The
// return value is the number of maximal bicliques reported (possibly
// truncated by fn or the budget).
func EnumerateMaximal(ex *core.Exec, g *bigraph.Graph, fn func(A, B []int) bool) int {
	return EnumerateMaximalPruned(ex, g, nil, fn)
}

// EnumerateMaximalPruned is EnumerateMaximal with a size-bound pruning
// hook: when bound is non-nil, any recursion subtree whose best possible
// balanced size — min(|L|, |R|+|P|) for the current extension — is ≤
// bound() is skipped, and maximal bicliques whose own balanced size
// min(|A|, |B|) is ≤ bound() are not reported. Every maximal biclique
// with balanced size strictly greater than every bound() value observed
// during the run is still reported exactly once: a subtree only ever
// contains bicliques with A ⊆ L and B ⊆ R∪P, so its balanced sizes are
// capped by the pruning expression. bound may return growing values as
// the caller's incumbent heap fills (see core.TopK.Bound); it must never
// shrink below a value it already returned, or completeness above the
// final bound is lost.
func EnumerateMaximalPruned(ex *core.Exec, g *bigraph.Graph, bound func() int, fn func(A, B []int) bool) int {
	if g.NumEdges() == 0 {
		return 0
	}
	e := &enumerator{g: g, ex: ex, bound: bound, fn: fn}
	// Left candidates: every left vertex with an edge; right candidate
	// set P: all right vertices, processed in ascending degree order (the
	// iMBEA ordering heuristic).
	var L, P []int32
	for i := 0; i < g.NL(); i++ {
		if g.Deg(g.Left(i)) > 0 {
			L = append(L, int32(g.Left(i)))
		}
	}
	for j := 0; j < g.NR(); j++ {
		if g.Deg(g.Right(j)) > 0 {
			P = append(P, int32(g.Right(j)))
		}
	}
	sort.Slice(P, func(i, j int) bool {
		di, dj := g.Deg(int(P[i])), g.Deg(int(P[j]))
		if di != dj {
			return di < dj
		}
		return P[i] < P[j]
	})
	e.expand(L, nil, P, nil)
	return e.count
}

type enumerator struct {
	g       *bigraph.Graph
	ex      *core.Exec
	bound   func() int // nil = unbounded (plain enumeration)
	fn      func(A, B []int) bool
	count   int
	stopped bool
}

// curBound returns the live pruning bound, 0 when unbounded.
func (e *enumerator) curBound() int {
	if e.bound == nil {
		return 0
	}
	return e.bound()
}

// expand is the classic MBEA recursion: L is the common neighbourhood of
// R, P holds unprocessed right candidates and Q the processed ones used
// for maximality checking.
func (e *enumerator) expand(L, R, P, Q []int32) {
	if e.stopped || !e.ex.Spend() {
		e.stopped = true
		return
	}
	for len(P) > 0 && !e.stopped {
		x := P[0]
		P = P[1:]
		// Extend R with x; L shrinks to the common neighbourhood.
		L2 := intersect32(e.g, L, int(x))
		R2 := append(R[:len(R):len(R)], x)
		if len(L2) == 0 {
			Q = append(Q, x)
			continue
		}
		// Bound pruning: every biclique in this subtree has A ⊆ L2 and
		// B ⊆ R2∪P, so its balanced size is at most min(|L2|, |R2|+|P|).
		// x still joins Q — it remains a processed vertex for the
		// maximality checks of the sibling branches.
		if b := e.curBound(); b > 0 && min2(len(L2), len(R2)+len(P)) <= b {
			Q = append(Q, x)
			continue
		}
		// Maximality check against processed vertices: if some q ∈ Q is
		// adjacent to all of L2, then (L2, R2) extends to a biclique
		// containing q and was (or will be) reported elsewhere.
		maximal := true
		var Q2 []int32
		for _, q := range Q {
			c := countAdj(e.g, L2, int(q))
			if c == len(L2) {
				maximal = false
				break
			}
			if c > 0 {
				Q2 = append(Q2, q)
			}
		}
		if maximal {
			// Absorb candidates adjacent to all of L2 into R2; keep the
			// rest as the new candidate set.
			var P2 []int32
			for _, p := range P {
				c := countAdj(e.g, L2, int(p))
				if c == len(L2) {
					R2 = append(R2, p)
				} else if c > 0 {
					P2 = append(P2, p)
				}
			}
			if min2(len(L2), len(R2)) > e.curBound() {
				e.report(L2, R2)
			}
			if len(P2) > 0 && !e.stopped && min2(len(L2), len(R2)+len(P2)) > e.curBound() {
				e.expand(L2, R2, P2, Q2)
			}
		}
		Q = append(Q, x)
	}
}

// countAdj returns |{l ∈ L2 : (l, v) ∈ E}|.
func countAdj(g *bigraph.Graph, L2 []int32, v int) int {
	c := 0
	ns := g.Neighbors(v)
	for _, l := range L2 {
		if hasSorted(ns, l) {
			c++
		}
	}
	return c
}

func (e *enumerator) report(L2, R2 []int32) {
	A := make([]int, len(L2))
	for i, v := range L2 {
		A[i] = int(v)
	}
	B := make([]int, len(R2))
	for i, v := range R2 {
		B[i] = int(v)
	}
	sort.Ints(B)
	e.count++
	if !e.fn(A, B) {
		e.stopped = true
	}
}
