package baseline_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
)

// tieGraph has, in disjoint components, two K2,2s (a size-2 tie), a lone
// edge and a 1×3 star (a size-1 tie). Right-side global ids are nl+j.
func tieGraph() *bigraph.Graph {
	return bigraph.FromEdges(6, 8, [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 1}, // K2,2 on L{0,1} × R{0,1}
		{2, 2}, {2, 3}, {3, 2}, {3, 3}, // K2,2 on L{2,3} × R{2,3}
		{4, 4},                 // lone edge
		{5, 5}, {5, 6}, {5, 7}, // star: maximal biclique with min-side 1
	})
}

func TestTopKBalancedSemantics(t *testing.T) {
	g := tieGraph()
	got := baseline.TopKBalanced(nil, g, 3, 0)
	// Two distinct sizes only — the list is shorter than k.
	want := []bigraph.Biclique{
		{A: []int{0, 1}, B: []int{6, 7}}, // size-2 tie: lex-smallest A wins
		{A: []int{4}, B: []int{10}},      // size-1 tie: edge (4,10) beats star at left 5
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("top-3 = %+v, want %+v", got, want)
	}
	// k truncates.
	if got := baseline.TopKBalanced(nil, g, 1, 0); len(got) != 1 || got[0].Size() != 2 {
		t.Fatalf("top-1 = %+v", got)
	}
	// minSize floors: size-1 answers disappear, then everything does.
	if got := baseline.TopKBalanced(nil, g, 3, 2); len(got) != 1 || got[0].Size() != 2 {
		t.Fatalf("top-3 min 2 = %+v", got)
	}
	if got := baseline.TopKBalanced(nil, g, 3, 3); len(got) != 0 {
		t.Fatalf("top-3 min 3 = %+v, want empty", got)
	}
	// The star's witness must be trimmed to the smallest right id: check
	// via a graph where the star is the only component.
	star := bigraph.FromEdges(1, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}})
	if got := baseline.TopKBalanced(nil, star, 1, 0); !reflect.DeepEqual(got,
		[]bigraph.Biclique{{A: []int{0}, B: []int{1}}}) {
		t.Fatalf("star witness = %+v, want trimmed to smallest right id", got)
	}
}

// TestQuickTopKSizesMatchBrute derives the expected size list straight
// from the brute maximal-biclique enumeration: distinct min-sides,
// descending, truncated to k and floored at minSize.
func TestQuickTopKSizesMatchBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 8, 0.2+0.5*rng.Float64())
		k := 1 + rng.Intn(3)
		minSize := rng.Intn(3)
		// Brute subset sweep, as in bruteMaximalBicliques, but collecting
		// the distinct min-sides at or above the floor.
		distinct := map[int]bool{}
		for mask := uint64(1); mask < 1<<uint(g.NR()); mask++ {
			var B []int
			for j := 0; j < g.NR(); j++ {
				if mask&(1<<uint(j)) != 0 {
					B = append(B, g.Right(j))
				}
			}
			A := commonNeighborsOf(g, B)
			if len(A) == 0 {
				continue
			}
			B2 := commonNeighborsOf(g, A)
			s := len(A)
			if len(B2) < s {
				s = len(B2)
			}
			if s >= 1 && s >= minSize {
				distinct[s] = true
			}
		}
		var want []int
		for s := range distinct {
			want = append(want, s)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(want)))
		if len(want) > k {
			want = want[:k]
		}
		got := baseline.TopKSizes(nil, g, k, minSize)
		if len(want) == 0 {
			want = nil
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d k=%d min=%d: got %v want %v", seed, k, minSize, got, want)
			return false
		}
		// Witnesses must be valid balanced bicliques of g at their size.
		for _, bc := range baseline.TopKBalanced(nil, g, k, minSize) {
			if !bc.IsBalanced() || !bc.IsBicliqueOf(g) {
				t.Logf("invalid witness %+v", bc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumeratePrunedComplete checks the pruning contract: with a
// fixed bound b, every maximal biclique with min-side > b is still
// reported exactly once, and nothing at or below b leaks through.
func TestQuickEnumeratePrunedComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 8, 0.2+0.5*rng.Float64())
		b := rng.Intn(3)
		want := map[string]bool{}
		baseline.EnumerateMaximal(nil, g, func(A, B []int) bool {
			s := len(A)
			if len(B) < s {
				s = len(B)
			}
			if s > b {
				want[pairKey(A, B)] = true
			}
			return true
		})
		got := map[string]bool{}
		ok := true
		baseline.EnumerateMaximalPruned(nil, g, func() int { return b }, func(A, B []int) bool {
			s := len(A)
			if len(B) < s {
				s = len(B)
			}
			if s <= b {
				t.Logf("bound %d leaked size-%d biclique %v %v", b, s, A, B)
				ok = false
			}
			key := pairKey(A, B)
			if got[key] {
				t.Logf("duplicate %s", key)
				ok = false
			}
			got[key] = true
			return true
		})
		if !ok || !reflect.DeepEqual(got, want) {
			t.Logf("seed %d bound %d: got %d bicliques, want %d", seed, b, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
