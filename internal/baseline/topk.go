package baseline

import (
	"sort"

	"repro/internal/bigraph"
	"repro/internal/core"
)

// TopKBalanced is the brute-force top-k oracle: it enumerates every
// maximal biclique of g (EnumerateMaximal) and returns one balanced
// witness for each of the k largest distinct balanced sizes — where the
// balanced size of a maximal biclique (A, B) is min(|A|, |B|) — that are
// at least minSize (minSize ≤ 1 means no floor). This is the semantics
// the query engine's top-k answers implement: the set of balanced sizes
// achievable by locally-maximal balanced bicliques equals the set of
// min-sides of maximal bicliques, so ranking maximal bicliques by
// min-side ranks exactly the interesting (non-trim) balanced bicliques.
//
// Ordering and tie semantics, pinned by TestTopKBalancedSemantics:
//
//   - the list is sorted by size, strictly descending — one entry per
//     distinct size, so len(result) ≤ k and may be shorter when fewer
//     distinct sizes exist;
//   - each witness is balanced: the larger side of the maximal biclique
//     is trimmed to its size smallest vertex ids, and both sides are
//     sorted ascending;
//   - among several maximal bicliques sharing a min-side, the
//     lexicographically smallest trimmed witness (comparing A, then B)
//     wins — a deterministic rule independent of enumeration order.
//
// Intended as a testing oracle: cost is the full maximal-biclique
// enumeration. ex bounds it like any other search.
func TopKBalanced(ex *core.Exec, g *bigraph.Graph, k, minSize int) []bigraph.Biclique {
	if k < 1 {
		k = 1
	}
	floor := 1
	if minSize > floor {
		floor = minSize
	}
	bySize := make(map[int]bigraph.Biclique)
	EnumerateMaximal(ex, g, func(A, B []int) bool {
		s := min2(len(A), len(B))
		if s < floor {
			return true
		}
		w := trimWitness(A, B, s)
		if cur, ok := bySize[s]; !ok || witnessLess(w, cur) {
			bySize[s] = w
		}
		return true
	})
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) > k {
		sizes = sizes[:k]
	}
	out := make([]bigraph.Biclique, len(sizes))
	for i, s := range sizes {
		out[i] = bySize[s]
	}
	return out
}

// TopKSizes returns just the size sequence of TopKBalanced — the
// comparison target for the differential fuzz harness, which checks the
// engine's witnesses for validity separately (witness identity is not
// comparable across enumeration orders once pruning is involved).
func TopKSizes(ex *core.Exec, g *bigraph.Graph, k, minSize int) []int {
	list := TopKBalanced(ex, g, k, minSize)
	sizes := make([]int, len(list))
	for i, bc := range list {
		sizes[i] = bc.Size()
	}
	return sizes
}

// trimWitness balances (A, B) at size s deterministically: both sides
// sorted ascending, the larger side cut to its s smallest ids.
func trimWitness(A, B []int, s int) bigraph.Biclique {
	a := append([]int(nil), A...)
	b := append([]int(nil), B...)
	sort.Ints(a)
	sort.Ints(b)
	return bigraph.Biclique{A: a[:s:s], B: b[:s:s]}
}

// witnessLess orders equal-size witnesses lexicographically, A first.
func witnessLess(x, y bigraph.Biclique) bool {
	for i := range x.A {
		if x.A[i] != y.A[i] {
			return x.A[i] < y.A[i]
		}
	}
	for i := range x.B {
		if x.B[i] != y.B[i] {
			return x.B[i] < y.B[i]
		}
	}
	return false
}
