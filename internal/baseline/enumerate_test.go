package baseline_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/core"
)

// bruteMaximalBicliques enumerates all maximal bicliques (both sides
// nonempty) as closed pairs: for every subset B of the right side, take
// A = Γ(B) and close back B' = Γ(A); collect distinct pairs where B' ⊇ B.
func bruteMaximalBicliques(g *bigraph.Graph) map[string]bool {
	out := map[string]bool{}
	nr := g.NR()
	for mask := uint64(1); mask < 1<<uint(nr); mask++ {
		var B []int
		for j := 0; j < nr; j++ {
			if mask&(1<<uint(j)) != 0 {
				B = append(B, g.Right(j))
			}
		}
		A := commonNeighborsOf(g, B)
		if len(A) == 0 {
			continue
		}
		B2 := commonNeighborsOf(g, A)
		out[pairKey(A, B2)] = true
	}
	return out
}

func commonNeighborsOf(g *bigraph.Graph, set []int) []int {
	counts := map[int]int{}
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			counts[int(w)]++
		}
	}
	var out []int
	for w, c := range counts {
		if c == len(set) {
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

func pairKey(A, B []int) string {
	a := append([]int(nil), A...)
	b := append([]int(nil), B...)
	sort.Ints(a)
	sort.Ints(b)
	return fmt.Sprint(a, "|", b)
}

func TestEnumerateMaximalComplete(t *testing.T) {
	b := bigraph.NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	var got [][2][]int
	n := baseline.EnumerateMaximal(nil, g, func(A, B []int) bool {
		got = append(got, [2][]int{A, B})
		return true
	})
	if n != 1 || len(got) != 1 {
		t.Fatalf("complete K3,3 has exactly 1 maximal biclique, got %d", n)
	}
	if len(got[0][0]) != 3 || len(got[0][1]) != 3 {
		t.Fatalf("wrong maximal biclique: %v", got[0])
	}
}

func TestEnumerateMaximalEdgeless(t *testing.T) {
	if n := baseline.EnumerateMaximal(nil, bigraph.FromEdges(3, 3, nil), func(A, B []int) bool { return true }); n != 0 {
		t.Fatalf("edgeless graph reported %d bicliques", n)
	}
}

func TestEnumerateMaximalEarlyStop(t *testing.T) {
	// A perfect matching has one maximal biclique per edge.
	g := bigraph.FromEdges(4, 4, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	n := baseline.EnumerateMaximal(nil, g, func(A, B []int) bool { return false })
	if n != 1 {
		t.Fatalf("early stop reported %d, want 1", n)
	}
	n = baseline.EnumerateMaximal(nil, g, func(A, B []int) bool { return true })
	if n != 4 {
		t.Fatalf("matching has 4 maximal bicliques, got %d", n)
	}
}

func TestQuickEnumerateMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 8, 0.2+0.5*rng.Float64())
		want := bruteMaximalBicliques(g)
		got := map[string]bool{}
		baseline.EnumerateMaximal(nil, g, func(A, B []int) bool {
			key := pairKey(A, B)
			if got[key] {
				t.Logf("duplicate %s", key)
				return false
			}
			got[key] = true
			// Must be a biclique.
			for _, a := range A {
				for _, b := range B {
					if !g.HasEdge(a, b) {
						t.Logf("not a biclique: %v %v", A, B)
						return false
					}
				}
			}
			return true
		})
		if len(got) != len(want) {
			t.Logf("got %d maximal bicliques, want %d (edges=%v nl=%d nr=%d)",
				len(got), len(want), g.Edges(), g.NL(), g.NR())
			return false
		}
		for k := range got {
			if !want[k] {
				t.Logf("spurious biclique %s", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomBigraph(rng, 14, 0.5)
	n := baseline.EnumerateMaximal(core.NewExec(nil, core.Limits{MaxNodes: 1}), g, func(A, B []int) bool { return true })
	full := baseline.EnumerateMaximal(nil, g, func(A, B []int) bool { return true })
	if full > 1 && n >= full {
		t.Fatalf("budget did not truncate: %d vs %d", n, full)
	}
}
