package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/bigraph"
)

func randomTestGraph(rng *rand.Rand, nl, nr int, p float64) *bigraph.Graph {
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

// TestTwoHopResetAcrossGraphs drives one TwoHop through graphs of
// growing and shrinking sizes and checks every query against a fresh
// instance — the monotone-stamp argument in Reset must hold even when
// the mark array is a reused, never-cleared prefix.
func TestTwoHopResetAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	th := &TwoHop{}
	for _, shape := range [][2]int{{6, 6}, {20, 15}, {4, 9}, {30, 30}, {2, 2}} {
		g := randomTestGraph(rng, shape[0], shape[1], 0.3)
		th.Reset(g)
		fresh := NewTwoHop(g)
		for v := 0; v < g.NumVertices(); v++ {
			if got, want := th.Size(v, nil), fresh.Size(v, nil); got != want {
				t.Fatalf("%v: Size(%d) = %d after Reset, want %d", shape, v, got, want)
			}
			if got, want := th.AtLeast(v, nil, 3), fresh.AtLeast(v, nil, 3); got != want {
				t.Fatalf("%v: AtLeast(%d, 3) = %v after Reset, want %v", shape, v, got, want)
			}
		}
	}
}

// TestPeelsStableUnderWorkspaceReuse interleaves differently-shaped
// reductions so pooled workspaces are handed stale buffers from larger
// and smaller earlier calls, and checks results match a first,
// cold-workspace run. (Each subsequent call necessarily reuses pooled
// state; the test fails if any stale content leaks through.)
func TestPeelsStableUnderWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	type testCase struct {
		g   *bigraph.Graph
		tau int
	}
	cases := make([]testCase, 0, 8)
	for i := 0; i < 8; i++ {
		cases = append(cases, testCase{
			g:   randomTestGraph(rng, 5+rng.Intn(40), 5+rng.Intn(40), 0.25),
			tau: 1 + rng.Intn(3),
		})
	}
	want := make([][]bool, len(cases))
	for i, tc := range cases {
		want[i] = ReduceMaskWithin(tc.g, nil, tc.tau)
	}
	for round := 0; round < 3; round++ {
		for i, tc := range cases {
			got := ReduceMaskWithin(tc.g, nil, tc.tau)
			for v := range got {
				if got[v] != want[i][v] {
					t.Fatalf("round %d case %d: mask[%d] = %v, want %v", round, i, v, got[v], want[i][v])
				}
			}
		}
	}
}
