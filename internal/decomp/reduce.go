package decomp

import "repro/internal/bigraph"

// ReduceMask returns the mask (indexed by unified id) of vertices that can
// still belong to a balanced biclique of per-side size strictly greater
// than tau. Two optimum-preserving rules are intersected:
//
//   - the core rule (Lemma 4): every vertex of a (tau+1)×(tau+1) balanced
//     biclique has degree ≥ tau+1 inside it, so it lies in the
//     (tau+1)-core;
//   - the bicore rule: inside the biclique each vertex has tau+1 one-hop
//     neighbours on the opposite side and tau two-hop neighbours on its
//     own side, so |N≤2| ≥ 2·tau+1 within the biclique and its bicore
//     number is at least 2·tau+1.
//
// Dropping the masked-out vertices never removes a vertex of any balanced
// biclique larger than tau; with an incumbent witness of size tau in hand
// the optimum is preserved. One call applies each rule once — removing
// vertices lowers the survivors' degrees and bicore numbers, so callers
// iterate (inducing on the mask) to a fixed point.
func ReduceMask(g *bigraph.Graph, tau int) []bool {
	mask := KCoreMask(g, tau+1)
	alive := 0
	for _, ok := range mask {
		if ok {
			alive++
		}
	}
	if alive == 0 {
		return mask
	}
	// Apply the bicore rule on the core-reduced subgraph, not on g: its
	// bicore numbers are no larger than g's, so the mask is at least as
	// tight — while witness vertices, whose biclique survives the core
	// mask intact, still clear the threshold. BicoreMask peels only to
	// the threshold fixed point instead of running the full (and far more
	// expensive) bicore decomposition.
	ws := getWS()
	sub, newToOld := ws.ind.InduceByMask(g, mask)
	putWS(ws)
	keep := BicoreMask(sub, 2*tau+1)
	for v, ov := range newToOld {
		if !keep[v] {
			mask[ov] = false
		}
	}
	return mask
}

// BicoreMask returns the mask of vertices in the thr-bicore of g: the
// maximal induced subgraph in which every vertex has |N≤2| ≥ thr, i.e.
// exactly the vertices with bicore number ≥ thr. Unlike Bicores and
// BicoresFast it does not compute the full decomposition — it peels
// sub-threshold vertices until none remain, recomputing only the two-hop
// sizes the last removal affected — so when little or nothing is
// removable it costs one two-hop sweep instead of a full peel to empty.
func BicoreMask(g *bigraph.Graph, thr int) []bool {
	return BicoreMaskWithin(g, nil, thr)
}
