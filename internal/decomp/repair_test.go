package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/bigraph"
	"repro/internal/workload"
)

// k33minus is K3,3 with the (2,2) edge missing. At tau=2 its certificate
// fixed point is empty: no vertex of the 3-core survives the first peel
// round after L2 and R2 (degree 2) are removed.
func k33minus() *bigraph.Graph {
	return bigraph.FromEdges(3, 3, [][2]int{
		{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1},
	})
}

// TestBicoreMaskWithinRestrictsToStart: peeling within a start mask must
// equal peeling the induced subgraph with the unrestricted threshold
// mask, mapped back to the original ids.
func TestBicoreMaskWithinRestrictsToStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 20; it++ {
		g := workload.PowerLaw(10+rng.Intn(20), 10+rng.Intn(20), 90, 0.5, rng.Int63())
		start := make([]bool, g.NumVertices())
		for v := range start {
			start[v] = rng.Intn(4) != 0
		}
		for thr := 1; thr <= 5; thr++ {
			got := BicoreMaskWithin(g, start, thr)
			sub, newToOld := g.InducedByMask(start)
			want := make([]bool, g.NumVertices())
			for nv, ok := range BicoreMask(sub, thr) {
				if ok {
					want[newToOld[nv]] = true
				}
			}
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("it=%d thr=%d vertex %d: within=%v, induced=%v", it, thr, v, got[v], want[v])
				}
			}
		}
	}
}

// TestReduceMaskWithinFixedPoint: the subset-restricted fixed point must
// match iterating ReduceMask with induced-subgraph materialisation — the
// planner's original formulation.
func TestReduceMaskWithinFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for it := 0; it < 20; it++ {
		g := workload.PowerLaw(12+rng.Intn(20), 12+rng.Intn(20), 110, 0.5, rng.Int63())
		for tau := 0; tau <= 3; tau++ {
			got := ReduceMaskWithin(g, nil, tau)
			want := make([]bool, g.NumVertices())
			cur, toOrig := g, bigraph.IdentityMap(g.NumVertices())
			for cur.NumVertices() > 0 {
				mask := ReduceMask(cur, tau)
				kept := 0
				for _, ok := range mask {
					if ok {
						kept++
					}
				}
				if kept == cur.NumVertices() {
					break
				}
				sub, n2 := cur.InducedByMask(mask)
				bigraph.ComposeMap(n2, toOrig)
				cur, toOrig = sub, n2
			}
			for _, ov := range toOrig[:cur.NumVertices()] {
				want[ov] = true
			}
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("it=%d tau=%d vertex %d: within=%v, iterated=%v", it, tau, v, got[v], want[v])
				}
			}
		}
	}
}

// TestRepairMaskBatchResurrection is the first DESIGN §7 counterexample:
// a batch of insertions assembles a biclique larger than tau entirely
// among peeled vertices. Starting from the empty survivor set of
// K3,3-minus-one-edge at tau=2, adding the missing edge turns the graph
// into K3,3 and every vertex must be re-admitted.
func TestRepairMaskBatchResurrection(t *testing.T) {
	g := k33minus()
	tau := 2
	survivors := ReduceMaskWithin(g, nil, tau)
	for v, ok := range survivors {
		if ok {
			t.Fatalf("setup: vertex %d survives K3,3-minus at tau=2", v)
		}
	}
	g2, eff, err := g.Apply(bigraph.Delta{Add: [][2]int{{2, 2}}})
	if err != nil || len(eff.Add) != 1 {
		t.Fatalf("setup: apply failed: %v %+v", err, eff)
	}
	mask, ok := RepairMask(g2, tau, survivors, eff.Endpoints(g2.NL()), 100)
	if !ok {
		t.Fatal("repair gave up within budget 100 on a 6-vertex graph")
	}
	for v, alive := range mask {
		if !alive {
			t.Fatalf("vertex %d of the resurrected K3,3 not re-admitted", v)
		}
	}
}

// TestRepairMaskReadmitsThroughSurvivor is the second DESIGN §7
// counterexample family: an insertion incident to a surviving vertex
// restores a peeled vertex's certificate through that neighbour. L2 was
// peeled from the K2,2 core for lack of degree; the new (L2,R1) edge
// gives it two surviving neighbours and its two-hop count flows through
// them, so it must be re-admitted even though it lost no certificate
// check of its own in the old graph.
func TestRepairMaskReadmitsThroughSurvivor(t *testing.T) {
	// K2,2 on {L0,L1}×{R0,R1} plus a pendant L2–R0.
	g := bigraph.FromEdges(3, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}})
	tau := 1
	survivors := ReduceMaskWithin(g, nil, tau)
	want := []bool{true, true, false, true, true} // L0 L1 L2 R0 R1
	for v := range want {
		if survivors[v] != want[v] {
			t.Fatalf("setup: survivor mask %v, want %v", survivors, want)
		}
	}
	g2, eff, err := g.Apply(bigraph.Delta{Add: [][2]int{{2, 1}}})
	if err != nil || len(eff.Add) != 1 {
		t.Fatalf("setup: apply failed: %v %+v", err, eff)
	}
	mask, ok := RepairMask(g2, tau, survivors, eff.Endpoints(g2.NL()), 100)
	if !ok {
		t.Fatal("repair gave up within budget")
	}
	for v := range mask {
		if !mask[v] {
			t.Fatalf("vertex %d not in the repaired fixed point %v", v, mask)
		}
	}
}

// TestRepairMaskMatchesFromScratch is the strong equivalence property:
// starting from the exact certificate fixed point of the old graph, a
// budget-unlimited repair after a random mutation batch (insertions,
// deletions, or both) must land on exactly the from-scratch fixed point
// of the mutated graph.
func TestRepairMaskMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for it := 0; it < 60; it++ {
		nl, nr := 8+rng.Intn(18), 8+rng.Intn(18)
		g := workload.PowerLaw(nl, nr, 40+rng.Intn(120), 0.5, rng.Int63())
		tau := rng.Intn(4)
		survivors := ReduceMaskWithin(g, nil, tau)
		var d bigraph.Delta
		for k := 0; k < 1+rng.Intn(6); k++ {
			d.Add = append(d.Add, [2]int{rng.Intn(nl), rng.Intn(nr)})
		}
		edges := g.Edges()
		for k := 0; k < rng.Intn(4) && len(edges) > 0; k++ {
			d.Del = append(d.Del, edges[rng.Intn(len(edges))])
		}
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(eff.Add) == 0 {
			continue
		}
		mask, ok := RepairMask(g2, tau, survivors, eff.Endpoints(g2.NL()), 0)
		if !ok {
			t.Fatalf("it=%d: unlimited-budget repair gave up", it)
		}
		want := ReduceMaskWithin(g2, nil, tau)
		for v := range mask {
			if mask[v] != want[v] {
				t.Fatalf("it=%d tau=%d vertex %d: repaired=%v, from-scratch=%v (delta %+v)",
					it, tau, v, mask[v], want[v], eff)
			}
		}
	}
}

// TestRepairMaskBudget: a frontier larger than the budget must abandon
// the repair rather than return a partial (unsound) mask.
func TestRepairMaskBudget(t *testing.T) {
	g := k33minus()
	survivors := make([]bool, g.NumVertices()) // all peeled
	g2, eff, err := g.Apply(bigraph.Delta{Add: [][2]int{{2, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := RepairMask(g2, 2, survivors, eff.Endpoints(g2.NL()), 1); ok {
		t.Fatal("repair with budget 1 admitted a 6-vertex frontier")
	}
}
