package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigraph"
)

// fig1b is the paper's Figure 1(b) graph. The figure itself is garbled in
// the arXiv text; this edge set was reverse-engineered as the unique
// natural one consistent with every stated fact: the example bicliques,
// N2(2) = {1,3,6}, the vertex-2/vertex-3 centred subgraphs of Figure 3,
// and the core and bicore numbers of Table 2.
// Paper labels: L = {1..6}, R = {7..12}; edges 1-7, 2-7, 2-8, 3-8, 3-9,
// 3-10, 4-9, 4-10, 5-9, 5-10, 6-8, 6-11, 6-12.
func fig1b() *bigraph.Graph {
	edges := [][2]int{
		{0, 0},
		{1, 0}, {1, 1},
		{2, 1}, {2, 2}, {2, 3},
		{3, 2}, {3, 3},
		{4, 2}, {4, 3},
		{5, 1}, {5, 4}, {5, 5},
	}
	return bigraph.FromEdges(6, 6, edges)
}

func TestCoresFig1b(t *testing.T) {
	g := fig1b()
	res := Cores(g)
	// Table 2: vertices 1..12 have core numbers 1 1 2 2 2 1 1 1 2 2 1 1.
	want := []int{1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 1, 1}
	for v, w := range want {
		if res.Core[v] != w {
			t.Errorf("core(%d) = %d, want %d", v, res.Core[v], w)
		}
	}
	if res.Degeneracy() != 2 {
		t.Errorf("degeneracy = %d, want 2", res.Degeneracy())
	}
}

func TestBicoresFig1b(t *testing.T) {
	g := fig1b()
	// Table 2: vertices 1..12 have bicore numbers 2 3 4 4 4 3 2 3 4 4 3 3.
	want := []int{2, 3, 4, 4, 4, 3, 2, 3, 4, 4, 3, 3}
	for _, res := range []*BicoreResult{Bicores(g), BicoresFast(g)} {
		for v, w := range want {
			if res.Bicore[v] != w {
				t.Errorf("bc(%d) = %d, want %d", v, res.Bicore[v], w)
			}
		}
		if res.Bidegeneracy() != 4 {
			t.Errorf("bidegeneracy = %d, want 4", res.Bidegeneracy())
		}
	}
}

func TestTwoHopFig1b(t *testing.T) {
	g := fig1b()
	th := NewTwoHop(g)
	// Paper: N≤2 of vertex 2 = {1, 3, 6, 7, 8} (its 2-hop neighbours are
	// {1, 3, 6}). In our 0-based unified ids vertex 2 is 1 and the expected
	// set is {0, 2, 5, 6, 7}.
	got := th.Set(1, nil)
	want := map[int]bool{0: true, 2: true, 5: true, 6: true, 7: true}
	if len(got) != len(want) {
		t.Fatalf("N<=2(1) = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("N<=2(1) = %v, unexpected %d", got, v)
		}
	}
	if th.Size(1, nil) != 5 {
		t.Fatalf("Size = %d", th.Size(1, nil))
	}
}

func TestTwoHopWithMask(t *testing.T) {
	g := fig1b()
	th := NewTwoHop(g)
	alive := make([]bool, g.NumVertices())
	for v := range alive {
		alive[v] = true
	}
	alive[6] = false // remove R-vertex 7: path 1-7-2 broken
	// vertex 0 ("1") loses its only neighbour → empty N≤2
	if got := th.Size(0, alive); got != 0 {
		t.Fatalf("Size(0) with 7 removed = %d, want 0", got)
	}
	// vertex 1 ("2") keeps 8, with 2-hop neighbours 3 and 6
	if got := th.Size(1, alive); got != 3 {
		t.Fatalf("Size(1) with 7 removed = %d, want 3", got)
	}
}

// bruteTwoHopSize recomputes |N≤2| by BFS to depth 2 for cross-checking.
func bruteTwoHopSize(g *bigraph.Graph, u int, alive []bool) int {
	seen := map[int]bool{u: true}
	for _, w := range g.Neighbors(u) {
		if alive != nil && !alive[int(w)] {
			continue
		}
		seen[int(w)] = true
		for _, x := range g.Neighbors(int(w)) {
			if alive != nil && !alive[int(x)] {
				continue
			}
			seen[int(x)] = true
		}
	}
	return len(seen) - 1
}

func randomBigraph(rng *rand.Rand, maxSide int, p float64) *bigraph.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

func TestQuickTwoHopMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 14, 0.25)
		th := NewTwoHop(g)
		alive := make([]bool, g.NumVertices())
		for v := range alive {
			alive[v] = rng.Intn(4) != 0
		}
		for v := 0; v < g.NumVertices(); v++ {
			if !alive[v] {
				continue
			}
			if th.Size(v, alive) != bruteTwoHopSize(g, v, alive) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// bruteCore computes core numbers by definition: core(v) is the largest k
// such that v survives peeling all vertices with degree < k.
func bruteCore(g *bigraph.Graph) []int {
	n := g.NumVertices()
	core := make([]int, n)
	for k := 1; ; k++ {
		mask := KCoreMask(g, k)
		any := false
		for v := 0; v < n; v++ {
			if mask[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestQuickCoresMatchDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 16, 0.3)
		got := Cores(g).Core
		want := bruteCore(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// bruteBicore computes bicore numbers by definition: bc(v) is the largest
// k such that v survives iterated removal of vertices with |N≤2| < k.
func bruteBicore(g *bigraph.Graph) []int {
	n := g.NumVertices()
	th := NewTwoHop(g)
	bc := make([]int, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		for {
			removed := false
			for v := 0; v < n; v++ {
				if alive[v] && th.Size(v, alive) < k {
					alive[v] = false
					removed = true
				}
			}
			if !removed {
				break
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				bc[v] = k
				any = true
			}
		}
		if !any {
			return bc
		}
	}
}

func TestQuickBicoresMatchDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 10, 0.3)
		want := bruteBicore(g)
		for _, res := range []*BicoreResult{Bicores(g), BicoresFast(g)} {
			for v := range want {
				if res.Bicore[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFastBicoreMatchesExact is an empirical check of the paper's
// Lemma 10: the decrement-maintained peeling must agree with the exact
// recompute-everything peeling.
func TestQuickFastBicoreMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 18, 0.2+0.5*rng.Float64())
		a, b := Bicores(g), BicoresFast(g)
		for v := range a.Bicore {
			if a.Bicore[v] != b.Bicore[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderProperty verifies the defining property of each peeling order:
// vertex v_i minimises the relevant measure in the suffix-induced subgraph.
func TestOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomBigraph(rng, 12, 0.3)
		n := g.NumVertices()

		// Degeneracy order: every vertex has at most core(v) ≤ δ(G)
		// neighbours among its successors, and core numbers are
		// non-decreasing along the order. (The Batagelj–Zaversnik order is
		// the by-core-number order, which satisfies exactly this; it need
		// not pick the instantaneous minimum-degree vertex at every step.)
		res := Cores(g)
		ord := res.Order
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		degIn := func(v int) int {
			d := 0
			for _, w := range g.Neighbors(v) {
				if alive[int(w)] {
					d++
				}
			}
			return d
		}
		prev := 0
		for _, v := range ord {
			alive[v] = false
			if degIn(v) > res.Core[v] {
				t.Fatalf("degeneracy order violated: %d has %d later neighbours but core %d", v, degIn(v), res.Core[v])
			}
			if res.Core[v] < prev {
				t.Fatalf("core numbers not monotone along order")
			}
			prev = res.Core[v]
		}
		for v := range alive {
			alive[v] = true
		}

		// bidegeneracy order: v_i has min |N≤2| in suffix subgraph
		th := NewTwoHop(g)
		bord := Bicores(g).Order
		for v := range alive {
			alive[v] = true
		}
		for _, v := range bord {
			sv := th.Size(v, alive)
			for u := 0; u < n; u++ {
				if alive[u] && th.Size(u, alive) < sv {
					t.Fatalf("bidegeneracy order violated")
				}
			}
			alive[v] = false
		}
	}
}

func TestKCoreMaskWithin(t *testing.T) {
	g := fig1b()
	start := make([]bool, g.NumVertices())
	for v := range start {
		start[v] = true
	}
	// 2-core of whole graph = {3,4,5}x{9,10} (ids 2,3,4, 8,9)
	mask := KCoreMaskWithin(g, start, 2)
	want := map[int]bool{2: true, 3: true, 4: true, 8: true, 9: true}
	for v := range start {
		if mask[v] != want[v] {
			t.Fatalf("2-core mask[%d] = %v", v, mask[v])
		}
	}
	// excluding vertex 5 (id 4) leaves {3,4}x{9,10}
	start[4] = false
	mask = KCoreMaskWithin(g, start, 2)
	want = map[int]bool{2: true, 3: true, 8: true, 9: true}
	for v := range start {
		if mask[v] != want[v] {
			t.Fatalf("restricted 2-core mask[%d] = %v", v, mask[v])
		}
	}
}

func TestKCoreMaskEmpty(t *testing.T) {
	g := fig1b()
	mask := KCoreMask(g, 10)
	for v, ok := range mask {
		if ok {
			t.Fatalf("vertex %d in 10-core of a degree<=3 graph", v)
		}
	}
}

func TestDegreeOrder(t *testing.T) {
	g := fig1b()
	ord := DegreeOrder(g)
	for i := 1; i < len(ord); i++ {
		if g.Deg(ord[i-1]) > g.Deg(ord[i]) {
			t.Fatalf("degree order not non-decreasing")
		}
	}
}

func TestOrderKinds(t *testing.T) {
	g := fig1b()
	for _, k := range []OrderKind{OrderDegree, OrderDegeneracy, OrderBidegeneracy} {
		ord := Order(g, k)
		if len(ord) != g.NumVertices() {
			t.Fatalf("%v order has %d entries", k, len(ord))
		}
		seen := map[int]bool{}
		for _, v := range ord {
			if seen[v] {
				t.Fatalf("%v order repeats %d", k, v)
			}
			seen[v] = true
		}
	}
	if OrderDegree.String() != "maxDeg" || OrderBidegeneracy.String() != "bidegeneracy" || OrderDegeneracy.String() != "degeneracy" {
		t.Fatal("order names wrong")
	}
	if OrderKind(99).String() != "unknown" {
		t.Fatal("unknown order name wrong")
	}
}

func TestSumTwoHopSizes(t *testing.T) {
	g := fig1b()
	th := NewTwoHop(g)
	want := 0
	for v := 0; v < g.NumVertices(); v++ {
		want += th.Size(v, nil)
	}
	if got := SumTwoHopSizes(g); got != want {
		t.Fatalf("SumTwoHopSizes = %d, want %d", got, want)
	}
}

// TestLemma10Counterexample documents a deviation from the paper: Lemma 10
// claims that when the removed vertex u has minimum (|N≤2|, degree), every
// v ∈ N≤2(u) loses at most one member of its own N≤2. Simulating the exact
// peeling on small random graphs finds removals where an affected vertex
// loses two or more (the removal also severs two-hop bridges). BicoresFast
// therefore maintains exact pair counts instead of relying on the lemma.
func TestLemma10Counterexample(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 12, 0.3)
		n := g.NumVertices()
		th := NewTwoHop(g)
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		aliveCount := n
		for aliveCount > 0 {
			// Pick the minimum-(|N≤2|, degree, id) vertex, as Lemma 10
			// prescribes.
			bestV, bestKey, bestDeg := -1, 1<<30, 1<<30
			for v := 0; v < n; v++ {
				if !alive[v] {
					continue
				}
				k := th.Size(v, alive)
				d := 0
				for _, w := range g.Neighbors(v) {
					if alive[int(w)] {
						d++
					}
				}
				if k < bestKey || (k == bestKey && d < bestDeg) {
					bestV, bestKey, bestDeg = v, k, d
				}
			}
			affected := th.Set(bestV, alive)
			before := make(map[int]int, len(affected))
			for _, w := range affected {
				before[w] = th.Size(w, alive)
			}
			alive[bestV] = false
			aliveCount--
			for _, w := range affected {
				if delta := before[w] - th.Size(w, alive); delta >= 2 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no Lemma 10 counterexample found; if the lemma holds, " +
			"BicoresFast could use the cheaper decrement-by-one update")
	}
}
