package decomp

import "repro/internal/bigraph"

// TwoHop computes N≤2 neighbourhoods (Definitions 1–2 of the paper): for a
// vertex u, N≤2(u) = N(u) ∪ N2(u) where N2(u) holds the vertices at
// shortest-path distance exactly 2. In a bipartite graph N(u) and N2(u)
// live on opposite sides, so the union is disjoint.
//
// TwoHop uses a timestamped mark array so repeated queries need no
// clearing. It is not safe for concurrent use.
type TwoHop struct {
	g     *bigraph.Graph
	mark  []int32
	stamp int32
	buf   []int
}

// NewTwoHop returns a query object for g.
func NewTwoHop(g *bigraph.Graph) *TwoHop {
	t := &TwoHop{}
	t.Reset(g)
	return t
}

// Reset retargets t to g, reusing the mark storage when it is large
// enough. The stamp is kept monotone across resets: stale marks written
// for an earlier graph are always ≤ the current stamp and next()
// advances past them before every query, so no clearing is needed.
func (t *TwoHop) Reset(g *bigraph.Graph) {
	t.g = g
	n := g.NumVertices()
	if cap(t.mark) < n {
		t.mark = make([]int32, n)
		t.stamp = 0
	} else {
		t.mark = t.mark[:n]
	}
}

// next advances the timestamp, resetting marks implicitly.
func (t *TwoHop) next() {
	t.stamp++
	if t.stamp == 0 { // wrapped: hard reset
		for i := range t.mark {
			t.mark[i] = 0
		}
		t.stamp = 1
	}
}

// Size returns |N≤2(u)| within the subgraph of alive vertices. A nil alive
// mask means the whole graph.
func (t *TwoHop) Size(u int, alive []bool) int {
	t.next()
	t.mark[u] = t.stamp
	count := 0
	for _, wn := range t.g.Neighbors(u) {
		w := int(wn)
		if alive != nil && !alive[w] {
			continue
		}
		if t.mark[w] != t.stamp {
			t.mark[w] = t.stamp
			count++
		}
		for _, xn := range t.g.Neighbors(w) {
			x := int(xn)
			if alive != nil && !alive[x] {
				continue
			}
			if t.mark[x] != t.stamp {
				t.mark[x] = t.stamp
				count++
			}
		}
	}
	return count
}

// AtLeast reports whether |N≤2(u)| within alive reaches thr, stopping
// the enumeration as soon as it does. Threshold peels only ever compare
// the size against a bound, and near a high-degree neighbour the bound
// is reached within a handful of steps — so AtLeast turns their
// worst-case full-neighbourhood sweeps into near-constant probes.
func (t *TwoHop) AtLeast(u int, alive []bool, thr int) bool {
	if thr <= 0 {
		return true
	}
	t.next()
	t.mark[u] = t.stamp
	count := 0
	for _, wn := range t.g.Neighbors(u) {
		w := int(wn)
		if alive != nil && !alive[w] {
			continue
		}
		if t.mark[w] != t.stamp {
			t.mark[w] = t.stamp
			if count++; count >= thr {
				return true
			}
		}
		for _, xn := range t.g.Neighbors(w) {
			x := int(xn)
			if alive != nil && !alive[x] {
				continue
			}
			if t.mark[x] != t.stamp {
				t.mark[x] = t.stamp
				if count++; count >= thr {
					return true
				}
			}
		}
	}
	return false
}

// Append appends N≤2(u) (within alive) to dst and returns it. The order is
// deterministic: 1-hop and 2-hop vertices interleaved by discovery along
// sorted adjacency lists.
func (t *TwoHop) Append(u int, alive []bool, dst []int) []int {
	t.next()
	t.mark[u] = t.stamp
	for _, wn := range t.g.Neighbors(u) {
		w := int(wn)
		if alive != nil && !alive[w] {
			continue
		}
		if t.mark[w] != t.stamp {
			t.mark[w] = t.stamp
			dst = append(dst, w)
		}
		for _, xn := range t.g.Neighbors(w) {
			x := int(xn)
			if alive != nil && !alive[x] {
				continue
			}
			if t.mark[x] != t.stamp {
				t.mark[x] = t.stamp
				dst = append(dst, x)
			}
		}
	}
	return dst
}

// Set returns N≤2(u) within alive as a fresh slice.
func (t *TwoHop) Set(u int, alive []bool) []int {
	t.buf = t.Append(u, alive, t.buf[:0])
	out := make([]int, len(t.buf))
	copy(out, t.buf)
	return out
}

// SumSizes returns Σ_u |N≤2(u)|, the quantity that bounds the cost of
// bicore decomposition (Lemma 9).
func SumTwoHopSizes(g *bigraph.Graph) int {
	t := NewTwoHop(g)
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		total += t.Size(v, nil)
	}
	return total
}
