package decomp

import (
	"container/heap"

	"repro/internal/bigraph"
)

// BicoreResult carries the output of a bicore decomposition (the paper's
// Definitions 3–5 and Algorithm 7).
type BicoreResult struct {
	Bicore []int // bicore number bc(v) per unified vertex id
	Order  []int // bidegeneracy order (peeling order)
	Pos    []int // Pos[v] = index of v in Order
}

// Bidegeneracy returns δ̈(G), the maximum bicore number.
func (b *BicoreResult) Bidegeneracy() int {
	d := 0
	for _, k := range b.Bicore {
		if k > d {
			d = k
		}
	}
	return d
}

// entry is a heap element; stale entries are skipped at pop time.
type entry struct {
	key, deg, v int
}

type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Bicores performs an exact bicore decomposition: vertices are peeled in
// increasing (|N≤2|, degree) order (Algorithm 7 with the Lemma 10
// tie-break), recomputing the two-hop size of every affected vertex from
// scratch after each removal. It is the reference implementation; prefer
// BicoresFast, which maintains the sizes incrementally.
func Bicores(g *bigraph.Graph) *BicoreResult {
	n := g.NumVertices()
	th := NewTwoHop(g)
	alive := make([]bool, n)
	adeg := make([]int, n)
	key := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		adeg[v] = g.Deg(v)
	}
	h := make(entryHeap, 0, n)
	for v := 0; v < n; v++ {
		key[v] = th.Size(v, alive)
		h = append(h, entry{key[v], adeg[v], v})
	}
	heap.Init(&h)

	st := newPeelState(n)
	affected := make([]int, 0, 64)
	for h.Len() > 0 {
		e := heap.Pop(&h).(entry)
		v := e.v
		if !alive[v] || e.key != key[v] || e.deg != adeg[v] {
			continue // stale entry
		}
		st.commit(v, key[v])
		affected = th.Append(v, alive, affected[:0])
		alive[v] = false
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if alive[w] {
				adeg[w]--
			}
		}
		for _, w := range affected {
			if !alive[w] {
				continue
			}
			key[w] = th.Size(w, alive)
			heap.Push(&h, entry{key[w], adeg[w], w})
		}
	}
	return st.result()
}

// BicoresFast performs the same exact peeling as Bicores but maintains
// |N≤2| values decrementally. For every vertex v it tracks cnt(v, x), the
// number of live common neighbours with each two-hop neighbour x; removing
// a vertex u decrements the keys of u's neighbours (they lose u), of the
// pairs among u's neighbours whose last common neighbour was u (they lose
// each other), and of u's two-hop neighbours (they lose u). This keeps
// every heap key exact at all times, so the pop order and bicore numbers
// coincide with Bicores.
//
// Note: the paper's Lemma 10 claims the removed vertex decreases each
// affected |N≤2| by at most one; empirically this is false in general (see
// the decomp tests), so correctness here does not rely on it.
func BicoresFast(g *bigraph.Graph) *BicoreResult {
	n := g.NumVertices()
	th := NewTwoHop(g)
	alive := make([]bool, n)
	adeg := make([]int, n)
	key := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		adeg[v] = g.Deg(v)
	}
	// cnt[pack(v,x)] = number of live common neighbours of the same-side
	// pair v < x. Built once in Σ deg(u)² time.
	cnt := make(map[uint64]int32)
	pack := func(v, x int) uint64 {
		if v > x {
			v, x = x, v
		}
		return uint64(v)<<32 | uint64(x)
	}
	for u := 0; u < n; u++ {
		ns := g.Neighbors(u)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				cnt[pack(int(ns[i]), int(ns[j]))]++
			}
		}
	}
	h := make(entryHeap, 0, n)
	for v := 0; v < n; v++ {
		key[v] = th.Size(v, alive)
		h = append(h, entry{key[v], adeg[v], v})
	}
	heap.Init(&h)

	st := newPeelState(n)
	twoHop := make([]int, 0, 64)
	push := func(w int) { heap.Push(&h, entry{key[w], adeg[w], w}) }

	for h.Len() > 0 {
		e := heap.Pop(&h).(entry)
		u := e.v
		if !alive[u] || e.key != key[u] || e.deg != adeg[u] {
			continue // stale entry
		}
		st.commit(u, key[u])
		alive[u] = false

		// 1-hop neighbours lose u and their pairwise bridges through u.
		ns := g.Neighbors(u)
		for _, vn := range ns {
			v := int(vn)
			if !alive[v] {
				continue
			}
			adeg[v]--
			key[v]--
		}
		for i := 0; i < len(ns); i++ {
			v := int(ns[i])
			if !alive[v] {
				continue
			}
			for j := i + 1; j < len(ns); j++ {
				x := int(ns[j])
				if !alive[x] {
					continue
				}
				k := pack(v, x)
				c := cnt[k] - 1
				if c == 0 {
					delete(cnt, k)
					key[v]--
					key[x]--
				} else {
					cnt[k] = c
				}
			}
		}
		// 2-hop neighbours lose u; also clean up cnt entries touching u.
		twoHop = twoHop[:0]
		th.next()
		th.mark[u] = th.stamp
		for _, vn := range ns {
			v := int(vn)
			if !alive[v] {
				continue
			}
			th.mark[v] = th.stamp
			for _, xn := range g.Neighbors(v) {
				x := int(xn)
				if alive[x] && th.mark[x] != th.stamp {
					th.mark[x] = th.stamp
					twoHop = append(twoHop, x)
				}
			}
		}
		for _, w := range twoHop {
			key[w]--
			delete(cnt, pack(u, w))
		}
		for _, vn := range ns {
			if v := int(vn); alive[v] {
				push(v)
			}
		}
		for _, w := range twoHop {
			push(w)
		}
	}
	return st.result()
}

// peelState accumulates the order and running-max bicore assignment shared
// by both peeling implementations.
type peelState struct {
	bc, order, pos []int
	curMax         int
}

func newPeelState(n int) *peelState {
	return &peelState{bc: make([]int, n), order: make([]int, 0, n), pos: make([]int, n)}
}

func (s *peelState) commit(v, key int) {
	if key > s.curMax {
		s.curMax = key
	}
	s.bc[v] = s.curMax
	s.pos[v] = len(s.order)
	s.order = append(s.order, v)
}

func (s *peelState) result() *BicoreResult {
	return &BicoreResult{Bicore: s.bc, Order: s.order, Pos: s.pos}
}
