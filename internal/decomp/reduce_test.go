package decomp

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestReduceMaskKeepsPlantedWitness: for every tau below the planted
// balanced size k, the reduction mask must keep every vertex of the
// planted k×k biclique — peeling is only allowed to discard vertices that
// cannot be part of a balanced biclique strictly larger than tau.
func TestReduceMaskKeepsPlantedWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 25; it++ {
		nl, nr := 20+rng.Intn(30), 20+rng.Intn(30)
		k := 3 + rng.Intn(4)
		bg := workload.PowerLaw(nl, nr, 2*(nl+nr), 0.5, rng.Int63())
		g, lefts, rights := workload.Plant(bg, k, rng.Int63())
		for tau := 0; tau < k; tau++ {
			mask := ReduceMask(g, tau)
			for _, l := range lefts {
				if !mask[l] {
					t.Fatalf("tau=%d k=%d: planted left vertex %d peeled", tau, k, l)
				}
			}
			for _, r := range rights {
				if !mask[g.Right(r)] {
					t.Fatalf("tau=%d k=%d: planted right vertex %d peeled", tau, k, r)
				}
			}
		}
	}
}

// TestReduceMaskSurvivorBounds: every survivor of ReduceMask(g, tau) has
// degree ≥ tau+1 and bicore number ≥ 2·tau+1 within the original graph —
// the two rules the mask intersects.
func TestReduceMaskSurvivorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for it := 0; it < 25; it++ {
		g := workload.PowerLaw(15+rng.Intn(25), 15+rng.Intn(25), 120, 0.5, rng.Int63())
		bi := BicoresFast(g)
		for tau := 0; tau <= 3; tau++ {
			mask := ReduceMask(g, tau)
			for v, ok := range mask {
				if !ok {
					continue
				}
				if g.Deg(v) < tau+1 {
					t.Fatalf("tau=%d: survivor %d has degree %d", tau, v, g.Deg(v))
				}
				if bi.Bicore[v] < 2*tau+1 {
					t.Fatalf("tau=%d: survivor %d has bicore %d", tau, v, bi.Bicore[v])
				}
			}
		}
	}
}

// TestBicoreMaskMatchesDecomposition: the threshold peeling must select
// exactly the vertices whose full-decomposition bicore number clears the
// threshold, for every threshold up to past the bidegeneracy.
func TestBicoreMaskMatchesDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for it := 0; it < 20; it++ {
		g := workload.PowerLaw(10+rng.Intn(25), 10+rng.Intn(25), 100, 0.5, rng.Int63())
		bi := BicoresFast(g)
		for thr := 0; thr <= bi.Bidegeneracy()+1; thr++ {
			mask := BicoreMask(g, thr)
			for v, ok := range mask {
				if want := bi.Bicore[v] >= thr; ok != want {
					t.Fatalf("thr=%d vertex %d: BicoreMask=%v, bicore number %d", thr, v, ok, bi.Bicore[v])
				}
			}
		}
	}
}

// TestReduceMaskEmptiesAboveOptimum: with tau at least the true maximum
// balanced size, iterating the reduction must reach the empty graph —
// this is what lets the planner prove a heuristic witness optimal.
func TestReduceMaskEmptiesAboveOptimum(t *testing.T) {
	// A complete 4×4 biclique has optimum 4: reducing with tau=4 must
	// remove everything, while tau=3 must keep it whole.
	g := workload.Dense(4, 4, 1.0, 1)
	mask := ReduceMask(g, 3)
	for v, ok := range mask {
		if !ok {
			t.Fatalf("tau=3 removed vertex %d of a K4,4", v)
		}
	}
	mask = ReduceMask(g, 4)
	cur := g
	for rounds := 0; cur.NumVertices() > 0; rounds++ {
		if rounds > 10 {
			t.Fatal("reduction with tau=optimum did not converge to empty")
		}
		kept := 0
		for _, ok := range mask {
			if ok {
				kept++
			}
		}
		if kept == cur.NumVertices() {
			t.Fatalf("reduction with tau=4 stalled at %d vertices", kept)
		}
		cur, _ = cur.InducedByMask(mask)
		mask = ReduceMask(cur, 4)
	}
}
