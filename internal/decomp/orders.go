package decomp

import (
	"sort"

	"repro/internal/bigraph"
)

// OrderKind selects the total search order used to build vertex-centred
// subgraphs (Definition 6). The paper compares all three in Lemmas 6–8 and
// Figures 5–6.
type OrderKind int

const (
	// OrderDegree peels by static degree (smallest first), the analogue of
	// the non-increasing-degree total order of Lemma 6.
	OrderDegree OrderKind = iota
	// OrderDegeneracy uses the core-decomposition peeling order (Lemma 7).
	OrderDegeneracy
	// OrderBidegeneracy uses the bicore peeling order (Lemma 8), the
	// paper's proposal.
	OrderBidegeneracy
)

// String returns the paper's name for the order.
func (k OrderKind) String() string {
	switch k {
	case OrderDegree:
		return "maxDeg"
	case OrderDegeneracy:
		return "degeneracy"
	case OrderBidegeneracy:
		return "bidegeneracy"
	}
	return "unknown"
}

// DegreeOrder returns the vertices sorted by increasing degree (ties by
// id). Processing small-degree vertices first keeps early vertex-centred
// subgraphs small, mirroring how the peeling orders behave.
func DegreeOrder(g *bigraph.Graph) []int {
	n := g.NumVertices()
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Deg(order[i]), g.Deg(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	return order
}

// Order computes the requested total order for g. For OrderBidegeneracy
// the fast (Lemma 10) peeling is used.
func Order(g *bigraph.Graph, kind OrderKind) []int {
	switch kind {
	case OrderDegree:
		return DegreeOrder(g)
	case OrderDegeneracy:
		return Cores(g).Order
	case OrderBidegeneracy:
		return BicoresFast(g).Order
	}
	panic("decomp: unknown order kind")
}
