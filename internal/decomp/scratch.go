package decomp

import (
	"sync"

	"repro/internal/bigraph"
)

// workspace bundles the flat scratch one peeling call needs — the
// two-hop query object, peeling queues, per-vertex flags and the CSR
// induction buffers. The public mask functions draw a workspace from a
// package pool on entry and return it on exit, so repeated reductions
// (the planner's fixed-point iteration, every plan repair) reuse the
// same arenas instead of reallocating them per call. Returned masks are
// always freshly allocated — they escape into Plans and outlive the
// call — only the internal state is pooled.
type workspace struct {
	th  TwoHop
	ind bigraph.Inducer

	deg       []int
	queue     []int
	affected  []int
	admitted  []int
	buf       []int
	queued    []bool
	swept     []bool
	suspected []bool
	plaus     []int8
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func getWS() *workspace  { return wsPool.Get().(*workspace) }
func putWS(w *workspace) { wsPool.Put(w) }

// grownInts returns buf resized to length n; contents are undefined.
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// clearedBools returns buf resized to length n with every entry false.
func clearedBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// clearedInt8 returns buf resized to length n with every entry zero.
func clearedInt8(buf []int8, n int) []int8 {
	if cap(buf) < n {
		return make([]int8, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
