// Package decomp implements the graph decompositions the paper builds on:
// classic core decomposition (degeneracy) via Batagelj–Zaversnik bucket
// peeling, the paper's novel bicore decomposition (Definitions 3–4,
// Algorithm 7) based on two-hop neighbourhoods, and the three total search
// orders compared in the evaluation (degree, degeneracy, bidegeneracy).
package decomp

import "repro/internal/bigraph"

// CoreResult carries the output of a core decomposition.
type CoreResult struct {
	Core  []int // core number per unified vertex id
	Order []int // peeling order (degeneracy order)
	// Pos[v] is the index of v in Order.
	Pos []int
}

// Degeneracy returns δ(G), the maximum core number.
func (c *CoreResult) Degeneracy() int {
	d := 0
	for _, k := range c.Core {
		if k > d {
			d = k
		}
	}
	return d
}

// Cores performs a core decomposition of g with the O(n+m) bucket peeling
// algorithm of Batagelj and Zaversnik. The returned Order is a degeneracy
// order: each vertex has the minimum degree in the subgraph induced by it
// and its successors.
func Cores(g *bigraph.Graph) *CoreResult {
	n := g.NumVertices()
	deg := make([]int, n)
	md := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Deg(v)
		if deg[v] > md {
			md = deg[v]
		}
	}
	// bin[d] = start index in vert of vertices with current degree d.
	bin := make([]int, md+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)
	vert := make([]int, n)
	fill := make([]int, md+1)
	copy(fill, bin[:md+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	core := make([]int, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if deg[w] > deg[v] {
				// Move w one bucket down: swap it with the first vertex of
				// its current bucket, then shrink the bucket.
				dw := deg[w]
				pw := pos[w]
				ps := bin[dw]
				s := vert[ps]
				if w != s {
					vert[pw], vert[ps] = s, w
					pos[w], pos[s] = ps, pw
				}
				bin[dw]++
				deg[w]--
			}
		}
	}
	orderPos := make([]int, n)
	for i, v := range vert {
		orderPos[v] = i
	}
	return &CoreResult{Core: core, Order: vert, Pos: orderPos}
}

// KCoreMask returns a boolean mask (indexed by unified id) of the vertices
// belonging to the k-core of g, computed by iterative peeling. The mask is
// freshly allocated; the peeling state comes from the package workspace
// pool.
func KCoreMask(g *bigraph.Graph, k int) []bool {
	return KCoreMaskInto(g, k, nil)
}

// KCoreMaskInto is KCoreMask writing the result into dst, which is grown
// as needed and returned (pass nil to allocate). Callers that peel the
// same graph repeatedly — the sparse verification step runs one peel per
// surviving subgraph — reuse one mask buffer across calls.
func KCoreMaskInto(g *bigraph.Graph, k int, dst []bool) []bool {
	ws := getWS()
	defer putWS(ws)
	n := g.NumVertices()
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	alive := dst[:n]
	deg := grownInts(ws.deg, n)
	queue := ws.queue[:0]
	defer func() { ws.deg, ws.queue = deg, queue[:0] }()
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Deg(v)
		if deg[v] < k {
			queue = append(queue, v)
			alive[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				alive[w] = false
				queue = append(queue, w)
			}
		}
	}
	return alive
}

// KCoreMaskWithin peels the subgraph of g induced by start down to its
// k-core, returning the surviving mask. start is not modified.
func KCoreMaskWithin(g *bigraph.Graph, start []bool, k int) []bool {
	ws := getWS()
	defer putWS(ws)
	n := g.NumVertices()
	alive := make([]bool, n)
	deg := grownInts(ws.deg, n)
	queue := ws.queue[:0]
	defer func() { ws.deg, ws.queue = deg, queue[:0] }()
	for v := 0; v < n; v++ {
		if !start[v] {
			continue
		}
		alive[v] = true
		deg[v] = g.DegWithin(v, start)
	}
	// deg is stale where start is false, but those vertices are dead and
	// never read.
	for v := 0; v < n; v++ {
		if alive[v] && deg[v] < k {
			alive[v] = false
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				alive[w] = false
				queue = append(queue, w)
			}
		}
	}
	return alive
}
