package decomp

import (
	"slices"

	"repro/internal/bigraph"
)

// BicoreMaskWithin peels the subgraph of g induced by start down to the
// thr-bicore threshold fixed point, returning the surviving mask. A nil
// start means the whole graph (BicoreMask semantics). start is not
// modified.
func BicoreMaskWithin(g *bigraph.Graph, start []bool, thr int) []bool {
	ws := getWS()
	defer putWS(ws)
	n := g.NumVertices()
	th := &ws.th
	th.Reset(g)
	alive := make([]bool, n)
	if start == nil {
		for v := range alive {
			alive[v] = true
		}
	} else {
		copy(alive, start)
	}
	queued := clearedBools(ws.queued, n)
	queue := ws.queue[:0]
	affected := ws.affected[:0]
	defer func() {
		ws.queued, ws.queue, ws.affected = queued, queue[:0], affected[:0]
	}()
	for v := 0; v < n; v++ {
		if alive[v] && !th.AtLeast(v, alive, thr) {
			queue = append(queue, v)
			queued[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !alive[v] {
			continue
		}
		// Two-hop sizes only shrink as vertices are removed, so a vertex
		// that once dropped below the threshold is certain to be peeled.
		affected = th.Append(v, alive, affected[:0])
		alive[v] = false
		for _, w := range affected {
			if !alive[w] || queued[w] {
				continue
			}
			if !th.AtLeast(w, alive, thr) {
				queue = append(queue, w)
				queued[w] = true
			}
		}
	}
	return alive
}

// ReduceMaskWithin peels the subgraph of g induced by start to the
// fixed point of both optimum-preserving rules — the (tau+1)-core and
// the 2·tau+1 bicore threshold — alternating the two peels until no
// vertex is removed. Because both certificates are monotone in the
// vertex set, any greedy peel order terminates at the same set: the
// unique maximal subset of start in which every vertex satisfies both
// rules. A nil start means the whole graph.
func ReduceMaskWithin(g *bigraph.Graph, start []bool, tau int) []bool {
	mask := KCoreMaskWithin(g, orFull(g, start), tau+1)
	for {
		next := BicoreMaskWithin(g, mask, 2*tau+1)
		next = KCoreMaskWithin(g, next, tau+1)
		if slices.Equal(next, mask) {
			return next
		}
		mask = next
	}
}

// RepairMask attempts bounded local repair of a reduction's survivor set
// after a mutation batch that includes insertions. survivors must be the
// certificate fixed point of the pre-mutation graph at threshold tau
// (every survivor meets both peeling rules within the survivor set, and
// no set of peeled vertices could be re-admitted); g is the mutated
// graph; touched are the unified ids of the batch's edge endpoints
// (additions and deletions).
//
// Insertions only raise degrees and two-hop counts, so the new fixed
// point is a superset of survivors — mutation can re-admit ("unpeel")
// peeled vertices but never evict a survivor. The re-admitted region is
// reachable from the batch: every re-admitted vertex is, inductively,
// within a two-hop step (in the mutated graph) of a touched endpoint or
// of another re-admitted vertex — a support chain broken by one of the
// batch's own deletions lands on a touched endpoint instead. RepairMask
// therefore grows a candidate frontier from touched through plausible
// peeled vertices (full-graph degree ≥ tau+1 and |N≤2| ≥ 2·tau+1 — a
// necessary condition for membership in any fixed point) and peels
// survivors ∪ frontier back to the certificate fixed point, which by
// the inclusion above is exactly the mutated graph's fixed point.
//
// budget caps how many peeled vertices the frontier may admit (≤ 0
// means unlimited); when the frontier outgrows it the repair is
// abandoned and (nil, false) is returned — the caller rebuilds from
// scratch.
func RepairMask(g *bigraph.Graph, tau int, survivors []bool, touched []int, budget int) ([]bool, bool) {
	ws := getWS()
	defer putWS(ws)
	n := g.NumVertices()
	th := &ws.th
	th.Reset(g)
	// Plausibility is memoised: 0 unknown, 1 plausible, 2 not. The
	// degree test runs first (O(1), rejects the fringe); the two-hop
	// test first tries the O(deg) lower bound |N≤2(v)| ≥ deg(v) +
	// max-neighbour-degree − 1 (one- and two-hop neighbours live on
	// opposite sides, so the sets are disjoint) — any vertex near a
	// high-degree neighbour accepts without a sweep, and the vertices
	// that do need the exact sweep have only low-degree neighbours, so
	// their sweep is cheap too.
	plaus := clearedInt8(ws.plaus, n)
	ws.plaus = plaus
	plausible := func(v int) bool {
		if plaus[v] == 0 {
			plaus[v] = 2
			if g.Deg(v) >= tau+1 {
				maxNb := 0
				for _, wn := range g.Neighbors(v) {
					if d := g.Deg(int(wn)); d > maxNb {
						maxNb = d
					}
				}
				if g.Deg(v)+maxNb-1 >= 2*tau+1 || th.AtLeast(v, nil, 2*tau+1) {
					plaus[v] = 1
				}
			}
		}
		return plaus[v] == 1
	}
	cand := make([]bool, n) // escapes: the repaired mask is the result
	copy(cand, survivors)
	admitted := ws.admitted[:0]
	queue := ws.queue[:0]
	defer func() { ws.admitted, ws.queue = admitted[:0], queue[:0] }()
	admit := func(v int) bool { // false when the budget is exhausted
		if cand[v] || !plausible(v) {
			return true
		}
		if budget > 0 && len(admitted) >= budget {
			return false
		}
		cand[v] = true
		admitted = append(admitted, v)
		queue = append(queue, v)
		return true
	}
	// expand offers v's N≤2 to the frontier. The closure only needs the
	// *set* of reachable plausible peeled vertices, so each middle
	// vertex's adjacency is swept at most once across the whole closure
	// (swept[w]): without this, every candidate adjacent to a
	// high-degree survivor would re-enumerate the hub's entire
	// neighbourhood and the closure would cost frontier × hub-degree.
	swept := clearedBools(ws.swept, n)
	ws.swept = swept
	expand := func(v int) bool {
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if !admit(w) {
				return false
			}
			if swept[w] {
				continue
			}
			swept[w] = true
			for _, xn := range g.Neighbors(w) {
				if !admit(int(xn)) {
					return false
				}
			}
		}
		return true
	}
	// Seed: the endpoints themselves plus everything within one two-hop
	// step of them. Survivor endpoints still expand — peeled vertices
	// next to them are reachable through the batch.
	for _, e := range touched {
		if e < 0 || e >= n {
			return nil, false
		}
		if !admit(e) || !expand(e) {
			return nil, false
		}
	}
	// Transitive closure: an admitted candidate can support further
	// peeled vertices two hops away, so the frontier grows through
	// candidates (not through survivors, whose certificates predate the
	// batch) until no plausible peeled vertex is reachable.
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !expand(v) {
			return nil, false
		}
	}
	buf := ws.buf[:0]
	defer func() { ws.buf = buf[:0] }()

	// Peel the candidate set back to the certificate fixed point,
	// locally: the only vertices whose certificates can fail are the
	// newly admitted candidates (never verified) and vertices whose
	// counts a deletion lowered — the touched endpoints and their
	// neighbours (a deleted edge (a,b) only lowers counts at a, b, and
	// their remaining neighbours). Survivors away from the batch keep
	// the certificates they proved at the last fixed point: insertions
	// and admissions only raise counts. Each removal re-suspects its
	// N≤2, so failures cascade exactly as far as they reach and the
	// result equals ReduceMaskWithin(g, candidates, tau) at the cost of
	// the affected region instead of a whole-graph sweep per round.
	suspected := clearedBools(ws.suspected, n)
	ws.suspected = suspected
	peel := queue[:0]
	suspect := func(v int) {
		if cand[v] && !suspected[v] {
			suspected[v] = true
			peel = append(peel, v)
		}
	}
	for _, v := range admitted {
		suspect(v)
	}
	for _, e := range touched {
		suspect(e)
		for _, w := range g.Neighbors(e) {
			suspect(int(w))
		}
	}
	for len(peel) > 0 {
		v := peel[len(peel)-1]
		peel = peel[:len(peel)-1]
		suspected[v] = false
		if !cand[v] {
			continue
		}
		if g.DegWithin(v, cand) >= tau+1 && th.AtLeast(v, cand, 2*tau+1) {
			continue
		}
		buf = th.Append(v, cand, buf[:0])
		cand[v] = false
		for _, w := range buf {
			suspect(w)
		}
	}
	return cand, true
}

// orFull returns start, or the all-true mask when start is nil.
func orFull(g *bigraph.Graph, start []bool) []bool {
	if start != nil {
		return start
	}
	alive := make([]bool, g.NumVertices())
	for v := range alive {
		alive[v] = true
	}
	return alive
}
