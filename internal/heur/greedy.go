// Package heur implements the heuristic balanced-biclique finders used by
// the paper: the max-degree and max-core greedy rules of hMBB (Algorithm
// 5), the local core-based greedy of bridgeMBB (Algorithm 6), and
// simplified reimplementations of the POLS [26] and SBMNAS [16] local
// search heuristics used to assemble the adp1..adp4 baselines.
package heur

import (
	"sort"

	"repro/internal/bigraph"
)

// Greedy finds a balanced biclique by seeded alternating expansion: it
// anchors at each of the `seeds` highest-scoring vertices in turn, then
// repeatedly extends the smaller side with the highest-scoring compatible
// candidate. score is indexed by unified vertex id — pass degrees for the
// max-degree rule or core numbers for the max-core rule. The best biclique
// over all seeds is returned.
func Greedy(g *bigraph.Graph, score []int, seeds int) bigraph.Biclique {
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return bigraph.Biclique{}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if score[order[i]] != score[order[j]] {
			return score[order[i]] > score[order[j]]
		}
		return order[i] < order[j]
	})
	if seeds < 1 {
		seeds = 1
	}
	if seeds > n {
		seeds = n
	}
	var best bigraph.Biclique
	for _, u := range order[:seeds] {
		if g.Deg(u) == 0 {
			continue
		}
		bc := expand(g, u, score)
		if bc.Size() > best.Size() {
			best = bc
		}
	}
	return best
}

// expand grows a balanced biclique around seed u by alternating sides.
func expand(g *bigraph.Graph, u int, score []int) bigraph.Biclique {
	// Orient so the seed is on the "A" side; flip back at the end.
	flip := !g.IsLeft(u)

	A := []int{u}
	var B []int
	// CB: candidates adjacent to all of A; CA: candidates adjacent to all
	// of B (restricted to the 2-hop neighbourhood of u for locality).
	CB := toInts(g.Neighbors(u))
	CA := twoHopSameSide(g, u)

	for {
		if len(A) <= len(B) {
			if len(CA) == 0 {
				break
			}
			v := pickBest(CA, score)
			A = append(A, v)
			CA = removeOne(CA, v)
			CB = intersectAdj(g, CB, v)
		} else {
			if len(CB) == 0 {
				break
			}
			v := pickBest(CB, score)
			B = append(B, v)
			CB = removeOne(CB, v)
			CA = intersectAdj(g, CA, v)
		}
	}
	// Final balancing: every remaining CB vertex is adjacent to all of A
	// (and CA to all of B), so either side can be topped up freely.
	for len(B) < len(A) && len(CB) > 0 {
		B = append(B, CB[len(CB)-1])
		CB = CB[:len(CB)-1]
	}
	for len(A) < len(B) && len(CA) > 0 {
		A = append(A, CA[len(CA)-1])
		CA = CA[:len(CA)-1]
	}
	s := len(A)
	if len(B) < s {
		s = len(B)
	}
	bc := bigraph.Biclique{A: A[:s:s], B: B[:s:s]}
	if flip {
		bc.A, bc.B = bc.B, bc.A
	}
	return bc
}

// twoHopSameSide returns the vertices at distance exactly two from u.
func twoHopSameSide(g *bigraph.Graph, u int) []int {
	seen := map[int]bool{u: true}
	var out []int
	for _, w := range g.Neighbors(u) {
		for _, x := range g.Neighbors(int(w)) {
			if !seen[int(x)] {
				seen[int(x)] = true
				out = append(out, int(x))
			}
		}
	}
	sort.Ints(out)
	return out
}

func toInts(a []int32) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[i] = int(v)
	}
	return out
}

// pickBest returns the element of cand with the highest score.
func pickBest(cand []int, score []int) int {
	best := cand[0]
	for _, v := range cand[1:] {
		if score[v] > score[best] {
			best = v
		}
	}
	return best
}

func removeOne(a []int, v int) []int {
	for i, x := range a {
		if x == v {
			a[i] = a[len(a)-1]
			a = a[:len(a)-1]
			sort.Ints(a)
			return a
		}
	}
	return a
}

// intersectAdj returns cand ∩ N(v), keeping cand sorted.
func intersectAdj(g *bigraph.Graph, cand []int, v int) []int {
	ns := g.Neighbors(v)
	out := cand[:0]
	i, j := 0, 0
	for i < len(cand) && j < len(ns) {
		switch {
		case cand[i] < int(ns[j]):
			i++
		case cand[i] > int(ns[j]):
			j++
		default:
			out = append(out, cand[i])
			i++
			j++
		}
	}
	return out
}

// DegreeScores returns the degree of every vertex, the score vector of the
// max-degree greedy rule.
func DegreeScores(g *bigraph.Graph) []int {
	s := make([]int, g.NumVertices())
	for v := range s {
		s[v] = g.Deg(v)
	}
	return s
}
