package heur_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/bigraph"
	"repro/internal/decomp"
	"repro/internal/heur"
)

func randomBigraph(rng *rand.Rand, maxSide int, p float64) *bigraph.Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := bigraph.NewBuilder(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b.Build()
}

func TestGreedyComplete(t *testing.T) {
	b := bigraph.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	bc := heur.Greedy(g, heur.DegreeScores(g), 3)
	if bc.Size() != 5 {
		t.Fatalf("K5,5 greedy size = %d, want 5", bc.Size())
	}
	if !bc.IsBicliqueOf(g) || !bc.IsBalanced() {
		t.Fatal("invalid greedy result")
	}
}

func TestGreedyEmpty(t *testing.T) {
	g := bigraph.FromEdges(4, 4, nil)
	if heur.Greedy(g, heur.DegreeScores(g), 2).Size() != 0 {
		t.Fatal("greedy on edgeless graph should be empty")
	}
	if heur.Greedy(bigraph.FromEdges(0, 0, nil), nil, 1).Size() != 0 {
		t.Fatal("greedy on empty graph should be empty")
	}
}

func TestGreedySeedOnRightSide(t *testing.T) {
	// Highest-degree vertex on the R side exercises the flip path.
	g := bigraph.FromEdges(3, 1, [][2]int{{0, 0}, {1, 0}, {2, 0}})
	bc := heur.Greedy(g, heur.DegreeScores(g), 1)
	if bc.Size() != 1 {
		t.Fatalf("size = %d, want 1", bc.Size())
	}
	if !bc.IsBicliqueOf(g) {
		t.Fatal("invalid")
	}
}

// TestQuickGreedyValid: greedy output is always a valid balanced biclique
// and never beats the optimum.
func TestQuickGreedyValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 12, 0.3)
		opt := baseline.BruteForceSize(g)
		for _, scores := range [][]int{heur.DegreeScores(g), decomp.Cores(g).Core} {
			bc := heur.Greedy(g, scores, 4)
			if bc.Size() > opt {
				return false
			}
			if bc.Size() > 0 && (!bc.IsBicliqueOf(g) || !bc.IsBalanced()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLocalSearchValid: POLS/SBMNAS outputs are valid balanced
// bicliques bounded by the optimum.
func TestQuickLocalSearchValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBigraph(rng, 10, 0.4)
		opt := baseline.BruteForceSize(g)
		for _, lso := range []heur.LocalSearchOptions{heur.POLSDefaults(), heur.SBMNASDefaults()} {
			lso.Iters = 60
			lso.Restarts = 2
			lso.Seed = seed
			bc := heur.LocalSearch(nil, g, lso)
			if bc.Size() > opt {
				return false
			}
			if bc.Size() > 0 && (!bc.IsBicliqueOf(g) || !bc.IsBalanced()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalSearchFindsPlanted: local search should recover a planted
// biclique that greedy-from-hubs can miss.
func TestLocalSearchFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := bigraph.NewBuilder(60, 60)
	for i := 0; i < 250; i++ {
		b.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			b.AddEdge(40+i, 40+j)
		}
	}
	g := b.Build()
	bc := heur.LocalSearch(nil, g, heur.SBMNASDefaults())
	if bc.Size() < 3 {
		t.Fatalf("local search found only %d; want >= 3", bc.Size())
	}
	if !bc.IsBicliqueOf(g) {
		t.Fatal("invalid result")
	}
}

func TestLocalSearchEdgeless(t *testing.T) {
	if heur.LocalSearch(nil, bigraph.FromEdges(3, 3, nil), heur.POLSDefaults()).Size() != 0 {
		t.Fatal("edgeless graph should give empty result")
	}
}
