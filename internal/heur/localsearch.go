package heur

import (
	"math/rand"
	"sort"

	"repro/internal/bigraph"
	"repro/internal/core"
)

// LocalSearchOptions configures the POLS/SBMNAS-style local search.
type LocalSearchOptions struct {
	// Iters bounds the number of improvement attempts per restart.
	Iters int
	// Restarts is the number of independent seeded starts.
	Restarts int
	// MultiMove enables SBMNAS-style compound moves (drop several vertices
	// at once to escape plateaus); with it disabled the search performs
	// POLS-style pair operations only.
	MultiMove bool
	// Seed makes the search deterministic.
	Seed int64
}

// POLSDefaults mirrors the pair-local-search configuration of [26].
func POLSDefaults() LocalSearchOptions {
	return LocalSearchOptions{Iters: 400, Restarts: 4, MultiMove: false, Seed: 1}
}

// SBMNASDefaults mirrors the multi-neighbourhood configuration of [16].
func SBMNASDefaults() LocalSearchOptions {
	return LocalSearchOptions{Iters: 400, Restarts: 4, MultiMove: true, Seed: 1}
}

// LocalSearch runs a balanced-biclique local search: starting from greedy
// seeds it repeatedly tries to add compatible pairs, swap a boundary
// vertex pair, or (MultiMove) drop a random fraction and regrow. It
// returns the best balanced biclique observed. The search is heuristic:
// it never proves optimality, exactly like the originals. ex bounds the
// iteration count and makes the search cancellable (nil means run the
// configured iterations to completion).
func LocalSearch(ex *core.Exec, g *bigraph.Graph, opt LocalSearchOptions) bigraph.Biclique {
	if g.NumEdges() == 0 {
		return bigraph.Biclique{}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	deg := DegreeScores(g)
	var best bigraph.Biclique
	if opt.Restarts < 1 {
		opt.Restarts = 1
	}
	for r := 0; r < opt.Restarts; r++ {
		cur := seedSolution(g, deg, rng, r)
		cur = growPairs(g, cur)
		if cur.Size() > best.Size() {
			best = cloneBiclique(cur)
		}
		for it := 0; it < opt.Iters; it++ {
			if !ex.Spend() {
				return best
			}
			next := perturb(g, cur, rng, opt.MultiMove)
			next = growPairs(g, next)
			if next.Size() >= cur.Size() {
				cur = next // accept sideways moves to traverse plateaus
			}
			if cur.Size() > best.Size() {
				best = cloneBiclique(cur)
			}
		}
	}
	return best
}

// seedSolution picks a starting biclique: the greedy solution for restart
// 0 and random single-edge seeds afterwards.
func seedSolution(g *bigraph.Graph, deg []int, rng *rand.Rand, restart int) bigraph.Biclique {
	if restart == 0 {
		return Greedy(g, deg, 4)
	}
	for tries := 0; tries < 32; tries++ {
		v := rng.Intn(g.NumVertices())
		if g.Deg(v) == 0 {
			continue
		}
		w := int(g.Neighbors(v)[rng.Intn(g.Deg(v))])
		if !g.IsLeft(v) {
			v, w = w, v
		}
		return bigraph.Biclique{A: []int{v}, B: []int{w}}
	}
	return bigraph.Biclique{}
}

// growPairs repeatedly adds an (l, r) pair where l is adjacent to all of
// B∪{r} and r to all of A∪{l}; this keeps the biclique balanced at every
// step (the pair operation of POLS).
func growPairs(g *bigraph.Graph, bc bigraph.Biclique) bigraph.Biclique {
	if len(bc.A) == 0 {
		return bc
	}
	for {
		candL := commonNeighbors(g, bc.B) // adjacent to every b ∈ B
		candR := commonNeighbors(g, bc.A) // adjacent to every a ∈ A
		candL = subtract(candL, bc.A)
		candR = subtract(candR, bc.B)
		found := false
		for _, l := range candL {
			for _, r := range candR {
				if g.HasEdge(l, r) {
					bc.A = append(bc.A, l)
					bc.B = append(bc.B, r)
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return bc
		}
	}
}

// perturb removes vertices to escape a local optimum: one random pair
// (POLS) or a random fraction of the solution (SBMNAS-style multi-move).
func perturb(g *bigraph.Graph, bc bigraph.Biclique, rng *rand.Rand, multi bool) bigraph.Biclique {
	out := cloneBiclique(bc)
	if len(out.A) == 0 {
		return out
	}
	drop := 1
	if multi && len(out.A) > 2 {
		drop = 1 + rng.Intn(len(out.A)/2)
	}
	for d := 0; d < drop && len(out.A) > 0; d++ {
		i := rng.Intn(len(out.A))
		j := rng.Intn(len(out.B))
		out.A[i] = out.A[len(out.A)-1]
		out.A = out.A[:len(out.A)-1]
		out.B[j] = out.B[len(out.B)-1]
		out.B = out.B[:len(out.B)-1]
	}
	return out
}

// commonNeighbors returns the vertices adjacent to every vertex of set
// (the whole other side when set is empty is represented by nil, meaning
// "unconstrained" — callers with empty sets get nil and must handle it).
func commonNeighbors(g *bigraph.Graph, set []int) []int {
	if len(set) == 0 {
		return nil
	}
	// Start from the smallest adjacency list.
	minV := set[0]
	for _, v := range set[1:] {
		if g.Deg(v) < g.Deg(minV) {
			minV = v
		}
	}
	out := toInts(g.Neighbors(minV))
	for _, v := range set {
		if v == minV {
			continue
		}
		out = intersectAdj(g, out, v)
		if len(out) == 0 {
			return out
		}
	}
	return out
}

// subtract removes members of b from a (both sorted ascending).
func subtract(a, b []int) []int {
	sorted := append([]int(nil), b...)
	sort.Ints(sorted)
	out := a[:0]
	for _, x := range a {
		i := sort.SearchInts(sorted, x)
		if i >= len(sorted) || sorted[i] != x {
			out = append(out, x)
		}
	}
	return out
}

func cloneBiclique(bc bigraph.Biclique) bigraph.Biclique {
	return bigraph.Biclique{
		A: append([]int(nil), bc.A...),
		B: append([]int(nil), bc.B...),
	}
}
