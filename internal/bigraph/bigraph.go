// Package bigraph implements the bipartite graph substrate: an immutable
// CSR-style adjacency representation over a unified vertex-id space,
// builders, induced subgraphs, and text IO.
//
// Vertex ids are unified: left vertices occupy [0, NL) and right vertices
// occupy [NL, NL+NR). All adjacency lists are sorted, which makes edge
// queries O(log d) and neighbourhood merges linear.
package bigraph

import (
	"fmt"
	"sort"
)

// Graph is an immutable bipartite graph.
type Graph struct {
	nl, nr int
	// CSR layout: neighbours of v are adj[off[v]:off[v+1]], sorted ascending.
	off []int32
	adj []int32
	m   int
}

// NL returns the number of left-side vertices.
func (g *Graph) NL() int { return g.nl }

// NR returns the number of right-side vertices.
func (g *Graph) NR() int { return g.nr }

// NumVertices returns |L| + |R|.
func (g *Graph) NumVertices() int { return g.nl + g.nr }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// IsLeft reports whether unified vertex id v lies on the left side.
func (g *Graph) IsLeft(v int) bool { return v < g.nl }

// Left returns the unified id of the i-th left vertex.
func (g *Graph) Left(i int) int { return i }

// Right returns the unified id of the j-th right vertex.
func (g *Graph) Right(j int) int { return g.nl + j }

// LocalIndex maps a unified id to its side-local index.
func (g *Graph) LocalIndex(v int) int {
	if v < g.nl {
		return v
	}
	return v - g.nl
}

// Deg returns the degree of unified vertex v.
func (g *Graph) Deg(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether the edge (u, v) exists. u and v are unified ids;
// the lookup is a binary search in the shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if g.Deg(u) > g.Deg(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// Density returns |E| / (|L|·|R|), the edge density used throughout the
// paper's evaluation. It is 0 for degenerate shapes.
func (g *Graph) Density() float64 {
	if g.nl == 0 || g.nr == 0 {
		return 0
	}
	return float64(g.m) / (float64(g.nl) * float64(g.nr))
}

// MaxDegree returns the maximum degree over all vertices.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.NumVertices(); v++ {
		if dv := g.Deg(v); dv > d {
			d = dv
		}
	}
	return d
}

// Builder accumulates edges for a bipartite graph with fixed side sizes.
// Duplicate edges are tolerated and removed at Build time.
type Builder struct {
	nl, nr int
	deg    []int32
	edges  [][2]int32 // (left unified id, right unified id)
}

// NewBuilder returns a builder for a graph with nl left and nr right
// vertices.
func NewBuilder(nl, nr int) *Builder {
	if nl < 0 || nr < 0 {
		panic("bigraph: negative side size")
	}
	return &Builder{nl: nl, nr: nr, deg: make([]int32, nl+nr)}
}

// AddEdge records an edge between side-local left index l and side-local
// right index r. It panics on out-of-range indices (programmer error).
func (b *Builder) AddEdge(l, r int) {
	if l < 0 || l >= b.nl || r < 0 || r >= b.nr {
		panic(fmt.Sprintf("bigraph: edge (%d,%d) out of range %dx%d", l, r, b.nl, b.nr))
	}
	b.edges = append(b.edges, [2]int32{int32(l), int32(b.nl + r)})
}

// NumEdgesAdded reports how many edges (including duplicates) were added.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build finalises the graph: edges are deduplicated and adjacency lists
// sorted. The builder can be reused afterwards only by adding more edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq
	n := b.nl + b.nr
	deg := make([]int32, n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, 2*len(b.edges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, e := range b.edges {
		l, r := e[0], e[1]
		adj[cur[l]] = r
		cur[l]++
		adj[cur[r]] = l
		cur[r]++
	}
	// Left lists are produced in sorted order by the edge sort; right lists
	// are sorted because left ids appear in ascending order during the fill.
	return &Graph{nl: b.nl, nr: b.nr, off: off, adj: adj, m: len(b.edges)}
}

// FromEdges builds a graph from side-local (l, r) pairs.
func FromEdges(nl, nr int, edges [][2]int) *Graph {
	b := NewBuilder(nl, nr)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Edges returns all edges as side-local (l, r) pairs in deterministic
// order. Intended for tests and IO, not hot paths.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for l := 0; l < g.nl; l++ {
		for _, r := range g.Neighbors(l) {
			out = append(out, [2]int{l, int(r) - g.nl})
		}
	}
	return out
}
